// Package repro is a from-scratch Go reproduction of "BugDoc: Algorithms to
// Debug Computational Processes" (Lourenço, Freire, Shasha; SIGMOD 2020).
//
// The public API lives in package repro/bugdoc; the algorithms and
// substrates live under internal/ (see DESIGN.md for the inventory); the
// benchmark harness that regenerates every table and figure of the paper's
// evaluation is cmd/bugdoc-bench, with Go benchmarks in bench_test.go.
package repro
