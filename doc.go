// Package repro is a from-scratch Go reproduction of "BugDoc: Algorithms to
// Debug Computational Processes" (Lourenço, Freire, Shasha; SIGMOD 2020).
//
// The public API lives in package repro/bugdoc; the algorithms and
// substrates live under internal/ (see DESIGN.md for the inventory); the
// benchmark harness that regenerates every table and figure of the paper's
// evaluation is cmd/bugdoc-bench, with Go benchmarks in bench_test.go.
//
// Deeper documentation lives under docs/: docs/ARCHITECTURE.md maps the
// layers (pipeline → provenance → provlog → exec → bugdoc → cmd), the
// group-commit and compaction lifecycles, and the invariants each layer
// owns; docs/ONDISK.md specifies the write-ahead log and checkpoint binary
// formats byte by byte, with the crash-recovery rules; docs/CLI.md is the
// cmd/bugdoc reference with a worked kill → resume → compact session.
//
// # Execution-core architecture: interned values and columnar indices
//
// The paper's cost model counts pipeline executions, so the in-process
// bookkeeping around each execution must be near-free. The data layer is
// built around value interning:
//
//   - internal/pipeline: every Space carries a value table mapping each
//     observed Value to a dense per-parameter uint32 code. Instances cache
//     their code vector and a precomputed 64-bit hash, making Equal,
//     DisjointFrom, DiffCount, and memoization probes allocation-free
//     integer work; the string Key() survives only for codecs and display.
//   - internal/provenance: the append-only log is indexed on Add with a
//     hash map over code vectors (Lookup), per-outcome sequence lists and
//     bitsets, and per-(parameter, value-code) posting bitsets, so history
//     queries (DisjointSucceeding, AnySucceedingSatisfying,
//     CountSatisfying, ...) run as bitset algebra instead of log scans.
//     Snapshot exposes a zero-copy read-only view for bulk consumers such
//     as the decision-tree training loop.
//   - internal/dtree and internal/forest: split search is counting-based —
//     one columnar pass per parameter accumulates per-value-code label
//     counts, and every "="/"<=" candidate's gain derives from those
//     counts and their prefix sums, O(params × examples + params × values)
//     per node instead of O(params × values × examples).
//   - internal/exec: the executor's memoized Evaluate path and the replay
//     HistoricalOracle key off instance hashes, so a memoization hit
//     performs zero allocations.
//
// # Durable provenance: write-ahead log and resumable sessions
//
// Evaluation is deterministic (Definition 2), so every recorded oracle
// call is an asset that future runs can replay for free. internal/provlog
// spills the provenance log to disk as a segmented, CRC-checksummed
// write-ahead log behind the provenance.Sink interface:
//
//   - Records are fixed-width binary — the instance's interned code vector
//     plus an outcome byte and a source id — interleaved with dictionary
//     frames that persist the (parameter, code, value) and (id, source)
//     assignments in order. Replaying the dictionary through Space.Intern
//     reproduces the in-memory code assignment exactly, and every segment
//     header carries a stable fingerprint of the space (names, kinds,
//     domains) so a log is never replayed into the wrong space.
//   - Store.Add appends to the sink under the store's write lock before
//     committing to memory: no record is queryable unless it is durable.
//     Segments rotate at a size threshold.
//   - provlog.Open replays existing segments into a fresh fully-indexed
//     store (hash map, outcome bitsets, posting bitsets), truncating a
//     torn final record after a crash to the last intact frame boundary.
//     Replay is batched (Space.InstancesFromCodes) and runs at amortized
//     sub-microsecond per record.
//   - The stack threads durability through: exec.NewDurable,
//     bugdoc.WithDurability and bugdoc.ResumeSession, and the cmd/bugdoc
//     -state-dir/-resume flags. A killed run resumes where it left off
//     with zero repeated oracle calls for already-logged instances.
//
// # Batched hypothesis dispatch and WAL group commit
//
// BugDoc's algorithms emit sets of candidate instances per round — DDT
// suspect verifications, stacked-shortcut candidate pools, group-testing
// levels — and the execution stack dispatches them as sets instead of
// loops:
//
//   - exec.Executor.EvaluateBatch dedupes a hypothesis set against
//     memoized history (and against itself), claims budget in input order
//     (the deterministic partial-result contract EvaluateAll documents),
//     dispatches the misses across the worker pool, and commits every
//     result through one provenance.Store.AddBatch.
//   - provenance.Store.AddBatch takes the write lock once and hands the
//     sink a single multi-record append. Sinks implementing StagedSink
//     split every append into a staging phase under the lock and a
//     durability wait outside it, so concurrent Adds overlap in the
//     expensive flush; in-flight records are tracked until durable and
//     committed to the indices strictly in sequence order, preserving
//     write-ahead semantics.
//   - internal/provlog group-commits: staged appends accumulate in a
//     pending commit window, and the first waiter becomes the leader that
//     writes (and, with fsync enabled, syncs) everything staged in one
//     call while followers park on its done channel. SyncPolicy{Interval,
//     MaxBatch} tunes the window; it threads through exec.NewDurable
//     (exec.WithLogOptions), bugdoc.WithSyncPolicy/WithFsync, and the
//     cmd/bugdoc -sync flag. A durable batched round costs one fsync per
//     commit window instead of one per record (BenchmarkEvaluateBatchDurable
//     vs BenchmarkEvaluateDurablePerInstance, >20x at 8 workers).
//   - Recovery is unchanged by batching: a batch is a contiguous run of
//     CRC-framed records, so a crash mid-group-commit truncates to the
//     intact frame prefix — torture-tested at every byte offset of a
//     multi-record batch (internal/provlog).
//
// # Segment compaction and checkpointed resume
//
// Long sessions accumulate WAL segments, and replaying the whole past on
// every Open would make resume cost grow without bound. Compaction
// (provlog.Log.Checkpoint, bugdoc.Session.Checkpoint, the
// provlog.CompactPolicy auto-trigger, cmd/bugdoc -compact and
// -checkpoint-every) folds the committed history into a checkpoint file:
// a sorted run keyed by instance hash, deduplicated last-write-wins, with
// the value and source dictionaries consolidated into dense tables and a
// footer carrying record count, sequence watermark, space fingerprint,
// and a whole-file CRC-32C. The checkpoint becomes visible only by
// fsync+rename, and only then are the segments it covers deleted, so a
// crash at any point of a compaction recovers (torture-tested stage by
// stage).
//
//   - Open loads the newest valid checkpoint with one index-free
//     sequential (mmap-backed) pass: rows adopt wholesale into the store
//     as its base run — code-only instances over the shared decoded
//     matrix, identity served by binary search over the stored hash
//     order, outcome/posting indices built lazily on first query — and
//     only the WAL suffix past the watermark replays frame by frame.
//   - Resume cost is bounded by live history, not total history:
//     BenchmarkOpenCheckpointed1M opens a 1M-record session several times
//     faster than BenchmarkOpenFullReplay1M replays the identical records
//     (both gated in CI).
//   - A checkpoint + WAL-suffix store is differentially tested to be
//     identical — records, dictionaries, and indexed query behavior — to
//     a full-WAL replay of the same bytes, across randomized histories.
//
// docs/ONDISK.md specifies both binary formats byte by byte with the full
// crash matrix; docs/ARCHITECTURE.md diagrams the lifecycles.
//
// CI gates the hot paths with a benchmark-regression job: cmd/benchdiff
// compares median ns/op of the gated benchmarks against the committed
// BENCH_BASELINE.json and fails the build on >25% regression. A docs
// drift gate (cmd/doclint) fails the build when exported symbols of
// bugdoc, internal/provenance, or internal/provlog lack godoc comments.
package repro
