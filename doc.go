// Package repro is a from-scratch Go reproduction of "BugDoc: Algorithms to
// Debug Computational Processes" (Lourenço, Freire, Shasha; SIGMOD 2020).
//
// The public API lives in package repro/bugdoc; the algorithms and
// substrates live under internal/ (see DESIGN.md for the inventory); the
// benchmark harness that regenerates every table and figure of the paper's
// evaluation is cmd/bugdoc-bench, with Go benchmarks in bench_test.go.
//
// # Execution-core architecture: interned values and columnar indices
//
// The paper's cost model counts pipeline executions, so the in-process
// bookkeeping around each execution must be near-free. The data layer is
// built around value interning:
//
//   - internal/pipeline: every Space carries a value table mapping each
//     observed Value to a dense per-parameter uint32 code. Instances cache
//     their code vector and a precomputed 64-bit hash, making Equal,
//     DisjointFrom, DiffCount, and memoization probes allocation-free
//     integer work; the string Key() survives only for codecs and display.
//   - internal/provenance: the append-only log is indexed on Add with a
//     hash map over code vectors (Lookup), per-outcome sequence lists and
//     bitsets, and per-(parameter, value-code) posting bitsets, so history
//     queries (DisjointSucceeding, AnySucceedingSatisfying,
//     CountSatisfying, ...) run as bitset algebra instead of log scans.
//     Snapshot exposes a zero-copy read-only view for bulk consumers such
//     as the decision-tree training loop.
//   - internal/dtree and internal/forest: split search is counting-based —
//     one columnar pass per parameter accumulates per-value-code label
//     counts, and every "="/"<=" candidate's gain derives from those
//     counts and their prefix sums, O(params × examples + params × values)
//     per node instead of O(params × values × examples).
//   - internal/exec: the executor's memoized Evaluate path and the replay
//     HistoricalOracle key off instance hashes, so a memoization hit
//     performs zero allocations.
//
// # Durable provenance: write-ahead log and resumable sessions
//
// Evaluation is deterministic (Definition 2), so every recorded oracle
// call is an asset that future runs can replay for free. internal/provlog
// spills the provenance log to disk as a segmented, CRC-checksummed
// write-ahead log behind the provenance.Sink interface:
//
//   - Records are fixed-width binary — the instance's interned code vector
//     plus an outcome byte and a source id — interleaved with dictionary
//     frames that persist the (parameter, code, value) and (id, source)
//     assignments in order. Replaying the dictionary through Space.Intern
//     reproduces the in-memory code assignment exactly, and every segment
//     header carries a stable fingerprint of the space (names, kinds,
//     domains) so a log is never replayed into the wrong space.
//   - Store.Add appends to the sink under the store's write lock before
//     committing to memory: no record is queryable unless it is durable.
//     Segments rotate at a size threshold.
//   - provlog.Open replays existing segments into a fresh fully-indexed
//     store (hash map, outcome bitsets, posting bitsets), truncating a
//     torn final record after a crash to the last intact frame boundary.
//     Replay is batched (Space.InstancesFromCodes) and runs at amortized
//     sub-microsecond per record.
//   - The stack threads durability through: exec.NewDurable,
//     bugdoc.WithDurability and bugdoc.ResumeSession, and the cmd/bugdoc
//     -state-dir/-resume flags. A killed run resumes where it left off
//     with zero repeated oracle calls for already-logged instances.
//
// # Batched hypothesis dispatch and WAL group commit
//
// BugDoc's algorithms emit sets of candidate instances per round — DDT
// suspect verifications, stacked-shortcut candidate pools, group-testing
// levels — and the execution stack dispatches them as sets instead of
// loops:
//
//   - exec.Executor.EvaluateBatch dedupes a hypothesis set against
//     memoized history (and against itself), claims budget in input order
//     (the deterministic partial-result contract EvaluateAll documents),
//     dispatches the misses across the worker pool, and commits every
//     result through one provenance.Store.AddBatch.
//   - provenance.Store.AddBatch takes the write lock once and hands the
//     sink a single multi-record append. Sinks implementing StagedSink
//     split every append into a staging phase under the lock and a
//     durability wait outside it, so concurrent Adds overlap in the
//     expensive flush; in-flight records are tracked until durable and
//     committed to the indices strictly in sequence order, preserving
//     write-ahead semantics.
//   - internal/provlog group-commits: staged appends accumulate in a
//     pending commit window, and the first waiter becomes the leader that
//     writes (and, with fsync enabled, syncs) everything staged in one
//     call while followers park on its done channel. SyncPolicy{Interval,
//     MaxBatch} tunes the window; it threads through exec.NewDurable
//     (exec.WithLogOptions), bugdoc.WithSyncPolicy/WithFsync, and the
//     cmd/bugdoc -sync flag. A durable batched round costs one fsync per
//     commit window instead of one per record (BenchmarkEvaluateBatchDurable
//     vs BenchmarkEvaluateDurablePerInstance, >20x at 8 workers).
//   - Recovery is unchanged by batching: a batch is a contiguous run of
//     CRC-framed records, so a crash mid-group-commit truncates to the
//     intact frame prefix — torture-tested at every byte offset of a
//     multi-record batch (internal/provlog).
//
// CI gates the hot paths with a benchmark-regression job: cmd/benchdiff
// compares median ns/op of the gated benchmarks against the committed
// BENCH_BASELINE.json and fails the build on >25% regression.
package repro
