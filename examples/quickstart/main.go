// Quickstart: the paper's Example 1 end to end. A machine-learning pipeline
// (Figure 1) sometimes produces low F-measure scores; starting from the
// three previously-run instances of Table 1, BugDoc's Shortcut algorithm
// executes the substitutions of Table 2 and asserts the minimal definitive
// root cause — the buggy library version 2.0.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/bugdoc"
	"repro/internal/experiments"
)

func main() {
	ctx := context.Background()

	// The full walkthrough with the paper's tables:
	res, err := experiments.Tables12(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Render())

	// The same investigation through the public API: declare the space,
	// provide the oracle, replay the history, ask for one root cause.
	space := bugdoc.MustSpace(
		bugdoc.Parameter{Name: "Dataset", Kind: bugdoc.Categorical, Domain: []bugdoc.Value{
			bugdoc.Cat("Iris"), bugdoc.Cat("Digits"), bugdoc.Cat("Images"),
		}},
		bugdoc.Parameter{Name: "Estimator", Kind: bugdoc.Categorical, Domain: []bugdoc.Value{
			bugdoc.Cat("Logistic Regression"), bugdoc.Cat("Decision Tree"), bugdoc.Cat("Gradient Boosting"),
		}},
		bugdoc.Parameter{Name: "LibraryVersion", Kind: bugdoc.Categorical, Domain: []bugdoc.Value{
			bugdoc.Cat("1.0"), bugdoc.Cat("2.0"),
		}},
	)
	// A black-box oracle: in real use this runs your pipeline; here the
	// bug is that library 2.0 tanks every score below the 0.6 threshold.
	oracle := bugdoc.OracleFunc(func(_ context.Context, in bugdoc.Instance) (bugdoc.Outcome, error) {
		if v, _ := in.ByName("LibraryVersion"); v == bugdoc.Cat("2.0") {
			return bugdoc.Fail, nil
		}
		if est, _ := in.ByName("Estimator"); est == bugdoc.Cat("Gradient Boosting") {
			if ds, _ := in.ByName("Dataset"); ds != bugdoc.Cat("Images") {
				return bugdoc.Fail, nil
			}
		}
		return bugdoc.Succeed, nil
	})
	session, err := bugdoc.NewSession(space, oracle, bugdoc.WithHistory([]bugdoc.Record{
		{Instance: bugdoc.MustInstance(space, bugdoc.Cat("Iris"), bugdoc.Cat("Logistic Regression"), bugdoc.Cat("1.0")), Outcome: bugdoc.Succeed, Source: "table1"},
		{Instance: bugdoc.MustInstance(space, bugdoc.Cat("Digits"), bugdoc.Cat("Decision Tree"), bugdoc.Cat("1.0")), Outcome: bugdoc.Succeed, Source: "table1"},
		{Instance: bugdoc.MustInstance(space, bugdoc.Cat("Iris"), bugdoc.Cat("Gradient Boosting"), bugdoc.Cat("2.0")), Outcome: bugdoc.Fail, Source: "table1"},
	}))
	if err != nil {
		log.Fatal(err)
	}
	causes, err := session.FindOne(ctx, bugdoc.Shortcut)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Public API result:")
	fmt.Print(bugdoc.Explain(causes))
	fmt.Printf("(%d new pipeline executions)\n", session.Spent())
}
