// ML pipeline debugging (FindAll): the Figure 1 pipeline has several
// distinct reasons to miss the score threshold — the broken library
// release, gradient boosting on small datasets, logistic regression off its
// favourite dataset. Debugging Decision Trees enumerates all of them as a
// simplified disjunction of conjunctions.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/bugdoc"
	"repro/internal/mlsim"
)

func main() {
	ctx := context.Background()
	ml, err := mlsim.New()
	if err != nil {
		log.Fatal(err)
	}

	session, err := bugdoc.NewSession(ml.Space, ml.Oracle(),
		bugdoc.WithSeed(3), bugdoc.WithWorkers(4))
	if err != nil {
		log.Fatal(err)
	}
	if err := session.Seed(ctx); err != nil {
		log.Fatal(err)
	}

	causes, err := session.FindAll(ctx, bugdoc.DebuggingDecisionTrees)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Pipeline:", ml.Space)
	fmt.Println("Planted failure condition:", ml.Truth)
	fmt.Println()
	fmt.Println("BugDoc FindAll (Debugging Decision Trees):")
	fmt.Print(bugdoc.Explain(causes))
	fmt.Printf("\n%d of 18 configurations executed\n", session.Spent()+2)

	// Compare the cost against exhaustive search: the whole space is only
	// 18 configurations here, but the synthetic benchmarks in
	// cmd/bugdoc-bench scale this to millions.
	succ, fail := session.Store().Outcomes()
	fmt.Printf("provenance: %d records (%d succeed, %d fail)\n",
		session.Store().Len(), succ, fail)
}
