// Data-element drill-down (the paper's future-work §6, implemented): BugDoc
// first identifies *which dataset* makes the pipeline fail; adaptive group
// testing then isolates the corrupt rows inside that dataset in O(d log n)
// pipeline runs instead of one run per row; finally, observed
// (non-manipulable) variables recorded during the runs enrich the
// explanation for the human debugger.
package main

import (
	"context"
	"fmt"
	"log"
	"sync/atomic"

	"repro/bugdoc"
	"repro/internal/core"
	"repro/internal/grouptest"
	"repro/internal/pipeline"
)

const datasetRows = 1000

// corruptRows are the rows with the wrong temporal resolution (the
// enterprise-analytics example from the paper's introduction: a feed
// switched from monthly to weekly).
var corruptRows = map[int]bool{104: true, 105: true, 617: true}

func main() {
	ctx := context.Background()

	// Step 1: pipeline-level debugging. Three candidate feeds; the
	// pipeline fails whenever feed "sales_eu" is used.
	space := bugdoc.MustSpace(
		bugdoc.Parameter{Name: "feed", Kind: bugdoc.Categorical, Domain: []bugdoc.Value{
			bugdoc.Cat("sales_us"), bugdoc.Cat("sales_eu"), bugdoc.Cat("sales_apac"),
		}},
		bugdoc.Parameter{Name: "model", Kind: bugdoc.Categorical, Domain: []bugdoc.Value{
			bugdoc.Cat("arima"), bugdoc.Cat("prophet"),
		}},
	)
	oracle := bugdoc.OracleFunc(func(_ context.Context, in bugdoc.Instance) (bugdoc.Outcome, error) {
		if feed, _ := in.ByName("feed"); feed == bugdoc.Cat("sales_eu") {
			return bugdoc.Fail, nil // the EU feed contains the corrupt rows
		}
		return bugdoc.Succeed, nil
	})
	session, err := bugdoc.NewSession(space, oracle, bugdoc.WithSeed(2))
	if err != nil {
		log.Fatal(err)
	}
	if err := session.Seed(ctx); err != nil {
		log.Fatal(err)
	}
	causes, err := session.FindOne(ctx, bugdoc.Shortcut)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Step 1 — BugDoc root cause:")
	fmt.Print(bugdoc.Explain(causes))

	// Step 2: the root cause names a dataset, so group-test its rows: each
	// test runs the pipeline on a subset of the feed. The splitting rounds
	// are independent hypothesis sets, so Parallel dispatches each round
	// across workers, the way the executor parallelizes instance batches.
	var runs atomic.Int64
	tester := grouptest.TesterFunc(func(_ context.Context, rows []int) (bool, error) {
		runs.Add(1)
		for _, r := range rows {
			if corruptRows[r] {
				return true, nil
			}
		}
		return false, nil
	})
	res, err := grouptest.FindDefectives(ctx, grouptest.Parallel(tester, 4), datasetRows, grouptest.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nStep 2 — group testing over %d rows: corrupt rows %v found in %d pipeline runs\n",
		datasetRows, res.Defective, runs.Load())
	fmt.Printf("         (naive row-at-a-time debugging would need %d runs)\n", datasetRows)

	// Step 3: enrich the explanation with observed variables logged during
	// the step-1 runs (here: the feed's reported temporal resolution).
	var observations []core.Observation
	for _, rec := range session.Store().Snapshot().Records() {
		feed, _ := rec.Instance.ByName("feed")
		resolution := "monthly"
		if feed == pipeline.Cat("sales_eu") {
			resolution = "weekly" // the upstream change that broke the forecasts
		}
		observations = append(observations, core.Observation{
			Instance: rec.Instance,
			Outcome:  rec.Outcome,
			Values: map[string]pipeline.Value{
				"feed_resolution": pipeline.Cat(resolution),
				"rows_ingested":   pipeline.Ord(float64(datasetRows)),
			},
		})
	}
	enriched, err := core.Enrich(causes[0], observations, 0.9, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nStep 3 — observed-variable enrichment of the root cause:")
	for _, p := range enriched {
		fmt.Printf("  %v\n", p)
	}
}
