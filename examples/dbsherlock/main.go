// DBSherlock historical-log debugging (Section 5.3): OLTP performance logs
// where *no new pipeline instances can be executed*. BugDoc's Debugging
// Decision Trees learns from the training half, replays hypotheses against
// the budget quarter (instances outside it are untestable), and the
// asserted root causes are scored as a failure classifier on the holdout —
// the experiment behind the paper's 98% accuracy claim.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dbsherlock"
	"repro/internal/exec"
)

func main() {
	ctx := context.Background()
	r := rand.New(rand.NewSource(7))
	corpus := dbsherlock.GenerateCorpus(r, dbsherlock.Config{})
	fmt.Printf("corpus: %d log windows, %d statistics each\n\n",
		len(corpus.Windows), dbsherlock.NumStatistics)

	total := 0.0
	for class := range dbsherlock.AnomalyClasses {
		ds, err := corpus.DatasetFor(class, rand.New(rand.NewSource(int64(class))))
		if err != nil {
			log.Fatal(err)
		}
		st, oracle, err := ds.Setup()
		if err != nil {
			log.Fatal(err)
		}
		ex := exec.New(oracle, st)
		causes, err := core.DebugDecisionTrees(ctx, ex, core.DDTOptions{
			Rand: rand.New(rand.NewSource(int64(class))), FindAll: true, Simplify: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		acc := ds.Accuracy(causes)
		total += acc
		fmt.Printf("%-22s %d causes, holdout accuracy %.1f%%\n",
			dbsherlock.AnomalyClasses[class], len(causes), 100*acc)
		for _, c := range causes {
			fmt.Printf("    %v\n", c)
		}
	}
	fmt.Printf("\nmean accuracy: %.1f%% (paper reports 98%%)\n",
		100*total/float64(len(dbsherlock.AnomalyClasses)))
}
