// GAN training root-causing (Section 5.3): each real configuration takes
// ~10 hours to train, so executions are precious. BugDoc debugs the
// simulated SAGAN/CIFAR-10 pipeline — Fail means the FID threshold flagged
// mode collapse — comparing the Stacked Shortcut (cheap, one cause) with
// Debugging Decision Trees (dearer, all causes, inequalities allowed).
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/bugdoc"
	"repro/internal/gansim"
)

func main() {
	ctx := context.Background()
	gan, err := gansim.New()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Pipeline:", gan.Space)
	fmt.Printf("Evaluation: FID <= %.0f (mode collapse threshold)\n\n", gansim.Threshold)

	// Pass 1: Stacked Shortcut — linear in the number of parameters.
	s1, err := bugdoc.NewSession(gan.Space, gan.Oracle(), bugdoc.WithSeed(11))
	if err != nil {
		log.Fatal(err)
	}
	if err := s1.Seed(ctx); err != nil {
		log.Fatal(err)
	}
	quick, err := s1.FindOne(ctx, bugdoc.StackedShortcut)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Stacked Shortcut (%d executions):\n%s\n", s1.Spent(), bugdoc.Explain(quick))

	// Pass 2: Debugging Decision Trees with the provenance of a past
	// training campaign (200 prior configurations) — finds both collapse
	// regimes, including the inequality conditions.
	history := make([]bugdoc.Record, 0, 200)
	seen := make(map[string]bool)
	r := rand.New(rand.NewSource(42))
	for len(history) < 200 {
		in := gan.Space.RandomInstance(r)
		if seen[in.Key()] {
			continue
		}
		seen[in.Key()] = true
		out, err := gan.Oracle().Run(ctx, in)
		if err != nil {
			log.Fatal(err)
		}
		history = append(history, bugdoc.Record{Instance: in, Outcome: out, Source: "campaign"})
	}
	s2, err := bugdoc.NewSession(gan.Space, gan.Oracle(),
		bugdoc.WithSeed(11), bugdoc.WithWorkers(8), bugdoc.WithHistory(history))
	if err != nil {
		log.Fatal(err)
	}
	all, err := s2.FindAll(ctx, bugdoc.DebuggingDecisionTrees)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Debugging Decision Trees (%d executions):\n%s\n", s2.Spent(), bugdoc.Explain(all))
	fmt.Println("Planted ground truth:", gan.Truth)
}
