// Parallel dispatch (Section 4.3): pipeline instances are independent, so
// BugDoc runs them concurrently. This example debugs the simulated Data
// Polygamy pipeline with an injected per-instance latency (the real one
// takes ~20 minutes per run) and shows the wall-clock effect of the worker
// pool — the mechanism behind the paper's Figure 6.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/bugdoc"
	"repro/internal/polygamy"
)

func main() {
	ctx := context.Background()
	poly, err := polygamy.New()
	if err != nil {
		log.Fatal(err)
	}
	slow := bugdoc.LatencyOracle(poly.Oracle(), 10*time.Millisecond)

	fmt.Println("Pipeline:", poly.Space)
	fmt.Println("Injected latency: 10ms per instance (real pipeline: ~20 minutes)")
	fmt.Println()

	for _, workers := range []int{1, 2, 4, 8} {
		session, err := bugdoc.NewSession(poly.Space, slow,
			bugdoc.WithSeed(21), bugdoc.WithWorkers(workers))
		if err != nil {
			log.Fatal(err)
		}
		if err := session.Seed(ctx); err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		causes, err := session.FindAll(ctx, bugdoc.DebuggingDecisionTrees)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("workers=%d  elapsed=%-10v instances=%-4d causes=%d\n",
			workers, time.Since(start).Round(time.Millisecond), session.Spent(), len(causes))
	}
	fmt.Println("\nplanted crash conditions:", poly.Truth)
}
