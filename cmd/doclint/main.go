// Command doclint is the docs drift gate. It fails when an exported
// symbol of the given packages lacks a godoc comment, so the public
// surface of the durability and provenance layers cannot grow
// undocumented — and, with -docs, when a backticked `package.Symbol`
// reference in the listed markdown files no longer resolves to an
// exported symbol of those packages, so prose cannot keep naming code
// that was renamed or removed.
//
//	go run ./cmd/doclint ./bugdoc ./internal/provenance ./internal/provlog
//	go run ./cmd/doclint -docs README.md,docs ./bugdoc ./internal/provlog
//
// A declaration is covered by a comment on itself or, for grouped
// const/var/type declarations, by a comment on the group. Test files are
// ignored. -docs takes a comma-separated list of markdown files or
// directories (scanned for *.md); a reference gates only when its package
// segment names one of the linted packages — `provlog.Open`,
// `provlog.MergePolicy.MaxTiers`, `provenance.Store.LoadSortedRuns` —
// so mentions of other packages and shell snippets pass through. Exit
// status 1 lists every offender as file:line: description.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"repro/internal/analysis"
)

func main() {
	docs := flag.String("docs", "", "comma-separated markdown files or directories whose backticked package.Symbol references must resolve")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: doclint [-docs files] <package dir>...")
		os.Exit(2)
	}
	// All packages parse through the shared analysis loader (one FileSet,
	// same build-tag filtering as buglint); doclint stays syntax-only, so
	// it never pays for typechecking.
	ld, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "doclint:", err)
		os.Exit(2)
	}
	bad := 0
	exports := map[string]map[string]bool{}
	for _, dir := range flag.Args() {
		offenders, err := lintDir(ld, dir, exports)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			os.Exit(2)
		}
		for _, o := range offenders {
			fmt.Println(o)
		}
		bad += len(offenders)
	}
	if *docs != "" {
		offenders, err := lintDocs(strings.Split(*docs, ","), exports)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			os.Exit(2)
		}
		for _, o := range offenders {
			fmt.Println(o)
		}
		bad += len(offenders)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d offenders\n", bad)
		os.Exit(1)
	}
}

// lintDir parses one package directory through the shared loader and
// returns an entry per exported declaration without a doc comment. As a
// side effect it records the package's exported surface into exports —
// top-level names plus "Type.Method" pairs — for the -docs reference
// check.
func lintDir(ld *analysis.Loader, dir string, exports map[string]map[string]bool) ([]string, error) {
	files, err := ld.ParseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	var out []string
	report := func(pos token.Pos, kind, name string) {
		p := ld.Fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	{
		pkgName := files[0].Name.Name
		syms := exports[pkgName]
		if syms == nil {
			syms = map[string]bool{}
			exports[pkgName] = syms
		}
		for _, f := range files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !receiverExported(d) {
						continue
					}
					if recv := receiverName(d); recv != "" {
						syms[recv+"."+d.Name.Name] = true
					} else {
						syms[d.Name.Name] = true
					}
					if d.Doc == nil {
						kind := "function"
						if d.Recv != nil {
							kind = "method"
						}
						report(d.Pos(), kind, d.Name.Name)
					}
				case *ast.GenDecl:
					if d.Tok != token.CONST && d.Tok != token.VAR && d.Tok != token.TYPE {
						continue
					}
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if !s.Name.IsExported() {
								continue
							}
							syms[s.Name.Name] = true
							recordFields(syms, s)
							if d.Doc == nil && s.Doc == nil && s.Comment == nil {
								report(s.Pos(), "type", s.Name.Name)
							}
						case *ast.ValueSpec:
							for _, name := range s.Names {
								if !name.IsExported() {
									continue
								}
								syms[name.Name] = true
								if d.Doc == nil && s.Doc == nil && s.Comment == nil {
									report(name.Pos(), strings.ToLower(d.Tok.String()), name.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return out, nil
}

// recordFields adds a struct type's exported fields to the symbol set as
// "Type.Field", so docs can reference configuration knobs like
// `provlog.MergePolicy.MaxTiers`.
func recordFields(syms map[string]bool, s *ast.TypeSpec) {
	st, ok := s.Type.(*ast.StructType)
	if !ok || st.Fields == nil {
		return
	}
	for _, f := range st.Fields.List {
		for _, name := range f.Names {
			if name.IsExported() {
				syms[s.Name.Name+"."+name.Name] = true
			}
		}
	}
}

// receiverName returns the name of a method's receiver type, or "" for
// plain functions.
func receiverName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// receiverExported reports whether a method's receiver type is exported
// (methods on unexported types are internal details even when the method
// name is capitalized, e.g. interface implementations).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// docRef matches a backticked code reference of the form `pkg.Symbol`,
// `pkg.Type.Method`, or `pkg.Type.Field`: a lower-case package segment
// followed by one or two exported segments. Backticked flags, file
// globs, and shell fragments do not match.
var docRef = regexp.MustCompile("`([a-z][a-zA-Z0-9]*)\\.([A-Z][A-Za-z0-9]*)((?:\\.[A-Z][A-Za-z0-9]*)?)`")

// lintDocs scans markdown files (or directories of *.md) for backticked
// package.Symbol references into the linted packages and reports every
// one that does not resolve to an exported symbol, method, or field.
func lintDocs(paths []string, exports map[string]map[string]bool) ([]string, error) {
	var files []string
	for _, p := range paths {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		fi, err := os.Stat(p)
		if err != nil {
			return nil, err
		}
		if fi.IsDir() {
			md, err := filepath.Glob(filepath.Join(p, "*.md"))
			if err != nil {
				return nil, err
			}
			files = append(files, md...)
		} else {
			files = append(files, p)
		}
	}
	var out []string
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		for lineNo, line := range strings.Split(string(data), "\n") {
			for _, m := range docRef.FindAllStringSubmatch(line, -1) {
				pkg, sym, tail := m[1], m[2], m[3]
				syms, ok := exports[pkg]
				if !ok {
					continue // a package outside the linted set
				}
				want := sym + tail // "Symbol", "Type.Method", or "Type.Field"
				if syms[want] {
					continue
				}
				out = append(out, fmt.Sprintf("%s:%d: `%s.%s` does not resolve to an exported symbol of package %s",
					path, lineNo+1, pkg, want, pkg))
			}
		}
	}
	return out, nil
}
