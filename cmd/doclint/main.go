// Command doclint is the docs drift gate: it fails when an exported
// symbol of the given packages lacks a godoc comment, so the public
// surface of the durability and provenance layers cannot grow
// undocumented.
//
//	go run ./cmd/doclint ./bugdoc ./internal/provenance ./internal/provlog
//
// A declaration is covered by a comment on itself or, for grouped
// const/var/type declarations, by a comment on the group. Test files are
// ignored. Exit status 1 lists every offender as file:line: symbol.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doclint <package dir>...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		offenders, err := lintDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			os.Exit(2)
		}
		for _, o := range offenders {
			fmt.Println(o)
		}
		bad += len(offenders)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d exported symbols lack godoc comments\n", bad)
		os.Exit(1)
	}
}

// lintDir parses one package directory and returns an entry per exported
// declaration without a doc comment.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !receiverExported(d) {
						continue
					}
					if d.Doc == nil {
						kind := "function"
						if d.Recv != nil {
							kind = "method"
						}
						report(d.Pos(), kind, d.Name.Name)
					}
				case *ast.GenDecl:
					if d.Tok != token.CONST && d.Tok != token.VAR && d.Tok != token.TYPE {
						continue
					}
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
								report(s.Pos(), "type", s.Name.Name)
							}
						case *ast.ValueSpec:
							for _, name := range s.Names {
								if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
									report(name.Pos(), strings.ToLower(d.Tok.String()), name.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return out, nil
}

// receiverExported reports whether a method's receiver type is exported
// (methods on unexported types are internal details even when the method
// name is capitalized, e.g. interface implementations).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}
