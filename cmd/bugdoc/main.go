// Command bugdoc debugs a computational pipeline from the command line.
// See docs/CLI.md for the full reference with a worked kill → resume →
// compact session.
//
// Input modes (exactly one):
//
//	# Historical mode: debug a provenance log (no new executions possible).
//	bugdoc -spec pipeline.json -provenance runs.csv -algo ddt -goal all
//
//	# Demo mode: debug one of the built-in simulated pipelines live.
//	bugdoc -demo ml -algo shortcut
//	bugdoc -demo polygamy -algo ddt -goal all
//	bugdoc -demo gan -algo stacked
//
// Search flags: -algo picks shortcut | stacked | ddt, -goal picks one
// (any minimal definitive root cause) or all, -budget caps new pipeline
// executions (-1 = unlimited), -workers sizes the parallel dispatch pool,
// -seed fixes the sampling randomness, and -latency simulates expensive
// pipelines by delaying every oracle call. -shards splits the provenance
// store across N instance-hash ranges (rounded up to a power of two) so
// high -workers counts contend per hash range instead of on one store
// lock; results are identical at every shard count, and a state directory
// written at one count can be resumed at any other.
//
// Durability flags: -state-dir write-ahead logs every execution so a
// killed run resumes (with -resume requiring prior state) without
// re-spending oracle budget:
//
//	bugdoc -demo polygamy -algo ddt -goal all -state-dir ./state
//	bugdoc -demo polygamy -algo ddt -goal all -state-dir ./state -resume
//
//	# Crash-safe durable mode: -sync enables fsync with the given
//	# group-commit window. Concurrent workers (and each algorithm round's
//	# batched hypothesis set) coalesce their log appends into one write
//	# and one fsync per window, so durability costs per round, not per
//	# instance. -sync 0 still fsyncs every window (natural batching);
//	# omit the flag to leave flushing to the OS.
//	bugdoc -demo polygamy -algo ddt -goal all -state-dir ./state \
//	    -workers 8 -sync 2ms
//
// Compaction flags: long sessions accumulate a WAL whose replay cost grows
// with the whole past. -checkpoint-every N folds the records past the
// newest checkpoint into a new tier file every N logged records, and
// -compact runs one compaction over an existing state directory and exits
// (no search; the space comes from the persisted spec, so not even
// -demo/-spec is needed). Checkpoints are LSM-tiered: each compaction
// writes only the delta, and -merge-policy K:R bounds the tier count (at
// most K tiers, each at least R times the one above it; 1:1 restores the
// historic rewrite-everything compaction):
//
//	bugdoc -demo polygamy -algo ddt -goal all -state-dir ./state \
//	    -checkpoint-every 10000 -merge-policy 8:4
//	bugdoc -state-dir ./state -compact
//
// After compaction, resuming loads the manifest's tiers and replays only
// the WAL suffix past the newest watermark — resume cost is bounded by the
// live history, and checkpoint cost by the delta since the last one.
//
// Flaky-oracle flags: -trials MIN:MAX:Q treats the oracle as
// non-deterministic and resolves every new instance by quorum — it is
// dispatched at least MIN and at most MAX times, its recorded outcome is
// the majority verdict once Q agreeing trials accumulate, and an exact tie
// at MAX records "inconclusive" (evidence for neither side). Every trial
// consumes one unit of -budget and, with -state-dir, is write-ahead logged
// individually, so a killed run resumes mid-quorum with its accumulated
// votes. -flake RATE corrupts each oracle verdict with the given
// probability (deterministically, keyed by -seed) to simulate a flaky
// pipeline against the built-in demos:
//
//	bugdoc -demo polygamy -algo ddt -goal all -flake 0.05 -trials 3:7:3
//
// Observability flags: -stats prints a runtime telemetry summary when the
// session ends — including when it is interrupted with Ctrl-C — covering
// memo hits, oracle latency percentiles, WAL flush and checkpoint costs,
// and epoch staleness. -events appends a JSON-lines journal of session
// events (oracle trial spans, batch dispatches, group-commit flushes,
// checkpoints, epoch refreshes) to a file. -debug-addr serves the live
// metric registry at /debug/vars (JSON) and the Go profiler at
// /debug/pprof/ while the session runs; ":0" picks a free port and the
// chosen address is printed to stderr:
//
//	bugdoc -demo polygamy -algo ddt -goal all -workers 8 \
//	    -stats -debug-addr 127.0.0.1:6060 -events events.jsonl
//
// The algorithms submit hypothesis sets (DDT suspect verifications,
// stacked-shortcut candidate rounds) as batches: the executor dedupes them
// against memoized provenance, dispatches the misses across -workers
// workers, and commits the results through one provenance batch append.
//
// The spec file declares the parameter space (see internal/spec); the
// provenance CSV has one column per parameter plus an "outcome" column with
// values "succeed"/"fail".
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/gansim"
	"repro/internal/mlsim"
	"repro/internal/pipeline"
	"repro/internal/polygamy"
	"repro/internal/provenance"
	"repro/internal/provlog"
	"repro/internal/spec"
	"repro/internal/synth"
	"repro/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bugdoc:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		specPath = flag.String("spec", "", "pipeline spec JSON (historical mode)")
		provPath = flag.String("provenance", "", "provenance CSV (historical mode)")
		demo     = flag.String("demo", "", "built-in pipeline: ml | polygamy | gan")
		algoName = flag.String("algo", "ddt", "algorithm: shortcut | stacked | ddt")
		goal     = flag.String("goal", "one", "goal: one | all")
		budget   = flag.Int("budget", -1, "max new pipeline executions (-1 = unlimited)")
		workers  = flag.Int("workers", 4, "parallel execution workers")
		seed     = flag.Int64("seed", 1, "randomness seed")
		stateDir = flag.String("state-dir", "", "write-ahead log provenance here; reopening resumes it")
		resume   = flag.Bool("resume", false, "require existing state in -state-dir and continue it")
		latency  = flag.Duration("latency", 0, "simulated per-execution latency (e.g. 50ms)")
		syncWin  = flag.Duration("sync", -1, "fsync the WAL with this group-commit window (e.g. 2ms; 0 = every window; < 0 = no fsync)")
		compact  = flag.Bool("compact", false, "fold the -state-dir WAL into a checkpoint tier, collect superseded files, and exit")
		ckptN    = flag.Int("checkpoint-every", 0, "compact the WAL in the background every N logged records (0 = only on -compact)")
		mergePol = flag.String("merge-policy", "", "checkpoint tier merge policy as K:R — at most K tiers, each at least R times the one above (default 8:4; 1:1 = full rewrite)")
		shards   = flag.Int("shards", 1, "shard the provenance store across N instance-hash ranges (rounded up to a power of two; 1 = unsharded)")
		trials   = flag.String("trials", "", "flaky-oracle quorum as MIN:MAX:Q — dispatch each instance MIN..MAX times, resolve by majority once Q trials agree (empty = deterministic single-trial)")
		flake    = flag.Float64("flake", 0, "corrupt each oracle verdict with this probability (deterministic per -seed; simulates a flaky pipeline)")
		openPar  = flag.Int("open-parallel", 0, "decode the -state-dir checkpoint on N goroutines (0 = all cores; 1 = sequential)")
		stats    = flag.Bool("stats", false, "print a runtime telemetry summary at exit (also on Ctrl-C)")
		dbgAddr  = flag.String("debug-addr", "", "serve live /debug/vars and /debug/pprof on this address (e.g. 127.0.0.1:6060; :0 picks a port)")
		events   = flag.String("events", "", "append a JSON-lines journal of session events to this file")
	)
	flag.Parse()

	merge, mpErr := parseMergePolicy(*mergePol)
	if mpErr != nil {
		return mpErr
	}
	flaky, ftErr := parseTrials(*trials)
	if ftErr != nil {
		return ftErr
	}

	if *compact {
		return compactStateDir(*stateDir, *specPath, merge)
	}

	var algo core.Algorithm
	switch *algoName {
	case "shortcut":
		algo = core.AlgoShortcut
	case "stacked":
		algo = core.AlgoStackedShortcut
	case "ddt":
		algo = core.AlgoDDT
	default:
		return fmt.Errorf("unknown algorithm %q", *algoName)
	}

	// Observability: one registry feeds -stats, -debug-addr, and the
	// internal instrumentation; the journal is independent so -events works
	// without the counters and vice versa.
	var (
		reg     *telemetry.Registry
		journal *telemetry.Journal
	)
	if *stats || *dbgAddr != "" {
		reg = telemetry.NewRegistry()
	}
	if *events != "" {
		j, err := telemetry.OpenJournal(*events)
		if err != nil {
			return err
		}
		defer j.Close()
		journal = j
	}
	if *stats {
		// Deferred so an interrupted or failed session still reports what it
		// did before dying.
		defer func() {
			fmt.Printf("\n--- runtime telemetry ---\n%s", reg.Snapshot().Table())
		}()
	}
	if *dbgAddr != "" {
		ln, err := net.Listen("tcp", *dbgAddr)
		if err != nil {
			return err
		}
		mux := http.NewServeMux()
		mux.Handle("/debug/vars", reg)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		srv := &http.Server{Handler: mux}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "bugdoc: debug server on http://%s/debug/vars\n", ln.Addr())
	}

	var (
		st     *provenance.Store
		oracle exec.Oracle
		err    error
	)
	switch {
	case *demo != "":
		st, oracle, err = demoPipeline(*demo)
	case *specPath != "" && *provPath != "":
		st, oracle, err = historical(*specPath, *provPath)
	default:
		return fmt.Errorf("need either -demo, or -spec with -provenance")
	}
	if err != nil {
		return err
	}
	if *flake > 0 {
		oracle = synth.NoisyOracle(oracle, synth.SymmetricNoise(*flake, uint64(*seed)))
	}
	if *latency > 0 {
		oracle = exec.LatencyOracle(oracle, *latency)
	}
	if *shards > 1 && *stateDir == "" {
		// Volatile mode: re-home whatever the input mode loaded into a
		// sharded store (demo stores are empty; historical CSVs carry their
		// records over — the snapshot is already a dense validated log, so
		// the bulk loader applies). In durable mode the sharded store is
		// rebuilt by provlog.Open below instead.
		sharded := provenance.NewStoreSharded(st.Space(), *shards)
		if err := sharded.LoadRecords(st.Snapshot().Records()); err != nil {
			return err
		}
		st = sharded
	}
	resumed := -1
	if *resume && *stateDir == "" {
		return fmt.Errorf("-resume requires -state-dir")
	}
	if *stateDir != "" {
		if *resume && !provlog.Exists(*stateDir) {
			return fmt.Errorf("-resume: no session state in %s", *stateDir)
		}
		var logOpts []provlog.Option
		if *syncWin >= 0 {
			logOpts = append(logOpts,
				provlog.WithSync(true),
				provlog.WithSyncPolicy(provlog.SyncPolicy{Interval: *syncWin}))
		}
		if *ckptN > 0 {
			logOpts = append(logOpts,
				provlog.WithCompactPolicy(provlog.CompactPolicy{EveryRecords: *ckptN}))
		}
		if merge != nil {
			logOpts = append(logOpts, provlog.WithMergePolicy(*merge))
		}
		if *shards > 1 {
			logOpts = append(logOpts, provlog.WithStoreShards(*shards))
		}
		if *openPar != 0 {
			logOpts = append(logOpts, provlog.WithOpenParallelism(*openPar))
		}
		if reg != nil || journal != nil {
			logOpts = append(logOpts, provlog.WithMetrics(provlog.NewMetrics(reg, journal)))
		}
		lg, durable, err := provlog.Open(*stateDir, st.Space(), logOpts...)
		if err != nil {
			return err
		}
		defer lg.Close()
		resumed = durable.Len()
		// Carry any provenance loaded outside the log (the historical CSV)
		// into the durable store; records already replayed are skipped.
		sn := st.Snapshot()
		for i := 0; i < sn.Len(); i++ {
			r := sn.At(i)
			if _, ok := durable.Lookup(r.Instance); ok {
				continue
			}
			if err := durable.Add(r.Instance, r.Outcome, r.Source); err != nil {
				return err
			}
		}
		st = durable
	}

	ctx, unnotify := signal.NotifyContext(context.Background(), os.Interrupt)
	defer unnotify()
	exOpts := []exec.Option{exec.WithBudget(*budget), exec.WithWorkers(*workers)}
	if flaky != nil {
		exOpts = append(exOpts, exec.WithFlakyPolicy(*flaky))
	}
	if tel := exec.NewTelemetry(reg, journal, *workers); tel != nil {
		exOpts = append(exOpts, exec.WithTelemetry(tel))
	}
	ex := exec.New(oracle, st, exOpts...)
	r := rand.New(rand.NewSource(*seed))
	if err := core.SeedHistory(ctx, ex, r, 0); err != nil {
		return fmt.Errorf("seeding history: %w", err)
	}
	opts := core.Options{Rand: r}
	var causes interface{ String() string }
	if *goal == "all" {
		causes, err = core.FindAll(ctx, ex, algo, opts)
	} else {
		causes, err = core.FindOne(ctx, ex, algo, opts)
	}
	if err != nil {
		return err
	}
	succ, fail := st.Outcomes()
	fmt.Printf("algorithm:       %v\n", algo)
	fmt.Printf("provenance:      %d instances (%d succeed, %d fail)\n", st.Len(), succ, fail)
	if resumed >= 0 {
		fmt.Printf("resumed:         %d instances replayed from %s\n", resumed, *stateDir)
	}
	fmt.Printf("new executions:  %d\n", ex.Spent())
	fmt.Printf("root causes:     %v\n", causes)
	return nil
}

// parseMergePolicy parses the -merge-policy flag: "" means nil (library
// defaults), otherwise "K:R" with K >= 1 tiers and size ratio R >= 1.
func parseMergePolicy(s string) (*provlog.MergePolicy, error) {
	if s == "" {
		return nil, nil
	}
	k, r, ok := strings.Cut(s, ":")
	if !ok {
		return nil, fmt.Errorf("-merge-policy: want K:R (e.g. 8:4), got %q", s)
	}
	maxTiers, err1 := strconv.Atoi(k)
	ratio, err2 := strconv.Atoi(r)
	if err1 != nil || err2 != nil || maxTiers < 1 || ratio < 1 {
		return nil, fmt.Errorf("-merge-policy: want positive integers K:R (e.g. 8:4), got %q", s)
	}
	return &provlog.MergePolicy{MaxTiers: maxTiers, SizeRatio: ratio}, nil
}

// parseTrials parses the -trials flag: "" means nil (deterministic
// single-trial execution), otherwise "MIN:MAX:Q" with 1 <= MIN <= MAX,
// MAX >= 2, and 1 <= Q <= MAX.
func parseTrials(s string) (*exec.FlakyPolicy, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return nil, fmt.Errorf("-trials: want MIN:MAX:Q (e.g. 3:7:3), got %q", s)
	}
	min, err1 := strconv.Atoi(parts[0])
	max, err2 := strconv.Atoi(parts[1])
	q, err3 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || err3 != nil {
		return nil, fmt.Errorf("-trials: want integers MIN:MAX:Q (e.g. 3:7:3), got %q", s)
	}
	p := exec.FlakyPolicy{MinTrials: min, MaxTrials: max, Quorum: q}
	if !p.Enabled() {
		return nil, fmt.Errorf("-trials: MAX must be at least 2 (got %q); omit the flag for deterministic execution", s)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("-trials: %v", err)
	}
	return &p, nil
}

// compactStateDir runs one explicit compaction over an existing state
// directory: open (replaying the checkpoint tiers + WAL suffix), fold the
// suffix into a new tier, merge tiers the policy says are due, collect
// superseded files, and report the before/after shape. The parameter space
// comes from specPath when given, otherwise from the spec persisted
// alongside the log. A nil merge applies the library default policy.
func compactStateDir(stateDir, specPath string, merge *provlog.MergePolicy) error {
	if stateDir == "" {
		return fmt.Errorf("-compact requires -state-dir")
	}
	if !provlog.Exists(stateDir) {
		return fmt.Errorf("-compact: no session state in %s", stateDir)
	}
	var space *pipeline.Space
	var err error
	if specPath != "" {
		sf, err := os.Open(specPath)
		if err != nil {
			return err
		}
		defer sf.Close()
		space, err = spec.Read(sf)
		if err != nil {
			return err
		}
	} else {
		space, err = provlog.ReadSpace(stateDir)
		if err != nil {
			return err
		}
	}
	segsBefore, err := countFiles(stateDir, "wal-*.seg")
	if err != nil {
		return err
	}
	var logOpts []provlog.Option
	if merge != nil {
		logOpts = append(logOpts, provlog.WithMergePolicy(*merge))
	}
	lg, st, err := provlog.Open(stateDir, space, logOpts...)
	if err != nil {
		return err
	}
	if err := lg.Checkpoint(); err != nil {
		lg.Close()
		return err
	}
	if err := lg.Close(); err != nil {
		return err
	}
	segsAfter, err := countFiles(stateDir, "wal-*.seg")
	if err != nil {
		return err
	}
	fmt.Printf("compacted:       %s\n", stateDir)
	fmt.Printf("records:         %d (checkpoint watermark)\n", st.Len())
	fmt.Printf("segments:        %d -> %d\n", segsBefore, segsAfter)
	return nil
}

func countFiles(dir, pattern string) (int, error) {
	names, err := filepath.Glob(filepath.Join(dir, pattern))
	return len(names), err
}

// historical loads the spec and provenance and replays the log.
func historical(specPath, provPath string) (*provenance.Store, exec.Oracle, error) {
	sf, err := os.Open(specPath)
	if err != nil {
		return nil, nil, err
	}
	defer sf.Close()
	space, err := spec.Read(sf)
	if err != nil {
		return nil, nil, err
	}
	pf, err := os.Open(provPath)
	if err != nil {
		return nil, nil, err
	}
	defer pf.Close()
	st, err := provenance.ReadCSV(space, pf, "csv")
	if err != nil {
		return nil, nil, err
	}
	var ins []pipeline.Instance
	var outs []pipeline.Outcome
	for _, rec := range st.Snapshot().Records() {
		ins = append(ins, rec.Instance)
		outs = append(outs, rec.Outcome)
	}
	oracle, err := exec.NewHistoricalOracle(ins, outs)
	if err != nil {
		return nil, nil, err
	}
	return st, oracle, nil
}

// demoPipeline instantiates one of the built-in simulators.
func demoPipeline(name string) (*provenance.Store, exec.Oracle, error) {
	switch name {
	case "ml":
		p, err := mlsim.New()
		if err != nil {
			return nil, nil, err
		}
		return provenance.NewStore(p.Space), p.Oracle(), nil
	case "polygamy":
		p, err := polygamy.New()
		if err != nil {
			return nil, nil, err
		}
		return provenance.NewStore(p.Space), p.Oracle(), nil
	case "gan":
		p, err := gansim.New()
		if err != nil {
			return nil, nil, err
		}
		return provenance.NewStore(p.Space), p.Oracle(), nil
	default:
		return nil, nil, fmt.Errorf("unknown demo %q (want ml, polygamy, or gan)", name)
	}
}
