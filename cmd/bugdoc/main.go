// Command bugdoc debugs a computational pipeline from the command line.
//
// Two modes:
//
//	# Historical mode: debug a provenance log (no new executions possible).
//	bugdoc -spec pipeline.json -provenance runs.csv -algo ddt -goal all
//
//	# Demo mode: debug one of the built-in simulated pipelines live.
//	bugdoc -demo ml -algo shortcut
//	bugdoc -demo polygamy -algo ddt -goal all
//	bugdoc -demo gan -algo stacked
//
// The spec file declares the parameter space (see internal/spec); the
// provenance CSV has one column per parameter plus an "outcome" column with
// values "succeed"/"fail".
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/gansim"
	"repro/internal/mlsim"
	"repro/internal/pipeline"
	"repro/internal/polygamy"
	"repro/internal/provenance"
	"repro/internal/spec"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bugdoc:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		specPath = flag.String("spec", "", "pipeline spec JSON (historical mode)")
		provPath = flag.String("provenance", "", "provenance CSV (historical mode)")
		demo     = flag.String("demo", "", "built-in pipeline: ml | polygamy | gan")
		algoName = flag.String("algo", "ddt", "algorithm: shortcut | stacked | ddt")
		goal     = flag.String("goal", "one", "goal: one | all")
		budget   = flag.Int("budget", -1, "max new pipeline executions (-1 = unlimited)")
		workers  = flag.Int("workers", 4, "parallel execution workers")
		seed     = flag.Int64("seed", 1, "randomness seed")
	)
	flag.Parse()

	var algo core.Algorithm
	switch *algoName {
	case "shortcut":
		algo = core.AlgoShortcut
	case "stacked":
		algo = core.AlgoStackedShortcut
	case "ddt":
		algo = core.AlgoDDT
	default:
		return fmt.Errorf("unknown algorithm %q", *algoName)
	}

	var (
		st     *provenance.Store
		oracle exec.Oracle
		err    error
	)
	switch {
	case *demo != "":
		st, oracle, err = demoPipeline(*demo)
	case *specPath != "" && *provPath != "":
		st, oracle, err = historical(*specPath, *provPath)
	default:
		return fmt.Errorf("need either -demo, or -spec with -provenance")
	}
	if err != nil {
		return err
	}

	ctx := context.Background()
	ex := exec.New(oracle, st, exec.WithBudget(*budget), exec.WithWorkers(*workers))
	r := rand.New(rand.NewSource(*seed))
	if err := core.SeedHistory(ctx, ex, r, 0); err != nil {
		return fmt.Errorf("seeding history: %w", err)
	}
	opts := core.Options{Rand: r}
	var causes interface{ String() string }
	if *goal == "all" {
		causes, err = core.FindAll(ctx, ex, algo, opts)
	} else {
		causes, err = core.FindOne(ctx, ex, algo, opts)
	}
	if err != nil {
		return err
	}
	succ, fail := st.Outcomes()
	fmt.Printf("algorithm:       %v\n", algo)
	fmt.Printf("provenance:      %d instances (%d succeed, %d fail)\n", st.Len(), succ, fail)
	fmt.Printf("new executions:  %d\n", ex.Spent())
	fmt.Printf("root causes:     %v\n", causes)
	return nil
}

// historical loads the spec and provenance and replays the log.
func historical(specPath, provPath string) (*provenance.Store, exec.Oracle, error) {
	sf, err := os.Open(specPath)
	if err != nil {
		return nil, nil, err
	}
	defer sf.Close()
	space, err := spec.Read(sf)
	if err != nil {
		return nil, nil, err
	}
	pf, err := os.Open(provPath)
	if err != nil {
		return nil, nil, err
	}
	defer pf.Close()
	st, err := provenance.ReadCSV(space, pf, "csv")
	if err != nil {
		return nil, nil, err
	}
	var ins []pipeline.Instance
	var outs []pipeline.Outcome
	for _, rec := range st.Records() {
		ins = append(ins, rec.Instance)
		outs = append(outs, rec.Outcome)
	}
	oracle, err := exec.NewHistoricalOracle(ins, outs)
	if err != nil {
		return nil, nil, err
	}
	return st, oracle, nil
}

// demoPipeline instantiates one of the built-in simulators.
func demoPipeline(name string) (*provenance.Store, exec.Oracle, error) {
	switch name {
	case "ml":
		p, err := mlsim.New()
		if err != nil {
			return nil, nil, err
		}
		return provenance.NewStore(p.Space), p.Oracle(), nil
	case "polygamy":
		p, err := polygamy.New()
		if err != nil {
			return nil, nil, err
		}
		return provenance.NewStore(p.Space), p.Oracle(), nil
	case "gan":
		p, err := gansim.New()
		if err != nil {
			return nil, nil, err
		}
		return provenance.NewStore(p.Space), p.Oracle(), nil
	default:
		return nil, nil, fmt.Errorf("unknown demo %q (want ml, polygamy, or gan)", name)
	}
}
