// Command benchdiff gates benchmark regressions: it parses `go test
// -bench` output, takes the median ns/op per benchmark across repeated
// counts, and compares the gated benchmarks against a committed baseline,
// failing when any regresses beyond the threshold.
//
//	go test -run xxx -bench 'StoreLookup$|TreeGrow$' -benchtime=100ms -count=5 . | tee bench.out
//	benchdiff -baseline BENCH_BASELINE.json -bench bench.out
//
// Gate with time-based benchtime and several counts: iteration-count
// samples (e.g. -benchtime=3x) of sub-microsecond benchmarks measure
// mostly scheduler noise, and a median over a handful of 100ms runs is
// what makes a 25% threshold meaningful.
//
// The baseline is a JSON object mapping benchmark names (GOMAXPROCS
// suffix stripped, so "BenchmarkStoreLookup-8" gates as
// "BenchmarkStoreLookup") to median ns/op. Only names present in the
// baseline gate the build; a gated benchmark missing from the results is
// itself a failure, so coverage cannot silently rot. Improvements beyond
// the threshold are reported as a hint to refresh the baseline.
//
// -keep-procs keeps the -GOMAXPROCS suffix in benchmark names instead.
// Use it to gate `go test -cpu 1,4,8` sweeps, where the suffix is the
// independent variable: without it the per-cpu samples of one benchmark
// would collapse into a single meaningless median.
//
// Maintenance:
//
//	# refresh the medians of the existing gated set
//	benchdiff -baseline BENCH_BASELINE.json -bench bench.out -update
//	# (re)define the gated set and write its medians
//	benchdiff -baseline BENCH_BASELINE.json -bench bench.out -update \
//	    -gate BenchmarkStoreLookup,BenchmarkTreeGrow
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

var errRegressed = fmt.Errorf("benchmark regression over threshold")

func run() error {
	var (
		baselinePath = flag.String("baseline", "BENCH_BASELINE.json", "baseline JSON of gated medians")
		benchPath    = flag.String("bench", "-", "go test -bench output to compare (\"-\" = stdin)")
		threshold    = flag.Float64("threshold", 0.25, "fail when median ns/op regresses beyond this fraction")
		update       = flag.Bool("update", false, "rewrite the baseline with the measured medians instead of gating")
		gate         = flag.String("gate", "", "with -update: comma-separated benchmark names replacing the gated set")
		keepProcs    = flag.Bool("keep-procs", false, "keep the -GOMAXPROCS suffix in names (gate -cpu sweeps per cpu count)")
	)
	flag.Parse()

	medians, err := readMedians(*benchPath, *keepProcs)
	if err != nil {
		return err
	}
	if len(medians) == 0 {
		return fmt.Errorf("no benchmark results in %s", *benchPath)
	}

	if *update {
		return writeBaseline(*baselinePath, medians, *gate)
	}

	baseline, err := readBaseline(*baselinePath)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	for _, name := range names {
		old := baseline[name]
		now, ok := medians[name]
		if !ok {
			fmt.Printf("FAIL %-44s gated benchmark missing from results\n", name)
			failed = true
			continue
		}
		delta := (now - old) / old
		switch {
		case delta > *threshold:
			fmt.Printf("FAIL %-44s %12.1f -> %12.1f ns/op  (%+.1f%% > %.0f%%)\n",
				name, old, now, 100*delta, 100**threshold)
			failed = true
		case delta < -*threshold:
			fmt.Printf("ok   %-44s %12.1f -> %12.1f ns/op  (%+.1f%%, consider -update)\n",
				name, old, now, 100*delta)
		default:
			fmt.Printf("ok   %-44s %12.1f -> %12.1f ns/op  (%+.1f%%)\n", name, old, now, 100*delta)
		}
	}
	if failed {
		return errRegressed
	}
	return nil
}

// benchLine matches one result line of go test -bench output, capturing
// the benchmark name and its ns/op.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+(?:e[+-]?[0-9]+)?) ns/op`)

// stripProcs removes the trailing -GOMAXPROCS suffix so results compare
// across machines with different core counts.
func stripProcs(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// readMedians parses the bench output and reduces repeated counts of each
// benchmark to the median ns/op. keepProcs preserves the -GOMAXPROCS
// suffix, keeping the samples of a -cpu sweep apart.
func readMedians(path string, keepProcs bool) (map[string]float64, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	samples := make(map[string][]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		name := m[1]
		if !keepProcs {
			name = stripProcs(name)
		}
		samples[name] = append(samples[name], ns)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	medians := make(map[string]float64, len(samples))
	for name, vals := range samples {
		sort.Float64s(vals)
		n := len(vals)
		if n%2 == 1 {
			medians[name] = vals[n/2]
		} else {
			medians[name] = (vals[n/2-1] + vals[n/2]) / 2
		}
	}
	return medians, nil
}

func readBaseline(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	baseline := make(map[string]float64)
	if err := json.Unmarshal(data, &baseline); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(baseline) == 0 {
		return nil, fmt.Errorf("%s gates no benchmarks", path)
	}
	return baseline, nil
}

// writeBaseline refreshes the gated medians: the names come from -gate
// when given, from the existing baseline otherwise.
func writeBaseline(path string, medians map[string]float64, gate string) error {
	var names []string
	if gate != "" {
		for _, n := range strings.Split(gate, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	} else {
		old, err := readBaseline(path)
		if err != nil {
			return fmt.Errorf("-update without -gate needs an existing baseline: %w", err)
		}
		for n := range old {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	out := make(map[string]float64, len(names))
	for _, n := range names {
		med, ok := medians[n]
		if !ok {
			return fmt.Errorf("gated benchmark %s missing from results", n)
		}
		out[n] = med
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s with %d gated benchmarks\n", path, len(out))
	return nil
}
