// Command bugdoc-bench regenerates the tables and figures of the BugDoc
// paper's evaluation (Section 5) on this reproduction's simulators.
//
//	bugdoc-bench -exp tables              # Tables 1 and 2 walkthrough
//	bugdoc-bench -exp fig2 -scenario single|conjunction|disjunction
//	bugdoc-bench -exp fig3                # FindAll, disjunction scenario
//	bugdoc-bench -exp fig4                # conciseness
//	bugdoc-bench -exp fig5                # instances vs |P|
//	bugdoc-bench -exp fig6                # parallel scale-up
//	bugdoc-bench -exp fig7                # real-world pipelines
//	bugdoc-bench -exp dbsherlock          # classifier accuracy (paper: 98%)
//	bugdoc-bench -exp all
//
// The -full flag uses the paper's parameter ranges (slower); the default
// uses reduced ranges that finish in seconds while preserving the shapes.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/synth"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bugdoc-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp       = flag.String("exp", "all", "experiment: tables | fig2 | fig3 | fig4 | fig5 | fig6 | fig7 | dbsherlock | all")
		scenario  = flag.String("scenario", "single", "fig2 scenario: single | conjunction | disjunction")
		pipelines = flag.Int("pipelines", 0, "synthetic pipelines per cell (0 = default)")
		seed      = flag.Int64("seed", 1, "randomness seed")
		full      = flag.Bool("full", false, "use the paper's full parameter ranges")
	)
	flag.Parse()

	synthCfg := synth.Config{MinParams: 3, MaxParams: 6, MinValues: 4, MaxValues: 8}
	if *full {
		synthCfg = synth.Config{} // paper defaults: 3-15 params, 5-30 values
	}
	ctx := context.Background()

	runOne := func(name string) error {
		switch name {
		case "tables":
			res, err := experiments.Tables12(ctx)
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "fig2":
			sc, err := parseScenario(*scenario)
			if err != nil {
				return err
			}
			res, err := experiments.Fig23(ctx, experiments.Fig23Config{
				Scenario: sc, Pipelines: *pipelines, Seed: *seed, Synth: synthCfg,
			})
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "fig3":
			res, err := experiments.Fig23(ctx, experiments.Fig23Config{
				Scenario: synth.Disjunction, Pipelines: *pipelines, Seed: *seed,
				FindAll: true, Synth: synthCfg,
			})
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "fig4":
			res, err := experiments.Fig4(ctx, experiments.Fig4Config{
				Pipelines: *pipelines, Seed: *seed, Synth: synthCfg,
			})
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "fig5":
			cfg := experiments.Fig5Config{Seed: *seed}
			if *full {
				cfg.MinValues, cfg.MaxValues = 5, 30
			}
			res, err := experiments.Fig5(ctx, cfg)
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "fig6":
			res, err := experiments.Fig6(ctx, experiments.Fig6Config{Seed: *seed, Synth: synthCfg})
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "fig7":
			cfg := experiments.Fig7Config{Seed: *seed}
			if *full {
				cfg.DBSherlockClasses = 10
			}
			res, err := experiments.Fig7(ctx, cfg)
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "dbsherlock":
			res, err := experiments.DBSherlockAccuracy(ctx, experiments.DBSherlockConfig{Seed: *seed})
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	if *exp == "all" {
		for _, name := range []string{"tables", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "dbsherlock"} {
			fmt.Printf("==== %s ====\n", name)
			if err := runOne(name); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	return runOne(*exp)
}

func parseScenario(s string) (synth.Scenario, error) {
	switch s {
	case "single":
		return synth.SingleTriple, nil
	case "conjunction":
		return synth.SingleConjunction, nil
	case "disjunction":
		return synth.Disjunction, nil
	default:
		return 0, fmt.Errorf("unknown scenario %q", s)
	}
}
