// Command buglint runs the project's static analyzers (internal/analysis)
// over the given packages and reports unsuppressed findings. It exits 0
// when the tree is clean, 1 when any finding survives suppression, and 2
// when packages fail to load or typecheck.
//
// Usage:
//
//	buglint [-checks lockorder,crossspace,...] [-list] [packages]
//
// Packages are directories or "dir/..." patterns; the default is ./...
// relative to the current module. Findings print as
// file:line:col: [check] message. Intentional violations are silenced in
// source with `//buglint:ignore <check> <reason>`; the reason is
// mandatory, and malformed or mistyped directives are themselves findings.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	checks := flag.String("checks", "", "comma-separated checks to run (default: all)")
	list := flag.Bool("list", false, "list available checks and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: buglint [-checks c1,c2] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	all := analysis.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	enabled := all
	if *checks != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range all {
			byName[a.Name] = a
		}
		enabled = nil
		for _, name := range strings.Split(*checks, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "buglint: unknown check %q (see -list)\n", name)
				os.Exit(2)
			}
			enabled = append(enabled, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := analysis.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "buglint: %v\n", err)
		os.Exit(2)
	}
	if len(dirs) == 0 {
		fmt.Fprintln(os.Stderr, "buglint: no packages matched")
		os.Exit(2)
	}

	ld, err := analysis.NewLoader(dirs[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "buglint: %v\n", err)
		os.Exit(2)
	}
	total := 0
	for _, dir := range dirs {
		pkg, err := ld.LoadDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "buglint: %v\n", err)
			os.Exit(2)
		}
		findings, err := analysis.Run(pkg, enabled)
		if err != nil {
			fmt.Fprintf(os.Stderr, "buglint: %v\n", err)
			os.Exit(2)
		}
		for _, f := range findings {
			rel := f
			if wd, err := os.Getwd(); err == nil {
				if r, err := relPath(wd, f.Position.Filename); err == nil {
					rel.Position.Filename = r
				}
			}
			fmt.Println(rel)
			total++
		}
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "buglint: %d finding(s)\n", total)
		os.Exit(1)
	}
}

// relPath shortens name relative to wd when it lies beneath it.
func relPath(wd, name string) (string, error) {
	if !strings.HasPrefix(name, wd) {
		return name, nil
	}
	return "." + strings.TrimPrefix(name, wd), nil
}
