package main

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dtree"
	"repro/internal/exec"
	"repro/internal/mlsim"
	"repro/internal/provenance"
)

func main() {
	ctx := context.Background()
	ml, _ := mlsim.New()
	st := provenance.NewStore(ml.Space)
	ex := exec.New(ml.Oracle(), st)
	core.SeedHistory(ctx, ex, rand.New(rand.NewSource(3)), 0)
	got, err := core.DebugDecisionTrees(ctx, ex, core.DDTOptions{Rand: rand.New(rand.NewSource(3)), FindAll: true, Simplify: true})
	fmt.Println("ddt:", got, err)
	// Build the final tree and show suspects
	var exs []dtree.Example
	for _, r := range st.Snapshot().Records() {
		exs = append(exs, dtree.Example{Instance: r.Instance, Outcome: r.Outcome})
	}
	tree := dtree.Build(ml.Space, exs)
	fmt.Print(tree.String())
	for _, s := range tree.Suspects() {
		fmt.Println("suspect:", s.Path, s.Support)
	}
	s, f := st.Outcomes()
	fmt.Println("records:", st.Len(), "succ:", s, "fail:", f)
}
