// Command synthgen emits a synthetic benchmark pipeline to files: the
// parameter-space spec, an initial provenance CSV sampled from the
// pipeline, and the planted ground truth — ready for `bugdoc -spec ... -provenance ...`.
//
//	synthgen -scenario disjunction -seed 7 -samples 100 -out ./pipeline1
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/exec"
	"repro/internal/provenance"
	"repro/internal/spec"
	"repro/internal/synth"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "synthgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scenario = flag.String("scenario", "conjunction", "single | conjunction | disjunction")
		seed     = flag.Int64("seed", 1, "randomness seed")
		samples  = flag.Int("samples", 100, "provenance instances to sample")
		out      = flag.String("out", ".", "output directory")
	)
	flag.Parse()

	var sc synth.Scenario
	switch *scenario {
	case "single":
		sc = synth.SingleTriple
	case "conjunction":
		sc = synth.SingleConjunction
	case "disjunction":
		sc = synth.Disjunction
	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}

	r := rand.New(rand.NewSource(*seed))
	p, err := synth.Generate(r, synth.Config{}, sc)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	// spec.json
	sf, err := os.Create(filepath.Join(*out, "spec.json"))
	if err != nil {
		return err
	}
	if err := spec.Write(sf, p.Space); err != nil {
		sf.Close()
		return err
	}
	if err := sf.Close(); err != nil {
		return err
	}

	// provenance.csv: sampled random executions.
	st := provenance.NewStore(p.Space)
	ex := exec.New(p.Oracle(), st)
	ctx := context.Background()
	for i := 0; i < *samples; i++ {
		// Duplicates are served from provenance and add no rows.
		if _, err := ex.Evaluate(ctx, p.Space.RandomInstance(r)); err != nil {
			return err
		}
	}
	pf, err := os.Create(filepath.Join(*out, "provenance.csv"))
	if err != nil {
		return err
	}
	if err := st.WriteCSV(pf); err != nil {
		pf.Close()
		return err
	}
	if err := pf.Close(); err != nil {
		return err
	}

	// truth.txt: the planted ground truth, for scoring.
	truth := fmt.Sprintf("failure condition: %v\nminimal definitive root causes:\n", p.Truth)
	for _, m := range p.Minimal {
		truth += "  " + m.String() + "\n"
	}
	if err := os.WriteFile(filepath.Join(*out, "truth.txt"), []byte(truth), 0o644); err != nil {
		return err
	}

	succ, fail := st.Outcomes()
	fmt.Printf("wrote %s: %s\n", *out, p.Space)
	fmt.Printf("provenance: %d instances (%d succeed, %d fail)\n", st.Len(), succ, fail)
	fmt.Printf("ground truth: %v\n", p.Truth)
	return nil
}
