package bugdoc_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"testing"

	"repro/bugdoc"
)

// TestJournalMatchesStore is the differential test from the issue: after a
// randomized session, the journal's completed-trial count and the trial
// counter both equal the store's committed record count — every oracle run
// is journaled exactly once and recorded exactly once.
func TestJournalMatchesStore(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		r := rand.New(rand.NewSource(seed))
		space := bugdoc.MustSpace(
			bugdoc.Parameter{Name: "a", Kind: bugdoc.Ordinal, Domain: []bugdoc.Value{
				bugdoc.Ord(1), bugdoc.Ord(2), bugdoc.Ord(3), bugdoc.Ord(4), bugdoc.Ord(5),
			}},
			bugdoc.Parameter{Name: "b", Kind: bugdoc.Categorical, Domain: []bugdoc.Value{
				bugdoc.Cat("x"), bugdoc.Cat("y"), bugdoc.Cat("z"),
			}},
		)
		badA := bugdoc.Ord(float64(1 + r.Intn(5)))
		oracle := bugdoc.OracleFunc(func(_ context.Context, in bugdoc.Instance) (bugdoc.Outcome, error) {
			if v, _ := in.ByName("a"); v == badA {
				return bugdoc.Fail, nil
			}
			return bugdoc.Succeed, nil
		})

		reg := bugdoc.NewRegistry()
		var jbuf bytes.Buffer
		session, err := bugdoc.NewSession(space, oracle,
			bugdoc.WithSeed(seed), bugdoc.WithWorkers(4),
			bugdoc.WithTelemetry(reg), bugdoc.WithJournal(bugdoc.NewJournal(&jbuf)))
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		if err := session.Seed(ctx); err != nil {
			t.Fatal(err)
		}
		if _, err := session.FindAll(ctx, bugdoc.DebuggingDecisionTrees); err != nil {
			t.Fatal(err)
		}

		stats := session.Stats()
		records := int64(session.Store().Len())
		if got := stats.Counters["exec_oracle_trials"]; got != records {
			t.Errorf("seed %d: %d oracle trials but %d committed records", seed, got, records)
		}
		if h := stats.Histograms["exec_oracle_latency_ns"]; h.Count != stats.Counters["exec_oracle_trials"] {
			t.Errorf("seed %d: latency histogram count %d != trial counter %d",
				seed, h.Count, stats.Counters["exec_oracle_trials"])
		}

		trialEnds := int64(0)
		sc := bufio.NewScanner(bytes.NewReader(jbuf.Bytes()))
		for sc.Scan() {
			var m map[string]any
			if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
				t.Fatalf("seed %d: journal line not JSON: %v: %q", seed, err, sc.Text())
			}
			if m["ev"] == "trial_end" {
				if m["outcome"] != "succeed" && m["outcome"] != "fail" {
					t.Errorf("seed %d: unexpected trial outcome %v", seed, m["outcome"])
				}
				trialEnds++
			}
		}
		if trialEnds != records {
			t.Errorf("seed %d: %d journaled trials but %d committed records", seed, trialEnds, records)
		}
	}
}

func TestStatsWithoutTelemetry(t *testing.T) {
	space := bugdoc.MustSpace(
		bugdoc.Parameter{Name: "a", Kind: bugdoc.Ordinal, Domain: []bugdoc.Value{
			bugdoc.Ord(1), bugdoc.Ord(2),
		}},
	)
	oracle := bugdoc.OracleFunc(func(context.Context, bugdoc.Instance) (bugdoc.Outcome, error) {
		return bugdoc.Succeed, nil
	})
	session, err := bugdoc.NewSession(space, oracle)
	if err != nil {
		t.Fatal(err)
	}
	stats := session.Stats()
	if stats.Counters == nil || stats.Gauges == nil || stats.Histograms == nil {
		t.Fatal("uninstrumented Stats() must still return well-formed maps")
	}
	if len(stats.Counters) != 0 {
		t.Fatalf("uninstrumented session recorded counters: %v", stats.Counters)
	}
}
