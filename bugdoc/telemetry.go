package bugdoc

import (
	"repro/internal/exec"
	"repro/internal/telemetry"
)

// Telemetry re-exports: the runtime instrumentation layer (not to be
// confused with the paper-evaluation scoring in internal/metrics — see
// docs/ARCHITECTURE.md).
type (
	// Registry is a named collection of runtime metrics; snapshot it for
	// the /debug/vars JSON shape or render Snapshot().Table().
	Registry = telemetry.Registry
	// StatsSnapshot is a point-in-time view of every metric in a Registry.
	StatsSnapshot = telemetry.Snapshot
	// Journal is a JSON-lines session event log (oracle trials, batch
	// dispatches, WAL flushes, checkpoints, epoch refreshes).
	Journal = telemetry.Journal
)

// Telemetry constructors re-exported from internal/telemetry.
var (
	// NewRegistry builds an empty metrics registry.
	NewRegistry = telemetry.NewRegistry
	// NewJournal builds a session event journal over an io.Writer.
	NewJournal = telemetry.NewJournal
	// OpenJournal creates a session event journal file.
	OpenJournal = telemetry.OpenJournal
)

// WithTelemetry instruments the whole session stack — executor, drivers,
// provenance store, and (for durable sessions) the write-ahead log —
// recording hot-path counters and latency histograms into reg. Every
// metric write is one atomic add; sessions without this option pay a
// single nil check per operation and allocate nothing. Snapshot reg (or
// call Session.Stats) at any time, including while the session runs.
func WithTelemetry(reg *Registry) Option {
	return func(s *Session) { s.telemetryReg = reg }
}

// WithJournal streams structured session events (JSON lines) to j: oracle
// trial spans with instance hash, outcome, and duration; batch dispatches;
// group-commit flushes; checkpoints; epoch refreshes. The journal is
// line-atomic under concurrency. Unlike WithTelemetry's counters, emitting
// an event allocates, so journals record span-level events only — the
// per-record hot paths stay untouched. Close the journal after the
// session when it owns a file (OpenJournal).
func WithJournal(j *Journal) Option {
	return func(s *Session) { s.journal = j }
}

// Stats snapshots the session's runtime telemetry. Without WithTelemetry
// it returns an empty (but well-formed) snapshot.
func (s *Session) Stats() StatsSnapshot {
	return s.telemetryReg.Snapshot()
}

// telemetryOption builds the executor option carrying the session's
// instrumentation, or nil when the session is uninstrumented.
func (s *Session) telemetryOption() exec.Option {
	if s.telemetryReg == nil && s.journal == nil {
		return nil
	}
	return exec.WithTelemetry(exec.NewTelemetry(s.telemetryReg, s.journal, s.workers))
}
