// Package bugdoc is the public API of this BugDoc reproduction (Lourenço,
// Freire, Shasha: "BugDoc: Algorithms to Debug Computational Processes",
// SIGMOD 2020). It finds minimal definitive root causes of failures in
// black-box computational pipelines by analyzing previously-run instances
// and selectively executing new ones.
//
// The core workflow:
//
//	space := bugdoc.MustSpace(
//	    bugdoc.Parameter{Name: "estimator", Kind: bugdoc.Categorical, Domain: ...},
//	    ...)
//	session, err := bugdoc.NewSession(space, oracle,
//	    bugdoc.WithWorkers(4), bugdoc.WithBudget(100))
//	causes, err := session.FindAll(ctx, bugdoc.DebuggingDecisionTrees)
//
// An Oracle runs one pipeline instance and reports Succeed or Fail; the
// Session memoizes every execution in a provenance store, enforces the
// instance budget, and dispatches independent executions across workers.
// Results are predicate.DNF values: disjunctions of conjunctions of
// (parameter, comparator, value) triples, simplified with Quine-McCluskey.
//
// Sessions can be durable: WithDurability(dir) write-ahead logs every
// execution, and ResumeSession(dir, oracle) reopens a session — even one
// whose process was killed mid-search — replaying all logged evaluations
// so no oracle call is ever paid for twice.
package bugdoc

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/pipeline"
	"repro/internal/predicate"
	"repro/internal/provenance"
	"repro/internal/provlog"
)

// Re-exported model types: see the internal packages for full
// documentation.
type (
	// Space is an ordered parameter space.
	Space = pipeline.Space
	// Parameter declares one manipulable parameter.
	Parameter = pipeline.Parameter
	// Value is an ordinal or categorical parameter value.
	Value = pipeline.Value
	// Kind discriminates ordinal from categorical values.
	Kind = pipeline.Kind
	// Instance is one pipeline instance (full assignment).
	Instance = pipeline.Instance
	// Assignment is one (parameter, value) pair.
	Assignment = pipeline.Assignment
	// Outcome is an evaluation result.
	Outcome = pipeline.Outcome
	// Oracle runs one instance and evaluates it.
	Oracle = exec.Oracle
	// OracleFunc adapts a function to Oracle.
	OracleFunc = exec.OracleFunc
	// Triple is a parameter-comparator-value condition.
	Triple = predicate.Triple
	// Comparator is one of =, !=, <=, >.
	Comparator = predicate.Comparator
	// Conjunction is a root cause: a conjunction of triples.
	Conjunction = predicate.Conjunction
	// DNF is a disjunction of root causes.
	DNF = predicate.DNF
	// Store is the provenance log of executed instances.
	Store = provenance.Store
	// Record is one provenance entry.
	Record = provenance.Record
	// SyncPolicy tunes the durable log's group commit: how concurrent
	// appends coalesce into commit windows (one buffered write, and — with
	// WithFsync — one fsync, per window).
	SyncPolicy = provlog.SyncPolicy
	// MergePolicy schedules the durable log's checkpoint tier compaction:
	// how many LSM-style tiers may accumulate and how steeply their sizes
	// must grow before adjacent tiers merge.
	MergePolicy = provlog.MergePolicy
	// FlakyPolicy configures quorum outcome resolution for sessions whose
	// oracle is non-deterministic: how many trials to dispatch per
	// instance and how many agreeing votes resolve it.
	FlakyPolicy = exec.FlakyPolicy
)

// Value kinds.
const (
	Ordinal     = pipeline.Ordinal
	Categorical = pipeline.Categorical
)

// Outcomes.
const (
	Succeed = pipeline.Succeed
	Fail    = pipeline.Fail
	// Inconclusive records a flaky quorum that tied at its trial cap:
	// the instance is memoized (never re-dispatched) but counts as
	// evidence for neither side.
	Inconclusive = pipeline.OutcomeInconclusive
)

// Comparators.
const (
	Eq  = predicate.Eq
	Neq = predicate.Neq
	Le  = predicate.Le
	Gt  = predicate.Gt
)

// Constructors re-exported from the model packages.
var (
	// Ord builds an ordinal value.
	Ord = pipeline.Ord
	// Cat builds a categorical value.
	Cat = pipeline.Cat
	// NewSpace validates and builds a parameter space.
	NewSpace = pipeline.NewSpace
	// MustSpace is NewSpace or panic.
	MustSpace = pipeline.MustSpace
	// NewInstance builds an instance from values in space order.
	NewInstance = pipeline.NewInstance
	// MustInstance is NewInstance or panic.
	MustInstance = pipeline.MustInstance
	// T builds a triple.
	T = predicate.T
	// NewStore builds an empty provenance store.
	NewStore = provenance.NewStore
	// LatencyOracle wraps an oracle with per-run latency.
	LatencyOracle = exec.LatencyOracle
)

// Algorithm selects a debugging algorithm.
type Algorithm = core.Algorithm

// The three BugDoc algorithms.
const (
	// Shortcut is Algorithm 1: a single linear substitution pass.
	Shortcut = core.AlgoShortcut
	// StackedShortcut is Algorithm 2: shortcut against k disjoint goods.
	StackedShortcut = core.AlgoStackedShortcut
	// DebuggingDecisionTrees is the Section 4.2 algorithm.
	DebuggingDecisionTrees = core.AlgoDDT
)

// Option configures a Session.
type Option func(*Session)

// WithBudget caps the number of new pipeline executions (the paper's cost
// measure); n < 0 means unlimited (the default).
func WithBudget(n int) Option {
	return func(s *Session) { s.budget = n }
}

// WithWorkers sets the parallel dispatch pool size (Section 4.3).
func WithWorkers(n int) Option {
	return func(s *Session) { s.workers = n }
}

// WithSeed fixes the randomness used for instance sampling.
func WithSeed(seed int64) Option {
	return func(s *Session) { s.seed = seed }
}

// WithShards shards the session's provenance store across n instance-hash
// ranges (rounded up to a power of two), each with its own lock and
// indices, so sessions with many workers contend per hash range instead of
// on one store lock. Results are identical at every shard count; the shard
// count is a property of the in-memory store only, so a durable session's
// state directory can be resumed with any value. The default (1) is the
// historic unsharded store.
func WithShards(n int) Option {
	return func(s *Session) { s.shards = n }
}

// WithOpenParallelism sets how many goroutines a durable session's open
// uses to decode its checkpoint (see provlog.WithOpenParallelism): the
// checkpoint's fixed-width rows split into contiguous ranges decoded
// concurrently, so resuming a large session scales with the machine's
// cores. The default (0) is GOMAXPROCS; 1 forces the sequential load. Like
// the shard count it only shapes the load — every value rebuilds an
// identical store. It has no effect without WithDurability.
func WithOpenParallelism(n int) Option {
	return func(s *Session) { s.openParallel = n }
}

// WithHistory pre-populates the provenance with previously-run instances
// G = CP_1..CP_k; their evaluations are free.
func WithHistory(records []Record) Option {
	return func(s *Session) { s.history = append(s.history, records...) }
}

// WithDurability write-ahead logs the session's provenance under dir
// (internal/provlog): every oracle result is on disk before it is used, and
// a session opened over an existing log resumes it — already-evaluated
// instances are served from the replayed provenance with zero repeated
// oracle calls. Sessions with durability must be Closed.
func WithDurability(dir string) Option {
	return func(s *Session) { s.stateDir = dir }
}

// WithSyncPolicy tunes group commit for a durable session's write-ahead
// log: concurrent executions coalesce their log appends into commit
// windows of at most MaxBatch records, each flushed with one buffered
// write after at most Interval of accumulation. It has no effect without
// WithDurability.
func WithSyncPolicy(p SyncPolicy) Option {
	return func(s *Session) { s.syncPolicy = &p }
}

// WithFsync makes the durable session fsync every commit window, trading
// throughput for zero loss on a machine crash (the default leaves flushing
// to the OS; a process kill alone loses nothing either way). It has no
// effect without WithDurability.
func WithFsync(on bool) Option {
	return func(s *Session) { s.fsync = on }
}

// WithMergePolicy sets the checkpoint tier-compaction policy of a durable
// session's write-ahead log: every compaction folds only the records past
// the newest checkpoint into a small tier file, and adjacent tiers merge
// when more than MaxTiers accumulate or an older tier is less than
// SizeRatio times its newer neighbor — so checkpoint cost tracks the
// session's recent work, not its whole history. Zero fields take the
// defaults (8 tiers, ratio 4); MaxTiers 1 restores the historic
// full-rewrite compaction. It has no effect without WithDurability.
func WithMergePolicy(p MergePolicy) Option {
	return func(s *Session) { s.mergePolicy = &p }
}

// WithFlakyPolicy declares the session's oracle non-deterministic: every
// new instance is dispatched between MinTrials and MaxTrials times and
// its recorded outcome is resolved by majority vote once Quorum agreeing
// verdicts accumulate (an exact tie at MaxTrials records Inconclusive,
// which supports neither side). Each trial consumes one budget unit. On
// durable sessions every trial is write-ahead logged, so a killed session
// resumes mid-quorum with its accumulated votes. The zero policy (and any
// MaxTrials <= 1) keeps the deterministic single-trial path.
func WithFlakyPolicy(p FlakyPolicy) Option {
	return func(s *Session) { s.flakyPolicy = &p }
}

// WithCompactEvery schedules automatic compaction for a durable session:
// whenever n records have been logged past the newest checkpoint, the
// write-ahead log folds its sealed history into a checkpoint in the
// background and collects the superseded segments, keeping resume cost
// bounded by the live history instead of the session's whole past. n <= 0
// (the default) disables automatic compaction; Session.Checkpoint compacts
// on demand either way. It has no effect without WithDurability.
func WithCompactEvery(n int) Option {
	return func(s *Session) { s.compactEvery = n }
}

// Session is a debugging session over one pipeline: an oracle, a provenance
// store, and budgeted, parallel execution — optionally durable and
// resumable (WithDurability, ResumeSession).
type Session struct {
	space        *Space
	ex           *exec.Executor
	seed         int64
	budget       int
	workers      int
	shards       int
	openParallel int
	history      []Record
	stateDir     string
	syncPolicy   *SyncPolicy
	fsync        bool
	compactEvery int
	mergePolicy  *MergePolicy
	flakyPolicy  *FlakyPolicy
	telemetryReg *Registry
	journal      *Journal
}

// NewSession builds a session for the pipeline described by space whose
// instances are executed by oracle.
func NewSession(space *Space, oracle Oracle, opts ...Option) (*Session, error) {
	if space == nil {
		return nil, fmt.Errorf("bugdoc: nil space")
	}
	if oracle == nil {
		return nil, fmt.Errorf("bugdoc: nil oracle")
	}
	s := &Session{space: space, seed: 1, budget: -1, workers: 1, shards: 1}
	for _, o := range opts {
		o(s)
	}
	if s.flakyPolicy != nil {
		if err := s.flakyPolicy.Validate(); err != nil {
			return nil, fmt.Errorf("bugdoc: %w", err)
		}
	}
	telOpt := s.telemetryOption()
	if s.stateDir != "" {
		exOpts := []exec.Option{exec.WithBudget(s.budget), exec.WithWorkers(s.workers),
			exec.WithStoreShards(s.shards)}
		if s.flakyPolicy != nil {
			exOpts = append(exOpts, exec.WithFlakyPolicy(*s.flakyPolicy))
		}
		if telOpt != nil {
			exOpts = append(exOpts, telOpt)
		}
		if s.openParallel != 0 {
			exOpts = append(exOpts, exec.WithOpenParallelism(s.openParallel))
		}
		var logOpts []provlog.Option
		if s.fsync {
			logOpts = append(logOpts, provlog.WithSync(true))
		}
		if s.syncPolicy != nil {
			logOpts = append(logOpts, provlog.WithSyncPolicy(*s.syncPolicy))
		}
		if s.compactEvery > 0 {
			logOpts = append(logOpts, provlog.WithCompactPolicy(
				provlog.CompactPolicy{EveryRecords: s.compactEvery}))
		}
		if s.mergePolicy != nil {
			logOpts = append(logOpts, provlog.WithMergePolicy(*s.mergePolicy))
		}
		if len(logOpts) > 0 {
			exOpts = append(exOpts, exec.WithLogOptions(logOpts...))
		}
		ex, err := exec.NewDurable(oracle, space, s.stateDir, exOpts...)
		if err != nil {
			return nil, fmt.Errorf("bugdoc: %w", err)
		}
		s.ex = ex
		// The replayed log may already hold history records from an
		// earlier run of this session; only the missing ones are added
		// (and thereby logged).
		st := s.ex.Store()
		for _, r := range s.history {
			if _, ok := st.Lookup(r.Instance); ok {
				continue
			}
			if err := st.Add(r.Instance, r.Outcome, r.Source); err != nil {
				s.ex.Close()
				return nil, fmt.Errorf("bugdoc: history: %w", err)
			}
		}
		return s, nil
	}
	st := provenance.NewStoreSharded(space, s.shards)
	for _, r := range s.history {
		if err := st.Add(r.Instance, r.Outcome, r.Source); err != nil {
			return nil, fmt.Errorf("bugdoc: history: %w", err)
		}
	}
	volOpts := []exec.Option{exec.WithBudget(s.budget), exec.WithWorkers(s.workers)}
	if s.flakyPolicy != nil {
		volOpts = append(volOpts, exec.WithFlakyPolicy(*s.flakyPolicy))
	}
	if telOpt != nil {
		volOpts = append(volOpts, telOpt)
	}
	s.ex = exec.New(oracle, st, volOpts...)
	return s, nil
}

// ResumeSession reopens a durable session from its state directory: the
// parameter space is reconstructed from the spec persisted alongside the
// log, the provenance is replayed (recovering from a torn final record if
// the previous process was killed mid-append), and the search continues
// where it left off — instances already logged never reach the oracle
// again. Only the oracle must be supplied fresh; it cannot be persisted.
func ResumeSession(dir string, oracle Oracle, opts ...Option) (*Session, error) {
	if !provlog.Exists(dir) {
		return nil, fmt.Errorf("bugdoc: no session state in %s", dir)
	}
	space, err := provlog.ReadSpace(dir)
	if err != nil {
		return nil, fmt.Errorf("bugdoc: %w", err)
	}
	return NewSession(space, oracle, append(opts[:len(opts):len(opts)], WithDurability(dir))...)
}

// Close seals the durability log, if any. A durable session must be closed
// before its state directory is resumed; non-durable sessions close as a
// no-op.
func (s *Session) Close() error { return s.ex.Close() }

// Checkpoint compacts a durable session's write-ahead log: the history
// executed so far folds into a checkpoint file, superseded segments are
// collected, and the next ResumeSession loads the checkpoint instead of
// replaying the whole WAL. The session stays usable throughout. It fails
// for sessions without WithDurability; see WithCompactEvery for automatic
// compaction.
func (s *Session) Checkpoint() error { return s.ex.Checkpoint() }

// Store exposes the session's provenance.
func (s *Session) Store() *Store { return s.ex.Store() }

// Spent reports how many new instances the session has executed.
func (s *Session) Spent() int { return s.ex.Spent() }

// Seed ensures the provenance holds at least one failing and one
// succeeding instance (sampling random instances as needed) — the
// precondition of every algorithm. Sessions whose history already contains
// both outcomes pay nothing.
func (s *Session) Seed(ctx context.Context) error {
	return core.SeedHistory(ctx, s.ex, rand.New(rand.NewSource(s.seed)), 0)
}

// FindOne looks for at least one minimal definitive root cause with the
// selected algorithm (goal (i) of the paper's problem definition). The
// result may be empty when the algorithm refutes its assertion or the
// budget runs out.
func (s *Session) FindOne(ctx context.Context, algo Algorithm) (DNF, error) {
	return core.FindOne(ctx, s.ex, algo, s.coreOptions())
}

// FindAll looks for all minimal definitive root causes (goal (ii)); only
// DebuggingDecisionTrees can assert more than one.
func (s *Session) FindAll(ctx context.Context, algo Algorithm) (DNF, error) {
	return core.FindAll(ctx, s.ex, algo, s.coreOptions())
}

func (s *Session) coreOptions() core.Options {
	return core.Options{Rand: rand.New(rand.NewSource(s.seed))}
}

// Explain renders causes for human debuggers, one per line.
func Explain(causes DNF) string {
	if len(causes) == 0 {
		return "no definitive root cause asserted\n"
	}
	out := ""
	for i, c := range causes {
		out += fmt.Sprintf("root cause %d: %s\n", i+1, c)
	}
	return out
}
