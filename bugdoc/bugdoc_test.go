package bugdoc_test

import (
	"context"
	"strings"
	"testing"

	"repro/bugdoc"
)

func lrSpace(t *testing.T) *bugdoc.Space {
	t.Helper()
	return bugdoc.MustSpace(
		bugdoc.Parameter{Name: "lr", Kind: bugdoc.Ordinal, Domain: []bugdoc.Value{
			bugdoc.Ord(0.001), bugdoc.Ord(0.01), bugdoc.Ord(0.1), bugdoc.Ord(1),
		}},
		bugdoc.Parameter{Name: "opt", Kind: bugdoc.Categorical, Domain: []bugdoc.Value{
			bugdoc.Cat("sgd"), bugdoc.Cat("adam"), bugdoc.Cat("rmsprop"),
		}},
	)
}

// diverges fails when the learning rate is too high.
func diverges(_ context.Context, in bugdoc.Instance) (bugdoc.Outcome, error) {
	if lr, _ := in.ByName("lr"); lr.Num() > 0.01 {
		return bugdoc.Fail, nil
	}
	return bugdoc.Succeed, nil
}

func TestSessionEndToEnd(t *testing.T) {
	s := lrSpace(t)
	session, err := bugdoc.NewSession(s, bugdoc.OracleFunc(diverges),
		bugdoc.WithSeed(5), bugdoc.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := session.Seed(ctx); err != nil {
		t.Fatal(err)
	}
	causes, err := session.FindAll(ctx, bugdoc.DebuggingDecisionTrees)
	if err != nil {
		t.Fatal(err)
	}
	if len(causes) == 0 {
		t.Fatal("no causes asserted")
	}
	// Every asserted cause must only cover failing instances.
	for _, c := range causes {
		succ, fail := session.Store().CountSatisfying(c)
		if succ != 0 || fail == 0 {
			t.Fatalf("cause %v covers %d successes and %d failures", c, succ, fail)
		}
	}
	out := bugdoc.Explain(causes)
	if !strings.Contains(out, "root cause 1:") {
		t.Fatalf("Explain = %q", out)
	}
}

// TestSessionShardedMatchesUnsharded runs the same deterministic search
// with and without store sharding: the shard count is a contention knob,
// so the asserted causes, the provenance size, and the budget spent must
// all be identical.
func TestSessionShardedMatchesUnsharded(t *testing.T) {
	ctx := context.Background()
	run := func(shards int) (bugdoc.DNF, int, int) {
		t.Helper()
		session, err := bugdoc.NewSession(lrSpace(t), bugdoc.OracleFunc(diverges),
			bugdoc.WithSeed(5), bugdoc.WithWorkers(4), bugdoc.WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		if err := session.Seed(ctx); err != nil {
			t.Fatal(err)
		}
		causes, err := session.FindAll(ctx, bugdoc.DebuggingDecisionTrees)
		if err != nil {
			t.Fatal(err)
		}
		return causes, session.Store().Len(), session.Spent()
	}
	causes1, len1, spent1 := run(1)
	for _, shards := range []int{2, 8} {
		causesN, lenN, spentN := run(shards)
		if lenN != len1 || spentN != spent1 {
			t.Fatalf("shards=%d: %d records / %d spent, unsharded %d / %d",
				shards, lenN, spentN, len1, spent1)
		}
		if bugdoc.Explain(causesN) != bugdoc.Explain(causes1) {
			t.Fatalf("shards=%d asserted %vvs unsharded %v",
				shards, bugdoc.Explain(causesN), bugdoc.Explain(causes1))
		}
	}
}

func TestSessionBudget(t *testing.T) {
	s := lrSpace(t)
	session, err := bugdoc.NewSession(s, bugdoc.OracleFunc(diverges),
		bugdoc.WithSeed(5), bugdoc.WithBudget(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	_ = session.Seed(ctx) // may exhaust budget; that's fine
	_, err = session.FindOne(ctx, bugdoc.Shortcut)
	// Budget exhaustion surfaces as empty results or missing seeds, never
	// as a panic; spent can never exceed the budget.
	if spent := session.Spent(); spent > 4 {
		t.Fatalf("spent %d > budget 4 (err %v)", spent, err)
	}
}

func TestSessionHistory(t *testing.T) {
	s := lrSpace(t)
	failing := bugdoc.MustInstance(s, bugdoc.Ord(1), bugdoc.Cat("sgd"))
	good := bugdoc.MustInstance(s, bugdoc.Ord(0.001), bugdoc.Cat("adam"))
	session, err := bugdoc.NewSession(s, bugdoc.OracleFunc(diverges),
		bugdoc.WithHistory([]bugdoc.Record{
			{Instance: failing, Outcome: bugdoc.Fail, Source: "history"},
			{Instance: good, Outcome: bugdoc.Succeed, Source: "history"},
		}))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	causes, err := session.FindOne(ctx, bugdoc.Shortcut)
	if err != nil {
		t.Fatal(err)
	}
	if len(causes) != 1 {
		t.Fatalf("causes = %v", causes)
	}
	want := bugdoc.T("lr", bugdoc.Eq, bugdoc.Ord(1))
	if len(causes[0]) != 1 || causes[0][0] != want {
		t.Fatalf("cause = %v, want {%v}", causes[0], want)
	}
}

func TestNewSessionValidation(t *testing.T) {
	if _, err := bugdoc.NewSession(nil, bugdoc.OracleFunc(diverges)); err == nil {
		t.Fatal("nil space must fail")
	}
	if _, err := bugdoc.NewSession(lrSpace(t), nil); err == nil {
		t.Fatal("nil oracle must fail")
	}
	// Duplicate history records are rejected.
	s := lrSpace(t)
	in := bugdoc.MustInstance(s, bugdoc.Ord(1), bugdoc.Cat("sgd"))
	_, err := bugdoc.NewSession(s, bugdoc.OracleFunc(diverges),
		bugdoc.WithHistory([]bugdoc.Record{
			{Instance: in, Outcome: bugdoc.Fail},
			{Instance: in, Outcome: bugdoc.Fail},
		}))
	if err == nil {
		t.Fatal("duplicate history must fail")
	}
}

func TestExplainEmpty(t *testing.T) {
	if got := bugdoc.Explain(nil); !strings.Contains(got, "no definitive root cause") {
		t.Fatalf("Explain(nil) = %q", got)
	}
}
