package bugdoc_test

import (
	"context"
	"fmt"

	"repro/bugdoc"
)

// ExampleSession debugs a tiny training pipeline whose runs diverge when
// the learning rate is too high.
func ExampleSession() {
	space := bugdoc.MustSpace(
		bugdoc.Parameter{Name: "lr", Kind: bugdoc.Ordinal, Domain: []bugdoc.Value{
			bugdoc.Ord(0.001), bugdoc.Ord(0.01), bugdoc.Ord(0.1), bugdoc.Ord(1),
		}},
		bugdoc.Parameter{Name: "optimizer", Kind: bugdoc.Categorical, Domain: []bugdoc.Value{
			bugdoc.Cat("sgd"), bugdoc.Cat("adam"),
		}},
	)
	oracle := bugdoc.OracleFunc(func(_ context.Context, in bugdoc.Instance) (bugdoc.Outcome, error) {
		if lr, _ := in.ByName("lr"); lr.Num() > 0.01 {
			return bugdoc.Fail, nil // training diverges
		}
		return bugdoc.Succeed, nil
	})

	session, err := bugdoc.NewSession(space, oracle, bugdoc.WithSeed(7))
	if err != nil {
		fmt.Println(err)
		return
	}
	ctx := context.Background()
	if err := session.Seed(ctx); err != nil {
		fmt.Println(err)
		return
	}
	causes, err := session.FindAll(ctx, bugdoc.DebuggingDecisionTrees)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Print(bugdoc.Explain(causes))
	// Output:
	// root cause 1: lr > 0.01
}
