package bugdoc_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/bugdoc"
)

func durabilitySpace() *bugdoc.Space {
	return bugdoc.MustSpace(
		bugdoc.Parameter{Name: "lr", Kind: bugdoc.Ordinal,
			Domain: []bugdoc.Value{bugdoc.Ord(0.01), bugdoc.Ord(0.1), bugdoc.Ord(1)}},
		bugdoc.Parameter{Name: "opt", Kind: bugdoc.Categorical,
			Domain: []bugdoc.Value{bugdoc.Cat("adam"), bugdoc.Cat("bad"), bugdoc.Cat("sgd")}},
		bugdoc.Parameter{Name: "depth", Kind: bugdoc.Ordinal,
			Domain: []bugdoc.Value{bugdoc.Ord(1), bugdoc.Ord(2)}},
	)
}

// killableOracle counts per-instance oracle calls across sessions and
// simulates a process kill by erroring once its quota runs out. The pipeline
// fails exactly when opt = "bad".
type killableOracle struct {
	mu    sync.Mutex
	calls map[string]int
	quota int // remaining calls before the simulated kill; < 0 = unlimited
}

var errKilled = errors.New("simulated kill")

func (o *killableOracle) oracle() bugdoc.Oracle {
	return bugdoc.OracleFunc(func(_ context.Context, in bugdoc.Instance) (bugdoc.Outcome, error) {
		o.mu.Lock()
		defer o.mu.Unlock()
		if o.quota == 0 {
			return 0, errKilled
		}
		if o.quota > 0 {
			o.quota--
		}
		o.calls[in.Key()]++
		if opt, _ := in.ByName("opt"); opt.Str() == "bad" {
			return bugdoc.Fail, nil
		}
		return bugdoc.Succeed, nil
	})
}

func (o *killableOracle) maxCalls() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	m := 0
	for _, n := range o.calls {
		if n > m {
			m = n
		}
	}
	return m
}

// TestDurableSessionKillAndResume runs a durable session until a simulated
// kill mid-search, then resumes it from the state directory: the resumed
// session must complete the search without a single repeated oracle call
// for the instances the first run already paid for.
func TestDurableSessionKillAndResume(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	o := &killableOracle{calls: make(map[string]int), quota: 6}

	s1, err := bugdoc.NewSession(durabilitySpace(), o.oracle(),
		bugdoc.WithDurability(dir), bugdoc.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	err = s1.Seed(ctx)
	if err == nil {
		_, err = s1.FindAll(ctx, bugdoc.DebuggingDecisionTrees)
	}
	if !errors.Is(err, errKilled) {
		t.Fatalf("first run was not killed mid-search: err = %v", err)
	}
	logged := s1.Store().Len()
	if logged == 0 {
		t.Fatal("kill happened before anything was logged; raise the quota")
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	o.quota = -1 // the resumed process runs unconstrained
	s2, err := bugdoc.ResumeSession(dir, o.oracle(), bugdoc.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Store().Len() != logged {
		t.Fatalf("resumed store has %d records, want the %d logged before the kill",
			s2.Store().Len(), logged)
	}
	if err := s2.Seed(ctx); err != nil {
		t.Fatal(err)
	}
	causes, err := s2.FindAll(ctx, bugdoc.DebuggingDecisionTrees)
	if err != nil {
		t.Fatal(err)
	}
	if len(causes) != 1 || !strings.Contains(causes.String(), `"bad"`) {
		t.Fatalf("resumed FindAll = %v, want the single root cause opt = \"bad\"", causes)
	}
	if got := o.maxCalls(); got != 1 {
		t.Fatalf("an instance reached the oracle %d times across the kill/resume cycle, want at most once", got)
	}
}

// TestResumeSessionRequiresState documents the failure mode for a missing
// state directory.
func TestResumeSessionRequiresState(t *testing.T) {
	o := &killableOracle{calls: make(map[string]int), quota: -1}
	if _, err := bugdoc.ResumeSession(t.TempDir(), o.oracle()); err == nil {
		t.Fatal("ResumeSession of an empty directory succeeded")
	}
}

// TestDurableSessionCompletedRunReplaysFree re-opens a session that already
// finished: the whole search replays from the log and the oracle is never
// consulted again.
func TestDurableSessionCompletedRunReplaysFree(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	o := &killableOracle{calls: make(map[string]int), quota: -1}

	s1, err := bugdoc.NewSession(durabilitySpace(), o.oracle(),
		bugdoc.WithDurability(dir), bugdoc.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Seed(ctx); err != nil {
		t.Fatal(err)
	}
	want, err := s1.FindAll(ctx, bugdoc.DebuggingDecisionTrees)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	paid := len(o.calls)

	o.quota = 0 // any oracle call in the resumed run is a test failure
	s2, err := bugdoc.ResumeSession(dir, o.oracle(), bugdoc.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.Seed(ctx); err != nil {
		t.Fatal(err)
	}
	got, err := s2.FindAll(ctx, bugdoc.DebuggingDecisionTrees)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("resumed FindAll = %v, first run found %v", got, want)
	}
	if len(o.calls) != paid {
		t.Fatalf("resumed run executed %d new instances, want 0", len(o.calls)-paid)
	}
}

// TestSessionCheckpointResume runs a full durable search, compacts the
// session's log, and resumes it twice: the resumed searches must be served
// entirely from the checkpointed provenance — zero repeated oracle calls —
// and reach the same root causes.
func TestSessionCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	oracle := &killableOracle{calls: make(map[string]int), quota: -1}

	s1, err := bugdoc.NewSession(durabilitySpace(), oracle.oracle(),
		bugdoc.WithDurability(dir), bugdoc.WithWorkers(2), bugdoc.WithCompactEvery(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Seed(ctx); err != nil {
		t.Fatal(err)
	}
	causes, err := s1.FindAll(ctx, bugdoc.DebuggingDecisionTrees)
	if err != nil {
		t.Fatal(err)
	}
	if len(causes) == 0 {
		t.Fatal("first run asserted no root cause")
	}
	spent := s1.Spent()
	if err := s1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if spent == 0 {
		t.Fatal("first run executed nothing")
	}

	for round := 0; round < 2; round++ {
		s2, err := bugdoc.ResumeSession(dir, oracle.oracle(), bugdoc.WithWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		if s2.Store().Len() != spent {
			t.Fatalf("round %d: resumed store has %d records, want %d", round, s2.Store().Len(), spent)
		}
		causes2, err := s2.FindAll(ctx, bugdoc.DebuggingDecisionTrees)
		if err != nil {
			t.Fatal(err)
		}
		if causes2.String() != causes.String() {
			t.Fatalf("round %d: resumed causes %v, want %v", round, causes2, causes)
		}
		if s2.Spent() != 0 {
			t.Fatalf("round %d: resumed session spent %d new executions, want 0", round, s2.Spent())
		}
		if round == 0 {
			if err := s2.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if got := oracle.maxCalls(); got != 1 {
		t.Fatalf("an instance reached the oracle %d times across checkpointed resumes, want at most once", got)
	}
}

// TestDurableSessionShardedResume writes a checkpointed session unsharded,
// resumes it with a sharded store (the checkpoint run splits across the
// shards on load), and resumes once more unsharded: the shard count is an
// in-memory property, so the history replays identically in both
// directions with zero repeated oracle calls.
func TestDurableSessionShardedResume(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	oracle := &killableOracle{calls: make(map[string]int), quota: -1}

	s1, err := bugdoc.NewSession(durabilitySpace(), oracle.oracle(),
		bugdoc.WithDurability(dir), bugdoc.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Seed(ctx); err != nil {
		t.Fatal(err)
	}
	causes, err := s1.FindAll(ctx, bugdoc.DebuggingDecisionTrees)
	if err != nil {
		t.Fatal(err)
	}
	spent := s1.Spent()
	if err := s1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{4, 1} {
		s2, err := bugdoc.ResumeSession(dir, oracle.oracle(),
			bugdoc.WithWorkers(4), bugdoc.WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		if s2.Store().Shards() != shards {
			t.Fatalf("resumed store has %d shards, want %d", s2.Store().Shards(), shards)
		}
		if s2.Store().Len() != spent {
			t.Fatalf("shards=%d: resumed store has %d records, want %d", shards, s2.Store().Len(), spent)
		}
		causes2, err := s2.FindAll(ctx, bugdoc.DebuggingDecisionTrees)
		if err != nil {
			t.Fatal(err)
		}
		if causes2.String() != causes.String() {
			t.Fatalf("shards=%d: resumed causes %v, want %v", shards, causes2, causes)
		}
		if s2.Spent() != 0 {
			t.Fatalf("shards=%d: resumed session spent %d new executions, want 0", shards, s2.Spent())
		}
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if got := oracle.maxCalls(); got != 1 {
		t.Fatalf("an instance reached the oracle %d times across sharded resumes, want at most once", got)
	}
}
