package dtree

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/pipeline"
	"repro/internal/predicate"
)

func ordDomain(vals ...float64) []pipeline.Value {
	out := make([]pipeline.Value, len(vals))
	for i, v := range vals {
		out[i] = pipeline.Ord(v)
	}
	return out
}

func catDomain(vals ...string) []pipeline.Value {
	out := make([]pipeline.Value, len(vals))
	for i, v := range vals {
		out[i] = pipeline.Cat(v)
	}
	return out
}

func testSpace(t *testing.T) *pipeline.Space {
	t.Helper()
	return pipeline.MustSpace(
		pipeline.Parameter{Name: "x", Kind: pipeline.Ordinal, Domain: ordDomain(1, 2, 3, 4, 5)},
		pipeline.Parameter{Name: "c", Kind: pipeline.Categorical, Domain: catDomain("red", "green", "blue")},
	)
}

// label produces examples from a ground-truth failure DNF.
func label(s *pipeline.Space, truth predicate.DNF, ins []pipeline.Instance) []Example {
	out := make([]Example, len(ins))
	for i, in := range ins {
		o := pipeline.Succeed
		if truth.Satisfied(in) {
			o = pipeline.Fail
		}
		out[i] = Example{Instance: in, Outcome: o}
	}
	return out
}

func allInstances(s *pipeline.Space) []pipeline.Instance {
	var ins []pipeline.Instance
	s.Enumerate(func(in pipeline.Instance) bool {
		ins = append(ins, in)
		return true
	})
	return ins
}

func TestBuildPureLeafOnConstantData(t *testing.T) {
	s := testSpace(t)
	ins := allInstances(s)[:4]
	examples := make([]Example, len(ins))
	for i, in := range ins {
		examples[i] = Example{Instance: in, Outcome: pipeline.Fail}
	}
	root := Build(s, examples)
	if !root.IsLeaf() || !root.PureFail() {
		t.Fatalf("all-fail data must give a pure fail leaf:\n%s", root)
	}
	suspects := root.Suspects()
	if len(suspects) != 1 || len(suspects[0].Path) != 0 {
		t.Fatalf("suspects = %v", suspects)
	}
}

func TestBuildSeparatesOrdinalThreshold(t *testing.T) {
	s := testSpace(t)
	truth := predicate.Or(predicate.And(predicate.T("x", predicate.Le, pipeline.Ord(2))))
	examples := label(s, truth, allInstances(s))
	root := Build(s, examples)
	if root.IsLeaf() {
		t.Fatalf("tree must split:\n%s", root)
	}
	suspects := root.Suspects()
	if len(suspects) == 0 {
		t.Fatal("expected a pure fail suspect")
	}
	// The shortest suspect must be exactly x <= 2 semantically.
	want := predicate.And(predicate.T("x", predicate.Le, pipeline.Ord(2)))
	eq, err := predicate.Equivalent(s, suspects[0].Path, want)
	if err != nil || !eq {
		t.Fatalf("suspect = %v, want equivalent to %v (err %v)", suspects[0].Path, want, err)
	}
}

func TestBuildSeparatesCategorical(t *testing.T) {
	s := testSpace(t)
	truth := predicate.Or(predicate.And(predicate.T("c", predicate.Eq, pipeline.Cat("red"))))
	examples := label(s, truth, allInstances(s))
	root := Build(s, examples)
	suspects := root.Suspects()
	if len(suspects) != 1 {
		t.Fatalf("suspects = %v", suspects)
	}
	eq, err := predicate.Equivalent(s, suspects[0].Path,
		predicate.And(predicate.T("c", predicate.Eq, pipeline.Cat("red"))))
	if err != nil || !eq {
		t.Fatalf("suspect = %v (err %v)", suspects[0].Path, err)
	}
}

func TestBuildConjunction(t *testing.T) {
	s := testSpace(t)
	truth := predicate.Or(predicate.And(
		predicate.T("x", predicate.Gt, pipeline.Ord(3)),
		predicate.T("c", predicate.Eq, pipeline.Cat("blue")),
	))
	examples := label(s, truth, allInstances(s))
	root := Build(s, examples)
	suspects := root.Suspects()
	if len(suspects) == 0 {
		t.Fatal("expected suspects")
	}
	// Every suspect path must be consistent with the training data: no
	// succeeding example satisfies it.
	for _, sus := range suspects {
		for _, ex := range examples {
			if ex.Outcome == pipeline.Succeed && sus.Path.Satisfied(ex.Instance) {
				t.Fatalf("suspect %v covers succeeding example %v", sus.Path, ex.Instance)
			}
		}
	}
	// The union of suspects must cover all failing examples (full tree).
	for _, ex := range examples {
		if ex.Outcome != pipeline.Fail {
			continue
		}
		covered := false
		for _, sus := range suspects {
			if sus.Path.Satisfied(ex.Instance) {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("failing example %v not covered by any suspect", ex.Instance)
		}
	}
}

func TestMixedLeafWhenInseparable(t *testing.T) {
	s := testSpace(t)
	// Same instance values cannot be separated: duplicate instances with
	// conflicting labels are impossible in provenance, so emulate
	// inseparability with two instances identical on all parameters except
	// none — i.e., a tree over one repeated instance value set.
	in1 := pipeline.MustInstance(s, pipeline.Ord(1), pipeline.Cat("red"))
	in2 := pipeline.MustInstance(s, pipeline.Ord(1), pipeline.Cat("red"))
	examples := []Example{
		{Instance: in1, Outcome: pipeline.Fail},
		{Instance: in2, Outcome: pipeline.Succeed},
	}
	root := Build(s, examples)
	if !root.IsLeaf() {
		t.Fatalf("inseparable data must stay a leaf:\n%s", root)
	}
	if root.MixedLeaves() != 1 {
		t.Fatalf("MixedLeaves = %d", root.MixedLeaves())
	}
	if len(root.Suspects()) != 0 {
		t.Fatal("mixed leaves must not produce suspects")
	}
}

func TestTreeIsDeterministic(t *testing.T) {
	s := testSpace(t)
	truth := predicate.Or(
		predicate.And(predicate.T("x", predicate.Eq, pipeline.Ord(5))),
		predicate.And(predicate.T("c", predicate.Eq, pipeline.Cat("green")),
			predicate.T("x", predicate.Le, pipeline.Ord(2))),
	)
	examples := label(s, truth, allInstances(s))
	a := Build(s, examples).String()
	b := Build(s, examples).String()
	if a != b {
		t.Fatalf("tree not deterministic:\n%s\nvs\n%s", a, b)
	}
}

func TestDepthAndString(t *testing.T) {
	s := testSpace(t)
	truth := predicate.Or(predicate.And(predicate.T("x", predicate.Le, pipeline.Ord(2))))
	examples := label(s, truth, allInstances(s))
	root := Build(s, examples)
	if root.Depth() < 2 {
		t.Fatalf("depth = %d", root.Depth())
	}
	out := root.String()
	if !strings.Contains(out, "x <= 2?") {
		t.Fatalf("String missing split:\n%s", out)
	}
	if !strings.Contains(out, "fail") || !strings.Contains(out, "succeed") {
		t.Fatalf("String missing leaves:\n%s", out)
	}
}

// Property: on full-space training data labelled by a random planted cause,
// the tree classifies its own training data perfectly (full unpruned trees
// always fit separable data) and every suspect excludes all succeeding
// examples.
func TestTreeFitsTrainingDataProperty(t *testing.T) {
	s := testSpace(t)
	r := rand.New(rand.NewSource(5))
	pool := []predicate.Triple{
		predicate.T("x", predicate.Le, pipeline.Ord(2)),
		predicate.T("x", predicate.Gt, pipeline.Ord(3)),
		predicate.T("x", predicate.Eq, pipeline.Ord(4)),
		predicate.T("c", predicate.Eq, pipeline.Cat("red")),
		predicate.T("c", predicate.Neq, pipeline.Cat("blue")),
	}
	ins := allInstances(s)
	f := func() bool {
		var c predicate.Conjunction
		for _, tr := range pool {
			if r.Intn(3) == 0 {
				c = append(c, tr)
			}
		}
		if len(c) == 0 {
			c = predicate.Conjunction{pool[r.Intn(len(pool))]}
		}
		truth := predicate.Or(c)
		examples := label(s, truth, ins)
		// Skip degenerate labelings (all same class).
		nf := 0
		for _, ex := range examples {
			if ex.Outcome == pipeline.Fail {
				nf++
			}
		}
		if nf == 0 || nf == len(examples) {
			return true
		}
		root := Build(s, examples)
		for _, sus := range root.Suspects() {
			for _, ex := range examples {
				if ex.Outcome == pipeline.Succeed && sus.Path.Satisfied(ex.Instance) {
					return false
				}
			}
		}
		// Perfect fit: routing each example down the tree lands in a leaf
		// whose majority class matches (pure, since data is separable).
		for _, ex := range examples {
			node := root
			for !node.IsLeaf() {
				if node.Split.Satisfied(ex.Instance) {
					node = node.Yes
				} else {
					node = node.No
				}
			}
			if ex.Outcome == pipeline.Fail && !node.PureFail() {
				return false
			}
			if ex.Outcome == pipeline.Succeed && !node.PureSucceed() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
