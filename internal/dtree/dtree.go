// Package dtree builds the debugging decision trees of BugDoc Section 4.2:
// full (unpruned) binary decision trees over pipeline parameters, with the
// instance evaluation (succeed/fail) as the target. Inner nodes test one
// parameter-comparator-value triple; categorical parameters split on
// equality, ordinal parameters on thresholds, so root-to-leaf paths are
// conjunctions of triples that may contain inequalities.
//
// BugDoc uses the tree unusually: not to predict untested configurations,
// but to discover short paths ending in pure-fail leaves. Those paths are
// the "suspects" the Debugging Decision Trees algorithm then verifies by
// executing new instances.
//
// Split search is counting-based: one columnar pass per parameter over the
// interned value codes accumulates per-code succeed/fail counts, and the
// information gain of every candidate derives from those counts (prefix
// sums for ordinal thresholds) — O(params × examples + params × values)
// per node rather than evaluating each candidate against every example.
package dtree

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/pipeline"
	"repro/internal/predicate"
)

// Example is one labelled training point: an executed instance and its
// evaluation. Weight is the label's confidence as an integer vote count —
// under a flaky-oracle quorum it is the vote margin (|succeed − fail|
// votes), so an example resolved 5–0 pulls splits five times harder than
// one resolved 3–2. Zero means 1, so deterministic single-trial sessions
// need not set it; all counting stays integer arithmetic, keeping tree
// growth deterministic. Examples labelled OutcomeInconclusive carry no
// vote either way and never affect a split or a leaf count.
type Example struct {
	Instance pipeline.Instance
	Outcome  pipeline.Outcome
	Weight   int
}

// weight normalizes the zero value to one vote.
func (ex *Example) weight() int {
	if ex.Weight <= 0 {
		return 1
	}
	return ex.Weight
}

// Node is one node of a debugging decision tree. Leaves have Yes == No ==
// nil; inner nodes route instances satisfying Split to Yes and the rest to
// No. Counts cover the training examples that reached the node, summed by
// example weight (so under a flaky quorum they are vote margins, not
// example counts).
type Node struct {
	Split    predicate.Triple
	Yes, No  *Node
	NSucceed int
	NFail    int
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return n.Yes == nil && n.No == nil }

// PureFail reports whether the node saw only failing examples.
func (n *Node) PureFail() bool { return n.NFail > 0 && n.NSucceed == 0 }

// PureSucceed reports whether the node saw only succeeding examples.
func (n *Node) PureSucceed() bool { return n.NSucceed > 0 && n.NFail == 0 }

// Build grows a full decision tree (no pruning, per the paper: "we build a
// complete decision tree") over the examples. Splitting stops only when a
// node is pure or no candidate split separates its examples — such impure
// unsplittable leaves are the paper's "mixed" leaves.
//
// Partitioning is columnar: the whole tree shares one permutation of
// example indices, and each node stably partitions its window of that
// permutation in place, so descending a level moves hi−lo int32s instead
// of copying []Example slices at every node.
func Build(s *pipeline.Space, examples []Example) *Node {
	b := &builder{
		s:        s,
		examples: examples,
		idx:      make([]int32, len(examples)),
		tmp:      make([]int32, 0, len(examples)),
	}
	for i := range b.idx {
		b.idx[i] = int32(i)
	}
	return b.build(0, len(examples))
}

// builder carries the state shared across every node of one Build call:
// the examples, the single index permutation the nodes partition, and the
// per-parameter counting scratch, so growing a tree allocates per node, not
// per candidate split and not per partition.
type builder struct {
	s        *pipeline.Space
	examples []Example
	// idx is the tree-wide permutation of example indices; each node owns
	// the window idx[lo:hi] and partitions it in place for its children.
	// tmp buffers the no-side during the stable partition.
	idx, tmp []int32
	// countS/countF accumulate succeed/fail counts per value code during
	// the columnar pass; order lists the observed codes (first-seen, then
	// sorted by value) of the current parameter.
	countS, countF []int
	order          []uint32
}

func (b *builder) build(lo, hi int) *Node {
	n := &Node{}
	for _, j := range b.idx[lo:hi] {
		ex := &b.examples[j]
		switch ex.Outcome {
		case pipeline.Succeed:
			n.NSucceed += ex.weight()
		case pipeline.Fail:
			n.NFail += ex.weight()
		}
	}
	if n.NSucceed == 0 || n.NFail == 0 || hi-lo < 2 {
		return n
	}
	split, ok := b.bestSplitRange(lo, hi)
	if !ok {
		return n
	}
	// Stable in-place partition of the node's index window: yes-side
	// compacts to the front, no-side stages through the shared scratch.
	// The parameter index is resolved once; Holds is a single integer or
	// float comparison per example. tmp is free to reuse in the recursive
	// calls because its contents are copied back before they run.
	pi, _ := b.s.Index(split.Param)
	mid := lo
	tmp := b.tmp[:0]
	for _, j := range b.idx[lo:hi] {
		if split.Holds(b.examples[j].Instance.Value(pi)) {
			b.idx[mid] = j
			mid++
		} else {
			tmp = append(tmp, j)
		}
	}
	copy(b.idx[mid:hi], tmp)
	n.Split = split
	n.Yes = b.build(lo, mid)
	n.No = b.build(mid, hi)
	return n
}

// bestSplit is the slice-facing form of bestSplitRange, kept as the entry
// point for the differential split tests: it searches the whole example
// list through a throwaway builder. Build's internal nodes use
// bestSplitRange directly on the shared permutation.
func bestSplit(s *pipeline.Space, examples []Example) (predicate.Triple, bool) {
	b := &builder{s: s, examples: examples, idx: make([]int32, len(examples))}
	for i := range b.idx {
		b.idx[i] = int32(i)
	}
	return b.bestSplitRange(0, len(examples))
}

// bestSplitRange evaluates every candidate triple over the examples of the
// node's index window idx[lo:hi] and returns the one with the highest
// information gain, breaking ties by the canonical triple order so the tree
// is deterministic. Because the paper builds a *complete* tree, zero-gain
// splits are still taken when they separate the examples (greedy gain alone
// deadlocks on XOR-structured data, leaving pure-fail regions
// undiscovered); ok is false only when no candidate separates the examples
// at all.
//
// The search is counting-based: one columnar pass per parameter
// accumulates per-value-code succeed/fail counts, and the gain of every
// "=" candidate falls out of the per-code counts while every "<="
// candidate falls out of prefix sums over the value-sorted codes —
// O(params × examples + params × values) per node instead of the naive
// O(params × values × examples). The gain arithmetic is identical to
// evaluating each candidate against the example list, so the chosen split
// (including tie-breaks) matches the naive search exactly.
func (b *builder) bestSplitRange(lo, hi int) (predicate.Triple, bool) {
	s := b.s
	window := b.idx[lo:hi]
	totS, totF := 0, 0
	for _, j := range window {
		ex := &b.examples[j]
		switch ex.Outcome {
		case pipeline.Succeed:
			totS += ex.weight()
		case pipeline.Fail:
			totF += ex.weight()
		}
	}
	// Weighted example mass; equals len(window) for unit weights, so the
	// gain arithmetic (and every tie-break) of a deterministic session is
	// unchanged.
	total := float64(totS + totF)
	baseH := entropyCounts(float64(totS), float64(totF))
	best := predicate.Triple{}
	bestGain := -1.0
	consider := func(t predicate.Triple, yesS, yesF int) {
		yes, no := yesS+yesF, totS+totF-yesS-yesF
		if yes == 0 || no == 0 {
			return
		}
		gain := baseH -
			float64(yes)/total*entropyCounts(float64(yesS), float64(yesF)) -
			float64(no)/total*entropyCounts(float64(totS-yesS), float64(totF-yesF))
		if gain > bestGain+1e-12 ||
			(math.Abs(gain-bestGain) <= 1e-12 && bestGain >= 0 && t.Less(best)) {
			best, bestGain = t, gain
		}
	}
	for i := 0; i < s.Len(); i++ {
		p := s.At(i)
		// Columnar pass: count labels per value code of parameter i.
		if nc := s.NumCodes(i); len(b.countS) < nc {
			b.countS = make([]int, nc)
			b.countF = make([]int, nc)
		}
		b.order = b.order[:0]
		for _, j := range window {
			ex := &b.examples[j]
			var dS, dF int
			switch ex.Outcome {
			case pipeline.Succeed:
				dS = ex.weight()
			case pipeline.Fail:
				dF = ex.weight()
			default:
				continue // inconclusive: no vote, no threshold of its own
			}
			c := ex.Instance.Code(i)
			if b.countS[c]+b.countF[c] == 0 {
				b.order = append(b.order, c)
			}
			b.countS[c] += dS
			b.countF[c] += dF
		}
		sort.Slice(b.order, func(a, c int) bool {
			return s.InternedValue(i, b.order[a]).Less(s.InternedValue(i, b.order[c]))
		})
		switch p.Kind {
		case pipeline.Categorical:
			for _, c := range b.order {
				consider(predicate.T(p.Name, predicate.Eq, s.InternedValue(i, c)), b.countS[c], b.countF[c])
			}
		case pipeline.Ordinal:
			// Thresholds between consecutive observed values: testing
			// "<= v" for each observed v covers them all (the largest is
			// rejected by consider's empty-no-side guard when nothing
			// exceeds it). Prefix sums over the sorted codes give the
			// yes-side counts of each threshold. NaN values — possible
			// only through out-of-domain instances — never satisfy any
			// "<=" and are never thresholds themselves, so they stay out
			// of the prefix sums; their examples land on every no side,
			// exactly as Holds evaluates them.
			cumS, cumF := 0, 0
			for _, c := range b.order {
				v := s.InternedValue(i, c)
				if math.IsNaN(v.Num()) {
					continue
				}
				cumS += b.countS[c]
				cumF += b.countF[c]
				consider(predicate.T(p.Name, predicate.Le, v), cumS, cumF)
			}
		}
		for _, c := range b.order {
			b.countS[c], b.countF[c] = 0, 0
		}
	}
	// A separating split always exists unless the examples coincide on
	// every parameter (bestGain stays -1 in that case).
	if bestGain < 0 {
		return predicate.Triple{}, false
	}
	return best, true
}

// entropyCounts is the Shannon entropy of a succeed/fail count pair.
func entropyCounts(s, f float64) float64 {
	total := s + f
	h := 0.0
	for _, c := range []float64{s, f} {
		if c > 0 {
			p := c / total
			h -= p * math.Log2(p)
		}
	}
	return h
}

// Suspect is a root-to-leaf path ending in a pure-fail leaf: a conjunction
// of triples that, on the evidence so far, always fails. Support counts the
// failing examples in the leaf.
type Suspect struct {
	Path    predicate.Conjunction
	Support int
}

// Suspects extracts all pure-fail paths, shortest first (ties broken by
// higher support, then lexicographically) — the order in which the
// Debugging Decision Trees algorithm tests them, since shorter paths make
// more concise root causes.
func (n *Node) Suspects() []Suspect {
	var out []Suspect
	var walk func(node *Node, path predicate.Conjunction)
	walk = func(node *Node, path predicate.Conjunction) {
		if node.IsLeaf() {
			if node.PureFail() {
				out = append(out, Suspect{Path: path.Canonical(), Support: node.NFail})
			}
			return
		}
		walk(node.Yes, append(path.Clone(), node.Split))
		walk(node.No, append(path.Clone(), node.Split.Negated()))
	}
	walk(n, nil)
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Path) != len(out[j].Path) {
			return len(out[i].Path) < len(out[j].Path)
		}
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return out[i].Path.String() < out[j].Path.String()
	})
	return out
}

// MixedLeaves counts impure leaves, a diagnostic for how separable the
// provenance currently is.
func (n *Node) MixedLeaves() int {
	if n.IsLeaf() {
		if !n.PureFail() && !n.PureSucceed() {
			return 1
		}
		return 0
	}
	return n.Yes.MixedLeaves() + n.No.MixedLeaves()
}

// Depth returns the height of the tree (leaves have depth 1).
func (n *Node) Depth() int {
	if n.IsLeaf() {
		return 1
	}
	d := n.Yes.Depth()
	if nd := n.No.Depth(); nd > d {
		d = nd
	}
	return d + 1
}

// String renders the tree with indentation, for debugging and examples.
func (n *Node) String() string {
	var b strings.Builder
	var walk func(node *Node, indent string, label string)
	walk = func(node *Node, indent, label string) {
		if node.IsLeaf() {
			state := "mixed"
			if node.PureFail() {
				state = "fail"
			} else if node.PureSucceed() {
				state = "succeed"
			}
			fmt.Fprintf(&b, "%s%s[%s: %d succeed, %d fail]\n", indent, label, state, node.NSucceed, node.NFail)
			return
		}
		fmt.Fprintf(&b, "%s%s%s?\n", indent, label, node.Split)
		walk(node.Yes, indent+"  ", "yes: ")
		walk(node.No, indent+"  ", "no:  ")
	}
	walk(n, "", "")
	return b.String()
}
