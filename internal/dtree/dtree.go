// Package dtree builds the debugging decision trees of BugDoc Section 4.2:
// full (unpruned) binary decision trees over pipeline parameters, with the
// instance evaluation (succeed/fail) as the target. Inner nodes test one
// parameter-comparator-value triple; categorical parameters split on
// equality, ordinal parameters on thresholds, so root-to-leaf paths are
// conjunctions of triples that may contain inequalities.
//
// BugDoc uses the tree unusually: not to predict untested configurations,
// but to discover short paths ending in pure-fail leaves. Those paths are
// the "suspects" the Debugging Decision Trees algorithm then verifies by
// executing new instances.
package dtree

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/pipeline"
	"repro/internal/predicate"
)

// Example is one labelled training point: an executed instance and its
// evaluation.
type Example struct {
	Instance pipeline.Instance
	Outcome  pipeline.Outcome
}

// Node is one node of a debugging decision tree. Leaves have Yes == No ==
// nil; inner nodes route instances satisfying Split to Yes and the rest to
// No. Counts cover the training examples that reached the node.
type Node struct {
	Split    predicate.Triple
	Yes, No  *Node
	NSucceed int
	NFail    int
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return n.Yes == nil && n.No == nil }

// PureFail reports whether the node saw only failing examples.
func (n *Node) PureFail() bool { return n.NFail > 0 && n.NSucceed == 0 }

// PureSucceed reports whether the node saw only succeeding examples.
func (n *Node) PureSucceed() bool { return n.NSucceed > 0 && n.NFail == 0 }

// Build grows a full decision tree (no pruning, per the paper: "we build a
// complete decision tree") over the examples. Splitting stops only when a
// node is pure or no candidate split separates its examples — such impure
// unsplittable leaves are the paper's "mixed" leaves.
func Build(s *pipeline.Space, examples []Example) *Node {
	return build(s, examples)
}

func build(s *pipeline.Space, examples []Example) *Node {
	n := &Node{}
	for _, ex := range examples {
		switch ex.Outcome {
		case pipeline.Succeed:
			n.NSucceed++
		case pipeline.Fail:
			n.NFail++
		}
	}
	if n.NSucceed == 0 || n.NFail == 0 || len(examples) < 2 {
		return n
	}
	split, ok := bestSplit(s, examples)
	if !ok {
		return n
	}
	var yes, no []Example
	for _, ex := range examples {
		if split.Satisfied(ex.Instance) {
			yes = append(yes, ex)
		} else {
			no = append(no, ex)
		}
	}
	n.Split = split
	n.Yes = build(s, yes)
	n.No = build(s, no)
	return n
}

// bestSplit evaluates every candidate triple and returns the one with the
// highest information gain, breaking ties by the canonical triple order so
// the tree is deterministic. Because the paper builds a *complete* tree,
// zero-gain splits are still taken when they separate the examples (greedy
// gain alone deadlocks on XOR-structured data, leaving pure-fail regions
// undiscovered); ok is false only when no candidate separates the examples
// at all.
func bestSplit(s *pipeline.Space, examples []Example) (predicate.Triple, bool) {
	total := float64(len(examples))
	baseH := entropy(examples)
	best := predicate.Triple{}
	bestGain := -1.0
	consider := func(t predicate.Triple) {
		var yes, no []Example
		for _, ex := range examples {
			if t.Satisfied(ex.Instance) {
				yes = append(yes, ex)
			} else {
				no = append(no, ex)
			}
		}
		if len(yes) == 0 || len(no) == 0 {
			return
		}
		gain := baseH -
			float64(len(yes))/total*entropy(yes) -
			float64(len(no))/total*entropy(no)
		if gain > bestGain+1e-12 ||
			(math.Abs(gain-bestGain) <= 1e-12 && bestGain >= 0 && t.Less(best)) {
			best, bestGain = t, gain
		}
	}
	for i := 0; i < s.Len(); i++ {
		p := s.At(i)
		values := observedValues(examples, i)
		switch p.Kind {
		case pipeline.Categorical:
			for _, v := range values {
				consider(predicate.T(p.Name, predicate.Eq, v))
			}
		case pipeline.Ordinal:
			// Thresholds between consecutive observed values: testing
			// "<= v" for each observed v except the largest covers them all.
			for k := 0; k < len(values)-1; k++ {
				consider(predicate.T(p.Name, predicate.Le, values[k]))
			}
		}
	}
	// A separating split always exists unless the examples coincide on
	// every parameter (bestGain stays -1 in that case).
	if bestGain < 0 {
		return predicate.Triple{}, false
	}
	return best, true
}

// observedValues returns the distinct values of parameter i among the
// examples, sorted.
func observedValues(examples []Example, i int) []pipeline.Value {
	seen := make(map[pipeline.Value]bool)
	var out []pipeline.Value
	for _, ex := range examples {
		v := ex.Instance.Value(i)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Less(out[b]) })
	return out
}

// entropy is the Shannon entropy of the succeed/fail label distribution.
func entropy(examples []Example) float64 {
	var s, f float64
	for _, ex := range examples {
		if ex.Outcome == pipeline.Succeed {
			s++
		} else {
			f++
		}
	}
	total := s + f
	h := 0.0
	for _, c := range []float64{s, f} {
		if c > 0 {
			p := c / total
			h -= p * math.Log2(p)
		}
	}
	return h
}

// Suspect is a root-to-leaf path ending in a pure-fail leaf: a conjunction
// of triples that, on the evidence so far, always fails. Support counts the
// failing examples in the leaf.
type Suspect struct {
	Path    predicate.Conjunction
	Support int
}

// Suspects extracts all pure-fail paths, shortest first (ties broken by
// higher support, then lexicographically) — the order in which the
// Debugging Decision Trees algorithm tests them, since shorter paths make
// more concise root causes.
func (n *Node) Suspects() []Suspect {
	var out []Suspect
	var walk func(node *Node, path predicate.Conjunction)
	walk = func(node *Node, path predicate.Conjunction) {
		if node.IsLeaf() {
			if node.PureFail() {
				out = append(out, Suspect{Path: path.Canonical(), Support: node.NFail})
			}
			return
		}
		walk(node.Yes, append(path.Clone(), node.Split))
		walk(node.No, append(path.Clone(), node.Split.Negated()))
	}
	walk(n, nil)
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Path) != len(out[j].Path) {
			return len(out[i].Path) < len(out[j].Path)
		}
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return out[i].Path.String() < out[j].Path.String()
	})
	return out
}

// MixedLeaves counts impure leaves, a diagnostic for how separable the
// provenance currently is.
func (n *Node) MixedLeaves() int {
	if n.IsLeaf() {
		if !n.PureFail() && !n.PureSucceed() {
			return 1
		}
		return 0
	}
	return n.Yes.MixedLeaves() + n.No.MixedLeaves()
}

// Depth returns the height of the tree (leaves have depth 1).
func (n *Node) Depth() int {
	if n.IsLeaf() {
		return 1
	}
	d := n.Yes.Depth()
	if nd := n.No.Depth(); nd > d {
		d = nd
	}
	return d + 1
}

// String renders the tree with indentation, for debugging and examples.
func (n *Node) String() string {
	var b strings.Builder
	var walk func(node *Node, indent string, label string)
	walk = func(node *Node, indent, label string) {
		if node.IsLeaf() {
			state := "mixed"
			if node.PureFail() {
				state = "fail"
			} else if node.PureSucceed() {
				state = "succeed"
			}
			fmt.Fprintf(&b, "%s%s[%s: %d succeed, %d fail]\n", indent, label, state, node.NSucceed, node.NFail)
			return
		}
		fmt.Fprintf(&b, "%s%s%s?\n", indent, label, node.Split)
		walk(node.Yes, indent+"  ", "yes: ")
		walk(node.No, indent+"  ", "no:  ")
	}
	walk(n, "", "")
	return b.String()
}
