package dtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/pipeline"
	"repro/internal/predicate"
)

// naiveBestSplit is the pre-counting reference implementation: it
// materializes the yes/no partition of every candidate triple and computes
// the gain from the partition. The counting-based bestSplit must pick the
// same split with the same gain and the same canonical tie-break.
func naiveBestSplit(s *pipeline.Space, examples []Example) (predicate.Triple, bool) {
	total := float64(len(examples))
	baseH := naiveEntropy(examples)
	best := predicate.Triple{}
	bestGain := -1.0
	consider := func(t predicate.Triple) {
		var yes, no []Example
		for _, ex := range examples {
			if t.Satisfied(ex.Instance) {
				yes = append(yes, ex)
			} else {
				no = append(no, ex)
			}
		}
		if len(yes) == 0 || len(no) == 0 {
			return
		}
		gain := baseH -
			float64(len(yes))/total*naiveEntropy(yes) -
			float64(len(no))/total*naiveEntropy(no)
		if gain > bestGain+1e-12 ||
			(math.Abs(gain-bestGain) <= 1e-12 && bestGain >= 0 && t.Less(best)) {
			best, bestGain = t, gain
		}
	}
	for i := 0; i < s.Len(); i++ {
		p := s.At(i)
		values := naiveObservedValues(examples, i)
		switch p.Kind {
		case pipeline.Categorical:
			for _, v := range values {
				consider(predicate.T(p.Name, predicate.Eq, v))
			}
		case pipeline.Ordinal:
			for k := 0; k < len(values)-1; k++ {
				consider(predicate.T(p.Name, predicate.Le, values[k]))
			}
		}
	}
	if bestGain < 0 {
		return predicate.Triple{}, false
	}
	return best, true
}

func naiveObservedValues(examples []Example, i int) []pipeline.Value {
	seen := make(map[pipeline.Value]bool)
	var out []pipeline.Value
	for _, ex := range examples {
		v := ex.Instance.Value(i)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Less(out[b]) })
	return out
}

func naiveEntropy(examples []Example) float64 {
	var s, f float64
	for _, ex := range examples {
		if ex.Outcome == pipeline.Succeed {
			s++
		} else {
			f++
		}
	}
	return entropyCounts(s, f)
}

// naiveBuild grows a tree using the naive split search; tree-level
// differential tests compare it with Build.
func naiveBuild(s *pipeline.Space, examples []Example) *Node {
	n := &Node{}
	for _, ex := range examples {
		switch ex.Outcome {
		case pipeline.Succeed:
			n.NSucceed++
		case pipeline.Fail:
			n.NFail++
		}
	}
	if n.NSucceed == 0 || n.NFail == 0 || len(examples) < 2 {
		return n
	}
	split, ok := naiveBestSplit(s, examples)
	if !ok {
		return n
	}
	var yes, no []Example
	for _, ex := range examples {
		if split.Satisfied(ex.Instance) {
			yes = append(yes, ex)
		} else {
			no = append(no, ex)
		}
	}
	n.Split = split
	n.Yes = naiveBuild(s, yes)
	n.No = naiveBuild(s, no)
	return n
}

func sameTree(a, b *Node) bool {
	if a.NSucceed != b.NSucceed || a.NFail != b.NFail {
		return false
	}
	if a.IsLeaf() != b.IsLeaf() {
		return false
	}
	if a.IsLeaf() {
		return true
	}
	return a.Split == b.Split && sameTree(a.Yes, b.Yes) && sameTree(a.No, b.No)
}

func randomSplitSpace(t *testing.T, r *rand.Rand) *pipeline.Space {
	t.Helper()
	n := 2 + r.Intn(4)
	params := make([]pipeline.Parameter, n)
	for i := range params {
		name := string(rune('a' + i))
		if r.Intn(2) == 0 {
			dom := make([]pipeline.Value, 2+r.Intn(5))
			for j := range dom {
				dom[j] = pipeline.Ord(float64(j) * 1.5)
			}
			params[i] = pipeline.Parameter{Name: name, Kind: pipeline.Ordinal, Domain: dom}
		} else {
			labels := []string{"p", "q", "r", "s", "t"}
			dom := make([]pipeline.Value, 2+r.Intn(3))
			for j := range dom {
				dom[j] = pipeline.Cat(labels[j])
			}
			params[i] = pipeline.Parameter{Name: name, Kind: pipeline.Categorical, Domain: dom}
		}
	}
	return pipeline.MustSpace(params...)
}

func randomExamples(r *rand.Rand, s *pipeline.Space, n int) []Example {
	out := make([]Example, n)
	for i := range out {
		in := s.RandomInstance(r)
		outc := pipeline.Succeed
		if r.Intn(2) == 0 {
			outc = pipeline.Fail
		}
		out[i] = Example{Instance: in, Outcome: outc}
	}
	return out
}

// TestCountingSplitMatchesNaive differentially checks bestSplit: across
// randomized example sets the counting-based search and the naive
// per-candidate partition must agree on the split (including ok=false
// cases and canonical tie-breaks).
func TestCountingSplitMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		s := randomSplitSpace(t, r)
		examples := randomExamples(r, s, 2+r.Intn(60))
		gotT, gotOK := bestSplit(s, examples)
		wantT, wantOK := naiveBestSplit(s, examples)
		if gotOK != wantOK || gotT != wantT {
			t.Fatalf("trial %d: bestSplit = (%v, %v), naive = (%v, %v)\nspace: %v, %d examples",
				trial, gotT, gotOK, wantT, wantOK, s, len(examples))
		}
	}
}

// TestCountingSplitMatchesNaiveDuplicates stresses tie-breaking with many
// duplicated examples (duplicate instances concentrate counts and produce
// equal-gain candidates).
func TestCountingSplitMatchesNaiveDuplicates(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		s := randomSplitSpace(t, r)
		base := randomExamples(r, s, 3)
		var examples []Example
		for i := 0; i < 20; i++ {
			examples = append(examples, base[r.Intn(len(base))])
		}
		gotT, gotOK := bestSplit(s, examples)
		wantT, wantOK := naiveBestSplit(s, examples)
		if gotOK != wantOK || gotT != wantT {
			t.Fatalf("trial %d: bestSplit = (%v, %v), naive = (%v, %v)", trial, gotT, gotOK, wantT, wantOK)
		}
	}
}

// TestBuildTerminatesOnNaN regression-tests the counting split search
// against NaN example values (producible via out-of-domain instances or
// CSV-loaded provenance): NaN never satisfies a "<=" and must never be a
// threshold, so selected splits always separate their examples and Build
// terminates.
func TestBuildTerminatesOnNaN(t *testing.T) {
	s := pipeline.MustSpace(
		pipeline.Parameter{Name: "x", Kind: pipeline.Ordinal, Domain: []pipeline.Value{pipeline.Ord(1), pipeline.Ord(2)}},
	)
	examples := []Example{
		{Instance: pipeline.MustInstance(s, pipeline.Ord(math.NaN())), Outcome: pipeline.Fail},
		{Instance: pipeline.MustInstance(s, pipeline.Ord(1)), Outcome: pipeline.Succeed},
		{Instance: pipeline.MustInstance(s, pipeline.Ord(2)), Outcome: pipeline.Succeed},
	}
	done := make(chan *Node, 1)
	go func() { done <- Build(s, examples) }()
	select {
	case tree := <-done:
		if tree.NFail != 1 || tree.NSucceed != 2 {
			t.Fatalf("root counts = %d succeed, %d fail", tree.NSucceed, tree.NFail)
		}
		// The only viable splits are finite thresholds; the NaN example
		// must sit on a no-branch, and the failing region must still be
		// discoverable as a pure-fail leaf.
		if got := len(tree.Suspects()); got != 1 {
			t.Fatalf("suspects = %d, want 1\n%v", got, tree)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Build did not terminate on NaN example values")
	}
}

// TestBuildMatchesNaiveBuild compares whole trees: identical splits at
// every node, identical leaf statistics.
func TestBuildMatchesNaiveBuild(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		s := randomSplitSpace(t, r)
		examples := randomExamples(r, s, 5+r.Intn(80))
		got := Build(s, examples)
		want := naiveBuild(s, examples)
		if !sameTree(got, want) {
			t.Fatalf("trial %d: trees diverge\ncounting:\n%vnaive:\n%v", trial, got, want)
		}
	}
}
