package provenance

import (
	"fmt"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/telemetry"
)

func metricsTestSpace(t *testing.T) *pipeline.Space {
	t.Helper()
	return pipeline.MustSpace(
		pipeline.Parameter{Name: "a", Kind: pipeline.Ordinal, Domain: []pipeline.Value{
			pipeline.Ord(1), pipeline.Ord(2), pipeline.Ord(3), pipeline.Ord(4),
			pipeline.Ord(5), pipeline.Ord(6), pipeline.Ord(7), pipeline.Ord(8),
		}},
		pipeline.Parameter{Name: "b", Kind: pipeline.Ordinal, Domain: []pipeline.Value{
			pipeline.Ord(1), pipeline.Ord(2), pipeline.Ord(3), pipeline.Ord(4),
		}},
	)
}

func TestStoreMetricsGaugesAndEpoch(t *testing.T) {
	s := metricsTestSpace(t)
	st := NewStoreSharded(s, 4)
	reg := telemetry.NewRegistry()
	st.SetMetrics(NewMetrics(reg, nil, st.Shards()))

	n := 0
	for _, av := range s.Domain("a") {
		for _, bv := range s.Domain("b") {
			in := pipeline.MustInstance(s, av, bv)
			out := pipeline.Succeed
			if n%3 == 0 {
				out = pipeline.Fail
			}
			if err := st.Add(in, out, "test"); err != nil {
				t.Fatal(err)
			}
			n++
		}
	}

	// Per-shard gauges read the live committed counters and sum to Len.
	snap := reg.Snapshot()
	var sum int64
	for i := 0; i < st.Shards(); i++ {
		v, ok := snap.Gauges[fmt.Sprintf("provenance_shard%d_records", i)]
		if !ok {
			t.Fatalf("missing gauge for shard %d", i)
		}
		sum += v
	}
	if sum != int64(st.Len()) {
		t.Errorf("shard gauges sum to %d, store has %d", sum, st.Len())
	}
	if got := snap.Gauges["provenance_records"]; got != int64(st.Len()) {
		t.Errorf("total gauge = %d, want %d", got, st.Len())
	}

	// First Epoch builds every non-empty shard's snapshot; a second over a
	// quiescent store serves the published ones with zero staleness.
	if st.Epoch().Len() != st.Len() {
		t.Fatal("epoch misses records")
	}
	st.Epoch()
	snap = reg.Snapshot()
	if snap.Counters["provenance_epoch_refreshes"] == 0 {
		t.Error("no epoch refreshes counted")
	}
	stale := snap.Histograms["provenance_epoch_staleness"]
	if stale.Count == 0 {
		t.Error("no staleness observations")
	}

	// More writes make the published epochs stale; refresh count grows.
	before := snap.Counters["provenance_epoch_refreshes"]
	if err := st.Add(pipeline.MustInstance(s, pipeline.Ord(100), pipeline.Ord(1)), pipeline.Succeed, "test"); err != nil {
		t.Fatal(err)
	}
	if st.Epoch().Len() != st.Len() {
		t.Fatal("refreshed epoch misses the new record")
	}
	if after := reg.Snapshot().Counters["provenance_epoch_refreshes"]; after <= before {
		t.Errorf("epoch refreshes did not grow: %d -> %d", before, after)
	}
}

func TestSetMetricsNilSafe(t *testing.T) {
	s := metricsTestSpace(t)
	st := NewStore(s)
	st.SetMetrics(nil)
	if NewMetrics(nil, nil, 1) != nil {
		t.Fatal("NewMetrics(nil, nil) should return nil")
	}
	var m *Metrics
	m.epochServed(0, 1)
	m.epochRefreshed(0, 0, 1, 0)
	m.indexBuilt(0)
	in := pipeline.MustInstance(s, pipeline.Ord(1), pipeline.Ord(1))
	if err := st.Add(in, pipeline.Fail, "test"); err != nil {
		t.Fatal(err)
	}
	if st.Epoch().Len() != 1 {
		t.Fatal("epoch over uninstrumented store broken")
	}
}
