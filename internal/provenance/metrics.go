package provenance

import (
	"fmt"
	"time"

	"repro/internal/telemetry"
)

// Metrics is the store's instrumentation bundle. Build one with NewMetrics
// and attach it with SetMetrics before handing the store to writers (the
// SetSink contract); a nil *Metrics — the default — is the uninstrumented
// fast path.
//
// Per-shard record counts cost nothing on the write path: they are
// callback gauges over the shards' existing committed counters, evaluated
// only at snapshot time. The epoch instrumentation does touch the query
// path — a staleness observation per Epoch capture and a refresh counter
// per snapshot rebuild — but each is one or two atomic adds on an
// already-lock-free path.
type Metrics struct {
	reg     *telemetry.Registry
	journal *telemetry.Journal

	epochRefreshes *telemetry.Counter
	epochStaleness *telemetry.Histogram // records behind at query time, striped by shard
	indexBuildNs   *telemetry.Histogram // deferred base-index build duration
}

// NewMetrics registers the store's metrics in reg (under provenance_*
// names) and emits epoch-refresh span events to journal. Either argument
// may be nil; NewMetrics(nil, nil) returns nil, the uninstrumented store.
// shards sizes the staleness histogram's stripe count.
func NewMetrics(reg *telemetry.Registry, journal *telemetry.Journal, shards int) *Metrics {
	if reg == nil && journal == nil {
		return nil
	}
	if shards < 1 {
		shards = 1
	}
	return &Metrics{
		reg:            reg,
		journal:        journal,
		epochRefreshes: reg.Counter("provenance_epoch_refreshes"),
		epochStaleness: reg.HistogramStripes("provenance_epoch_staleness", shards),
		indexBuildNs:   reg.Histogram("provenance_index_build_ns"),
	}
}

// SetMetrics attaches an instrumentation bundle and registers one callback
// gauge per shard (provenance_shard<i>_records) plus the total record
// count (provenance_records), all reading the shards' committed counters
// lock-free at snapshot time. Like SetSink, SetMetrics is not meant to
// race with Adds: attach before handing the store to the executor. Passing
// nil detaches (already-registered gauges keep reporting).
func (st *Store) SetMetrics(m *Metrics) {
	st.met = m
	if m == nil || m.reg == nil {
		return
	}
	for i := range st.shards {
		sh := &st.shards[i]
		m.reg.GaugeFunc(fmt.Sprintf("provenance_shard%d_records", i), func() int64 {
			return sh.committed.Load()
		})
	}
	m.reg.GaugeFunc("provenance_records", func() int64 {
		var n int64
		for i := range st.shards {
			n += st.shards[i].committed.Load()
		}
		return n
	})
}

// epochServed records one epoch query serving a published snapshot that is
// behind the shard's committed count by `stale` records (0 when current).
func (m *Metrics) epochServed(shardIdx int, stale int64) {
	if m == nil {
		return
	}
	m.epochStaleness.ObserveAt(shardIdx, stale)
}

// epochRefreshed records one snapshot rebuild: counter, journal span.
func (m *Metrics) epochRefreshed(shardIdx, from, to int, d time.Duration) {
	if m == nil {
		return
	}
	m.epochRefreshes.Inc()
	if m.journal != nil {
		m.journal.Emit("epoch_refresh",
			telemetry.Int("shard", int64(shardIdx)),
			telemetry.Int("from", int64(from)),
			telemetry.Int("to", int64(to)),
			telemetry.Dur("dur_ns", d),
		)
	}
}

// indexBuilt records one deferred base-index build.
func (m *Metrics) indexBuilt(d time.Duration) {
	if m == nil {
		return
	}
	m.indexBuildNs.Observe(int64(d))
}
