package provenance

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/pipeline"
)

// MaxShards caps the shard count a store can be built with. Shard counts
// round up to a power of two; anything above this cap is clamped.
const MaxShards = 256

// shard is one hash range of the store: an independent slice of the log
// with its own lock, identity tiers, outcome and posting indices, and
// staged-commit state. Instances route to shards by the top bits of their
// identity hash, so one shard's records form a contiguous range of any
// hash-sorted checkpoint run and a run splits across shards with a binary
// search per boundary.
//
// Within a shard, records are kept in global sequence order: sequences are
// assigned monotonically and each shard commits its records in assignment
// order, so local log position order and global sequence order agree.
// Every per-shard index — the outcome and posting bitsets, the ordered
// outcome lists, the identity map and base run — speaks local positions,
// and cross-shard queries restore execution order by merging per-shard
// results on the records' global sequence numbers.
type shard struct {
	mu   sync.RWMutex
	recs []Record // shard-local log, ascending global sequence

	// byKey maps instance identity to local log position (hash-bucketed
	// with Equal confirmation; see pipeline.InstanceMap). Records adopted
	// as base runs are not in byKey: identity probes for them binary-search
	// the sorted runs instead, LSM-style, so a checkpoint load never pays
	// to build a hash index.
	byKey *pipeline.InstanceMap[int32]

	// The base runs: the shard's slices of the hash-sorted checkpoint
	// tiers, newest tier first. Each run's hash column is ascending and
	// pos[i] is the local log position of the record whose instance hashes
	// to hash[i] (ties ordered by seq). An identity probe binary-searches
	// the runs newest-first, so when tiers could ever shadow one another
	// the most recent write wins — though a store-fed log holds each
	// instance exactly once, so in practice every probe hits at most one
	// run. baseUnindexed is the length of the base prefix (all adopted
	// records, across every run) whose outcome and posting indices have not
	// been built yet; the first query that needs them triggers the deferred
	// build. The memoization path (Lookup) never does.
	baseRuns      []baseRun
	baseUnindexed int

	// Staged-commit state (StagedSink path): records of this shard whose
	// sink append has been staged but whose durability is still pending,
	// in sequence order. stagedByH buckets them by instance hash for the
	// duplicate check. dropTail is set when a staged record is dropped
	// without committing (its flush failed): later staged records of the
	// shard would leave a sequence gap, so they drop too.
	staged    []*stagedRec
	stagedByH map[uint64][]*stagedRec
	dropTail  bool

	// Outcome partitions: local-position lists preserve execution order
	// for O(matches) enumeration; bitsets drive the boolean-algebra
	// queries. posting[i][c] holds the shard's records whose parameter i
	// has value-code c.
	succSeqs, failSeqs []int32
	succBits, failBits bitset
	posting            [][]bitset

	// committed mirrors len(recs) for the lock-free epoch staleness check:
	// stored under the write lock after every commit, loaded without any
	// lock by Store.Epoch to decide whether the published epoch still
	// covers the shard.
	committed atomic.Int64

	// Trial-vote state (flaky-oracle sessions only; see trials.go): maps
	// instance identity to an index into trialRecs, whose entries hold the
	// per-instance vote tallies accumulated across repeated oracle trials.
	// Deterministic sessions never touch either field.
	trialByKey *pipeline.InstanceMap[int32]
	trialRecs  []trialState

	// epoch is the shard's published index snapshot (see epoch.go), swapped
	// atomically so readers never block. epochMu single-flights refreshes:
	// a reader that finds the epoch stale and the mutex busy serves the
	// stale-but-consistent published epoch instead of waiting. indexMu
	// single-flights the off-lock deferred base-index build; both are
	// acquired before the shard lock, never after.
	epoch   atomic.Pointer[shardEpoch]
	epochMu sync.Mutex
	indexMu sync.Mutex
}

// shardIndex routes an instance hash to its shard: the hash's top 32 bits
// scaled into the shard count. The scaling is order-preserving, so shards
// are contiguous hash ranges, and for the power-of-two counts the store
// uses it equals taking the hash's top log2(shards) bits — shard s covers
// exactly [s << shift, (s+1) << shift). The multiply compiles branch-free;
// a variable 64-bit shift would pay its >=64 guard on every Lookup.
func (st *Store) shardIndex(h uint64) int {
	return int((h >> 32) * uint64(len(st.shards)) >> 32)
}

// shardOf routes an instance hash to its shard. The single-shard case —
// the default store, and the memoization hot path of every session that
// does not opt into sharding — resolves to the Store's own embedded shard
// with no loads at all.
//
//bugdoc:hotpath
func (st *Store) shardOf(h uint64) *shard {
	if len(st.shards) == 1 {
		return &st.one[0]
	}
	return &st.shards[st.shardIndex(h)]
}

// commitLocked appends a record to the shard (continuing the ascending
// sequence order) and updates every shard index. The caller holds the
// shard's write lock.
//
//bugdoc:hotpath
func (st *Store) commitLocked(sh *shard, rec Record) {
	pos := int32(len(sh.recs))
	sh.byKey.Put(rec.Instance, pos)
	sh.recs = append(sh.recs, rec)
	switch rec.Outcome {
	case pipeline.Succeed:
		sh.succSeqs = append(sh.succSeqs, pos)
	case pipeline.Fail:
		sh.failSeqs = append(sh.failSeqs, pos)
	}
	st.indexRecordBitsLocked(sh, int(pos), &rec)
	sh.committed.Store(int64(len(sh.recs)))
}

// indexRecordBitsLocked sets the positional indices — the outcome bitset
// and the per-(parameter, code) postings — for one record at local
// position pos. It is the single home of the posting-growth rule; the
// ordered position lists are maintained by the callers, which differ in
// where they append.
//
//bugdoc:hotpath
func (st *Store) indexRecordBitsLocked(sh *shard, pos int, r *Record) {
	switch r.Outcome {
	case pipeline.Succeed:
		sh.succBits.set(pos)
	case pipeline.Fail:
		sh.failBits.set(pos)
		// OutcomeInconclusive joins neither bitset: a tie carries no
		// evidence, so bitset algebra sees the record only through the
		// postings (and Lookup still memoizes it).
	}
	for i := 0; i < st.space.Len(); i++ {
		c := int(r.Instance.Code(i))
		for len(sh.posting[i]) <= c {
			sh.posting[i] = append(sh.posting[i], nil)
		}
		sh.posting[i][c].set(pos)
	}
}

// lookupPosLocked resolves an instance to its local log position through
// both identity tiers: the hash map over incrementally added records, then
// a binary search of the base run adopted from a checkpoint.
//
//bugdoc:hotpath
func (sh *shard) lookupPosLocked(in pipeline.Instance) (int32, bool) {
	if i, ok := sh.byKey.Get(in); ok {
		return i, true
	}
	return sh.baseLookupLocked(in)
}

// baseRun is one adopted tier slice: a hash-ascending column plus the
// local log position of each row's record.
type baseRun struct {
	hash []uint64
	pos  []int32
}

// baseLookupLocked probes the sorted base runs, newest tier first, and
// returns the first hit — the recency-ordered fan-out that makes a
// multi-tier checkpoint load behave exactly like the single merged run.
// Kept out of the map-hit path: Lookup's memoization hit is the hottest
// operation in the system and pays only a length check for the base tiers.
//
//bugdoc:hotpath
func (sh *shard) baseLookupLocked(in pipeline.Instance) (int32, bool) {
	h := in.Hash()
	for ri := range sh.baseRuns {
		run := &sh.baseRuns[ri]
		lo, hi := 0, len(run.hash)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if run.hash[mid] < h {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		for ; lo < len(run.hash) && run.hash[lo] == h; lo++ {
			pos := run.pos[lo]
			if sh.recs[pos].Instance.Equal(in) {
				return pos, true
			}
		}
	}
	return 0, false
}

// subRun is one tier's slice belonging to a single shard: the rows of a
// hash-sorted run whose hashes fall in the shard's range.
type subRun struct {
	hashes []uint64
	seqs   []int32 // global sequences
}

// adoptRuns adopts one hash-range slice per tier (newest first; empty
// slices allowed) as the shard's base tiers: the shard's records are the
// union of the slices' records re-sorted into sequence order, each run's
// hash column aliases its tier's hash column, and each run's pos column
// maps its rows to local positions. seqToLocal is a caller-provided
// scratch array indexed by global sequence; shards own disjoint sequence
// sets, so one array serves every shard even when adoptions run in
// parallel.
func (sh *shard) adoptRuns(recs []Record, subs []subRun, seqToLocal []int32) {
	m := 0
	for _, s := range subs {
		m += len(s.seqs)
	}
	order := make([]int32, 0, m)
	for _, s := range subs {
		order = append(order, s.seqs...)
	}
	sort.Slice(order, func(a, b int) bool { return order[a] < order[b] })
	shRecs := make([]Record, m)
	for j, g := range order {
		shRecs[j] = recs[g]
		seqToLocal[g] = int32(j)
	}
	sh.baseRuns = make([]baseRun, 0, len(subs))
	for _, s := range subs {
		if len(s.seqs) == 0 {
			continue
		}
		local := make([]int32, len(s.seqs))
		for r := range s.seqs {
			local[r] = seqToLocal[s.seqs[r]]
		}
		sh.baseRuns = append(sh.baseRuns, baseRun{hash: s.hashes, pos: local})
	}
	sh.recs = shRecs
	sh.baseUnindexed = m
	sh.committed.Store(int64(m))
}

// baseIndex is the deferred base-run index built off-lock over the
// immutable base prefix: outcome position lists, outcome bitsets, and
// posting bitsets covering positions [0, n) only. installBaseIndexLocked
// merges it with whatever the shard indexed incrementally since the load.
type baseIndex struct {
	succ, fail         []int32
	succBits, failBits bitset
	posting            [][]bitset
}

// buildBaseIndex indexes the base prefix without holding any shard lock:
// the prefix is immutable once adopted (commits only append behind it), so
// the build races nothing. Only the install needs the write lock, and it
// costs O(index words), not O(records × parameters) — concurrent Lookups
// no longer stall behind the first query of a freshly loaded checkpoint.
func (st *Store) buildBaseIndex(base []Record) *baseIndex {
	n := len(base)
	bi := &baseIndex{
		succ:    make([]int32, 0, n),
		fail:    make([]int32, 0, n),
		posting: make([][]bitset, st.space.Len()),
	}
	for pos := 0; pos < n; pos++ {
		r := &base[pos]
		switch r.Outcome {
		case pipeline.Succeed:
			bi.succ = append(bi.succ, int32(pos))
			bi.succBits.set(pos)
		case pipeline.Fail:
			bi.fail = append(bi.fail, int32(pos))
			bi.failBits.set(pos)
		}
		for i := range bi.posting {
			c := int(r.Instance.Code(i))
			for len(bi.posting[i]) <= c {
				bi.posting[i] = append(bi.posting[i], nil)
			}
			bi.posting[i][c].set(pos)
		}
	}
	return bi
}

// installBaseIndexLocked merges an off-lock base index into the shard's
// live indices: base position lists prepend (base positions all precede
// post-load ones), and the positional bitsets — outcome and posting — or
// together word-wise. The caller holds the shard's write lock.
func (st *Store) installBaseIndexLocked(sh *shard, bi *baseIndex) {
	if sh.baseUnindexed == 0 {
		return
	}
	sh.baseUnindexed = 0
	sh.succSeqs = append(bi.succ, sh.succSeqs...)
	sh.failSeqs = append(bi.fail, sh.failSeqs...)
	bi.succBits.orWith(sh.succBits)
	sh.succBits = bi.succBits
	bi.failBits.orWith(sh.failBits)
	sh.failBits = bi.failBits
	for i := range bi.posting {
		lp := sh.posting[i]
		if len(lp) < len(bi.posting[i]) {
			lp = append(lp, make([]bitset, len(bi.posting[i])-len(lp))...)
		}
		for c, bp := range bi.posting[i] {
			if bp == nil {
				continue
			}
			bp.orWith(lp[c])
			lp[c] = bp
		}
		sh.posting[i] = lp
	}
}

// stagedLookupLocked returns the shard's in-flight staged record for in,
// if any.
func (sh *shard) stagedLookupLocked(in pipeline.Instance) *stagedRec {
	for _, e := range sh.stagedByH[in.Hash()] {
		if e.rec.Instance.Equal(in) {
			return e
		}
	}
	return nil
}

// stagePushLocked registers a staged record for the duplicate check and
// the sequence-ordered drain.
func (sh *shard) stagePushLocked(e *stagedRec) {
	if sh.stagedByH == nil {
		sh.stagedByH = make(map[uint64][]*stagedRec)
	}
	sh.staged = append(sh.staged, e)
	h := e.rec.Instance.Hash()
	sh.stagedByH[h] = append(sh.stagedByH[h], e)
}

// drainStagedLocked commits the resolved prefix of the shard's staged set.
// Records become durable strictly in global sequence order (commit groups
// flush the sink's pending buffer wholesale), but the goroutines observing
// the flush reach the shard lock in any order, so each marks its own
// records and drains whatever contiguous prefix has been resolved — later
// records wait for their predecessors' (already awake) goroutines. Failed
// records drop without committing and set dropTail: nothing behind a
// failure can be durable (a group flush failure poisons the sink and every
// later wait fails too), and dropping a record burns its sequence, so any
// later staged record of the shard drops as well rather than commit out of
// order.
//
//buglint:ignore stickyerr staged entries were validated against stageErr when staged; failures arrive as e.failed/dropTail here, after the sticky error is already set under wmu
func (st *Store) drainStagedLocked(sh *shard) {
	for len(sh.staged) > 0 {
		e := sh.staged[0]
		if !e.durable && !e.failed {
			return
		}
		sh.staged = sh.staged[1:]
		h := e.rec.Instance.Hash()
		bucket := sh.stagedByH[h]
		for i := range bucket {
			if bucket[i] == e {
				sh.stagedByH[h] = append(bucket[:i], bucket[i+1:]...)
				break
			}
		}
		if len(sh.stagedByH[h]) == 0 {
			delete(sh.stagedByH, h)
		}
		if e.failed {
			sh.dropTail = true
		}
		if e.durable && !sh.dropTail {
			st.commitLocked(sh, e.rec)
		}
		close(e.done)
	}
}
