package provenance

import (
	"fmt"
	"testing"

	"repro/internal/pipeline"
)

// recordingSink captures plain Appends.
type recordingSink struct {
	recs []Record
	fail bool
}

func (s *recordingSink) Append(r Record) error {
	if s.fail {
		return fmt.Errorf("sink down")
	}
	s.recs = append(s.recs, r)
	return nil
}

// stagingSink implements StagedSink, recording how records arrive in
// staged groups; failNext makes the next wait report a flush failure.
type stagingSink struct {
	groups   [][]Record
	failNext bool
}

func (s *stagingSink) Append(r Record) error {
	wait, err := s.Stage([]Record{r})
	if err != nil {
		return err
	}
	return wait()
}

func (s *stagingSink) Stage(recs []Record) (func() error, error) {
	staged := append([]Record(nil), recs...)
	fail := s.failNext
	s.failNext = false
	return func() error {
		if fail {
			return fmt.Errorf("flush failed")
		}
		s.groups = append(s.groups, staged)
		return nil
	}, nil
}

func batchEntries(t *testing.T, s *pipeline.Space, n int) []Entry {
	t.Helper()
	entries := make([]Entry, n)
	for i := range entries {
		in, err := pipeline.NewInstance(s, []pipeline.Value{
			pipeline.Ord(float64(100 + i)), pipeline.Cat("x"),
		})
		if err != nil {
			t.Fatal(err)
		}
		out := pipeline.Succeed
		if i%2 == 0 {
			out = pipeline.Fail
		}
		entries[i] = Entry{Instance: in, Outcome: out, Source: "batch"}
	}
	return entries
}

// TestAddBatchCommitsAndSkipsDuplicates covers the core semantics: one
// multi-record staged append, duplicate skipping against the store and
// within the batch, and index integrity afterwards.
func TestAddBatchCommitsAndSkipsDuplicates(t *testing.T) {
	s := testSpace(t)
	sink := &stagingSink{}
	st := NewStore(s)
	st.SetSink(sink)
	entries := batchEntries(t, s, 6)
	if err := st.Add(entries[0].Instance, entries[0].Outcome, "seed"); err != nil {
		t.Fatal(err)
	}
	withDups := append(append([]Entry(nil), entries...), entries[1], entries[3])
	added, err := st.AddBatch(withDups)
	if err != nil {
		t.Fatal(err)
	}
	if added != 5 { // 6 fresh minus the one already recorded; intra-batch dups skip
		t.Fatalf("added = %d, want 5", added)
	}
	if st.Len() != 6 {
		t.Fatalf("store has %d records, want 6", st.Len())
	}
	if len(sink.groups) != 2 || len(sink.groups[1]) != 5 {
		t.Fatalf("sink saw groups %v, want the batch as one 5-record group", sink.groups)
	}
	for i, r := range st.Snapshot().Records() {
		if r.Seq != i {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}
	for _, e := range entries {
		out, ok := st.Lookup(e.Instance)
		if !ok || out != e.Outcome {
			t.Fatalf("lookup %v = %v, %v", e.Instance, out, ok)
		}
	}
	succ, fail := st.Outcomes()
	if succ+fail != 6 {
		t.Fatalf("outcome indices count %d records", succ+fail)
	}
}

// TestAddBatchFlushFailurePoisons asserts the all-or-nothing staged
// contract: a failed flush commits nothing, and the store refuses later
// writes (the burned sequence numbers make them uncommittable) while
// reads keep working.
func TestAddBatchFlushFailurePoisons(t *testing.T) {
	s := testSpace(t)
	sink := &stagingSink{}
	st := NewStore(s)
	st.SetSink(sink)
	pre := batchEntries(t, s, 2)
	if _, err := st.AddBatch(pre[:1]); err != nil {
		t.Fatal(err)
	}
	sink.failNext = true
	if _, err := st.AddBatch(batchEntries(t, s, 4)[1:]); err == nil {
		t.Fatal("AddBatch must surface the flush failure")
	}
	if st.Len() != 1 {
		t.Fatalf("failed batch committed: store has %d records", st.Len())
	}
	if err := st.Add(pre[1].Instance, pre[1].Outcome, "late"); err == nil {
		t.Fatal("poisoned store accepted a write")
	}
	if _, err := st.AddBatch(pre[1:]); err == nil {
		t.Fatal("poisoned store accepted a batch")
	}
	if out, ok := st.Lookup(pre[0].Instance); !ok || out != pre[0].Outcome {
		t.Fatalf("reads broken after poison: %v, %v", out, ok)
	}
}

// TestAddBatchPlainSinkPartialFailure covers the legacy-sink path: entries
// append one by one, and a mid-batch sink failure reports the committed
// prefix in added.
func TestAddBatchPlainSinkPartialFailure(t *testing.T) {
	s := testSpace(t)
	sink := &recordingSink{}
	st := NewStore(s)
	st.SetSink(sink)
	entries := batchEntries(t, s, 3)
	if added, err := st.AddBatch(entries); err != nil || added != 3 {
		t.Fatalf("AddBatch = %d, %v", added, err)
	}
	if len(sink.recs) != 3 {
		t.Fatalf("plain sink saw %d appends", len(sink.recs))
	}
	sink.fail = true
	more := batchEntries(t, s, 6)[3:]
	added, err := st.AddBatch(more)
	if err == nil {
		t.Fatal("AddBatch must surface the sink failure")
	}
	if added != 0 || st.Len() != 3 {
		t.Fatalf("added = %d, Len = %d; want 0 and 3", added, st.Len())
	}
	sink.fail = false
	if added, err := st.AddBatch(more); err != nil || added != 3 {
		t.Fatalf("retry AddBatch = %d, %v", added, err)
	}
}
