package provenance

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/predicate"
)

func ordDomain(vals ...float64) []pipeline.Value {
	out := make([]pipeline.Value, len(vals))
	for i, v := range vals {
		out[i] = pipeline.Ord(v)
	}
	return out
}

func catDomain(vals ...string) []pipeline.Value {
	out := make([]pipeline.Value, len(vals))
	for i, v := range vals {
		out[i] = pipeline.Cat(v)
	}
	return out
}

func testSpace(t *testing.T) *pipeline.Space {
	t.Helper()
	return pipeline.MustSpace(
		pipeline.Parameter{Name: "a", Kind: pipeline.Ordinal, Domain: ordDomain(1, 2, 3)},
		pipeline.Parameter{Name: "b", Kind: pipeline.Categorical, Domain: catDomain("x", "y", "z")},
	)
}

func TestStoreAddLookup(t *testing.T) {
	s := testSpace(t)
	st := NewStore(s)
	in := pipeline.MustInstance(s, pipeline.Ord(1), pipeline.Cat("x"))
	if err := st.Add(in, pipeline.Fail, "seed"); err != nil {
		t.Fatal(err)
	}
	out, ok := st.Lookup(in)
	if !ok || out != pipeline.Fail {
		t.Fatalf("Lookup = %v, %v", out, ok)
	}
	if _, ok := st.Lookup(pipeline.MustInstance(s, pipeline.Ord(2), pipeline.Cat("x"))); ok {
		t.Fatal("lookup of unrecorded instance must miss")
	}
	if err := st.Add(in, pipeline.Succeed, "dup"); err == nil {
		t.Fatal("duplicate instance must be rejected")
	}
	if err := st.Add(in, pipeline.OutcomeUnknown, "bad"); err == nil {
		t.Fatal("unknown outcome must be rejected")
	}
	other := testSpace(t)
	foreign := pipeline.MustInstance(other, pipeline.Ord(1), pipeline.Cat("x"))
	if err := st.Add(foreign, pipeline.Fail, "foreign"); err == nil {
		t.Fatal("foreign-space instance must be rejected")
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d", st.Len())
	}
}

func seedStore(t *testing.T, s *pipeline.Space) *Store {
	t.Helper()
	st := NewStore(s)
	add := func(a float64, b string, out pipeline.Outcome) {
		t.Helper()
		in := pipeline.MustInstance(s, pipeline.Ord(a), pipeline.Cat(b))
		if err := st.Add(in, out, "seed"); err != nil {
			t.Fatal(err)
		}
	}
	add(1, "x", pipeline.Fail)
	add(2, "y", pipeline.Succeed)
	add(3, "z", pipeline.Succeed)
	add(3, "x", pipeline.Succeed)
	return st
}

func TestStoreQueries(t *testing.T) {
	s := testSpace(t)
	st := seedStore(t, s)
	succ, fail := st.Outcomes()
	if succ != 3 || fail != 1 {
		t.Fatalf("Outcomes = %d, %d", succ, fail)
	}
	if got := len(st.Failing()); got != 1 {
		t.Fatalf("Failing = %d", got)
	}
	if got := len(st.Succeeding()); got != 3 {
		t.Fatalf("Succeeding = %d", got)
	}
	f, ok := st.FirstFailing()
	if !ok || f.Value(0) != pipeline.Ord(1) {
		t.Fatalf("FirstFailing = %v, %v", f, ok)
	}
	// Disjoint from (1,x): (2,y) and (3,z); (3,x) shares b=x.
	dis := st.DisjointSucceeding(f)
	if len(dis) != 2 {
		t.Fatalf("DisjointSucceeding = %v", dis)
	}
	md, ok := st.MostDifferentSucceeding(f)
	if !ok || md.DiffCount(f) != 2 {
		t.Fatalf("MostDifferentSucceeding = %v", md)
	}
}

func TestMutuallyDisjointSucceeding(t *testing.T) {
	s := testSpace(t)
	st := seedStore(t, s)
	f, _ := st.FirstFailing()
	// (2,y) and (3,z) are mutually disjoint and disjoint from (1,x).
	got := st.MutuallyDisjointSucceeding(f, 3, false)
	if len(got) != 2 {
		t.Fatalf("MutuallyDisjointSucceeding = %v", got)
	}
	for i := range got {
		if !got[i].DisjointFrom(f) {
			t.Fatalf("instance %v not disjoint from %v", got[i], f)
		}
		for j := i + 1; j < len(got); j++ {
			if !got[i].DisjointFrom(got[j]) {
				t.Fatalf("instances %v and %v not mutually disjoint", got[i], got[j])
			}
		}
	}
	// Padding adds the remaining succeeding instance.
	padded := st.MutuallyDisjointSucceeding(f, 3, true)
	if len(padded) != 3 {
		t.Fatalf("padded = %v", padded)
	}
}

func TestAnySucceedingSatisfying(t *testing.T) {
	s := testSpace(t)
	st := seedStore(t, s)
	c := predicate.And(predicate.T("a", predicate.Eq, pipeline.Ord(3)))
	in, ok := st.AnySucceedingSatisfying(c)
	if !ok || in.Value(0) != pipeline.Ord(3) {
		t.Fatalf("AnySucceedingSatisfying = %v, %v", in, ok)
	}
	c2 := predicate.And(predicate.T("a", predicate.Eq, pipeline.Ord(1)))
	if _, ok := st.AnySucceedingSatisfying(c2); ok {
		t.Fatal("a=1 only failed; no succeeding superset exists")
	}
	succ, fail := st.CountSatisfying(predicate.And(predicate.T("b", predicate.Eq, pipeline.Cat("x"))))
	if succ != 1 || fail != 1 {
		t.Fatalf("CountSatisfying = %d, %d", succ, fail)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := testSpace(t)
	st := seedStore(t, s)
	var buf bytes.Buffer
	if err := st.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := testSpace(t)
	st2, err := ReadCSV(s2, &buf, "loaded")
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != st.Len() {
		t.Fatalf("round trip length = %d, want %d", st2.Len(), st.Len())
	}
	a, b := st.Records(), st2.Records()
	for i := range a {
		if a[i].Outcome != b[i].Outcome || a[i].Instance.Key() != b[i].Instance.Key() {
			t.Fatalf("record %d mismatch: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCSVExpandsUniverse(t *testing.T) {
	s := testSpace(t)
	csvData := "a,b,outcome\n9,x,fail\n"
	st, err := ReadCSV(s, strings.NewReader(csvData), "t")
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d", st.Len())
	}
	if i, _ := s.Index("a"); s.DomainIndex(i, pipeline.Ord(9)) < 0 {
		t.Fatal("universe must be expanded with value 9")
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []struct {
		name, data string
	}{
		{"badHeader", "a,zz,outcome\n1,x,fail\n"},
		{"noOutcome", "a,b\n1,x\n"},
		{"missingParam", "a,outcome\n1,fail\n"},
		{"dupColumn", "a,a,b,outcome\n1,1,x,fail\n"},
		{"badOrdinal", "a,b,outcome\nfoo,x,fail\n"},
		{"badOutcome", "a,b,outcome\n1,x,meh\n"},
		{"dupInstance", "a,b,outcome\n1,x,fail\n1,x,fail\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadCSV(testSpace(t), strings.NewReader(c.data), "t"); err == nil {
				t.Fatalf("ReadCSV(%q) succeeded, want error", c.data)
			}
		})
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := testSpace(t)
	st := seedStore(t, s)
	var buf bytes.Buffer
	if err := st.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	st2, err := ReadJSON(testSpace(t), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != st.Len() {
		t.Fatalf("round trip length = %d, want %d", st2.Len(), st.Len())
	}
	a, b := st.Records(), st2.Records()
	for i := range a {
		if a[i].Outcome != b[i].Outcome || a[i].Instance.Key() != b[i].Instance.Key() {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestJSONErrors(t *testing.T) {
	s := testSpace(t)
	bad := []string{
		"not json",
		`[{"values": {"zz": 1}, "outcome": "fail"}]`,
		`[{"values": {"a": "str", "b": "x"}, "outcome": "fail"}]`,
		`[{"values": {"a": 1, "b": 2}, "outcome": "fail"}]`,
		`[{"values": {"a": 1, "b": "x"}, "outcome": "meh"}]`,
		`[{"values": {"a": 1, "b": "x"}, "outcome": "fail", "extra": null},
		  {"values": {"a": 1, "b": "x"}, "outcome": "fail"}]`,
	}
	for _, data := range bad {
		if _, err := ReadJSON(s, strings.NewReader(data)); err == nil {
			t.Fatalf("ReadJSON(%q) succeeded, want error", data)
		}
	}
}
