package provenance

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/predicate"
)

func ordDomain(vals ...float64) []pipeline.Value {
	out := make([]pipeline.Value, len(vals))
	for i, v := range vals {
		out[i] = pipeline.Ord(v)
	}
	return out
}

func catDomain(vals ...string) []pipeline.Value {
	out := make([]pipeline.Value, len(vals))
	for i, v := range vals {
		out[i] = pipeline.Cat(v)
	}
	return out
}

func testSpace(t *testing.T) *pipeline.Space {
	t.Helper()
	return pipeline.MustSpace(
		pipeline.Parameter{Name: "a", Kind: pipeline.Ordinal, Domain: ordDomain(1, 2, 3)},
		pipeline.Parameter{Name: "b", Kind: pipeline.Categorical, Domain: catDomain("x", "y", "z")},
	)
}

func TestStoreAddLookup(t *testing.T) {
	s := testSpace(t)
	st := NewStore(s)
	in := pipeline.MustInstance(s, pipeline.Ord(1), pipeline.Cat("x"))
	if err := st.Add(in, pipeline.Fail, "seed"); err != nil {
		t.Fatal(err)
	}
	out, ok := st.Lookup(in)
	if !ok || out != pipeline.Fail {
		t.Fatalf("Lookup = %v, %v", out, ok)
	}
	if _, ok := st.Lookup(pipeline.MustInstance(s, pipeline.Ord(2), pipeline.Cat("x"))); ok {
		t.Fatal("lookup of unrecorded instance must miss")
	}
	if err := st.Add(in, pipeline.Succeed, "dup"); err == nil {
		t.Fatal("duplicate instance must be rejected")
	}
	if err := st.Add(in, pipeline.OutcomeUnknown, "bad"); err == nil {
		t.Fatal("unknown outcome must be rejected")
	}
	other := testSpace(t)
	foreign := pipeline.MustInstance(other, pipeline.Ord(1), pipeline.Cat("x"))
	if err := st.Add(foreign, pipeline.Fail, "foreign"); err == nil {
		t.Fatal("foreign-space instance must be rejected")
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d", st.Len())
	}
}

func seedStore(t *testing.T, s *pipeline.Space) *Store {
	t.Helper()
	st := NewStore(s)
	add := func(a float64, b string, out pipeline.Outcome) {
		t.Helper()
		in := pipeline.MustInstance(s, pipeline.Ord(a), pipeline.Cat(b))
		if err := st.Add(in, out, "seed"); err != nil {
			t.Fatal(err)
		}
	}
	add(1, "x", pipeline.Fail)
	add(2, "y", pipeline.Succeed)
	add(3, "z", pipeline.Succeed)
	add(3, "x", pipeline.Succeed)
	return st
}

func TestStoreQueries(t *testing.T) {
	s := testSpace(t)
	st := seedStore(t, s)
	succ, fail := st.Outcomes()
	if succ != 3 || fail != 1 {
		t.Fatalf("Outcomes = %d, %d", succ, fail)
	}
	if got := len(st.Failing()); got != 1 {
		t.Fatalf("Failing = %d", got)
	}
	if got := len(st.Succeeding()); got != 3 {
		t.Fatalf("Succeeding = %d", got)
	}
	f, ok := st.FirstFailing()
	if !ok || f.Value(0) != pipeline.Ord(1) {
		t.Fatalf("FirstFailing = %v, %v", f, ok)
	}
	// Disjoint from (1,x): (2,y) and (3,z); (3,x) shares b=x.
	dis := st.DisjointSucceeding(f)
	if len(dis) != 2 {
		t.Fatalf("DisjointSucceeding = %v", dis)
	}
	md, ok := st.MostDifferentSucceeding(f)
	if !ok || md.DiffCount(f) != 2 {
		t.Fatalf("MostDifferentSucceeding = %v", md)
	}
}

// TestCrossSpaceQueriesDoNotPanic pins the cross-space guards: a ref
// instance from a different space — in particular one with FEWER
// parameters, which used to drive DiffCount past the end of the shorter
// code vector and panic — must make every heuristic query report
// not-found, matching DisjointSucceeding's long-standing behavior.
func TestCrossSpaceQueriesDoNotPanic(t *testing.T) {
	s := testSpace(t)
	st := seedStore(t, s)
	small := pipeline.MustSpace(
		pipeline.Parameter{Name: "only", Kind: pipeline.Ordinal, Domain: ordDomain(1, 2)},
	)
	ref := pipeline.MustInstance(small, pipeline.Ord(1))
	if got := st.DisjointSucceeding(ref); got != nil {
		t.Fatalf("DisjointSucceeding(foreign) = %v, want nil", got)
	}
	if in, ok := st.MostDifferentSucceeding(ref); ok {
		t.Fatalf("MostDifferentSucceeding(foreign) = %v, want not found", in)
	}
	if got := st.MutuallyDisjointSucceeding(ref, 3, true); got != nil {
		t.Fatalf("MutuallyDisjointSucceeding(foreign) = %v, want nil", got)
	}
	// Same space count, different identity: still foreign.
	twin := testSpace(t)
	refTwin := pipeline.MustInstance(twin, pipeline.Ord(1), pipeline.Cat("x"))
	if _, ok := st.MostDifferentSucceeding(refTwin); ok {
		t.Fatal("MostDifferentSucceeding must reject a twin-space ref")
	}
	if got := st.MutuallyDisjointSucceeding(refTwin, 2, false); got != nil {
		t.Fatalf("MutuallyDisjointSucceeding(twin) = %v, want nil", got)
	}
}

// TestPoisonedStoreRejectsPlainWrites pins the sequence-corruption fix: a
// staged-sink failure burns sequence numbers, so after the failure the
// store must reject writes on EVERY sink configuration — staged, plain,
// and detached — or a later commit would land at the wrong log position.
func TestPoisonedStoreRejectsPlainWrites(t *testing.T) {
	s := testSpace(t)
	sink := &stagingSink{}
	st := NewStore(s)
	st.SetSink(sink)
	entries := batchEntries(t, s, 4)
	if _, err := st.AddBatch(entries[:1]); err != nil {
		t.Fatal(err)
	}
	sink.failNext = true
	if _, err := st.AddBatch(entries[1:3]); err == nil {
		t.Fatal("failed flush must surface")
	}
	// Detach the sink: plain Adds used to bypass the poison check and
	// commit a record whose seq no longer continues the log.
	st.SetSink(nil)
	if err := st.Add(entries[3].Instance, entries[3].Outcome, "late"); err == nil {
		t.Fatal("poisoned store accepted a sink-less Add")
	}
	if added, err := st.AddBatch(entries[3:]); err == nil || added != 0 {
		t.Fatalf("poisoned store accepted a sink-less AddBatch (%d, %v)", added, err)
	}
	// A plain (non-staged) sink must be refused too.
	st.SetSink(&recordingSink{})
	if err := st.Add(entries[3].Instance, entries[3].Outcome, "late"); err == nil {
		t.Fatal("poisoned store accepted a plain-sink Add")
	}
	if added, err := st.AddBatch(entries[3:]); err == nil || added != 0 {
		t.Fatalf("poisoned store accepted a plain-sink AddBatch (%d, %v)", added, err)
	}
	// Reads and the committed prefix stay valid throughout.
	if st.Len() != 1 {
		t.Fatalf("Len = %d, want 1", st.Len())
	}
	if out, ok := st.Lookup(entries[0].Instance); !ok || out != entries[0].Outcome {
		t.Fatalf("reads broken after poison: %v, %v", out, ok)
	}
	for i, r := range st.Records() {
		if r.Seq != i {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}
}

func TestMutuallyDisjointSucceeding(t *testing.T) {
	s := testSpace(t)
	st := seedStore(t, s)
	f, _ := st.FirstFailing()
	// (2,y) and (3,z) are mutually disjoint and disjoint from (1,x).
	got := st.MutuallyDisjointSucceeding(f, 3, false)
	if len(got) != 2 {
		t.Fatalf("MutuallyDisjointSucceeding = %v", got)
	}
	for i := range got {
		if !got[i].DisjointFrom(f) {
			t.Fatalf("instance %v not disjoint from %v", got[i], f)
		}
		for j := i + 1; j < len(got); j++ {
			if !got[i].DisjointFrom(got[j]) {
				t.Fatalf("instances %v and %v not mutually disjoint", got[i], got[j])
			}
		}
	}
	// Padding adds the remaining succeeding instance.
	padded := st.MutuallyDisjointSucceeding(f, 3, true)
	if len(padded) != 3 {
		t.Fatalf("padded = %v", padded)
	}
}

func TestAnySucceedingSatisfying(t *testing.T) {
	s := testSpace(t)
	st := seedStore(t, s)
	c := predicate.And(predicate.T("a", predicate.Eq, pipeline.Ord(3)))
	in, ok := st.AnySucceedingSatisfying(c)
	if !ok || in.Value(0) != pipeline.Ord(3) {
		t.Fatalf("AnySucceedingSatisfying = %v, %v", in, ok)
	}
	c2 := predicate.And(predicate.T("a", predicate.Eq, pipeline.Ord(1)))
	if _, ok := st.AnySucceedingSatisfying(c2); ok {
		t.Fatal("a=1 only failed; no succeeding superset exists")
	}
	succ, fail := st.CountSatisfying(predicate.And(predicate.T("b", predicate.Eq, pipeline.Cat("x"))))
	if succ != 1 || fail != 1 {
		t.Fatalf("CountSatisfying = %d, %d", succ, fail)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := testSpace(t)
	st := seedStore(t, s)
	var buf bytes.Buffer
	if err := st.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := testSpace(t)
	st2, err := ReadCSV(s2, &buf, "loaded")
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != st.Len() {
		t.Fatalf("round trip length = %d, want %d", st2.Len(), st.Len())
	}
	a, b := st.Records(), st2.Records()
	for i := range a {
		if a[i].Outcome != b[i].Outcome || a[i].Instance.Key() != b[i].Instance.Key() {
			t.Fatalf("record %d mismatch: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCSVExpandsUniverse(t *testing.T) {
	s := testSpace(t)
	csvData := "a,b,outcome\n9,x,fail\n"
	st, err := ReadCSV(s, strings.NewReader(csvData), "t")
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d", st.Len())
	}
	if i, _ := s.Index("a"); s.DomainIndex(i, pipeline.Ord(9)) < 0 {
		t.Fatal("universe must be expanded with value 9")
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []struct {
		name, data string
	}{
		{"badHeader", "a,zz,outcome\n1,x,fail\n"},
		{"noOutcome", "a,b\n1,x\n"},
		{"missingParam", "a,outcome\n1,fail\n"},
		{"dupColumn", "a,a,b,outcome\n1,1,x,fail\n"},
		{"badOrdinal", "a,b,outcome\nfoo,x,fail\n"},
		{"badOutcome", "a,b,outcome\n1,x,meh\n"},
		{"dupInstance", "a,b,outcome\n1,x,fail\n1,x,fail\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadCSV(testSpace(t), strings.NewReader(c.data), "t"); err == nil {
				t.Fatalf("ReadCSV(%q) succeeded, want error", c.data)
			}
		})
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := testSpace(t)
	st := seedStore(t, s)
	var buf bytes.Buffer
	if err := st.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	st2, err := ReadJSON(testSpace(t), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != st.Len() {
		t.Fatalf("round trip length = %d, want %d", st2.Len(), st.Len())
	}
	a, b := st.Records(), st2.Records()
	for i := range a {
		if a[i].Outcome != b[i].Outcome || a[i].Instance.Key() != b[i].Instance.Key() {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestJSONErrors(t *testing.T) {
	s := testSpace(t)
	bad := []string{
		"not json",
		`[{"values": {"zz": 1}, "outcome": "fail"}]`,
		`[{"values": {"a": "str", "b": "x"}, "outcome": "fail"}]`,
		`[{"values": {"a": 1, "b": 2}, "outcome": "fail"}]`,
		`[{"values": {"a": 1, "b": "x"}, "outcome": "meh"}]`,
		`[{"values": {"a": 1, "b": "x"}, "outcome": "fail", "extra": null},
		  {"values": {"a": 1, "b": "x"}, "outcome": "fail"}]`,
	}
	for _, data := range bad {
		if _, err := ReadJSON(s, strings.NewReader(data)); err == nil {
			t.Fatalf("ReadJSON(%q) succeeded, want error", data)
		}
	}
}
