package provenance

import (
	"sort"

	"repro/internal/pipeline"
	"repro/internal/predicate"
)

// This file holds the store's read side: snapshots and the history queries
// the BugDoc algorithms run. Per-shard work happens under each shard's
// read lock with the indices the shard maintains over local positions;
// cross-shard results are merged on the records' global sequence numbers,
// so every query returns exactly what a single-shard store would.

// Snapshot is a point-in-time, read-only view of a store's log. Because the
// log is append-only and records are immutable, a single-shard snapshot is
// just the log prefix at capture time — taking one copies nothing and later
// Adds never disturb it. A sharded snapshot merges the shards' slices back
// into sequence order, truncated to the dense committed prefix (a record
// whose lower-sequence sibling on another shard is still in flight commits,
// conceptually, after the capture point).
type Snapshot struct {
	recs []Record
}

// Snapshot captures the current log as a read-only view (zero-copy on
// single-shard stores).
func (st *Store) Snapshot() Snapshot {
	return Snapshot{recs: st.orderedLog()}
}

// Len returns the number of records in the snapshot.
func (sn Snapshot) Len() int { return len(sn.recs) }

// At returns the i-th record in execution order.
func (sn Snapshot) At(i int) Record { return sn.recs[i] }

// Records returns the snapshot's records in execution order. The slice may
// be shared with the store's log; callers must not modify it.
func (sn Snapshot) Records() []Record { return sn.recs }

// Records returns a copy of the log in execution order. Bulk read-only
// consumers of single-shard stores should prefer Snapshot, which does not
// copy.
func (st *Store) Records() []Record {
	if len(st.shards) == 1 {
		sh := &st.shards[0]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		out := make([]Record, len(sh.recs))
		copy(out, sh.recs)
		return out
	}
	return st.orderedLog()
}

// orderedLog returns the committed log in sequence order: the shard's own
// slice (capped, zero-copy) on single-shard stores, a merged copy
// truncated to the dense sequence prefix otherwise. Shard slices are
// append-only, so aliasing them under the read lock is safe — records
// already captured never move.
func (st *Store) orderedLog() []Record {
	if len(st.shards) == 1 {
		sh := &st.shards[0]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		return sh.recs[:len(sh.recs):len(sh.recs)]
	}
	parts := make([][]Record, len(st.shards))
	maxSeq := -1
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		parts[i] = sh.recs[:len(sh.recs):len(sh.recs)]
		sh.mu.RUnlock()
		if n := len(parts[i]); n > 0 && parts[i][n-1].Seq > maxSeq {
			maxSeq = parts[i][n-1].Seq
		}
	}
	out := make([]Record, maxSeq+1)
	for _, p := range parts {
		for _, r := range p {
			out[r.Seq] = r
		}
	}
	n := 0
	for n < len(out) && out[n].Instance.IsValid() {
		n++
	}
	return out[:n]
}

// Outcomes counts succeeding and failing records.
func (st *Store) Outcomes() (succeed, fail int) {
	st.ensureIndexed()
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		succeed += len(sh.succSeqs)
		fail += len(sh.failSeqs)
		sh.mu.RUnlock()
	}
	return succeed, fail
}

// seqInst pairs a global sequence number with its instance for the
// cross-shard merges that restore execution order.
type seqInst struct {
	seq int
	in  pipeline.Instance
}

// orderInstances sorts the gathered pairs by sequence and projects the
// instances. Single-shard gathers arrive already ordered and skip the
// sort.
func (st *Store) orderInstances(pairs []seqInst) []pipeline.Instance {
	if len(pairs) == 0 {
		return nil
	}
	if len(st.shards) > 1 {
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].seq < pairs[b].seq })
	}
	out := make([]pipeline.Instance, len(pairs))
	for i := range pairs {
		out[i] = pairs[i].in
	}
	return out
}

// byOutcome returns the instances with the given outcome in execution
// order. The single-shard case projects the ordered position list
// directly — one output allocation, like the historic store.
func (st *Store) byOutcome(out pipeline.Outcome) []pipeline.Instance {
	st.ensureIndexed()
	if len(st.shards) == 1 {
		sh := &st.shards[0]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		list := sh.succSeqs
		if out == pipeline.Fail {
			list = sh.failSeqs
		}
		if len(list) == 0 {
			return nil
		}
		res := make([]pipeline.Instance, len(list))
		for i, pos := range list {
			res[i] = sh.recs[pos].Instance
		}
		return res
	}
	var pairs []seqInst
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		list := sh.succSeqs
		if out == pipeline.Fail {
			list = sh.failSeqs
		}
		for _, pos := range list {
			r := &sh.recs[pos]
			pairs = append(pairs, seqInst{seq: r.Seq, in: r.Instance})
		}
		sh.mu.RUnlock()
	}
	return st.orderInstances(pairs)
}

// Failing returns the failing instances in execution order.
func (st *Store) Failing() []pipeline.Instance { return st.byOutcome(pipeline.Fail) }

// Succeeding returns the succeeding instances in execution order.
func (st *Store) Succeeding() []pipeline.Instance { return st.byOutcome(pipeline.Succeed) }

// FirstFailing returns the earliest failing instance, the natural CP_f for
// the Shortcut algorithms.
func (st *Store) FirstFailing() (pipeline.Instance, bool) {
	st.ensureIndexed()
	best, bestSeq := pipeline.Instance{}, -1
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		if len(sh.failSeqs) > 0 {
			r := &sh.recs[sh.failSeqs[0]]
			if bestSeq < 0 || r.Seq < bestSeq {
				best, bestSeq = r.Instance, r.Seq
			}
		}
		sh.mu.RUnlock()
	}
	return best, bestSeq >= 0
}

// disjointSucceedingBitsLocked computes the shard's succeeding records
// sharing no parameter value with ref: the succeeding bitset minus the
// union of ref's per-parameter posting lists. The caller holds the shard's
// read lock.
func (st *Store) disjointSucceedingBitsLocked(sh *shard, ref pipeline.Instance) bitset {
	mask := sh.succBits.clone()
	for i := 0; i < st.space.Len(); i++ {
		if c := int(ref.Code(i)); c < len(sh.posting[i]) {
			mask.andNotWith(sh.posting[i][c])
		}
	}
	return mask
}

// DisjointSucceeding returns the succeeding instances disjoint from ref
// (Definition 6), in execution order.
func (st *Store) DisjointSucceeding(ref pipeline.Instance) []pipeline.Instance {
	if ref.Space() != st.space {
		return nil // instances over different spaces are never disjoint
	}
	st.ensureIndexed()
	var pairs []seqInst
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		st.disjointSucceedingBitsLocked(sh, ref).forEach(func(pos int) bool {
			r := &sh.recs[pos]
			pairs = append(pairs, seqInst{seq: r.Seq, in: r.Instance})
			return true
		})
		sh.mu.RUnlock()
	}
	return st.orderInstances(pairs)
}

// MostDifferentSucceeding returns the succeeding instance differing from
// ref on the most parameters — the heuristic stand-in for a disjoint good
// instance when the Disjointness Condition does not hold. Ties break to
// the earliest execution. A ref from a different space finds nothing:
// cross-space difference counts are not comparable, and indexing another
// space's shorter code vector used to panic here.
func (st *Store) MostDifferentSucceeding(ref pipeline.Instance) (pipeline.Instance, bool) {
	if ref.Space() != st.space {
		return pipeline.Instance{}, false
	}
	st.ensureIndexed()
	best, bestDiff, bestSeq := pipeline.Instance{}, -1, -1
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		for _, pos := range sh.succSeqs {
			r := &sh.recs[pos]
			if d := r.Instance.DiffCount(ref); d > bestDiff || (d == bestDiff && r.Seq < bestSeq) {
				best, bestDiff, bestSeq = r.Instance, d, r.Seq
			}
		}
		sh.mu.RUnlock()
	}
	return best, bestDiff >= 0
}

// MutuallyDisjointSucceeding greedily selects up to k succeeding instances
// that are disjoint from ref and pairwise disjoint, in execution order
// (the CP_G set of the Stacked Shortcut algorithm). When fewer than k fully
// disjoint instances exist it pads, if allowed, with the most-different
// remaining succeeding instances, reflecting the paper's "mutually disjoint
// if possible". A ref from a different space selects nothing (see
// MostDifferentSucceeding).
func (st *Store) MutuallyDisjointSucceeding(ref pipeline.Instance, k int, pad bool) []pipeline.Instance {
	if ref.Space() != st.space {
		return nil
	}
	return mutuallyDisjointFrom(st.Succeeding(), ref, k, pad)
}

// mutuallyDisjointFrom runs the greedy CP_G selection over an
// execution-ordered succeeding set; the Store and Epoch variants of
// MutuallyDisjointSucceeding differ only in where that set comes from.
func mutuallyDisjointFrom(succ []pipeline.Instance, ref pipeline.Instance, k int, pad bool) []pipeline.Instance {
	var chosen []pipeline.Instance
	used := make(map[int]bool)
	for idx, in := range succ {
		if len(chosen) >= k {
			return chosen
		}
		if !in.DisjointFrom(ref) {
			continue
		}
		ok := true
		for _, c := range chosen {
			if !in.DisjointFrom(c) {
				ok = false
				break
			}
		}
		if ok {
			chosen = append(chosen, in)
			used[idx] = true
		}
	}
	if !pad {
		return chosen
	}
	// Pad with most-different succeeding instances not yet chosen.
	type cand struct {
		in   pipeline.Instance
		diff int
		seq  int
	}
	var cands []cand
	for idx, in := range succ {
		if used[idx] {
			continue
		}
		cands = append(cands, cand{in, in.DiffCount(ref), idx})
	}
	for len(chosen) < k && len(cands) > 0 {
		best := 0
		for i := 1; i < len(cands); i++ {
			if cands[i].diff > cands[best].diff ||
				(cands[i].diff == cands[best].diff && cands[i].seq < cands[best].seq) {
				best = i
			}
		}
		chosen = append(chosen, cands[best].in)
		cands = append(cands[:best], cands[best+1:]...)
	}
	return chosen
}

// tripleBitsLocked returns the shard's records satisfying t as a bitset:
// the union of the posting lists of every interned value of t's parameter
// that satisfies the comparison. Only O(distinct values) Holds evaluations
// run, never O(records). ok=false means no record can satisfy t (unknown
// parameter), matching Triple.Satisfied on unknown parameters. The caller
// holds the shard's read lock.
func (st *Store) tripleBitsLocked(sh *shard, t predicate.Triple) (bitset, bool) {
	return tripleBitsOver(st.space, sh.posting, t)
}

// tripleBitsOver is the posting-table core of tripleBitsLocked, shared
// with the epoch read path: the caller supplies whichever posting table —
// live shard indices under the read lock, or an immutable epoch's copy —
// the query runs against.
func tripleBitsOver(space *pipeline.Space, posting [][]bitset, t predicate.Triple) (bitset, bool) {
	i, ok := space.Index(t.Param)
	if !ok {
		return nil, false
	}
	var mask bitset
	for c, post := range posting[i] {
		if len(post) == 0 {
			continue
		}
		if t.Holds(space.InternedValue(i, uint32(c))) {
			mask.orWith(post)
		}
	}
	return mask, true
}

// conjunctionBitsLocked intersects the triple bitsets of c with base (an
// outcome bitset of the same shard). The empty conjunction is satisfied by
// every record. The caller holds the shard's read lock.
func (st *Store) conjunctionBitsLocked(sh *shard, c predicate.Conjunction, base bitset) bitset {
	mask := base.clone()
	for _, t := range c {
		tb, ok := st.tripleBitsLocked(sh, t)
		if !ok {
			return nil
		}
		mask.andWith(tb)
	}
	return mask
}

// AnySucceedingSatisfying returns the earliest succeeding instance whose
// parameter values satisfy the conjunction, if one exists — the Shortcut
// sanity check ("whether any superset of the hypothetical root cause is in
// an already executed successful execution").
func (st *Store) AnySucceedingSatisfying(c predicate.Conjunction) (pipeline.Instance, bool) {
	st.ensureIndexed()
	best, bestSeq := pipeline.Instance{}, -1
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		if pos, ok := st.conjunctionBitsLocked(sh, c, sh.succBits).first(); ok {
			r := &sh.recs[pos]
			if bestSeq < 0 || r.Seq < bestSeq {
				best, bestSeq = r.Instance, r.Seq
			}
		}
		sh.mu.RUnlock()
	}
	return best, bestSeq >= 0
}

// CountSatisfying counts recorded instances satisfying c, split by outcome.
// Each shard materializes its satisfying set once and intersects it with
// its outcome bitsets in place; the per-shard counts sum.
func (st *Store) CountSatisfying(c predicate.Conjunction) (succeed, fail int) {
	if len(c) == 0 {
		return st.Outcomes()
	}
	st.ensureIndexed()
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		var mask bitset
		known := true
		for j, t := range c {
			tb, ok := st.tripleBitsLocked(sh, t)
			if !ok {
				known = false
				break
			}
			if j == 0 {
				mask = tb // tripleBitsLocked returns a fresh bitset; safe to own
			} else {
				mask.andWith(tb)
			}
		}
		if known {
			succeed += mask.andCount(sh.succBits)
			fail += mask.andCount(sh.failBits)
		}
		sh.mu.RUnlock()
		if !known {
			return 0, 0 // unknown parameter: no record anywhere can satisfy c
		}
	}
	return succeed, fail
}
