package provenance

import (
	"math/rand"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/predicate"
)

// This file differentially tests the indexed history queries against
// reference implementations that scan the log linearly — the semantics the
// store had before the columnar indices. Any divergence on randomized
// stores is a bug in the index layer.

func naiveCountSatisfying(st *Store, c predicate.Conjunction) (succeed, fail int) {
	for _, r := range st.Records() {
		if !c.Satisfied(r.Instance) {
			continue
		}
		switch r.Outcome {
		case pipeline.Succeed:
			succeed++
		case pipeline.Fail:
			fail++
		}
	}
	return
}

func naiveAnySucceedingSatisfying(st *Store, c predicate.Conjunction) (pipeline.Instance, bool) {
	for _, r := range st.Records() {
		if r.Outcome == pipeline.Succeed && c.Satisfied(r.Instance) {
			return r.Instance, true
		}
	}
	return pipeline.Instance{}, false
}

func naiveDisjointSucceeding(st *Store, ref pipeline.Instance) []pipeline.Instance {
	var out []pipeline.Instance
	for _, r := range st.Records() {
		if r.Outcome == pipeline.Succeed && r.Instance.DisjointFrom(ref) {
			out = append(out, r.Instance)
		}
	}
	return out
}

func naiveMutuallyDisjointSucceeding(st *Store, ref pipeline.Instance, k int, pad bool) []pipeline.Instance {
	var chosen []pipeline.Instance
	used := make(map[string]bool)
	for _, r := range st.Records() {
		if len(chosen) >= k {
			return chosen
		}
		if r.Outcome != pipeline.Succeed || !r.Instance.DisjointFrom(ref) {
			continue
		}
		ok := true
		for _, c := range chosen {
			if !r.Instance.DisjointFrom(c) {
				ok = false
				break
			}
		}
		if ok {
			chosen = append(chosen, r.Instance)
			used[r.Instance.Key()] = true
		}
	}
	if !pad {
		return chosen
	}
	type cand struct {
		in   pipeline.Instance
		diff int
		seq  int
	}
	var cands []cand
	for _, r := range st.Records() {
		if r.Outcome != pipeline.Succeed || used[r.Instance.Key()] {
			continue
		}
		cands = append(cands, cand{r.Instance, r.Instance.DiffCount(ref), r.Seq})
	}
	for len(chosen) < k && len(cands) > 0 {
		best := 0
		for i := 1; i < len(cands); i++ {
			if cands[i].diff > cands[best].diff ||
				(cands[i].diff == cands[best].diff && cands[i].seq < cands[best].seq) {
				best = i
			}
		}
		chosen = append(chosen, cands[best].in)
		cands = append(cands[:best], cands[best+1:]...)
	}
	return chosen
}

// randomProvenanceSpace builds a small randomized mixed-kind space.
func randomProvenanceSpace(t *testing.T, r *rand.Rand) *pipeline.Space {
	t.Helper()
	n := 2 + r.Intn(3)
	params := make([]pipeline.Parameter, n)
	for i := range params {
		name := string(rune('a' + i))
		if r.Intn(2) == 0 {
			dom := make([]pipeline.Value, 2+r.Intn(4))
			for j := range dom {
				dom[j] = pipeline.Ord(float64(j))
			}
			params[i] = pipeline.Parameter{Name: name, Kind: pipeline.Ordinal, Domain: dom}
		} else {
			labels := []string{"u", "v", "w", "x", "y"}
			dom := make([]pipeline.Value, 2+r.Intn(3))
			for j := range dom {
				dom[j] = pipeline.Cat(labels[j])
			}
			params[i] = pipeline.Parameter{Name: name, Kind: pipeline.Categorical, Domain: dom}
		}
	}
	return pipeline.MustSpace(params...)
}

// fillRandomStore adds up to n random distinct instances (random outcomes)
// and returns the recorded instances.
func fillRandomStore(t *testing.T, r *rand.Rand, s *pipeline.Space, st *Store, n int) []pipeline.Instance {
	t.Helper()
	var ins []pipeline.Instance
	for attempts := 0; len(ins) < n && attempts < n*20; attempts++ {
		in := s.RandomInstance(r)
		out := pipeline.Succeed
		if r.Intn(2) == 0 {
			out = pipeline.Fail
		}
		if err := st.Add(in, out, "rand"); err != nil {
			continue // duplicate
		}
		ins = append(ins, in)
	}
	return ins
}

// randomConjunction draws 0-3 random triples, mixing comparators and
// on/off-domain values.
func randomConjunction(r *rand.Rand, s *pipeline.Space) predicate.Conjunction {
	var c predicate.Conjunction
	for k := r.Intn(4); k > 0; k-- {
		i := r.Intn(s.Len())
		p := s.At(i)
		var v pipeline.Value
		if p.Kind == pipeline.Ordinal {
			v = pipeline.Ord(float64(r.Intn(6)) - 1) // may be off-domain
		} else {
			v = p.Domain[r.Intn(len(p.Domain))]
		}
		cmp := predicate.Eq
		switch r.Intn(4) {
		case 1:
			cmp = predicate.Neq
		case 2:
			if p.Kind == pipeline.Ordinal {
				cmp = predicate.Le
			}
		case 3:
			if p.Kind == pipeline.Ordinal {
				cmp = predicate.Gt
			}
		}
		c = append(c, predicate.T(p.Name, cmp, v))
	}
	return c
}

func sameInstances(a, b []pipeline.Instance) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

func TestIndexedQueriesMatchLinearScans(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 150; trial++ {
		s := randomProvenanceSpace(t, r)
		st := NewStore(s)
		ins := fillRandomStore(t, r, s, st, 5+r.Intn(40))
		if len(ins) == 0 {
			continue
		}

		for probe := 0; probe < 10; probe++ {
			c := randomConjunction(r, s)
			gs, gf := st.CountSatisfying(c)
			ws, wf := naiveCountSatisfying(st, c)
			if gs != ws || gf != wf {
				t.Fatalf("trial %d: CountSatisfying(%v) = (%d,%d), linear scan (%d,%d)\nspace: %v",
					trial, c, gs, gf, ws, wf, s)
			}
			gin, gok := st.AnySucceedingSatisfying(c)
			win, wok := naiveAnySucceedingSatisfying(st, c)
			if gok != wok || (gok && !gin.Equal(win)) {
				t.Fatalf("trial %d: AnySucceedingSatisfying(%v) = (%v,%v), linear scan (%v,%v)",
					trial, c, gin, gok, win, wok)
			}
		}

		for probe := 0; probe < 5; probe++ {
			ref := ins[r.Intn(len(ins))]
			if !sameInstances(st.DisjointSucceeding(ref), naiveDisjointSucceeding(st, ref)) {
				t.Fatalf("trial %d: DisjointSucceeding(%v) diverges from linear scan", trial, ref)
			}
			k := 1 + r.Intn(5)
			pad := r.Intn(2) == 0
			if !sameInstances(st.MutuallyDisjointSucceeding(ref, k, pad),
				naiveMutuallyDisjointSucceeding(st, ref, k, pad)) {
				t.Fatalf("trial %d: MutuallyDisjointSucceeding(%v, %d, %v) diverges", trial, ref, k, pad)
			}
		}
	}
}

// TestIndexedQueriesCoverExpandedUniverse checks the posting lists keep up
// when instances carry values outside the declared domains.
func TestIndexedQueriesCoverExpandedUniverse(t *testing.T) {
	s := pipeline.MustSpace(
		pipeline.Parameter{Name: "a", Kind: pipeline.Ordinal, Domain: ordDomain(1, 2)},
		pipeline.Parameter{Name: "b", Kind: pipeline.Categorical, Domain: catDomain("x", "y")},
	)
	st := NewStore(s)
	in := pipeline.MustInstance(s, pipeline.Ord(7), pipeline.Cat("zz")) // both off-domain
	if err := st.Add(in, pipeline.Fail, "t"); err != nil {
		t.Fatal(err)
	}
	c := predicate.And(predicate.T("a", predicate.Gt, pipeline.Ord(2)),
		predicate.T("b", predicate.Eq, pipeline.Cat("zz")))
	if succ, fail := st.CountSatisfying(c); succ != 0 || fail != 1 {
		t.Fatalf("CountSatisfying over expanded universe = (%d,%d), want (0,1)", succ, fail)
	}
	if in2, ok := st.AnySucceedingSatisfying(c); ok {
		t.Fatalf("AnySucceedingSatisfying found %v among failures", in2)
	}
}

// TestSnapshotIsStable checks a snapshot is unaffected by later Adds.
func TestSnapshotIsStable(t *testing.T) {
	s := testSpace(t)
	st := seedStore(t, s)
	sn := st.Snapshot()
	n := sn.Len()
	if err := st.Add(pipeline.MustInstance(s, pipeline.Ord(2), pipeline.Cat("x")), pipeline.Fail, "later"); err != nil {
		t.Fatal(err)
	}
	if sn.Len() != n {
		t.Fatalf("snapshot length changed from %d to %d after Add", n, sn.Len())
	}
	for i := 0; i < n; i++ {
		if sn.At(i).Seq != i {
			t.Fatalf("snapshot record %d has seq %d", i, sn.At(i).Seq)
		}
	}
	if got := st.Snapshot().Len(); got != n+1 {
		t.Fatalf("fresh snapshot has %d records, want %d", got, n+1)
	}
}
