package provenance

import (
	"fmt"
	"testing"

	"repro/internal/pipeline"
)

func trialPolicy() pipeline.FlakyPolicy {
	return pipeline.FlakyPolicy{MinTrials: 3, MaxTrials: 5, Quorum: 3}
}

func TestTrialQuorumLifecycle(t *testing.T) {
	s := testSpace(t)
	st := NewStore(s)
	st.SetTrialPolicy(trialPolicy())
	in := pipeline.MustInstance(s, pipeline.Ord(1), pipeline.Cat("x"))

	// Claims hand out slot indices up to MaxTrials.
	for i := 0; i < 3; i++ {
		c := st.ClaimTrial(in)
		if !c.Granted || c.Trial != i {
			t.Fatalf("claim %d = %+v, want granted slot %d", i, c, i)
		}
	}
	// Votes arrive; the third agreeing vote resolves.
	for i := 0; i < 2; i++ {
		res, err := st.AddTrial(in, pipeline.Fail, "t")
		if err != nil {
			t.Fatal(err)
		}
		if res.Resolved || res.Discarded || res.Trial != i {
			t.Fatalf("vote %d = %+v, want unresolved vote at slot %d", i, res, i)
		}
	}
	res, err := st.AddTrial(in, pipeline.Fail, "t")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resolved || res.Outcome != pipeline.Fail || res.Succ != 0 || res.Fail != 3 {
		t.Fatalf("third vote = %+v, want resolution to fail at 0-3", res)
	}

	// Post-resolution: claims report the resolution, late votes are
	// discarded so the resolution can never flip.
	if c := st.ClaimTrial(in); !c.Resolved || c.Outcome != pipeline.Fail {
		t.Fatalf("post-resolution claim = %+v", c)
	}
	late, err := st.AddTrial(in, pipeline.Succeed, "t")
	if err != nil {
		t.Fatal(err)
	}
	if !late.Discarded || !late.Resolved || late.Outcome != pipeline.Fail || late.Trial != -1 {
		t.Fatalf("late vote = %+v, want discarded with the standing resolution", late)
	}
	if got := st.TrialCount(in); got != 3 {
		t.Fatalf("TrialCount = %d after a discarded vote, want 3", got)
	}
	if got := st.TrialMargin(in); got != 3 {
		t.Fatalf("TrialMargin = %d, want 3", got)
	}

	// Committing the record and re-resolving the recorded tallies must
	// agree — the invariant the -race stress test leans on.
	if err := st.Add(in, pipeline.Fail, "t"); err != nil {
		t.Fatal(err)
	}
	succ, fail := 0, 0
	for _, v := range st.TrialVotes(in) {
		if v.Outcome == pipeline.Succeed {
			succ++
		} else {
			fail++
		}
	}
	if out, done := st.TrialPolicy().Resolve(succ, fail); !done || out != pipeline.Fail {
		t.Fatalf("re-resolving recorded tallies (%d, %d) = %v, %v", succ, fail, out, done)
	}
}

func TestTrialClaimCapAndRelease(t *testing.T) {
	s := testSpace(t)
	st := NewStore(s)
	st.SetTrialPolicy(pipeline.FlakyPolicy{MinTrials: 1, MaxTrials: 2, Quorum: 1})
	in := pipeline.MustInstance(s, pipeline.Ord(2), pipeline.Cat("y"))

	if c := st.ClaimTrial(in); !c.Granted {
		t.Fatalf("first claim = %+v", c)
	}
	if c := st.ClaimTrial(in); !c.Granted {
		t.Fatalf("second claim = %+v", c)
	}
	blocked := st.ClaimTrial(in)
	if blocked.Granted || blocked.Resolved || blocked.Wait == nil {
		t.Fatalf("claim past MaxTrials = %+v, want a wait channel", blocked)
	}
	select {
	case <-blocked.Wait:
		t.Fatal("wait channel fired before any state change")
	default:
	}
	st.ReleaseTrial(in)
	select {
	case <-blocked.Wait:
	default:
		t.Fatal("release did not wake the waiter")
	}
	if c := st.ClaimTrial(in); !c.Granted {
		t.Fatalf("claim after release = %+v", c)
	}
}

func TestTrialVoteRejectsNonVerdicts(t *testing.T) {
	s := testSpace(t)
	st := NewStore(s)
	st.SetTrialPolicy(trialPolicy())
	in := pipeline.MustInstance(s, pipeline.Ord(3), pipeline.Cat("z"))
	for _, out := range []pipeline.Outcome{pipeline.OutcomeUnknown, pipeline.OutcomeInconclusive} {
		if _, err := st.AddTrial(in, out, "t"); err == nil {
			t.Errorf("AddTrial accepted %v", out)
		}
		if err := st.LoadTrialVote(in, 0, out, "t"); err == nil {
			t.Errorf("LoadTrialVote accepted %v", out)
		}
	}
}

func TestLoadTrialVoteHolesAndIdempotence(t *testing.T) {
	s := testSpace(t)
	st := NewStore(s)
	st.SetTrialPolicy(trialPolicy())
	in := pipeline.MustInstance(s, pipeline.Ord(1), pipeline.Cat("y"))

	// A high-index vote may arrive first (checkpoint re-emission trailing
	// a live append); the gap is padded with holes that count as nothing.
	if err := st.LoadTrialVote(in, 2, pipeline.Fail, "t"); err != nil {
		t.Fatal(err)
	}
	if got := st.TrialCount(in); got != 3 {
		t.Fatalf("TrialCount = %d, want 3 (two holes + one vote)", got)
	}
	if got := st.TrialMargin(in); got != 1 {
		t.Fatalf("TrialMargin = %d, want 1 (holes carry no vote)", got)
	}
	// Filling the holes, duplicating a vote, and disagreeing:
	if err := st.LoadTrialVote(in, 0, pipeline.Fail, "t"); err != nil {
		t.Fatal(err)
	}
	if err := st.LoadTrialVote(in, 2, pipeline.Fail, "t"); err != nil {
		t.Fatalf("idempotent duplicate rejected: %v", err)
	}
	if err := st.LoadTrialVote(in, 2, pipeline.Succeed, "t"); err == nil {
		t.Fatal("disagreeing duplicate accepted")
	}
	if err := st.LoadTrialVote(in, 1, pipeline.Fail, "t"); err != nil {
		t.Fatal(err)
	}
	// All three failing votes now present: the policy resolves.
	if c := st.ClaimTrial(in); !c.Resolved || c.Outcome != pipeline.Fail {
		t.Fatalf("claim over replayed quorum = %+v", c)
	}
	// Claims resume at the replayed vote count, so a resumed session can
	// spend at most MaxTrials - replayed further trials.
	st2 := NewStore(s)
	st2.SetTrialPolicy(pipeline.FlakyPolicy{MinTrials: 1, MaxTrials: 4, Quorum: 4})
	if err := st2.LoadTrialVote(in, 0, pipeline.Fail, "t"); err != nil {
		t.Fatal(err)
	}
	if err := st2.LoadTrialVote(in, 1, pipeline.Succeed, "t"); err != nil {
		t.Fatal(err)
	}
	grants := 0
	for {
		c := st2.ClaimTrial(in)
		if !c.Granted {
			break
		}
		grants++
		if grants > 4 {
			break
		}
	}
	if grants != 2 {
		t.Fatalf("resumed session granted %d further trials, want 2 (4 max - 2 replayed)", grants)
	}
}

func TestTrialVotesAllSnapshots(t *testing.T) {
	s := testSpace(t)
	st := NewStoreSharded(s, 4)
	st.SetTrialPolicy(trialPolicy())
	want := map[uint64]int{}
	for a := 1; a <= 3; a++ {
		in := pipeline.MustInstance(s, pipeline.Ord(float64(a)), pipeline.Cat("x"))
		for k := 0; k < a; k++ {
			if _, err := st.AddTrial(in, pipeline.Fail, fmt.Sprintf("s%d", k)); err != nil {
				t.Fatal(err)
			}
		}
		want[in.Hash()] = a
	}
	all := st.TrialVotesAll()
	if len(all) != len(want) {
		t.Fatalf("TrialVotesAll returned %d ledgers, want %d", len(all), len(want))
	}
	for _, tr := range all {
		if want[tr.Instance.Hash()] != len(tr.Votes) {
			t.Fatalf("instance %v has %d votes, want %d", tr.Instance, len(tr.Votes), want[tr.Instance.Hash()])
		}
	}
}

func TestInconclusiveRecordJoinsNeitherBitset(t *testing.T) {
	s := testSpace(t)
	st := NewStore(s)
	inc := pipeline.MustInstance(s, pipeline.Ord(1), pipeline.Cat("x"))
	fl := pipeline.MustInstance(s, pipeline.Ord(2), pipeline.Cat("x"))
	ok := pipeline.MustInstance(s, pipeline.Ord(3), pipeline.Cat("x"))
	if err := st.Add(inc, pipeline.OutcomeInconclusive, "t"); err != nil {
		t.Fatalf("inconclusive record rejected: %v", err)
	}
	if err := st.Add(fl, pipeline.Fail, "t"); err != nil {
		t.Fatal(err)
	}
	if err := st.Add(ok, pipeline.Succeed, "t"); err != nil {
		t.Fatal(err)
	}
	if out, found := st.Lookup(inc); !found || out != pipeline.OutcomeInconclusive {
		t.Fatalf("Lookup(inconclusive) = %v, %v", out, found)
	}
	succ, fail := st.Outcomes()
	if succ != 1 || fail != 1 {
		t.Fatalf("Outcomes = %d, %d; inconclusive must count as neither", succ, fail)
	}
	if st.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (inconclusive is still memoized)", st.Len())
	}
}
