// Package provenance stores the execution history of a pipeline: which
// instances ran, in what order, and how each one evaluated. The BugDoc
// algorithms both read provenance (to find failing instances, disjoint
// successful instances, and counterexamples) and extend it as they execute
// new instances.
package provenance

import (
	"fmt"
	"sync"

	"repro/internal/pipeline"
	"repro/internal/predicate"
)

// Record is one provenance entry: an executed instance, its evaluation, the
// component that ran it, and its position in the log.
type Record struct {
	Seq      int
	Instance pipeline.Instance
	Outcome  pipeline.Outcome
	Source   string
}

// Store is an append-only, thread-safe provenance log over a single
// parameter space. Duplicate instances are rejected: the evaluation model
// is deterministic (Definition 2), so one record per instance suffices.
type Store struct {
	mu    sync.RWMutex
	space *pipeline.Space
	byKey map[string]int
	log   []Record
}

// NewStore creates an empty store for instances of space s.
func NewStore(s *pipeline.Space) *Store {
	return &Store{space: s, byKey: make(map[string]int)}
}

// Space returns the parameter space the store records instances of.
func (st *Store) Space() *pipeline.Space { return st.space }

// Add appends a record. It fails for instances of a different space, for
// unknown outcomes, and for instances already recorded (deterministic
// evaluation makes duplicates meaningless).
func (st *Store) Add(in pipeline.Instance, out pipeline.Outcome, source string) error {
	if in.Space() != st.space {
		return fmt.Errorf("provenance: instance belongs to a different space")
	}
	if out != pipeline.Succeed && out != pipeline.Fail {
		return fmt.Errorf("provenance: cannot record outcome %v", out)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	key := in.Key()
	if _, dup := st.byKey[key]; dup {
		return fmt.Errorf("provenance: instance %v already recorded", in)
	}
	st.byKey[key] = len(st.log)
	st.log = append(st.log, Record{Seq: len(st.log), Instance: in, Outcome: out, Source: source})
	return nil
}

// Lookup returns the recorded outcome for the instance, if any.
func (st *Store) Lookup(in pipeline.Instance) (pipeline.Outcome, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	i, ok := st.byKey[in.Key()]
	if !ok {
		return pipeline.OutcomeUnknown, false
	}
	return st.log[i].Outcome, true
}

// Len returns the number of records.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.log)
}

// Records returns a snapshot of the log in execution order.
func (st *Store) Records() []Record {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]Record, len(st.log))
	copy(out, st.log)
	return out
}

// Outcomes counts succeeding and failing records.
func (st *Store) Outcomes() (succeed, fail int) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	for _, r := range st.log {
		switch r.Outcome {
		case pipeline.Succeed:
			succeed++
		case pipeline.Fail:
			fail++
		}
	}
	return
}

// Failing returns the failing instances in execution order.
func (st *Store) Failing() []pipeline.Instance {
	return st.withOutcome(pipeline.Fail)
}

// Succeeding returns the succeeding instances in execution order.
func (st *Store) Succeeding() []pipeline.Instance {
	return st.withOutcome(pipeline.Succeed)
}

func (st *Store) withOutcome(want pipeline.Outcome) []pipeline.Instance {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var out []pipeline.Instance
	for _, r := range st.log {
		if r.Outcome == want {
			out = append(out, r.Instance)
		}
	}
	return out
}

// FirstFailing returns the earliest failing instance, the natural CP_f for
// the Shortcut algorithms.
func (st *Store) FirstFailing() (pipeline.Instance, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	for _, r := range st.log {
		if r.Outcome == pipeline.Fail {
			return r.Instance, true
		}
	}
	return pipeline.Instance{}, false
}

// DisjointSucceeding returns the succeeding instances disjoint from ref
// (Definition 6), in execution order.
func (st *Store) DisjointSucceeding(ref pipeline.Instance) []pipeline.Instance {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var out []pipeline.Instance
	for _, r := range st.log {
		if r.Outcome == pipeline.Succeed && r.Instance.DisjointFrom(ref) {
			out = append(out, r.Instance)
		}
	}
	return out
}

// MostDifferentSucceeding returns the succeeding instance differing from
// ref on the most parameters — the heuristic stand-in for a disjoint good
// instance when the Disjointness Condition does not hold.
func (st *Store) MostDifferentSucceeding(ref pipeline.Instance) (pipeline.Instance, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	best, bestDiff := pipeline.Instance{}, -1
	for _, r := range st.log {
		if r.Outcome != pipeline.Succeed {
			continue
		}
		if d := r.Instance.DiffCount(ref); d > bestDiff {
			best, bestDiff = r.Instance, d
		}
	}
	return best, bestDiff >= 0
}

// MutuallyDisjointSucceeding greedily selects up to k succeeding instances
// that are disjoint from ref and pairwise disjoint, in execution order
// (the CP_G set of the Stacked Shortcut algorithm). When fewer than k fully
// disjoint instances exist it pads, if allowed, with the most-different
// remaining succeeding instances, reflecting the paper's "mutually disjoint
// if possible".
func (st *Store) MutuallyDisjointSucceeding(ref pipeline.Instance, k int, pad bool) []pipeline.Instance {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var chosen []pipeline.Instance
	used := make(map[string]bool)
	for _, r := range st.log {
		if len(chosen) >= k {
			return chosen
		}
		if r.Outcome != pipeline.Succeed || !r.Instance.DisjointFrom(ref) {
			continue
		}
		ok := true
		for _, c := range chosen {
			if !r.Instance.DisjointFrom(c) {
				ok = false
				break
			}
		}
		if ok {
			chosen = append(chosen, r.Instance)
			used[r.Instance.Key()] = true
		}
	}
	if !pad {
		return chosen
	}
	// Pad with most-different succeeding instances not yet chosen.
	type cand struct {
		in   pipeline.Instance
		diff int
		seq  int
	}
	var cands []cand
	for _, r := range st.log {
		if r.Outcome != pipeline.Succeed || used[r.Instance.Key()] {
			continue
		}
		cands = append(cands, cand{r.Instance, r.Instance.DiffCount(ref), r.Seq})
	}
	for len(chosen) < k && len(cands) > 0 {
		best := 0
		for i := 1; i < len(cands); i++ {
			if cands[i].diff > cands[best].diff ||
				(cands[i].diff == cands[best].diff && cands[i].seq < cands[best].seq) {
				best = i
			}
		}
		chosen = append(chosen, cands[best].in)
		cands = append(cands[:best], cands[best+1:]...)
	}
	return chosen
}

// AnySucceedingSatisfying returns a succeeding instance whose parameter
// values satisfy the conjunction, if one exists — the Shortcut sanity check
// ("whether any superset of the hypothetical root cause is in an already
// executed successful execution").
func (st *Store) AnySucceedingSatisfying(c predicate.Conjunction) (pipeline.Instance, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	for _, r := range st.log {
		if r.Outcome == pipeline.Succeed && c.Satisfied(r.Instance) {
			return r.Instance, true
		}
	}
	return pipeline.Instance{}, false
}

// CountSatisfying counts recorded instances satisfying c, split by outcome.
func (st *Store) CountSatisfying(c predicate.Conjunction) (succeed, fail int) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	for _, r := range st.log {
		if !c.Satisfied(r.Instance) {
			continue
		}
		switch r.Outcome {
		case pipeline.Succeed:
			succeed++
		case pipeline.Fail:
			fail++
		}
	}
	return
}
