// Package provenance stores the execution history of a pipeline: which
// instances ran, in what order, and how each one evaluated. The BugDoc
// algorithms both read provenance (to find failing instances, disjoint
// successful instances, and counterexamples) and extend it as they execute
// new instances.
//
// The store is an append-only log with columnar indices maintained on Add:
// a hash map over the instances' interned code vectors (so Lookup is an
// allocation-free hash probe), per-outcome sequence lists and bitsets, and
// per-(parameter, value-code) posting bitsets. History queries
// (DisjointSucceeding, AnySucceedingSatisfying, CountSatisfying, ...) run
// as bitset intersections instead of whole-log scans, and Snapshot exposes
// a read-only view of the log for bulk consumers.
//
// Internally the store is sharded by instance-hash range (NewStoreSharded;
// NewStore builds a single shard, which behaves exactly like the historic
// unsharded store). Each shard owns a lock, a slice of the log, both
// identity tiers, and the outcome/posting indices, so concurrent writers
// touching different shards proceed in parallel — the only global write
// state is an atomic sequence counter and, when a sink is attached, a
// small ordering mutex that keeps sink appends in sequence order.
// Cross-shard queries merge per-shard results on the records' global
// sequence numbers, so query results are identical at every shard count.
//
// Identity is two-tiered, LSM-style: records added one by one live in each
// shard's hash map, while a checkpoint bulk-load (LoadSortedRun) splits
// its hash-sorted run at the shard boundaries (a binary search per
// boundary — shards are hash ranges) and adopts each sub-run wholesale,
// serving identity probes by binary search and deferring the outcome and
// posting indices to the first query that needs them — so resuming a huge
// session builds no per-record index at all. Either way the store behaves
// identically; the deferral is never observable.
//
// The store itself is volatile; durability is delegated to a pluggable
// Sink. A sink's Append runs inside Add, under the store's write-ordering
// lock and before the in-memory indices are updated, so a durable sink
// (the segmented write-ahead log in internal/provlog) gives write-ahead
// semantics: no record becomes queryable unless its log append succeeded,
// and rebuilding a store by replaying the log reproduces the indices
// exactly.
//
// Sinks that also implement StagedSink split the append into a staging
// phase (under the locks, cheap: frames are assembled into the sink's
// pending commit group) and a durability wait (outside every lock), so
// concurrent Adds overlap in the expensive part — the sink's write+fsync —
// instead of serializing it under a store lock. Records in flight are
// tracked until durable and committed to the indices strictly in sequence
// order; write-ahead semantics are preserved (a record is never queryable
// before it is durable). AddBatch amortizes further: one pass over the
// touched shards, one staged multi-record append, and one durability wait
// for a whole hypothesis set.
package provenance

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pipeline"
)

// Record is one provenance entry: an executed instance, its evaluation, the
// component that ran it, and its position in the log.
type Record struct {
	Seq      int
	Instance pipeline.Instance
	Outcome  pipeline.Outcome
	Source   string
}

// Sink receives every record at the moment it is committed to a store.
// Append is called with the store's write-ordering lock held, before the
// record enters the in-memory log and indices: if Append fails, the Add
// fails and the store is unchanged. Appends therefore arrive exactly in
// sequence order, without duplicates, and a sink that persists them
// (internal/provlog) is a write-ahead log of the store. Sinks that also
// implement StagedSink take the staged path instead: Append is bypassed in
// favor of Stage plus an out-of-lock durability wait.
type Sink interface {
	Append(Record) error
}

// StagedSink is an optional Sink extension for group durability. Stage is
// called under the store's write-ordering lock with a batch of records in
// sequence order; it must buffer them cheaply and return a wait function.
// The store releases its locks and then calls wait, which blocks until the
// staged records are durable (typically coalesced with concurrently staged
// records into one write and one fsync — see internal/provlog's
// group-commit). A non-nil error from wait means none of the staged records
// may be treated as durable; the store drops them without committing.
type StagedSink interface {
	Sink
	Stage(recs []Record) (wait func() error, err error)
}

// recordableOutcome reports whether an outcome may be committed as a
// record: the two evaluation results, plus OutcomeInconclusive for
// quorum ties under a FlakyPolicy. OutcomeUnknown never commits.
func recordableOutcome(o pipeline.Outcome) bool {
	return o == pipeline.Succeed || o == pipeline.Fail || o == pipeline.OutcomeInconclusive
}

// Entry is one record-to-be of AddBatch: an instance, its evaluation, and
// the component that ran it. Sequence numbers are assigned by the store.
type Entry struct {
	Instance pipeline.Instance
	Outcome  pipeline.Outcome
	Source   string
}

// stagedRec tracks one record between staging and commit. done is closed
// when the record leaves the staged set (committed or dropped), so a
// concurrent Add of the same instance can wait for the outcome instead of
// racing it.
type stagedRec struct {
	rec     Record
	done    chan struct{}
	durable bool
	failed  bool
}

// Store is an append-only, thread-safe provenance log over a single
// parameter space, sharded internally by instance-hash range. Duplicate
// instances are rejected: the evaluation model is deterministic
// (Definition 2), so one record per instance suffices.
//
// Global sequence numbers come from a single atomic counter; every other
// piece of write state is per shard, so the write path serializes only
// within a hash range (plus the sink ordering when one is attached).
// Cross-shard read queries merge per-shard results by sequence number.
// Once writers quiesce, every query returns exactly what a single-shard
// store would. WHILE multi-shard writes are in flight, Snapshot (and
// Records) observe a consistent dense prefix of the log — they truncate
// at the first not-yet-committed sequence — but the counting and
// enumerating queries lock shards one at a time and may transiently count
// a record whose lower-sequence sibling on another shard has not
// committed yet; callers needing a frontier-exact view under concurrent
// writes should query a Snapshot. The algorithm drivers never do
// mid-round reads, so they always see the quiescent (exact) behavior.
type Store struct {
	space  *pipeline.Space
	shards []shard
	shift  uint // shard s covers hashes [s << shift, (s+1) << shift); 64 when there is one shard

	// seq is the next global sequence number to assign: committed records
	// plus records in flight on the staged path. Assignment happens under
	// the owning shard's lock (volatile stores) or under wmu (stores with
	// a sink, whose append order must match sequence order).
	seq atomic.Int64

	// wmu orders the sink-facing write path: sequence assignment and sink
	// Append/Stage calls happen under it, so the sink observes records
	// exactly in sequence order — the WAL stream position is the implicit
	// sequence number. It is acquired after the shard locks, never before,
	// and is not taken at all on the sink-less fast path.
	// trialPolicy is the FlakyPolicy AddTrial/ClaimTrial resolve votes
	// under (see trials.go). The zero value — every deterministic
	// session — is disabled and never resolves.
	trialPolicy pipeline.FlakyPolicy

	wmu      sync.Mutex
	sink     Sink
	met      *Metrics    // nil when uninstrumented; see SetMetrics
	stageErr error       // set on staged-sink failure; poisons writes (reads stay valid)
	poisoned atomic.Bool // mirrors stageErr != nil for the lock-free fast path
	stageOne [1]Record   // single-record staging scratch, used under wmu

	// one is the inline backing array of the single-shard case: shards
	// aliases it, so the shard's lock and indices live in the Store's own
	// allocation — the memoization Lookup pays no extra pointer chase over
	// the historic unsharded layout. Sharded stores allocate instead.
	one [1]shard
}

// shardCount normalizes a requested shard count: at least one, rounded up
// to a power of two, clamped to MaxShards.
func shardCount(n int) int {
	k := 1
	for k < n && k < MaxShards {
		k <<= 1
	}
	return k
}

// NewStore creates an empty single-shard store for instances of space s —
// the historic unsharded store. Use NewStoreSharded when many workers
// write concurrently.
func NewStore(s *pipeline.Space) *Store {
	return NewStoreSharded(s, 1)
}

// NewStoreSharded creates an empty store for instances of space s, sharded
// into the given number of hash ranges (rounded up to a power of two,
// clamped to [1, MaxShards]). Sharding changes only contention: every
// query returns exactly what the single-shard store would.
func NewStoreSharded(s *pipeline.Space, shards int) *Store {
	return newStore(s, shards, 0)
}

// NewStoreWithCapacity creates an empty single-shard store pre-sized for
// about n records, so bulk loaders (log replay, codecs) skip the
// incremental growth of the log, the identity map, and the outcome
// indices.
func NewStoreWithCapacity(s *pipeline.Space, n int) *Store {
	return newStore(s, 1, n)
}

// NewStoreShardedWithCapacity combines NewStoreSharded and
// NewStoreWithCapacity: the capacity hint is split evenly across shards.
func NewStoreShardedWithCapacity(s *pipeline.Space, shards, n int) *Store {
	return newStore(s, shards, n)
}

func newStore(s *pipeline.Space, shards, n int) *Store {
	k := shardCount(shards)
	st := &Store{
		space: s,
		shift: uint(64 - bitsFor(k)),
	}
	if k == 1 {
		st.shards = st.one[:]
	} else {
		st.shards = make([]shard, k)
	}
	per := 0
	if n > 0 {
		per = n/k + 1
	}
	for i := range st.shards {
		sh := &st.shards[i]
		sh.posting = make([][]bitset, s.Len())
		if per > 0 {
			sh.recs = make([]Record, 0, per)
			sh.byKey = pipeline.NewInstanceMap[int32](per)
			sh.succSeqs = make([]int32, 0, per)
			sh.failSeqs = make([]int32, 0, per)
			sh.succBits = make(bitset, 0, per/64+1)
			sh.failBits = make(bitset, 0, per/64+1)
		} else {
			sh.byKey = pipeline.NewInstanceMap[int32](0)
		}
	}
	return st
}

// bitsFor returns log2 of a power-of-two shard count.
func bitsFor(k int) int {
	b := 0
	for 1<<b < k {
		b++
	}
	return b
}

// Space returns the parameter space the store records instances of.
func (st *Store) Space() *pipeline.Space { return st.space }

// Shards returns the store's shard count (a power of two; 1 for stores
// built by NewStore).
func (st *Store) Shards() int { return len(st.shards) }

// SetSink attaches a durability sink; every subsequent Add appends to it
// before committing to memory. Passing nil detaches the current sink.
// SetSink is not meant to race with Adds: attach the sink before handing
// the store to the executor. Detaching a sink does not lift a write poison
// left by a staged-sink failure — the burned sequence numbers make later
// writes uncommittable regardless of the sink.
func (st *Store) SetSink(sink Sink) {
	st.wmu.Lock()
	defer st.wmu.Unlock()
	st.sink = sink
}

// poisonLocked marks the store write-poisoned after a staged-sink failure:
// the failed records' sequence numbers are burned (later staged records may
// already hold higher ones), so no later record could ever commit at its
// assigned position. Reads and already-committed records stay valid. The
// caller holds wmu.
func (st *Store) poisonLocked(cause error) {
	if st.stageErr == nil {
		st.stageErr = fmt.Errorf("provenance: store write-poisoned by sink failure: %w", cause)
		st.poisoned.Store(true)
	}
}

// poisonErr returns the poison error, if any.
func (st *Store) poisonErr() error {
	st.wmu.Lock()
	defer st.wmu.Unlock()
	return st.stageErr
}

// Add appends a record and updates every index. It fails for instances of
// a different space, for unknown outcomes, for instances already recorded
// (deterministic evaluation makes duplicates meaningless), and — on every
// sink configuration, including none — for stores write-poisoned by an
// earlier staged-sink failure.
//
// With a StagedSink attached, the durability wait happens outside every
// lock, so concurrent Adds coalesce into the sink's commit groups instead
// of serializing one fsync each under a lock. Without a sink, Adds to
// different hash-range shards share nothing but one atomic increment.
func (st *Store) Add(in pipeline.Instance, out pipeline.Outcome, source string) error {
	if in.Space() != st.space {
		return fmt.Errorf("provenance: instance belongs to a different space")
	}
	if !recordableOutcome(out) {
		return fmt.Errorf("provenance: cannot record outcome %v", out)
	}
	sh := st.shardOf(in.Hash())
	sh.mu.Lock()
	if _, dup := sh.lookupPosLocked(in); dup {
		sh.mu.Unlock()
		return fmt.Errorf("provenance: instance %v already recorded", in)
	}
	if st.sink == nil {
		// Sink-less fast path: no global lock, just the sequence counter.
		if st.poisoned.Load() {
			sh.mu.Unlock()
			return st.poisonErr()
		}
		seq := int(st.seq.Add(1)) - 1
		st.commitLocked(sh, Record{Seq: seq, Instance: in, Outcome: out, Source: source})
		sh.mu.Unlock()
		return nil
	}
	ss, staged := st.sink.(StagedSink)
	if !staged {
		st.wmu.Lock()
		if err := st.stageErr; err != nil {
			st.wmu.Unlock()
			sh.mu.Unlock()
			return err
		}
		rec := Record{Seq: int(st.seq.Load()), Instance: in, Outcome: out, Source: source}
		// Write-ahead: the record must be durable before it is queryable.
		if err := st.sink.Append(rec); err != nil {
			st.wmu.Unlock()
			sh.mu.Unlock()
			return fmt.Errorf("provenance: sink: %w", err)
		}
		st.seq.Add(1)
		st.wmu.Unlock()
		st.commitLocked(sh, rec)
		sh.mu.Unlock()
		return nil
	}
	if e := sh.stagedLookupLocked(in); e != nil {
		// The same instance is in flight on another goroutine; wait for its
		// fate so the caller's follow-up Lookup sees the committed record.
		// (e's fields are settled before done closes, so the unlocked reads
		// below are safe.)
		done := e.done
		sh.mu.Unlock()
		<-done
		if e.failed {
			err := st.poisonErr()
			if err == nil {
				err = fmt.Errorf("provenance: concurrent write of %v failed", in)
			}
			return err
		}
		return fmt.Errorf("provenance: instance %v already recorded", in)
	}
	st.wmu.Lock()
	if err := st.stageErr; err != nil {
		st.wmu.Unlock()
		sh.mu.Unlock()
		return err
	}
	st.stageOne[0] = Record{Seq: int(st.seq.Load()), Instance: in, Outcome: out, Source: source}
	wait, err := ss.Stage(st.stageOne[:1])
	if err != nil {
		st.wmu.Unlock()
		sh.mu.Unlock()
		return fmt.Errorf("provenance: sink: %w", err)
	}
	e := &stagedRec{rec: st.stageOne[0], done: make(chan struct{})}
	st.seq.Add(1)
	st.wmu.Unlock()
	sh.stagePushLocked(e)
	sh.mu.Unlock()

	werr := wait()

	if werr != nil {
		st.wmu.Lock()
		st.poisonLocked(werr)
		st.wmu.Unlock()
	}
	sh.mu.Lock()
	if werr != nil {
		e.failed = true
	} else {
		e.durable = true
	}
	st.drainStagedLocked(sh)
	sh.mu.Unlock()
	if werr != nil {
		return fmt.Errorf("provenance: sink: %w", werr)
	}
	return nil
}

// AddBatch records a batch of evaluations with one pass over the touched
// shards and — when the sink supports staging — one multi-record sink
// append and one durability wait for the whole batch. Entries whose
// instance is already recorded (or duplicated within the batch, or in
// flight on another goroutine) are skipped, not errors: batch callers
// dedupe against memoized history up front, but races with concurrent
// evaluations of the same instance are benign and the earlier record is
// authoritative. An entry skipped as in flight counts on its winner:
// should the winner's commit window then fail, that record is lost — but
// every such failure write-poisons the store, so the session is already
// terminal and no later write can silently diverge. It returns how many
// entries were added.
//
// Sequence numbers are assigned to the surviving entries in input order.
// Validation errors (wrong space, unknown outcome) reject the whole batch
// before anything is staged, as does a store write-poisoned by an earlier
// staged-sink failure. A sink failure on the staged path commits nothing;
// on the plain-Sink path entries are appended one by one and a failure
// stops the batch, with the already-appended prefix committed — added
// reports exactly how many.
func (st *Store) AddBatch(entries []Entry) (added int, err error) {
	for i := range entries {
		if entries[i].Instance.Space() != st.space {
			return 0, fmt.Errorf("provenance: entry %d: instance belongs to a different space", i)
		}
		if o := entries[i].Outcome; !recordableOutcome(o) {
			return 0, fmt.Errorf("provenance: entry %d: cannot record outcome %v", i, o)
		}
	}
	// Single-shard volatile fast path: one lock, one pass, commits dedupe
	// the batch as they land — no grouping scaffolding. This is the
	// default store's hot batch path (BenchmarkStoreAddBatch) and keeps
	// its historic cost.
	if len(st.shards) == 1 && st.sink == nil {
		sh := &st.shards[0]
		sh.mu.Lock()
		defer sh.mu.Unlock()
		if st.poisoned.Load() {
			return 0, st.poisonErr()
		}
		for i := range entries {
			in := entries[i].Instance
			if _, dup := sh.lookupPosLocked(in); dup {
				continue
			}
			if sh.stagedLookupLocked(in) != nil {
				continue
			}
			st.commitLocked(sh, Record{
				Seq: int(st.seq.Add(1)) - 1, Instance: in,
				Outcome: entries[i].Outcome, Source: entries[i].Source,
			})
			added++
		}
		return added, nil
	}

	// Group entries by shard, preserving input order within each group,
	// and lock the touched shards in index order (the global lock order)
	// for the duplicate checks. The locks stay held until the entries are
	// committed or staged, so no concurrent writer can slip a duplicate in
	// between check and commit.
	groups := make([][]int, len(st.shards))
	for i := range entries {
		s := st.shardIndex(entries[i].Instance.Hash())
		groups[s] = append(groups[s], i)
	}
	touched := make([]int, 0, len(st.shards))
	for s := range groups {
		if len(groups[s]) > 0 {
			touched = append(touched, s)
		}
	}
	for _, s := range touched {
		st.shards[s].mu.Lock()
	}
	unlockAll := func() {
		for _, s := range touched {
			st.shards[s].mu.Unlock()
		}
	}

	seen := pipeline.NewInstanceMap[struct{}](len(entries))
	keep := make([]bool, len(entries))
	survivors := 0
	for _, s := range touched {
		sh := &st.shards[s]
		for _, i := range groups[s] {
			in := entries[i].Instance
			if _, dup := sh.lookupPosLocked(in); dup {
				continue
			}
			if sh.stagedLookupLocked(in) != nil {
				continue
			}
			if !seen.Put(in, struct{}{}) {
				continue
			}
			keep[i] = true
			survivors++
		}
	}

	if st.sink == nil {
		if st.poisoned.Load() {
			unlockAll()
			return 0, st.poisonErr()
		}
		if survivors == 0 {
			unlockAll()
			return 0, nil
		}
		// Assign sequences in input order, then commit shard by shard,
		// releasing each shard as its commits finish so concurrent batches
		// pipeline across the shards instead of serializing end to end.
		base := int(st.seq.Add(int64(survivors))) - survivors
		seqOf := make([]int, len(entries))
		n := base
		for i := range entries {
			if keep[i] {
				seqOf[i] = n
				n++
			}
		}
		for _, s := range touched {
			sh := &st.shards[s]
			for _, i := range groups[s] {
				if keep[i] {
					st.commitLocked(sh, Record{
						Seq: seqOf[i], Instance: entries[i].Instance,
						Outcome: entries[i].Outcome, Source: entries[i].Source,
					})
				}
			}
			sh.mu.Unlock()
		}
		return survivors, nil
	}

	ss, staged := st.sink.(StagedSink)
	if !staged {
		st.wmu.Lock()
		if err := st.stageErr; err != nil {
			st.wmu.Unlock()
			unlockAll()
			return 0, err
		}
		for i := range entries {
			if !keep[i] {
				continue
			}
			rec := Record{
				Seq: int(st.seq.Load()), Instance: entries[i].Instance,
				Outcome: entries[i].Outcome, Source: entries[i].Source,
			}
			if err := st.sink.Append(rec); err != nil {
				st.wmu.Unlock()
				unlockAll()
				return added, fmt.Errorf("provenance: sink: %w", err)
			}
			st.seq.Add(1)
			st.commitLocked(st.shardOf(rec.Instance.Hash()), rec)
			added++
		}
		st.wmu.Unlock()
		unlockAll()
		return added, nil
	}

	st.wmu.Lock()
	if err := st.stageErr; err != nil {
		st.wmu.Unlock()
		unlockAll()
		return 0, err
	}
	if survivors == 0 {
		st.wmu.Unlock()
		unlockAll()
		return 0, nil
	}
	recs := make([]Record, 0, survivors)
	base := int(st.seq.Load())
	for i := range entries {
		if !keep[i] {
			continue
		}
		recs = append(recs, Record{
			Seq: base + len(recs), Instance: entries[i].Instance,
			Outcome: entries[i].Outcome, Source: entries[i].Source,
		})
	}
	wait, err := ss.Stage(recs)
	if err != nil {
		st.wmu.Unlock()
		unlockAll()
		return 0, fmt.Errorf("provenance: sink: %w", err)
	}
	st.seq.Add(int64(survivors))
	esByShard := make([][]*stagedRec, len(st.shards))
	for _, rec := range recs {
		e := &stagedRec{rec: rec, done: make(chan struct{})}
		s := st.shardIndex(rec.Instance.Hash())
		st.shards[s].stagePushLocked(e)
		esByShard[s] = append(esByShard[s], e)
	}
	st.wmu.Unlock()
	unlockAll()

	werr := wait()

	if werr != nil {
		st.wmu.Lock()
		st.poisonLocked(werr)
		st.wmu.Unlock()
	}
	for _, s := range touched {
		sh := &st.shards[s]
		sh.mu.Lock()
		for _, e := range esByShard[s] {
			if werr != nil {
				e.failed = true
			} else {
				e.durable = true
			}
		}
		st.drainStagedLocked(sh)
		sh.mu.Unlock()
	}
	if werr != nil {
		return 0, fmt.Errorf("provenance: sink: %w", werr)
	}
	return len(recs), nil
}

// lockAll acquires every shard lock in index order (the global lock order)
// and returns the matching unlock.
func (st *Store) lockAll() (unlock func()) {
	for i := range st.shards {
		st.shards[i].mu.Lock()
	}
	return func() {
		for i := range st.shards {
			st.shards[i].mu.Unlock()
		}
	}
}

// loadValidateLocked shares the up-front checks of the two bulk loaders.
// The caller holds every shard lock.
func (st *Store) loadValidateLocked(recs []Record) error {
	if st.sink != nil {
		return fmt.Errorf("provenance: bulk load on a store with a sink attached")
	}
	if st.poisoned.Load() {
		return st.poisonErr()
	}
	for i := range st.shards {
		if len(st.shards[i].staged) > 0 {
			return fmt.Errorf("provenance: bulk load with staged writes in flight")
		}
	}
	base := int(st.seq.Load())
	for i := range recs {
		r := &recs[i]
		if r.Instance.Space() != st.space {
			return fmt.Errorf("provenance: record %d: instance belongs to a different space", i)
		}
		if !recordableOutcome(r.Outcome) {
			return fmt.Errorf("provenance: record %d: cannot record outcome %v", i, r.Outcome)
		}
		if r.Seq != base+i {
			return fmt.Errorf("provenance: record %d has sequence %d, want %d", i, r.Seq, base+i)
		}
	}
	return nil
}

// LoadRecords bulk-commits a batch of already-durable records into the
// store without touching the sink. The records must continue the log
// exactly: sequence numbers dense from Len() in slice order, instances of
// the store's space, no duplicates, known outcomes. Loading is equivalent
// to Add-ing the records in order (the indices come out identical), minus
// the sink staging.
//
// LoadRecords refuses stores with a sink attached (the records would
// silently skip durability) or with staged writes in flight. On error the
// store may be partially loaded and must be discarded; bulk loaders open a
// fresh store per attempt.
func (st *Store) LoadRecords(recs []Record) error {
	unlock := st.lockAll()
	defer unlock()
	if err := st.loadValidateLocked(recs); err != nil {
		return err
	}
	for i := range recs {
		sh := st.shardOf(recs[i].Instance.Hash())
		if _, dup := sh.lookupPosLocked(recs[i].Instance); dup {
			return fmt.Errorf("provenance: record %d: instance %v already recorded", i, recs[i].Instance)
		}
		st.commitLocked(sh, recs[i])
	}
	st.seq.Add(int64(len(recs)))
	return nil
}

// SortedRun is one hash-sorted checkpoint tier handed to LoadSortedRuns:
// Hashes ascending, and Seqs[i] the global sequence (log position) of the
// record hashing to Hashes[i] (ties in sequence order). The two columns
// are parallel and the store takes ownership of both.
type SortedRun struct {
	Hashes []uint64
	Seqs   []int32
}

// LoadSortedRun adopts one decoded checkpoint run as the store's base
// tier. It is LoadSortedRuns with a single tier; see there for the full
// contract.
func (st *Store) LoadSortedRun(recs []Record, hashes []uint64, seqs []int32) error {
	return st.LoadSortedRuns(recs, []SortedRun{{Hashes: hashes, Seqs: seqs}})
}

// LoadSortedRuns adopts a set of decoded checkpoint tiers as the store's
// base runs: recs in sequence order (dense from 0 — the store must be
// empty), plus one SortedRun per tier, newest tier first, whose sequence
// sets partition [0, len(recs)). Unlike LoadRecords, no hash index is
// built — identity probes binary-search each tier's sorted hash column,
// newest first, so the most recent tier wins a probe (recency dedup) —
// and the outcome and posting indices are deferred to the first query that
// needs them, so loading checkpoints of any size costs O(records)
// decode-adjacent work and the memoization path is ready immediately.
// Records added after the load go to the hash-map tier and index
// incrementally as usual; the deferred base build merges in front of them
// (base sequences all precede post-load ones, and bitsets are positional).
//
// On a sharded store every run splits at the shard boundaries — shards
// are hash ranges and the runs are hash-sorted, so each boundary is one
// binary search per tier — and every shard adopts its sub-runs
// independently and in parallel, re-sorted into one sequence-ordered
// record slice. Single-shard stores adopt the tiers' columns wholesale,
// copying nothing.
//
// The store takes ownership of every slice. The caller vouches that the
// hashes are the records' instance hashes (internal/provlog verifies them
// against the CRC-protected rows); sortedness and sequence coverage are
// verified here, and duplicate instances within a tier surface as a
// verification error since equal instances hash adjacently.
func (st *Store) LoadSortedRuns(recs []Record, runs []SortedRun) error {
	unlock := st.lockAll()
	defer unlock()
	if err := st.loadValidateLocked(recs); err != nil {
		return err
	}
	for i := range st.shards {
		if len(st.shards[i].recs) != 0 || len(st.shards[i].baseRuns) != 0 {
			return fmt.Errorf("provenance: LoadSortedRuns into a non-empty store")
		}
	}
	total := 0
	for _, run := range runs {
		total += len(run.Hashes)
	}
	if total != len(recs) {
		return fmt.Errorf("provenance: sorted runs hold %d rows for %d records", total, len(recs))
	}
	// Each run must be sorted and duplicate-free, and across runs the
	// sequence columns must cover every record exactly once.
	covered := make([]uint64, (len(recs)+63)/64)
	for ri, run := range runs {
		if len(run.Seqs) != len(run.Hashes) {
			return fmt.Errorf("provenance: sorted run %d has %d hashes and %d seqs", ri, len(run.Hashes), len(run.Seqs))
		}
		for i := range run.Hashes {
			if i > 0 && run.Hashes[i] < run.Hashes[i-1] {
				return fmt.Errorf("provenance: sorted run %d out of order at row %d", ri, i)
			}
			s := run.Seqs[i]
			if int(s) >= len(recs) || s < 0 {
				return fmt.Errorf("provenance: sorted run %d row %d names seq %d of %d", ri, i, s, len(recs))
			}
			if covered[s>>6]&(1<<(uint(s)&63)) != 0 {
				return fmt.Errorf("provenance: sorted runs name seq %d twice", s)
			}
			covered[s>>6] |= 1 << (uint(s) & 63)
			if i > 0 && run.Hashes[i] == run.Hashes[i-1] &&
				recs[run.Seqs[i]].Instance.Equal(recs[run.Seqs[i-1]].Instance) {
				return fmt.Errorf("provenance: sorted run %d holds instance %v twice", ri, recs[run.Seqs[i]].Instance)
			}
		}
	}
	if len(st.shards) == 1 {
		sh := &st.shards[0]
		sh.recs = recs
		sh.baseRuns = make([]baseRun, 0, len(runs))
		for _, run := range runs {
			if len(run.Hashes) == 0 {
				continue
			}
			// Local position equals global sequence on a single shard, so
			// the tier's seq column is the pos column, adopted as-is.
			sh.baseRuns = append(sh.baseRuns, baseRun{hash: run.Hashes, pos: run.Seqs})
		}
		sh.baseUnindexed = len(recs)
		sh.committed.Store(int64(len(recs)))
		st.seq.Store(int64(len(recs)))
		return nil
	}
	// Split every run at the hash-range boundaries (one binary search per
	// boundary per tier) and adopt each shard's sub-runs in parallel; the
	// shards' sequence sets are disjoint, so one scratch array serves every
	// adoption.
	k := len(st.shards)
	subs := make([][]subRun, k)
	for _, run := range runs {
		bounds := make([]int, k+1)
		for s := 1; s < k; s++ {
			limit := uint64(s) << st.shift
			hashes := run.Hashes
			bounds[s] = sort.Search(len(hashes), func(i int) bool { return hashes[i] >= limit })
		}
		bounds[k] = len(run.Hashes)
		for s := 0; s < k; s++ {
			subs[s] = append(subs[s], subRun{
				hashes: run.Hashes[bounds[s]:bounds[s+1]],
				seqs:   run.Seqs[bounds[s]:bounds[s+1]],
			})
		}
	}
	scratch := make([]int32, len(recs))
	var wg sync.WaitGroup
	for s := 0; s < k; s++ {
		n := 0
		for _, sub := range subs[s] {
			n += len(sub.seqs)
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(sh *shard, subs []subRun) {
			defer wg.Done()
			sh.adoptRuns(recs, subs, scratch)
		}(&st.shards[s], subs[s])
	}
	wg.Wait()
	st.seq.Store(int64(len(recs)))
	return nil
}

// ensureIndexed builds the deferred base-run indices on every shard that
// still has some. Every query that reads the outcome or posting indices
// calls it before taking the read locks.
func (st *Store) ensureIndexed() {
	for i := range st.shards {
		st.ensureShardIndexed(&st.shards[i])
	}
}

// ensureShardIndexed builds one shard's deferred base-run index. The build
// itself runs without the shard lock — the base prefix is immutable once
// adopted — serialized per shard by indexMu, and installs under a brief
// write lock (see buildBaseIndex). Concurrent callers past the first
// either wait on indexMu for the same build or see baseUnindexed already
// zero and return immediately.
func (st *Store) ensureShardIndexed(sh *shard) {
	sh.mu.RLock()
	n := sh.baseUnindexed
	var base []Record
	if n > 0 {
		base = sh.recs[:n:n]
	}
	sh.mu.RUnlock()
	if n == 0 {
		return
	}
	sh.indexMu.Lock()
	defer sh.indexMu.Unlock()
	sh.mu.RLock()
	pending := sh.baseUnindexed > 0
	sh.mu.RUnlock()
	if !pending {
		return
	}
	start := time.Time{}
	if st.met != nil {
		start = time.Now()
	}
	bi := st.buildBaseIndex(base)
	sh.mu.Lock()
	st.installBaseIndexLocked(sh, bi)
	sh.mu.Unlock()
	if st.met != nil {
		st.met.indexBuilt(time.Since(start))
	}
}

// Lookup returns the recorded outcome for the instance, if any. Hits
// perform no allocations: the probe routes to the instance's shard by its
// precomputed hash, through the shard's identity map (and, for
// checkpoint-loaded stores, a binary search of the sorted base run),
// followed by an integer code-vector compare.
//
//buglint:ignore crossspace read-only hash+Equal probe: a foreign instance can only miss (Equal compares spaces), and the guard's pointer load is measurable on the hottest path
//bugdoc:hotpath
func (st *Store) Lookup(in pipeline.Instance) (pipeline.Outcome, bool) {
	sh := st.shardOf(in.Hash())
	// Manual unlocks, not defer: the memoization hit is the hottest
	// operation in the system and the defer bookkeeping (plus the extra
	// argument spills it forces) is measurable there.
	sh.mu.RLock()
	// The map probe is open-coded ahead of the base-run fallback so the
	// common hit costs exactly what it did before the base tier existed.
	if i, ok := sh.byKey.Get(in); ok {
		out := sh.recs[i].Outcome
		sh.mu.RUnlock()
		return out, true
	}
	if len(sh.baseRuns) > 0 {
		if i, ok := sh.baseLookupLocked(in); ok {
			out := sh.recs[i].Outcome
			sh.mu.RUnlock()
			return out, true
		}
	}
	sh.mu.RUnlock()
	return pipeline.OutcomeUnknown, false
}

// Len returns the number of records.
func (st *Store) Len() int {
	n := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		n += len(sh.recs)
		sh.mu.RUnlock()
	}
	return n
}
