// Package provenance stores the execution history of a pipeline: which
// instances ran, in what order, and how each one evaluated. The BugDoc
// algorithms both read provenance (to find failing instances, disjoint
// successful instances, and counterexamples) and extend it as they execute
// new instances.
//
// The store is an append-only log with columnar indices maintained on Add:
// a hash map over the instances' interned code vectors (so Lookup is an
// allocation-free hash probe), per-outcome sequence lists and bitsets, and
// per-(parameter, value-code) posting bitsets. History queries
// (DisjointSucceeding, AnySucceedingSatisfying, CountSatisfying, ...) run
// as bitset intersections instead of whole-log scans, and Snapshot exposes
// a zero-copy read-only view of the log for bulk consumers.
//
// Identity is two-tiered, LSM-style: records added one by one live in the
// hash map, while a checkpoint bulk-load (LoadSortedRun) adopts its
// hash-sorted run wholesale and serves identity probes by binary search,
// deferring the outcome and posting indices to the first query that needs
// them — so resuming a huge session builds no per-record index at all.
// Either way the store behaves identically; the deferral is never
// observable.
//
// The store itself is volatile; durability is delegated to a pluggable
// Sink. A sink's Append runs inside Add, under the store's write lock and
// before the in-memory indices are updated, so a durable sink (the
// segmented write-ahead log in internal/provlog) gives write-ahead
// semantics: no record becomes queryable unless its log append succeeded,
// and rebuilding a store by replaying the log reproduces the indices
// exactly.
//
// Sinks that also implement StagedSink split the append into a staging
// phase (under the write lock, cheap: frames are assembled into the sink's
// pending commit group) and a durability wait (outside the lock), so
// concurrent Adds overlap in the expensive part — the sink's write+fsync —
// instead of serializing it under the store lock. Records in flight are
// tracked until durable and committed to the indices strictly in sequence
// order; write-ahead semantics are preserved (a record is never queryable
// before it is durable). AddBatch amortizes further: one lock acquisition,
// one staged multi-record append, and one durability wait for a whole
// hypothesis set.
package provenance

import (
	"fmt"
	"sync"

	"repro/internal/pipeline"
	"repro/internal/predicate"
)

// Record is one provenance entry: an executed instance, its evaluation, the
// component that ran it, and its position in the log.
type Record struct {
	Seq      int
	Instance pipeline.Instance
	Outcome  pipeline.Outcome
	Source   string
}

// Sink receives every record at the moment it is committed to a store.
// Append is called with the store's write lock held, before the record
// enters the in-memory log and indices: if Append fails, the Add fails and
// the store is unchanged. Appends therefore arrive exactly in sequence
// order, without duplicates, and a sink that persists them (internal/
// provlog) is a write-ahead log of the store. Sinks that also implement
// StagedSink take the staged path instead: Append is bypassed in favor of
// Stage plus an out-of-lock durability wait.
type Sink interface {
	Append(Record) error
}

// StagedSink is an optional Sink extension for group durability. Stage is
// called under the store's write lock with a batch of records in sequence
// order; it must buffer them cheaply and return a wait function. The store
// releases its write lock and then calls wait, which blocks until the
// staged records are durable (typically coalesced with concurrently staged
// records into one write and one fsync — see internal/provlog's
// group-commit). A non-nil error from wait means none of the staged records
// may be treated as durable; the store drops them without committing.
type StagedSink interface {
	Sink
	Stage(recs []Record) (wait func() error, err error)
}

// Entry is one record-to-be of AddBatch: an instance, its evaluation, and
// the component that ran it. Sequence numbers are assigned by the store.
type Entry struct {
	Instance pipeline.Instance
	Outcome  pipeline.Outcome
	Source   string
}

// stagedRec tracks one record between staging and commit. done is closed
// when the record leaves the staged set (committed or dropped), so a
// concurrent Add of the same instance can wait for the outcome instead of
// racing it.
type stagedRec struct {
	rec     Record
	done    chan struct{}
	durable bool
	failed  bool
}

// Store is an append-only, thread-safe provenance log over a single
// parameter space. Duplicate instances are rejected: the evaluation model
// is deterministic (Definition 2), so one record per instance suffices.
type Store struct {
	mu    sync.RWMutex
	space *pipeline.Space
	log   []Record
	sink  Sink

	// byKey maps instance identity to log position (hash-bucketed with
	// Equal confirmation; see pipeline.InstanceMap). Records adopted as a
	// base run (LoadSortedRun) are not in byKey: identity probes for them
	// binary-search the baseHash/baseSeq arrays instead, LSM-style, so a
	// checkpoint load never pays to build a hash index.
	byKey *pipeline.InstanceMap[int32]

	// The base run: a log prefix adopted from a sorted checkpoint.
	// baseHash is ascending; baseSeq[i] is the log position of the record
	// whose instance hashes to baseHash[i] (ties ordered by seq).
	// baseUnindexed is the length of the base prefix whose outcome and
	// posting indices have not been built yet: LoadSortedRun defers them,
	// and the first query that needs them triggers indexBaseLocked. The
	// memoization path (Lookup) never does — resuming a session stays
	// index-free until a history query actually runs.
	baseHash      []uint64
	baseSeq       []int32
	baseUnindexed int

	// Staged-commit state (StagedSink path): records whose sink append has
	// been staged but whose durability is still pending. nextSeq is the
	// next sequence to assign — len(log) plus the records in flight.
	// stagedByH buckets the in-flight records by instance hash for the
	// duplicate check; staged keeps them in sequence order for the drain.
	nextSeq   int
	staged    []*stagedRec
	stagedByH map[uint64][]*stagedRec
	stageOne  [1]Record // single-record staging scratch, used under mu
	stageErr  error     // set on staged-sink failure; poisons writes (reads stay valid)

	// Outcome partitions: sequence lists preserve execution order for
	// O(matches) enumeration; bitsets drive the boolean-algebra queries.
	succSeqs, failSeqs []int32
	succBits, failBits bitset

	// posting[i][c] holds the records whose parameter i has value-code c.
	posting [][]bitset
}

// NewStore creates an empty store for instances of space s.
func NewStore(s *pipeline.Space) *Store {
	return &Store{
		space:   s,
		byKey:   pipeline.NewInstanceMap[int32](0),
		posting: make([][]bitset, s.Len()),
	}
}

// NewStoreWithCapacity creates an empty store pre-sized for about n
// records, so bulk loaders (log replay, codecs) skip the incremental growth
// of the log, the identity map, and the outcome indices.
func NewStoreWithCapacity(s *pipeline.Space, n int) *Store {
	st := NewStore(s)
	if n > 0 {
		st.log = make([]Record, 0, n)
		st.byKey = pipeline.NewInstanceMap[int32](n)
		st.succSeqs = make([]int32, 0, n)
		st.failSeqs = make([]int32, 0, n)
		st.succBits = make(bitset, 0, n/64+1)
		st.failBits = make(bitset, 0, n/64+1)
	}
	return st
}

// Space returns the parameter space the store records instances of.
func (st *Store) Space() *pipeline.Space { return st.space }

// SetSink attaches a durability sink; every subsequent Add appends to it
// before committing to memory. Passing nil detaches the current sink.
// SetSink is not meant to race with Adds: attach the sink before handing
// the store to the executor.
func (st *Store) SetSink(sink Sink) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sink = sink
}

// Add appends a record and updates every index. It fails for instances of
// a different space, for unknown outcomes, and for instances already
// recorded (deterministic evaluation makes duplicates meaningless).
//
// With a StagedSink attached, the durability wait happens outside the
// store's write lock, so concurrent Adds coalesce into the sink's commit
// groups instead of serializing one fsync each under the lock.
func (st *Store) Add(in pipeline.Instance, out pipeline.Outcome, source string) error {
	if in.Space() != st.space {
		return fmt.Errorf("provenance: instance belongs to a different space")
	}
	if out != pipeline.Succeed && out != pipeline.Fail {
		return fmt.Errorf("provenance: cannot record outcome %v", out)
	}
	st.mu.Lock()
	if _, dup := st.lookupSeqLocked(in); dup {
		st.mu.Unlock()
		return fmt.Errorf("provenance: instance %v already recorded", in)
	}
	ss, ok := st.sink.(StagedSink)
	if !ok {
		defer st.mu.Unlock()
		rec := Record{Seq: st.nextSeq, Instance: in, Outcome: out, Source: source}
		if st.sink != nil {
			// Write-ahead: the record must be durable before it is queryable.
			if err := st.sink.Append(rec); err != nil {
				return fmt.Errorf("provenance: sink: %w", err)
			}
		}
		st.nextSeq++
		st.commitRecordLocked(rec)
		return nil
	}
	if st.stageErr != nil {
		err := st.stageErr
		st.mu.Unlock()
		return err
	}
	if e := st.stagedLookupLocked(in); e != nil {
		// The same instance is in flight on another goroutine; wait for its
		// fate so the caller's follow-up Lookup sees the committed record.
		// (e's fields are settled before done closes, so the unlocked reads
		// below are safe.)
		done := e.done
		st.mu.Unlock()
		<-done
		if e.failed {
			st.mu.Lock()
			err := st.stageErr
			st.mu.Unlock()
			if err == nil {
				err = fmt.Errorf("provenance: concurrent write of %v failed", in)
			}
			return err
		}
		return fmt.Errorf("provenance: instance %v already recorded", in)
	}
	st.stageOne[0] = Record{Seq: st.nextSeq, Instance: in, Outcome: out, Source: source}
	wait, err := ss.Stage(st.stageOne[:1])
	if err != nil {
		st.mu.Unlock()
		return fmt.Errorf("provenance: sink: %w", err)
	}
	e := &stagedRec{rec: st.stageOne[0], done: make(chan struct{})}
	st.nextSeq++
	st.stagePushLocked(e)
	st.mu.Unlock()

	werr := wait()

	st.mu.Lock()
	if werr != nil {
		e.failed = true
		st.poisonLocked(werr)
	} else {
		e.durable = true
	}
	st.drainStagedLocked()
	st.mu.Unlock()
	if werr != nil {
		return fmt.Errorf("provenance: sink: %w", werr)
	}
	return nil
}

// AddBatch records a batch of evaluations with one lock acquisition and —
// when the sink supports staging — one multi-record sink append and one
// durability wait for the whole batch. Entries whose instance is already
// recorded (or duplicated within the batch, or in flight on another
// goroutine) are skipped, not errors: batch callers dedupe against
// memoized history up front, but races with concurrent evaluations of the
// same instance are benign and the earlier record is authoritative. An
// entry skipped as in flight counts on its winner: should the winner's
// commit window then fail, that record is lost — but every such failure
// write-poisons the store, so the session is already terminal and no later
// write can silently diverge. It
// returns how many entries were added.
//
// Validation errors (wrong space, unknown outcome) reject the whole batch
// before anything is staged. A sink failure on the staged path commits
// nothing; on the plain-Sink path entries are appended one by one and a
// failure stops the batch, with the already-appended prefix committed —
// added reports exactly how many.
func (st *Store) AddBatch(entries []Entry) (added int, err error) {
	for i := range entries {
		if entries[i].Instance.Space() != st.space {
			return 0, fmt.Errorf("provenance: entry %d: instance belongs to a different space", i)
		}
		if o := entries[i].Outcome; o != pipeline.Succeed && o != pipeline.Fail {
			return 0, fmt.Errorf("provenance: entry %d: cannot record outcome %v", i, o)
		}
	}
	st.mu.Lock()
	ss, staged := st.sink.(StagedSink)
	if !staged {
		defer st.mu.Unlock()
		for i := range entries {
			in := entries[i].Instance
			if _, dup := st.lookupSeqLocked(in); dup {
				continue
			}
			rec := Record{Seq: st.nextSeq, Instance: in, Outcome: entries[i].Outcome, Source: entries[i].Source}
			if st.sink != nil {
				if err := st.sink.Append(rec); err != nil {
					return added, fmt.Errorf("provenance: sink: %w", err)
				}
			}
			st.nextSeq++
			st.commitRecordLocked(rec)
			added++
		}
		return added, nil
	}

	if st.stageErr != nil {
		err := st.stageErr
		st.mu.Unlock()
		return 0, err
	}
	recs := make([]Record, 0, len(entries))
	seen := pipeline.NewInstanceMap[struct{}](len(entries))
	for i := range entries {
		in := entries[i].Instance
		if _, dup := st.lookupSeqLocked(in); dup {
			continue
		}
		if st.stagedLookupLocked(in) != nil {
			continue
		}
		if !seen.Put(in, struct{}{}) {
			continue
		}
		recs = append(recs, Record{
			Seq: st.nextSeq + len(recs), Instance: in,
			Outcome: entries[i].Outcome, Source: entries[i].Source,
		})
	}
	if len(recs) == 0 {
		st.mu.Unlock()
		return 0, nil
	}
	wait, err := ss.Stage(recs)
	if err != nil {
		st.mu.Unlock()
		return 0, fmt.Errorf("provenance: sink: %w", err)
	}
	es := make([]*stagedRec, len(recs))
	for i, rec := range recs {
		es[i] = &stagedRec{rec: rec, done: make(chan struct{})}
		st.stagePushLocked(es[i])
	}
	st.nextSeq += len(recs)
	st.mu.Unlock()

	werr := wait()

	st.mu.Lock()
	if werr != nil {
		st.poisonLocked(werr)
	}
	for _, e := range es {
		if werr != nil {
			e.failed = true
		} else {
			e.durable = true
		}
	}
	st.drainStagedLocked()
	st.mu.Unlock()
	if werr != nil {
		return 0, fmt.Errorf("provenance: sink: %w", werr)
	}
	return len(recs), nil
}

// poisonLocked marks the store write-poisoned after a staged-sink failure:
// the failed records' sequence numbers are burned (later staged records may
// already hold higher ones), so no later record could ever commit at its
// assigned position. Reads and already-committed records stay valid.
func (st *Store) poisonLocked(cause error) {
	if st.stageErr == nil {
		st.stageErr = fmt.Errorf("provenance: store write-poisoned by sink failure: %w", cause)
	}
}

// commitRecordLocked appends a record to the log and updates every index.
// The caller holds the write lock and guarantees rec.Seq == len(st.log).
func (st *Store) commitRecordLocked(rec Record) {
	seq := rec.Seq
	st.byKey.Put(rec.Instance, int32(seq))
	st.log = append(st.log, rec)
	if rec.Outcome == pipeline.Succeed {
		st.succSeqs = append(st.succSeqs, int32(seq))
	} else {
		st.failSeqs = append(st.failSeqs, int32(seq))
	}
	st.indexRecordBitsLocked(&rec)
}

// indexRecordBitsLocked sets the positional indices — the outcome bitset
// and the per-(parameter, code) postings — for one record. It is the
// single home of the posting-growth rule; the ordered seq lists are
// maintained by the callers, which differ in where they append.
func (st *Store) indexRecordBitsLocked(r *Record) {
	seq := r.Seq
	if r.Outcome == pipeline.Succeed {
		st.succBits.set(seq)
	} else {
		st.failBits.set(seq)
	}
	for i := 0; i < st.space.Len(); i++ {
		c := int(r.Instance.Code(i))
		for len(st.posting[i]) <= c {
			st.posting[i] = append(st.posting[i], nil)
		}
		st.posting[i][c].set(seq)
	}
}

// stagedLookupLocked returns the in-flight staged record for in, if any.
func (st *Store) stagedLookupLocked(in pipeline.Instance) *stagedRec {
	for _, e := range st.stagedByH[in.Hash()] {
		if e.rec.Instance.Equal(in) {
			return e
		}
	}
	return nil
}

// stagePushLocked registers a staged record for the duplicate check and the
// sequence-ordered drain.
func (st *Store) stagePushLocked(e *stagedRec) {
	if st.stagedByH == nil {
		st.stagedByH = make(map[uint64][]*stagedRec)
	}
	st.staged = append(st.staged, e)
	h := e.rec.Instance.Hash()
	st.stagedByH[h] = append(st.stagedByH[h], e)
}

// drainStagedLocked commits the resolved prefix of the staged set. Records
// become durable strictly in sequence order (commit groups flush the
// pending buffer wholesale), but the goroutines observing the flush reach
// the lock in any order, so each marks its own records and drains whatever
// contiguous prefix has been resolved — later records wait for their
// predecessors' (already awake) goroutines. Failed records drop without
// committing; nothing behind a failure can be durable, because a group
// flush failure poisons the sink and every later wait fails too.
func (st *Store) drainStagedLocked() {
	for len(st.staged) > 0 {
		e := st.staged[0]
		if !e.durable && !e.failed {
			return
		}
		st.staged = st.staged[1:]
		h := e.rec.Instance.Hash()
		bucket := st.stagedByH[h]
		for i := range bucket {
			if bucket[i] == e {
				st.stagedByH[h] = append(bucket[:i], bucket[i+1:]...)
				break
			}
		}
		if len(st.stagedByH[h]) == 0 {
			delete(st.stagedByH, h)
		}
		if e.durable && e.rec.Seq == len(st.log) {
			st.commitRecordLocked(e.rec)
		}
		close(e.done)
	}
}

// loadValidateLocked shares the up-front checks of the two bulk loaders.
func (st *Store) loadValidateLocked(recs []Record) error {
	if st.sink != nil {
		return fmt.Errorf("provenance: bulk load on a store with a sink attached")
	}
	if len(st.staged) > 0 {
		return fmt.Errorf("provenance: bulk load with staged writes in flight")
	}
	base := len(st.log)
	for i := range recs {
		r := &recs[i]
		if r.Instance.Space() != st.space {
			return fmt.Errorf("provenance: record %d: instance belongs to a different space", i)
		}
		if r.Outcome != pipeline.Succeed && r.Outcome != pipeline.Fail {
			return fmt.Errorf("provenance: record %d: cannot record outcome %v", i, r.Outcome)
		}
		if r.Seq != base+i {
			return fmt.Errorf("provenance: record %d has sequence %d, want %d", i, r.Seq, base+i)
		}
	}
	return nil
}

// loadIndexLocked appends recs to the log (adopting the slice wholesale
// when the log is empty) and builds the outcome and posting indices.
// Identity indexing is left to the caller — the hash map for LoadRecords,
// the sorted base run for LoadSortedRun.
func (st *Store) loadIndexLocked(recs []Record) {
	if len(st.log) == 0 {
		st.log = recs
	} else {
		st.log = append(st.log, recs...)
	}
	if cap(st.succSeqs) == 0 {
		st.succSeqs = make([]int32, 0, len(recs))
		st.failSeqs = make([]int32, 0, len(recs))
	}
	for i := range recs {
		r := &recs[i]
		if r.Outcome == pipeline.Succeed {
			st.succSeqs = append(st.succSeqs, int32(r.Seq))
		} else {
			st.failSeqs = append(st.failSeqs, int32(r.Seq))
		}
		st.indexRecordBitsLocked(r)
		st.nextSeq++
	}
}

// LoadRecords bulk-commits a batch of already-durable records into the
// store under one lock acquisition, without touching the sink. The records
// must continue the log exactly: sequence numbers dense from Len() in
// slice order, instances of the store's space, no duplicates, known
// outcomes. Loading is equivalent to Add-ing the records in order (the
// indices come out identical), minus the per-record locking and sink
// staging. The store takes ownership of the slice when it is empty;
// callers must not modify it afterwards.
//
// LoadRecords refuses stores with a sink attached (the records would
// silently skip durability) or with staged writes in flight. On error the
// store may be partially loaded and must be discarded; bulk loaders open a
// fresh store per attempt.
func (st *Store) LoadRecords(recs []Record) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := st.loadValidateLocked(recs); err != nil {
		return err
	}
	for i := range recs {
		if !st.byKey.Put(recs[i].Instance, int32(recs[i].Seq)) {
			return fmt.Errorf("provenance: record %d: instance %v already recorded", i, recs[i].Instance)
		}
	}
	st.loadIndexLocked(recs)
	return nil
}

// LoadSortedRun adopts a decoded checkpoint run as the store's base tier:
// recs in sequence order (dense from 0 — the store must be empty), plus
// the run's hash ordering as two parallel arrays, hashes ascending and
// seqs[i] the log position of the record hashing to hashes[i] (ties in seq
// order). Unlike LoadRecords, no hash index is built — identity probes
// against the base run binary-search the sorted arrays — and the outcome
// and posting indices are deferred to the first query that needs them, so
// loading a checkpoint of any size costs O(records) decode-adjacent work
// and the memoization path is ready immediately. Records added after the
// load go to the hash-map tier and index incrementally as usual; the
// deferred base build merges in front of them (base sequences all precede
// post-load ones, and bitsets are positional).
//
// The store takes ownership of all three slices. The caller vouches that
// hashes are the records' instance hashes (internal/provlog verifies them
// against the CRC-protected rows); sortedness is verified here, and
// duplicate instances surface as a verification error since equal
// instances hash adjacently.
func (st *Store) LoadSortedRun(recs []Record, hashes []uint64, seqs []int32) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := st.loadValidateLocked(recs); err != nil {
		return err
	}
	if len(st.log) != 0 || len(st.baseHash) != 0 {
		return fmt.Errorf("provenance: LoadSortedRun into a non-empty store")
	}
	if len(hashes) != len(recs) || len(seqs) != len(recs) {
		return fmt.Errorf("provenance: sorted run has %d hashes and %d seqs for %d records",
			len(hashes), len(seqs), len(recs))
	}
	for i := range hashes {
		if i > 0 && hashes[i] < hashes[i-1] {
			return fmt.Errorf("provenance: sorted run out of order at row %d", i)
		}
		if int(seqs[i]) >= len(recs) {
			return fmt.Errorf("provenance: sorted run row %d names seq %d of %d", i, seqs[i], len(recs))
		}
		if i > 0 && hashes[i] == hashes[i-1] &&
			recs[seqs[i]].Instance.Equal(recs[seqs[i-1]].Instance) {
			return fmt.Errorf("provenance: sorted run holds instance %v twice", recs[seqs[i]].Instance)
		}
	}
	st.baseHash, st.baseSeq = hashes, seqs
	st.log = recs
	st.nextSeq = len(recs)
	st.baseUnindexed = len(recs)
	return nil
}

// ensureIndexed builds the deferred base-run indices if the store has any.
// Every query that reads the outcome or posting indices calls it before
// taking the read lock.
func (st *Store) ensureIndexed() {
	st.mu.RLock()
	n := st.baseUnindexed
	st.mu.RUnlock()
	if n == 0 {
		return
	}
	st.mu.Lock()
	st.indexBaseLocked()
	st.mu.Unlock()
}

// indexBaseLocked indexes the deferred base prefix: outcome sequence lists
// are built for it and prepended to whatever post-load records have
// already indexed (base sequences all precede them), and the positional
// bitsets — outcome and posting — are or-ed in place.
func (st *Store) indexBaseLocked() {
	n := st.baseUnindexed
	if n == 0 {
		return
	}
	st.baseUnindexed = 0
	baseSucc := make([]int32, 0, n)
	baseFail := make([]int32, 0, n)
	for seq := 0; seq < n; seq++ {
		r := &st.log[seq]
		if r.Outcome == pipeline.Succeed {
			baseSucc = append(baseSucc, int32(seq))
		} else {
			baseFail = append(baseFail, int32(seq))
		}
		st.indexRecordBitsLocked(r)
	}
	st.succSeqs = append(baseSucc, st.succSeqs...)
	st.failSeqs = append(baseFail, st.failSeqs...)
}

// lookupSeqLocked resolves an instance to its log position through both
// identity tiers: the hash map over incrementally added records, then a
// binary search of the base run adopted from a checkpoint.
func (st *Store) lookupSeqLocked(in pipeline.Instance) (int32, bool) {
	if i, ok := st.byKey.Get(in); ok {
		return i, true
	}
	return st.baseLookupLocked(in)
}

// baseLookupLocked probes the sorted base run. Kept out of the map-hit
// path: Lookup's memoization hit is the hottest operation in the system
// and pays only a length check for the base tier.
func (st *Store) baseLookupLocked(in pipeline.Instance) (int32, bool) {
	h := in.Hash()
	lo, hi := 0, len(st.baseHash)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if st.baseHash[mid] < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for ; lo < len(st.baseHash) && st.baseHash[lo] == h; lo++ {
		seq := st.baseSeq[lo]
		if st.log[seq].Instance.Equal(in) {
			return seq, true
		}
	}
	return 0, false
}

// Lookup returns the recorded outcome for the instance, if any. Hits
// perform no allocations: the probe is the instance's precomputed hash
// through the identity map (and, for checkpoint-loaded stores, a binary
// search of the sorted base run) followed by an integer code-vector
// compare.
func (st *Store) Lookup(in pipeline.Instance) (pipeline.Outcome, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	// The map probe is open-coded ahead of the base-run fallback so the
	// common hit costs exactly what it did before the base tier existed.
	if i, ok := st.byKey.Get(in); ok {
		return st.log[i].Outcome, true
	}
	if len(st.baseHash) > 0 {
		if i, ok := st.baseLookupLocked(in); ok {
			return st.log[i].Outcome, true
		}
	}
	return pipeline.OutcomeUnknown, false
}

// Len returns the number of records.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.log)
}

// Records returns a copy of the log in execution order. Bulk read-only
// consumers should prefer Snapshot, which does not copy.
func (st *Store) Records() []Record {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]Record, len(st.log))
	copy(out, st.log)
	return out
}

// Snapshot is a point-in-time, read-only view of a store's log. Because the
// log is append-only and records are immutable, a snapshot is just the log
// prefix at capture time — taking one copies nothing and later Adds never
// disturb it.
type Snapshot struct {
	recs []Record
}

// Snapshot captures the current log as a zero-copy read-only view.
func (st *Store) Snapshot() Snapshot {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return Snapshot{recs: st.log[:len(st.log):len(st.log)]}
}

// Len returns the number of records in the snapshot.
func (sn Snapshot) Len() int { return len(sn.recs) }

// At returns the i-th record in execution order.
func (sn Snapshot) At(i int) Record { return sn.recs[i] }

// Records returns the snapshot's records in execution order. The slice is
// shared with the store's log; callers must not modify it.
func (sn Snapshot) Records() []Record { return sn.recs }

// Outcomes counts succeeding and failing records.
func (st *Store) Outcomes() (succeed, fail int) {
	st.ensureIndexed()
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.succSeqs), len(st.failSeqs)
}

// Failing returns the failing instances in execution order.
func (st *Store) Failing() []pipeline.Instance {
	st.ensureIndexed()
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.bySeqsLocked(st.failSeqs)
}

// Succeeding returns the succeeding instances in execution order.
func (st *Store) Succeeding() []pipeline.Instance {
	st.ensureIndexed()
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.bySeqsLocked(st.succSeqs)
}

func (st *Store) bySeqsLocked(seqs []int32) []pipeline.Instance {
	if len(seqs) == 0 {
		return nil
	}
	out := make([]pipeline.Instance, len(seqs))
	for i, seq := range seqs {
		out[i] = st.log[seq].Instance
	}
	return out
}

// FirstFailing returns the earliest failing instance, the natural CP_f for
// the Shortcut algorithms.
func (st *Store) FirstFailing() (pipeline.Instance, bool) {
	st.ensureIndexed()
	st.mu.RLock()
	defer st.mu.RUnlock()
	if len(st.failSeqs) == 0 {
		return pipeline.Instance{}, false
	}
	return st.log[st.failSeqs[0]].Instance, true
}

// disjointSucceedingBitsLocked computes the succeeding records sharing no
// parameter value with ref: the succeeding bitset minus the union of ref's
// per-parameter posting lists.
func (st *Store) disjointSucceedingBitsLocked(ref pipeline.Instance) bitset {
	mask := st.succBits.clone()
	for i := 0; i < st.space.Len(); i++ {
		if c := int(ref.Code(i)); c < len(st.posting[i]) {
			mask.andNotWith(st.posting[i][c])
		}
	}
	return mask
}

// DisjointSucceeding returns the succeeding instances disjoint from ref
// (Definition 6), in execution order.
func (st *Store) DisjointSucceeding(ref pipeline.Instance) []pipeline.Instance {
	if ref.Space() != st.space {
		return nil // instances over different spaces are never disjoint
	}
	st.ensureIndexed()
	st.mu.RLock()
	defer st.mu.RUnlock()
	var out []pipeline.Instance
	st.disjointSucceedingBitsLocked(ref).forEach(func(seq int) bool {
		out = append(out, st.log[seq].Instance)
		return true
	})
	return out
}

// MostDifferentSucceeding returns the succeeding instance differing from
// ref on the most parameters — the heuristic stand-in for a disjoint good
// instance when the Disjointness Condition does not hold.
func (st *Store) MostDifferentSucceeding(ref pipeline.Instance) (pipeline.Instance, bool) {
	st.ensureIndexed()
	st.mu.RLock()
	defer st.mu.RUnlock()
	best, bestDiff := pipeline.Instance{}, -1
	for _, seq := range st.succSeqs {
		if d := st.log[seq].Instance.DiffCount(ref); d > bestDiff {
			best, bestDiff = st.log[seq].Instance, d
		}
	}
	return best, bestDiff >= 0
}

// MutuallyDisjointSucceeding greedily selects up to k succeeding instances
// that are disjoint from ref and pairwise disjoint, in execution order
// (the CP_G set of the Stacked Shortcut algorithm). When fewer than k fully
// disjoint instances exist it pads, if allowed, with the most-different
// remaining succeeding instances, reflecting the paper's "mutually disjoint
// if possible".
func (st *Store) MutuallyDisjointSucceeding(ref pipeline.Instance, k int, pad bool) []pipeline.Instance {
	st.ensureIndexed()
	st.mu.RLock()
	defer st.mu.RUnlock()
	var chosen []pipeline.Instance
	used := make(map[int32]bool)
	for _, seq := range st.succSeqs {
		if len(chosen) >= k {
			return chosen
		}
		in := st.log[seq].Instance
		if !in.DisjointFrom(ref) {
			continue
		}
		ok := true
		for _, c := range chosen {
			if !in.DisjointFrom(c) {
				ok = false
				break
			}
		}
		if ok {
			chosen = append(chosen, in)
			used[seq] = true
		}
	}
	if !pad {
		return chosen
	}
	// Pad with most-different succeeding instances not yet chosen.
	type cand struct {
		in   pipeline.Instance
		diff int
		seq  int32
	}
	var cands []cand
	for _, seq := range st.succSeqs {
		if used[seq] {
			continue
		}
		in := st.log[seq].Instance
		cands = append(cands, cand{in, in.DiffCount(ref), seq})
	}
	for len(chosen) < k && len(cands) > 0 {
		best := 0
		for i := 1; i < len(cands); i++ {
			if cands[i].diff > cands[best].diff ||
				(cands[i].diff == cands[best].diff && cands[i].seq < cands[best].seq) {
				best = i
			}
		}
		chosen = append(chosen, cands[best].in)
		cands = append(cands[:best], cands[best+1:]...)
	}
	return chosen
}

// tripleBitsLocked returns the records satisfying t as a bitset: the union
// of the posting lists of every interned value of t's parameter that
// satisfies the comparison. Only O(distinct values) Holds evaluations run,
// never O(records). ok=false means no record can satisfy t (unknown
// parameter), matching Triple.Satisfied on unknown parameters.
func (st *Store) tripleBitsLocked(t predicate.Triple) (bitset, bool) {
	i, ok := st.space.Index(t.Param)
	if !ok {
		return nil, false
	}
	var mask bitset
	for c, post := range st.posting[i] {
		if len(post) == 0 {
			continue
		}
		if t.Holds(st.space.InternedValue(i, uint32(c))) {
			mask.orWith(post)
		}
	}
	return mask, true
}

// conjunctionBitsLocked intersects the triple bitsets of c with base (an
// outcome bitset). The empty conjunction is satisfied by every record.
func (st *Store) conjunctionBitsLocked(c predicate.Conjunction, base bitset) bitset {
	mask := base.clone()
	for _, t := range c {
		tb, ok := st.tripleBitsLocked(t)
		if !ok {
			return nil
		}
		mask.andWith(tb)
	}
	return mask
}

// AnySucceedingSatisfying returns the earliest succeeding instance whose
// parameter values satisfy the conjunction, if one exists — the Shortcut
// sanity check ("whether any superset of the hypothetical root cause is in
// an already executed successful execution").
func (st *Store) AnySucceedingSatisfying(c predicate.Conjunction) (pipeline.Instance, bool) {
	st.ensureIndexed()
	st.mu.RLock()
	defer st.mu.RUnlock()
	if seq, ok := st.conjunctionBitsLocked(c, st.succBits).first(); ok {
		return st.log[seq].Instance, true
	}
	return pipeline.Instance{}, false
}

// CountSatisfying counts recorded instances satisfying c, split by outcome.
// The satisfying set is materialized once and intersected with each outcome
// bitset in place.
func (st *Store) CountSatisfying(c predicate.Conjunction) (succeed, fail int) {
	st.ensureIndexed()
	st.mu.RLock()
	defer st.mu.RUnlock()
	if len(c) == 0 {
		return len(st.succSeqs), len(st.failSeqs)
	}
	var mask bitset
	for j, t := range c {
		tb, ok := st.tripleBitsLocked(t)
		if !ok {
			return 0, 0
		}
		if j == 0 {
			mask = tb // tripleBitsLocked returns a fresh bitset; safe to own
		} else {
			mask.andWith(tb)
		}
	}
	return mask.andCount(st.succBits), mask.andCount(st.failBits)
}
