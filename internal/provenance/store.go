// Package provenance stores the execution history of a pipeline: which
// instances ran, in what order, and how each one evaluated. The BugDoc
// algorithms both read provenance (to find failing instances, disjoint
// successful instances, and counterexamples) and extend it as they execute
// new instances.
//
// The store is an append-only log with columnar indices maintained on Add:
// a hash map over the instances' interned code vectors (so Lookup is an
// allocation-free hash probe), per-outcome sequence lists and bitsets, and
// per-(parameter, value-code) posting bitsets. History queries
// (DisjointSucceeding, AnySucceedingSatisfying, CountSatisfying, ...) run
// as bitset intersections instead of whole-log scans, and Snapshot exposes
// a zero-copy read-only view of the log for bulk consumers.
//
// The store itself is volatile; durability is delegated to a pluggable
// Sink. A sink's Append runs inside Add, under the store's write lock and
// before the in-memory indices are updated, so a durable sink (the
// segmented write-ahead log in internal/provlog) gives write-ahead
// semantics: no record becomes queryable unless its log append succeeded,
// and rebuilding a store by replaying the log reproduces the indices
// exactly.
package provenance

import (
	"fmt"
	"sync"

	"repro/internal/pipeline"
	"repro/internal/predicate"
)

// Record is one provenance entry: an executed instance, its evaluation, the
// component that ran it, and its position in the log.
type Record struct {
	Seq      int
	Instance pipeline.Instance
	Outcome  pipeline.Outcome
	Source   string
}

// Sink receives every record at the moment it is committed to a store.
// Append is called with the store's write lock held, before the record
// enters the in-memory log and indices: if Append fails, the Add fails and
// the store is unchanged. Appends therefore arrive exactly in sequence
// order, without duplicates, and a sink that persists them (internal/
// provlog) is a write-ahead log of the store.
type Sink interface {
	Append(Record) error
}

// Store is an append-only, thread-safe provenance log over a single
// parameter space. Duplicate instances are rejected: the evaluation model
// is deterministic (Definition 2), so one record per instance suffices.
type Store struct {
	mu    sync.RWMutex
	space *pipeline.Space
	log   []Record
	sink  Sink

	// byKey maps instance identity to log position (hash-bucketed with
	// Equal confirmation; see pipeline.InstanceMap).
	byKey *pipeline.InstanceMap[int32]

	// Outcome partitions: sequence lists preserve execution order for
	// O(matches) enumeration; bitsets drive the boolean-algebra queries.
	succSeqs, failSeqs []int32
	succBits, failBits bitset

	// posting[i][c] holds the records whose parameter i has value-code c.
	posting [][]bitset
}

// NewStore creates an empty store for instances of space s.
func NewStore(s *pipeline.Space) *Store {
	return &Store{
		space:   s,
		byKey:   pipeline.NewInstanceMap[int32](0),
		posting: make([][]bitset, s.Len()),
	}
}

// NewStoreWithCapacity creates an empty store pre-sized for about n
// records, so bulk loaders (log replay, codecs) skip the incremental growth
// of the log, the identity map, and the outcome indices.
func NewStoreWithCapacity(s *pipeline.Space, n int) *Store {
	st := NewStore(s)
	if n > 0 {
		st.log = make([]Record, 0, n)
		st.byKey = pipeline.NewInstanceMap[int32](n)
		st.succSeqs = make([]int32, 0, n)
		st.failSeqs = make([]int32, 0, n)
		st.succBits = make(bitset, 0, n/64+1)
		st.failBits = make(bitset, 0, n/64+1)
	}
	return st
}

// Space returns the parameter space the store records instances of.
func (st *Store) Space() *pipeline.Space { return st.space }

// SetSink attaches a durability sink; every subsequent Add appends to it
// before committing to memory. Passing nil detaches the current sink.
// SetSink is not meant to race with Adds: attach the sink before handing
// the store to the executor.
func (st *Store) SetSink(sink Sink) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sink = sink
}

// Add appends a record and updates every index. It fails for instances of
// a different space, for unknown outcomes, and for instances already
// recorded (deterministic evaluation makes duplicates meaningless).
func (st *Store) Add(in pipeline.Instance, out pipeline.Outcome, source string) error {
	if in.Space() != st.space {
		return fmt.Errorf("provenance: instance belongs to a different space")
	}
	if out != pipeline.Succeed && out != pipeline.Fail {
		return fmt.Errorf("provenance: cannot record outcome %v", out)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, dup := st.byKey.Get(in); dup {
		return fmt.Errorf("provenance: instance %v already recorded", in)
	}
	seq := len(st.log)
	rec := Record{Seq: seq, Instance: in, Outcome: out, Source: source}
	if st.sink != nil {
		// Write-ahead: the record must be durable before it is queryable.
		if err := st.sink.Append(rec); err != nil {
			return fmt.Errorf("provenance: sink: %w", err)
		}
	}
	st.byKey.Put(in, int32(seq))
	st.log = append(st.log, rec)
	if out == pipeline.Succeed {
		st.succSeqs = append(st.succSeqs, int32(seq))
		st.succBits.set(seq)
	} else {
		st.failSeqs = append(st.failSeqs, int32(seq))
		st.failBits.set(seq)
	}
	for i := 0; i < st.space.Len(); i++ {
		c := int(in.Code(i))
		for len(st.posting[i]) <= c {
			st.posting[i] = append(st.posting[i], nil)
		}
		st.posting[i][c].set(seq)
	}
	return nil
}

// Lookup returns the recorded outcome for the instance, if any. Hits
// perform no allocations: the probe is the instance's precomputed hash
// followed by an integer code-vector compare.
func (st *Store) Lookup(in pipeline.Instance) (pipeline.Outcome, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if i, ok := st.byKey.Get(in); ok {
		return st.log[i].Outcome, true
	}
	return pipeline.OutcomeUnknown, false
}

// Len returns the number of records.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.log)
}

// Records returns a copy of the log in execution order. Bulk read-only
// consumers should prefer Snapshot, which does not copy.
func (st *Store) Records() []Record {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]Record, len(st.log))
	copy(out, st.log)
	return out
}

// Snapshot is a point-in-time, read-only view of a store's log. Because the
// log is append-only and records are immutable, a snapshot is just the log
// prefix at capture time — taking one copies nothing and later Adds never
// disturb it.
type Snapshot struct {
	recs []Record
}

// Snapshot captures the current log as a zero-copy read-only view.
func (st *Store) Snapshot() Snapshot {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return Snapshot{recs: st.log[:len(st.log):len(st.log)]}
}

// Len returns the number of records in the snapshot.
func (sn Snapshot) Len() int { return len(sn.recs) }

// At returns the i-th record in execution order.
func (sn Snapshot) At(i int) Record { return sn.recs[i] }

// Records returns the snapshot's records in execution order. The slice is
// shared with the store's log; callers must not modify it.
func (sn Snapshot) Records() []Record { return sn.recs }

// Outcomes counts succeeding and failing records.
func (st *Store) Outcomes() (succeed, fail int) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.succSeqs), len(st.failSeqs)
}

// Failing returns the failing instances in execution order.
func (st *Store) Failing() []pipeline.Instance {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.bySeqsLocked(st.failSeqs)
}

// Succeeding returns the succeeding instances in execution order.
func (st *Store) Succeeding() []pipeline.Instance {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.bySeqsLocked(st.succSeqs)
}

func (st *Store) bySeqsLocked(seqs []int32) []pipeline.Instance {
	if len(seqs) == 0 {
		return nil
	}
	out := make([]pipeline.Instance, len(seqs))
	for i, seq := range seqs {
		out[i] = st.log[seq].Instance
	}
	return out
}

// FirstFailing returns the earliest failing instance, the natural CP_f for
// the Shortcut algorithms.
func (st *Store) FirstFailing() (pipeline.Instance, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if len(st.failSeqs) == 0 {
		return pipeline.Instance{}, false
	}
	return st.log[st.failSeqs[0]].Instance, true
}

// disjointSucceedingBitsLocked computes the succeeding records sharing no
// parameter value with ref: the succeeding bitset minus the union of ref's
// per-parameter posting lists.
func (st *Store) disjointSucceedingBitsLocked(ref pipeline.Instance) bitset {
	mask := st.succBits.clone()
	for i := 0; i < st.space.Len(); i++ {
		if c := int(ref.Code(i)); c < len(st.posting[i]) {
			mask.andNotWith(st.posting[i][c])
		}
	}
	return mask
}

// DisjointSucceeding returns the succeeding instances disjoint from ref
// (Definition 6), in execution order.
func (st *Store) DisjointSucceeding(ref pipeline.Instance) []pipeline.Instance {
	if ref.Space() != st.space {
		return nil // instances over different spaces are never disjoint
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	var out []pipeline.Instance
	st.disjointSucceedingBitsLocked(ref).forEach(func(seq int) bool {
		out = append(out, st.log[seq].Instance)
		return true
	})
	return out
}

// MostDifferentSucceeding returns the succeeding instance differing from
// ref on the most parameters — the heuristic stand-in for a disjoint good
// instance when the Disjointness Condition does not hold.
func (st *Store) MostDifferentSucceeding(ref pipeline.Instance) (pipeline.Instance, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	best, bestDiff := pipeline.Instance{}, -1
	for _, seq := range st.succSeqs {
		if d := st.log[seq].Instance.DiffCount(ref); d > bestDiff {
			best, bestDiff = st.log[seq].Instance, d
		}
	}
	return best, bestDiff >= 0
}

// MutuallyDisjointSucceeding greedily selects up to k succeeding instances
// that are disjoint from ref and pairwise disjoint, in execution order
// (the CP_G set of the Stacked Shortcut algorithm). When fewer than k fully
// disjoint instances exist it pads, if allowed, with the most-different
// remaining succeeding instances, reflecting the paper's "mutually disjoint
// if possible".
func (st *Store) MutuallyDisjointSucceeding(ref pipeline.Instance, k int, pad bool) []pipeline.Instance {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var chosen []pipeline.Instance
	used := make(map[int32]bool)
	for _, seq := range st.succSeqs {
		if len(chosen) >= k {
			return chosen
		}
		in := st.log[seq].Instance
		if !in.DisjointFrom(ref) {
			continue
		}
		ok := true
		for _, c := range chosen {
			if !in.DisjointFrom(c) {
				ok = false
				break
			}
		}
		if ok {
			chosen = append(chosen, in)
			used[seq] = true
		}
	}
	if !pad {
		return chosen
	}
	// Pad with most-different succeeding instances not yet chosen.
	type cand struct {
		in   pipeline.Instance
		diff int
		seq  int32
	}
	var cands []cand
	for _, seq := range st.succSeqs {
		if used[seq] {
			continue
		}
		in := st.log[seq].Instance
		cands = append(cands, cand{in, in.DiffCount(ref), seq})
	}
	for len(chosen) < k && len(cands) > 0 {
		best := 0
		for i := 1; i < len(cands); i++ {
			if cands[i].diff > cands[best].diff ||
				(cands[i].diff == cands[best].diff && cands[i].seq < cands[best].seq) {
				best = i
			}
		}
		chosen = append(chosen, cands[best].in)
		cands = append(cands[:best], cands[best+1:]...)
	}
	return chosen
}

// tripleBitsLocked returns the records satisfying t as a bitset: the union
// of the posting lists of every interned value of t's parameter that
// satisfies the comparison. Only O(distinct values) Holds evaluations run,
// never O(records). ok=false means no record can satisfy t (unknown
// parameter), matching Triple.Satisfied on unknown parameters.
func (st *Store) tripleBitsLocked(t predicate.Triple) (bitset, bool) {
	i, ok := st.space.Index(t.Param)
	if !ok {
		return nil, false
	}
	var mask bitset
	for c, post := range st.posting[i] {
		if len(post) == 0 {
			continue
		}
		if t.Holds(st.space.InternedValue(i, uint32(c))) {
			mask.orWith(post)
		}
	}
	return mask, true
}

// conjunctionBitsLocked intersects the triple bitsets of c with base (an
// outcome bitset). The empty conjunction is satisfied by every record.
func (st *Store) conjunctionBitsLocked(c predicate.Conjunction, base bitset) bitset {
	mask := base.clone()
	for _, t := range c {
		tb, ok := st.tripleBitsLocked(t)
		if !ok {
			return nil
		}
		mask.andWith(tb)
	}
	return mask
}

// AnySucceedingSatisfying returns the earliest succeeding instance whose
// parameter values satisfy the conjunction, if one exists — the Shortcut
// sanity check ("whether any superset of the hypothetical root cause is in
// an already executed successful execution").
func (st *Store) AnySucceedingSatisfying(c predicate.Conjunction) (pipeline.Instance, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if seq, ok := st.conjunctionBitsLocked(c, st.succBits).first(); ok {
		return st.log[seq].Instance, true
	}
	return pipeline.Instance{}, false
}

// CountSatisfying counts recorded instances satisfying c, split by outcome.
// The satisfying set is materialized once and intersected with each outcome
// bitset in place.
func (st *Store) CountSatisfying(c predicate.Conjunction) (succeed, fail int) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if len(c) == 0 {
		return len(st.succSeqs), len(st.failSeqs)
	}
	var mask bitset
	for j, t := range c {
		tb, ok := st.tripleBitsLocked(t)
		if !ok {
			return 0, 0
		}
		if j == 0 {
			mask = tb // tripleBitsLocked returns a fresh bitset; safe to own
		} else {
			mask.andWith(tb)
		}
	}
	return mask.andCount(st.succBits), mask.andCount(st.failBits)
}
