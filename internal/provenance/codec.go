package provenance

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/pipeline"
)

// The CSV layout is one header row naming the parameters plus a trailing
// "outcome" column, then one row per record. Ordinal values serialize as
// bare numbers, categorical values as the raw label; the parameter kinds of
// the target space disambiguate on load.

// WriteCSV writes the store's records in execution order.
func (st *Store) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append(st.space.Names(), "outcome")
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("provenance: write header: %w", err)
	}
	for _, r := range st.Snapshot().Records() {
		row := make([]string, 0, st.space.Len()+1)
		for i := 0; i < st.space.Len(); i++ {
			row = append(row, encodeValue(r.Instance.Value(i)))
		}
		row = append(row, r.Outcome.String())
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("provenance: write row %d: %w", r.Seq, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV loads records into a fresh store over space s. The header must
// list exactly the space's parameters (any order) plus "outcome". Values
// must parse according to each parameter's kind; values outside the
// declared domains are added to the universe (Definition 1 allows
// expansion).
func ReadCSV(s *pipeline.Space, r io.Reader, source string) (*Store, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("provenance: read header: %w", err)
	}
	cols := make([]int, 0, len(header)) // CSV column -> parameter index; -1 for outcome
	outcomeCol := -1
	seen := make(map[string]bool)
	for ci, name := range header {
		if name == "outcome" {
			outcomeCol = ci
			cols = append(cols, -1)
			continue
		}
		pi, ok := s.Index(name)
		if !ok {
			return nil, fmt.Errorf("provenance: header column %q is not a parameter", name)
		}
		if seen[name] {
			return nil, fmt.Errorf("provenance: duplicate column %q", name)
		}
		seen[name] = true
		cols = append(cols, pi)
	}
	if outcomeCol < 0 {
		return nil, fmt.Errorf("provenance: missing outcome column")
	}
	if len(seen) != s.Len() {
		return nil, fmt.Errorf("provenance: header covers %d of %d parameters", len(seen), s.Len())
	}
	st := NewStore(s)
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			return st, nil
		}
		if err != nil {
			return nil, fmt.Errorf("provenance: line %d: %w", line, err)
		}
		vals := make([]pipeline.Value, s.Len())
		var out pipeline.Outcome
		for ci, cell := range row {
			pi := cols[ci]
			if pi < 0 {
				out, err = pipeline.ParseOutcome(cell)
				if err != nil {
					return nil, fmt.Errorf("provenance: line %d: %w", line, err)
				}
				continue
			}
			v, err := decodeValue(s.At(pi).Kind, cell)
			if err != nil {
				return nil, fmt.Errorf("provenance: line %d, column %q: %w", line, header[ci], err)
			}
			vals[pi] = v
		}
		in, err := pipeline.NewInstance(s, vals)
		if err != nil {
			return nil, fmt.Errorf("provenance: line %d: %w", line, err)
		}
		for i := 0; i < s.Len(); i++ {
			if s.DomainIndex(i, in.Value(i)) < 0 {
				if err := s.AddToDomain(s.At(i).Name, in.Value(i)); err != nil {
					return nil, fmt.Errorf("provenance: line %d: %w", line, err)
				}
			}
		}
		if err := st.Add(in, out, source); err != nil {
			return nil, fmt.Errorf("provenance: line %d: %w", line, err)
		}
	}
}

func encodeValue(v pipeline.Value) string {
	if v.Kind() == pipeline.Ordinal {
		return strconv.FormatFloat(v.Num(), 'g', -1, 64)
	}
	return v.Str()
}

func decodeValue(k pipeline.Kind, cell string) (pipeline.Value, error) {
	if k == pipeline.Categorical {
		return pipeline.Cat(cell), nil
	}
	x, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		return pipeline.Value{}, fmt.Errorf("ordinal value %q: %w", cell, err)
	}
	return pipeline.Ord(x), nil
}

// jsonRecord is the JSON wire form of one record.
type jsonRecord struct {
	Values  map[string]any `json:"values"`
	Outcome string         `json:"outcome"`
	Source  string         `json:"source,omitempty"`
}

// WriteJSON writes the records as a JSON array of {values, outcome, source}
// objects.
func (st *Store) WriteJSON(w io.Writer) error {
	recs := st.Snapshot().Records()
	out := make([]jsonRecord, len(recs))
	for i, r := range recs {
		vals := make(map[string]any, st.space.Len())
		for j := 0; j < st.space.Len(); j++ {
			v := r.Instance.Value(j)
			if v.Kind() == pipeline.Ordinal {
				vals[st.space.At(j).Name] = v.Num()
			} else {
				vals[st.space.At(j).Name] = v.Str()
			}
		}
		out[i] = jsonRecord{Values: vals, Outcome: r.Outcome.String(), Source: r.Source}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON loads a JSON array written by WriteJSON into a fresh store.
func ReadJSON(s *pipeline.Space, r io.Reader) (*Store, error) {
	var recs []jsonRecord
	if err := json.NewDecoder(r).Decode(&recs); err != nil {
		return nil, fmt.Errorf("provenance: decode JSON: %w", err)
	}
	st := NewStore(s)
	for i, jr := range recs {
		vals := make([]pipeline.Value, s.Len())
		for name, raw := range jr.Values {
			pi, ok := s.Index(name)
			if !ok {
				return nil, fmt.Errorf("provenance: record %d: unknown parameter %q", i, name)
			}
			switch x := raw.(type) {
			case float64:
				if s.At(pi).Kind != pipeline.Ordinal {
					return nil, fmt.Errorf("provenance: record %d: %q is categorical but holds a number", i, name)
				}
				vals[pi] = pipeline.Ord(x)
			case string:
				if s.At(pi).Kind != pipeline.Categorical {
					return nil, fmt.Errorf("provenance: record %d: %q is ordinal but holds a string", i, name)
				}
				vals[pi] = pipeline.Cat(x)
			default:
				return nil, fmt.Errorf("provenance: record %d: parameter %q has unsupported type %T", i, name, raw)
			}
		}
		in, err := pipeline.NewInstance(s, vals)
		if err != nil {
			return nil, fmt.Errorf("provenance: record %d: %w", i, err)
		}
		for j := 0; j < s.Len(); j++ {
			if s.DomainIndex(j, in.Value(j)) < 0 {
				if err := s.AddToDomain(s.At(j).Name, in.Value(j)); err != nil {
					return nil, fmt.Errorf("provenance: record %d: %w", i, err)
				}
			}
		}
		out, err := pipeline.ParseOutcome(jr.Outcome)
		if err != nil {
			return nil, fmt.Errorf("provenance: record %d: %w", i, err)
		}
		if err := st.Add(in, out, jr.Source); err != nil {
			return nil, fmt.Errorf("provenance: record %d: %w", i, err)
		}
	}
	return st, nil
}
