package provenance

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/predicate"
)

// This file differentially tests the sharded store against the
// single-shard baseline: the same history driven into both must make every
// query — records, outcomes, identity probes, postings, disjoint and
// satisfying sets — indistinguishable. Sharding is a contention
// optimization; any observable divergence is a bug.

// shardCounts is the sweep the differential tests run: a two-way split, a
// deeper one, and one with more shards than records (so some shards stay
// empty).
var shardCounts = []int{2, 8, 64}

// compareStores fails the test unless a and b agree on every query the
// store exposes, probing disjointness and predicate queries with the
// recorded instances and random conjunctions.
func compareStores(t *testing.T, r *rand.Rand, s *pipeline.Space, a, b *Store, ins []pipeline.Instance) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("Len: %d vs %d", a.Len(), b.Len())
	}
	ra, rb := a.Records(), b.Records()
	if len(ra) != len(rb) {
		t.Fatalf("Records: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].Seq != rb[i].Seq || ra[i].Outcome != rb[i].Outcome ||
			ra[i].Source != rb[i].Source || !ra[i].Instance.Equal(rb[i].Instance) {
			t.Fatalf("record %d: %+v vs %+v", i, ra[i], rb[i])
		}
		if ra[i].Seq != i {
			t.Fatalf("record %d has seq %d", i, ra[i].Seq)
		}
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	if sa.Len() != sb.Len() {
		t.Fatalf("Snapshot: %d vs %d", sa.Len(), sb.Len())
	}
	for i := 0; i < sa.Len(); i++ {
		if !sa.At(i).Instance.Equal(sb.At(i).Instance) {
			t.Fatalf("snapshot record %d diverges", i)
		}
	}
	asucc, afail := a.Outcomes()
	bsucc, bfail := b.Outcomes()
	if asucc != bsucc || afail != bfail {
		t.Fatalf("Outcomes: (%d,%d) vs (%d,%d)", asucc, afail, bsucc, bfail)
	}
	if !sameInstances(a.Failing(), b.Failing()) {
		t.Fatal("Failing diverges")
	}
	if !sameInstances(a.Succeeding(), b.Succeeding()) {
		t.Fatal("Succeeding diverges")
	}
	fa, oka := a.FirstFailing()
	fb, okb := b.FirstFailing()
	if oka != okb || (oka && !fa.Equal(fb)) {
		t.Fatalf("FirstFailing: (%v,%v) vs (%v,%v)", fa, oka, fb, okb)
	}
	for _, in := range ins {
		oa, ha := a.Lookup(in)
		ob, hb := b.Lookup(in)
		if oa != ob || ha != hb {
			t.Fatalf("Lookup(%v): (%v,%v) vs (%v,%v)", in, oa, ha, ob, hb)
		}
	}
	for probe := 0; probe < 12; probe++ {
		c := randomConjunction(r, s)
		as, af := a.CountSatisfying(c)
		bs, bf := b.CountSatisfying(c)
		if as != bs || af != bf {
			t.Fatalf("CountSatisfying(%v): (%d,%d) vs (%d,%d)", c, as, af, bs, bf)
		}
		ai, aok := a.AnySucceedingSatisfying(c)
		bi, bok := b.AnySucceedingSatisfying(c)
		if aok != bok || (aok && !ai.Equal(bi)) {
			t.Fatalf("AnySucceedingSatisfying(%v): (%v,%v) vs (%v,%v)", c, ai, aok, bi, bok)
		}
	}
	if len(ins) == 0 {
		return
	}
	for probe := 0; probe < 6; probe++ {
		ref := ins[r.Intn(len(ins))]
		if !sameInstances(a.DisjointSucceeding(ref), b.DisjointSucceeding(ref)) {
			t.Fatalf("DisjointSucceeding(%v) diverges", ref)
		}
		ma, oka := a.MostDifferentSucceeding(ref)
		mb, okb := b.MostDifferentSucceeding(ref)
		if oka != okb || (oka && !ma.Equal(mb)) {
			t.Fatalf("MostDifferentSucceeding(%v): (%v,%v) vs (%v,%v)", ref, ma, oka, mb, okb)
		}
		k := 1 + r.Intn(5)
		pad := r.Intn(2) == 0
		if !sameInstances(a.MutuallyDisjointSucceeding(ref, k, pad),
			b.MutuallyDisjointSucceeding(ref, k, pad)) {
			t.Fatalf("MutuallyDisjointSucceeding(%v, %d, %v) diverges", ref, k, pad)
		}
	}
}

// TestShardedMatchesUnshardedRandomHistories drives randomized histories —
// a mix of single Adds and AddBatches, with duplicates sprinkled in — into
// a single-shard store and sharded twins, then requires every query to
// agree.
func TestShardedMatchesUnshardedRandomHistories(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		s := randomProvenanceSpace(t, r)
		flat := NewStore(s)
		sharded := make([]*Store, len(shardCounts))
		for i, k := range shardCounts {
			sharded[i] = NewStoreSharded(s, k)
			if got := sharded[i].Shards(); got != k {
				t.Fatalf("Shards() = %d, want %d", got, k)
			}
		}
		var ins []pipeline.Instance
		steps := 3 + r.Intn(6)
		for step := 0; step < steps; step++ {
			if r.Intn(2) == 0 {
				// One batch of fresh draws; duplicates inside the batch and
				// against history are legal and skipped.
				n := 1 + r.Intn(12)
				entries := make([]Entry, n)
				for j := range entries {
					out := pipeline.Succeed
					if r.Intn(2) == 0 {
						out = pipeline.Fail
					}
					entries[j] = Entry{Instance: s.RandomInstance(r), Outcome: out, Source: fmt.Sprintf("s%d", step)}
				}
				want, err := flat.AddBatch(entries)
				if err != nil {
					t.Fatal(err)
				}
				for _, st := range sharded {
					got, err := st.AddBatch(entries)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Fatalf("trial %d: AddBatch added %d on %d shards, %d unsharded", trial, got, st.Shards(), want)
					}
				}
				for j := range entries {
					if _, ok := flat.Lookup(entries[j].Instance); ok {
						ins = append(ins, entries[j].Instance)
					}
				}
			} else {
				for draws := 1 + r.Intn(8); draws > 0; draws-- {
					in := s.RandomInstance(r)
					out := pipeline.Succeed
					if r.Intn(2) == 0 {
						out = pipeline.Fail
					}
					err := flat.Add(in, out, "add")
					for _, st := range sharded {
						err2 := st.Add(in, out, "add")
						if (err == nil) != (err2 == nil) {
							t.Fatalf("trial %d: Add(%v) = %v unsharded, %v on %d shards", trial, in, err, err2, st.Shards())
						}
					}
					if err == nil {
						ins = append(ins, in)
					}
				}
			}
		}
		for _, st := range sharded {
			compareStores(t, r, s, flat, st, ins)
		}
	}
}

// buildSortedRun renders a store's records as a hash-sorted checkpoint run
// — the same (hash, seq) ordering internal/provlog encodes — so the tests
// can exercise LoadSortedRun without a disk round trip.
func buildSortedRun(st *Store) (recs []Record, hashes []uint64, seqs []int32) {
	recs = st.Records()
	order := make([]int32, len(recs))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		ha, hb := recs[order[a]].Instance.Hash(), recs[order[b]].Instance.Hash()
		if ha != hb {
			return ha < hb
		}
		return order[a] < order[b]
	})
	hashes = make([]uint64, len(recs))
	for i, seq := range order {
		hashes[i] = recs[seq].Instance.Hash()
	}
	return recs, hashes, order
}

// TestLoadSortedRunSplitsAcrossShards adopts the same hash-sorted run into
// single-shard and sharded stores — the checkpoint-resume path, where a
// sharded store splits the run at its hash-range boundaries — and requires
// identity probes and the deferred-index queries to agree.
func TestLoadSortedRunSplitsAcrossShards(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for trial := 0; trial < 25; trial++ {
		s := randomProvenanceSpace(t, r)
		seedSt := NewStore(s)
		ins := fillRandomStore(t, r, s, seedSt, 10+r.Intn(60))
		if len(ins) == 0 {
			continue
		}
		recs, hashes, seqs := buildSortedRun(seedSt)
		load := func(shards int) *Store {
			st := NewStoreSharded(s, shards)
			rc := append([]Record(nil), recs...)
			hc := append([]uint64(nil), hashes...)
			sc := append([]int32(nil), seqs...)
			if err := st.LoadSortedRun(rc, hc, sc); err != nil {
				t.Fatalf("LoadSortedRun on %d shards: %v", shards, err)
			}
			return st
		}
		flat := load(1)
		for _, k := range shardCounts {
			st := load(k)
			// Probe identity before any query so the base tier serves the
			// lookups index-free, then let compareStores trigger the
			// deferred index build on both stores.
			for _, in := range ins {
				want, _ := seedSt.Lookup(in)
				got, ok := st.Lookup(in)
				if !ok || got != want {
					t.Fatalf("trial %d: base-tier Lookup on %d shards = (%v,%v), want %v", trial, k, got, ok, want)
				}
			}
			compareStores(t, r, s, flat, st, ins)
			// Post-load appends go to the hash-map tier in front of the
			// (possibly still deferred) base run; both stores must keep
			// agreeing.
			extra := fillRandomStore(t, r, s, flat, 5)
			for _, in := range extra {
				out, _ := flat.Lookup(in)
				if err := st.Add(in, out, "rand"); err != nil {
					t.Fatal(err)
				}
			}
			compareStores(t, r, s, flat, st, append(ins, extra...))
			flat = load(1) // fresh baseline for the next shard count
		}
	}
}

// TestShardedConcurrentAdds hammers a sharded store from parallel writers
// and checks the committed log is exactly the union of their disjoint
// inputs with dense sequences — no lost records, no duplicates, no gaps.
func TestShardedConcurrentAdds(t *testing.T) {
	s := pipeline.MustSpace(
		pipeline.Parameter{Name: "a", Kind: pipeline.Ordinal, Domain: ordDomain(0, 1, 2, 3, 4, 5, 6, 7)},
		pipeline.Parameter{Name: "b", Kind: pipeline.Ordinal, Domain: ordDomain(0, 1, 2, 3, 4, 5, 6, 7)},
		pipeline.Parameter{Name: "c", Kind: pipeline.Ordinal, Domain: ordDomain(0, 1, 2, 3)},
	)
	const workers, per = 8, 32
	st := NewStoreSharded(s, 8)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				x := w*per + k
				in := pipeline.MustInstance(s,
					pipeline.Ord(float64(x%8)), pipeline.Ord(float64((x/8)%8)), pipeline.Ord(float64(x/64)))
				out := pipeline.Succeed
				if x%3 == 0 {
					out = pipeline.Fail
				}
				if err := st.Add(in, out, "w"); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if st.Len() != workers*per {
		t.Fatalf("Len = %d, want %d", st.Len(), workers*per)
	}
	recs := st.Records()
	if len(recs) != workers*per {
		t.Fatalf("Records = %d, want %d", len(recs), workers*per)
	}
	for i, r := range recs {
		if r.Seq != i {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}
	succ, fail := st.Outcomes()
	if succ+fail != workers*per {
		t.Fatalf("Outcomes = %d+%d, want %d", succ, fail, workers*per)
	}
}

// TestShardedConcurrentAddBatches drives concurrent batches (overlapping
// instance sets, so the in-flight duplicate skip is exercised) and checks
// the store ends dense and complete.
func TestShardedConcurrentAddBatches(t *testing.T) {
	s := pipeline.MustSpace(
		pipeline.Parameter{Name: "a", Kind: pipeline.Ordinal, Domain: ordDomain(0, 1, 2, 3, 4, 5, 6, 7)},
		pipeline.Parameter{Name: "b", Kind: pipeline.Ordinal, Domain: ordDomain(0, 1, 2, 3, 4, 5, 6, 7)},
	)
	const workers = 6
	st := NewStoreSharded(s, 4)
	all := make([]Entry, 64)
	for x := range all {
		out := pipeline.Succeed
		if x%3 == 0 {
			out = pipeline.Fail
		}
		all[x] = Entry{
			Instance: pipeline.MustInstance(s, pipeline.Ord(float64(x%8)), pipeline.Ord(float64(x/8))),
			Outcome:  out, Source: "b",
		}
	}
	var wg sync.WaitGroup
	total := 0
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker submits an overlapping window of the shared set.
			lo := (w * 8) % len(all)
			batch := append([]Entry(nil), all[lo:]...)
			added, err := st.AddBatch(batch)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			total += added
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	// The windows cover the whole set (worker 0 submits everything), each
	// instance commits exactly once across all batches, and the in-flight
	// duplicate skip keeps added counts complementary.
	if total != len(all) {
		t.Fatalf("workers added %d records in total, want %d", total, len(all))
	}
	recs := st.Records()
	for i, r := range recs {
		if r.Seq != i {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}
	if st.Len() != len(recs) || len(recs) != len(all) {
		t.Fatalf("Len = %d, Records = %d, want %d", st.Len(), len(recs), len(all))
	}
	for _, e := range all {
		out, ok := st.Lookup(e.Instance)
		if !ok || out != e.Outcome {
			t.Fatalf("Lookup(%v) = (%v,%v), want %v", e.Instance, out, ok, e.Outcome)
		}
	}
}

// TestEnsureIndexedRacesLookups is the -race stress for the
// checkpoint-resume fast path: a store freshly loaded from a sorted run
// serves concurrent identity Lookups while the first history queries
// trigger the deferred base-index build. Run with -race this pins down the
// ensureIndexed double-checked locking.
func TestEnsureIndexedRacesLookups(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	for _, shards := range []int{1, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			s := randomProvenanceSpace(t, r)
			seedSt := NewStore(s)
			ins := fillRandomStore(t, r, s, seedSt, 64)
			if len(ins) == 0 {
				t.Skip("space too small to seed")
			}
			recs, hashes, seqs := buildSortedRun(seedSt)
			st := NewStoreSharded(s, shards)
			if err := st.LoadSortedRun(recs, hashes, seqs); err != nil {
				t.Fatal(err)
			}
			start := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					<-start
					for rounds := 0; rounds < 200; rounds++ {
						in := ins[(w*131+rounds)%len(ins)]
						if _, ok := st.Lookup(in); !ok {
							t.Errorf("lookup missed a loaded instance")
							return
						}
					}
				}(w)
			}
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					<-start
					// First queries: these race the deferred index build.
					succ, fail := st.Outcomes()
					if succ+fail != len(recs) {
						t.Errorf("Outcomes = %d+%d, want %d", succ, fail, len(recs))
					}
					st.CountSatisfying(predicate.Conjunction{})
					st.DisjointSucceeding(ins[0])
					if _, ok := st.FirstFailing(); ok {
						st.Failing()
					}
				}()
			}
			close(start)
			wg.Wait()
		})
	}
}
