package provenance

import (
	"sort"
	"time"

	"repro/internal/pipeline"
	"repro/internal/predicate"
)

// This file holds the lock-free read path. A shardEpoch is an immutable
// snapshot of one shard's indices, published through an atomic pointer;
// an Epoch stitches the per-shard snapshots into a consistent view of the
// committed log prefix — its horizon — and answers every bitset-algebra
// query of query.go against that prefix without taking a single lock.
// Writers race ahead unhindered: they only ever bump a per-shard atomic
// counter that marks the published epoch stale, and the next Epoch call
// refreshes it (one refresher per shard at a time; concurrent callers
// serve the stale-but-consistent published snapshot instead of waiting).

// shardEpoch is one shard's immutable index snapshot: the record prefix it
// covers, the outcome position lists and bitsets, and the posting bitsets,
// all frozen at a single point under the shard's read lock. recs and the
// position lists alias the shard's append-only slices (records already
// captured never move); the bitsets are copies, since the shard mutates
// its own in place.
type shardEpoch struct {
	n                  int      // records covered: positions [0, n)
	recs               []Record // shard-local log prefix, ascending global sequence
	succSeqs, failSeqs []int32
	succBits, failBits bitset
	posting            [][]bitset
}

// epochOf returns a shard index snapshot covering every record committed
// at some instant at or after the call began. The fast path is two atomic
// loads: if the published epoch still covers the shard's committed count,
// it is served as-is. A stale epoch is refreshed by whoever wins the
// shard's single-flight mutex; losers serve the published epoch (a
// consistent, slightly older horizon) rather than block — except on the
// very first call, when nothing is published yet and everyone waits. i is
// the shard's index, a telemetry stripe hint for the staleness histogram.
//
//bugdoc:hotpath
func (st *Store) epochOf(i int, sh *shard) *shardEpoch {
	ep := sh.epoch.Load()
	if ep != nil && int64(ep.n) >= sh.committed.Load() {
		st.met.epochServed(i, 0)
		return ep
	}
	if !sh.epochMu.TryLock() {
		if ep != nil {
			st.met.epochServed(i, sh.committed.Load()-int64(ep.n))
			return ep
		}
		sh.epochMu.Lock() // first epoch: nothing published, wait for the builder
	}
	defer sh.epochMu.Unlock()
	if ep = sh.epoch.Load(); ep != nil && int64(ep.n) >= sh.committed.Load() {
		st.met.epochServed(i, 0)
		return ep
	}
	start := time.Time{}
	if st.met != nil {
		start = time.Now()
	}
	ne := st.buildShardEpoch(sh, ep)
	sh.epoch.Store(ne)
	if st.met != nil {
		prev := 0
		if ep != nil {
			prev = ep.n
		}
		st.met.epochServed(i, 0)
		st.met.epochRefreshed(i, prev, ne.n, time.Since(start))
	}
	return ne
}

// buildShardEpoch snapshots the shard's indices. With a previous epoch to
// extend, the bitsets are cloned from it off-lock and only the records
// committed since are indexed under the read lock — O(delta) lock-held
// work, so refreshes against a hot writer stay cheap. The first epoch
// clones the live indices wholesale (the deferred base index, if any, is
// built first, so the clone sees a fully indexed shard). epochMu is held.
func (st *Store) buildShardEpoch(sh *shard, prev *shardEpoch) *shardEpoch {
	st.ensureShardIndexed(sh)
	p := st.space.Len()
	ne := &shardEpoch{posting: make([][]bitset, p)}
	if prev != nil {
		ne.succBits = prev.succBits.clone()
		ne.failBits = prev.failBits.clone()
		for i := 0; i < p; i++ {
			pi := make([]bitset, len(prev.posting[i]))
			for c, b := range prev.posting[i] {
				if len(b) > 0 {
					pi[c] = b.clone()
				}
			}
			ne.posting[i] = pi
		}
	}
	sh.mu.RLock()
	n := len(sh.recs)
	ne.n = n
	ne.recs = sh.recs[:n:n]
	ne.succSeqs = sh.succSeqs[:len(sh.succSeqs):len(sh.succSeqs)]
	ne.failSeqs = sh.failSeqs[:len(sh.failSeqs):len(sh.failSeqs)]
	if prev == nil {
		ne.succBits = sh.succBits.clone()
		ne.failBits = sh.failBits.clone()
		for i := 0; i < p; i++ {
			pi := make([]bitset, len(sh.posting[i]))
			for c, b := range sh.posting[i] {
				if len(b) > 0 {
					pi[c] = b.clone()
				}
			}
			ne.posting[i] = pi
		}
		sh.mu.RUnlock()
		return ne
	}
	for pos := prev.n; pos < n; pos++ {
		r := &ne.recs[pos]
		switch r.Outcome {
		case pipeline.Succeed:
			ne.succBits.set(pos)
		case pipeline.Fail:
			ne.failBits.set(pos)
		}
		for i := 0; i < p; i++ {
			c := int(r.Instance.Code(i))
			for len(ne.posting[i]) <= c {
				ne.posting[i] = append(ne.posting[i], nil)
			}
			ne.posting[i][c].set(pos)
		}
	}
	sh.mu.RUnlock()
	return ne
}

// Epoch is a lock-free, immutable view of the store's committed history at
// a consistent horizon: every record with global sequence below Horizon()
// is visible, nothing else is. Capturing one costs two atomic loads per
// shard when the published per-shard snapshots are current; queries then
// run entirely against immutable data — no shard lock, no reference
// counting — so any number of readers proceed in parallel with each other
// and with writers. Query semantics mirror the Store methods of the same
// names, evaluated over the horizon prefix: on a quiescent store an Epoch
// answers exactly what the Store does.
//
// The horizon is the longest dense committed prefix across the shards at
// capture time: a record whose lower-sequence sibling on another shard had
// not yet committed is excluded, so — unlike the Store's counting queries
// under concurrent multi-shard writes — an Epoch never observes a gapped
// history. Query-heavy drivers (decision-tree growth, divide-and-query
// narrowing) capture one Epoch per round and issue every probe against it.
type Epoch struct {
	st      *Store
	shards  []*shardEpoch
	cuts    []int // per shard, how many of its records fall below the horizon
	horizon int
}

// Epoch captures a lock-free snapshot of the committed history (see type
// Epoch). Concurrent captures are cheap and independent; each sees every
// record committed before its own call began, possibly more.
func (st *Store) Epoch() *Epoch {
	k := len(st.shards)
	e := &Epoch{st: st, shards: make([]*shardEpoch, k), cuts: make([]int, k)}
	for i := range st.shards {
		e.shards[i] = st.epochOf(i, &st.shards[i])
	}
	if k == 1 {
		// One shard commits in global sequence order: the whole snapshot is
		// dense by construction.
		e.horizon = e.shards[0].n
		e.cuts[0] = e.shards[0].n
		return e
	}
	// The horizon is the largest H with exactly H records below sequence H
	// across the captured snapshots — the dense committed prefix. Sequences
	// are unique, so countBelow(H) <= H everywhere and the fixpoint
	// iteration from the total converges to the largest such H; each round
	// is one binary search per shard (records sit in sequence order).
	total := 0
	for _, ep := range e.shards {
		total += ep.n
	}
	h := total
	for {
		c := 0
		for i, ep := range e.shards {
			e.cuts[i] = sort.Search(ep.n, func(j int) bool { return ep.recs[j].Seq >= h })
			c += e.cuts[i]
		}
		if c == h {
			break
		}
		h = c
	}
	e.horizon = h
	return e
}

// Horizon returns the epoch's sequence horizon: records with global
// sequence in [0, Horizon()) are visible, later ones are not.
func (e *Epoch) Horizon() int { return e.horizon }

// Len returns the number of records the epoch covers (equal to Horizon:
// the visible prefix is dense).
func (e *Epoch) Len() int { return e.horizon }

// prefixLen returns how many entries of an ascending position list fall
// below the shard's cut.
func prefixLen(list []int32, cut int) int {
	return sort.Search(len(list), func(i int) bool { return int(list[i]) >= cut })
}

// Outcomes counts succeeding and failing records below the horizon.
//
//bugdoc:hotpath
func (e *Epoch) Outcomes() (succeed, fail int) {
	for i, ep := range e.shards {
		cut := e.cuts[i]
		succeed += prefixLen(ep.succSeqs, cut)
		fail += prefixLen(ep.failSeqs, cut)
	}
	return succeed, fail
}

// byOutcome returns the visible instances with the given outcome in
// execution order.
func (e *Epoch) byOutcome(out pipeline.Outcome) []pipeline.Instance {
	if len(e.shards) == 1 {
		ep, cut := e.shards[0], e.cuts[0]
		list := ep.succSeqs
		if out == pipeline.Fail {
			list = ep.failSeqs
		}
		list = list[:prefixLen(list, cut)]
		if len(list) == 0 {
			return nil
		}
		res := make([]pipeline.Instance, len(list))
		for i, pos := range list {
			res[i] = ep.recs[pos].Instance
		}
		return res
	}
	var pairs []seqInst
	for i, ep := range e.shards {
		list := ep.succSeqs
		if out == pipeline.Fail {
			list = ep.failSeqs
		}
		for _, pos := range list[:prefixLen(list, e.cuts[i])] {
			r := &ep.recs[pos]
			pairs = append(pairs, seqInst{seq: r.Seq, in: r.Instance})
		}
	}
	return e.st.orderInstances(pairs)
}

// Failing returns the visible failing instances in execution order.
func (e *Epoch) Failing() []pipeline.Instance { return e.byOutcome(pipeline.Fail) }

// Succeeding returns the visible succeeding instances in execution order.
func (e *Epoch) Succeeding() []pipeline.Instance { return e.byOutcome(pipeline.Succeed) }

// FirstFailing returns the earliest visible failing instance, the natural
// CP_f for the Shortcut algorithms.
func (e *Epoch) FirstFailing() (pipeline.Instance, bool) {
	best, bestSeq := pipeline.Instance{}, -1
	for i, ep := range e.shards {
		if len(ep.failSeqs) > 0 && int(ep.failSeqs[0]) < e.cuts[i] {
			r := &ep.recs[ep.failSeqs[0]]
			if bestSeq < 0 || r.Seq < bestSeq {
				best, bestSeq = r.Instance, r.Seq
			}
		}
	}
	return best, bestSeq >= 0
}

// DisjointSucceeding returns the visible succeeding instances disjoint
// from ref (Definition 6), in execution order.
func (e *Epoch) DisjointSucceeding(ref pipeline.Instance) []pipeline.Instance {
	if ref.Space() != e.st.space {
		return nil // instances over different spaces are never disjoint
	}
	var pairs []seqInst
	for s, ep := range e.shards {
		mask := ep.succBits.clone()
		for i := 0; i < e.st.space.Len(); i++ {
			if c := int(ref.Code(i)); c < len(ep.posting[i]) {
				mask.andNotWith(ep.posting[i][c])
			}
		}
		mask.forEachLimit(e.cuts[s], func(pos int) bool {
			r := &ep.recs[pos]
			pairs = append(pairs, seqInst{seq: r.Seq, in: r.Instance})
			return true
		})
	}
	return e.st.orderInstances(pairs)
}

// MostDifferentSucceeding returns the visible succeeding instance
// differing from ref on the most parameters, ties broken to the earliest
// execution (see the Store method of the same name).
func (e *Epoch) MostDifferentSucceeding(ref pipeline.Instance) (pipeline.Instance, bool) {
	if ref.Space() != e.st.space {
		return pipeline.Instance{}, false
	}
	best, bestDiff, bestSeq := pipeline.Instance{}, -1, -1
	for i, ep := range e.shards {
		for _, pos := range ep.succSeqs[:prefixLen(ep.succSeqs, e.cuts[i])] {
			r := &ep.recs[pos]
			if d := r.Instance.DiffCount(ref); d > bestDiff || (d == bestDiff && r.Seq < bestSeq) {
				best, bestDiff, bestSeq = r.Instance, d, r.Seq
			}
		}
	}
	return best, bestDiff >= 0
}

// MutuallyDisjointSucceeding greedily selects up to k visible succeeding
// instances disjoint from ref and pairwise disjoint, padding if allowed
// with the most-different remainder (the CP_G set of the Stacked Shortcut
// algorithm; see the Store method of the same name).
func (e *Epoch) MutuallyDisjointSucceeding(ref pipeline.Instance, k int, pad bool) []pipeline.Instance {
	if ref.Space() != e.st.space {
		return nil
	}
	return mutuallyDisjointFrom(e.Succeeding(), ref, k, pad)
}

// AnySucceedingSatisfying returns the earliest visible succeeding instance
// whose parameter values satisfy the conjunction, if one exists — the
// Shortcut sanity check.
//
//bugdoc:hotpath
func (e *Epoch) AnySucceedingSatisfying(c predicate.Conjunction) (pipeline.Instance, bool) {
	best, bestSeq := pipeline.Instance{}, -1
	for s, ep := range e.shards {
		mask := ep.succBits.clone()
		known := true
		for _, t := range c {
			tb, ok := tripleBitsOver(e.st.space, ep.posting, t)
			if !ok {
				known = false
				break
			}
			mask.andWith(tb)
		}
		if !known {
			return pipeline.Instance{}, false
		}
		if pos, ok := mask.firstLimit(e.cuts[s]); ok {
			r := &ep.recs[pos]
			if bestSeq < 0 || r.Seq < bestSeq {
				best, bestSeq = r.Instance, r.Seq
			}
		}
	}
	return best, bestSeq >= 0
}

// CountSatisfying counts visible records satisfying c, split by outcome.
//
//bugdoc:hotpath
func (e *Epoch) CountSatisfying(c predicate.Conjunction) (succeed, fail int) {
	if len(c) == 0 {
		return e.Outcomes()
	}
	for s, ep := range e.shards {
		var mask bitset
		for j, t := range c {
			tb, ok := tripleBitsOver(e.st.space, ep.posting, t)
			if !ok {
				return 0, 0 // unknown parameter: no record anywhere can satisfy c
			}
			if j == 0 {
				mask = tb // tripleBitsOver returns a fresh bitset; safe to own
			} else {
				mask.andWith(tb)
			}
		}
		succeed += mask.andCountLimit(ep.succBits, e.cuts[s])
		fail += mask.andCountLimit(ep.failBits, e.cuts[s])
	}
	return succeed, fail
}
