package provenance

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/predicate"
)

// This file differentially tests the lock-free Epoch read path against the
// locked Store queries, and stress-tests the horizon invariant under
// concurrent writers. On a quiescent store an Epoch must answer exactly
// what the Store does; under writers every answer must be consistent with
// some dense committed prefix.

// compareEpochToStore fails the test unless a freshly captured Epoch
// agrees with the store's locked queries on a quiescent store.
func compareEpochToStore(t *testing.T, r *rand.Rand, s *pipeline.Space, st *Store, ins []pipeline.Instance) {
	t.Helper()
	e := st.Epoch()
	if e.Len() != st.Len() || e.Horizon() != st.Len() {
		t.Fatalf("Epoch Len/Horizon = %d/%d, store Len = %d", e.Len(), e.Horizon(), st.Len())
	}
	esucc, efail := e.Outcomes()
	ssucc, sfail := st.Outcomes()
	if esucc != ssucc || efail != sfail {
		t.Fatalf("Outcomes: epoch (%d,%d) vs store (%d,%d)", esucc, efail, ssucc, sfail)
	}
	if !sameInstances(e.Failing(), st.Failing()) {
		t.Fatal("Failing diverges")
	}
	if !sameInstances(e.Succeeding(), st.Succeeding()) {
		t.Fatal("Succeeding diverges")
	}
	fe, oke := e.FirstFailing()
	fs, oks := st.FirstFailing()
	if oke != oks || (oke && !fe.Equal(fs)) {
		t.Fatalf("FirstFailing: epoch (%v,%v) vs store (%v,%v)", fe, oke, fs, oks)
	}
	for probe := 0; probe < 12; probe++ {
		c := randomConjunction(r, s)
		es, ef := e.CountSatisfying(c)
		ss, sf := st.CountSatisfying(c)
		if es != ss || ef != sf {
			t.Fatalf("CountSatisfying(%v): epoch (%d,%d) vs store (%d,%d)", c, es, ef, ss, sf)
		}
		ei, eok := e.AnySucceedingSatisfying(c)
		si, sok := st.AnySucceedingSatisfying(c)
		if eok != sok || (eok && !ei.Equal(si)) {
			t.Fatalf("AnySucceedingSatisfying(%v): epoch (%v,%v) vs store (%v,%v)", c, ei, eok, si, sok)
		}
	}
	if len(ins) == 0 {
		return
	}
	for probe := 0; probe < 6; probe++ {
		ref := ins[r.Intn(len(ins))]
		if !sameInstances(e.DisjointSucceeding(ref), st.DisjointSucceeding(ref)) {
			t.Fatalf("DisjointSucceeding(%v) diverges", ref)
		}
		me, oke := e.MostDifferentSucceeding(ref)
		ms, oks := st.MostDifferentSucceeding(ref)
		if oke != oks || (oke && !me.Equal(ms)) {
			t.Fatalf("MostDifferentSucceeding(%v): epoch (%v,%v) vs store (%v,%v)", ref, me, oke, ms, oks)
		}
		k := 1 + r.Intn(5)
		pad := r.Intn(2) == 0
		if !sameInstances(e.MutuallyDisjointSucceeding(ref, k, pad),
			st.MutuallyDisjointSucceeding(ref, k, pad)) {
			t.Fatalf("MutuallyDisjointSucceeding(%v, %d, %v) diverges", ref, k, pad)
		}
	}
}

// TestEpochMatchesLockedRandomHistories drives randomized histories into
// stores of every shard count and requires the Epoch answers to match the
// locked queries after every step — so epochs are exercised both freshly
// built and incrementally extended from a published predecessor.
func TestEpochMatchesLockedRandomHistories(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	counts := append([]int{1}, shardCounts...)
	for trial := 0; trial < 30; trial++ {
		s := randomProvenanceSpace(t, r)
		for _, k := range counts {
			st := NewStoreSharded(s, k)
			var ins []pipeline.Instance
			steps := 3 + r.Intn(5)
			for step := 0; step < steps; step++ {
				if r.Intn(2) == 0 {
					n := 1 + r.Intn(10)
					entries := make([]Entry, n)
					for j := range entries {
						out := pipeline.Succeed
						if r.Intn(2) == 0 {
							out = pipeline.Fail
						}
						entries[j] = Entry{Instance: s.RandomInstance(r), Outcome: out, Source: fmt.Sprintf("s%d", step)}
					}
					if _, err := st.AddBatch(entries); err != nil {
						t.Fatal(err)
					}
					for j := range entries {
						if _, ok := st.Lookup(entries[j].Instance); ok {
							ins = append(ins, entries[j].Instance)
						}
					}
				} else {
					for draws := 1 + r.Intn(6); draws > 0; draws-- {
						in := s.RandomInstance(r)
						out := pipeline.Succeed
						if r.Intn(2) == 0 {
							out = pipeline.Fail
						}
						if err := st.Add(in, out, "add"); err == nil {
							ins = append(ins, in)
						}
					}
				}
				// Compare after every step: the epoch captured here extends
				// the one published by the previous step's capture.
				compareEpochToStore(t, r, s, st, ins)
			}
		}
	}
}

// TestEpochOnLoadedRunTriggersDeferredIndex captures an Epoch as the very
// first query against a checkpoint-loaded store — before any locked query
// has built the deferred base index — and requires it to match the locked
// answers of an identically loaded twin, before and after post-load
// appends.
func TestEpochOnLoadedRunTriggersDeferredIndex(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	for trial := 0; trial < 20; trial++ {
		s := randomProvenanceSpace(t, r)
		seedSt := NewStore(s)
		ins := fillRandomStore(t, r, s, seedSt, 10+r.Intn(50))
		if len(ins) == 0 {
			continue
		}
		recs, hashes, seqs := buildSortedRun(seedSt)
		for _, k := range append([]int{1}, shardCounts...) {
			st := NewStoreSharded(s, k)
			rc := append([]Record(nil), recs...)
			hc := append([]uint64(nil), hashes...)
			sc := append([]int32(nil), seqs...)
			if err := st.LoadSortedRun(rc, hc, sc); err != nil {
				t.Fatalf("LoadSortedRun on %d shards: %v", k, err)
			}
			// Epoch first: its build must trigger the deferred base index.
			compareEpochToStore(t, r, s, st, ins)
			extra := fillRandomStore(t, r, s, st, 5)
			compareEpochToStore(t, r, s, st, append(ins, extra...))
		}
	}
}

// TestEpochConsistencySingleWriterStress is the -race stress for the
// horizon invariant: one writer appends a deterministic record sequence
// while readers capture epochs and check every answer against precomputed
// ground truth at the epoch's own horizon — i.e. each snapshot is exactly
// some committed prefix of the history, and horizons never move backwards
// for a reader.
func TestEpochConsistencySingleWriterStress(t *testing.T) {
	s := pipeline.MustSpace(
		pipeline.Parameter{Name: "a", Kind: pipeline.Ordinal, Domain: ordDomain(0, 1, 2, 3, 4, 5, 6, 7)},
		pipeline.Parameter{Name: "b", Kind: pipeline.Ordinal, Domain: ordDomain(0, 1, 2, 3, 4, 5, 6, 7)},
		pipeline.Parameter{Name: "c", Kind: pipeline.Ordinal, Domain: ordDomain(0, 1, 2, 3)},
	)
	const total = 256
	ins := make([]pipeline.Instance, total)
	outs := make([]pipeline.Outcome, total)
	conj := predicate.Conjunction{predicate.T("a", predicate.Le, pipeline.Ord(3))}
	// Prefix ground truth: counts over ins[0:h] for every horizon h.
	prefSucc := make([]int, total+1)
	prefFail := make([]int, total+1)
	prefSatSucc := make([]int, total+1)
	prefSatFail := make([]int, total+1)
	firstFail := -1
	for x := 0; x < total; x++ {
		ins[x] = pipeline.MustInstance(s,
			pipeline.Ord(float64(x%8)), pipeline.Ord(float64((x/8)%8)), pipeline.Ord(float64(x/64)))
		outs[x] = pipeline.Succeed
		if x%3 == 0 {
			outs[x] = pipeline.Fail
		}
		if outs[x] == pipeline.Fail && firstFail < 0 {
			firstFail = x
		}
		sat := 0
		if conj.Satisfied(ins[x]) {
			sat = 1
		}
		if outs[x] == pipeline.Succeed {
			prefSucc[x+1] = prefSucc[x] + 1
			prefFail[x+1] = prefFail[x]
			prefSatSucc[x+1] = prefSatSucc[x] + sat
			prefSatFail[x+1] = prefSatFail[x]
		} else {
			prefSucc[x+1] = prefSucc[x]
			prefFail[x+1] = prefFail[x] + 1
			prefSatSucc[x+1] = prefSatSucc[x]
			prefSatFail[x+1] = prefSatFail[x] + sat
		}
	}
	for _, shards := range []int{1, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			st := NewStoreSharded(s, shards)
			var done atomic.Bool
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer done.Store(true)
				for x := 0; x < total; x++ {
					if err := st.Add(ins[x], outs[x], "w"); err != nil {
						t.Error(err)
						return
					}
				}
			}()
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					last := 0
					for !done.Load() {
						e := st.Epoch()
						h := e.Horizon()
						if h < last || h > total {
							t.Errorf("horizon went from %d to %d", last, h)
							return
						}
						last = h
						if succ, fail := e.Outcomes(); succ != prefSucc[h] || fail != prefFail[h] {
							t.Errorf("horizon %d: Outcomes = (%d,%d), want (%d,%d)", h, succ, fail, prefSucc[h], prefFail[h])
							return
						}
						if succ, fail := e.CountSatisfying(conj); succ != prefSatSucc[h] || fail != prefSatFail[h] {
							t.Errorf("horizon %d: CountSatisfying = (%d,%d), want (%d,%d)", h, succ, fail, prefSatSucc[h], prefSatFail[h])
							return
						}
						if in, ok := e.FirstFailing(); ok != (h > firstFail) || (ok && !in.Equal(ins[firstFail])) {
							t.Errorf("horizon %d: FirstFailing = (%v,%v)", h, in, ok)
							return
						}
						if fs := e.Failing(); len(fs) != prefFail[h] {
							t.Errorf("horizon %d: %d failing, want %d", h, len(fs), prefFail[h])
							return
						}
					}
				}()
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			// Quiesced: the final epoch sees everything and matches the
			// locked queries exactly.
			e := st.Epoch()
			if e.Horizon() != total {
				t.Fatalf("final horizon = %d, want %d", e.Horizon(), total)
			}
			r := rand.New(rand.NewSource(61))
			compareEpochToStore(t, r, s, st, ins)
		})
	}
}

// TestEpochInvariantsConcurrentWritersStress races multiple writers with
// epoch readers on a sharded store. The interleaving is nondeterministic,
// so readers check structural invariants — the horizon is dense (outcome
// counts sum to it), never regresses per reader, and every enumerated
// instance carries its recorded outcome — then the quiesced store must
// match the locked path exactly.
func TestEpochInvariantsConcurrentWritersStress(t *testing.T) {
	s := pipeline.MustSpace(
		pipeline.Parameter{Name: "a", Kind: pipeline.Ordinal, Domain: ordDomain(0, 1, 2, 3, 4, 5, 6, 7)},
		pipeline.Parameter{Name: "b", Kind: pipeline.Ordinal, Domain: ordDomain(0, 1, 2, 3, 4, 5, 6, 7)},
		pipeline.Parameter{Name: "c", Kind: pipeline.Ordinal, Domain: ordDomain(0, 1, 2, 3)},
	)
	const writers, per = 4, 64
	st := NewStoreSharded(s, 8)
	var done atomic.Int32
	var wg sync.WaitGroup
	ins := make([]pipeline.Instance, writers*per)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer done.Add(1)
			for k := 0; k < per; k++ {
				x := w*per + k
				in := pipeline.MustInstance(s,
					pipeline.Ord(float64(x%8)), pipeline.Ord(float64((x/8)%8)), pipeline.Ord(float64(x/64)))
				ins[x] = in
				out := pipeline.Succeed
				if x%3 == 0 {
					out = pipeline.Fail
				}
				if err := st.Add(in, out, "w"); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for rd := 0; rd < 4; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := 0
			for done.Load() < writers {
				e := st.Epoch()
				h := e.Horizon()
				if h < last || h > writers*per {
					t.Errorf("horizon went from %d to %d", last, h)
					return
				}
				last = h
				succ, fail := e.Outcomes()
				if succ+fail != h {
					t.Errorf("horizon %d: outcome counts sum to %d", h, succ+fail)
					return
				}
				fs, ss := e.Failing(), e.Succeeding()
				if len(fs) != fail || len(ss) != succ {
					t.Errorf("horizon %d: enumerated (%d,%d), counted (%d,%d)", h, len(ss), len(fs), succ, fail)
					return
				}
				for _, in := range fs {
					// Outcome is a pure function of the instance in this
					// history, so any visible failing instance must be one
					// the writers recorded as failing.
					if out, ok := st.Lookup(in); !ok || out != pipeline.Fail {
						t.Errorf("horizon %d: failing set holds %v with outcome (%v,%v)", h, in, out, ok)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	e := st.Epoch()
	if e.Horizon() != writers*per {
		t.Fatalf("final horizon = %d, want %d", e.Horizon(), writers*per)
	}
	r := rand.New(rand.NewSource(67))
	compareEpochToStore(t, r, s, st, ins)
}
