package provenance

import "math/bits"

// bitset is a dense bitmap over record sequence numbers. The store keeps
// one per outcome and one per (parameter, value-code) posting list, so the
// history queries (DisjointSucceeding, AnySucceedingSatisfying,
// CountSatisfying, ...) run as word-wide boolean algebra instead of
// whole-log scans.
type bitset []uint64

// set marks bit i, growing the word slice as needed.
func (b *bitset) set(i int) {
	w := i >> 6
	for len(*b) <= w {
		*b = append(*b, 0)
	}
	(*b)[w] |= 1 << (uint(i) & 63)
}

// clone returns an independent copy of b.
func (b bitset) clone() bitset {
	out := make(bitset, len(b))
	copy(out, b)
	return out
}

// andWith intersects b with o in place. Bits beyond o's length clear.
func (b bitset) andWith(o bitset) {
	for i := range b {
		if i < len(o) {
			b[i] &= o[i]
		} else {
			b[i] = 0
		}
	}
}

// andNotWith clears from b every bit set in o, in place.
func (b bitset) andNotWith(o bitset) {
	n := len(b)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		b[i] &^= o[i]
	}
}

// orWith unions o into b, growing b as needed.
func (b *bitset) orWith(o bitset) {
	for len(*b) < len(o) {
		*b = append(*b, 0)
	}
	for i := range o {
		(*b)[i] |= o[i]
	}
}

// count returns the number of set bits.
func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// andCount returns the number of bits set in both b and o without
// materializing the intersection.
func (b bitset) andCount(o bitset) int {
	n := len(b)
	if len(o) < n {
		n = len(o)
	}
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(b[i] & o[i])
	}
	return c
}

// first returns the lowest set bit, or ok=false when b is empty.
func (b bitset) first() (int, bool) {
	for i, w := range b {
		if w != 0 {
			return i<<6 + bits.TrailingZeros64(w), true
		}
	}
	return 0, false
}

// forEach calls f on every set bit in ascending order until f returns
// false.
func (b bitset) forEach(f func(int) bool) {
	for i, w := range b {
		for w != 0 {
			bit := i<<6 + bits.TrailingZeros64(w)
			if !f(bit) {
				return
			}
			w &= w - 1
		}
	}
}

// limitWords returns how many whole words of b lie below position limit and
// a mask selecting the in-limit bits of the following partial word (zero
// when limit falls on a word boundary or past b). The epoch queries use the
// pair to evaluate bitset algebra against a horizon prefix without copying.
func (b bitset) limitWords(limit int) (whole int, partial uint64) {
	if limit >= len(b)<<6 {
		return len(b), 0
	}
	if limit <= 0 {
		return 0, 0
	}
	return limit >> 6, (1 << (uint(limit) & 63)) - 1
}

// andCountLimit returns the number of positions below limit set in both b
// and o.
func (b bitset) andCountLimit(o bitset, limit int) int {
	n := len(b)
	if len(o) < n {
		n = len(o)
	}
	whole, partial := bitset(b[:n]).limitWords(limit)
	c := 0
	for i := 0; i < whole; i++ {
		c += bits.OnesCount64(b[i] & o[i])
	}
	if partial != 0 && whole < n {
		c += bits.OnesCount64(b[whole] & o[whole] & partial)
	}
	return c
}

// firstLimit returns the lowest set bit below limit, or ok=false when none
// exists.
func (b bitset) firstLimit(limit int) (int, bool) {
	pos, ok := b.first()
	if !ok || pos >= limit {
		return 0, false
	}
	return pos, true
}

// forEachLimit calls f on every set bit below limit in ascending order
// until f returns false.
func (b bitset) forEachLimit(limit int, f func(int) bool) {
	b.forEach(func(pos int) bool {
		if pos >= limit {
			return false
		}
		return f(pos)
	})
}
