package provenance

import (
	"fmt"

	"repro/internal/pipeline"
)

// TrialSink is an optional Sink extension for flaky-oracle sessions: a
// sink that also persists individual trial votes. AppendTrial is called
// with the owning shard's write lock held, before the vote is counted in
// memory, and must not return until the vote is durable — write-ahead
// semantics for votes, mirroring Append for records. Trial votes carry no
// global sequence number (they are idempotent, keyed by instance and
// trial index), so AppendTrial is not ordered by the store's
// write-ordering lock and may interleave freely with record appends.
type TrialSink interface {
	AppendTrial(in pipeline.Instance, trial int, out pipeline.Outcome, source string) error
}

// TrialVote is one recorded oracle trial of an instance: the trial's raw
// outcome (always Succeed or Fail — resolution happens over the tallies)
// and the component that ran it.
type TrialVote struct {
	Outcome pipeline.Outcome
	Source  string
}

// TrialRecord is one instance's accumulated trial votes, as returned by
// TrialVotesAll for checkpoint re-emission.
type TrialRecord struct {
	Instance pipeline.Instance
	Votes    []TrialVote
}

// TrialResult reports the vote tallies after an AddTrial call and the
// resolution they imply under the store's trial policy.
type TrialResult struct {
	// Trial is the recorded vote's index, or -1 when the vote was
	// discarded because a resolution already held.
	Trial int
	// Succ and Fail are the instance's vote tallies including this vote
	// (or excluding it when Discarded).
	Succ, Fail int
	// Resolved reports whether the tallies now settle the outcome.
	Resolved bool
	// Outcome is the resolved outcome; valid only when Resolved.
	Outcome pipeline.Outcome
	// Discarded is set when the vote was refused: either the tallies had
	// already resolved (a racing trial crossed the quorum first) or the
	// instance's record is already committed. Refusing late votes is what
	// keeps resolved outcomes stable — no trial can flip a resolution.
	Discarded bool
}

// TrialClaim is the outcome of a ClaimTrial call: either a granted trial
// slot, an already-settled resolution, or an instruction to wait.
type TrialClaim struct {
	// Granted means the caller owns trial slot Trial and should run the
	// oracle once, then AddTrial the vote (or ReleaseTrial on error).
	Granted bool
	// Trial is the granted slot index; valid only when Granted.
	Trial int
	// Resolved means the instance's outcome is already settled (by votes
	// or by a committed record); Outcome holds it.
	Resolved bool
	// Outcome is the settled outcome; valid only when Resolved.
	Outcome pipeline.Outcome
	// Wait is non-nil when the claim was neither granted nor resolved:
	// every trial slot the policy allows is claimed by other goroutines
	// and none has resolved yet. It closes on the next vote, release, or
	// resolution; the caller re-claims after it fires.
	Wait <-chan struct{}
}

// trialState is one instance's in-memory vote ledger: the durable votes
// in trial order, plus the in-flight claim count that caps concurrent
// re-dispatches at the policy's MaxTrials.
type trialState struct {
	in      pipeline.Instance
	votes   []TrialVote
	claimed int           // trial slots handed out, always >= len(votes)
	waiters chan struct{} // closed and cleared on every state change
}

// tally counts the succeed and fail votes. Replay holes (see
// LoadTrialVote) carry OutcomeUnknown and count as nothing.
func (ts *trialState) tally() (succ, fail int) {
	for _, v := range ts.votes {
		switch v.Outcome {
		case pipeline.Succeed:
			succ++
		case pipeline.Fail:
			fail++
		}
	}
	return succ, fail
}

// notifyLocked wakes every goroutine blocked on the state's Wait channel.
func (ts *trialState) notifyLocked() {
	if ts.waiters != nil {
		close(ts.waiters)
		ts.waiters = nil
	}
}

// trialStateLocked returns the shard's vote ledger for in, creating it
// when create is set. The caller holds the shard's write lock (read lock
// suffices when create is false and only reads follow).
func (sh *shard) trialStateLocked(in pipeline.Instance, create bool) *trialState {
	if sh.trialByKey != nil {
		if i, ok := sh.trialByKey.Get(in); ok {
			return &sh.trialRecs[i]
		}
	}
	if !create {
		return nil
	}
	if sh.trialByKey == nil {
		sh.trialByKey = pipeline.NewInstanceMap[int32](0)
	}
	sh.trialByKey.Put(in, int32(len(sh.trialRecs)))
	sh.trialRecs = append(sh.trialRecs, trialState{in: in})
	return &sh.trialRecs[len(sh.trialRecs)-1]
}

// SetTrialPolicy installs the FlakyPolicy that AddTrial and ClaimTrial
// resolve votes under. Set it before handing the store to the executor;
// it is not meant to change while trials are in flight. Deterministic
// sessions never call it and the zero (disabled) policy never resolves.
func (st *Store) SetTrialPolicy(p pipeline.FlakyPolicy) {
	st.trialPolicy = p
}

// TrialPolicy returns the installed FlakyPolicy (zero when none).
func (st *Store) TrialPolicy() pipeline.FlakyPolicy { return st.trialPolicy }

// ClaimTrial reserves the next trial slot for the instance, enforcing the
// policy's MaxTrials cap across concurrent re-dispatchers. Exactly one of
// the claim's Granted, Resolved, or Wait fields is meaningful; see
// TrialClaim. Claims are in-memory only — a crash releases them — while
// votes are durable; after a restart the claim count resumes at the
// replayed vote count, so a resumed session never runs trials beyond
// MaxTrials minus the votes that survived.
func (st *Store) ClaimTrial(in pipeline.Instance) TrialClaim {
	if in.Space() != st.space {
		// A cross-space instance must never touch this store's ledger:
		// resolve it as unknown so the caller's commit path (which
		// re-validates the space) surfaces the error.
		return TrialClaim{Resolved: true, Outcome: pipeline.OutcomeUnknown}
	}
	sh := st.shardOf(in.Hash())
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if pos, ok := sh.lookupPosLocked(in); ok {
		return TrialClaim{Resolved: true, Outcome: sh.recs[pos].Outcome}
	}
	ts := sh.trialStateLocked(in, true)
	if out, done := st.trialPolicy.Resolve(ts.tally()); done {
		return TrialClaim{Resolved: true, Outcome: out}
	}
	if ts.claimed < st.trialPolicy.MaxTrials {
		c := TrialClaim{Granted: true, Trial: ts.claimed}
		ts.claimed++
		return c
	}
	if ts.waiters == nil {
		ts.waiters = make(chan struct{})
	}
	return TrialClaim{Wait: ts.waiters}
}

// ReleaseTrial returns a granted-but-unvoted trial slot (the oracle run
// errored), so another goroutine — or a retry — may claim it.
func (st *Store) ReleaseTrial(in pipeline.Instance) {
	if in.Space() != st.space {
		return
	}
	sh := st.shardOf(in.Hash())
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ts := sh.trialStateLocked(in, false)
	if ts == nil || ts.claimed <= len(ts.votes) {
		return
	}
	ts.claimed--
	ts.notifyLocked()
}

// AddTrial records one oracle trial's raw outcome as a vote. Votes are
// durable before they count: with a TrialSink attached the vote's WAL
// append (including its group-commit fsync) completes under the shard
// lock, so a vote visible to any reader survives a crash. A vote arriving
// after the tallies already resolve — or after the instance's record
// committed — is discarded, never persisted, and never counted: the
// resolution invariant is that recorded votes are exactly the pre-quorum
// trials, so re-resolving the final tallies always reproduces the
// committed outcome.
func (st *Store) AddTrial(in pipeline.Instance, out pipeline.Outcome, source string) (TrialResult, error) {
	if in.Space() != st.space {
		return TrialResult{}, fmt.Errorf("provenance: instance belongs to a different space")
	}
	if out != pipeline.Succeed && out != pipeline.Fail {
		return TrialResult{}, fmt.Errorf("provenance: cannot record trial outcome %v", out)
	}
	sh := st.shardOf(in.Hash())
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if pos, ok := sh.lookupPosLocked(in); ok {
		return TrialResult{Trial: -1, Discarded: true, Resolved: true, Outcome: sh.recs[pos].Outcome}, nil
	}
	ts := sh.trialStateLocked(in, true)
	succ, fail := ts.tally()
	if res, done := st.trialPolicy.Resolve(succ, fail); done {
		return TrialResult{Trial: -1, Succ: succ, Fail: fail, Discarded: true, Resolved: true, Outcome: res}, nil
	}
	idx := len(ts.votes)
	if tsink, ok := st.sink.(TrialSink); ok {
		if st.poisoned.Load() {
			return TrialResult{}, st.poisonErr()
		}
		if err := tsink.AppendTrial(in, idx, out, source); err != nil {
			return TrialResult{}, fmt.Errorf("provenance: trial sink: %w", err)
		}
	}
	ts.votes = append(ts.votes, TrialVote{Outcome: out, Source: source})
	if ts.claimed < len(ts.votes) {
		ts.claimed = len(ts.votes)
	}
	ts.notifyLocked()
	if out == pipeline.Succeed {
		succ++
	} else {
		fail++
	}
	res, done := st.trialPolicy.Resolve(succ, fail)
	return TrialResult{Trial: idx, Succ: succ, Fail: fail, Resolved: done, Outcome: res}, nil
}

// LoadTrialVote applies one replayed trial vote without touching the
// sink. Replay is idempotent and order-tolerant: a vote at an index
// already loaded must agree with the loaded vote (checkpoint re-emission
// duplicates the vote stream) and is otherwise ignored, and a vote past
// the next free index leaves OutcomeUnknown holes that later frames fill
// — a checkpoint's re-emitted votes can trail a concurrently appended
// higher-index vote in the stream. Whenever the superseded originals were
// collected, the re-emitted copies follow in the same stream, so a
// completed replay always ends hole-free.
func (st *Store) LoadTrialVote(in pipeline.Instance, trial int, out pipeline.Outcome, source string) error {
	if in.Space() != st.space {
		return fmt.Errorf("provenance: trial vote instance belongs to a different space")
	}
	if out != pipeline.Succeed && out != pipeline.Fail {
		return fmt.Errorf("provenance: cannot load trial outcome %v", out)
	}
	sh := st.shardOf(in.Hash())
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ts := sh.trialStateLocked(in, true)
	for trial >= len(ts.votes) {
		ts.votes = append(ts.votes, TrialVote{})
	}
	if prev := ts.votes[trial].Outcome; prev != pipeline.OutcomeUnknown {
		if prev != out {
			return fmt.Errorf("provenance: replayed trial %d of %v disagrees: %v vs %v",
				trial, in, prev, out)
		}
		return nil
	}
	ts.votes[trial] = TrialVote{Outcome: out, Source: source}
	if ts.claimed < len(ts.votes) {
		ts.claimed = len(ts.votes)
	}
	ts.notifyLocked()
	return nil
}

// TrialVotes returns a copy of the instance's recorded votes in trial
// order (nil when the instance never ran a trial).
func (st *Store) TrialVotes(in pipeline.Instance) []TrialVote {
	if in.Space() != st.space {
		return nil
	}
	sh := st.shardOf(in.Hash())
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ts := sh.trialStateLocked(in, false)
	if ts == nil || len(ts.votes) == 0 {
		return nil
	}
	out := make([]TrialVote, len(ts.votes))
	copy(out, ts.votes)
	return out
}

// TrialCount returns how many votes the instance has accumulated.
func (st *Store) TrialCount(in pipeline.Instance) int {
	if in.Space() != st.space {
		return 0
	}
	sh := st.shardOf(in.Hash())
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ts := sh.trialStateLocked(in, false)
	if ts == nil {
		return 0
	}
	return len(ts.votes)
}

// TrialMargin returns the instance's absolute vote margin |succ - fail|,
// the confidence weight flaky sessions hand to the decision tree. It is 0
// for instances without votes (deterministic records), which the tree
// treats as weight 1.
func (st *Store) TrialMargin(in pipeline.Instance) int {
	if in.Space() != st.space {
		return 0
	}
	sh := st.shardOf(in.Hash())
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ts := sh.trialStateLocked(in, false)
	if ts == nil {
		return 0
	}
	succ, fail := ts.tally()
	if succ > fail {
		return succ - fail
	}
	return fail - succ
}

// TrialVotesAll snapshots every instance's vote ledger, in no particular
// order. Checkpointing uses it to re-emit the vote stream into the
// post-rotation WAL segment before superseded segments are collected, so
// votes survive segment GC.
func (st *Store) TrialVotesAll() []TrialRecord {
	var all []TrialRecord
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		if sh.trialByKey != nil {
			for j := range sh.trialRecs {
				ts := &sh.trialRecs[j]
				if len(ts.votes) == 0 {
					continue
				}
				votes := make([]TrialVote, len(ts.votes))
				copy(votes, ts.votes)
				all = append(all, TrialRecord{Instance: ts.in, Votes: votes})
			}
		}
		sh.mu.RUnlock()
	}
	return all
}
