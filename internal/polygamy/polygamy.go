// Package polygamy simulates the Data Polygamy experiment pipeline of
// Section 5.3: a VisTrails workflow that evaluates statistical-significance
// methods over 300+ spatio-temporal datasets. The paper's pipeline has 12
// parameters — 2 boolean, 3 categorical (3 to 10 values), 7 numerical —
// and the debugging goal is to find parameter combinations that make the
// execution *crash*.
//
// We cannot run the original 20-minute VisTrails instances, so the
// simulator preserves what BugDoc observes: the exact parameter-space shape
// and a staged execution (data cleaning, transformation, feature
// identification, hypothesis testing) whose stages crash under planted
// conditions. The union of the stage crash conditions is the documented
// ground truth, exposed for evaluation.
package polygamy

import (
	"context"
	"fmt"

	"repro/internal/exec"
	"repro/internal/pipeline"
	"repro/internal/predicate"
)

// Pipeline is the simulated Data Polygamy experiment.
type Pipeline struct {
	Space *pipeline.Space
	// Truth is the crash condition (ground truth for evaluation).
	Truth predicate.DNF
	// Minimal is R(CP), each conjunct minimized over the domains.
	Minimal []predicate.Conjunction
}

// New constructs the simulator. The space and crash conditions are fixed
// (the real pipeline is one specific workflow, not a random family).
func New() (*Pipeline, error) {
	ord := func(vals ...float64) []pipeline.Value {
		out := make([]pipeline.Value, len(vals))
		for i, v := range vals {
			out[i] = pipeline.Ord(v)
		}
		return out
	}
	cat := func(vals ...string) []pipeline.Value {
		out := make([]pipeline.Value, len(vals))
		for i, v := range vals {
			out[i] = pipeline.Cat(v)
		}
		return out
	}
	s, err := pipeline.NewSpace(
		// 2 boolean parameters.
		pipeline.Parameter{Name: "use_spatial_index", Kind: pipeline.Categorical, Domain: cat("false", "true")},
		pipeline.Parameter{Name: "restrict_significance", Kind: pipeline.Categorical, Domain: cat("false", "true")},
		// 3 categorical parameters (3-10 values).
		pipeline.Parameter{Name: "temporal_resolution", Kind: pipeline.Categorical, Domain: cat("hour", "day", "week", "month")},
		pipeline.Parameter{Name: "spatial_resolution", Kind: pipeline.Categorical, Domain: cat("gps", "neighborhood", "zip", "city")},
		pipeline.Parameter{Name: "significance_method", Kind: pipeline.Categorical,
			Domain: cat("none", "bonferroni", "bh_fdr", "by_fdr", "permutation", "bootstrap")},
		// 7 numerical parameters.
		pipeline.Parameter{Name: "alpha", Kind: pipeline.Ordinal, Domain: ord(0.001, 0.005, 0.01, 0.05, 0.1)},
		pipeline.Parameter{Name: "num_datasets", Kind: pipeline.Ordinal, Domain: ord(10, 50, 100, 200, 300)},
		pipeline.Parameter{Name: "num_permutations", Kind: pipeline.Ordinal, Domain: ord(0, 100, 500, 1000, 5000)},
		pipeline.Parameter{Name: "feature_threshold", Kind: pipeline.Ordinal, Domain: ord(0.1, 0.25, 0.5, 0.75, 0.9)},
		pipeline.Parameter{Name: "grid_size", Kind: pipeline.Ordinal, Domain: ord(8, 16, 32, 64, 128)},
		pipeline.Parameter{Name: "window_size", Kind: pipeline.Ordinal, Domain: ord(1, 2, 4, 8, 16)},
		pipeline.Parameter{Name: "seed", Kind: pipeline.Ordinal, Domain: ord(1, 2, 3, 4, 5)},
	)
	if err != nil {
		return nil, err
	}
	p := &Pipeline{Space: s}
	// Ground truth = the union of the stage crash conditions below.
	p.Truth = predicate.DNF{
		// Transform stage: building the finest spatio-temporal grid blows
		// the memory budget when the spatial index is disabled.
		predicate.And(
			predicate.T("use_spatial_index", predicate.Eq, pipeline.Cat("false")),
			predicate.T("temporal_resolution", predicate.Eq, pipeline.Cat("hour")),
			predicate.T("grid_size", predicate.Gt, pipeline.Ord(64)),
		),
		// Hypothesis-testing stage: permutation tests with zero
		// permutations divide by zero.
		predicate.And(
			predicate.T("significance_method", predicate.Eq, pipeline.Cat("permutation")),
			predicate.T("num_permutations", predicate.Le, pipeline.Ord(0)),
		),
	}.Canonical()
	for _, c := range p.Truth {
		m, err := predicate.Minimize(s, c, p.Truth)
		if err != nil {
			return nil, fmt.Errorf("polygamy: ground truth: %w", err)
		}
		p.Minimal = append(p.Minimal, m)
	}
	return p, nil
}

// Oracle simulates one experiment run: each stage inspects its parameters
// and crashes (Fail) under its planted condition; otherwise the run
// completes (Succeed). The stage structure mirrors the real pipeline; the
// evaluation procedure of Definition 2 is "did the execution crash".
func (p *Pipeline) Oracle() exec.Oracle {
	return exec.OracleFunc(func(_ context.Context, in pipeline.Instance) (pipeline.Outcome, error) {
		if err := p.clean(in); err != nil {
			return pipeline.Fail, nil
		}
		if err := p.transform(in); err != nil {
			return pipeline.Fail, nil
		}
		if err := p.identifyFeatures(in); err != nil {
			return pipeline.Fail, nil
		}
		if err := p.testHypotheses(in); err != nil {
			return pipeline.Fail, nil
		}
		return pipeline.Succeed, nil
	})
}

func value(in pipeline.Instance, name string) pipeline.Value {
	v, ok := in.ByName(name)
	if !ok {
		panic("polygamy: unknown parameter " + name)
	}
	return v
}

// clean simulates data cleaning; it never crashes in this configuration of
// the experiment, but validates its inputs the way the real stage does.
func (p *Pipeline) clean(in pipeline.Instance) error {
	if value(in, "num_datasets").Num() <= 0 {
		return fmt.Errorf("no datasets")
	}
	return nil
}

// transform simulates the spatio-temporal scaling stage.
func (p *Pipeline) transform(in pipeline.Instance) error {
	noIndex := value(in, "use_spatial_index").Str() == "false"
	hourly := value(in, "temporal_resolution").Str() == "hour"
	grid := value(in, "grid_size").Num()
	if noIndex && hourly && grid > 64 {
		return fmt.Errorf("out of memory: %0.f x hourly grid without index", grid)
	}
	return nil
}

// identifyFeatures simulates feature identification; thresholds in (0, 1)
// are always valid in this experiment's domain.
func (p *Pipeline) identifyFeatures(in pipeline.Instance) error {
	thr := value(in, "feature_threshold").Num()
	if thr <= 0 || thr >= 1 {
		return fmt.Errorf("invalid threshold %v", thr)
	}
	return nil
}

// testHypotheses simulates the multiple-hypothesis-testing stage.
func (p *Pipeline) testHypotheses(in pipeline.Instance) error {
	method := value(in, "significance_method").Str()
	perms := value(in, "num_permutations").Num()
	if method == "permutation" && perms <= 0 {
		return fmt.Errorf("division by zero: permutation test with %0.f permutations", perms)
	}
	return nil
}
