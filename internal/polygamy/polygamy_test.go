package polygamy

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/predicate"
)

func TestNewSpaceShape(t *testing.T) {
	p, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if p.Space.Len() != 12 {
		t.Fatalf("space has %d parameters, want 12 (2 boolean + 3 categorical + 7 numerical)", p.Space.Len())
	}
	booleans, categoricals, numericals := 0, 0, 0
	for i := 0; i < p.Space.Len(); i++ {
		param := p.Space.At(i)
		switch {
		case param.Kind == pipeline.Categorical && len(param.Domain) == 2:
			booleans++
		case param.Kind == pipeline.Categorical:
			categoricals++
			if len(param.Domain) < 3 || len(param.Domain) > 10 {
				t.Fatalf("categorical %q has %d values, want 3..10", param.Name, len(param.Domain))
			}
		default:
			numericals++
		}
	}
	if booleans != 2 || categoricals != 3 || numericals != 7 {
		t.Fatalf("parameter mix = %d boolean, %d categorical, %d numerical", booleans, categoricals, numericals)
	}
}

// The staged oracle must agree with the declared ground truth everywhere
// (sampled; full enumeration is 7.5M instances).
func TestOracleMatchesGroundTruth(t *testing.T) {
	p, err := New()
	if err != nil {
		t.Fatal(err)
	}
	oracle := p.Oracle()
	r := rand.New(rand.NewSource(1))
	sawFail := false
	for i := 0; i < 5000; i++ {
		in := p.Space.RandomInstance(r)
		out, err := oracle.Run(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		want := pipeline.Succeed
		if p.Truth.Satisfied(in) {
			want = pipeline.Fail
		}
		if out != want {
			t.Fatalf("oracle(%v) = %v, want %v", in, out, want)
		}
		if out == pipeline.Fail {
			sawFail = true
		}
	}
	if !sawFail {
		// Force a failing configuration to make sure crashes are reachable.
		in, ok := failingInstance(t, p)
		if !ok {
			t.Fatal("ground truth region is empty")
		}
		out, err := oracle.Run(context.Background(), in)
		if err != nil || out != pipeline.Fail {
			t.Fatalf("forced failing instance = %v, %v", out, err)
		}
	}
}

func failingInstance(t *testing.T, p *Pipeline) (pipeline.Instance, bool) {
	t.Helper()
	reg, err := predicate.RegionOf(p.Space, p.Truth[0])
	if err != nil {
		t.Fatal(err)
	}
	return reg.AnyInstance()
}

func TestGroundTruthMinimal(t *testing.T) {
	p, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Minimal) != len(p.Truth) {
		t.Fatalf("minimal causes = %d, truth conjuncts = %d", len(p.Minimal), len(p.Truth))
	}
	for _, m := range p.Minimal {
		minimal, err := predicate.Minimal(p.Space, m, p.Truth)
		if err != nil {
			t.Fatal(err)
		}
		if !minimal {
			t.Fatalf("ground-truth cause %v is not minimal", m)
		}
	}
}

func TestCrashesAreRare(t *testing.T) {
	// The crash region must be a small fraction of the space, as with the
	// real pipeline (otherwise seeding and debugging are trivial).
	p, err := New()
	if err != nil {
		t.Fatal(err)
	}
	total, _ := p.Space.NumInstances()
	var failCount uint64
	for _, c := range p.Truth {
		reg, err := predicate.RegionOf(p.Space, c)
		if err != nil {
			t.Fatal(err)
		}
		n, _ := reg.Count()
		failCount += n
	}
	if frac := float64(failCount) / float64(total); frac > 0.10 {
		t.Fatalf("crash region covers %.1f%% of the space, want < 10%%", 100*frac)
	}
}
