package predicate

import (
	"sort"
	"strings"

	"repro/internal/pipeline"
)

// Conjunction is a Boolean conjunction of triples — the shape of a
// hypothetical or definitive root cause (Definition 3). The empty
// conjunction is satisfied by every instance.
type Conjunction []Triple

// And builds a conjunction from triples.
func And(ts ...Triple) Conjunction { return Conjunction(ts) }

// FromAssignments converts a list of (parameter, value) pairs into the
// equality conjunction asserting exactly those pairs — the form produced by
// the Shortcut algorithm, whose root causes are parameter-equality-value sets.
func FromAssignments(as []pipeline.Assignment) Conjunction {
	c := make(Conjunction, len(as))
	for i, a := range as {
		c[i] = Triple{Param: a.Param, Cmp: Eq, Value: a.Value}
	}
	return c
}

// Satisfied reports whether the instance satisfies every triple.
func (c Conjunction) Satisfied(in pipeline.Instance) bool {
	for _, t := range c {
		if !t.Satisfied(in) {
			return false
		}
	}
	return true
}

// Validate checks every triple against the space.
func (c Conjunction) Validate(s *pipeline.Space) error {
	for _, t := range c {
		if err := t.Validate(s); err != nil {
			return err
		}
	}
	return nil
}

// Params returns the distinct parameter names mentioned, sorted.
func (c Conjunction) Params() []string {
	seen := make(map[string]bool, len(c))
	var out []string
	for _, t := range c {
		if !seen[t.Param] {
			seen[t.Param] = true
			out = append(out, t.Param)
		}
	}
	sort.Strings(out)
	return out
}

// Canonical returns a sorted, duplicate-free copy of the conjunction.
// Canonical forms make syntactic comparison deterministic; use Equivalent
// for semantic comparison.
func (c Conjunction) Canonical() Conjunction {
	out := make(Conjunction, len(c))
	copy(out, c)
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	dedup := out[:0]
	for i, t := range out {
		if i == 0 || t != out[i-1] {
			dedup = append(dedup, t)
		}
	}
	return dedup
}

// EqualSyntactic reports whether the canonical forms are identical.
func (c Conjunction) EqualSyntactic(o Conjunction) bool {
	a, b := c.Canonical(), o.Canonical()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Without returns a copy of the conjunction with the i-th triple removed.
func (c Conjunction) Without(i int) Conjunction {
	out := make(Conjunction, 0, len(c)-1)
	out = append(out, c[:i]...)
	out = append(out, c[i+1:]...)
	return out
}

// Clone returns a copy that shares no storage with c.
func (c Conjunction) Clone() Conjunction {
	out := make(Conjunction, len(c))
	copy(out, c)
	return out
}

// String renders the conjunction as "t1 AND t2 AND ...", or "TRUE" when
// empty.
func (c Conjunction) String() string {
	if len(c) == 0 {
		return "TRUE"
	}
	parts := make([]string, len(c))
	for i, t := range c {
		parts[i] = t.String()
	}
	return strings.Join(parts, " AND ")
}
