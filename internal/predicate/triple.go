// Package predicate implements the explanation language of BugDoc:
// parameter-comparator-value triples, conjunctions of triples (hypothetical
// and definitive root causes, Definitions 3-5), and disjunctions of
// conjunctions (DNF) for multi-cause explanations.
//
// Beyond satisfaction tests, the package provides an exact region algebra
// over the finite parameter domains of a pipeline.Space. Every conjunction
// denotes a region (a per-parameter subset of each domain); regions make
// satisfiability, implication, equivalence, definitiveness and minimality
// decidable, which the debugging algorithms and the evaluation metrics both
// rely on.
package predicate

import (
	"fmt"

	"repro/internal/pipeline"
)

// Comparator is the comparison operator of a triple. The paper's comparator
// set is C = {=, ≤, >, ≠}; categorical parameters admit only Eq and Neq.
type Comparator uint8

const (
	// Eq tests parameter == value.
	Eq Comparator = iota + 1
	// Neq tests parameter != value.
	Neq
	// Le tests parameter <= value (ordinal parameters only).
	Le
	// Gt tests parameter > value (ordinal parameters only).
	Gt
)

// String renders the comparator in ASCII ("=", "!=", "<=", ">").
func (c Comparator) String() string {
	switch c {
	case Eq:
		return "="
	case Neq:
		return "!="
	case Le:
		return "<="
	case Gt:
		return ">"
	default:
		return fmt.Sprintf("Comparator(%d)", uint8(c))
	}
}

// ParseComparator is the inverse of String.
func ParseComparator(s string) (Comparator, error) {
	switch s {
	case "=":
		return Eq, nil
	case "!=":
		return Neq, nil
	case "<=":
		return Le, nil
	case ">":
		return Gt, nil
	default:
		return 0, fmt.Errorf("predicate: unknown comparator %q", s)
	}
}

// Negate returns the comparator selecting exactly the complementary values:
// Eq<->Neq and Le<->Gt. Negation is its own inverse.
func (c Comparator) Negate() Comparator {
	switch c {
	case Eq:
		return Neq
	case Neq:
		return Eq
	case Le:
		return Gt
	case Gt:
		return Le
	default:
		panic("predicate: negate of invalid comparator")
	}
}

// Triple is one parameter-comparator-value condition, e.g. "A > 5".
type Triple struct {
	Param string
	Cmp   Comparator
	Value pipeline.Value
}

// T is shorthand for constructing a Triple.
func T(param string, cmp Comparator, v pipeline.Value) Triple {
	return Triple{Param: param, Cmp: cmp, Value: v}
}

// Validate checks the triple against a space: the parameter must exist, the
// value kind must match, and ordering comparators require an ordinal
// parameter.
func (t Triple) Validate(s *pipeline.Space) error {
	i, ok := s.Index(t.Param)
	if !ok {
		return fmt.Errorf("predicate: unknown parameter %q", t.Param)
	}
	p := s.At(i)
	if t.Value.Kind() != p.Kind {
		return fmt.Errorf("predicate: parameter %q (%v) compared with %v value %v",
			t.Param, p.Kind, t.Value.Kind(), t.Value)
	}
	switch t.Cmp {
	case Eq, Neq:
	case Le, Gt:
		if p.Kind != pipeline.Ordinal {
			return fmt.Errorf("predicate: comparator %v requires ordinal parameter, %q is %v",
				t.Cmp, t.Param, p.Kind)
		}
	default:
		return fmt.Errorf("predicate: invalid comparator in %v", t)
	}
	return nil
}

// Holds reports whether a single value satisfies the triple's comparison.
// The value must have the same kind as the triple's value.
func (t Triple) Holds(v pipeline.Value) bool {
	switch t.Cmp {
	case Eq:
		return v == t.Value
	case Neq:
		return v != t.Value
	case Le:
		return v.Num() <= t.Value.Num()
	case Gt:
		return v.Num() > t.Value.Num()
	default:
		panic("predicate: Holds on invalid comparator")
	}
}

// Satisfied reports whether instance in satisfies the triple. Unknown
// parameters do not satisfy anything.
func (t Triple) Satisfied(in pipeline.Instance) bool {
	v, ok := in.ByName(t.Param)
	if !ok {
		return false
	}
	return t.Holds(v)
}

// Negated returns the triple selecting the complementary set of values.
func (t Triple) Negated() Triple {
	return Triple{Param: t.Param, Cmp: t.Cmp.Negate(), Value: t.Value}
}

// Less orders triples canonically: by parameter, then comparator, then value.
func (t Triple) Less(o Triple) bool {
	if t.Param != o.Param {
		return t.Param < o.Param
	}
	if t.Cmp != o.Cmp {
		return t.Cmp < o.Cmp
	}
	return t.Value.Less(o.Value)
}

// String renders the triple as "param cmp value".
func (t Triple) String() string {
	return fmt.Sprintf("%s %s %s", t.Param, t.Cmp, t.Value)
}
