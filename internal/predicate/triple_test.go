package predicate

import (
	"testing"

	"repro/internal/pipeline"
)

func ordDomain(vals ...float64) []pipeline.Value {
	out := make([]pipeline.Value, len(vals))
	for i, v := range vals {
		out[i] = pipeline.Ord(v)
	}
	return out
}

func catDomain(vals ...string) []pipeline.Value {
	out := make([]pipeline.Value, len(vals))
	for i, v := range vals {
		out[i] = pipeline.Cat(v)
	}
	return out
}

func testSpace(t *testing.T) *pipeline.Space {
	t.Helper()
	return pipeline.MustSpace(
		pipeline.Parameter{Name: "p1", Kind: pipeline.Ordinal, Domain: ordDomain(1, 2, 3, 4)},
		pipeline.Parameter{Name: "p2", Kind: pipeline.Categorical, Domain: catDomain("a", "b", "c")},
		pipeline.Parameter{Name: "p3", Kind: pipeline.Ordinal, Domain: ordDomain(10, 20)},
	)
}

func TestComparatorStringParse(t *testing.T) {
	for _, c := range []Comparator{Eq, Neq, Le, Gt} {
		got, err := ParseComparator(c.String())
		if err != nil || got != c {
			t.Fatalf("round trip of %v: got %v, err %v", c, got, err)
		}
	}
	if _, err := ParseComparator("=="); err == nil {
		t.Fatal("unknown comparator must fail")
	}
}

func TestComparatorNegateInvolution(t *testing.T) {
	for _, c := range []Comparator{Eq, Neq, Le, Gt} {
		if c.Negate().Negate() != c {
			t.Fatalf("Negate not involutive for %v", c)
		}
	}
}

func TestTripleHolds(t *testing.T) {
	cases := []struct {
		tr   Triple
		v    pipeline.Value
		want bool
	}{
		{T("p1", Eq, pipeline.Ord(3)), pipeline.Ord(3), true},
		{T("p1", Eq, pipeline.Ord(3)), pipeline.Ord(2), false},
		{T("p1", Neq, pipeline.Ord(3)), pipeline.Ord(2), true},
		{T("p1", Le, pipeline.Ord(3)), pipeline.Ord(3), true},
		{T("p1", Le, pipeline.Ord(3)), pipeline.Ord(4), false},
		{T("p1", Gt, pipeline.Ord(3)), pipeline.Ord(4), true},
		{T("p1", Gt, pipeline.Ord(3)), pipeline.Ord(3), false},
		{T("p2", Eq, pipeline.Cat("a")), pipeline.Cat("a"), true},
		{T("p2", Neq, pipeline.Cat("a")), pipeline.Cat("b"), true},
	}
	for _, c := range cases {
		if got := c.tr.Holds(c.v); got != c.want {
			t.Errorf("%v.Holds(%v) = %v, want %v", c.tr, c.v, got, c.want)
		}
	}
}

func TestTripleNegatedComplement(t *testing.T) {
	s := testSpace(t)
	triples := []Triple{
		T("p1", Eq, pipeline.Ord(2)),
		T("p1", Neq, pipeline.Ord(2)),
		T("p1", Le, pipeline.Ord(2)),
		T("p1", Gt, pipeline.Ord(2)),
		T("p2", Eq, pipeline.Cat("b")),
	}
	for _, tr := range triples {
		neg := tr.Negated()
		for _, v := range s.Domain(tr.Param) {
			if tr.Holds(v) == neg.Holds(v) {
				t.Errorf("%v and %v agree on %v", tr, neg, v)
			}
		}
	}
}

func TestTripleValidate(t *testing.T) {
	s := testSpace(t)
	good := []Triple{
		T("p1", Le, pipeline.Ord(2)),
		T("p2", Neq, pipeline.Cat("a")),
	}
	for _, tr := range good {
		if err := tr.Validate(s); err != nil {
			t.Errorf("Validate(%v) = %v", tr, err)
		}
	}
	bad := []Triple{
		T("zz", Eq, pipeline.Ord(1)),          // unknown parameter
		T("p1", Eq, pipeline.Cat("x")),        // kind mismatch
		T("p2", Le, pipeline.Cat("a")),        // ordering on categorical
		{Param: "p1", Value: pipeline.Ord(1)}, // invalid comparator
	}
	for _, tr := range bad {
		if err := tr.Validate(s); err == nil {
			t.Errorf("Validate(%v) succeeded, want error", tr)
		}
	}
}

func TestTripleSatisfied(t *testing.T) {
	s := testSpace(t)
	in := pipeline.MustInstance(s, pipeline.Ord(2), pipeline.Cat("b"), pipeline.Ord(10))
	if !T("p1", Le, pipeline.Ord(2)).Satisfied(in) {
		t.Fatal("p1 <= 2 should hold")
	}
	if T("p1", Gt, pipeline.Ord(2)).Satisfied(in) {
		t.Fatal("p1 > 2 should not hold")
	}
	if T("zz", Eq, pipeline.Ord(1)).Satisfied(in) {
		t.Fatal("unknown parameter never satisfied")
	}
}

func TestTripleString(t *testing.T) {
	if got := T("p1", Le, pipeline.Ord(3)).String(); got != "p1 <= 3" {
		t.Fatalf("String = %q", got)
	}
	if got := T("p2", Neq, pipeline.Cat("a")).String(); got != `p2 != "a"` {
		t.Fatalf("String = %q", got)
	}
}
