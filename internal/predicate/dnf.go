package predicate

import (
	"sort"
	"strings"

	"repro/internal/pipeline"
)

// DNF is a disjunction of conjunctions — the shape of a multi-cause
// explanation ("BugDoc can also discover disjunctive combinations of
// configurations that lead to failure"). The empty DNF is unsatisfiable.
type DNF []Conjunction

// Or builds a DNF from conjunctions.
func Or(cs ...Conjunction) DNF { return DNF(cs) }

// Satisfied reports whether the instance satisfies at least one conjunct.
func (d DNF) Satisfied(in pipeline.Instance) bool {
	for _, c := range d {
		if c.Satisfied(in) {
			return true
		}
	}
	return false
}

// Validate checks every conjunct against the space.
func (d DNF) Validate(s *pipeline.Space) error {
	for _, c := range d {
		if err := c.Validate(s); err != nil {
			return err
		}
	}
	return nil
}

// Canonical returns a copy with each conjunct canonicalized, syntactic
// duplicates removed, and conjuncts sorted deterministically.
func (d DNF) Canonical() DNF {
	out := make(DNF, 0, len(d))
	for _, c := range d {
		out = append(out, c.Canonical())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	dedup := out[:0]
	for i, c := range out {
		if i == 0 || c.String() != out[i-1].String() {
			dedup = append(dedup, c)
		}
	}
	return dedup
}

// Clone returns a deep copy of the DNF.
func (d DNF) Clone() DNF {
	out := make(DNF, len(d))
	for i, c := range d {
		out[i] = c.Clone()
	}
	return out
}

// String renders the DNF as "(c1) OR (c2) OR ...", or "FALSE" when empty.
func (d DNF) String() string {
	if len(d) == 0 {
		return "FALSE"
	}
	parts := make([]string, len(d))
	for i, c := range d {
		parts[i] = "(" + c.String() + ")"
	}
	return strings.Join(parts, " OR ")
}
