package predicate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pipeline"
)

func TestSimplifyMergesComplementaryTriples(t *testing.T) {
	s := testSpace(t)
	// (p1<=2 AND p2=a) OR (p1>2 AND p2=a) == p2=a.
	d := Or(
		And(T("p1", Le, pipeline.Ord(2)), T("p2", Eq, pipeline.Cat("a"))),
		And(T("p1", Gt, pipeline.Ord(2)), T("p2", Eq, pipeline.Cat("a"))),
	)
	got, err := SimplifyDNF(s, d)
	if err != nil {
		t.Fatal(err)
	}
	want := Or(And(T("p2", Eq, pipeline.Cat("a"))))
	if len(got) != 1 || !got[0].EqualSyntactic(want[0]) {
		t.Fatalf("SimplifyDNF = %v, want %v", got, want)
	}
}

func TestSimplifyAbsorption(t *testing.T) {
	s := testSpace(t)
	// p1=2 is inside p1<=3: the longer conjunct must be absorbed.
	d := Or(
		And(T("p1", Le, pipeline.Ord(3))),
		And(T("p1", Eq, pipeline.Ord(2)), T("p2", Eq, pipeline.Cat("b"))),
	)
	got, err := SimplifyDNF(s, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !got[0].EqualSyntactic(And(T("p1", Le, pipeline.Ord(3)))) {
		t.Fatalf("SimplifyDNF = %v", got)
	}
}

func TestSimplifyDropsUnsatisfiable(t *testing.T) {
	s := testSpace(t)
	d := Or(
		And(T("p1", Gt, pipeline.Ord(4))), // empty on domain {1..4}
		And(T("p2", Eq, pipeline.Cat("b"))),
	)
	got, err := SimplifyDNF(s, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0][0].Param != "p2" {
		t.Fatalf("SimplifyDNF = %v", got)
	}
}

func TestSimplifyLiteralReduction(t *testing.T) {
	s := testSpace(t)
	// p1 <= 4 covers the whole domain: the triple is vacuous inside a
	// conjunction with a real constraint.
	d := Or(And(T("p1", Le, pipeline.Ord(4)), T("p2", Eq, pipeline.Cat("c"))))
	got, err := SimplifyDNF(s, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0]) != 1 || got[0][0].Param != "p2" {
		t.Fatalf("SimplifyDNF = %v", got)
	}
}

func TestSimplifyEmptyAndFalse(t *testing.T) {
	s := testSpace(t)
	got, err := SimplifyDNF(s, DNF{})
	if err != nil || len(got) != 0 {
		t.Fatalf("SimplifyDNF(FALSE) = %v, %v", got, err)
	}
	got, err = SimplifyDNF(s, Or(And(T("p1", Gt, pipeline.Ord(4)))))
	if err != nil || len(got) != 0 {
		t.Fatalf("unsatisfiable DNF must simplify to FALSE: %v, %v", got, err)
	}
}

func TestSimplifyBinaryUsesClassicQMC(t *testing.T) {
	// All-binary parameters: the classic QMC path produces the exact
	// two-level minimum a=1 (from (a=1,b=0) OR (a=1,b=1)).
	s := pipeline.MustSpace(
		pipeline.Parameter{Name: "a", Kind: pipeline.Ordinal, Domain: ordDomain(0, 1)},
		pipeline.Parameter{Name: "b", Kind: pipeline.Ordinal, Domain: ordDomain(0, 1)},
	)
	d := Or(
		And(T("a", Eq, pipeline.Ord(1)), T("b", Eq, pipeline.Ord(0))),
		And(T("a", Eq, pipeline.Ord(1)), T("b", Eq, pipeline.Ord(1))),
	)
	got, err := SimplifyDNF(s, d)
	if err != nil {
		t.Fatal(err)
	}
	want := And(T("a", Eq, pipeline.Ord(1)))
	if len(got) != 1 || !got[0].EqualSyntactic(want) {
		t.Fatalf("SimplifyDNF = %v, want (%v)", got, want)
	}
}

// Property: simplification preserves semantics and never grows the number
// of conjuncts.
func TestSimplifyPreservesEquivalence(t *testing.T) {
	s := testSpace(t)
	r := rand.New(rand.NewSource(31))
	pool := []Triple{
		T("p1", Eq, pipeline.Ord(2)),
		T("p1", Le, pipeline.Ord(2)),
		T("p1", Gt, pipeline.Ord(2)),
		T("p1", Le, pipeline.Ord(3)),
		T("p1", Neq, pipeline.Ord(1)),
		T("p2", Eq, pipeline.Cat("a")),
		T("p2", Eq, pipeline.Cat("b")),
		T("p2", Neq, pipeline.Cat("c")),
		T("p3", Le, pipeline.Ord(10)),
		T("p3", Gt, pipeline.Ord(10)),
	}
	f := func() bool {
		nConj := 1 + r.Intn(4)
		var d DNF
		for i := 0; i < nConj; i++ {
			var c Conjunction
			for _, tr := range pool {
				if r.Intn(5) == 0 {
					c = append(c, tr)
				}
			}
			d = append(d, c)
		}
		got, err := SimplifyDNF(s, d)
		if err != nil {
			return false
		}
		if len(got) > len(d) {
			return false
		}
		eq, err := EquivalentDNF(s, got, d)
		return err == nil && eq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// Property on an all-binary space: SimplifyDNF output is equivalent to the
// input (exercised through the classic QMC path).
func TestSimplifyBinaryEquivalenceProperty(t *testing.T) {
	s := pipeline.MustSpace(
		pipeline.Parameter{Name: "a", Kind: pipeline.Ordinal, Domain: ordDomain(0, 1)},
		pipeline.Parameter{Name: "b", Kind: pipeline.Ordinal, Domain: ordDomain(0, 1)},
		pipeline.Parameter{Name: "c", Kind: pipeline.Ordinal, Domain: ordDomain(0, 1)},
	)
	r := rand.New(rand.NewSource(37))
	names := []string{"a", "b", "c"}
	f := func() bool {
		var d DNF
		for i := 0; i < 1+r.Intn(3); i++ {
			var c Conjunction
			for _, n := range names {
				switch r.Intn(3) {
				case 0:
					c = append(c, T(n, Eq, pipeline.Ord(float64(r.Intn(2)))))
				case 1:
					c = append(c, T(n, Neq, pipeline.Ord(float64(r.Intn(2)))))
				}
			}
			d = append(d, c)
		}
		got, err := SimplifyDNF(s, d)
		if err != nil {
			return false
		}
		eq, err := EquivalentDNF(s, got, d)
		return err == nil && eq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func TestConjunctionCanonicalAndString(t *testing.T) {
	c := And(
		T("p2", Eq, pipeline.Cat("a")),
		T("p1", Le, pipeline.Ord(3)),
		T("p2", Eq, pipeline.Cat("a")), // duplicate
	)
	canon := c.Canonical()
	if len(canon) != 2 {
		t.Fatalf("Canonical = %v", canon)
	}
	if canon[0].Param != "p1" {
		t.Fatalf("Canonical not sorted: %v", canon)
	}
	if Conjunction(nil).String() != "TRUE" {
		t.Fatal("empty conjunction renders TRUE")
	}
	if DNF(nil).String() != "FALSE" {
		t.Fatal("empty DNF renders FALSE")
	}
	got := Or(And(T("p1", Eq, pipeline.Ord(1)))).String()
	if got != "(p1 = 1)" {
		t.Fatalf("DNF String = %q", got)
	}
}

func TestDNFCanonicalDedup(t *testing.T) {
	d := Or(
		And(T("p1", Eq, pipeline.Ord(1))),
		And(T("p1", Eq, pipeline.Ord(1))),
		And(T("p1", Eq, pipeline.Ord(2))),
	)
	if got := d.Canonical(); len(got) != 2 {
		t.Fatalf("Canonical dedup = %v", got)
	}
}

func TestConjunctionParams(t *testing.T) {
	c := And(
		T("z", Eq, pipeline.Ord(1)),
		T("a", Eq, pipeline.Ord(1)),
		T("z", Neq, pipeline.Ord(2)),
	)
	got := c.Params()
	if len(got) != 2 || got[0] != "a" || got[1] != "z" {
		t.Fatalf("Params = %v", got)
	}
}
