package predicate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pipeline"
)

func TestSatisfiable(t *testing.T) {
	s := testSpace(t)
	ok, err := Satisfiable(s, And(T("p1", Le, pipeline.Ord(2))))
	if err != nil || !ok {
		t.Fatalf("satisfiable: %v, %v", ok, err)
	}
	ok, err = Satisfiable(s, And(T("p1", Gt, pipeline.Ord(4))))
	if err != nil || ok {
		t.Fatalf("p1 > 4 must be unsatisfiable: %v, %v", ok, err)
	}
}

func TestImpliesBasics(t *testing.T) {
	s := testSpace(t)
	c := And(T("p1", Eq, pipeline.Ord(2)))
	d := Or(And(T("p1", Le, pipeline.Ord(3))))
	ok, err := Implies(s, c, d)
	if err != nil || !ok {
		t.Fatalf("p1=2 must imply p1<=3: %v, %v", ok, err)
	}
	ok, err = Implies(s, And(T("p1", Le, pipeline.Ord(3))), Or(c))
	if err != nil || ok {
		t.Fatalf("p1<=3 must not imply p1=2: %v, %v", ok, err)
	}
	// Empty DNF is FALSE: only unsatisfiable conjunctions imply it.
	ok, err = Implies(s, c, DNF{})
	if err != nil || ok {
		t.Fatal("satisfiable conjunction cannot imply FALSE")
	}
	ok, err = Implies(s, And(T("p1", Gt, pipeline.Ord(4))), DNF{})
	if err != nil || !ok {
		t.Fatal("unsatisfiable conjunction implies everything")
	}
}

func TestImpliesDisjunctionSplit(t *testing.T) {
	s := testSpace(t)
	// p1 <= 4 is the whole domain, which is covered by p1<=2 OR p1>2 even
	// though neither disjunct alone covers it.
	c := And(T("p1", Le, pipeline.Ord(4)))
	d := Or(And(T("p1", Le, pipeline.Ord(2))), And(T("p1", Gt, pipeline.Ord(2))))
	ok, err := Implies(s, c, d)
	if err != nil || !ok {
		t.Fatalf("domain must be covered by the split: %v, %v", ok, err)
	}
	// But not by p1<=2 OR p1>3 (value 3 escapes).
	d2 := Or(And(T("p1", Le, pipeline.Ord(2))), And(T("p1", Gt, pipeline.Ord(3))))
	ok, err = Implies(s, c, d2)
	if err != nil || ok {
		t.Fatalf("value 3 escapes the cover: %v, %v", ok, err)
	}
}

// Implies must agree with brute-force enumeration.
func TestImpliesAgainstBruteForce(t *testing.T) {
	s := testSpace(t)
	r := rand.New(rand.NewSource(17))
	pool := []Triple{
		T("p1", Eq, pipeline.Ord(2)),
		T("p1", Le, pipeline.Ord(3)),
		T("p1", Gt, pipeline.Ord(1)),
		T("p1", Neq, pipeline.Ord(4)),
		T("p2", Eq, pipeline.Cat("a")),
		T("p2", Neq, pipeline.Cat("b")),
		T("p3", Le, pipeline.Ord(10)),
		T("p3", Gt, pipeline.Ord(10)),
	}
	randConj := func(max int) Conjunction {
		var c Conjunction
		for _, tr := range pool {
			if len(c) < max && r.Intn(4) == 0 {
				c = append(c, tr)
			}
		}
		return c
	}
	f := func() bool {
		c := randConj(3)
		d := DNF{randConj(2), randConj(2)}
		got, err := Implies(s, c, d)
		if err != nil {
			return false
		}
		want := true
		s.Enumerate(func(in pipeline.Instance) bool {
			if c.Satisfied(in) && !d.Satisfied(in) {
				want = false
				return false
			}
			return true
		})
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestEquivalent(t *testing.T) {
	s := testSpace(t)
	// On domain {1,2,3,4}: p1 <= 2 is the same set as p1 != 3 AND p1 != 4.
	a := And(T("p1", Le, pipeline.Ord(2)))
	b := And(T("p1", Neq, pipeline.Ord(3)), T("p1", Neq, pipeline.Ord(4)))
	ok, err := Equivalent(s, a, b)
	if err != nil || !ok {
		t.Fatalf("expected equivalence: %v, %v", ok, err)
	}
	ok, err = Equivalent(s, a, And(T("p1", Le, pipeline.Ord(3))))
	if err != nil || ok {
		t.Fatalf("expected non-equivalence: %v, %v", ok, err)
	}
}

func TestDefinitiveAndMinimal(t *testing.T) {
	s := testSpace(t)
	truth := Or(
		And(T("p1", Eq, pipeline.Ord(4))),
		And(T("p2", Eq, pipeline.Cat("b")), T("p3", Gt, pipeline.Ord(10))),
	)
	// p1=4 is definitive and minimal.
	def, err := Definitive(s, And(T("p1", Eq, pipeline.Ord(4))), truth)
	if err != nil || !def {
		t.Fatalf("p1=4 must be definitive: %v, %v", def, err)
	}
	min, err := Minimal(s, And(T("p1", Eq, pipeline.Ord(4))), truth)
	if err != nil || !min {
		t.Fatalf("p1=4 must be minimal: %v, %v", min, err)
	}
	// p1=4 AND p2=a is definitive but not minimal.
	c := And(T("p1", Eq, pipeline.Ord(4)), T("p2", Eq, pipeline.Cat("a")))
	def, err = Definitive(s, c, truth)
	if err != nil || !def {
		t.Fatalf("superset must stay definitive: %v, %v", def, err)
	}
	min, err = Minimal(s, c, truth)
	if err != nil || min {
		t.Fatalf("superset must not be minimal: %v, %v", min, err)
	}
	// p2=b alone is not definitive (needs p3>10).
	def, err = Definitive(s, And(T("p2", Eq, pipeline.Cat("b"))), truth)
	if err != nil || def {
		t.Fatalf("p2=b alone must not be definitive: %v, %v", def, err)
	}
	// The second conjunct is definitive and minimal.
	min, err = Minimal(s, And(T("p2", Eq, pipeline.Cat("b")), T("p3", Gt, pipeline.Ord(10))), truth)
	if err != nil || !min {
		t.Fatalf("second conjunct must be minimal: %v, %v", min, err)
	}
	// Unsatisfiable conjunctions are never definitive.
	def, err = Definitive(s, And(T("p1", Gt, pipeline.Ord(4))), truth)
	if err != nil || def {
		t.Fatalf("unsatisfiable must not be definitive: %v, %v", def, err)
	}
}

func TestMinimize(t *testing.T) {
	s := testSpace(t)
	truth := Or(And(T("p1", Eq, pipeline.Ord(4))))
	c := And(
		T("p1", Eq, pipeline.Ord(4)),
		T("p2", Eq, pipeline.Cat("a")),
		T("p3", Le, pipeline.Ord(20)),
	)
	got, err := Minimize(s, c, truth)
	if err != nil {
		t.Fatal(err)
	}
	want := And(T("p1", Eq, pipeline.Ord(4)))
	if !got.EqualSyntactic(want) {
		t.Fatalf("Minimize = %v, want %v", got, want)
	}
	// Minimizing a non-definitive conjunction fails.
	if _, err := Minimize(s, And(T("p2", Eq, pipeline.Cat("a"))), truth); err == nil {
		t.Fatal("minimizing non-definitive conjunction must fail")
	}
}

func TestMinimalSubsets(t *testing.T) {
	s := testSpace(t)
	truth := Or(
		And(T("p1", Eq, pipeline.Ord(4))),
		And(T("p2", Eq, pipeline.Cat("b"))),
	)
	c := And(T("p1", Eq, pipeline.Ord(4)), T("p2", Eq, pipeline.Cat("b")), T("p3", Eq, pipeline.Ord(10)))
	subs, err := MinimalSubsets(s, c, truth)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2 {
		t.Fatalf("MinimalSubsets = %v, want the two singletons", subs)
	}
	for _, sub := range subs {
		if len(sub) != 1 {
			t.Fatalf("non-singleton minimal subset %v", sub)
		}
		min, err := Minimal(s, sub, truth)
		if err != nil || !min {
			t.Fatalf("subset %v not minimal: %v, %v", sub, min, err)
		}
	}
}

// Property: Minimize output is always Minimal, and supersets of definitive
// causes stay definitive (monotonicity used by the Minimal shortcut).
func TestMinimizeProducesMinimalProperty(t *testing.T) {
	s := testSpace(t)
	r := rand.New(rand.NewSource(23))
	truth := Or(
		And(T("p1", Eq, pipeline.Ord(4))),
		And(T("p2", Eq, pipeline.Cat("b")), T("p3", Gt, pipeline.Ord(10))),
	)
	pool := []Triple{
		T("p1", Eq, pipeline.Ord(4)),
		T("p2", Eq, pipeline.Cat("b")),
		T("p3", Gt, pipeline.Ord(10)),
		T("p3", Eq, pipeline.Ord(20)),
		T("p1", Neq, pipeline.Ord(1)),
		T("p2", Neq, pipeline.Cat("a")),
	}
	f := func() bool {
		var c Conjunction
		for _, tr := range pool {
			if r.Intn(2) == 0 {
				c = append(c, tr)
			}
		}
		def, err := Definitive(s, c, truth)
		if err != nil || !def {
			return true // property only constrains definitive inputs
		}
		m, err := Minimize(s, c, truth)
		if err != nil {
			return false
		}
		min, err := Minimal(s, m, truth)
		return err == nil && min
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEquivalentDNF(t *testing.T) {
	s := testSpace(t)
	d1 := Or(And(T("p1", Le, pipeline.Ord(2))), And(T("p1", Gt, pipeline.Ord(2))))
	d2 := Or(Conjunction{}) // TRUE
	ok, err := EquivalentDNF(s, d1, d2)
	if err != nil || !ok {
		t.Fatalf("split covers everything: %v, %v", ok, err)
	}
	d3 := Or(And(T("p1", Le, pipeline.Ord(2))))
	ok, err = EquivalentDNF(s, d1, d3)
	if err != nil || ok {
		t.Fatalf("expected non-equivalence: %v, %v", ok, err)
	}
}
