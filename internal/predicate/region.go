package predicate

import (
	"math"

	"repro/internal/pipeline"
)

// Region is the exact denotation of a conjunction over the finite domains
// of a space: for each parameter, the subset of its domain that the
// conjunction allows. A conjunction's satisfying instances are exactly the
// Cartesian product of the per-parameter allowed sets, which makes
// satisfiability, subset and equality tests cheap and exact.
//
// Regions only reason about domain values: instances carrying values
// outside the declared universe are never contained in any region.
type Region struct {
	space   *pipeline.Space
	allowed [][]bool // [param][domainIndex]
}

// FullRegion returns the region allowing every domain value of every
// parameter (the denotation of the empty conjunction).
func FullRegion(s *pipeline.Space) Region {
	allowed := make([][]bool, s.Len())
	for i := range allowed {
		row := make([]bool, len(s.At(i).Domain))
		for j := range row {
			row[j] = true
		}
		allowed[i] = row
	}
	return Region{space: s, allowed: allowed}
}

// RegionOf computes the region of a conjunction. Triples must validate
// against the space; an invalid triple yields an error rather than a bogus
// region.
func RegionOf(s *pipeline.Space, c Conjunction) (Region, error) {
	r := FullRegion(s)
	for _, t := range c {
		if err := t.Validate(s); err != nil {
			return Region{}, err
		}
		i, _ := s.Index(t.Param)
		dom := s.At(i).Domain
		for j, v := range dom {
			if r.allowed[i][j] && !t.Holds(v) {
				r.allowed[i][j] = false
			}
		}
	}
	return r, nil
}

// Space returns the space the region is defined over.
func (r Region) Space() *pipeline.Space { return r.space }

// Empty reports whether the region contains no instance (some parameter has
// no allowed value).
func (r Region) Empty() bool {
	for _, row := range r.allowed {
		any := false
		for _, ok := range row {
			if ok {
				any = true
				break
			}
		}
		if !any {
			return true
		}
	}
	return false
}

// Count returns the number of instances in the region, saturating at
// MaxUint64 (exact=false) on overflow.
func (r Region) Count() (n uint64, exact bool) {
	n = 1
	for _, row := range r.allowed {
		c := uint64(0)
		for _, ok := range row {
			if ok {
				c++
			}
		}
		if c != 0 && n > math.MaxUint64/c {
			return math.MaxUint64, false
		}
		n *= c
	}
	return n, true
}

// Contains reports whether the instance lies in the region. Instances with
// out-of-domain values are not contained.
func (r Region) Contains(in pipeline.Instance) bool {
	if in.Space() != r.space {
		return false
	}
	for i := range r.allowed {
		j := r.space.DomainIndex(i, in.Value(i))
		if j < 0 || !r.allowed[i][j] {
			return false
		}
	}
	return true
}

// Intersect returns the region of the conjunction of both regions'
// conditions. Both regions must be over the same space.
func (r Region) Intersect(o Region) Region {
	if r.space != o.space {
		panic("predicate: Intersect across spaces")
	}
	out := Region{space: r.space, allowed: make([][]bool, len(r.allowed))}
	for i := range r.allowed {
		row := make([]bool, len(r.allowed[i]))
		for j := range row {
			row[j] = r.allowed[i][j] && o.allowed[i][j]
		}
		out.allowed[i] = row
	}
	return out
}

// restrictNegated intersects the region, in place on a copy, with the
// complement of a single triple.
func (r Region) restrictNegated(t Triple) Region {
	return r.restrict(t.Negated())
}

// restrict intersects the region with a single triple's denotation.
func (r Region) restrict(t Triple) Region {
	i, ok := r.space.Index(t.Param)
	if !ok {
		// Unknown parameter: no instance satisfies the triple.
		out := r.clone()
		for j := range out.allowed {
			for k := range out.allowed[j] {
				out.allowed[j][k] = false
			}
		}
		return out
	}
	out := r.clone()
	dom := r.space.At(i).Domain
	for j, v := range dom {
		if out.allowed[i][j] && !t.Holds(v) {
			out.allowed[i][j] = false
		}
	}
	return out
}

func (r Region) clone() Region {
	out := Region{space: r.space, allowed: make([][]bool, len(r.allowed))}
	for i := range r.allowed {
		row := make([]bool, len(r.allowed[i]))
		copy(row, r.allowed[i])
		out.allowed[i] = row
	}
	return out
}

// SubsetOf reports whether every instance of r is in o. Because regions are
// Cartesian products, r ⊆ o iff r is empty or each per-parameter allowed
// set of r is a subset of o's.
func (r Region) SubsetOf(o Region) bool {
	if r.space != o.space {
		return false
	}
	if r.Empty() {
		return true
	}
	for i := range r.allowed {
		for j := range r.allowed[i] {
			if r.allowed[i][j] && !o.allowed[i][j] {
				return false
			}
		}
	}
	return true
}

// Equal reports whether the regions denote the same instance set.
func (r Region) Equal(o Region) bool {
	return r.SubsetOf(o) && o.SubsetOf(r)
}

// AnyInstance returns an arbitrary instance from the region (the first in
// domain order), or ok=false when the region is empty.
func (r Region) AnyInstance() (pipeline.Instance, bool) {
	vals := make([]pipeline.Value, r.space.Len())
	for i, row := range r.allowed {
		found := false
		for j, ok := range row {
			if ok {
				vals[i] = r.space.At(i).Domain[j]
				found = true
				break
			}
		}
		if !found {
			return pipeline.Instance{}, false
		}
	}
	in, err := pipeline.NewInstance(r.space, vals)
	if err != nil {
		return pipeline.Instance{}, false
	}
	return in, true
}

// AllowedValues returns the allowed domain values for the named parameter.
func (r Region) AllowedValues(param string) []pipeline.Value {
	i, ok := r.space.Index(param)
	if !ok {
		return nil
	}
	var out []pipeline.Value
	for j, allow := range r.allowed[i] {
		if allow {
			out = append(out, r.space.At(i).Domain[j])
		}
	}
	return out
}
