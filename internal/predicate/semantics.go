package predicate

import (
	"fmt"

	"repro/internal/pipeline"
)

// Satisfiable reports whether some domain instance satisfies the
// conjunction.
func Satisfiable(s *pipeline.Space, c Conjunction) (bool, error) {
	r, err := RegionOf(s, c)
	if err != nil {
		return false, err
	}
	return !r.Empty(), nil
}

// Implies reports whether every domain instance satisfying c also satisfies
// d, i.e. region(c) ⊆ ∪_j region(d_j). The union is not a Cartesian
// product, so coverage is decided by checking that c ∧ ¬d is unsatisfiable,
// expanding ¬d one conjunct at a time: for each conjunct D, ¬D is the
// disjunction of its negated triples, so we branch over them. The branching
// factor is ∏_j |d_j|, which is small for the explanation sizes BugDoc
// produces.
func Implies(s *pipeline.Space, c Conjunction, d DNF) (bool, error) {
	base, err := RegionOf(s, c)
	if err != nil {
		return false, err
	}
	if err := d.Validate(s); err != nil {
		return false, err
	}
	return coveredBy(base, d), nil
}

// coveredBy reports whether base ⊆ ∪_j region(d_j).
func coveredBy(base Region, d DNF) bool {
	if base.Empty() {
		return true
	}
	if len(d) == 0 {
		return false
	}
	// Fast path: a single conjunct that covers base outright.
	for _, c := range d {
		r, err := RegionOf(base.Space(), c)
		if err == nil && base.SubsetOf(r) {
			return true
		}
	}
	// Branch over the negation of the first conjunct.
	first, rest := d[0], d[1:]
	if len(first) == 0 {
		// Empty conjunct is TRUE: covers everything.
		return true
	}
	for _, t := range first {
		if !coveredBy(base.restrictNegated(t), rest) {
			return false
		}
	}
	return true
}

// ImpliesDNF reports whether d1 implies d2 over the domains: every conjunct
// of d1 must be covered by d2.
func ImpliesDNF(s *pipeline.Space, d1, d2 DNF) (bool, error) {
	for _, c := range d1 {
		ok, err := Implies(s, c, d2)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// Equivalent reports whether two conjunctions denote the same region.
func Equivalent(s *pipeline.Space, c1, c2 Conjunction) (bool, error) {
	r1, err := RegionOf(s, c1)
	if err != nil {
		return false, err
	}
	r2, err := RegionOf(s, c2)
	if err != nil {
		return false, err
	}
	return r1.Equal(r2), nil
}

// EquivalentDNF reports whether two DNFs denote the same instance set.
func EquivalentDNF(s *pipeline.Space, d1, d2 DNF) (bool, error) {
	fwd, err := ImpliesDNF(s, d1, d2)
	if err != nil || !fwd {
		return false, err
	}
	return ImpliesDNF(s, d2, d1)
}

// Definitive reports whether c is a definitive root cause of failure with
// respect to the ground-truth failure condition truth (Definition 4): c is
// satisfiable, and every domain instance satisfying c fails.
func Definitive(s *pipeline.Space, c Conjunction, truth DNF) (bool, error) {
	sat, err := Satisfiable(s, c)
	if err != nil {
		return false, err
	}
	if !sat {
		return false, nil
	}
	return Implies(s, c, truth)
}

// Minimal reports whether c is a minimal definitive root cause with respect
// to truth (Definition 5): definitive, and no proper subset is definitive.
// Because adding triples only shrinks a region, any definitive proper
// subset would make some (|c|-1)-subset definitive too, so checking the
// one-triple-removed subsets suffices.
func Minimal(s *pipeline.Space, c Conjunction, truth DNF) (bool, error) {
	c = c.Canonical()
	def, err := Definitive(s, c, truth)
	if err != nil || !def {
		return false, err
	}
	for i := range c {
		sub := c.Without(i)
		subDef, err := Definitive(s, sub, truth)
		if err != nil {
			return false, err
		}
		if subDef {
			return false, nil
		}
	}
	return true, nil
}

// Minimize greedily removes triples from c while the remainder stays
// definitive with respect to truth, returning one minimal definitive subset.
// It fails if c itself is not definitive.
func Minimize(s *pipeline.Space, c Conjunction, truth DNF) (Conjunction, error) {
	c = c.Canonical()
	def, err := Definitive(s, c, truth)
	if err != nil {
		return nil, err
	}
	if !def {
		return nil, fmt.Errorf("predicate: %v is not definitive for %v", c, truth)
	}
	for i := 0; i < len(c); {
		sub := c.Without(i)
		subDef, err := Definitive(s, sub, truth)
		if err != nil {
			return nil, err
		}
		if subDef {
			c = sub
			i = 0
			continue
		}
		i++
	}
	return c, nil
}

// MinimalSubsets enumerates every minimal definitive subset of c with
// respect to truth, by increasing size. It is exponential in |c| and meant
// for ground-truth computation on the small conjunctions the benchmark
// plants (|c| ≲ 8).
func MinimalSubsets(s *pipeline.Space, c Conjunction, truth DNF) ([]Conjunction, error) {
	c = c.Canonical()
	n := len(c)
	if n > 20 {
		return nil, fmt.Errorf("predicate: MinimalSubsets on %d triples is infeasible", n)
	}
	var minimal []Conjunction
	var minimalRegions []Region
	for mask := uint32(0); mask < 1<<uint(n); mask++ {
		var sub Conjunction
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				sub = append(sub, c[i])
			}
		}
		// Skip supersets of an already-found minimal cause: sub's region is a
		// subset of the minimal cause's region, and sub includes its triples.
		covered := false
		for _, m := range minimal {
			if containsAll(sub, m) {
				covered = true
				break
			}
		}
		if covered {
			continue
		}
		def, err := Definitive(s, sub, truth)
		if err != nil {
			return nil, err
		}
		if def {
			r, err := RegionOf(s, sub)
			if err != nil {
				return nil, err
			}
			dup := false
			for _, mr := range minimalRegions {
				if mr.Equal(r) {
					dup = true
					break
				}
			}
			if !dup {
				minimal = append(minimal, sub)
				minimalRegions = append(minimalRegions, r)
			}
		}
	}
	return minimal, nil
}

// containsAll reports whether super contains every triple of sub
// (syntactically).
func containsAll(super, sub Conjunction) bool {
	for _, t := range sub {
		found := false
		for _, u := range super {
			if t == u {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
