package predicate

import (
	"sort"

	"repro/internal/pipeline"
	"repro/internal/qmc"
)

// SimplifyDNF produces a smaller DNF equivalent to d over the space's
// domains, following the paper's use of Quine-McCluskey to remove
// redundancies from Debugging Decision Tree output. The steps are:
//
//  1. per-conjunct literal reduction (drop triples that do not change the
//     conjunct's region, e.g. "p <= 9" when the whole domain is <= 9);
//  2. removal of unsatisfiable conjuncts;
//  3. iterative pairwise combination, the multi-valued generalization of
//     the QMC merge step: two conjuncts identical except for one triple
//     merge into their common part when the two triples jointly cover the
//     parameter's domain;
//  4. region-level absorption (a conjunct contained in another is dropped);
//  5. irredundant cover: a conjunct implied by the union of the others is
//     dropped (the QMC cover step specialized to our region algebra).
//
// When every parameter mentioned by d is binary (domain size 2) the exact
// classic QMC runs instead of steps 3-5, mirroring the paper precisely.
//
// The result is always equivalent to the input; tests verify this with the
// region algebra.
func SimplifyDNF(s *pipeline.Space, d DNF) (DNF, error) {
	if err := d.Validate(s); err != nil {
		return nil, err
	}
	work := make(DNF, 0, len(d))
	for _, c := range d {
		rc, err := reduceLiterals(s, c.Canonical())
		if err != nil {
			return nil, err
		}
		sat, err := Satisfiable(s, rc)
		if err != nil {
			return nil, err
		}
		if sat {
			work = append(work, rc)
		}
	}
	if len(work) == 0 {
		return DNF{}, nil
	}

	if bin, ok := binaryEncoding(s, work); ok {
		return bin.minimize(work)
	}

	merged, err := mergeFixpoint(s, work)
	if err != nil {
		return nil, err
	}
	absorbed, err := absorb(s, merged)
	if err != nil {
		return nil, err
	}
	return irredundant(s, absorbed)
}

// reduceLiterals drops triples whose removal leaves the conjunct's region
// unchanged. It scans repeatedly until a fixpoint so that mutually
// redundant triples collapse deterministically.
func reduceLiterals(s *pipeline.Space, c Conjunction) (Conjunction, error) {
	r, err := RegionOf(s, c)
	if err != nil {
		return nil, err
	}
	for i := 0; i < len(c); {
		sub := c.Without(i)
		rs, err := RegionOf(s, sub)
		if err != nil {
			return nil, err
		}
		if rs.Equal(r) {
			c = sub
			i = 0
			continue
		}
		i++
	}
	return c, nil
}

// mergeFixpoint applies the generalized QMC combine step until no pair of
// conjuncts merges. Conjuncts that take part in a merge are replaced by the
// merged form; untouched conjuncts survive (they are "prime" relative to
// this merge rule).
func mergeFixpoint(s *pipeline.Space, d DNF) (DNF, error) {
	current := d.Canonical()
	for {
		mergedAny := false
		used := make([]bool, len(current))
		var next DNF
		for i := 0; i < len(current); i++ {
			for j := i + 1; j < len(current); j++ {
				m, ok, err := tryMerge(s, current[i], current[j])
				if err != nil {
					return nil, err
				}
				if ok {
					next = append(next, m)
					used[i], used[j] = true, true
					mergedAny = true
				}
			}
		}
		for i, c := range current {
			if !used[i] {
				next = append(next, c)
			}
		}
		current = next.Canonical()
		if !mergedAny {
			return current, nil
		}
	}
}

// tryMerge merges two canonical conjuncts that are identical except for one
// triple on the same parameter whose disjunction covers the whole domain of
// that parameter: (C AND t1) OR (C AND t2) == C.
func tryMerge(s *pipeline.Space, a, b Conjunction) (Conjunction, bool, error) {
	if len(a) != len(b) || len(a) == 0 {
		return nil, false, nil
	}
	diff := -1
	for i := range a {
		if a[i] != b[i] {
			if diff >= 0 {
				return nil, false, nil
			}
			diff = i
		}
	}
	if diff < 0 {
		// Identical conjuncts: collapse to one.
		return a, true, nil
	}
	t1, t2 := a[diff], b[diff]
	if t1.Param != t2.Param {
		return nil, false, nil
	}
	idx, ok := s.Index(t1.Param)
	if !ok {
		return nil, false, nil
	}
	for _, v := range s.At(idx).Domain {
		if !t1.Holds(v) && !t2.Holds(v) {
			return nil, false, nil
		}
	}
	return a.Without(diff), true, nil
}

// absorb removes conjuncts whose region is contained in another conjunct's
// region.
func absorb(s *pipeline.Space, d DNF) (DNF, error) {
	regions := make([]Region, len(d))
	for i, c := range d {
		r, err := RegionOf(s, c)
		if err != nil {
			return nil, err
		}
		regions[i] = r
	}
	keep := make([]bool, len(d))
	for i := range keep {
		keep[i] = true
	}
	for i := range d {
		if !keep[i] {
			continue
		}
		for j := range d {
			if i == j || !keep[j] {
				continue
			}
			if regions[i].SubsetOf(regions[j]) && !(regions[j].SubsetOf(regions[i]) && j > i) {
				keep[i] = false
				break
			}
		}
	}
	var out DNF
	for i, c := range d {
		if keep[i] {
			out = append(out, c)
		}
	}
	return out, nil
}

// irredundant drops conjuncts implied by the union of the remaining ones,
// preferring to drop longer conjuncts first (the QMC cover step adapted to
// regions).
func irredundant(s *pipeline.Space, d DNF) (DNF, error) {
	kept := d.Canonical()
	for changed := true; changed && len(kept) > 1; {
		changed = false
		order := make([]int, len(kept))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			ca, cb := kept[order[a]], kept[order[b]]
			if len(ca) != len(cb) {
				return len(ca) > len(cb)
			}
			return ca.String() < cb.String()
		})
		for _, i := range order {
			rest := make(DNF, 0, len(kept)-1)
			rest = append(rest, kept[:i]...)
			rest = append(rest, kept[i+1:]...)
			implied, err := Implies(s, kept[i], rest)
			if err != nil {
				return nil, err
			}
			if implied {
				kept = rest
				changed = true
				break
			}
		}
	}
	return kept.Canonical(), nil
}

// binaryEnc maps mentioned binary parameters to bit positions so the exact
// classic QMC can run.
type binaryEnc struct {
	space  *pipeline.Space
	params []string // bit position -> parameter name
	pos    map[string]int
}

// binaryEncoding reports whether every parameter mentioned in d has a
// domain of exactly two values, and if so builds the bit encoding.
func binaryEncoding(s *pipeline.Space, d DNF) (*binaryEnc, bool) {
	enc := &binaryEnc{space: s, pos: make(map[string]int)}
	for _, c := range d {
		for _, t := range c {
			if _, seen := enc.pos[t.Param]; seen {
				continue
			}
			i, ok := s.Index(t.Param)
			if !ok || len(s.At(i).Domain) != 2 {
				return nil, false
			}
			enc.pos[t.Param] = len(enc.params)
			enc.params = append(enc.params, t.Param)
		}
	}
	if len(enc.params) == 0 || len(enc.params) > 16 {
		return nil, false
	}
	return enc, true
}

// minimize runs classic QMC over the mentioned binary parameters: it
// enumerates the 2^k assignments, marks those satisfying d as minterms, and
// converts the resulting prime-implicant cover back into triples.
func (e *binaryEnc) minimize(d DNF) (DNF, error) {
	k := len(e.params)
	var minterms []uint64
	for m := uint64(0); m < 1<<uint(k); m++ {
		if e.satisfies(d, m) {
			minterms = append(minterms, m)
		}
	}
	cover, err := qmc.Minimize(k, minterms, nil)
	if err != nil {
		return nil, err
	}
	var out DNF
	for _, im := range cover {
		var c Conjunction
		for b := 0; b < k; b++ {
			bit := uint64(1) << uint(b)
			if im.Mask&bit == 0 {
				continue
			}
			name := e.params[b]
			i, _ := e.space.Index(name)
			dom := e.space.At(i).Domain
			want := dom[0]
			if im.Bits&bit != 0 {
				want = dom[1]
			}
			c = append(c, Triple{Param: name, Cmp: Eq, Value: want})
		}
		out = append(out, c.Canonical())
	}
	return out.Canonical(), nil
}

// satisfies evaluates d on the assignment encoded by m: bit b set means the
// parameter e.params[b] takes the second domain value.
func (e *binaryEnc) satisfies(d DNF, m uint64) bool {
	valueOf := func(name string) pipeline.Value {
		i, _ := e.space.Index(name)
		dom := e.space.At(i).Domain
		if m&(uint64(1)<<uint(e.pos[name])) != 0 {
			return dom[1]
		}
		return dom[0]
	}
	for _, c := range d {
		all := true
		for _, t := range c {
			if !t.Holds(valueOf(t.Param)) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}
