package predicate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pipeline"
)

func mustRegion(t *testing.T, s *pipeline.Space, c Conjunction) Region {
	t.Helper()
	r, err := RegionOf(s, c)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestFullRegion(t *testing.T) {
	s := testSpace(t)
	r := FullRegion(s)
	n, exact := r.Count()
	if !exact || n != 24 {
		t.Fatalf("full region count = %d", n)
	}
	if r.Empty() {
		t.Fatal("full region must not be empty")
	}
}

func TestRegionOfConjunction(t *testing.T) {
	s := testSpace(t)
	c := And(T("p1", Le, pipeline.Ord(2)), T("p2", Neq, pipeline.Cat("c")))
	r := mustRegion(t, s, c)
	n, _ := r.Count()
	// p1 in {1,2}, p2 in {a,b}, p3 free -> 2*2*2 = 8.
	if n != 8 {
		t.Fatalf("count = %d, want 8", n)
	}
	vals := r.AllowedValues("p1")
	if len(vals) != 2 || vals[0] != pipeline.Ord(1) || vals[1] != pipeline.Ord(2) {
		t.Fatalf("allowed p1 = %v", vals)
	}
}

func TestRegionEmptyAndContradiction(t *testing.T) {
	s := testSpace(t)
	c := And(T("p1", Eq, pipeline.Ord(1)), T("p1", Eq, pipeline.Ord(2)))
	r := mustRegion(t, s, c)
	if !r.Empty() {
		t.Fatal("contradictory conjunction must denote empty region")
	}
	if _, ok := r.AnyInstance(); ok {
		t.Fatal("AnyInstance on empty region must fail")
	}
	// Equality with an out-of-domain value is empty too.
	r2 := mustRegion(t, s, And(T("p1", Eq, pipeline.Ord(99))))
	if !r2.Empty() {
		t.Fatal("out-of-domain equality must be empty")
	}
}

func TestRegionOfInvalidTriple(t *testing.T) {
	s := testSpace(t)
	if _, err := RegionOf(s, And(T("zz", Eq, pipeline.Ord(1)))); err == nil {
		t.Fatal("unknown parameter must error")
	}
	if _, err := RegionOf(s, And(T("p2", Gt, pipeline.Cat("a")))); err == nil {
		t.Fatal("ordering on categorical must error")
	}
}

func TestRegionSubsetEqualIntersect(t *testing.T) {
	s := testSpace(t)
	small := mustRegion(t, s, And(T("p1", Eq, pipeline.Ord(2))))
	big := mustRegion(t, s, And(T("p1", Le, pipeline.Ord(3))))
	if !small.SubsetOf(big) {
		t.Fatal("p1=2 must be subset of p1<=3")
	}
	if big.SubsetOf(small) {
		t.Fatal("p1<=3 must not be subset of p1=2")
	}
	inter := small.Intersect(big)
	if !inter.Equal(small) {
		t.Fatal("intersection of nested regions must equal the smaller")
	}
	empty := mustRegion(t, s, And(T("p1", Gt, pipeline.Ord(4))))
	if !empty.SubsetOf(small) {
		t.Fatal("empty region is subset of everything")
	}
}

func TestRegionContainsMatchesSatisfied(t *testing.T) {
	s := testSpace(t)
	r := rand.New(rand.NewSource(3))
	triplePool := []Triple{
		T("p1", Eq, pipeline.Ord(2)),
		T("p1", Neq, pipeline.Ord(3)),
		T("p1", Le, pipeline.Ord(2)),
		T("p1", Gt, pipeline.Ord(1)),
		T("p2", Eq, pipeline.Cat("b")),
		T("p2", Neq, pipeline.Cat("a")),
		T("p3", Le, pipeline.Ord(10)),
	}
	f := func() bool {
		var c Conjunction
		for _, tr := range triplePool {
			if r.Intn(3) == 0 {
				c = append(c, tr)
			}
		}
		reg, err := RegionOf(s, c)
		if err != nil {
			return false
		}
		// Region membership must agree with direct satisfaction on every
		// instance of the space.
		agree := true
		s.Enumerate(func(in pipeline.Instance) bool {
			if reg.Contains(in) != c.Satisfied(in) {
				agree = false
				return false
			}
			return true
		})
		return agree
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRegionCountMatchesEnumeration(t *testing.T) {
	s := testSpace(t)
	c := And(T("p1", Gt, pipeline.Ord(1)), T("p3", Eq, pipeline.Ord(20)))
	reg := mustRegion(t, s, c)
	n, _ := reg.Count()
	count := uint64(0)
	s.Enumerate(func(in pipeline.Instance) bool {
		if c.Satisfied(in) {
			count++
		}
		return true
	})
	if n != count {
		t.Fatalf("Count = %d, enumeration = %d", n, count)
	}
}

func TestAnyInstanceSatisfies(t *testing.T) {
	s := testSpace(t)
	c := And(T("p1", Gt, pipeline.Ord(2)), T("p2", Neq, pipeline.Cat("a")))
	reg := mustRegion(t, s, c)
	in, ok := reg.AnyInstance()
	if !ok {
		t.Fatal("region is non-empty")
	}
	if !c.Satisfied(in) {
		t.Fatalf("AnyInstance %v does not satisfy %v", in, c)
	}
}

func TestIntersectAcrossSpacesPanics(t *testing.T) {
	s1, s2 := testSpace(t), testSpace(t)
	defer func() {
		if recover() == nil {
			t.Fatal("Intersect across spaces must panic")
		}
	}()
	FullRegion(s1).Intersect(FullRegion(s2))
}
