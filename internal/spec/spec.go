// Package spec serializes parameter spaces as JSON documents so pipelines
// can be described in files and debugged from the command line.
//
// The format:
//
//	{
//	  "parameters": [
//	    {"name": "lr", "kind": "ordinal", "domain": [0.001, 0.01, 0.1]},
//	    {"name": "optimizer", "kind": "categorical", "domain": ["sgd", "adam"]}
//	  ]
//	}
package spec

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/pipeline"
)

type jsonSpec struct {
	Parameters []jsonParam `json:"parameters"`
}

type jsonParam struct {
	Name   string `json:"name"`
	Kind   string `json:"kind"`
	Domain []any  `json:"domain"`
}

// Write serializes the space.
func Write(w io.Writer, s *pipeline.Space) error {
	doc := jsonSpec{}
	for i := 0; i < s.Len(); i++ {
		p := s.At(i)
		jp := jsonParam{Name: p.Name, Kind: p.Kind.String()}
		for _, v := range p.Domain {
			if v.Kind() == pipeline.Ordinal {
				jp.Domain = append(jp.Domain, v.Num())
			} else {
				jp.Domain = append(jp.Domain, v.Str())
			}
		}
		doc.Parameters = append(doc.Parameters, jp)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Read parses a space document.
func Read(r io.Reader) (*pipeline.Space, error) {
	var doc jsonSpec
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("spec: decode: %w", err)
	}
	if len(doc.Parameters) == 0 {
		return nil, fmt.Errorf("spec: no parameters declared")
	}
	params := make([]pipeline.Parameter, 0, len(doc.Parameters))
	for _, jp := range doc.Parameters {
		var kind pipeline.Kind
		switch jp.Kind {
		case "ordinal":
			kind = pipeline.Ordinal
		case "categorical":
			kind = pipeline.Categorical
		default:
			return nil, fmt.Errorf("spec: parameter %q has unknown kind %q", jp.Name, jp.Kind)
		}
		p := pipeline.Parameter{Name: jp.Name, Kind: kind}
		for _, raw := range jp.Domain {
			switch x := raw.(type) {
			case float64:
				if kind != pipeline.Ordinal {
					return nil, fmt.Errorf("spec: categorical parameter %q has numeric domain value %v", jp.Name, x)
				}
				p.Domain = append(p.Domain, pipeline.Ord(x))
			case string:
				if kind != pipeline.Categorical {
					return nil, fmt.Errorf("spec: ordinal parameter %q has string domain value %q", jp.Name, x)
				}
				p.Domain = append(p.Domain, pipeline.Cat(x))
			default:
				return nil, fmt.Errorf("spec: parameter %q has unsupported domain value %v (%T)", jp.Name, raw, raw)
			}
		}
		params = append(params, p)
	}
	return pipeline.NewSpace(params...)
}
