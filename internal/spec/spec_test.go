package spec

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/pipeline"
)

func TestRoundTrip(t *testing.T) {
	s := pipeline.MustSpace(
		pipeline.Parameter{Name: "lr", Kind: pipeline.Ordinal, Domain: []pipeline.Value{
			pipeline.Ord(0.001), pipeline.Ord(0.1),
		}},
		pipeline.Parameter{Name: "opt", Kind: pipeline.Categorical, Domain: []pipeline.Value{
			pipeline.Cat("sgd"), pipeline.Cat("adam"),
		}},
	)
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != s.String() {
		t.Fatalf("round trip: %q vs %q", got.String(), s.String())
	}
	if got.DomainIndex(0, pipeline.Ord(0.1)) < 0 {
		t.Fatal("ordinal domain lost")
	}
	if got.DomainIndex(1, pipeline.Cat("adam")) < 0 {
		t.Fatal("categorical domain lost")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"not json",
		`{"parameters": []}`,
		`{"parameters": [{"name": "x", "kind": "weird", "domain": [1]}]}`,
		`{"parameters": [{"name": "x", "kind": "ordinal", "domain": ["str"]}]}`,
		`{"parameters": [{"name": "x", "kind": "categorical", "domain": [1]}]}`,
		`{"parameters": [{"name": "x", "kind": "ordinal", "domain": [null]}]}`,
		`{"parameters": [{"name": "", "kind": "ordinal", "domain": [1]}]}`,
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("Read(%q) succeeded, want error", c)
		}
	}
}
