package gansim

import (
	"context"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/predicate"
)

func TestSpaceShape(t *testing.T) {
	p, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if p.Space.Len() != 6 {
		t.Fatalf("space has %d parameters, want 6", p.Space.Len())
	}
	for i := 0; i < p.Space.Len(); i++ {
		if n := len(p.Space.At(i).Domain); n != 5 {
			t.Fatalf("parameter %q has %d values, want 5", p.Space.At(i).Name, n)
		}
	}
	if n, _ := p.Space.NumInstances(); n != 15625 {
		t.Fatalf("space size = %d, want 5^6", n)
	}
}

// The FID threshold rule must agree with the planted ground truth on every
// one of the 15625 configurations.
func TestOracleEquivalentToTruthExhaustively(t *testing.T) {
	p, err := New()
	if err != nil {
		t.Fatal(err)
	}
	oracle := p.Oracle()
	fails, succeeds := 0, 0
	p.Space.Enumerate(func(in pipeline.Instance) bool {
		out, err := oracle.Run(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		want := pipeline.Succeed
		if p.Truth.Satisfied(in) {
			want = pipeline.Fail
		}
		if out != want {
			t.Fatalf("FID rule and ground truth disagree on %v: FID=%.1f, truth=%v",
				in, p.FID(in), want)
		}
		if out == pipeline.Fail {
			fails++
		} else {
			succeeds++
		}
		return true
	})
	if fails == 0 || succeeds == 0 {
		t.Fatalf("degenerate simulator: %d fails, %d succeeds", fails, succeeds)
	}
}

func TestFIDImprovesWithTraining(t *testing.T) {
	p, err := New()
	if err != nil {
		t.Fatal(err)
	}
	mk := func(steps float64) pipeline.Instance {
		return pipeline.MustInstance(p.Space,
			pipeline.Ord(1e-4), pipeline.Ord(1e-4), pipeline.Ord(steps),
			pipeline.Ord(64), pipeline.Ord(0.0), pipeline.Cat("spectral"))
	}
	if p.FID(mk(100000)) >= p.FID(mk(20000)) {
		t.Fatal("FID must improve with more training steps")
	}
}

func TestGroundTruthMinimal(t *testing.T) {
	p, err := New()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range p.Minimal {
		minimal, err := predicate.Minimal(p.Space, m, p.Truth)
		if err != nil {
			t.Fatal(err)
		}
		if !minimal {
			t.Fatalf("ground-truth cause %v is not minimal", m)
		}
	}
}

func TestHealthyConfigurationsExist(t *testing.T) {
	p, err := New()
	if err != nil {
		t.Fatal(err)
	}
	healthy := pipeline.MustInstance(p.Space,
		pipeline.Ord(1e-4), pipeline.Ord(5e-4), pipeline.Ord(100000),
		pipeline.Ord(256), pipeline.Ord(0.0), pipeline.Cat("spectral"))
	if fid := p.FID(healthy); fid > Threshold {
		t.Fatalf("reference healthy configuration has FID %.1f > threshold", fid)
	}
}
