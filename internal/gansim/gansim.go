// Package gansim simulates the GAN-training pipeline of Section 5.3: a
// modified SAGAN trained on CIFAR-10 whose evaluation thresholds the
// Frechet Inception Distance (FID) to detect mode collapse. The paper's
// pipeline has 6 parameters limited to 5 possible values each, and each
// real configuration takes ~10 hours to train.
//
// The simulator replaces training with a deterministic FID model: a base
// score that improves with training steps and architecture capacity, plus
// large mode-collapse penalties under conditions motivated by the
// two-time-scale update rule literature (collapse when the discriminator
// learning rate falls far below the generator's, and when momentum is high
// while spectral normalization is off). The evaluation is FID <= Threshold;
// the region where the penalties push FID over the threshold is, by
// construction, the planted ground truth, and a test verifies the
// equivalence by enumerating all 5^6 configurations.
package gansim

import (
	"context"
	"fmt"

	"repro/internal/exec"
	"repro/internal/pipeline"
	"repro/internal/predicate"
)

// Threshold is the FID above which a run counts as mode collapse (Fail).
const Threshold = 60.0

// Pipeline is the simulated GAN training pipeline.
type Pipeline struct {
	Space *pipeline.Space
	// Truth is the mode-collapse condition.
	Truth predicate.DNF
	// Minimal is R(CP).
	Minimal []predicate.Conjunction
}

// New constructs the simulator with the paper's 6-parameter, 5-value space.
func New() (*Pipeline, error) {
	ord := func(vals ...float64) []pipeline.Value {
		out := make([]pipeline.Value, len(vals))
		for i, v := range vals {
			out[i] = pipeline.Ord(v)
		}
		return out
	}
	cat := func(vals ...string) []pipeline.Value {
		out := make([]pipeline.Value, len(vals))
		for i, v := range vals {
			out[i] = pipeline.Cat(v)
		}
		return out
	}
	s, err := pipeline.NewSpace(
		pipeline.Parameter{Name: "gen_lr", Kind: pipeline.Ordinal,
			Domain: ord(1e-5, 5e-5, 1e-4, 5e-4, 1e-3)},
		pipeline.Parameter{Name: "disc_lr", Kind: pipeline.Ordinal,
			Domain: ord(1e-5, 5e-5, 1e-4, 5e-4, 1e-3)},
		pipeline.Parameter{Name: "steps", Kind: pipeline.Ordinal,
			Domain: ord(20000, 40000, 60000, 80000, 100000)},
		pipeline.Parameter{Name: "batch_size", Kind: pipeline.Ordinal,
			Domain: ord(16, 32, 64, 128, 256)},
		pipeline.Parameter{Name: "beta1", Kind: pipeline.Ordinal,
			Domain: ord(0.0, 0.25, 0.5, 0.75, 0.9)},
		pipeline.Parameter{Name: "normalization", Kind: pipeline.Categorical,
			Domain: cat("spectral", "batch", "layer", "instance", "none")},
	)
	if err != nil {
		return nil, err
	}
	p := &Pipeline{Space: s}
	p.Truth = predicate.DNF{
		// TTUR imbalance: discriminator much slower than the generator.
		predicate.And(
			predicate.T("gen_lr", predicate.Gt, pipeline.Ord(1e-4)),
			predicate.T("disc_lr", predicate.Le, pipeline.Ord(5e-5)),
		),
		// High momentum without spectral normalization destabilizes the
		// discriminator (the SAGAN recipe relies on spectral norm).
		predicate.And(
			predicate.T("beta1", predicate.Gt, pipeline.Ord(0.5)),
			predicate.T("normalization", predicate.Neq, pipeline.Cat("spectral")),
		),
	}.Canonical()
	for _, c := range p.Truth {
		m, err := predicate.Minimize(s, c, p.Truth)
		if err != nil {
			return nil, fmt.Errorf("gansim: ground truth: %w", err)
		}
		p.Minimal = append(p.Minimal, m)
	}
	return p, nil
}

// FID is the simulated Frechet Inception Distance for one configuration:
// deterministic, lower is better. Healthy configurations land well under
// the threshold; the planted collapse conditions add a large penalty.
func (p *Pipeline) FID(in pipeline.Instance) float64 {
	get := func(name string) pipeline.Value {
		v, ok := in.ByName(name)
		if !ok {
			panic("gansim: unknown parameter " + name)
		}
		return v
	}
	steps := get("steps").Num()
	batch := get("batch_size").Num()
	genLR := get("gen_lr").Num()
	discLR := get("disc_lr").Num()
	beta1 := get("beta1").Num()
	norm := get("normalization").Str()

	// Base curve: training longer and bigger batches improve FID, with
	// diminishing returns; everything stays within [18, 45] when healthy.
	fid := 45.0 - 12.0*(steps/100000.0) - 6.0*(batch/256.0)
	// Mild, non-failing preferences (keep healthy FIDs below Threshold).
	if norm == "none" {
		fid += 5
	}
	if genLR <= 5e-5 {
		fid += 3 // undertrained generator
	}

	// Mode collapse penalties: exactly the planted ground truth.
	if genLR > 1e-4 && discLR <= 5e-5 {
		fid += 80
	}
	if beta1 > 0.5 && norm != "spectral" {
		fid += 70
	}
	return fid
}

// Oracle evaluates a configuration: Fail iff FID exceeds the threshold
// (the paper's evaluation function for mode collapse).
func (p *Pipeline) Oracle() exec.Oracle {
	return exec.OracleFunc(func(_ context.Context, in pipeline.Instance) (pipeline.Outcome, error) {
		if p.FID(in) > Threshold {
			return pipeline.Fail, nil
		}
		return pipeline.Succeed, nil
	})
}
