package provlog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/pipeline"
)

// On-disk layout. A log is a directory of segment files wal-NNNNNN.seg with
// contiguous indices. Every segment starts with a fixed header:
//
//	offset  0  magic "BDWALv01"                  (8 bytes)
//	offset  8  space fingerprint                 (uint64 LE)
//	offset 16  parameter count                   (uint32 LE)
//	offset 20  segment index                     (uint32 LE)
//	offset 24  sequence of the segment's first
//	           execution record                  (uint64 LE)
//	offset 32  CRC-32 (IEEE) of bytes [0, 32)    (uint32 LE)
//
// followed by a stream of frames. Each frame is a type byte, a payload, and
// a CRC-32 (IEEE) of the type byte plus payload:
//
//	exec   (0x01): one provenance record — interned code vector
//	               (params × uint32 LE), outcome byte, source id
//	               (uint16 LE). Fixed width: 4·P+3 payload bytes.
//	dict   (0x02): one value-dictionary assignment — parameter index
//	               (uint16 LE), code (uint32 LE), kind byte, then the value
//	               (ordinal: float64 bits LE; categorical: uint32 LE length
//	               + bytes). Codes are dense per parameter and framed in
//	               assignment order, so replaying them through Space.Intern
//	               reproduces the in-memory code assignment exactly.
//	source (0x03): one source-dictionary entry — id (uint16 LE, dense in
//	               first-use order), length (uint16 LE), bytes.
//
// dict and source frames always precede the first exec frame that
// references them, in the same segment-ordered stream, so a single forward
// pass replays the log. Torn tails truncate cleanly: a frame that cannot be
// read in full or whose CRC mismatches marks the recovery point.
const (
	magic      = "BDWALv01"
	headerSize = 36

	frameExec   byte = 0x01
	frameDict   byte = 0x02
	frameSource byte = 0x03

	// maxBlob caps variable-width fields (categorical labels, source
	// names) so a corrupt length cannot trigger a giant allocation.
	maxBlob = 1 << 20
)

// header is the decoded form of a segment header.
type header struct {
	fingerprint uint64
	nParams     uint32
	segIndex    uint32
	firstSeq    uint64
}

func encodeHeader(h header) []byte {
	b := make([]byte, 0, headerSize)
	b = append(b, magic...)
	b = binary.LittleEndian.AppendUint64(b, h.fingerprint)
	b = binary.LittleEndian.AppendUint32(b, h.nParams)
	b = binary.LittleEndian.AppendUint32(b, h.segIndex)
	b = binary.LittleEndian.AppendUint64(b, h.firstSeq)
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// errTorn marks data that reads as a crash artifact — a short or
// checksum-mismatching header or frame. In the final segment it is the
// recovery point; anywhere else it is corruption.
var errTorn = fmt.Errorf("provlog: torn data")

func decodeHeader(b []byte) (header, error) {
	if len(b) < headerSize {
		return header{}, errTorn
	}
	if string(b[:8]) != magic {
		return header{}, errTorn
	}
	if crc32.ChecksumIEEE(b[:32]) != binary.LittleEndian.Uint32(b[32:36]) {
		return header{}, errTorn
	}
	return header{
		fingerprint: binary.LittleEndian.Uint64(b[8:16]),
		nParams:     binary.LittleEndian.Uint32(b[16:20]),
		segIndex:    binary.LittleEndian.Uint32(b[20:24]),
		firstSeq:    binary.LittleEndian.Uint64(b[24:32]),
	}, nil
}

// appendCRC seals the frame started at start with the checksum of its type
// byte and payload.
func appendCRC(b []byte, start int) []byte {
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b[start:]))
}

func appendDictFrame(b []byte, param uint16, code uint32, v pipeline.Value) []byte {
	start := len(b)
	b = append(b, frameDict)
	b = binary.LittleEndian.AppendUint16(b, param)
	b = binary.LittleEndian.AppendUint32(b, code)
	b = append(b, byte(v.Kind()))
	if v.Kind() == pipeline.Ordinal {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.Num()))
	} else {
		s := v.Str()
		b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
		b = append(b, s...)
	}
	return appendCRC(b, start)
}

func appendSourceFrame(b []byte, id uint16, source string) []byte {
	start := len(b)
	b = append(b, frameSource)
	b = binary.LittleEndian.AppendUint16(b, id)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(source)))
	b = append(b, source...)
	return appendCRC(b, start)
}

func appendExecFrame(b []byte, in pipeline.Instance, out pipeline.Outcome, source uint16) []byte {
	start := len(b)
	b = append(b, frameExec)
	for i := 0; i < in.Len(); i++ {
		b = binary.LittleEndian.AppendUint32(b, in.Code(i))
	}
	b = append(b, byte(out))
	b = binary.LittleEndian.AppendUint16(b, source)
	return appendCRC(b, start)
}
