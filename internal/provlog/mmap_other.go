//go:build !unix

package provlog

import "os"

// mapFile reads the file into memory; see mmap_unix.go for the mapped
// variant.
func mapFile(path string) (data []byte, release func(), err error) {
	data, err = os.ReadFile(path)
	return data, func() {}, err
}
