//go:build !unix

package provlog

import "os"

// lockDir is a no-op where advisory file locks are unavailable; the
// single-writer invariant is then the operator's responsibility.
func lockDir(dir string) (*os.File, error) { return nil, nil }
