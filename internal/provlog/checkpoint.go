package provlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/pipeline"
	"repro/internal/provenance"
)

// Checkpoint tiers. A tier is a slice of the log's sealed history folded
// into one sorted run: every record with sequence in [firstSeq, watermark),
// keyed by instance hash, with the dictionary frames that define its codes
// and sources consolidated into dense tables. The live tiers partition the
// sealed prefix [0, W) contiguously, LSM-style — the newest tier is the
// small delta of the last checkpoint, older tiers grow geometrically under
// the MergePolicy — and the MANIFEST names them in recency order. Open
// loads every tier of the best plan and replays only the WAL suffix past
// the newest watermark, so both checkpointing and resuming cost is bounded
// by the delta, not the whole past (see docs/ONDISK.md for the byte-level
// format and the crash-recovery rules).
//
// Base-tier layout — firstSeq 0, file ckpt-<watermark>.ckpt, byte-identical
// to the historic single-checkpoint format (all integers little-endian;
// the trailing CRC-32C covers every byte before it, so one pass over the
// file validates everything):
//
//	header  (16)  magic "BDCKPv01", parameter count (uint32), reserved
//	              uint32 (zero)
//	dict          per parameter, in space order: entry count (uint32),
//	              then one entry per code in code order — kind byte, then
//	              ordinal float64 bits or categorical uint32 length+bytes
//	sources       entry count (uint32), then one entry per id in id
//	              order — uint16 length + bytes
//	records       recordCount fixed-width rows sorted by (instance hash,
//	              seq): instance hash (uint64), interned codes (params ×
//	              uint32), outcome byte, source id (uint16), seq (uint64)
//	footer  (36)  magic "BDCKPend", record count (uint64), seq watermark
//	              (uint64), space fingerprint (uint64), CRC-32C (uint32)
//	              of bytes [0, size-4)
//
// Delta-tier layout — firstSeq > 0, file tier-<firstSeq>-<watermark>.tier —
// differs only in the magics and the footer, which adds the range's lower
// bound:
//
//	header  (16)  magic "BDCKPv02", parameter count (uint32), reserved
//	footer  (44)  magic "BDCK2end", firstSeq (uint64), record count
//	              (uint64), seq watermark (uint64), space fingerprint
//	              (uint64), CRC-32C (uint32) of bytes [0, size-4)
//
// Every tier carries the full cumulative dictionary and source tables as
// of its own watermark (tables are tiny next to rows); an older tier's
// tables are always a prefix of a newer's, which is what lets a merge copy
// the newer tables verbatim and treat rows as opaque bytes.
//
// A run is deduplicated last-write-wins per instance (ties on hash break
// by seq; the survivor is the highest seq). A store-fed log never contains
// two records of one instance, so tiers always carry exactly
// watermark-firstSeq records with dense sequences — the loader verifies
// this and a compactor that would have to drop a sequence refuses to write
// the run instead.
const (
	ckptMagic       = "BDCKPv01"
	ckptFooterMagic = "BDCKPend"
	ckptHeaderSize  = 16
	ckptFooterSize  = 36
	tierMagic       = "BDCKPv02"
	tierFooterMagic = "BDCK2end"
	tierFooterSize  = 44
)

// ckptCRC is the checksum the checkpoint file uses: CRC-32C (Castagnoli),
// hardware-accelerated on amd64/arm64, unlike the WAL's frame-level IEEE
// polynomial — a checkpoint validates tens of megabytes in one pass.
var ckptCRC = crc32.MakeTable(crc32.Castagnoli)

// CompactPolicy schedules automatic compaction: when either threshold is
// crossed by freshly logged data, the log folds its sealed history into a
// new checkpoint in the background (one compaction at a time; a busy
// trigger is skipped and retried at the next commit window).
type CompactPolicy struct {
	// EveryRecords triggers a checkpoint when at least this many records
	// have been logged past the newest checkpoint's watermark. <= 0
	// disables the record trigger.
	EveryRecords int
	// EveryBytes triggers a checkpoint when at least this many WAL bytes
	// have been written since the newest checkpoint. <= 0 disables the
	// size trigger.
	EveryBytes int64
}

// WithCompactPolicy enables automatic background compaction (see
// CompactPolicy). Without it the log only compacts on explicit Checkpoint
// calls.
func WithCompactPolicy(p CompactPolicy) Option {
	return func(l *Log) { l.compact = p }
}

// ckptTestHook, when set, runs at the named stages of a compaction —
// "tmp-written" (checkpoint bytes durable in the temp file, not yet
// renamed), "renamed" (checkpoint in place, segments not yet collected),
// and "gc" (after the first superseded file was removed). Returning an
// error aborts the compaction at exactly that point, leaving the on-disk
// state a SIGKILL would have left; the crash-during-compaction torture
// tests drive every stage through it.
var ckptTestHook func(stage string) error

func ckptStage(stage string) error {
	if ckptTestHook != nil {
		return ckptTestHook(stage)
	}
	return nil
}

// ckptFile is one discovered checkpoint file.
type ckptFile struct {
	path      string
	watermark int
}

func ckptPath(dir string, watermark int) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%016d.ckpt", watermark))
}

// listCheckpoints returns the directory's checkpoint files ordered newest
// (highest watermark) first. Only the name is parsed here; validity is
// decided by loadCheckpoint.
func listCheckpoints(dir string) ([]ckptFile, error) {
	names, err := filepath.Glob(filepath.Join(dir, "ckpt-*.ckpt"))
	if err != nil {
		return nil, err
	}
	cks := make([]ckptFile, 0, len(names))
	for _, p := range names {
		base := filepath.Base(p)
		numStr := strings.TrimSuffix(strings.TrimPrefix(base, "ckpt-"), ".ckpt")
		n, err := strconv.ParseUint(numStr, 10, 63)
		if err != nil {
			return nil, fmt.Errorf("provlog: unrecognized checkpoint file %q", base)
		}
		cks = append(cks, ckptFile{path: p, watermark: int(n)})
	}
	sort.Slice(cks, func(i, j int) bool { return cks[i].watermark > cks[j].watermark })
	return cks, nil
}

// removeStrayTmp deletes leftover temp files — the debris of a crash
// between writing and renaming a checkpoint tier or a manifest. Called
// with the directory lock held, so no live compactor owns them.
func removeStrayTmp(dir string) {
	for _, pat := range []string{"ckpt-*.tmp", "tier-*.tmp", manifestName + ".tmp*"} {
		if names, err := filepath.Glob(filepath.Join(dir, pat)); err == nil {
			for _, p := range names {
				os.Remove(p)
			}
		}
	}
}

// encodeCheckpoint renders the first w records of the snapshot as one
// base tier (the historic single-checkpoint file, byte-identical). The
// dictionary tables are derived from the record prefix itself: the WAL
// emits a dict frame for every code up to the largest one a record
// references, immediately before that record and in the same commit
// window, so the codes 0..max(code) per parameter — and the sources in
// first-use order — are exactly the dictionary state at the watermark's
// position in the stream.
func encodeCheckpoint(space *pipeline.Space, fingerprint uint64, sn provenance.Snapshot, w int) ([]byte, error) {
	p := space.Len()
	persisted := make([]int, p)
	var sources []string
	seen := make(map[string]bool)
	for i := 0; i < w; i++ {
		rec := sn.At(i)
		for j := 0; j < p; j++ {
			if c := int(rec.Instance.Code(j)) + 1; c > persisted[j] {
				persisted[j] = c
			}
		}
		if !seen[rec.Source] {
			if len(sources) > math.MaxUint16 {
				return nil, fmt.Errorf("provlog: checkpoint: too many distinct sources")
			}
			seen[rec.Source] = true
			sources = append(sources, rec.Source)
		}
	}
	return encodeTierRange(space, fingerprint, sn, 0, w, persisted, sources)
}

// encodeTierRange renders the snapshot's records with sequences in
// [firstSeq, w) as one tier file: base-tier format when firstSeq is 0,
// delta-tier format otherwise. The dictionary tables written are the
// given cumulative state — every code below persisted[i] per parameter
// and the sources in WAL id order — which must cover every code and
// source the range's records reference, and must be table-prefix
// compatible with the tiers below (both hold for the log's own persisted
// counters: dictionaries are append-only and dict frames precede the
// records referencing them).
func encodeTierRange(space *pipeline.Space, fingerprint uint64, sn provenance.Snapshot, firstSeq, w int, persisted []int, sources []string) ([]byte, error) {
	p := space.Len()
	n := w - firstSeq
	sourceID := make(map[string]uint16, len(sources))
	for id, s := range sources {
		sourceID[s] = uint16(id)
	}

	// The sorted run: record order by (instance hash, seq), deduplicated
	// last-write-wins. A duplicate instance cannot come out of a
	// provenance store, and dropping one would leave a sequence gap the
	// loader rejects, so a survivor set smaller than the range refuses to
	// encode.
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(firstSeq + i)
	}
	sort.Slice(order, func(a, b int) bool {
		ha, hb := sn.At(int(order[a])).Instance.Hash(), sn.At(int(order[b])).Instance.Hash()
		if ha != hb {
			return ha < hb
		}
		return order[a] < order[b]
	})
	kept := order[:0]
	for i := 0; i < len(order); i++ {
		if i+1 < len(order) {
			this, next := sn.At(int(order[i])).Instance, sn.At(int(order[i+1])).Instance
			if this.Hash() == next.Hash() && this.Equal(next) {
				continue // last-write-wins: the higher seq follows in the order
			}
		}
		kept = append(kept, order[i])
	}
	if len(kept) != n {
		return nil, fmt.Errorf("provlog: checkpoint: snapshot holds duplicate instances (%d of %d records survive dedup)",
			len(kept), n)
	}

	rowSize := 4*p + 19
	buf := make([]byte, 0, ckptHeaderSize+n*rowSize+tierFooterSize+4096)
	if firstSeq == 0 {
		buf = append(buf, ckptMagic...)
	} else {
		buf = append(buf, tierMagic...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p))
	buf = binary.LittleEndian.AppendUint32(buf, 0)
	for i := 0; i < p; i++ {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(persisted[i]))
		for c := 0; c < persisted[i]; c++ {
			v := space.InternedValue(i, uint32(c))
			buf = append(buf, byte(v.Kind()))
			if v.Kind() == pipeline.Ordinal {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Num()))
			} else {
				s := v.Str()
				if len(s) > maxBlob {
					return nil, fmt.Errorf("provlog: checkpoint: categorical value of parameter %q is %d bytes, limit %d",
						space.At(i).Name, len(s), maxBlob)
				}
				buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
				buf = append(buf, s...)
			}
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sources)))
	for _, s := range sources {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
		buf = append(buf, s...)
	}
	for _, seq := range kept {
		rec := sn.At(int(seq))
		for i := 0; i < p; i++ {
			if c := int(rec.Instance.Code(i)); c >= persisted[i] {
				return nil, fmt.Errorf("provlog: checkpoint: record %d references code %d of parameter %d beyond the persisted dictionary (%d entries)",
					seq, c, i, persisted[i])
			}
		}
		id, ok := sourceID[rec.Source]
		if !ok {
			return nil, fmt.Errorf("provlog: checkpoint: record %d references source %q outside the persisted table", seq, rec.Source)
		}
		buf = binary.LittleEndian.AppendUint64(buf, rec.Instance.Hash())
		for i := 0; i < p; i++ {
			buf = binary.LittleEndian.AppendUint32(buf, rec.Instance.Code(i))
		}
		buf = append(buf, byte(rec.Outcome))
		buf = binary.LittleEndian.AppendUint16(buf, id)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(rec.Seq))
	}
	if firstSeq == 0 {
		buf = append(buf, ckptFooterMagic...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(kept)))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(w))
	} else {
		buf = append(buf, tierFooterMagic...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(firstSeq))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(kept)))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(w))
	}
	buf = binary.LittleEndian.AppendUint64(buf, fingerprint)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, ckptCRC))
	return buf, nil
}

// writeCheckpointFile makes an encoded base tier durable under the
// historic checkpoint name. It is writeTierFile anchored at sequence 0.
func writeCheckpointFile(dir string, buf []byte, watermark int) error {
	return writeTierFile(dir, buf, 0, watermark)
}

// writeTierFile makes an encoded tier durable through atomicPublish (temp
// file, fsync, atomic rename into the canonical name, directory fsync). A
// crash at any point leaves either no tier (a stray temp file Open sweeps
// up) or a complete valid one — never a partial file under the real name.
// The tier becomes live only when a later manifest references it.
func writeTierFile(dir string, buf []byte, firstSeq, watermark int) error {
	pattern := "ckpt-*.tmp"
	if firstSeq > 0 {
		pattern = "tier-*.tmp"
	}
	err := atomicPublish(dir, pattern, tierPath(dir, firstSeq, watermark),
		func(tmp *os.File) error {
			_, err := tmp.Write(buf)
			return err
		},
		func() error { return ckptStage("tmp-written") })
	if err != nil {
		return err
	}
	return ckptStage("renamed")
}

// errCkptInvalid marks a checkpoint file that fails validation; Open falls
// back to an older checkpoint or a full WAL replay.
var errCkptInvalid = errors.New("provlog: invalid checkpoint")

func ckptInvalid(path, format string, args ...any) error {
	return fmt.Errorf("%w %s: %s", errCkptInvalid, filepath.Base(path), fmt.Sprintf(format, args...))
}

// ckptState is what a loaded tier plan seeds the suffix replay with: the
// watermark below which records are already in the store, the dictionary
// state at that point in the stream, and the live tiers (newest first,
// with their CRCs bound) the log continues to build on.
type ckptState struct {
	watermark int
	persisted []int
	sources   []string
	sourceID  map[string]uint16
	tiers     []tierRef
}

// minRowsPerDecoder bounds the decode fan-out: a range smaller than this
// is not worth a goroutine, so small checkpoints decode sequentially no
// matter the requested parallelism.
const minRowsPerDecoder = 4096

// tierLoad is one decoded tier's contribution to a plan load: its sorted
// (hash, seq) columns, its cumulative dictionary state, and the file's
// CRC (bound into the republished manifest).
type tierLoad struct {
	run       provenance.SortedRun
	persisted []int
	sources   []string
	crc       uint32
}

// decodeTierInto reads, validates, and decodes one tier file, placing
// each record into its sequence slot of the shared recs slice and marking
// its slot in the covered bitmap (which spans the whole plan, so a row
// claiming a sequence another tier owns is caught here). The whole file
// is verified by its trailing CRC-32C before any byte is interpreted;
// dictionary entries replay through Space.Intern with the same
// code-agreement check the WAL replay performs, so a tier cut against a
// different space cannot silently remap codes.
//
// The row region is fixed-width and every row validates independently, so
// decode splits into par contiguous row ranges, one goroutine each,
// writing disjoint index ranges of the shared column arrays; adoption
// fans out over the same ranges (Space.AdoptInstancesRange), and each
// record lands in its disjoint sequence slot. par <= 1 is the sequential
// degenerate case, byte-for-byte the historic single-core load.
func decodeTierInto(path string, ref tierRef, space *pipeline.Space, par int, recs []provenance.Record, covered []uint64) (*tierLoad, error) {
	data, release, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	defer release()
	ti, err := parseTierStructure(path, data)
	if err != nil {
		return nil, err
	}
	p := space.Len()
	if ti.p != p {
		return nil, ckptInvalid(path, "tier has %d parameters, space has %d", ti.p, p)
	}
	if ti.fingerprint != space.Fingerprint() {
		return nil, fmt.Errorf("provlog: %s: tier fingerprint %016x does not match space fingerprint %016x (different space?)",
			filepath.Base(path), ti.fingerprint, space.Fingerprint())
	}
	if ti.firstSeq != ref.firstSeq || ti.watermark != ref.watermark {
		return nil, ckptInvalid(path, "covers [%d, %d), plan says [%d, %d)",
			ti.firstSeq, ti.watermark, ref.firstSeq, ref.watermark)
	}
	if ref.crc != 0 && ti.crc != ref.crc {
		return nil, ckptInvalid(path, "checksum does not match its manifest entry")
	}
	count := ti.count

	// Dictionary tables: intern each code's value and require the space to
	// assign the recorded code, exactly as WAL dict-frame replay does. The
	// plan decodes newest tier first, so the newest (cumulative superset)
	// tables drive interning and the older tiers' table prefixes are
	// re-verified entry by entry.
	off := 0
	dict := ti.dict
	persisted := ti.persisted
	for i := 0; i < p; i++ {
		off += 4 // the entry count, already parsed into persisted[i]
		for c := 0; c < persisted[i]; c++ {
			var v pipeline.Value
			switch dict[off] {
			case byte(pipeline.Ordinal):
				v = pipeline.Ord(math.Float64frombits(binary.LittleEndian.Uint64(dict[off+1:])))
				off += 9
			case byte(pipeline.Categorical):
				ln := int(binary.LittleEndian.Uint32(dict[off+1:]))
				v = pipeline.Cat(string(dict[off+5 : off+5+ln]))
				off += 5 + ln
			default:
				return nil, ckptInvalid(path, "dict entry with invalid kind %d", dict[off])
			}
			if got := space.Intern(i, v); got != uint32(c) {
				return nil, fmt.Errorf("provlog: %s: value %v of parameter %q interned as code %d, tier says %d (tier written against a different space?)",
					filepath.Base(path), v, space.At(i).Name, got, c)
			}
		}
	}
	if ti.nSources > math.MaxUint16+1 {
		return nil, ckptInvalid(path, "%d sources", ti.nSources)
	}
	off += 4 // the source count
	sources := make([]string, ti.nSources)
	for id := range sources {
		ln := int(binary.LittleEndian.Uint16(dict[off:]))
		sources[id] = string(dict[off+2 : off+2+ln])
		off += 2 + ln
	}

	// The record section: fixed-width rows placed by their stored seq — a
	// counting sort back into execution order, undoing the hash ordering
	// without a comparison sort. Everything decodes sequentially in row
	// (hash) order — codes, outcomes, sources, hashes — so the only
	// scattered pass is the final placement into sequence slots. Rows
	// carry their instance hash so the load never re-hashes 10^6 code
	// vectors; the CRC guards integrity, and a deterministic sample of
	// rows is recomputed to catch a systematically wrong writer.
	rowSize := 4*p + 19
	rows := ti.rows
	flat := make([]uint32, count*p)
	outs := make([]pipeline.Outcome, count)
	srcs := make([]uint16, count)
	hashes := make([]uint64, count)
	seqs := make([]int32, count)
	hashStride := count/1024 + 1
	decodeRows := func(lo, hi int) error {
		for r := lo; r < hi; r++ {
			row := rows[r*rowSize : (r+1)*rowSize]
			h := binary.LittleEndian.Uint64(row)
			body := row[8:]
			out := pipeline.Outcome(body[4*p])
			if out != pipeline.Succeed && out != pipeline.Fail && out != pipeline.OutcomeInconclusive {
				return ckptInvalid(path, "row %d has outcome %d", r, body[4*p])
			}
			src := binary.LittleEndian.Uint16(body[4*p+1:])
			if int(src) >= ti.nSources {
				return ckptInvalid(path, "row %d references source %d of %d", r, src, ti.nSources)
			}
			seq := binary.LittleEndian.Uint64(body[4*p+3:])
			if seq < uint64(ti.firstSeq) || seq >= uint64(ti.watermark) {
				return ckptInvalid(path, "row %d has seq %d outside the tier range [%d, %d)",
					r, seq, ti.firstSeq, ti.watermark)
			}
			base := r * p
			for i := 0; i < p; i++ {
				c := binary.LittleEndian.Uint32(body[4*i:])
				if int(c) >= persisted[i] {
					return ckptInvalid(path, "row %d references code %d of parameter %d outside its dictionary", r, c, i)
				}
				flat[base+i] = c
			}
			if r%hashStride == 0 && pipeline.HashCodes(flat[base:base+p]) != h {
				return ckptInvalid(path, "row %d hash does not match its codes", r)
			}
			hashes[r] = h
			seqs[r] = int32(seq)
			outs[r] = out
			srcs[r] = src
		}
		return nil
	}
	workers := par
	if max := count / minRowsPerDecoder; workers > max {
		workers = max
	}
	if workers < 1 {
		workers = 1
	}
	// rangeErr runs fn over [0, count) split into workers contiguous
	// ranges, one goroutine each, and reports the error of the lowest
	// errored range — within a range fn stops at its first bad row, so the
	// error surfaced is exactly the one the sequential scan would have hit.
	rangeErr := func(fn func(lo, hi int) error) error {
		if workers == 1 {
			return fn(0, count)
		}
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for g := 0; g < workers; g++ {
			lo, hi := g*count/workers, (g+1)*count/workers
			wg.Add(1)
			go func(g, lo, hi int) {
				defer wg.Done()
				errs[g] = fn(lo, hi)
			}(g, lo, hi)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}
	if err := rangeErr(decodeRows); err != nil {
		return nil, err
	}
	// Sequence slots must be distinct before adoption may fan out: every
	// seq is inside the tier's range (checked per row), so marking the
	// plan-wide bitmap proves the slots disjoint — within this tier and
	// against every tier decoded before it — and the parallel adoption
	// ranges then write disjoint recs slots, race-free by construction.
	for _, s := range seqs {
		if covered[s>>6]&(1<<(uint(s)&63)) != 0 {
			return nil, ckptInvalid(path, "duplicate seq %d", s)
		}
		covered[s>>6] |= 1 << (uint(s) & 63)
	}
	// Code-only instances adopt the decoded matrix wholesale — no Value
	// materialization, no re-hashing — and stream straight into their
	// sequence-ordered slots (the counting sort back into execution
	// order): the index-free load, fanned across the same row ranges.
	if err := rangeErr(func(lo, hi int) error {
		return space.AdoptInstancesRange(flat, hashes, lo, hi, func(r int, in pipeline.Instance) {
			seq := seqs[r]
			recs[seq] = provenance.Record{Seq: int(seq), Instance: in, Outcome: outs[r], Source: sources[srcs[r]]}
		})
	}); err != nil {
		return nil, fmt.Errorf("provlog: %s: %w", filepath.Base(path), err)
	}
	return &tierLoad{
		run:       provenance.SortedRun{Hashes: hashes, Seqs: seqs},
		persisted: persisted,
		sources:   sources,
		crc:       ti.crc,
	}, nil
}

// loadTierPlan loads one candidate tier plan (newest first, partitioning
// [0, watermark) contiguously) into a fresh store: every tier decodes
// through decodeTierInto, records land in their global sequence slots,
// and the per-tier sorted runs are adopted as the store's base runs
// (provenance.Store.LoadSortedRuns) — no hash index is built; identity
// probes binary-search each run, newest first. The store is sharded
// across shards hash ranges (1 = unsharded); each run is hash-sorted, so
// LoadSortedRuns splits it at the shard boundaries and each shard adopts
// its sub-runs in parallel.
//
// The newest tier decodes first, so its cumulative dictionary tables
// seed the space and become the replay state; every older tier's tables
// must then be a prefix of them — older entries re-verify against the
// space, and counts may only shrink going back in time.
func loadTierPlan(dir string, plan []tierRef, space *pipeline.Space, shards, par int) (*provenance.Store, *ckptState, error) {
	if len(plan) == 0 {
		return nil, nil, fmt.Errorf("%w: empty tier plan", errCkptInvalid)
	}
	if err := checkTierChain(plan); err != nil {
		return nil, nil, fmt.Errorf("%w: %v", errCkptInvalid, err)
	}
	w := plan[0].watermark
	recs := make([]provenance.Record, w)
	covered := make([]uint64, (w+63)/64)
	runs := make([]provenance.SortedRun, 0, len(plan))
	cs := &ckptState{watermark: w, tiers: make([]tierRef, 0, len(plan))}
	for i, ref := range plan {
		tl, err := decodeTierInto(filepath.Join(dir, ref.name), ref, space, par, recs, covered)
		if err != nil {
			return nil, nil, err
		}
		if i == 0 {
			cs.persisted = tl.persisted
			cs.sources = tl.sources
			cs.sourceID = make(map[string]uint16, len(tl.sources))
			for id, s := range tl.sources {
				cs.sourceID[s] = uint16(id)
			}
		} else {
			// Older tiers carry earlier — smaller — cumulative tables.
			for j := range tl.persisted {
				if tl.persisted[j] > cs.persisted[j] {
					return nil, nil, ckptInvalid(ref.name, "has %d dictionary entries for parameter %d, newer tier has %d",
						tl.persisted[j], j, cs.persisted[j])
				}
			}
			if len(tl.sources) > len(cs.sources) {
				return nil, nil, ckptInvalid(ref.name, "has %d sources, newer tier has %d", len(tl.sources), len(cs.sources))
			}
			for id, s := range tl.sources {
				if s != cs.sources[id] {
					return nil, nil, ckptInvalid(ref.name, "source %d is %q, newer tier says %q", id, s, cs.sources[id])
				}
			}
		}
		bound := ref
		bound.crc = tl.crc
		cs.tiers = append(cs.tiers, bound)
		runs = append(runs, tl.run)
	}
	st := provenance.NewStoreSharded(space, shards)
	if err := st.LoadSortedRuns(recs, runs); err != nil {
		return nil, nil, fmt.Errorf("provlog: tier plan ending at %s: %w", filepath.Base(plan[0].name), err)
	}
	return st, cs, nil
}

// Checkpoint folds everything the store has committed past the newest
// tier's watermark into a new tier file — O(delta) work, not O(history) —
// merges adjacent tiers while the MergePolicy demands it, atomically
// publishes the resulting tier list in the MANIFEST, and garbage-collects
// the WAL segments and tier files the manifest supersedes. The log stays
// live throughout: the active segment is sealed (rotated) first, the
// sorted run is built from a store snapshot and written outside the log's
// locks, and appends continue into the new segment while compaction runs.
// Compactions are serialized; concurrent Checkpoint calls queue. A
// checkpoint whose watermark would not advance past the newest tier's is
// a no-op.
//
// Crash safety: every tier (fresh or merged) becomes durable by atomic
// rename after an fsync but goes live only when the manifest rename lands,
// and no file is deleted before the manifest and the directory fsync
// complete — so a kill at any point leaves a directory Open recovers: the
// old manifest's state plus not-yet-collected segments (which the
// skip-aware suffix replay tolerates), or the new manifest's state plus
// debris files the next compaction sweeps.
func (l *Log) Checkpoint() error {
	// Register with the compaction wait group before doing anything, so a
	// concurrent Close drains this call — explicit or background — before
	// it releases the directory lock; past that point no file may be
	// written or renamed into a directory another process can own.
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return fmt.Errorf("provlog: log is closed")
	}
	l.compactWG.Add(1)
	l.mu.Unlock()
	defer l.compactWG.Done()

	l.compactMu.Lock()
	defer l.compactMu.Unlock()
	if l.store == nil {
		return fmt.Errorf("provlog: log has no attached store to checkpoint")
	}
	sn := l.store.Snapshot()
	w := sn.Len()

	l.mu.Lock()
	if err := l.ckptBeginLocked(w); err != nil {
		l.mu.Unlock()
		return err
	}
	if w <= l.lastCkptSeq {
		// Nothing new to fold, but a crash between a predecessor's manifest
		// and its collection may have left superseded files; collect them.
		last := l.lastCkptSeq
		l.mu.Unlock()
		if last == 0 {
			return nil
		}
		// The collectable segments may hold the only durable copies of the
		// store's trial votes (a crash can land between a manifest publish
		// and its GC), so the ledger re-emits into the post-rotation
		// segment before anything is deleted, exactly as on the real path.
		if err := l.reemitTrials(l.store.TrialVotesAll()); err != nil {
			return err
		}
		l.mu.Lock()
		err := l.gcLocked(last)
		l.mu.Unlock()
		return err
	}
	fingerprint := l.fingerprint
	// The new tier covers exactly the records past the newest tier's
	// watermark. Its tables are the log's own persisted counters — the
	// cumulative dictionary state, captured under mu after the snapshot,
	// so they cover every code and source the range references and are a
	// superset-extension of every tier below (suffix replay re-verifies
	// any entries persisted past the snapshot against the WAL frames).
	firstSeq := l.lastCkptSeq
	tiers := append([]tierRef(nil), l.tiers...)
	persisted := append([]int(nil), l.persisted...)
	sources := make([]string, len(l.sourceID))
	for s, id := range l.sourceID {
		sources[int(id)] = s
	}
	l.mu.Unlock()

	// Re-emit the store's trial votes now that the active segment has
	// rotated: every vote staged from here on lands at or past the
	// rotation point, which gcLocked never collects, so partial quorums
	// survive the checkpoint no matter where a crash lands. Flaky
	// sessions only — the ledger is empty otherwise and this is free.
	if err := l.reemitTrials(l.store.TrialVotesAll()); err != nil {
		return fmt.Errorf("provlog: checkpoint: re-emitting trial votes: %w", err)
	}

	var ckptStart time.Time
	if l.met != nil {
		ckptStart = time.Now()
	}
	buf, err := encodeTierRange(l.space, fingerprint, sn, firstSeq, w, persisted, sources)
	if err != nil {
		return err
	}
	l.mu.Lock()
	if l.closed {
		// Close won the race while the run was being encoded; nothing has
		// been written yet, so just back out.
		l.mu.Unlock()
		return fmt.Errorf("provlog: log is closed")
	}
	l.mu.Unlock()
	if err := writeTierFile(l.dir, buf, firstSeq, w); err != nil {
		return fmt.Errorf("provlog: checkpoint: %w", err)
	}
	l.met.checkpointed(w, len(buf), time.Since(ckptStart))

	// Settle the tier list under the merge policy, then make it live with
	// one atomic manifest publish. A merge failure does not lose the
	// checkpoint: the unmerged tiers are all valid, so they publish as-is
	// and the error surfaces after the state is safe.
	tiers = append([]tierRef{{
		name:      filepath.Base(tierPath(l.dir, firstSeq, w)),
		firstSeq:  firstSeq,
		watermark: w,
		count:     w - firstSeq,
		crc:       binary.LittleEndian.Uint32(buf[len(buf)-4:]),
	}}, tiers...)
	tiers, mergeErr := l.mergeDue(tiers)

	l.mu.Lock()
	closed := l.closed
	l.mu.Unlock()
	var pubErr error
	if closed {
		// The log was closed while the tier was being written; the renames
		// already made the files durable, but the directory must not be
		// mutated further — the flock may already be released. The old
		// manifest stays authoritative; the unreferenced files are debris.
		pubErr = nil
	} else {
		pubErr = publishManifest(l.dir, fingerprint, tiers)
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if pubErr != nil {
		// The on-disk manifest still names the previous tiers, so the
		// in-memory state must not advance past it: the files just written
		// are left as debris (a retry with the same watermark renames over
		// them; a later success sweeps them) and nothing is collected — a
		// crash now must not strand the manifest referencing deleted files.
		return fmt.Errorf("provlog: checkpoint: %w", pubErr)
	}
	if w > l.lastCkptSeq {
		l.lastCkptSeq = w
	}
	l.tiers = tiers
	l.met.tierCount(len(tiers))
	l.bytesSinceCkpt.Store(0)
	if mergeErr == nil {
		l.compactFailures = 0
	}
	if l.closed {
		return mergeErr
	}
	if err := l.gcLocked(w); err != nil {
		return err
	}
	return mergeErr
}

// ckptBeginLocked prepares the log for a compaction covering records below
// w: it refuses closed/poisoned logs, waits out any in-flight flush, and
// seals the active segment so the compactor only ever reads immutable
// files. The caller holds l.mu.
func (l *Log) ckptBeginLocked(w int) error {
	for {
		if l.closed {
			return fmt.Errorf("provlog: log is closed")
		}
		if l.broken != nil {
			return l.broken
		}
		if w <= l.lastCkptSeq {
			return nil // caller no-ops
		}
		if !l.flushing {
			break
		}
		ch := l.flushDone
		l.mu.Unlock()
		<-ch
		l.mu.Lock()
	}
	if l.size > headerSize {
		first := l.nextSeq
		if l.pendingRecs > 0 {
			// The pending commit window flushes after rotation, into the
			// new segment: its header must name the window's first record.
			first = l.pendingFirst
		}
		if err := l.rotate(first); err != nil {
			return err
		}
	}
	return nil
}

// gcLocked removes WAL segments whose every record lies below the
// watermark w and tier files the live tier list does not reference —
// superseded checkpoints, merged-away inputs, and the debris of crashed
// compactions. Segments are deleted oldest-first and only while their
// successor's header proves full coverage (a segment's records end where
// the next segment's begin); the active segment never qualifies. Tier
// files are judged purely by name against l.tiers, which the manifest
// already names durably — everything else is unreachable by the loader's
// manifest plan. The caller holds l.mu.
func (l *Log) gcLocked(w int) error {
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for i := 0; i+1 < len(segs); i++ {
		if segs[i].index >= l.segIndex {
			break
		}
		next, err := readSegmentFirstSeq(segs[i+1].path)
		if err != nil || next > uint64(w) {
			break
		}
		if err := ckptStage("gc"); err != nil {
			return err
		}
		if err := os.Remove(segs[i].path); err != nil {
			return err
		}
		l.met.segmentGCd()
	}
	if len(l.tiers) == 0 {
		return syncDir(l.dir)
	}
	live := make(map[string]bool, len(l.tiers))
	for _, t := range l.tiers {
		live[t.name] = true
	}
	refs, err := listTierFiles(l.dir)
	if err != nil {
		return err
	}
	for _, r := range refs {
		if live[r.name] {
			continue
		}
		if err := ckptStage("gc"); err != nil {
			return err
		}
		if err := os.Remove(filepath.Join(l.dir, r.name)); err != nil {
			return err
		}
		l.met.segmentGCd()
	}
	return syncDir(l.dir)
}

// readSegmentFirstSeq reads and validates one segment's header and returns
// the sequence of its first record.
func readSegmentFirstSeq(path string) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	hb := make([]byte, headerSize)
	if _, err := f.ReadAt(hb, 0); err != nil {
		return 0, errTorn
	}
	h, err := decodeHeader(hb)
	if err != nil {
		return 0, err
	}
	return h.firstSeq, nil
}

// maybeCompactLocked spawns a background compaction when the policy's
// thresholds are crossed. At most one compaction runs at a time; a trigger
// that finds one in flight is dropped and re-evaluated at the next commit
// window. The caller holds l.mu.
func (l *Log) maybeCompactLocked() {
	if l.compact.EveryRecords <= 0 && l.compact.EveryBytes <= 0 {
		return
	}
	if l.closed || l.broken != nil || l.compacting {
		return
	}
	// Consecutive background failures back the trigger off exponentially
	// (in units of the configured period), so a persistently failing
	// compaction — a full disk, say — does not re-encode the whole
	// history on every commit window. Any success resets the backoff.
	scale := 1
	if f := l.compactFailures; f > 0 {
		if f > 16 {
			f = 16
		}
		scale = 1 << f
	}
	due := l.compact.EveryRecords > 0 && l.nextSeq-l.lastCkptSeq >= l.compact.EveryRecords*scale
	if !due {
		due = l.compact.EveryBytes > 0 && l.bytesSinceCkpt.Load() >= l.compact.EveryBytes*int64(scale)
	}
	if !due {
		return
	}
	l.compacting = true
	l.compactWG.Add(1)
	go func() {
		defer l.compactWG.Done()
		// A background failure loses nothing — the WAL is still complete —
		// so it is not fatal: the trigger retries with backoff, and an
		// explicit Checkpoint still surfaces the error to the caller.
		err := l.Checkpoint()
		l.mu.Lock()
		l.compacting = false
		if err != nil {
			l.compactFailures++
		}
		l.mu.Unlock()
	}()
}
