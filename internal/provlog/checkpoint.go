package provlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/pipeline"
	"repro/internal/provenance"
)

// Checkpoint files. A checkpoint is the log's sealed history folded into
// one sorted run: every record with sequence below the watermark, keyed by
// instance hash, with the dictionary frames that define its codes and
// sources consolidated into dense tables. Open loads the newest valid
// checkpoint with an index-free sequential scan and replays only the WAL
// suffix past its watermark, so the cost of resuming a long session is
// bounded by the live history, not its whole past (see docs/ONDISK.md for
// the byte-level format and the crash-recovery rules).
//
// Layout (all integers little-endian; the trailing CRC-32C covers every
// byte before it, so one pass over the file validates everything):
//
//	header  (16)  magic "BDCKPv01", parameter count (uint32), reserved
//	              uint32 (zero)
//	dict          per parameter, in space order: entry count (uint32),
//	              then one entry per code in code order — kind byte, then
//	              ordinal float64 bits or categorical uint32 length+bytes
//	sources       entry count (uint32), then one entry per id in id
//	              order — uint16 length + bytes
//	records       recordCount fixed-width rows sorted by (instance hash,
//	              seq): instance hash (uint64), interned codes (params ×
//	              uint32), outcome byte, source id (uint16), seq (uint64)
//	footer  (36)  magic "BDCKPend", record count (uint64), seq watermark
//	              (uint64), space fingerprint (uint64), CRC-32C (uint32)
//	              of bytes [0, size-4)
//
// The run is deduplicated last-write-wins per instance (ties on hash break
// by seq; the survivor is the highest seq). A store-fed log never contains
// two records of one instance, so v1 checkpoints always carry exactly
// watermark records with dense sequences 0..watermark-1 — the loader
// verifies this and a compactor that would have to drop a sequence refuses
// to write the run instead.
const (
	ckptMagic       = "BDCKPv01"
	ckptFooterMagic = "BDCKPend"
	ckptHeaderSize  = 16
	ckptFooterSize  = 36
)

// ckptCRC is the checksum the checkpoint file uses: CRC-32C (Castagnoli),
// hardware-accelerated on amd64/arm64, unlike the WAL's frame-level IEEE
// polynomial — a checkpoint validates tens of megabytes in one pass.
var ckptCRC = crc32.MakeTable(crc32.Castagnoli)

// CompactPolicy schedules automatic compaction: when either threshold is
// crossed by freshly logged data, the log folds its sealed history into a
// new checkpoint in the background (one compaction at a time; a busy
// trigger is skipped and retried at the next commit window).
type CompactPolicy struct {
	// EveryRecords triggers a checkpoint when at least this many records
	// have been logged past the newest checkpoint's watermark. <= 0
	// disables the record trigger.
	EveryRecords int
	// EveryBytes triggers a checkpoint when at least this many WAL bytes
	// have been written since the newest checkpoint. <= 0 disables the
	// size trigger.
	EveryBytes int64
}

// WithCompactPolicy enables automatic background compaction (see
// CompactPolicy). Without it the log only compacts on explicit Checkpoint
// calls.
func WithCompactPolicy(p CompactPolicy) Option {
	return func(l *Log) { l.compact = p }
}

// ckptTestHook, when set, runs at the named stages of a compaction —
// "tmp-written" (checkpoint bytes durable in the temp file, not yet
// renamed), "renamed" (checkpoint in place, segments not yet collected),
// and "gc" (after the first superseded file was removed). Returning an
// error aborts the compaction at exactly that point, leaving the on-disk
// state a SIGKILL would have left; the crash-during-compaction torture
// tests drive every stage through it.
var ckptTestHook func(stage string) error

func ckptStage(stage string) error {
	if ckptTestHook != nil {
		return ckptTestHook(stage)
	}
	return nil
}

// ckptFile is one discovered checkpoint file.
type ckptFile struct {
	path      string
	watermark int
}

func ckptPath(dir string, watermark int) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%016d.ckpt", watermark))
}

// listCheckpoints returns the directory's checkpoint files ordered newest
// (highest watermark) first. Only the name is parsed here; validity is
// decided by loadCheckpoint.
func listCheckpoints(dir string) ([]ckptFile, error) {
	names, err := filepath.Glob(filepath.Join(dir, "ckpt-*.ckpt"))
	if err != nil {
		return nil, err
	}
	cks := make([]ckptFile, 0, len(names))
	for _, p := range names {
		base := filepath.Base(p)
		numStr := strings.TrimSuffix(strings.TrimPrefix(base, "ckpt-"), ".ckpt")
		n, err := strconv.ParseUint(numStr, 10, 63)
		if err != nil {
			return nil, fmt.Errorf("provlog: unrecognized checkpoint file %q", base)
		}
		cks = append(cks, ckptFile{path: p, watermark: int(n)})
	}
	sort.Slice(cks, func(i, j int) bool { return cks[i].watermark > cks[j].watermark })
	return cks, nil
}

// removeStrayTmp deletes leftover checkpoint temp files — the debris of a
// crash between writing and renaming a checkpoint. Called with the
// directory lock held, so no live compactor owns them.
func removeStrayTmp(dir string) {
	if names, err := filepath.Glob(filepath.Join(dir, "ckpt-*.tmp")); err == nil {
		for _, p := range names {
			os.Remove(p)
		}
	}
}

// encodeCheckpoint renders the first w records of the snapshot as one
// checkpoint file. The dictionary tables are derived from the record
// prefix itself: the WAL emits a dict frame for every code up to the
// largest one a record references, immediately before that record and in
// the same commit window, so the codes 0..max(code) per parameter — and
// the sources in first-use order — are exactly the dictionary state at the
// watermark's position in the stream.
func encodeCheckpoint(space *pipeline.Space, fingerprint uint64, sn provenance.Snapshot, w int) ([]byte, error) {
	p := space.Len()
	persisted := make([]int, p)
	var sources []string
	sourceID := make(map[string]uint16)
	for i := 0; i < w; i++ {
		rec := sn.At(i)
		for j := 0; j < p; j++ {
			if c := int(rec.Instance.Code(j)) + 1; c > persisted[j] {
				persisted[j] = c
			}
		}
		if _, ok := sourceID[rec.Source]; !ok {
			if len(sources) > math.MaxUint16 {
				return nil, fmt.Errorf("provlog: checkpoint: too many distinct sources")
			}
			sourceID[rec.Source] = uint16(len(sources))
			sources = append(sources, rec.Source)
		}
	}

	// The sorted run: record order by (instance hash, seq), deduplicated
	// last-write-wins. A duplicate instance cannot come out of a
	// provenance store, and dropping one would leave a sequence gap the
	// loader rejects, so a survivor set smaller than w refuses to encode.
	order := make([]int32, w)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		ha, hb := sn.At(int(order[a])).Instance.Hash(), sn.At(int(order[b])).Instance.Hash()
		if ha != hb {
			return ha < hb
		}
		return order[a] < order[b]
	})
	kept := order[:0]
	for i := 0; i < len(order); i++ {
		if i+1 < len(order) {
			this, next := sn.At(int(order[i])).Instance, sn.At(int(order[i+1])).Instance
			if this.Hash() == next.Hash() && this.Equal(next) {
				continue // last-write-wins: the higher seq follows in the order
			}
		}
		kept = append(kept, order[i])
	}
	if len(kept) != w {
		return nil, fmt.Errorf("provlog: checkpoint: snapshot holds duplicate instances (%d of %d records survive dedup)",
			len(kept), w)
	}

	rowSize := 4*p + 19
	buf := make([]byte, 0, ckptHeaderSize+w*rowSize+ckptFooterSize+4096)
	buf = append(buf, ckptMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p))
	buf = binary.LittleEndian.AppendUint32(buf, 0)
	for i := 0; i < p; i++ {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(persisted[i]))
		for c := 0; c < persisted[i]; c++ {
			v := space.InternedValue(i, uint32(c))
			buf = append(buf, byte(v.Kind()))
			if v.Kind() == pipeline.Ordinal {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Num()))
			} else {
				s := v.Str()
				if len(s) > maxBlob {
					return nil, fmt.Errorf("provlog: checkpoint: categorical value of parameter %q is %d bytes, limit %d",
						space.At(i).Name, len(s), maxBlob)
				}
				buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
				buf = append(buf, s...)
			}
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sources)))
	for _, s := range sources {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
		buf = append(buf, s...)
	}
	for _, seq := range kept {
		rec := sn.At(int(seq))
		buf = binary.LittleEndian.AppendUint64(buf, rec.Instance.Hash())
		for i := 0; i < p; i++ {
			buf = binary.LittleEndian.AppendUint32(buf, rec.Instance.Code(i))
		}
		buf = append(buf, byte(rec.Outcome))
		buf = binary.LittleEndian.AppendUint16(buf, sourceID[rec.Source])
		buf = binary.LittleEndian.AppendUint64(buf, uint64(rec.Seq))
	}
	buf = append(buf, ckptFooterMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(kept)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(w))
	buf = binary.LittleEndian.AppendUint64(buf, fingerprint)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, ckptCRC))
	return buf, nil
}

// writeCheckpointFile makes the encoded checkpoint durable: temp file,
// fsync, atomic rename into the canonical name, directory fsync. A crash
// at any point leaves either no checkpoint (a stray temp file Open sweeps
// up) or a complete valid one — never a partial file under the real name.
func writeCheckpointFile(dir string, buf []byte, watermark int) error {
	tmp, err := os.CreateTemp(dir, "ckpt-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := ckptStage("tmp-written"); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), ckptPath(dir, watermark)); err != nil {
		return err
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	return ckptStage("renamed")
}

// errCkptInvalid marks a checkpoint file that fails validation; Open falls
// back to an older checkpoint or a full WAL replay.
var errCkptInvalid = errors.New("provlog: invalid checkpoint")

func ckptInvalid(path, format string, args ...any) error {
	return fmt.Errorf("%w %s: %s", errCkptInvalid, filepath.Base(path), fmt.Sprintf(format, args...))
}

// ckptState is what a loaded checkpoint seeds the suffix replay with: the
// watermark below which records are already in the store, and the
// dictionary state at that point in the stream.
type ckptState struct {
	watermark int
	persisted []int
	sources   []string
	sourceID  map[string]uint16
}

// minRowsPerDecoder bounds the decode fan-out: a range smaller than this
// is not worth a goroutine, so small checkpoints decode sequentially no
// matter the requested parallelism.
const minRowsPerDecoder = 4096

// loadCheckpoint reads, validates, and decodes one checkpoint file into a
// fresh store, adopting the rows as the store's sorted base run
// (provenance.Store.LoadSortedRun): no hash index is built — the run's
// hash order, recomputed from the code rows, serves identity probes by
// binary search. The store is sharded across shards hash ranges (1 =
// unsharded); the run is hash-sorted, so LoadSortedRun splits it at the
// shard boundaries and each shard adopts its sub-run in parallel. The
// whole file is verified by its trailing CRC-32C before any byte is
// interpreted; dictionary entries replay through Space.Intern with the
// same code-agreement check the WAL replay performs.
//
// The row region is fixed-width and every row validates independently, so
// decode splits into par contiguous row ranges, one goroutine each,
// writing disjoint index ranges of the shared column arrays; adoption fans
// out over the same ranges (Space.AdoptInstancesRange), and each record
// lands in its disjoint sequence slot. par <= 1 is the sequential
// degenerate case, byte-for-byte the historic single-core load.
func loadCheckpoint(path string, space *pipeline.Space, shards, par int) (*provenance.Store, *ckptState, error) {
	data, release, err := mapFile(path)
	if err != nil {
		return nil, nil, err
	}
	defer release()
	if len(data) < ckptHeaderSize+ckptFooterSize {
		return nil, nil, ckptInvalid(path, "file is %d bytes", len(data))
	}
	if crc32.Checksum(data[:len(data)-4], ckptCRC) != binary.LittleEndian.Uint32(data[len(data)-4:]) {
		return nil, nil, ckptInvalid(path, "checksum mismatch")
	}
	if string(data[:8]) != ckptMagic {
		return nil, nil, ckptInvalid(path, "bad magic")
	}
	p := space.Len()
	if got := binary.LittleEndian.Uint32(data[8:12]); int(got) != p {
		return nil, nil, ckptInvalid(path, "checkpoint has %d parameters, space has %d", got, p)
	}
	footer := data[len(data)-ckptFooterSize:]
	if string(footer[:8]) != ckptFooterMagic {
		return nil, nil, ckptInvalid(path, "bad footer magic")
	}
	count := binary.LittleEndian.Uint64(footer[8:16])
	watermark := binary.LittleEndian.Uint64(footer[16:24])
	fingerprint := binary.LittleEndian.Uint64(footer[24:32])
	if fingerprint != space.Fingerprint() {
		return nil, nil, fmt.Errorf("provlog: %s: checkpoint fingerprint %016x does not match space fingerprint %016x (different space?)",
			filepath.Base(path), fingerprint, space.Fingerprint())
	}
	if count != watermark {
		return nil, nil, ckptInvalid(path, "%d records for watermark %d (sparse runs are not loadable)", count, watermark)
	}
	w := int(watermark)

	// Dictionary tables: intern each code's value and require the space to
	// assign the recorded code, exactly as WAL dict-frame replay does.
	off := ckptHeaderSize
	body := data[:len(data)-ckptFooterSize]
	need := func(n int) ([]byte, error) {
		if off+n > len(body) {
			return nil, ckptInvalid(path, "truncated at offset %d", off)
		}
		b := body[off : off+n]
		off += n
		return b, nil
	}
	persisted := make([]int, p)
	for i := 0; i < p; i++ {
		b, err := need(4)
		if err != nil {
			return nil, nil, err
		}
		n := int(binary.LittleEndian.Uint32(b))
		persisted[i] = n
		for c := 0; c < n; c++ {
			kb, err := need(1)
			if err != nil {
				return nil, nil, err
			}
			var v pipeline.Value
			switch pipeline.Kind(kb[0]) {
			case pipeline.Ordinal:
				ob, err := need(8)
				if err != nil {
					return nil, nil, err
				}
				v = pipeline.Ord(math.Float64frombits(binary.LittleEndian.Uint64(ob)))
			case pipeline.Categorical:
				lb, err := need(4)
				if err != nil {
					return nil, nil, err
				}
				ln := binary.LittleEndian.Uint32(lb)
				if ln > maxBlob {
					return nil, nil, ckptInvalid(path, "categorical value of %d bytes", ln)
				}
				sb, err := need(int(ln))
				if err != nil {
					return nil, nil, err
				}
				v = pipeline.Cat(string(sb))
			default:
				return nil, nil, ckptInvalid(path, "dict entry with invalid kind %d", kb[0])
			}
			if got := space.Intern(i, v); got != uint32(c) {
				return nil, nil, fmt.Errorf("provlog: %s: value %v of parameter %q interned as code %d, checkpoint says %d (checkpoint written against a different space?)",
					filepath.Base(path), v, space.At(i).Name, got, c)
			}
		}
	}
	sb, err := need(4)
	if err != nil {
		return nil, nil, err
	}
	nSources := int(binary.LittleEndian.Uint32(sb))
	if nSources > math.MaxUint16+1 {
		return nil, nil, ckptInvalid(path, "%d sources", nSources)
	}
	sources := make([]string, nSources)
	sourceID := make(map[string]uint16, nSources)
	for id := 0; id < nSources; id++ {
		lb, err := need(2)
		if err != nil {
			return nil, nil, err
		}
		nb, err := need(int(binary.LittleEndian.Uint16(lb)))
		if err != nil {
			return nil, nil, err
		}
		sources[id] = string(nb)
		sourceID[sources[id]] = uint16(id)
	}

	// The record section: fixed-width rows placed by their stored seq — a
	// counting sort back into execution order, undoing the hash ordering
	// without a comparison sort.
	rowSize := 4*p + 19
	rows := body[off:]
	if len(rows) != w*rowSize {
		return nil, nil, ckptInvalid(path, "record section is %d bytes, want %d rows of %d", len(rows), w, rowSize)
	}
	// Everything decodes sequentially in row (hash) order — codes,
	// outcomes, sources, hashes — so the only scattered pass is the final
	// placement of records into sequence order, a counting sort by the
	// stored seq. Rows carry their instance hash so the load never
	// re-hashes 10^6 code vectors; the CRC guards integrity, and a
	// deterministic sample of rows is recomputed to catch a systematically
	// wrong writer.
	flat := make([]uint32, w*p)
	outs := make([]pipeline.Outcome, w)
	srcs := make([]uint16, w)
	hashes := make([]uint64, w)
	seqs := make([]int32, w)
	hashStride := w/1024 + 1
	decodeRows := func(lo, hi int) error {
		for r := lo; r < hi; r++ {
			row := rows[r*rowSize : (r+1)*rowSize]
			h := binary.LittleEndian.Uint64(row)
			body := row[8:]
			out := pipeline.Outcome(body[4*p])
			if out != pipeline.Succeed && out != pipeline.Fail {
				return ckptInvalid(path, "row %d has outcome %d", r, body[4*p])
			}
			src := binary.LittleEndian.Uint16(body[4*p+1:])
			if int(src) >= nSources {
				return ckptInvalid(path, "row %d references source %d of %d", r, src, nSources)
			}
			seq := binary.LittleEndian.Uint64(body[4*p+3:])
			if seq >= watermark {
				return ckptInvalid(path, "row %d has seq %d beyond watermark %d", r, seq, watermark)
			}
			base := r * p
			for i := 0; i < p; i++ {
				c := binary.LittleEndian.Uint32(body[4*i:])
				if int(c) >= persisted[i] {
					return ckptInvalid(path, "row %d references code %d of parameter %d outside its dictionary", r, c, i)
				}
				flat[base+i] = c
			}
			if r%hashStride == 0 && pipeline.HashCodes(flat[base:base+p]) != h {
				return ckptInvalid(path, "row %d hash does not match its codes", r)
			}
			hashes[r] = h
			seqs[r] = int32(seq)
			outs[r] = out
			srcs[r] = src
		}
		return nil
	}
	workers := par
	if max := w / minRowsPerDecoder; workers > max {
		workers = max
	}
	if workers < 1 {
		workers = 1
	}
	// rangeErr runs fn over [0, w) split into workers contiguous ranges,
	// one goroutine each, and reports the error of the lowest errored
	// range — within a range fn stops at its first bad row, so the error
	// surfaced is exactly the one the sequential scan would have hit.
	rangeErr := func(fn func(lo, hi int) error) error {
		if workers == 1 {
			return fn(0, w)
		}
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for g := 0; g < workers; g++ {
			lo, hi := g*w/workers, (g+1)*w/workers
			wg.Add(1)
			go func(g, lo, hi int) {
				defer wg.Done()
				errs[g] = fn(lo, hi)
			}(g, lo, hi)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}
	if err := rangeErr(decodeRows); err != nil {
		return nil, nil, err
	}
	// Sequence slots must be distinct before adoption may fan out: every
	// seq is below the watermark (checked per row), so a cheap bitmap pass
	// proves the seq column a permutation of [0, w) — the parallel ranges
	// then write disjoint recs slots, race-free by construction.
	seen := make([]uint64, (w+63)/64)
	for _, s := range seqs {
		if seen[s>>6]&(1<<(uint(s)&63)) != 0 {
			return nil, nil, ckptInvalid(path, "duplicate seq %d", s)
		}
		seen[s>>6] |= 1 << (uint(s) & 63)
	}
	// Code-only instances adopt the decoded matrix wholesale — no Value
	// materialization, no re-hashing — and stream straight into their
	// sequence-ordered slots (the counting sort back into execution
	// order): the index-free load, fanned across the same row ranges.
	recs := make([]provenance.Record, w)
	if err := rangeErr(func(lo, hi int) error {
		return space.AdoptInstancesRange(flat, hashes, lo, hi, func(r int, in pipeline.Instance) {
			seq := seqs[r]
			recs[seq] = provenance.Record{Seq: int(seq), Instance: in, Outcome: outs[r], Source: sources[srcs[r]]}
		})
	}); err != nil {
		return nil, nil, fmt.Errorf("provlog: %s: %w", filepath.Base(path), err)
	}
	st := provenance.NewStoreSharded(space, shards)
	if err := st.LoadSortedRun(recs, hashes, seqs); err != nil {
		return nil, nil, fmt.Errorf("provlog: %s: %w", filepath.Base(path), err)
	}
	return st, &ckptState{
		watermark: w,
		persisted: persisted,
		sources:   sources,
		sourceID:  sourceID,
	}, nil
}

// Checkpoint folds everything the store has committed so far into a new
// checkpoint file and garbage-collects the WAL segments and older
// checkpoints it supersedes. The log stays live throughout: the active
// segment is sealed (rotated) first, the sorted run is built from a store
// snapshot and written outside the log's locks, and appends continue into
// the new segment while compaction runs. Compactions are serialized;
// concurrent Checkpoint calls queue. A checkpoint whose watermark would
// not advance past the newest one is a no-op.
//
// Crash safety: the checkpoint becomes visible only by atomic rename after
// an fsync, and no segment is deleted before the rename and the directory
// fsync complete, so a kill at any point leaves a directory Open recovers
// — the old state, or the new checkpoint plus not-yet-collected segments
// (which the skip-aware suffix replay tolerates and the next compaction
// collects).
func (l *Log) Checkpoint() error {
	// Register with the compaction wait group before doing anything, so a
	// concurrent Close drains this call — explicit or background — before
	// it releases the directory lock; past that point no file may be
	// written or renamed into a directory another process can own.
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return fmt.Errorf("provlog: log is closed")
	}
	l.compactWG.Add(1)
	l.mu.Unlock()
	defer l.compactWG.Done()

	l.compactMu.Lock()
	defer l.compactMu.Unlock()
	if l.store == nil {
		return fmt.Errorf("provlog: log has no attached store to checkpoint")
	}
	sn := l.store.Snapshot()
	w := sn.Len()

	l.mu.Lock()
	if err := l.ckptBeginLocked(w); err != nil {
		l.mu.Unlock()
		return err
	}
	if w <= l.lastCkptSeq {
		// Nothing new to fold, but a crash between a predecessor's rename
		// and its collection may have left superseded files; collect them.
		var err error
		if l.lastCkptSeq > 0 {
			err = l.gcLocked(l.lastCkptSeq)
		}
		l.mu.Unlock()
		return err
	}
	fingerprint := l.fingerprint
	l.mu.Unlock()

	var ckptStart time.Time
	if l.met != nil {
		ckptStart = time.Now()
	}
	buf, err := encodeCheckpoint(l.space, fingerprint, sn, w)
	if err != nil {
		return err
	}
	l.mu.Lock()
	if l.closed {
		// Close won the race while the run was being encoded; nothing has
		// been written yet, so just back out.
		l.mu.Unlock()
		return fmt.Errorf("provlog: log is closed")
	}
	l.mu.Unlock()
	if err := writeCheckpointFile(l.dir, buf, w); err != nil {
		return fmt.Errorf("provlog: checkpoint: %w", err)
	}
	l.met.checkpointed(w, len(buf), time.Since(ckptStart))

	l.mu.Lock()
	defer l.mu.Unlock()
	if w > l.lastCkptSeq {
		l.lastCkptSeq = w
	}
	l.bytesSinceCkpt.Store(0)
	l.compactFailures = 0
	if l.closed {
		// The log was closed while the file was being written; the rename
		// already made the checkpoint durable, but the directory must not
		// be mutated further — the flock may already be released.
		return nil
	}
	return l.gcLocked(w)
}

// ckptBeginLocked prepares the log for a compaction covering records below
// w: it refuses closed/poisoned logs, waits out any in-flight flush, and
// seals the active segment so the compactor only ever reads immutable
// files. The caller holds l.mu.
func (l *Log) ckptBeginLocked(w int) error {
	for {
		if l.closed {
			return fmt.Errorf("provlog: log is closed")
		}
		if l.broken != nil {
			return l.broken
		}
		if w <= l.lastCkptSeq {
			return nil // caller no-ops
		}
		if !l.flushing {
			break
		}
		ch := l.flushDone
		l.mu.Unlock()
		<-ch
		l.mu.Lock()
	}
	if l.size > headerSize {
		first := l.nextSeq
		if l.pendingRecs > 0 {
			// The pending commit window flushes after rotation, into the
			// new segment: its header must name the window's first record.
			first = l.pendingFirst
		}
		if err := l.rotate(first); err != nil {
			return err
		}
	}
	return nil
}

// gcLocked removes WAL segments whose every record lies below the
// watermark w and checkpoint files older than w. Segments are deleted
// oldest-first and only while their successor's header proves full
// coverage (a segment's records end where the next segment's begin); the
// active segment never qualifies. The caller holds l.mu.
func (l *Log) gcLocked(w int) error {
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for i := 0; i+1 < len(segs); i++ {
		if segs[i].index >= l.segIndex {
			break
		}
		next, err := readSegmentFirstSeq(segs[i+1].path)
		if err != nil || next > uint64(w) {
			break
		}
		if err := ckptStage("gc"); err != nil {
			return err
		}
		if err := os.Remove(segs[i].path); err != nil {
			return err
		}
		l.met.segmentGCd()
	}
	cks, err := listCheckpoints(l.dir)
	if err != nil {
		return err
	}
	for _, ck := range cks {
		if ck.watermark < w {
			if err := ckptStage("gc"); err != nil {
				return err
			}
			if err := os.Remove(ck.path); err != nil {
				return err
			}
			l.met.segmentGCd()
		}
	}
	return syncDir(l.dir)
}

// readSegmentFirstSeq reads and validates one segment's header and returns
// the sequence of its first record.
func readSegmentFirstSeq(path string) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	hb := make([]byte, headerSize)
	if _, err := f.ReadAt(hb, 0); err != nil {
		return 0, errTorn
	}
	h, err := decodeHeader(hb)
	if err != nil {
		return 0, err
	}
	return h.firstSeq, nil
}

// maybeCompactLocked spawns a background compaction when the policy's
// thresholds are crossed. At most one compaction runs at a time; a trigger
// that finds one in flight is dropped and re-evaluated at the next commit
// window. The caller holds l.mu.
func (l *Log) maybeCompactLocked() {
	if l.compact.EveryRecords <= 0 && l.compact.EveryBytes <= 0 {
		return
	}
	if l.closed || l.broken != nil || l.compacting {
		return
	}
	// Consecutive background failures back the trigger off exponentially
	// (in units of the configured period), so a persistently failing
	// compaction — a full disk, say — does not re-encode the whole
	// history on every commit window. Any success resets the backoff.
	scale := 1
	if f := l.compactFailures; f > 0 {
		if f > 16 {
			f = 16
		}
		scale = 1 << f
	}
	due := l.compact.EveryRecords > 0 && l.nextSeq-l.lastCkptSeq >= l.compact.EveryRecords*scale
	if !due {
		due = l.compact.EveryBytes > 0 && l.bytesSinceCkpt.Load() >= l.compact.EveryBytes*int64(scale)
	}
	if !due {
		return
	}
	l.compacting = true
	l.compactWG.Add(1)
	go func() {
		defer l.compactWG.Done()
		// A background failure loses nothing — the WAL is still complete —
		// so it is not fatal: the trigger retries with backoff, and an
		// explicit Checkpoint still surfaces the error to the caller.
		err := l.Checkpoint()
		l.mu.Lock()
		l.compacting = false
		if err != nil {
			l.compactFailures++
		}
		l.mu.Unlock()
	}()
}
