//go:build unix

package provlog

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an exclusive advisory lock on the directory's lock file so
// two live processes can never append to the same log and interleave
// frames. The lock releases on Close and automatically when the process
// dies, so a killed run never blocks its own resume.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "wal.lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("provlog: %s is locked by another process: %w", dir, err)
	}
	return f, nil
}
