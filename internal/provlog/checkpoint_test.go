package provlog

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/pipeline"
	"repro/internal/predicate"
	"repro/internal/provenance"
)

// assertStoreMatches verifies the store holds exactly the given records in
// execution order.
func assertStoreMatches(t *testing.T, st *provenance.Store, ins []pipeline.Instance, outs []pipeline.Outcome, srcs []string) {
	t.Helper()
	if st.Len() != len(ins) {
		t.Fatalf("store holds %d records, want %d", st.Len(), len(ins))
	}
	sn := st.Snapshot()
	for i := range ins {
		r := sn.At(i)
		if r.Seq != i {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
		if r.Instance.Key() != ins[i].Key() || r.Outcome != outs[i] || r.Source != srcs[i] {
			t.Fatalf("record %d = {%v %v %q}, want {%v %v %q}",
				i, r.Instance, r.Outcome, r.Source, ins[i], outs[i], srcs[i])
		}
	}
}

// assertStoresEqual compares two stores rebuilt over independently
// constructed spaces: the records (order, identity, outcome, source), the
// interning dictionaries, and the behavior of every indexed query surface.
func assertStoresEqual(t *testing.T, a, b *provenance.Store) {
	t.Helper()
	sa, sb := a.Space(), b.Space()
	if sa.Len() != sb.Len() {
		t.Fatalf("spaces have %d and %d parameters", sa.Len(), sb.Len())
	}
	if a.Len() != b.Len() {
		t.Fatalf("stores hold %d and %d records", a.Len(), b.Len())
	}
	// Dictionaries: same codes assigned to the same values per parameter.
	for i := 0; i < sa.Len(); i++ {
		if sa.NumCodes(i) != sb.NumCodes(i) {
			t.Fatalf("parameter %d has %d and %d interned codes", i, sa.NumCodes(i), sb.NumCodes(i))
		}
		for c := 0; c < sa.NumCodes(i); c++ {
			va, vb := sa.InternedValue(i, uint32(c)), sb.InternedValue(i, uint32(c))
			if va.Kind() != vb.Kind() || va.String() != vb.String() {
				t.Fatalf("parameter %d code %d interned as %v and %v", i, c, va, vb)
			}
		}
	}
	// Records in execution order, plus Lookup through the identity index.
	na, nb := a.Snapshot(), b.Snapshot()
	for i := 0; i < na.Len(); i++ {
		ra, rb := na.At(i), nb.At(i)
		if ra.Seq != rb.Seq || ra.Instance.Key() != rb.Instance.Key() ||
			ra.Outcome != rb.Outcome || ra.Source != rb.Source {
			t.Fatalf("record %d = {%d %v %v %q} and {%d %v %v %q}",
				i, ra.Seq, ra.Instance, ra.Outcome, ra.Source,
				rb.Seq, rb.Instance, rb.Outcome, rb.Source)
		}
		if out, ok := b.Lookup(rb.Instance); !ok || out != ra.Outcome {
			t.Fatalf("record %d: Lookup = %v, %v", i, out, ok)
		}
	}
	// Outcome and posting indices through their query surfaces.
	asucc, afail := a.Outcomes()
	bsucc, bfail := b.Outcomes()
	if asucc != bsucc || afail != bfail {
		t.Fatalf("outcomes (%d, %d) and (%d, %d)", asucc, afail, bsucc, bfail)
	}
	keys := func(ins []pipeline.Instance) string {
		parts := make([]string, len(ins))
		for i, in := range ins {
			parts[i] = in.Key()
		}
		return strings.Join(parts, "\n")
	}
	if keys(a.Failing()) != keys(b.Failing()) {
		t.Fatal("failing sets differ")
	}
	if keys(a.Succeeding()) != keys(b.Succeeding()) {
		t.Fatal("succeeding sets differ")
	}
	if fa, oka := a.FirstFailing(); oka {
		fb, okb := b.FirstFailing()
		if !okb || fa.Key() != fb.Key() {
			t.Fatal("first failing differs")
		}
		if keys(a.DisjointSucceeding(fa)) != keys(b.DisjointSucceeding(fb)) {
			t.Fatal("disjoint succeeding sets differ")
		}
	}
	for i := 0; i < sa.Len(); i++ {
		for c := 0; c < sa.NumCodes(i); c++ {
			cond := predicate.Conjunction{predicate.T(sa.At(i).Name, predicate.Eq, sa.InternedValue(i, uint32(c)))}
			as, af := a.CountSatisfying(cond)
			bs, bf := b.CountSatisfying(cond)
			if as != bs || af != bf {
				t.Fatalf("CountSatisfying(%v) = (%d, %d) and (%d, %d)", cond, as, af, bs, bf)
			}
		}
	}
}

// buildCheckpointed fills a log with n records through the store and runs
// an explicit checkpoint, returning the recorded history.
func buildCheckpointed(t *testing.T, dir string, n int, opts ...Option) ([]pipeline.Instance, []pipeline.Outcome, []string) {
	t.Helper()
	s := testSpace(t)
	l, st, err := Open(dir, s, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ins, outs, srcs := testRecords(t, s, n)
	fillStore(t, st, ins, outs, srcs)
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return ins, outs, srcs
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ins, outs, srcs := buildCheckpointed(t, dir, 20)

	// The sealed history must be folded: one checkpoint, and only the
	// post-rotation active segment left.
	cks, err := listCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cks) != 1 || cks[0].watermark != len(ins) {
		t.Fatalf("checkpoints = %+v, want one at watermark %d", cks, len(ins))
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("segments after compaction = %d, want 1 (the empty active segment)", len(segs))
	}

	// Open must rebuild the identical store from checkpoint + empty suffix
	// and keep accepting appends that survive a further reopen.
	s2 := testSpace(t)
	l2, st2, err := Open(dir, s2)
	if err != nil {
		t.Fatal(err)
	}
	assertStoreMatches(t, st2, ins, outs, srcs)
	more, mouts, msrcs := testRecords(t, s2, len(ins)+5)
	for i := len(ins); i < len(more); i++ {
		if err := st2.Add(more[i], mouts[i], msrcs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Replay(dir, testSpace(t))
	if err != nil {
		t.Fatal(err)
	}
	assertStoreMatches(t, got, more, mouts, msrcs)
}

func TestCheckpointSuffixReplay(t *testing.T) {
	dir := t.TempDir()
	s := testSpace(t)
	l, st, err := Open(dir, s, WithSegmentSize(256))
	if err != nil {
		t.Fatal(err)
	}
	ins, outs, srcs := testRecords(t, s, 40)
	fillStore(t, st, ins[:25], outs[:25], srcs[:25])
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The suffix keeps growing after the checkpoint, across several more
	// small segments.
	fillStore(t, st, ins[25:], outs[25:], srcs[25:])
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, st2, err := Open(dir, testSpace(t), WithSegmentSize(256))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	assertStoreMatches(t, st2, ins, outs, srcs)
}

// TestCheckpointPartialCoverage exercises a watermark that falls inside a
// live segment (the shape a checkpoint taken under concurrent appends, or
// a crash before collection, leaves): the fully-written WAL stays, a
// checkpoint covers only a prefix, and Open must skip-replay the covered
// region without duplicating records.
func TestCheckpointPartialCoverage(t *testing.T) {
	for _, w := range []int{1, 7, 19, 20} {
		t.Run(fmt.Sprintf("w=%d", w), func(t *testing.T) {
			dir := t.TempDir()
			s := testSpace(t)
			l, st, err := Open(dir, s)
			if err != nil {
				t.Fatal(err)
			}
			ins, outs, srcs := testRecords(t, s, 20)
			fillStore(t, st, ins, outs, srcs)
			sn := st.Snapshot()
			buf, err := encodeCheckpoint(s, s.Fingerprint(), sn, w)
			if err != nil {
				t.Fatal(err)
			}
			if err := writeCheckpointFile(dir, buf, w); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}

			l2, st2, err := Open(dir, testSpace(t))
			if err != nil {
				t.Fatal(err)
			}
			assertStoreMatches(t, st2, ins, outs, srcs)
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCheckpointDifferential drives randomized histories through both
// resume paths — checkpoint + suffix against a pure WAL replay of the same
// bytes — and requires identical stores: records, dictionaries, and every
// indexed query surface.
func TestCheckpointDifferential(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			n := 10 + r.Intn(60)
			segSize := int64(128 + r.Intn(2048))
			w := 1 + r.Intn(n)

			dir := t.TempDir()
			s := testSpace(t)
			l, st, err := Open(dir, s, WithSegmentSize(segSize))
			if err != nil {
				t.Fatal(err)
			}
			ins, outs, srcs := testRecords(t, s, n)
			fillStore(t, st, ins, outs, srcs)
			buf, err := encodeCheckpoint(s, s.Fingerprint(), st.Snapshot(), w)
			if err != nil {
				t.Fatal(err)
			}
			if err := writeCheckpointFile(dir, buf, w); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}

			// The WAL-only twin: same segments, checkpoint removed.
			walDir := t.TempDir()
			copyDir(t, dir, walDir, func(name string) bool {
				return !strings.HasSuffix(name, ".ckpt")
			})

			viaCkpt, err := Replay(dir, testSpace(t))
			if err != nil {
				t.Fatal(err)
			}
			viaWAL, err := Replay(walDir, testSpace(t))
			if err != nil {
				t.Fatal(err)
			}
			assertStoreMatches(t, viaCkpt, ins, outs, srcs)
			assertStoresEqual(t, viaWAL, viaCkpt)
		})
	}
}

// copyDir copies the regular files of src for which keep returns true.
func copyDir(t *testing.T, src, dst string, keep func(string) bool) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !keep(e.Name()) {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCompactionCrashTorture kills a compaction at every stage — after the
// temp file is durable, after the rename, and mid-collection — and
// verifies Open recovers the exact same store each time, keeps accepting
// appends, and that the next compaction finishes the interrupted cleanup.
func TestCompactionCrashTorture(t *testing.T) {
	stages := []string{"tmp-written", "renamed", "gc"}
	for _, stage := range stages {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			s := testSpace(t)
			// Small segments so compaction has several sealed segments to
			// collect, making the "gc" stage abort mid-way meaningful.
			l, st, err := Open(dir, s, WithSegmentSize(256))
			if err != nil {
				t.Fatal(err)
			}
			ins, outs, srcs := testRecords(t, s, 30)
			fillStore(t, st, ins, outs, srcs)

			injected := fmt.Errorf("injected crash at %s", stage)
			ckptTestHook = func(got string) error {
				if got == stage {
					return injected
				}
				return nil
			}
			err = l.Checkpoint()
			ckptTestHook = nil
			if err == nil || !strings.Contains(err.Error(), "injected crash") {
				t.Fatalf("Checkpoint = %v, want the injected crash", err)
			}
			// Simulate the kill: abandon the handle without a clean Close
			// beyond releasing the flock so the test can reopen.
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}

			// Open must recover the full history regardless of where the
			// compaction died.
			l2, st2, err := Open(dir, testSpace(t), WithSegmentSize(256))
			if err != nil {
				t.Fatalf("Open after crash at %s: %v", stage, err)
			}
			assertStoreMatches(t, st2, ins, outs, srcs)

			// The session keeps going: more records, and a clean compaction
			// that finishes whatever the crashed one left behind.
			more, mouts, msrcs := testRecords(t, st2.Space(), len(ins)+8)
			for i := len(ins); i < len(more); i++ {
				if err := st2.Add(more[i], mouts[i], msrcs[i]); err != nil {
					t.Fatal(err)
				}
			}
			if err := l2.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}
			cks, err := listCheckpoints(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(cks) != 1 || cks[0].watermark != len(more) {
				t.Fatalf("checkpoints after recovery compaction = %+v, want one at %d", cks, len(more))
			}
			got, err := Replay(dir, testSpace(t))
			if err != nil {
				t.Fatal(err)
			}
			assertStoreMatches(t, got, more, mouts, msrcs)
		})
	}
}

// TestCheckpointCorruptFallsBack flips and truncates checkpoint bytes: as
// long as the full WAL survives, Open must detect the damage via the
// trailing CRC and rebuild from the segments alone.
func TestCheckpointCorruptFallsBack(t *testing.T) {
	build := func(t *testing.T) (string, []pipeline.Instance, []pipeline.Outcome, []string, string) {
		dir := t.TempDir()
		s := testSpace(t)
		l, st, err := Open(dir, s)
		if err != nil {
			t.Fatal(err)
		}
		ins, outs, srcs := testRecords(t, s, 15)
		fillStore(t, st, ins, outs, srcs)
		buf, err := encodeCheckpoint(s, s.Fingerprint(), st.Snapshot(), len(ins))
		if err != nil {
			t.Fatal(err)
		}
		if err := writeCheckpointFile(dir, buf, len(ins)); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		cks, err := listCheckpoints(dir)
		if err != nil || len(cks) != 1 {
			t.Fatalf("checkpoints = %v, %v", cks, err)
		}
		return dir, ins, outs, srcs, cks[0].path
	}

	t.Run("bitflip", func(t *testing.T) {
		dir, ins, outs, srcs, ck := build(t)
		data, err := os.ReadFile(ck)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xff
		if err := os.WriteFile(ck, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, st, err := Open(dir, testSpace(t))
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		assertStoreMatches(t, st, ins, outs, srcs)
	})

	t.Run("truncated", func(t *testing.T) {
		dir, ins, outs, srcs, ck := build(t)
		fi, err := os.Stat(ck)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(ck, fi.Size()/2); err != nil {
			t.Fatal(err)
		}
		l, st, err := Open(dir, testSpace(t))
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		assertStoreMatches(t, st, ins, outs, srcs)
	})

	// With the covered segments already collected, a corrupt checkpoint is
	// unrecoverable data loss and Open must say so rather than resurrect a
	// partial history.
	t.Run("collected", func(t *testing.T) {
		dir := t.TempDir()
		buildCheckpointed(t, dir, 15)
		cks, err := listCheckpoints(dir)
		if err != nil || len(cks) != 1 {
			t.Fatalf("checkpoints = %v, %v", cks, err)
		}
		data, err := os.ReadFile(cks[0].path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xff
		if err := os.WriteFile(cks[0].path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Open(dir, testSpace(t)); err == nil {
			t.Fatal("Open succeeded over a corrupt checkpoint with a collected WAL")
		}
	})
}

// TestCheckpointLostTail simulates a machine crash without fsync: the
// checkpoint reached disk but the OS dropped the WAL tail it covers. The
// checkpoint is authoritative — Open rebuilds everything below the
// watermark, abandons the stale tail, and appends re-anchor cleanly.
func TestCheckpointLostTail(t *testing.T) {
	dir := t.TempDir()
	s := testSpace(t)
	l, st, err := Open(dir, s)
	if err != nil {
		t.Fatal(err)
	}
	ins, outs, srcs := testRecords(t, s, 20)
	fillStore(t, st, ins, outs, srcs)
	buf, err := encodeCheckpoint(s, s.Fingerprint(), st.Snapshot(), len(ins))
	if err != nil {
		t.Fatal(err)
	}
	if err := writeCheckpointFile(dir, buf, len(ins)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Drop most of the WAL: only the header and a sliver survive.
	seg := filepath.Join(dir, "wal-000000.seg")
	if err := os.Truncate(seg, headerSize+10); err != nil {
		t.Fatal(err)
	}

	l2, st2, err := Open(dir, testSpace(t))
	if err != nil {
		t.Fatal(err)
	}
	assertStoreMatches(t, st2, ins, outs, srcs)
	more, mouts, msrcs := testRecords(t, st2.Space(), len(ins)+6)
	for i := len(ins); i < len(more); i++ {
		if err := st2.Add(more[i], mouts[i], msrcs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Replay(dir, testSpace(t))
	if err != nil {
		t.Fatal(err)
	}
	assertStoreMatches(t, got, more, mouts, msrcs)
}

// TestCheckpointNoop covers the degenerate compactions: an empty log, and
// a repeat with no new records, neither of which may write a new file.
func TestCheckpointNoop(t *testing.T) {
	dir := t.TempDir()
	s := testSpace(t)
	l, st, err := Open(dir, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if cks, _ := listCheckpoints(dir); len(cks) != 0 {
		t.Fatalf("empty-log checkpoint wrote %v", cks)
	}
	ins, outs, srcs := testRecords(t, s, 5)
	fillStore(t, st, ins, outs, srcs)
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	cks, err := listCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cks) != 1 || cks[0].watermark != len(ins) {
		t.Fatalf("checkpoints = %+v, want exactly one at %d", cks, len(ins))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(); err == nil {
		t.Fatal("Checkpoint on a closed log succeeded")
	}
}

// TestAutoCompactPolicy drives the record-count trigger: background
// compactions must appear on their own, supersede each other, and leave a
// directory that reopens to the full history.
func TestAutoCompactPolicy(t *testing.T) {
	dir := t.TempDir()
	s := testSpace(t)
	l, st, err := Open(dir, s, WithSegmentSize(256),
		WithCompactPolicy(CompactPolicy{EveryRecords: 8}))
	if err != nil {
		t.Fatal(err)
	}
	ins, outs, srcs := testRecords(t, s, 40)
	fillStore(t, st, ins, outs, srcs)
	deadline := time.Now().Add(10 * time.Second)
	for {
		cks, err := listCheckpoints(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(cks) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no background checkpoint appeared")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, st2, err := Open(dir, testSpace(t))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	assertStoreMatches(t, st2, ins, outs, srcs)
}

// TestCheckpointConcurrentAppends compacts while writers keep appending
// through the store's staged group-commit path; every record must survive
// into the reopened store.
func TestCheckpointConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	s := testSpace(t)
	l, st, err := Open(dir, s, WithSegmentSize(512))
	if err != nil {
		t.Fatal(err)
	}
	ins, outs, srcs := testRecords(t, s, 60)
	const writers = 4
	errc := make(chan error, writers+1)
	for w := 0; w < writers; w++ {
		go func(w int) {
			for i := w; i < len(ins); i += writers {
				if err := st.Add(ins[i], outs[i], srcs[i]); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(w)
	}
	go func() {
		for i := 0; i < 3; i++ {
			if err := l.Checkpoint(); err != nil {
				errc <- fmt.Errorf("checkpoint: %w", err)
				return
			}
		}
		errc <- nil
	}()
	for i := 0; i < writers+1; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, st2, err := Open(dir, testSpace(t))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if st2.Len() != len(ins) {
		t.Fatalf("reopened store holds %d records, want %d", st2.Len(), len(ins))
	}
	for i := range ins {
		// Rebuild the instance over the reopened space for the probe.
		vals := make([]pipeline.Value, ins[i].Len())
		for j := range vals {
			vals[j] = ins[i].Value(j)
		}
		in, err := pipeline.NewInstance(st2.Space(), vals)
		if err != nil {
			t.Fatal(err)
		}
		if out, ok := st2.Lookup(in); !ok || out != outs[i] {
			t.Fatalf("record %d: Lookup = %v, %v, want %v", i, out, ok, outs[i])
		}
	}
}
