package provlog

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/pipeline"
)

// buildBoundedLog writes records one at a time into a single-segment log
// and returns the segment's byte size after each append: boundaries[k] is
// the intact-prefix size holding exactly k records.
func buildBoundedLog(t *testing.T, dir string, n int) (boundaries []int64, ins []pipeline.Instance, outs []pipeline.Outcome, srcs []string) {
	t.Helper()
	s := testSpace(t)
	l, st, err := Open(dir, s)
	if err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "wal-000000.seg")
	size := func() int64 {
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		return fi.Size()
	}
	boundaries = append(boundaries, size())
	ins, outs, srcs = testRecords(t, s, n)
	for i := range ins {
		if err := st.Add(ins[i], outs[i], srcs[i]); err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, size())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return boundaries, ins, outs, srcs
}

// intactPrefix returns how many records survive truncation at offset off: a
// record counts only when every byte of its append batch (dictionary and
// source frames included) lies before the cut.
func intactPrefix(boundaries []int64, off int64) int {
	k := 0
	for k+1 < len(boundaries) && boundaries[k+1] <= off {
		k++
	}
	return k
}

// TestRecoveryTruncationTorture truncates the log at every byte offset —
// covering every position inside the final record, and every earlier record
// too — and asserts Replay recovers exactly the intact prefix each time.
func TestRecoveryTruncationTorture(t *testing.T) {
	srcDir := t.TempDir()
	boundaries, ins, outs, srcs := buildBoundedLog(t, srcDir, 12)
	data, err := os.ReadFile(filepath.Join(srcDir, "wal-000000.seg"))
	if err != nil {
		t.Fatal(err)
	}
	full := int64(len(data))
	if full != boundaries[len(boundaries)-1] {
		t.Fatalf("segment is %d bytes, boundaries end at %d", full, boundaries[len(boundaries)-1])
	}
	cutDir := t.TempDir()
	cutSeg := filepath.Join(cutDir, "wal-000000.seg")
	for off := int64(0); off < full; off++ {
		if err := os.WriteFile(cutSeg, data[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Replay(cutDir, testSpace(t))
		if err != nil {
			t.Fatalf("offset %d: Replay: %v", off, err)
		}
		want := intactPrefix(boundaries, off)
		if st.Len() != want {
			t.Fatalf("offset %d: recovered %d records, want %d", off, st.Len(), want)
		}
		sn := st.Snapshot()
		for i := 0; i < want; i++ {
			r := sn.At(i)
			if r.Instance.Key() != ins[i].Key() || r.Outcome != outs[i] || r.Source != srcs[i] {
				t.Fatalf("offset %d: record %d = {%v %v %q}, want {%v %v %q}",
					off, i, r.Instance, r.Outcome, r.Source, ins[i], outs[i], srcs[i])
			}
		}
	}
}

// TestRecoveryOpenRepairsAndResumes simulates the crash-resume cycle: cut
// the log mid-record, Open must truncate the torn tail, continue appending
// from the recovery point, and leave a log that replays in full.
func TestRecoveryOpenRepairsAndResumes(t *testing.T) {
	dir := t.TempDir()
	boundaries, ins, outs, srcs := buildBoundedLog(t, dir, 12)
	seg := filepath.Join(dir, "wal-000000.seg")
	// Cut into the middle of record 9's append batch: 8 records survive.
	cut := boundaries[8] + (boundaries[9]-boundaries[8])/2
	if err := os.Truncate(seg, cut); err != nil {
		t.Fatal(err)
	}

	s := testSpace(t)
	l, st, err := Open(dir, s)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 8 {
		t.Fatalf("recovered store has %d records, want 8", st.Len())
	}
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != boundaries[8] {
		t.Fatalf("Open left the segment at %d bytes, want truncation to %d", fi.Size(), boundaries[8])
	}
	// Re-execute the lost tail, as a resumed session would.
	for i := 8; i < len(ins); i++ {
		vals := make([]pipeline.Value, ins[i].Len())
		for j := range vals {
			vals[j] = ins[i].Value(j)
		}
		in, err := pipeline.NewInstance(s, vals)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Add(in, outs[i], srcs[i]); err != nil {
			t.Fatalf("resumed Add %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := Replay(dir, testSpace(t))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != len(ins) {
		t.Fatalf("replayed %d records after repair, want %d", got.Len(), len(ins))
	}
	sn := got.Snapshot()
	for i := range ins {
		r := sn.At(i)
		if r.Instance.Key() != ins[i].Key() || r.Outcome != outs[i] || r.Source != srcs[i] {
			t.Fatalf("record %d = {%v %v %q}, want {%v %v %q}",
				i, r.Instance, r.Outcome, r.Source, ins[i], outs[i], srcs[i])
		}
	}
}

// TestRecoveryTornHeader cuts into the very header of the only segment:
// Replay sees an empty log, and Open rebuilds the segment and accepts
// appends.
func TestRecoveryTornHeader(t *testing.T) {
	dir := t.TempDir()
	_, ins, outs, srcs := buildBoundedLog(t, dir, 3)
	seg := filepath.Join(dir, "wal-000000.seg")
	if err := os.Truncate(seg, headerSize/2); err != nil {
		t.Fatal(err)
	}
	st, err := Replay(dir, testSpace(t))
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 0 {
		t.Fatalf("recovered %d records from a torn header, want 0", st.Len())
	}
	s2 := testSpace(t)
	l, st2, err := Open(dir, s2)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != 0 {
		t.Fatalf("Open recovered %d records from a torn header, want 0", st2.Len())
	}
	vals := make([]pipeline.Value, ins[0].Len())
	for j := range vals {
		vals[j] = ins[0].Value(j)
	}
	in, err := pipeline.NewInstance(s2, vals)
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Add(in, outs[0], srcs[0]); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Replay(dir, testSpace(t))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("replayed %d records, want 1", got.Len())
	}
}

// TestRecoveryTornTailInFinalOfManySegments crashes after rotation: sealed
// segments replay whole, only the final segment's tail truncates.
func TestRecoveryTornTailInFinalOfManySegments(t *testing.T) {
	dir := t.TempDir()
	s := testSpace(t)
	l, st, err := Open(dir, s, WithSegmentSize(200))
	if err != nil {
		t.Fatal(err)
	}
	ins, outs, srcs := testRecords(t, s, 24)
	fillStore(t, st, ins, outs, srcs)
	segN := l.SegmentCount()
	if segN < 2 {
		t.Fatalf("need rotation, got %d segments", segN)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	last := segPath(dir, uint32(segN-1))
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() <= headerSize {
		t.Skip("final segment holds no records at this size threshold")
	}
	// Chop a few bytes off the final record.
	if err := os.Truncate(last, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	got, err := Replay(dir, testSpace(t))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() >= len(ins) || got.Len() == 0 {
		t.Fatalf("recovered %d records, want a non-empty strict prefix of %d", got.Len(), len(ins))
	}
	sn := got.Snapshot()
	for i := 0; i < got.Len(); i++ {
		if sn.At(i).Instance.Key() != ins[i].Key() {
			t.Fatalf("record %d diverged after tail truncation", i)
		}
	}
}
