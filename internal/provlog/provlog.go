// Package provlog is the durable backend of the provenance store: a
// segmented, CRC-checksummed write-ahead log of every executed pipeline
// instance. BugDoc's evaluation model is deterministic (Definition 2), so
// each logged record is an oracle call that never has to be paid for again:
// reopening the log rebuilds the fully-indexed in-memory store, and a
// resumed debugging session replays history instead of re-executing.
//
// The Log implements provenance.Sink, so attaching it to a store (which
// Open does) makes every Store.Add durable before it is queryable. Records
// are fixed-width — the instance's interned code vector plus an outcome
// byte and a source id — interleaved with the dictionary frames that define
// the code and source assignments (see format.go). Segments rotate at a
// size threshold; recovery tolerates a torn final record by truncating the
// final segment back to its intact prefix.
//
// Resume cost stays bounded by compaction: Checkpoint (explicit, or
// automatic under a CompactPolicy) folds the committed history into a
// sorted, self-contained checkpoint file and garbage-collects the
// segments it supersedes, all while appends continue. Open then loads the
// newest valid checkpoint with one index-free sequential pass and replays
// only the WAL suffix past its watermark, recovering cleanly from a crash
// at any stage of a compaction. The byte-level formats and the full crash
// matrix are specified in docs/ONDISK.md.
package provlog

import (
	"errors"
	"fmt"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pipeline"
	"repro/internal/provenance"
	"repro/internal/spec"
)

// DefaultSegmentSize is the rotation threshold when WithSegmentSize is not
// given. At roughly 4·P+8 bytes per record it holds on the order of 100k
// records per segment for a ten-parameter pipeline.
const DefaultSegmentSize = 4 << 20

// DefaultMaxBatch is the commit-window record cap when SyncPolicy.MaxBatch
// is not set.
const DefaultMaxBatch = 4096

// SyncPolicy tunes group commit: how appends staged by concurrent writers
// coalesce into commit windows, each flushed with one buffered write (and,
// under WithSync, one fsync).
type SyncPolicy struct {
	// Interval is how long a flush leader waits for more appends to join
	// the window before writing. Zero flushes immediately — natural
	// batching still coalesces everything staged while the previous flush
	// was in flight, which is where the group-commit win comes from under
	// load; a positive interval trades latency for larger windows.
	Interval time.Duration
	// MaxBatch caps the records in one commit window: a window that
	// reaches it flushes without waiting out the Interval. <= 0 takes
	// DefaultMaxBatch.
	MaxBatch int
}

// spaceFile is the JSON spec of the space, written into the log directory
// so a session can be resumed without re-declaring the space (ReadSpace).
const spaceFile = "space.json"

// Option configures a Log.
type Option func(*Log)

// WithSegmentSize sets the rotation threshold in bytes; a segment whose
// size has reached it is sealed before the next append.
func WithSegmentSize(n int64) Option {
	return func(l *Log) {
		if n < headerSize+64 {
			n = headerSize + 64
		}
		l.segSize = n
	}
}

// WithSync makes every commit-window flush (and segment creation) fsync
// before completing. Off by default: appends are still synchronous write
// syscalls, but leave flushing to the OS, which loses at most the tail of
// the log on a machine crash — exactly what recovery truncates anyway.
func WithSync(on bool) Option {
	return func(l *Log) { l.sync = on }
}

// WithSyncPolicy sets the group-commit windowing policy (see SyncPolicy).
func WithSyncPolicy(p SyncPolicy) Option {
	return func(l *Log) { l.policy = p }
}

// WithStoreShards shards the provenance store Open rebuilds across n
// hash-range shards (rounded up to a power of two; see
// provenance.NewStoreSharded), so concurrent workers contend per hash
// range instead of on one store lock. Checkpoint runs are hash-sorted, so
// a sharded Open splits the run at the shard boundaries and each shard
// adopts its sub-run in parallel. The shard count is a property of the
// rebuilt in-memory store only — nothing on disk depends on it, and the
// same directory can be opened with any value.
func WithStoreShards(n int) Option {
	return func(l *Log) {
		if n < 1 {
			n = 1
		}
		l.storeShards = n
	}
}

// WithOpenParallelism sets how many goroutines Open uses to decode a
// checkpoint's row region: the rows are fixed-width and independently
// verifiable, so the region splits into n contiguous ranges decoded and
// adopted concurrently (see the checkpoint format notes in docs/ONDISK.md).
// The default, and any n < 1, is GOMAXPROCS at Open time; 1 forces the
// sequential single-core load. Like the shard count, parallelism is a
// property of the load only — nothing on disk depends on it, and every
// value rebuilds an identical store.
func WithOpenParallelism(n int) Option {
	return func(l *Log) { l.openParallel = n }
}

// commitGroup is one commit window: the set of records staged between two
// flushes. Followers park on the leader's done channel (Log.flushDone);
// flushed/err record the window's fate for them to read on wake-up.
type commitGroup struct {
	recs    int
	full    chan struct{} // closed when recs reaches MaxBatch, cutting the Interval short
	fullSet bool
	flushed bool
	err     error
}

// Log is an open write-ahead log. It is safe for concurrent use: appends
// are staged under the log's mutex and made durable by group commit —
// concurrent writers coalesce into one buffered write (and one fsync under
// WithSync) per commit window, a leader/follower pattern where the first
// waiter flushes everything staged and the rest park on its done channel.
type Log struct {
	mu          sync.Mutex
	dir         string
	space       *pipeline.Space
	fingerprint uint64
	segSize     int64
	sync        bool
	policy      SyncPolicy

	f            *os.File
	lock         *os.File // flock-held lock file; nil where unsupported
	segIndex     uint32
	size         int64 // flusher-owned once open; serialized by flushing
	nextSeq      int
	storeShards  int      // hash-range shards of the store Open rebuilds (0/1 = unsharded)
	openParallel int      // checkpoint-decode goroutines for Open (< 1 = GOMAXPROCS)
	met          *Metrics // nil when uninstrumented; see WithMetrics

	// Compaction state: the store Open attached (checkpoints snapshot it),
	// the newest checkpoint's watermark, the WAL bytes written since, and
	// the policy's background-trigger bookkeeping. compactMu serializes
	// whole compactions and is never held together with mu; compactWG
	// tracks every in-flight compaction (background and explicit) so Close
	// can drain them before releasing the directory lock. bytesSinceCkpt
	// is atomic because writeWindow increments it from the flush leader,
	// which runs with mu released.
	store           *provenance.Store
	compact         CompactPolicy
	merge           MergePolicy // tier-compaction policy; zero fields take defaults
	compactMu       sync.Mutex
	compactWG       sync.WaitGroup
	compacting      bool
	compactFailures int // consecutive failed auto-compactions; backs off the trigger
	lastCkptSeq     int
	tiers           []tierRef // live checkpoint tiers, newest first; guarded by mu
	bytesSinceCkpt  atomic.Int64

	// persisted counts, per parameter, the codes already written as dict
	// frames; sourceID interns source strings to their frame ids.
	persisted []int
	sourceID  map[string]uint16

	// Group-commit state: staged frames accumulate in pending (sequence
	// order — staging happens under mu) until a leader swaps the buffer out
	// and flushes it, recycling it afterwards when no stager replaced it.
	pending       []byte
	pendingRecs   int
	pendingTrials int // trial frames staged in the window (no sequence numbers)
	pendingFirst  int // seq of the first pending record (segment rotation header)
	cur           *commitGroup
	flushing      bool
	flushDone     chan struct{} // the active leader's done channel

	undo     []int                // persisted snapshot for rollback on a failed stage
	addedSrc []string             // sources interned by the stage in progress, for rollback
	fastOne  [1]provenance.Record // Append fast-path scratch, used under mu

	broken error // set when the on-disk state is unknown; poisons the log
	closed bool
}

// Exists reports whether dir contains log segments.
func Exists(dir string) bool {
	segs, err := listSegments(dir)
	return err == nil && len(segs) > 0
}

// ReadSpace reconstructs the parameter space from the spec that Open
// persisted alongside the log.
func ReadSpace(dir string) (*pipeline.Space, error) {
	f, err := os.Open(filepath.Join(dir, spaceFile))
	if err != nil {
		return nil, fmt.Errorf("provlog: no persisted space in %s: %w", dir, err)
	}
	defer f.Close()
	return spec.Read(f)
}

// Open opens the log in dir (creating the directory and first segment for
// an empty dir), replays any existing segments into a fresh fully-indexed
// provenance store, truncates a torn final record left by a crash, and
// returns the log attached as the store's sink, ready for appends.
//
// The space must be constructed from the same declaration every run: its
// fingerprint is stored in each segment header and replay refuses a
// mismatch. Open also persists the space spec as space.json so ReadSpace
// can reconstruct it.
func Open(dir string, space *pipeline.Space, opts ...Option) (*Log, *provenance.Store, error) {
	if space == nil {
		return nil, nil, fmt.Errorf("provlog: nil space")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	l := &Log{
		dir:         dir,
		space:       space,
		fingerprint: space.Fingerprint(),
		segSize:     DefaultSegmentSize,
		persisted:   make([]int, space.Len()),
		sourceID:    make(map[string]uint16),
		undo:        make([]int, space.Len()),
	}
	for _, o := range opts {
		o(l)
	}
	// Exclusive writer lock before touching any file: a second live
	// process must not repair, truncate, or append concurrently. Released
	// on Close and automatically when a killed process dies.
	lock, err := lockDir(dir)
	if err != nil {
		return nil, nil, err
	}
	l.lock = lock
	ok := false
	defer func() {
		if !ok && l.lock != nil {
			l.lock.Close()
		}
	}()
	if err := l.persistSpace(); err != nil {
		return nil, nil, err
	}
	// Sweep up temp files a killed compaction left behind; the directory
	// lock guarantees no live compactor owns them.
	removeStrayTmp(dir)
	par := l.openParallel
	if par < 1 {
		par = runtime.GOMAXPROCS(0)
	}
	rs, segs, lastGood, err := replayDir(dir, space, l.storeShards, par)
	if err != nil {
		return nil, nil, err
	}
	st := rs.st
	total := rs.seen
	if rs.ckptSeq > total {
		total = rs.ckptSeq
	}
	if st.Len() != total {
		return nil, nil, fmt.Errorf("provlog: replay rebuilt %d records but the stream holds %d", st.Len(), total)
	}
	copy(l.persisted, rs.persisted)
	l.sourceID = rs.sourceID
	l.nextSeq = total
	l.lastCkptSeq = rs.ckptSeq
	if rs.ckpt != nil {
		// Future checkpoints stack on the tiers this open loaded; their
		// CRCs were bound during the load, so the next manifest republishes
		// them with full integrity bindings.
		l.tiers = append([]tierRef(nil), rs.ckpt.tiers...)
	}
	l.met.tierCount(len(l.tiers))
	switch {
	case len(segs) == 0:
		if err := l.createSegment(0, l.nextSeq); err != nil {
			return nil, nil, err
		}
	case rs.seen < rs.ckptSeq:
		// The WAL's tail below the watermark was lost (a machine crash
		// after the checkpoint fsynced but before the OS flushed the WAL,
		// possible without WithSync). The checkpoint is authoritative for
		// everything below its watermark; the stale tail segment is
		// abandoned where it ends and appends continue in a fresh segment
		// whose header re-anchors the sequence at the watermark. Replay
		// enters the stream there, so the abandoned tail is never
		// re-counted, and the next compaction collects the stale segments.
		// The dictionaries reset to the checkpoint's tables: dict frames
		// the scan saw in the abandoned tail will never be replayed again,
		// so the writer must re-emit them when next referenced.
		copy(l.persisted, rs.ckpt.persisted)
		l.sourceID = rs.ckpt.sourceID
		if err := l.createSegment(segs[len(segs)-1].index+1, l.nextSeq); err != nil {
			return nil, nil, err
		}
	default:
		last := segs[len(segs)-1]
		if err := l.reopenSegment(last, lastGood); err != nil {
			return nil, nil, err
		}
	}
	l.store = st
	st.SetSink(l)
	ok = true
	return l, st, nil
}

// persistSpace writes space.json if absent, through atomicPublish so a
// crash never leaves a half-written spec. Earlier versions renamed without
// fsyncing the file or the directory, so a crash shortly after Create
// could surface an empty or missing spec; the shared helper closes that
// hole (found by the renamesync analyzer).
func (l *Log) persistSpace() error {
	path := filepath.Join(l.dir, spaceFile)
	if _, err := os.Stat(path); err == nil {
		return nil
	} else if !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	return atomicPublish(l.dir, spaceFile+".tmp*", path,
		func(tmp *os.File) error { return spec.Write(tmp, l.space) }, nil)
}

func segPath(dir string, index uint32) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%06d.seg", index))
}

// createSegment creates and headers segment index, leaving it as the
// active segment.
func (l *Log) createSegment(index uint32, firstSeq int) error {
	f, err := os.OpenFile(segPath(l.dir, index), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	hb := encodeHeader(header{
		fingerprint: l.fingerprint,
		nParams:     uint32(l.space.Len()),
		segIndex:    index,
		firstSeq:    uint64(firstSeq),
	})
	if _, err := f.Write(hb); err != nil {
		f.Close()
		return err
	}
	if l.sync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := syncDir(l.dir); err != nil {
			f.Close()
			return err
		}
	}
	l.f, l.segIndex, l.size = f, index, headerSize
	return nil
}

// reopenSegment opens the final segment for appending, truncating back to
// its intact prefix. A prefix shorter than the header (the crash tore the
// header itself) rewrites the segment from scratch.
func (l *Log) reopenSegment(sf segFile, lastGood int64) error {
	f, err := os.OpenFile(sf.path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	if lastGood < headerSize {
		f.Close()
		if err := os.Remove(sf.path); err != nil {
			return err
		}
		return l.createSegment(sf.index, l.nextSeq)
	}
	if err := f.Truncate(lastGood); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Seek(lastGood, 0); err != nil {
		f.Close()
		return err
	}
	l.f, l.segIndex, l.size = f, sf.index, lastGood
	return nil
}

// syncDir fsyncs a directory so freshly created segment files survive a
// machine crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// SegmentCount returns the number of segments, counting the active one.
func (l *Log) SegmentCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int(l.segIndex) + 1
}

// Append implements provenance.Sink: it durably logs one record, emitting
// dictionary frames first for any value codes or source strings the log has
// not seen. Records must arrive in sequence order without gaps. An
// uncontended Append stages and writes inline (allocation-free after
// warm-up, like the pre-group-commit path); when other appends are staged
// or a flush is in flight it degrades to Stage plus the durability wait,
// coalescing into the commit window.
//
// A failed inline write rolls back — the stage snapshot restores the
// dictionaries and the partial write is trimmed — so a transient error
// (say, a full disk) fails only this append and the log stays usable;
// only a failed trim poisons it. Commit windows with multiple writers
// cannot roll back (their waiters have interleaved dictionary state), so
// group-path flush failures always poison.
func (l *Log) Append(r provenance.Record) error {
	l.mu.Lock()
	if l.cur == nil && !l.flushing && l.pendingRecs == 0 && l.pendingTrials == 0 {
		defer l.mu.Unlock()
		l.fastOne[0] = r
		if err := l.stageLocked(l.fastOne[:1]); err != nil {
			return err
		}
		frames, firstSeq := l.pending, l.pendingFirst
		l.pending = frames[:0]
		l.pendingRecs = 0
		if err := l.writeWindow(frames, firstSeq, 1, true); err != nil {
			var fe *flushError
			if errors.As(err, &fe) && !fe.dirty {
				// The file is back at its pre-append state; undo the stage
				// (the snapshot from stageLocked is still current — we have
				// held the mutex throughout).
				copy(l.persisted, l.undo)
				for _, s := range l.addedSrc {
					delete(l.sourceID, s)
				}
				l.nextSeq--
				return fmt.Errorf("provlog: append: %w", err)
			}
			if l.broken == nil {
				l.broken = fmt.Errorf("provlog: log state unknown after failed flush: %w", err)
			}
			return l.broken
		}
		l.maybeCompactLocked()
		return nil
	}
	l.mu.Unlock()
	wait, err := l.Stage([]provenance.Record{r})
	if err != nil {
		return err
	}
	return wait()
}

// Stage implements provenance.StagedSink: it assembles the records' frames
// into the pending commit window and returns a wait function that blocks
// until the window is durable. Records must arrive in sequence order
// without gaps — exactly how the store produces them under its write lock.
// A staging error (wrong space or sequence, oversized value or source)
// rolls the window back to its pre-call state and stages nothing; a flush
// error fails every record of the window and poisons the log, because the
// on-disk tail is no longer known to match the staged dictionaries.
func (l *Log) Stage(recs []provenance.Record) (wait func() error, err error) {
	if len(recs) == 0 {
		return func() error { return nil }, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.stageLocked(recs); err != nil {
		return nil, err
	}
	if l.cur == nil {
		l.cur = &commitGroup{full: make(chan struct{})}
	}
	g := l.cur
	g.recs += len(recs)
	if max := l.maxBatch(); g.recs >= max && !g.fullSet {
		g.fullSet = true
		close(g.full)
	}
	return func() error { return l.waitDurable(g) }, nil
}

// stageLocked validates the records and appends their frames (dictionary
// entries first) to the pending buffer. On error the dictionaries and the
// buffer roll back; nothing of the batch is staged.
func (l *Log) stageLocked(recs []provenance.Record) error {
	if l.closed {
		return fmt.Errorf("provlog: log is closed")
	}
	if l.broken != nil {
		return l.broken
	}
	undo := append(l.undo[:0], l.persisted...)
	l.undo = undo // keep the field aliased even if append reallocated
	l.addedSrc = l.addedSrc[:0]
	rollback := func(reason error) error {
		copy(l.persisted, undo)
		for _, s := range l.addedSrc {
			delete(l.sourceID, s)
		}
		return reason
	}
	buf := l.pending
	want := l.nextSeq
	for _, r := range recs {
		if r.Instance.Space() != l.space {
			return rollback(fmt.Errorf("provlog: record belongs to a different space"))
		}
		if r.Seq != want {
			return rollback(fmt.Errorf("provlog: append of record %d, want %d", r.Seq, want))
		}
		if len(r.Source) > math.MaxUint16 {
			return rollback(fmt.Errorf("provlog: source %.32q... is %d bytes, limit %d",
				r.Source, len(r.Source), math.MaxUint16))
		}
		if isTrialSource(r.Source) {
			// The prefix is how replay tells trial frames from records;
			// a record wearing it would be mistaken for a vote.
			return rollback(fmt.Errorf("provlog: source %q uses the reserved trial prefix", r.Source))
		}
		for i := 0; i < l.space.Len(); i++ {
			c := int(r.Instance.Code(i))
			for l.persisted[i] <= c {
				code := uint32(l.persisted[i])
				v := l.space.InternedValue(i, code)
				// Reject what the scanner would refuse to read back: an
				// oversized label would pass the write and poison the log.
				if v.Kind() == pipeline.Categorical && len(v.Str()) > maxBlob {
					return rollback(fmt.Errorf("provlog: categorical value of parameter %q is %d bytes, limit %d",
						l.space.At(i).Name, len(v.Str()), maxBlob))
				}
				buf = appendDictFrame(buf, uint16(i), code, v)
				l.persisted[i]++
			}
		}
		id, ok := l.sourceID[r.Source]
		if !ok {
			if len(l.sourceID) > math.MaxUint16 {
				return rollback(fmt.Errorf("provlog: too many distinct sources"))
			}
			id = uint16(len(l.sourceID))
			buf = appendSourceFrame(buf, id, r.Source)
			l.sourceID[r.Source] = id
			l.addedSrc = append(l.addedSrc, r.Source)
		}
		buf = appendExecFrame(buf, r.Instance, r.Outcome, id)
		want++
	}
	if l.pendingRecs == 0 {
		l.pendingFirst = recs[0].Seq
	}
	l.pending = buf
	l.pendingRecs += len(recs)
	l.nextSeq = want
	return nil
}

func (l *Log) maxBatch() int {
	if l.policy.MaxBatch > 0 {
		return l.policy.MaxBatch
	}
	return DefaultMaxBatch
}

// waitDurable blocks until g's commit window has been flushed and returns
// its fate. The first waiter to find no flush in progress becomes the
// leader: it waits out the sync policy's window, swaps the pending buffer,
// and performs the single write (+fsync) for everything staged; followers
// park on the leader's done channel and re-check on wake-up.
func (l *Log) waitDurable(g *commitGroup) error {
	l.mu.Lock()
	for {
		if g.flushed {
			err := g.err
			l.mu.Unlock()
			return err
		}
		if l.flushing {
			ch := l.flushDone
			l.mu.Unlock()
			<-ch
			l.mu.Lock()
			continue
		}
		l.leaderFlushLocked(g, true)
	}
}

// leaderFlushLocked runs one flush cycle: optionally waits out the commit
// window, takes the pending buffer, writes it outside the lock, marks the
// flushed group, and wakes the followers. The caller holds l.mu with
// l.flushing false; it returns with l.mu held again.
func (l *Log) leaderFlushLocked(g *commitGroup, window bool) {
	l.flushing = true
	done := make(chan struct{})
	l.flushDone = done
	if window && g != nil && l.policy.Interval > 0 && !g.fullSet {
		l.mu.Unlock()
		t := time.NewTimer(l.policy.Interval)
		select {
		case <-t.C:
		case <-g.full:
			t.Stop()
		}
		l.mu.Lock()
	}
	frames := l.pending
	firstSeq := l.pendingFirst
	flushedGroup := l.cur
	broken := l.broken
	recs := l.pendingRecs
	l.cur = nil
	l.pending = nil
	l.pendingRecs = 0
	l.pendingTrials = 0
	l.mu.Unlock()

	var err error
	switch {
	case broken != nil:
		// A window staged before an earlier flush failed: the on-disk tail
		// is unknown, so fail it without touching the file — writing after
		// the failure point would corrupt the segment beyond what torn-tail
		// recovery repairs.
		err = broken
	case len(frames) > 0:
		err = l.writeWindow(frames, firstSeq, recs, false)
	}

	// Any failure here poisons the log, even one that provably wrote
	// nothing (a failed rotation): the window's stage already advanced the
	// dictionary counters for several interleaved writers, and discarding
	// the window leaves them claiming dict frames that never reached disk —
	// unlike the single-writer Append fast path, there is no snapshot that
	// can roll a multi-writer window back.

	l.mu.Lock()
	if l.pending == nil {
		l.pending = frames[:0] // recycle the flushed buffer
	}
	if flushedGroup != nil {
		flushedGroup.flushed = true
		flushedGroup.err = err
	}
	if err != nil && l.broken == nil {
		// The on-disk tail no longer matches the staged dictionaries and
		// sequence numbers; no later append can be written consistently.
		l.broken = fmt.Errorf("provlog: log state unknown after failed flush: %w", err)
	}
	l.flushing = false
	if err == nil {
		l.maybeCompactLocked()
	}
	close(done)
}

// flushError reports a failed commit-window write. dirty means the
// partial write could not be trimmed back to the pre-window boundary, so
// the on-disk tail no longer matches the in-memory state.
type flushError struct {
	cause error
	dirty bool
}

func (e *flushError) Error() string {
	if e.dirty {
		return fmt.Sprintf("%v (and the partial write could not be trimmed)", e.cause)
	}
	return e.cause.Error()
}

func (e *flushError) Unwrap() error { return e.cause }

// writeWindow writes one commit window to the active segment, rotating
// first if the segment is over its size threshold. Callers either hold
// l.mu (the Append fast path) or own the flush (l.flushing, which
// serializes every other toucher of l.f and l.size); rotation updates
// l.segIndex, which SegmentCount reads, so it always runs under the mutex.
// Write and fsync failures come back as *flushError, trimming the partial
// write back to the window boundary when possible. recs is the number of
// records in the window, reported to telemetry.
func (l *Log) writeWindow(frames []byte, firstSeq, recs int, muHeld bool) error {
	if l.size >= l.segSize {
		if !muHeld {
			l.mu.Lock()
		}
		err := l.rotate(firstSeq)
		if !muHeld {
			l.mu.Unlock()
		}
		if err != nil {
			return &flushError{cause: err}
		}
	}
	fail := func(cause error) error {
		// Trim the partial write so a later reader sees a clean tail.
		if terr := l.f.Truncate(l.size); terr != nil {
			return &flushError{cause: cause, dirty: true}
		}
		if _, serr := l.f.Seek(l.size, 0); serr != nil {
			return &flushError{cause: cause, dirty: true}
		}
		return &flushError{cause: cause}
	}
	if _, err := l.f.Write(frames); err != nil {
		return fail(err)
	}
	var fsyncDur time.Duration
	if l.sync {
		var start time.Time
		if l.met != nil {
			start = time.Now()
		}
		if err := l.f.Sync(); err != nil {
			return fail(err)
		}
		if l.met != nil {
			fsyncDur = time.Since(start)
		}
	}
	l.size += int64(len(frames))
	l.bytesSinceCkpt.Add(int64(len(frames)))
	l.met.flushed(recs, len(frames), fsyncDur, l.sync)
	return nil
}

// rotate seals the active segment and starts the next one, whose header
// names firstSeq as its first record. If creating the next segment fails,
// the current one stays active and the flush that triggered rotation
// fails; a later flush retries.
func (l *Log) rotate(firstSeq int) error {
	old, oldIndex, oldSize := l.f, l.segIndex, l.size
	if err := l.createSegment(l.segIndex+1, firstSeq); err != nil {
		l.f, l.segIndex, l.size = old, oldIndex, oldSize
		return fmt.Errorf("provlog: rotating segment: %w", err)
	}
	if err := old.Sync(); err != nil {
		old.Close()
		return fmt.Errorf("provlog: sealing segment %d: %w", oldIndex, err)
	}
	if err := old.Close(); err != nil {
		return fmt.Errorf("provlog: sealing segment %d: %w", oldIndex, err)
	}
	return nil
}

// Close drains any in-flight commit window, flushes pending frames, waits
// out a background compaction, and closes the active segment. Further
// appends fail, so a store still holding the log as its sink rejects new
// records rather than silently dropping durability.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	for l.flushing {
		ch := l.flushDone
		l.mu.Unlock()
		<-ch
		l.mu.Lock()
	}
	if l.pendingRecs > 0 || l.pendingTrials > 0 {
		// Staged records (or trial votes) whose waiters have not flushed
		// yet: write them out and wake the waiters with the window's fate.
		l.leaderFlushLocked(nil, false)
	}
	var err error
	if l.f != nil {
		err = l.f.Sync()
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
	}
	l.mu.Unlock()
	// A background compaction aborts at its next closed-check; wait for it
	// before releasing the directory lock so it cannot mutate a directory
	// another process has started to own.
	l.compactWG.Wait()
	if l.lock != nil {
		if cerr := l.lock.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
