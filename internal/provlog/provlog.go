// Package provlog is the durable backend of the provenance store: a
// segmented, CRC-checksummed write-ahead log of every executed pipeline
// instance. BugDoc's evaluation model is deterministic (Definition 2), so
// each logged record is an oracle call that never has to be paid for again:
// reopening the log rebuilds the fully-indexed in-memory store, and a
// resumed debugging session replays history instead of re-executing.
//
// The Log implements provenance.Sink, so attaching it to a store (which
// Open does) makes every Store.Add durable before it is queryable. Records
// are fixed-width — the instance's interned code vector plus an outcome
// byte and a source id — interleaved with the dictionary frames that define
// the code and source assignments (see format.go). Segments rotate at a
// size threshold; recovery tolerates a torn final record by truncating the
// final segment back to its intact prefix.
package provlog

import (
	"errors"
	"fmt"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/pipeline"
	"repro/internal/provenance"
	"repro/internal/spec"
)

// DefaultSegmentSize is the rotation threshold when WithSegmentSize is not
// given. At roughly 4·P+8 bytes per record it holds on the order of 100k
// records per segment for a ten-parameter pipeline.
const DefaultSegmentSize = 4 << 20

// spaceFile is the JSON spec of the space, written into the log directory
// so a session can be resumed without re-declaring the space (ReadSpace).
const spaceFile = "space.json"

// Option configures a Log.
type Option func(*Log)

// WithSegmentSize sets the rotation threshold in bytes; a segment whose
// size has reached it is sealed before the next append.
func WithSegmentSize(n int64) Option {
	return func(l *Log) {
		if n < headerSize+64 {
			n = headerSize + 64
		}
		l.segSize = n
	}
}

// WithSync makes every append (and segment creation) fsync before
// returning. Off by default: appends are still synchronous write syscalls
// in Store.Add, but leave flushing to the OS, which loses at most the tail
// of the log on a machine crash — exactly what recovery truncates anyway.
func WithSync(on bool) Option {
	return func(l *Log) { l.sync = on }
}

// Log is an open write-ahead log. It is safe for concurrent use, though in
// practice the provenance store serializes appends under its write lock.
type Log struct {
	mu          sync.Mutex
	dir         string
	space       *pipeline.Space
	fingerprint uint64
	segSize     int64
	sync        bool

	f        *os.File
	lock     *os.File // flock-held lock file; nil where unsupported
	segIndex uint32
	size     int64
	nextSeq  int

	// persisted counts, per parameter, the codes already written as dict
	// frames; sourceID interns source strings to their frame ids.
	persisted []int
	sourceID  map[string]uint16

	buf  []byte // frame assembly scratch, one Write per append
	undo []int  // persisted snapshot for rollback on write failure

	broken error // set when the on-disk state is unknown; poisons the log
	closed bool
}

// Exists reports whether dir contains log segments.
func Exists(dir string) bool {
	segs, err := listSegments(dir)
	return err == nil && len(segs) > 0
}

// ReadSpace reconstructs the parameter space from the spec that Open
// persisted alongside the log.
func ReadSpace(dir string) (*pipeline.Space, error) {
	f, err := os.Open(filepath.Join(dir, spaceFile))
	if err != nil {
		return nil, fmt.Errorf("provlog: no persisted space in %s: %w", dir, err)
	}
	defer f.Close()
	return spec.Read(f)
}

// Open opens the log in dir (creating the directory and first segment for
// an empty dir), replays any existing segments into a fresh fully-indexed
// provenance store, truncates a torn final record left by a crash, and
// returns the log attached as the store's sink, ready for appends.
//
// The space must be constructed from the same declaration every run: its
// fingerprint is stored in each segment header and replay refuses a
// mismatch. Open also persists the space spec as space.json so ReadSpace
// can reconstruct it.
func Open(dir string, space *pipeline.Space, opts ...Option) (*Log, *provenance.Store, error) {
	if space == nil {
		return nil, nil, fmt.Errorf("provlog: nil space")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	l := &Log{
		dir:         dir,
		space:       space,
		fingerprint: space.Fingerprint(),
		segSize:     DefaultSegmentSize,
		persisted:   make([]int, space.Len()),
		sourceID:    make(map[string]uint16),
		undo:        make([]int, space.Len()),
	}
	for _, o := range opts {
		o(l)
	}
	// Exclusive writer lock before touching any file: a second live
	// process must not repair, truncate, or append concurrently. Released
	// on Close and automatically when a killed process dies.
	lock, err := lockDir(dir)
	if err != nil {
		return nil, nil, err
	}
	l.lock = lock
	ok := false
	defer func() {
		if !ok && l.lock != nil {
			l.lock.Close()
		}
	}()
	if err := l.persistSpace(); err != nil {
		return nil, nil, err
	}
	rs, segs, lastGood, err := replayDir(dir, space)
	if err != nil {
		return nil, nil, err
	}
	st := rs.st
	if len(segs) == 0 {
		if err := l.createSegment(0, 0); err != nil {
			return nil, nil, err
		}
	} else {
		copy(l.persisted, rs.persisted)
		l.sourceID = rs.sourceID
		l.nextSeq = st.Len()
		last := segs[len(segs)-1]
		if err := l.reopenSegment(last, lastGood); err != nil {
			return nil, nil, err
		}
	}
	st.SetSink(l)
	ok = true
	return l, st, nil
}

// persistSpace writes space.json if absent, via a temp file and rename so a
// crash never leaves a half-written spec.
func (l *Log) persistSpace() error {
	path := filepath.Join(l.dir, spaceFile)
	if _, err := os.Stat(path); err == nil {
		return nil
	} else if !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	tmp, err := os.CreateTemp(l.dir, spaceFile+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := spec.Write(tmp, l.space); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func segPath(dir string, index uint32) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%06d.seg", index))
}

// createSegment creates and headers segment index, leaving it as the
// active segment.
func (l *Log) createSegment(index uint32, firstSeq int) error {
	f, err := os.OpenFile(segPath(l.dir, index), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	hb := encodeHeader(header{
		fingerprint: l.fingerprint,
		nParams:     uint32(l.space.Len()),
		segIndex:    index,
		firstSeq:    uint64(firstSeq),
	})
	if _, err := f.Write(hb); err != nil {
		f.Close()
		return err
	}
	if l.sync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := syncDir(l.dir); err != nil {
			f.Close()
			return err
		}
	}
	l.f, l.segIndex, l.size = f, index, headerSize
	return nil
}

// reopenSegment opens the final segment for appending, truncating back to
// its intact prefix. A prefix shorter than the header (the crash tore the
// header itself) rewrites the segment from scratch.
func (l *Log) reopenSegment(sf segFile, lastGood int64) error {
	f, err := os.OpenFile(sf.path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	if lastGood < headerSize {
		f.Close()
		if err := os.Remove(sf.path); err != nil {
			return err
		}
		return l.createSegment(sf.index, l.nextSeq)
	}
	if err := f.Truncate(lastGood); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Seek(lastGood, 0); err != nil {
		f.Close()
		return err
	}
	l.f, l.segIndex, l.size = f, sf.index, lastGood
	return nil
}

// syncDir fsyncs a directory so freshly created segment files survive a
// machine crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// SegmentCount returns the number of segments, counting the active one.
func (l *Log) SegmentCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int(l.segIndex) + 1
}

// Append implements provenance.Sink: it durably logs one record, emitting
// dictionary frames first for any value codes or source strings the log has
// not seen. Records must arrive in sequence order without gaps — exactly
// how the store's Add, which calls Append under its write lock, produces
// them. On a write failure the in-memory dictionaries roll back and the
// partial write is trimmed, so a failed append leaves both the file and the
// log consistent; only a failed trim poisons the log.
func (l *Log) Append(r provenance.Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("provlog: log is closed")
	}
	if l.broken != nil {
		return l.broken
	}
	if r.Instance.Space() != l.space {
		return fmt.Errorf("provlog: record belongs to a different space")
	}
	if r.Seq != l.nextSeq {
		return fmt.Errorf("provlog: append of record %d, want %d", r.Seq, l.nextSeq)
	}
	if l.size >= l.segSize {
		if err := l.rotate(); err != nil {
			return err
		}
	}

	if len(r.Source) > math.MaxUint16 {
		return fmt.Errorf("provlog: source %.32q... is %d bytes, limit %d",
			r.Source, len(r.Source), math.MaxUint16)
	}
	// Assemble dictionary and record frames into one buffer, one Write.
	buf := l.buf[:0]
	undo := append(l.undo[:0], l.persisted...)
	newSource := false
	for i := 0; i < l.space.Len(); i++ {
		c := int(r.Instance.Code(i))
		for l.persisted[i] <= c {
			code := uint32(l.persisted[i])
			v := l.space.InternedValue(i, code)
			// Reject what the scanner would refuse to read back: an
			// oversized label would pass the write and poison the log.
			if v.Kind() == pipeline.Categorical && len(v.Str()) > maxBlob {
				copy(l.persisted, undo)
				return fmt.Errorf("provlog: categorical value of parameter %q is %d bytes, limit %d",
					l.space.At(i).Name, len(v.Str()), maxBlob)
			}
			buf = appendDictFrame(buf, uint16(i), code, v)
			l.persisted[i]++
		}
	}
	id, ok := l.sourceID[r.Source]
	if !ok {
		if len(l.sourceID) > math.MaxUint16 {
			copy(l.persisted, undo)
			return fmt.Errorf("provlog: too many distinct sources")
		}
		id = uint16(len(l.sourceID))
		buf = appendSourceFrame(buf, id, r.Source)
		l.sourceID[r.Source] = id
		newSource = true
	}
	buf = appendExecFrame(buf, r.Instance, r.Outcome, id)
	l.buf = buf

	rollback := func(reason error) error {
		copy(l.persisted, undo)
		if newSource {
			delete(l.sourceID, r.Source)
		}
		if terr := l.f.Truncate(l.size); terr != nil {
			l.broken = fmt.Errorf("provlog: log state unknown after failed append (%v) and failed trim (%v)", reason, terr)
			return l.broken
		}
		if _, serr := l.f.Seek(l.size, 0); serr != nil {
			l.broken = fmt.Errorf("provlog: log state unknown after failed append (%v) and failed seek (%v)", reason, serr)
			return l.broken
		}
		return fmt.Errorf("provlog: append: %w", reason)
	}
	if _, err := l.f.Write(buf); err != nil {
		return rollback(err)
	}
	if l.sync {
		if err := l.f.Sync(); err != nil {
			return rollback(err)
		}
	}
	l.size += int64(len(buf))
	l.nextSeq++
	return nil
}

// rotate seals the active segment and starts the next one. If creating the
// next segment fails, the current one stays active and the append that
// triggered rotation fails; a later append retries.
func (l *Log) rotate() error {
	old, oldIndex, oldSize := l.f, l.segIndex, l.size
	if err := l.createSegment(l.segIndex+1, l.nextSeq); err != nil {
		l.f, l.segIndex, l.size = old, oldIndex, oldSize
		return fmt.Errorf("provlog: rotating segment: %w", err)
	}
	if err := old.Sync(); err != nil {
		old.Close()
		return fmt.Errorf("provlog: sealing segment %d: %w", oldIndex, err)
	}
	if err := old.Close(); err != nil {
		return fmt.Errorf("provlog: sealing segment %d: %w", oldIndex, err)
	}
	return nil
}

// Close flushes and closes the active segment. Further appends fail, so a
// store still holding the log as its sink rejects new records rather than
// silently dropping durability.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var err error
	if l.f != nil {
		err = l.f.Sync()
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
	}
	if l.lock != nil {
		if cerr := l.lock.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
