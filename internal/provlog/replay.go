package provlog

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"repro/internal/pipeline"
	"repro/internal/provenance"
)

// segFile is one discovered segment.
type segFile struct {
	path  string
	index uint32
}

// listSegments returns the log's segments ordered by index and verifies
// the indices are contiguous (a gap means a segment was lost, which
// recovery cannot paper over). The lowest index need not be zero:
// compaction garbage-collects the oldest segments once a checkpoint covers
// them, and replayDir verifies that a checkpoint actually accounts for the
// missing prefix.
func listSegments(dir string) ([]segFile, error) {
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		return nil, err
	}
	segs := make([]segFile, 0, len(names))
	for _, p := range names {
		base := filepath.Base(p)
		numStr := strings.TrimSuffix(strings.TrimPrefix(base, "wal-"), ".seg")
		n, err := strconv.ParseUint(numStr, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("provlog: unrecognized segment file %q", base)
		}
		segs = append(segs, segFile{path: p, index: uint32(n)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].index < segs[j].index })
	for i, sf := range segs {
		if sf.index != segs[0].index+uint32(i) {
			return nil, fmt.Errorf("provlog: segment index %d missing (found %s)",
				segs[0].index+uint32(i), filepath.Base(sf.path))
		}
	}
	return segs, nil
}

// replayBatch is how many exec records buffer before a bulk flush into the
// store; dictionary state never buffers (dict frames precede the records
// that reference them, so batched records only use settled assignments).
const replayBatch = 8192

// replayState accumulates the decoded log: the rebuilt store plus the
// dictionaries needed to resume appending (codes already framed per
// parameter, source-id assignments). Exec records buffer into a columnar
// batch and flush through Space.InstancesFromCodes, amortizing lock and
// allocator traffic across thousands of records.
//
// With a checkpoint loaded, replay starts mid-stream: the store is
// pre-populated with every record below skipBelow, the dictionaries are
// seeded with the checkpoint's tables, and seen tracks the stream position
// (records encountered, applied or skipped) so segment headers chain-check
// without rescanning the collected prefix.
type replayState struct {
	space     *pipeline.Space
	st        *provenance.Store
	persisted []int
	sources   []string
	sourceID  map[string]uint16

	skipBelow int        // records with seq below this are already in the store
	seen      int        // exec records encountered so far, skipped ones included
	ckptSeq   int        // watermark of the loaded checkpoint; 0 when none
	ckpt      *ckptState // the loaded checkpoint's pristine tables; nil when none

	batchCodes []uint32 // row-major, one row of space.Len() codes per record
	batchOuts  []pipeline.Outcome
	batchSrc   []uint16
	batchIns   []pipeline.Instance // flush scratch

	trialCodes []uint32             // one-row scratch for trial-vote frames
	trialIns   [1]pipeline.Instance // trial-vote materialization scratch
}

func newReplayState(space *pipeline.Space, st *provenance.Store) *replayState {
	return &replayState{
		space:     space,
		st:        st,
		persisted: make([]int, space.Len()),
		sourceID:  make(map[string]uint16),
		batchIns:  make([]pipeline.Instance, replayBatch),
	}
}

// flush materializes the buffered records and commits them to the store.
func (rs *replayState) flush() error {
	n := len(rs.batchOuts)
	if n == 0 {
		return nil
	}
	ins := rs.batchIns[:n]
	if err := rs.space.InstancesFromCodes(rs.batchCodes, ins); err != nil {
		return fmt.Errorf("provlog: %w", err)
	}
	for i, in := range ins {
		if err := rs.st.Add(in, rs.batchOuts[i], rs.sources[rs.batchSrc[i]]); err != nil {
			return err
		}
	}
	rs.batchCodes = rs.batchCodes[:0]
	rs.batchOuts = rs.batchOuts[:0]
	rs.batchSrc = rs.batchSrc[:0]
	return nil
}

// scanner reads frames sequentially, tracking the byte offset consumed so
// recovery can truncate back to the last intact frame boundary. crc is a
// field rather than a local so reading it does not allocate per frame.
type scanner struct {
	r   *bufio.Reader
	off int64
	buf []byte
	crc [4]byte
}

// readFull fills b or reports a torn tail.
func (s *scanner) readFull(b []byte) error {
	n, err := io.ReadFull(s.r, b)
	s.off += int64(n)
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return errTorn
	}
	return err
}

// next reads one frame and verifies its checksum. It returns io.EOF at a
// clean end of the stream and errTorn for anything that reads as a crash
// artifact. The payload slice is valid until the following call.
func (s *scanner) next(nParams int) (typ byte, payload []byte, err error) {
	t, err := s.r.ReadByte()
	if err == io.EOF {
		return 0, nil, io.EOF
	}
	if err != nil {
		return 0, nil, err
	}
	s.off++
	if t == frameExec {
		// The hot path: exec frames are fixed-width, so payload and
		// checksum arrive in a single read.
		n := 4*nParams + 3
		s.buf = append(s.buf[:0], t)
		body := s.grow(n + 4)
		if err := s.readFull(body); err != nil {
			return 0, nil, err
		}
		want := binary.LittleEndian.Uint32(body[n:])
		s.buf = s.buf[:1+n]
		if crc32.ChecksumIEEE(s.buf) != want {
			return 0, nil, errTorn
		}
		return t, s.buf[1:], nil
	}
	var n int
	var tail func(head []byte) (int, error) // extra payload after a fixed head
	switch t {
	case frameSource:
		n = 4
		tail = func(head []byte) (int, error) {
			return int(binary.LittleEndian.Uint16(head[2:4])), nil
		}
	case frameDict:
		n = 7
		tail = func(head []byte) (int, error) {
			switch pipeline.Kind(head[6]) {
			case pipeline.Ordinal:
				return 8, nil
			case pipeline.Categorical:
				lenb := make([]byte, 4)
				if err := s.readFull(lenb); err != nil {
					return 0, err
				}
				s.buf = append(s.buf, lenb...)
				ln := binary.LittleEndian.Uint32(lenb)
				if ln > maxBlob {
					return 0, errTorn
				}
				return int(ln), nil
			default:
				return 0, errTorn
			}
		}
	default:
		return 0, nil, errTorn
	}
	s.buf = append(s.buf[:0], t)
	head := s.grow(n)
	if err := s.readFull(head); err != nil {
		return 0, nil, err
	}
	if tail != nil {
		extra, err := tail(head)
		if err != nil {
			return 0, nil, err
		}
		rest := s.grow(extra)
		if err := s.readFull(rest); err != nil {
			return 0, nil, err
		}
	}
	if err := s.readFull(s.crc[:]); err != nil {
		return 0, nil, err
	}
	if crc32.ChecksumIEEE(s.buf) != binary.LittleEndian.Uint32(s.crc[:]) {
		return 0, nil, errTorn
	}
	return t, s.buf[1:], nil
}

// grow extends the frame buffer by n bytes and returns the new window,
// skipping the zero-fill when capacity suffices (the caller overwrites it).
func (s *scanner) grow(n int) []byte {
	old := len(s.buf)
	if cap(s.buf) >= old+n {
		s.buf = s.buf[:old+n]
	} else {
		s.buf = append(s.buf, make([]byte, n)...)
	}
	return s.buf[old:]
}

// apply decodes one verified frame into the replay state. Errors here are
// never recoverable: a frame with a valid checksum that contradicts the
// space or the replay invariants means the log and the space diverged.
func (rs *replayState) apply(typ byte, payload []byte) error {
	switch typ {
	case frameDict:
		p := int(binary.LittleEndian.Uint16(payload[0:2]))
		code := binary.LittleEndian.Uint32(payload[2:6])
		if p >= rs.space.Len() {
			return fmt.Errorf("provlog: dict entry for parameter %d of %d", p, rs.space.Len())
		}
		if int(code) > rs.persisted[p] {
			return fmt.Errorf("provlog: dict entry for parameter %d assigns code %d, want %d",
				p, code, rs.persisted[p])
		}
		var v pipeline.Value
		switch pipeline.Kind(payload[6]) {
		case pipeline.Ordinal:
			v = pipeline.Ord(math.Float64frombits(binary.LittleEndian.Uint64(payload[7:15])))
		case pipeline.Categorical:
			v = pipeline.Cat(string(payload[11:]))
		default:
			return fmt.Errorf("provlog: dict entry with invalid kind %d", payload[6])
		}
		if got := rs.space.Intern(p, v); got != code {
			return fmt.Errorf("provlog: value %v of parameter %q interned as code %d, log says %d (log written against a different space?)",
				v, rs.space.At(p).Name, got, code)
		}
		if int(code) < rs.persisted[p] {
			// Replay entered mid-stream: this frame is already covered by
			// the checkpoint's dictionary, and the Intern agreement above
			// verified it matches.
			return nil
		}
		rs.persisted[p]++
	case frameSource:
		id := binary.LittleEndian.Uint16(payload[0:2])
		src := string(payload[4:])
		if int(id) < len(rs.sources) {
			// Covered by the checkpoint's source table; verify agreement.
			if rs.sources[id] != src {
				return fmt.Errorf("provlog: source entry %d is %q, checkpoint says %q", id, src, rs.sources[id])
			}
			return nil
		}
		if int(id) != len(rs.sources) {
			return fmt.Errorf("provlog: source entry assigns id %d, want %d", id, len(rs.sources))
		}
		rs.sources = append(rs.sources, src)
		rs.sourceID[src] = id
	case frameExec:
		p := rs.space.Len()
		srcID := binary.LittleEndian.Uint16(payload[4*p+1:])
		if int(srcID) >= len(rs.sources) {
			return fmt.Errorf("provlog: record references source id %d before its entry", srcID)
		}
		if trial, src, ok := parseTrialSource(rs.sources[srcID]); ok {
			// A trial vote reusing the exec frame under a repeat-source
			// id: it consumes no sequence number (rs.seen untouched) and
			// routes to the store's vote ledger instead of the record log.
			return rs.applyTrialVote(payload, trial, src)
		}
		skip := rs.seen < rs.skipBelow
		for i := 0; i < p; i++ {
			c := binary.LittleEndian.Uint32(payload[4*i : 4*i+4])
			if int(c) >= rs.persisted[i] {
				return fmt.Errorf("provlog: record references code %d of parameter %d before its dict entry", c, i)
			}
			if !skip {
				rs.batchCodes = append(rs.batchCodes, c)
			}
		}
		out := pipeline.Outcome(payload[4*p])
		if out != pipeline.Succeed && out != pipeline.Fail && out != pipeline.OutcomeInconclusive {
			return fmt.Errorf("provlog: record with invalid outcome %d", out)
		}
		rs.seen++
		if skip {
			// The record is already in the store via the checkpoint; the
			// validation above still ran, so a corrupt covered region is
			// detected rather than silently shadowed.
			return nil
		}
		rs.batchOuts = append(rs.batchOuts, out)
		rs.batchSrc = append(rs.batchSrc, srcID)
		if len(rs.batchOuts) >= replayBatch {
			return rs.flush()
		}
	}
	return nil
}

// applyTrialVote decodes one trial-vote exec frame and loads it into the
// store's vote ledger. Votes are idempotent by (instance, trial index), so
// the duplicates a checkpoint re-emission leaves in the stream are safe.
func (rs *replayState) applyTrialVote(payload []byte, trial int, src string) error {
	p := rs.space.Len()
	if cap(rs.trialCodes) < p {
		rs.trialCodes = make([]uint32, p)
	}
	codes := rs.trialCodes[:p]
	for i := 0; i < p; i++ {
		c := binary.LittleEndian.Uint32(payload[4*i : 4*i+4])
		if int(c) >= rs.persisted[i] {
			return fmt.Errorf("provlog: trial vote references code %d of parameter %d before its dict entry", c, i)
		}
		codes[i] = c
	}
	out := pipeline.Outcome(payload[4*p])
	if out != pipeline.Succeed && out != pipeline.Fail {
		return fmt.Errorf("provlog: trial vote with invalid outcome %d", out)
	}
	if err := rs.space.InstancesFromCodes(codes, rs.trialIns[:]); err != nil {
		return fmt.Errorf("provlog: %w", err)
	}
	return rs.st.LoadTrialVote(rs.trialIns[0], trial, out, src)
}

// replaySegment replays one segment into rs and returns the number of
// leading bytes that decoded cleanly. Torn data (short reads, checksum
// mismatches) stops the scan: in the final segment the intact prefix is the
// recovery point, anywhere else it is a hard error. lastGood < headerSize
// means even the header was torn and the segment holds nothing.
func replaySegment(sf segFile, rs *replayState, isFinal bool) (lastGood int64, err error) {
	f, err := os.Open(sf.path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := &scanner{r: bufio.NewReaderSize(f, 1<<16)}
	hb := make([]byte, headerSize)
	if _, err := io.ReadFull(sc.r, hb); err != nil {
		if isFinal && (err == io.EOF || err == io.ErrUnexpectedEOF) {
			return 0, nil
		}
		return 0, fmt.Errorf("provlog: %s: reading header: %w", filepath.Base(sf.path), err)
	}
	sc.off = headerSize
	h, err := decodeHeader(hb)
	if err != nil {
		if isFinal {
			return 0, nil
		}
		return 0, fmt.Errorf("provlog: %s: corrupt header", filepath.Base(sf.path))
	}
	if h.fingerprint != rs.space.Fingerprint() {
		return 0, fmt.Errorf("provlog: %s: log fingerprint %016x does not match space fingerprint %016x (different space?)",
			filepath.Base(sf.path), h.fingerprint, rs.space.Fingerprint())
	}
	if int(h.nParams) != rs.space.Len() {
		return 0, fmt.Errorf("provlog: %s: log has %d parameters, space has %d",
			filepath.Base(sf.path), h.nParams, rs.space.Len())
	}
	if h.segIndex != sf.index {
		return 0, fmt.Errorf("provlog: %s: header says segment %d", filepath.Base(sf.path), h.segIndex)
	}
	if h.firstSeq != uint64(rs.seen) {
		return 0, fmt.Errorf("provlog: %s: first sequence %d, but %d records precede it",
			filepath.Base(sf.path), h.firstSeq, rs.seen)
	}
	lastGood = sc.off
	for {
		typ, payload, err := sc.next(rs.space.Len())
		if err == io.EOF {
			return lastGood, rs.flush()
		}
		if err == errTorn {
			if isFinal {
				return lastGood, rs.flush()
			}
			return lastGood, fmt.Errorf("provlog: %s: corrupt frame at offset %d in sealed segment",
				filepath.Base(sf.path), lastGood)
		}
		if err != nil {
			return lastGood, fmt.Errorf("provlog: %s: %w", filepath.Base(sf.path), err)
		}
		if err := rs.apply(typ, payload); err != nil {
			return lastGood, fmt.Errorf("%w (%s, offset %d)", err, filepath.Base(sf.path), lastGood)
		}
		lastGood = sc.off
	}
}

// replayDir rebuilds the store recorded under dir: it loads the best
// checkpoint tier plan — the manifest's, falling back to chains
// reconstructed from tier file names, then to a full WAL replay — replays
// the segments holding records past the plan's watermark — skipping over
// already-covered records in a partially collected segment — and returns
// the replay state, the segment list, and the intact byte length of the
// final segment (the recovery point a writer must truncate to before
// appending). The rebuilt store is sharded across shards hash ranges (1 =
// unsharded); each loaded tier run splits at the shard boundaries and
// decodes on up to par goroutines (<= 1 = sequential).
func replayDir(dir string, space *pipeline.Space, shards, par int) (*replayState, []segFile, int64, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, nil, 0, err
	}
	// Size the store from the segment bytes: every record costs at least an
	// exec frame, so this caps the record count within the dictionary
	// overhead and avoids incremental index growth during replay.
	var capEstimate int64
	execFrame := int64(4*space.Len() + 8)
	for _, sf := range segs {
		if fi, err := os.Stat(sf.path); err == nil && fi.Size() > headerSize {
			capEstimate += (fi.Size() - headerSize) / execFrame
		}
	}

	plans, err := tierPlans(dir, space.Fingerprint())
	if err != nil {
		return nil, nil, 0, err
	}
	var rs *replayState
	var ckErr error
	for _, plan := range plans {
		st, cs, err := loadTierPlan(dir, plan, space, shards, par)
		if err != nil {
			// An unloadable plan falls back to the next one — a shallower
			// chain, or the full WAL — unless a tier provably belongs to a
			// different space, which no fallback can paper over.
			if ckErr == nil {
				ckErr = err
			}
			if !errors.Is(err, errCkptInvalid) && !errors.Is(err, fs.ErrNotExist) {
				return nil, nil, 0, err
			}
			continue
		}
		rs = newReplayState(space, st)
		// The replay mutates its tables as it scans the suffix; the
		// plan's own stay pristine in rs.ckpt, the authoritative
		// fallback when the WAL's tail turns out to be lost.
		copy(rs.persisted, cs.persisted)
		rs.sources = append(rs.sources, cs.sources...)
		for s, id := range cs.sourceID {
			rs.sourceID[s] = id
		}
		rs.skipBelow = cs.watermark
		rs.ckptSeq = cs.watermark
		rs.ckpt = cs
		break
	}
	if rs == nil {
		if len(segs) > 0 && segs[0].index != 0 {
			err := fmt.Errorf("provlog: log starts at segment %d with no loadable checkpoint covering the collected prefix", segs[0].index)
			if ckErr != nil {
				err = fmt.Errorf("%w (%v)", err, ckErr)
			}
			return nil, nil, 0, err
		}
		rs = newReplayState(space, provenance.NewStoreShardedWithCapacity(space, shards, int(capEstimate)))
	}

	start, startSeq, err := pickStartSegment(segs, rs.skipBelow)
	if err != nil {
		return nil, nil, 0, err
	}
	if start < 0 {
		// No segment enters the stream at or below the watermark: either
		// the directory has no segments, or its only segment's header was
		// torn mid-write and it holds nothing. The stream position resumes
		// at the watermark.
		rs.seen = rs.skipBelow
		if len(segs) > 0 {
			lastGood, err := replaySegment(segs[len(segs)-1], rs, true)
			return rs, segs, lastGood, err
		}
		return rs, segs, 0, nil
	}
	rs.seen = startSeq
	var lastGood int64
	for i := start; i < len(segs); i++ {
		lastGood, err = replaySegment(segs[i], rs, i == len(segs)-1)
		if err != nil {
			return nil, nil, 0, err
		}
	}
	return rs, segs, lastGood, nil
}

// pickStartSegment returns the index and first sequence of the segment
// replay should enter the stream at: the oldest segment carrying the
// highest first sequence at or below the watermark. Earlier segments are
// fully covered by the checkpoint (their records end where the start
// segment's begin, and their trial votes were re-emitted past the
// checkpoint's rotation) and are never opened. Several consecutive
// segments may share a first sequence — trial-vote frames consume no
// sequence number, so a segment holding only votes ends where it began —
// and the tie resolves to the oldest: the later tie members hold no
// records the earlier ones would double-apply, but the earlier ones hold
// vote and dictionary frames replay must not skip. It returns index -1
// when no segment qualifies — an empty directory, or a lone final segment
// whose header tore mid-write. A lowest segment starting past the
// watermark means earlier segments were lost.
func pickStartSegment(segs []segFile, watermark int) (int, int, error) {
	start, startSeq := -1, 0
	for i, sf := range segs {
		fs, err := readSegmentFirstSeq(sf.path)
		if err != nil {
			if i == len(segs)-1 {
				// The final segment's header tore mid-write; it holds
				// nothing and the writer recreates it.
				break
			}
			return 0, 0, fmt.Errorf("provlog: %s: corrupt header in sealed segment", filepath.Base(sf.path))
		}
		if i == 0 && fs > uint64(watermark) {
			return 0, 0, fmt.Errorf("provlog: %s begins at record %d but the checkpoint covers only %d — earlier segments were lost",
				filepath.Base(sf.path), fs, watermark)
		}
		if fs <= uint64(watermark) && (start < 0 || int(fs) > startSeq) {
			start, startSeq = i, int(fs)
		}
	}
	return start, startSeq, nil
}

// Replay rebuilds a fully-indexed provenance store from the log in dir
// without modifying any file, loading a checkpoint when one is present and
// replaying the WAL suffix past its watermark. Space must be constructed
// exactly as it was when the log was created (same spec); the segment
// headers' and checkpoint footer's fingerprint enforce this. A torn final
// record — the signature of a crash mid-append — is skipped; the returned
// store holds exactly the intact prefix.
func Replay(dir string, space *pipeline.Space) (*provenance.Store, error) {
	rs, segs, _, err := replayDir(dir, space, 1, runtime.GOMAXPROCS(0))
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 && rs.ckptSeq == 0 {
		return nil, fmt.Errorf("provlog: no log segments in %s", dir)
	}
	return rs.st, nil
}
