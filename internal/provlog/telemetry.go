package provlog

import (
	"time"

	"repro/internal/telemetry"
)

// Metrics is the log's instrumentation bundle: commit-window size
// distribution, fsync latency, bytes appended, segments garbage-collected,
// and checkpoint duration/bytes, plus group-commit-flush and checkpoint
// span events in the session journal. Build one with NewMetrics and attach
// it with WithMetrics; a nil *Metrics — the default — is the
// uninstrumented fast path.
type Metrics struct {
	reg     *telemetry.Registry
	journal *telemetry.Journal

	windowRecs    *telemetry.Histogram // records per commit window
	fsyncNs       *telemetry.Histogram // fsync latency per flushed window
	bytesAppended *telemetry.Counter
	flushes       *telemetry.Counter
	segmentsGCd   *telemetry.Counter
	checkpoints   *telemetry.Counter
	checkpointNs  *telemetry.Histogram
	ckptBytes     *telemetry.Counter
	tierCnt       *telemetry.Gauge     // live checkpoint tiers after the last compaction
	merges        *telemetry.Counter   // completed tier merges
	mergeNs       *telemetry.Histogram // duration per tier merge
	mergeBytes    *telemetry.Histogram // merged tier size in bytes
}

// NewMetrics registers the log's metrics in reg (under provlog_* names)
// and emits flush/checkpoint span events to journal. Either argument may
// be nil; NewMetrics(nil, nil) returns nil, the uninstrumented log.
func NewMetrics(reg *telemetry.Registry, journal *telemetry.Journal) *Metrics {
	if reg == nil && journal == nil {
		return nil
	}
	return &Metrics{
		reg:           reg,
		journal:       journal,
		windowRecs:    reg.Histogram("provlog_commit_window_recs"),
		fsyncNs:       reg.Histogram("provlog_fsync_ns"),
		bytesAppended: reg.Counter("provlog_bytes_appended"),
		flushes:       reg.Counter("provlog_flushes"),
		segmentsGCd:   reg.Counter("provlog_segments_gcd"),
		checkpoints:   reg.Counter("provlog_checkpoints"),
		checkpointNs:  reg.Histogram("provlog_checkpoint_ns"),
		ckptBytes:     reg.Counter("provlog_checkpoint_bytes"),
		tierCnt:       reg.Gauge("provlog_tiers"),
		merges:        reg.Counter("provlog_merges"),
		mergeNs:       reg.Histogram("provlog_merge_ns"),
		mergeBytes:    reg.Histogram("provlog_merge_bytes"),
	}
}

// WithMetrics attaches an instrumentation bundle to the log Open builds.
// A nil bundle (or omitting the option) leaves the log uninstrumented.
func WithMetrics(m *Metrics) Option {
	return func(l *Log) { l.met = m }
}

// flushed records one durable commit window: size distribution, byte
// counter, fsync latency (synced is false when the sync policy skipped the
// fsync), and the group-commit-flush journal span.
func (m *Metrics) flushed(recs, bytes int, fsync time.Duration, synced bool) {
	if m == nil {
		return
	}
	m.flushes.Inc()
	m.windowRecs.Observe(int64(recs))
	m.bytesAppended.Add(int64(bytes))
	if synced {
		m.fsyncNs.Observe(int64(fsync))
	}
	if m.journal != nil {
		m.journal.Emit("wal_flush",
			telemetry.Int("recs", int64(recs)),
			telemetry.Int("bytes", int64(bytes)),
			telemetry.Dur("fsync_ns", fsync),
		)
	}
}

// segmentGCd counts one garbage-collected file (a superseded WAL segment
// or checkpoint).
func (m *Metrics) segmentGCd() {
	if m == nil {
		return
	}
	m.segmentsGCd.Inc()
}

// merged records one completed tier merge: counter, size and duration
// histograms, and the merge journal span.
func (m *Metrics) merged(rows, bytes int, d time.Duration) {
	if m == nil {
		return
	}
	m.merges.Inc()
	m.mergeNs.Observe(int64(d))
	m.mergeBytes.Observe(int64(bytes))
	if m.journal != nil {
		m.journal.Emit("merge",
			telemetry.Int("rows", int64(rows)),
			telemetry.Int("bytes", int64(bytes)),
			telemetry.Dur("dur_ns", d),
		)
	}
}

// tierCount publishes the number of live checkpoint tiers.
func (m *Metrics) tierCount(n int) {
	if m == nil {
		return
	}
	m.tierCnt.Set(int64(n))
}

// checkpointed records one completed checkpoint: counter, byte counter,
// duration histogram, and the checkpoint journal span.
func (m *Metrics) checkpointed(watermark, bytes int, d time.Duration) {
	if m == nil {
		return
	}
	m.checkpoints.Inc()
	m.ckptBytes.Add(int64(bytes))
	m.checkpointNs.Observe(int64(d))
	if m.journal != nil {
		m.journal.Emit("checkpoint",
			telemetry.Int("watermark", int64(watermark)),
			telemetry.Int("bytes", int64(bytes)),
			telemetry.Dur("dur_ns", d),
		)
	}
}
