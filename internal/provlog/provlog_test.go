package provlog

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/provenance"
)

// testSpace declares the reference space; every test constructs it fresh,
// the way a resumed process would.
func testSpace(t *testing.T) *pipeline.Space {
	t.Helper()
	return pipeline.MustSpace(
		pipeline.Parameter{Name: "alpha", Kind: pipeline.Ordinal,
			Domain: []pipeline.Value{pipeline.Ord(0.1), pipeline.Ord(0.5), pipeline.Ord(0.9)}},
		pipeline.Parameter{Name: "solver", Kind: pipeline.Categorical,
			Domain: []pipeline.Value{pipeline.Cat("lbfgs"), pipeline.Cat("saga")}},
		pipeline.Parameter{Name: "depth", Kind: pipeline.Ordinal,
			Domain: []pipeline.Value{pipeline.Ord(1), pipeline.Ord(2), pipeline.Ord(3), pipeline.Ord(4)}},
	)
}

// testRecords yields n distinct instances over s, cycling outcomes and
// sources; every 5th instance carries an out-of-domain value so dictionary
// frames keep appearing mid-log, and one instance carries NaN.
func testRecords(t *testing.T, s *pipeline.Space, n int) ([]pipeline.Instance, []pipeline.Outcome, []string) {
	t.Helper()
	sources := []string{"executor", "seed", "csv"}
	var ins []pipeline.Instance
	var outs []pipeline.Outcome
	var srcs []string
	alphas := s.Domain("alpha")
	solvers := s.Domain("solver")
	depths := s.Domain("depth")
	for i := 0; len(ins) < n; i++ {
		a := alphas[i%len(alphas)]
		sol := solvers[(i/len(alphas))%len(solvers)]
		d := depths[(i/(len(alphas)*len(solvers)))%len(depths)]
		switch {
		case i%5 == 4:
			a = pipeline.Ord(10 + float64(i)) // out-of-domain ordinal
		case i == 7:
			sol = pipeline.Cat("newton") // out-of-domain categorical
		case i == 11:
			a = pipeline.Ord(math.NaN())
		}
		in, err := pipeline.NewInstance(s, []pipeline.Value{a, sol, d})
		if err != nil {
			t.Fatal(err)
		}
		dup := false
		for _, prev := range ins {
			if prev.Equal(in) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		out := pipeline.Succeed
		if i%3 == 0 {
			out = pipeline.Fail
		}
		ins = append(ins, in)
		outs = append(outs, out)
		srcs = append(srcs, sources[i%len(sources)])
	}
	return ins, outs, srcs
}

// fillStore adds the records through the store (and therefore through the
// attached sink).
func fillStore(t *testing.T, st *provenance.Store, ins []pipeline.Instance, outs []pipeline.Outcome, srcs []string) {
	t.Helper()
	for i := range ins {
		if err := st.Add(ins[i], outs[i], srcs[i]); err != nil {
			t.Fatalf("Add record %d: %v", i, err)
		}
	}
}

// assertStoresEqual lives in checkpoint_test.go: it compares two stores
// over independently constructed spaces by records, dictionaries, and
// every indexed query surface.

func TestRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s := testSpace(t)
	l, st, err := Open(dir, s)
	if err != nil {
		t.Fatal(err)
	}
	ins, outs, srcs := testRecords(t, s, 20)
	fillStore(t, st, ins, outs, srcs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Replay(dir, testSpace(t))
	if err != nil {
		t.Fatal(err)
	}
	assertStoresEqual(t, st, got)
}

func TestRotation(t *testing.T) {
	dir := t.TempDir()
	s := testSpace(t)
	l, st, err := Open(dir, s, WithSegmentSize(1)) // clamps to the minimum
	if err != nil {
		t.Fatal(err)
	}
	ins, outs, srcs := testRecords(t, s, 24)
	fillStore(t, st, ins, outs, srcs)
	if l.SegmentCount() < 3 {
		t.Fatalf("segments = %d, want rotation to produce several", l.SegmentCount())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Replay(dir, testSpace(t))
	if err != nil {
		t.Fatal(err)
	}
	assertStoresEqual(t, st, got)
}

// TestReopenResume closes a log mid-history and reopens it: the rebuilt
// store must hold the prefix, appends must continue (reusing source ids and
// dictionary state), and a final replay must see everything.
func TestReopenResume(t *testing.T) {
	dir := t.TempDir()
	s1 := testSpace(t)
	ins, outs, srcs := testRecords(t, s1, 24)
	l1, st1, err := Open(dir, s1, WithSegmentSize(200))
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, st1, ins[:10], outs[:10], srcs[:10])
	if err := l1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := testSpace(t)
	l2, st2, err := Open(dir, s2, WithSegmentSize(200))
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != 10 {
		t.Fatalf("resumed store has %d records, want 10", st2.Len())
	}
	// Re-map the remaining records onto the fresh space and keep appending.
	for i := 10; i < len(ins); i++ {
		vals := make([]pipeline.Value, ins[i].Len())
		for j := range vals {
			vals[j] = ins[i].Value(j)
		}
		in, err := pipeline.NewInstance(s2, vals)
		if err != nil {
			t.Fatal(err)
		}
		if err := st2.Add(in, outs[i], srcs[i]); err != nil {
			t.Fatalf("resumed Add %d: %v", i, err)
		}
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := Replay(dir, testSpace(t))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != len(ins) {
		t.Fatalf("replayed %d records, want %d", got.Len(), len(ins))
	}
	assertStoresEqual(t, st2, got)
}

func TestFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	s := testSpace(t)
	l, st, err := Open(dir, s)
	if err != nil {
		t.Fatal(err)
	}
	ins, outs, srcs := testRecords(t, s, 4)
	fillStore(t, st, ins, outs, srcs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	other := pipeline.MustSpace(
		pipeline.Parameter{Name: "alpha", Kind: pipeline.Ordinal,
			Domain: []pipeline.Value{pipeline.Ord(0.1), pipeline.Ord(0.5)}},
		pipeline.Parameter{Name: "solver", Kind: pipeline.Categorical,
			Domain: []pipeline.Value{pipeline.Cat("lbfgs"), pipeline.Cat("saga")}},
		pipeline.Parameter{Name: "depth", Kind: pipeline.Ordinal,
			Domain: []pipeline.Value{pipeline.Ord(1), pipeline.Ord(2), pipeline.Ord(3), pipeline.Ord(4)}},
	)
	if _, err := Replay(dir, other); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("Replay with a different space = %v, want fingerprint error", err)
	}
	if _, _, err := Open(dir, other); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("Open with a different space = %v, want fingerprint error", err)
	}
}

func TestAppendOutOfOrder(t *testing.T) {
	dir := t.TempDir()
	s := testSpace(t)
	l, _, err := Open(dir, s)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ins, outs, srcs := testRecords(t, s, 1)
	rec := provenance.Record{Seq: 5, Instance: ins[0], Outcome: outs[0], Source: srcs[0]}
	if err := l.Append(rec); err == nil {
		t.Fatal("out-of-order append succeeded")
	}
}

func TestAppendAfterClose(t *testing.T) {
	dir := t.TempDir()
	s := testSpace(t)
	l, st, err := Open(dir, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	ins, outs, srcs := testRecords(t, s, 1)
	if err := st.Add(ins[0], outs[0], srcs[0]); err == nil {
		t.Fatal("Add through a closed log succeeded")
	}
	if st.Len() != 0 {
		t.Fatalf("store committed %d records past a closed sink", st.Len())
	}
}

func TestReplayEmptyDir(t *testing.T) {
	if _, err := Replay(t.TempDir(), testSpace(t)); err == nil {
		t.Fatal("Replay of an empty directory succeeded")
	}
}

func TestExistsAndReadSpace(t *testing.T) {
	dir := t.TempDir()
	if Exists(dir) {
		t.Fatal("Exists on empty dir")
	}
	s := testSpace(t)
	l, _, err := Open(dir, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if !Exists(dir) {
		t.Fatal("Exists after Open = false")
	}
	got, err := ReadSpace(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != s.Fingerprint() {
		t.Fatalf("ReadSpace fingerprint %016x, want %016x", got.Fingerprint(), s.Fingerprint())
	}
}

// TestAppendRejectsOversizedFields proves the write path refuses what the
// scanner could not read back: an oversized source string or categorical
// label must fail the Add (leaving memory and disk consistent) instead of
// poisoning the log.
func TestAppendRejectsOversizedFields(t *testing.T) {
	dir := t.TempDir()
	s := testSpace(t)
	l, st, err := Open(dir, s)
	if err != nil {
		t.Fatal(err)
	}
	ins, outs, _ := testRecords(t, s, 3)
	huge := strings.Repeat("s", 1<<16)
	if err := st.Add(ins[0], outs[0], huge); err == nil {
		t.Fatal("Add with a 64KiB source succeeded")
	}
	hugeVal, err := pipeline.NewInstance(s, []pipeline.Value{
		ins[1].Value(0), pipeline.Cat(strings.Repeat("v", maxBlob+1)), ins[1].Value(2)})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Add(hugeVal, outs[1], "executor"); err == nil {
		t.Fatal("Add with an oversized categorical value succeeded")
	}
	// The log must remain usable and consistent after both rejections.
	if err := st.Add(ins[2], outs[2], "executor"); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Replay(dir, testSpace(t))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("replayed %d records, want 1", got.Len())
	}
}

// TestOpenExcludesSecondWriter proves the single-writer lock: a second
// Open of a live log must fail rather than interleave appends, and the
// lock must release on Close.
func TestOpenExcludesSecondWriter(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, testSpace(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, testSpace(t)); err == nil || !strings.Contains(err.Error(), "locked") {
		t.Fatalf("second Open of a live log = %v, want lock error", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, _, err := Open(dir, testSpace(t))
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSealedSegmentCorruption flips one byte inside a sealed (non-final)
// segment: recovery must refuse rather than silently drop records that
// valid later segments still reference.
func TestSealedSegmentCorruption(t *testing.T) {
	dir := t.TempDir()
	s := testSpace(t)
	l, st, err := Open(dir, s, WithSegmentSize(150))
	if err != nil {
		t.Fatal(err)
	}
	ins, outs, srcs := testRecords(t, s, 24)
	fillStore(t, st, ins, outs, srcs)
	if l.SegmentCount() < 2 {
		t.Fatalf("need rotation for this test, got %d segments", l.SegmentCount())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg0 := filepath.Join(dir, "wal-000000.seg")
	data, err := os.ReadFile(seg0)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+5] ^= 0xff
	if err := os.WriteFile(seg0, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, testSpace(t)); err == nil {
		t.Fatal("Replay of a corrupt sealed segment succeeded")
	}
	if _, _, err := Open(dir, testSpace(t)); err == nil {
		t.Fatal("Open of a corrupt sealed segment succeeded")
	}
}
