package provlog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The tier manifest. MANIFEST is the single source of truth for which
// checkpoint tiers are live: a small CRC'd file listing the tiers in
// recency order (newest first), each entry binding a tier file by name,
// sequence range, row count, and the tier file's own trailing CRC-32C.
// It is published atomically (temp file, fsync, rename, directory fsync)
// after every checkpoint and merge, replacing the historic "newest valid
// checkpoint wins" directory scan; a directory without a MANIFEST — a
// pre-tiering state dir, or disaster recovery after manifest loss — falls
// back to reconstructing tier chains from the files' names (see
// tierPlans).
//
// Layout (all integers little-endian):
//
//	magic        "BDMANv01" (8 bytes)
//	fingerprint  space fingerprint (uint64)
//	tier count   uint32
//	tiers        newest first: name length (uint16) + name bytes,
//	             firstSeq (uint64), watermark (uint64), row count
//	             (uint64), tier file CRC-32C (uint32)
//	CRC-32C      uint32 over every prior byte
const (
	manifestMagic = "BDMANv01"
	manifestName  = "MANIFEST"
)

// tierRef names one live checkpoint tier: the file (relative to the log
// directory) holding the sorted run of records with sequences in
// [firstSeq, watermark), its row count (always watermark-firstSeq — runs
// are dense), and the file's trailing CRC-32C. crc 0 means "unknown":
// references reconstructed from file names rather than a manifest carry
// no binding and the file's own checksum is the only integrity check.
type tierRef struct {
	name      string
	firstSeq  int
	watermark int
	count     int
	crc       uint32
}

// tierPath names a tier file. Base tiers — firstSeq 0, covering the whole
// prefix — keep the historic single-checkpoint name (ckpt-<watermark>.ckpt,
// byte-compatible with pre-tiering readers); delta tiers carry both range
// bounds in the name so a chain is reconstructible without opening a file.
func tierPath(dir string, firstSeq, watermark int) string {
	if firstSeq == 0 {
		return ckptPath(dir, watermark)
	}
	return filepath.Join(dir, fmt.Sprintf("tier-%016d-%016d.tier", firstSeq, watermark))
}

// listTierFiles returns every tier-shaped file in the directory — legacy
// ckpt-*.ckpt base tiers and tier-*.tier delta tiers — as unbound
// tierRefs (crc 0), unordered. Only names are parsed; validity is decided
// at load time.
func listTierFiles(dir string) ([]tierRef, error) {
	cks, err := listCheckpoints(dir)
	if err != nil {
		return nil, err
	}
	refs := make([]tierRef, 0, len(cks))
	for _, ck := range cks {
		refs = append(refs, tierRef{
			name: filepath.Base(ck.path), firstSeq: 0,
			watermark: ck.watermark, count: ck.watermark,
		})
	}
	names, err := filepath.Glob(filepath.Join(dir, "tier-*.tier"))
	if err != nil {
		return nil, err
	}
	for _, p := range names {
		base := filepath.Base(p)
		body := strings.TrimSuffix(strings.TrimPrefix(base, "tier-"), ".tier")
		lo, hi, ok := strings.Cut(body, "-")
		if !ok {
			return nil, fmt.Errorf("provlog: unrecognized tier file %q", base)
		}
		first, err1 := strconv.ParseUint(lo, 10, 63)
		wm, err2 := strconv.ParseUint(hi, 10, 63)
		if err1 != nil || err2 != nil || first >= wm {
			return nil, fmt.Errorf("provlog: unrecognized tier file %q", base)
		}
		refs = append(refs, tierRef{
			name: base, firstSeq: int(first),
			watermark: int(wm), count: int(wm - first),
		})
	}
	return refs, nil
}

// encodeManifest renders the manifest bytes for the given tier list
// (newest first).
func encodeManifest(fingerprint uint64, tiers []tierRef) []byte {
	buf := make([]byte, 0, 24+len(tiers)*64)
	buf = append(buf, manifestMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, fingerprint)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(tiers)))
	for _, t := range tiers {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(t.name)))
		buf = append(buf, t.name...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(t.firstSeq))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(t.watermark))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(t.count))
		buf = binary.LittleEndian.AppendUint32(buf, t.crc)
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, ckptCRC))
}

// decodeManifest parses and verifies manifest bytes: checksum, magic,
// fingerprint, and that the tier entries form a contiguous recency chain
// partitioning [0, watermark) — newest first, each tier beginning exactly
// where the next (older) one ends, the oldest anchored at sequence 0.
func decodeManifest(data []byte, fingerprint uint64) ([]tierRef, error) {
	if len(data) < 24 {
		return nil, fmt.Errorf("manifest is %d bytes", len(data))
	}
	if crc32.Checksum(data[:len(data)-4], ckptCRC) != binary.LittleEndian.Uint32(data[len(data)-4:]) {
		return nil, fmt.Errorf("manifest checksum mismatch")
	}
	if string(data[:8]) != manifestMagic {
		return nil, fmt.Errorf("bad manifest magic")
	}
	if got := binary.LittleEndian.Uint64(data[8:16]); got != fingerprint {
		return nil, fmt.Errorf("manifest fingerprint %016x does not match space fingerprint %016x (different space?)", got, fingerprint)
	}
	n := int(binary.LittleEndian.Uint32(data[16:20]))
	off := 20
	body := data[:len(data)-4]
	tiers := make([]tierRef, 0, n)
	for i := 0; i < n; i++ {
		if off+2 > len(body) {
			return nil, fmt.Errorf("manifest truncated at entry %d", i)
		}
		nameLen := int(binary.LittleEndian.Uint16(body[off:]))
		off += 2
		if off+nameLen+28 > len(body) {
			return nil, fmt.Errorf("manifest truncated at entry %d", i)
		}
		t := tierRef{name: string(body[off : off+nameLen])}
		off += nameLen
		t.firstSeq = int(binary.LittleEndian.Uint64(body[off:]))
		t.watermark = int(binary.LittleEndian.Uint64(body[off+8:]))
		t.count = int(binary.LittleEndian.Uint64(body[off+16:]))
		t.crc = binary.LittleEndian.Uint32(body[off+24:])
		off += 28
		if t.name == "" || filepath.Base(t.name) != t.name {
			return nil, fmt.Errorf("manifest entry %d has invalid name %q", i, t.name)
		}
		tiers = append(tiers, t)
	}
	if off != len(body) {
		return nil, fmt.Errorf("manifest has %d trailing bytes", len(body)-off)
	}
	if err := checkTierChain(tiers); err != nil {
		return nil, err
	}
	return tiers, nil
}

// checkTierChain verifies a newest-first tier list partitions [0, W)
// contiguously with dense per-tier counts.
func checkTierChain(tiers []tierRef) error {
	for i, t := range tiers {
		if t.firstSeq < 0 || t.watermark <= t.firstSeq {
			return fmt.Errorf("tier %s covers [%d, %d)", t.name, t.firstSeq, t.watermark)
		}
		if t.count != t.watermark-t.firstSeq {
			return fmt.Errorf("tier %s holds %d rows for range [%d, %d)", t.name, t.count, t.firstSeq, t.watermark)
		}
		if i+1 < len(tiers) && tiers[i+1].watermark != t.firstSeq {
			return fmt.Errorf("tier %s begins at %d but its predecessor ends at %d",
				t.name, t.firstSeq, tiers[i+1].watermark)
		}
	}
	if len(tiers) > 0 && tiers[len(tiers)-1].firstSeq != 0 {
		return fmt.Errorf("oldest tier %s begins at %d, not 0",
			tiers[len(tiers)-1].name, tiers[len(tiers)-1].firstSeq)
	}
	return nil
}

// readManifest loads and verifies the directory's MANIFEST, returning nil
// tiers (no error) when the file does not exist.
func readManifest(dir string, fingerprint uint64) ([]tierRef, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	tiers, err := decodeManifest(data, fingerprint)
	if err != nil {
		return nil, fmt.Errorf("provlog: %s: %w", manifestName, err)
	}
	return tiers, nil
}

// publishManifest atomically replaces the directory's MANIFEST with one
// naming the given tiers: temp file, fsync, rename, directory fsync. A
// crash at any point leaves either the old manifest or the new one, never
// a partial file; checkpoints and merges become visible only here.
func publishManifest(dir string, fingerprint uint64, tiers []tierRef) error {
	buf := encodeManifest(fingerprint, tiers)
	err := atomicPublish(dir, manifestName+".tmp*", filepath.Join(dir, manifestName),
		func(tmp *os.File) error {
			_, err := tmp.Write(buf)
			return err
		}, nil)
	if err != nil {
		return err
	}
	return ckptStage("manifest")
}

// tierPlans returns the candidate tier plans for opening dir, in the
// order they should be attempted: the MANIFEST's plan first (when present
// and valid), then chains reconstructed from tier file names — for every
// achievable watermark, descending, a coarse chain (preferring the widest
// tier at each boundary) and, when different, a fine chain (preferring
// the narrowest) — so a corrupted merge output still falls back to its
// surviving inputs, and a legacy directory of bare ckpt files degrades to
// exactly the historic newest-valid-checkpoint-wins scan. Tier files not
// referenced by the manifest are crash debris from an unpublished
// checkpoint; they only participate in the name-derived fallbacks.
func tierPlans(dir string, fingerprint uint64) ([][]tierRef, error) {
	var plans [][]tierRef
	manifest, err := readManifest(dir, fingerprint)
	if err != nil {
		// A corrupt manifest is a disk-level fault (publication is atomic);
		// fall through to the name-derived chains rather than refusing to
		// open.
		manifest = nil
	}
	if len(manifest) > 0 {
		plans = append(plans, manifest)
	}
	refs, lerr := listTierFiles(dir)
	if lerr != nil {
		return nil, lerr
	}
	seen := map[string]bool{}
	if len(manifest) > 0 {
		seen[planKey(manifest)] = true
	}
	for _, w := range tierWatermarks(refs) {
		for _, widest := range []bool{true, false} {
			chain := chainFor(refs, w, widest)
			if chain == nil {
				continue
			}
			if k := planKey(chain); !seen[k] {
				seen[k] = true
				plans = append(plans, chain)
			}
		}
	}
	return plans, nil
}

// tierWatermarks returns the distinct watermarks present in refs,
// descending.
func tierWatermarks(refs []tierRef) []int {
	set := map[int]bool{}
	for _, r := range refs {
		set[r.watermark] = true
	}
	ws := make([]int, 0, len(set))
	for w := range set {
		ws = append(ws, w)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ws)))
	return ws
}

// chainFor greedily builds a newest-first tier chain ending at watermark
// w and anchored at sequence 0, or nil when no complete chain exists. At
// each boundary it prefers the widest (smallest firstSeq) or narrowest
// (largest firstSeq) candidate tier.
func chainFor(refs []tierRef, w int, widest bool) []tierRef {
	var chain []tierRef
	for w > 0 {
		best := -1
		for i, r := range refs {
			if r.watermark != w {
				continue
			}
			if best < 0 ||
				(widest && r.firstSeq < refs[best].firstSeq) ||
				(!widest && r.firstSeq > refs[best].firstSeq) {
				best = i
			}
		}
		if best < 0 {
			return nil
		}
		chain = append(chain, refs[best])
		w = refs[best].firstSeq
	}
	return chain
}

func planKey(tiers []tierRef) string {
	names := make([]string, len(tiers))
	for i, t := range tiers {
		names[i] = t.name
	}
	return strings.Join(names, "|")
}
