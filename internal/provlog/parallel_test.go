package provlog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/provenance"
)

// loadCheckpoint loads one base checkpoint file as an unbound single-tier
// plan — the historic single-checkpoint load path the decode tests drive
// directly.
func loadCheckpoint(path string, space *pipeline.Space, shards, par int) (*provenance.Store, *ckptState, error) {
	base := filepath.Base(path)
	num, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(base, "ckpt-"), ".ckpt"), 10, 63)
	if err != nil {
		return nil, nil, err
	}
	w := int(num)
	plan := []tierRef{{name: base, watermark: w, count: w}}
	return loadTierPlan(filepath.Dir(path), plan, space, shards, par)
}

// This file tests the range-parallel checkpoint decode against the
// sequential baseline: same store, same queries, and — on a corrupt file —
// the same error the sequential scan would have reported.

// bigSpace is a space wide enough to enumerate thousands of distinct
// instances by mixed radix.
func bigSpace(t *testing.T) *pipeline.Space {
	t.Helper()
	dom := func(n int) []pipeline.Value {
		d := make([]pipeline.Value, n)
		for i := range d {
			d[i] = pipeline.Ord(float64(i))
		}
		return d
	}
	return pipeline.MustSpace(
		pipeline.Parameter{Name: "a", Kind: pipeline.Ordinal, Domain: dom(16)},
		pipeline.Parameter{Name: "b", Kind: pipeline.Ordinal, Domain: dom(16)},
		pipeline.Parameter{Name: "c", Kind: pipeline.Ordinal, Domain: dom(16)},
		pipeline.Parameter{Name: "d", Kind: pipeline.Ordinal, Domain: dom(2)},
	)
}

// bigCheckpoint writes a checkpoint of n distinct records (n <= 8192) and
// returns the recorded history.
func bigCheckpoint(t *testing.T, dir string, n int) ([]pipeline.Instance, []pipeline.Outcome, []string) {
	t.Helper()
	s := bigSpace(t)
	l, st, err := Open(dir, s)
	if err != nil {
		t.Fatal(err)
	}
	ins := make([]pipeline.Instance, n)
	outs := make([]pipeline.Outcome, n)
	srcs := make([]string, n)
	entries := make([]provenance.Entry, n)
	for x := 0; x < n; x++ {
		ins[x] = pipeline.MustInstance(s,
			pipeline.Ord(float64(x%16)), pipeline.Ord(float64((x/16)%16)),
			pipeline.Ord(float64((x/256)%16)), pipeline.Ord(float64(x/4096)))
		outs[x] = pipeline.Succeed
		if x%5 == 0 {
			outs[x] = pipeline.Fail
		}
		srcs[x] = fmt.Sprintf("s%d", x%3)
		entries[x] = provenance.Entry{Instance: ins[x], Outcome: outs[x], Source: srcs[x]}
	}
	if _, err := st.AddBatch(entries); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return ins, outs, srcs
}

// TestOpenParallelDecodeDifferential opens the same checkpoint dir
// sequentially and with decode fan-out — 8192 rows, enough for two ranges
// past minRowsPerDecoder — and requires identical stores on every query
// surface, across shard counts.
func TestOpenParallelDecodeDifferential(t *testing.T) {
	dir := t.TempDir()
	ins, outs, srcs := bigCheckpoint(t, dir, 2*minRowsPerDecoder)
	for _, shards := range []int{1, 8} {
		open := func(par int) *provenance.Store {
			l, st, err := Open(dir, bigSpace(t), WithStoreShards(shards), WithOpenParallelism(par))
			if err != nil {
				t.Fatalf("Open(par=%d): %v", par, err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			return st
		}
		seq := open(1)
		assertStoreMatches(t, seq, ins, outs, srcs)
		for _, par := range []int{2, 8} {
			assertStoresEqual(t, seq, open(par))
		}
	}
}

// corruptRow rewrites one byte inside a checkpoint row and fixes up the
// trailing CRC so only the row-level validation can catch it.
func corruptRow(t *testing.T, path string, p, w, row, fieldOff int, b byte) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rowSize := 4*p + 19
	rowsOff := len(data) - ckptFooterSize - w*rowSize
	data[rowsOff+row*rowSize+fieldOff] = b
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.Checksum(data[:len(data)-4], ckptCRC))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestParallelDecodeReportsSequentialError corrupts rows in both halves of
// a two-range checkpoint and requires the parallel decode to surface
// exactly the error the sequential scan reports: the lowest corrupt row.
func TestParallelDecodeReportsSequentialError(t *testing.T) {
	w := 2 * minRowsPerDecoder
	p := bigSpace(t).Len()
	outcomeOff := 8 + 4*p // hash u64, then p codes, then the outcome byte
	for _, rows := range [][]int{
		{w - 1},        // second range only
		{100, w - 100}, // one per range: row 100 must win
		{7000, w - 1},  // two in the second range: row 7000 must win
	} {
		dir := t.TempDir()
		bigCheckpoint(t, dir, w)
		cks, err := listCheckpoints(dir)
		if err != nil || len(cks) != 1 {
			t.Fatalf("checkpoints = %v, %v", cks, err)
		}
		for _, row := range rows {
			corruptRow(t, cks[0].path, p, w, row, outcomeOff, 77)
		}
		want := fmt.Sprintf("row %d has outcome 77", rows[0])
		for _, par := range []int{1, 8} {
			_, _, err := loadCheckpoint(cks[0].path, bigSpace(t), 1, par)
			if err == nil || !strings.Contains(err.Error(), want) {
				t.Fatalf("par=%d: error = %v, want %q", par, err, want)
			}
		}
	}
}

// TestDecodeRejectsDuplicateSeq duplicates one row's sequence number and
// requires both decode modes to reject the file before adoption.
func TestDecodeRejectsDuplicateSeq(t *testing.T) {
	w := 2 * minRowsPerDecoder
	p := bigSpace(t).Len()
	dir := t.TempDir()
	bigCheckpoint(t, dir, w)
	cks, err := listCheckpoints(dir)
	if err != nil || len(cks) != 1 {
		t.Fatalf("checkpoints = %v, %v", cks, err)
	}
	data, err := os.ReadFile(cks[0].path)
	if err != nil {
		t.Fatal(err)
	}
	rowSize := 4*p + 19
	rowsOff := len(data) - ckptFooterSize - w*rowSize
	seqOff := 8 + 4*p + 3 // hash, codes, outcome byte, source u16, then seq
	copy(data[rowsOff+rowSize+seqOff:], data[rowsOff+seqOff:rowsOff+seqOff+8])
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.Checksum(data[:len(data)-4], ckptCRC))
	if err := os.WriteFile(cks[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 8} {
		_, _, err := loadCheckpoint(cks[0].path, bigSpace(t), 1, par)
		if err == nil || !strings.Contains(err.Error(), "duplicate seq") {
			t.Fatalf("par=%d: error = %v, want duplicate seq", par, err)
		}
	}
}
