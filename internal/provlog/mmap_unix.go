//go:build unix

package provlog

import (
	"os"
	"syscall"
)

// mapFile returns the file's contents and a release function. On unix the
// checkpoint is memory-mapped — the load's single sequential pass streams
// straight out of the page cache with no copy — with a heap read as the
// fallback for empty or unmappable files. release must be called once the
// bytes are no longer referenced; the loader copies everything it keeps.
func mapFile(path string) (data []byte, release func(), err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := int(fi.Size())
	if size <= 0 {
		return nil, func() {}, nil
	}
	m, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		data, err := os.ReadFile(path)
		return data, func() {}, err
	}
	return m, func() { syscall.Munmap(m) }, nil
}
