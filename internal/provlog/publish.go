package provlog

import "os"

// atomicPublish writes a file and publishes it under finalPath with the
// crash-safe protocol every durable artifact in this package uses:
// CreateTemp → write → fsync file → close → rename → fsync dir. A crash
// at any point leaves either the old file or the new one, never a partial
// or empty file under the real name. The beforeRename hook (checkpoint
// crash-injection stages) runs once the temp file is durable, just before
// it is published; the temp file is removed on any failure.
//
// This is the only function allowed to call os.Rename — the renamesync
// analyzer (see docs/ANALYZERS.md) holds every other publication site to
// routing through here.
//
//bugdoc:publish
func atomicPublish(dir, tmpPattern, finalPath string, write func(*os.File) error, beforeRename func() error) error {
	tmp, err := os.CreateTemp(dir, tmpPattern)
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if beforeRename != nil {
		if err := beforeRename(); err != nil {
			return err
		}
	}
	if err := os.Rename(tmp.Name(), finalPath); err != nil {
		return err
	}
	return syncDir(dir)
}
