package provlog

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/pipeline"
)

func trialTestPolicy() pipeline.FlakyPolicy {
	return pipeline.FlakyPolicy{MinTrials: 3, MaxTrials: 5, Quorum: 3}
}

func TestTrialSourceNameRoundtrip(t *testing.T) {
	for _, src := range []string{"executor", "csv", "with#hash"} {
		for _, idx := range []int{0, 1, 42} {
			name := trialSourceName(idx, src)
			if !isTrialSource(name) {
				t.Fatalf("%q not recognized as a trial source", name)
			}
			gotIdx, gotSrc, ok := parseTrialSource(name)
			if !ok || gotIdx != idx || gotSrc != src {
				t.Fatalf("parseTrialSource(%q) = %d, %q, %v; want %d, %q", name, gotIdx, gotSrc, ok, idx, src)
			}
		}
	}
	for _, s := range []string{"executor", "trial#", "trial#x#y", "trial#-1#y", "trial#7"} {
		if _, _, ok := parseTrialSource(s); ok {
			t.Errorf("parseTrialSource(%q) accepted a malformed name", s)
		}
	}
}

func TestRecordSourceRejectsTrialPrefix(t *testing.T) {
	dir := t.TempDir()
	s := testSpace(t)
	l, st, err := Open(dir, s)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	in := pipeline.MustInstance(s, pipeline.Ord(0.1), pipeline.Cat("lbfgs"), pipeline.Ord(1))
	if err := st.Add(in, pipeline.Fail, "trial#0#executor"); err == nil {
		t.Fatal("record with the reserved trial source prefix was accepted")
	}
}

// rebuild re-creates an instance's value assignment in another space:
// Instance equality is space-scoped, so a store replayed into a fresh
// space (a restarted process) must be queried with that space's own
// instances.
func rebuild(t *testing.T, s *pipeline.Space, in pipeline.Instance) pipeline.Instance {
	t.Helper()
	vals := make([]pipeline.Value, s.Len())
	for i := range vals {
		vals[i] = in.Value(i)
	}
	return pipeline.MustInstance(s, vals...)
}

// snapshotDir copies every file of a live state directory into a fresh
// temp dir: the on-disk state a SIGKILL at this instant would leave
// behind (votes and records are durable once their append returns, so
// the copy is a superset of any kill point after it).
func snapshotDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestTrialVotesSurviveKill writes a partial quorum, snapshots the state
// directory as a kill at that instant would leave it, and opens the
// snapshot: the votes must replay, resolution must still be pending, and
// the resumed session must be able to finish the quorum and commit the
// resolved record.
func TestTrialVotesSurviveKill(t *testing.T) {
	dir := t.TempDir()
	s1 := testSpace(t)
	l1, st1, err := Open(dir, s1)
	if err != nil {
		t.Fatal(err)
	}
	defer l1.Close()
	st1.SetTrialPolicy(trialTestPolicy())
	in1 := pipeline.MustInstance(s1, pipeline.Ord(0.5), pipeline.Cat("saga"), pipeline.Ord(2))
	// Two of three needed votes: mid-quorum.
	for i := 0; i < 2; i++ {
		if _, err := st1.AddTrial(in1, pipeline.Fail, "executor"); err != nil {
			t.Fatal(err)
		}
	}
	// A deterministic record beside the votes, to prove interleaving.
	other := pipeline.MustInstance(s1, pipeline.Ord(0.1), pipeline.Cat("lbfgs"), pipeline.Ord(1))
	if err := st1.Add(other, pipeline.Succeed, "executor"); err != nil {
		t.Fatal(err)
	}
	// Simulated SIGKILL: the resumed session opens a byte copy of the
	// directory as the dead process left it, never a cleanly Closed log.
	killDir := snapshotDir(t, dir)

	s2 := testSpace(t)
	l2, st2, err := Open(killDir, s2)
	if err != nil {
		t.Fatal(err)
	}
	st2.SetTrialPolicy(trialTestPolicy())
	in2 := rebuild(t, s2, in1)
	if got := st2.TrialCount(in2); got != 2 {
		t.Fatalf("replayed TrialCount = %d, want 2", got)
	}
	if _, found := st2.Lookup(in2); found {
		t.Fatal("mid-quorum instance must not be memoized after replay")
	}
	if out, found := st2.Lookup(rebuild(t, s2, other)); !found || out != pipeline.Succeed {
		t.Fatalf("deterministic record lost across the kill: %v, %v", out, found)
	}
	// The resumed session may run at most MaxTrials - 2 further trials.
	c := st2.ClaimTrial(in2)
	if !c.Granted || c.Trial != 2 {
		t.Fatalf("resumed claim = %+v, want granted slot 2", c)
	}
	res, err := st2.AddTrial(in2, pipeline.Fail, "executor")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resolved || res.Outcome != pipeline.Fail || res.Fail != 3 {
		t.Fatalf("resumed third vote = %+v, want resolution at 0-3", res)
	}
	if err := st2.Add(in2, pipeline.Fail, "executor"); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	// A third open sees the committed resolution and the full ledger.
	s3 := testSpace(t)
	st3, err := Replay(killDir, s3)
	if err != nil {
		t.Fatal(err)
	}
	in3 := rebuild(t, s3, in1)
	if out, found := st3.Lookup(in3); !found || out != pipeline.Fail {
		t.Fatalf("resolved record after full cycle = %v, %v", out, found)
	}
	if got := st3.TrialCount(in3); got != 3 {
		t.Fatalf("final TrialCount = %d, want 3", got)
	}
}

// TestTrialVotesSurviveCheckpoint interleaves votes with enough records to
// rotate segments, checkpoints (collecting the superseded segments the
// original vote frames live in), and reopens: the re-emitted votes must
// still replay.
func TestTrialVotesSurviveCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := testSpace(t)
	l, st, err := Open(dir, s, WithSegmentSize(1))
	if err != nil {
		t.Fatal(err)
	}
	st.SetTrialPolicy(trialTestPolicy())
	flaky := pipeline.MustInstance(s, pipeline.Ord(0.9), pipeline.Cat("saga"), pipeline.Ord(4))
	if _, err := st.AddTrial(flaky, pipeline.Succeed, "executor"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AddTrial(flaky, pipeline.Fail, "executor"); err != nil {
		t.Fatal(err)
	}
	ins, outs, srcs := testRecords(t, s, 20)
	fillStore(t, st, ins, outs, srcs)
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// A second checkpoint with nothing new: the no-op path must also keep
	// the votes alive.
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := testSpace(t)
	got, err := Replay(dir, s2)
	if err != nil {
		t.Fatal(err)
	}
	flaky2 := rebuild(t, s2, flaky)
	votes := got.TrialVotes(flaky2)
	if len(votes) != 2 || votes[0].Outcome != pipeline.Succeed || votes[1].Outcome != pipeline.Fail {
		t.Fatalf("votes after checkpoint+replay = %+v, want [succeed fail]", votes)
	}
	if _, found := got.Lookup(flaky2); found {
		t.Fatal("unresolved flaky instance must not be memoized")
	}
	for i := range ins {
		if out, found := got.Lookup(rebuild(t, s2, ins[i])); !found || out != outs[i] {
			t.Fatalf("record %d lost across checkpoint: %v, %v", i, out, found)
		}
	}
}

// TestInconclusiveRecordRoundtrip persists an inconclusive (tied-quorum)
// record through the WAL, a checkpoint, and replay.
func TestInconclusiveRecordRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s := testSpace(t)
	l, st, err := Open(dir, s)
	if err != nil {
		t.Fatal(err)
	}
	tied := pipeline.MustInstance(s, pipeline.Ord(0.5), pipeline.Cat("lbfgs"), pipeline.Ord(3))
	if err := st.Add(tied, pipeline.OutcomeInconclusive, "executor"); err != nil {
		t.Fatal(err)
	}
	ins, outs, srcs := testRecords(t, s, 8)
	fillStore(t, st, ins, outs, srcs)
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := testSpace(t)
	got, err := Replay(dir, s2)
	if err != nil {
		t.Fatal(err)
	}
	if out, found := got.Lookup(rebuild(t, s2, tied)); !found || out != pipeline.OutcomeInconclusive {
		t.Fatalf("inconclusive record after checkpoint+replay = %v, %v", out, found)
	}
	succ, fail := got.Outcomes()
	wantS, wantF := 0, 0
	for _, o := range outs {
		if o == pipeline.Succeed {
			wantS++
		} else {
			wantF++
		}
	}
	if succ != wantS || fail != wantF {
		t.Fatalf("Outcomes = %d, %d; want %d, %d (inconclusive counts as neither)", succ, fail, wantS, wantF)
	}
}

// TestTrialFramesConsumeNoSequence checks the additive-format invariant:
// trial frames do not advance the record sequence, so a log whose window
// opens with votes still stamps the next record with the right sequence
// and replays against rotated segment headers.
func TestTrialFramesConsumeNoSequence(t *testing.T) {
	dir := t.TempDir()
	s := testSpace(t)
	l, st, err := Open(dir, s, WithSegmentSize(1))
	if err != nil {
		t.Fatal(err)
	}
	st.SetTrialPolicy(trialTestPolicy())
	ins, outs, srcs := testRecords(t, s, 12)
	flaky := pipeline.MustInstance(s, pipeline.Ord(0.9), pipeline.Cat("lbfgs"), pipeline.Ord(4))
	for i := range ins {
		// A vote before every record: windows and segments open on trial
		// frames as often as on records.
		if st.TrialCount(flaky) < 2 {
			if _, err := st.AddTrial(flaky, pipeline.Succeed, "executor"); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Add(ins[i], outs[i], srcs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if l.SegmentCount() < 2 {
		t.Fatalf("segments = %d, want rotation", l.SegmentCount())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Replay(dir, testSpace(t))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != len(ins) {
		t.Fatalf("replayed %d records, want %d (trial frames must not count)", got.Len(), len(ins))
	}
	sn := got.Snapshot()
	for i := 0; i < sn.Len(); i++ {
		if sn.At(i).Seq != i {
			t.Fatalf("record %d has seq %d, want %d", i, sn.At(i).Seq, i)
		}
	}
}
