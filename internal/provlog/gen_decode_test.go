package provlog

// Throwaway generator for the docs/ONDISK.md worked decode. Run with:
//   go test -run TestGenWorkedDecode -v ./internal/provlog
// It builds a two-tier state dir at /tmp/tierdemo.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/pipeline"
)

func TestGenWorkedDecode(t *testing.T) {
	if os.Getenv("GEN_DECODE") == "" {
		t.Skip("set GEN_DECODE=1 to generate")
	}
	dir := "/tmp/tierdemo"
	os.RemoveAll(dir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	space := pipeline.MustSpace(
		pipeline.Parameter{Name: "alpha", Kind: pipeline.Ordinal, Domain: []pipeline.Value{pipeline.Ord(0.1), pipeline.Ord(0.5)}},
		pipeline.Parameter{Name: "solver", Kind: pipeline.Categorical, Domain: []pipeline.Value{pipeline.Cat("lbfgs"), pipeline.Cat("saga")}},
	)
	l, st, err := Open(dir, space, WithMergePolicy(MergePolicy{MaxTiers: 8, SizeRatio: 1}))
	if err != nil {
		t.Fatal(err)
	}
	mk := func(a float64, s string) pipeline.Instance {
		return pipeline.MustInstance(space, pipeline.Ord(a), pipeline.Cat(s))
	}
	add := func(in pipeline.Instance, out pipeline.Outcome, src string) {
		if err := st.Add(in, out, src); err != nil {
			t.Fatal(err)
		}
	}
	add(mk(0.1, "lbfgs"), pipeline.Succeed, "executor")
	add(mk(0.5, "saga"), pipeline.Fail, "executor")
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	add(mk(0.1, "saga"), pipeline.Succeed, "seed")
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	ents, _ := os.ReadDir(dir)
	var names []string
	for _, e := range ents {
		fi, _ := e.Info()
		names = append(names, fmt.Sprintf("%s (%d bytes)", e.Name(), fi.Size()))
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Println(n)
	}
	_ = filepath.Join
}
