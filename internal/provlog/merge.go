package provlog

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"time"

	"repro/internal/pipeline"
)

// MergePolicy schedules tier compaction, LSM-style. After every
// checkpoint the tier list (newest first, with per-tier row counts c[0],
// c[1], ...) is reduced by merging the two newest tiers while either
// bound is violated: more than MaxTiers tiers exist, or the second tier
// is less than SizeRatio times the newest (c[1] < SizeRatio·c[0] — tiers
// must grow at least geometrically with age). Equal-sized delta
// checkpoints therefore coalesce into runs that grow by roughly SizeRatio
// before touching the next tier down, so each record is rewritten
// O(SizeRatio · log total) times over a session instead of once per
// checkpoint — checkpoint cost tracks the delta, not the history. A full
// rewrite down to one tier happens only when the ratio demands it.
type MergePolicy struct {
	// MaxTiers caps how many tiers may exist after a checkpoint. <= 0
	// takes the default (8); 1 reproduces the historic behavior of
	// rewriting the entire history on every checkpoint.
	MaxTiers int
	// SizeRatio is the minimum growth factor between adjacent tiers
	// (older over newer). <= 0 takes the default (4).
	SizeRatio int
}

// DefaultMergePolicy is the policy a log uses when WithMergePolicy is not
// given: at most 8 tiers, each at least 4x the one above it.
var DefaultMergePolicy = MergePolicy{MaxTiers: 8, SizeRatio: 4}

// WithMergePolicy sets the tier-compaction policy (see MergePolicy).
// Zero fields take their defaults.
func WithMergePolicy(p MergePolicy) Option {
	return func(l *Log) { l.merge = p }
}

func (p MergePolicy) normalized() MergePolicy {
	if p.MaxTiers <= 0 {
		p.MaxTiers = DefaultMergePolicy.MaxTiers
	}
	if p.SizeRatio <= 0 {
		p.SizeRatio = DefaultMergePolicy.SizeRatio
	}
	return p
}

// wantMerge reports whether the newest-first tier list violates the
// policy and the two newest tiers should merge.
func (p MergePolicy) wantMerge(tiers []tierRef) bool {
	if len(tiers) < 2 {
		return false
	}
	return len(tiers) > p.MaxTiers || tiers[1].count < p.SizeRatio*tiers[0].count
}

// mergeDue repeatedly merges the two newest tiers while the policy
// demands it, returning the settled tier list. Merges run outside the
// log's mutex (serialized by compactMu like the rest of a compaction);
// each merged tier is written through the same temp-fsync-rename protocol
// as a checkpoint, so a crash mid-merge leaves the inputs intact and the
// half-merged output as sweepable debris. A log closed mid-loop stops
// merging with the tiers merged so far.
func (l *Log) mergeDue(tiers []tierRef) ([]tierRef, error) {
	p := l.merge.normalized()
	for p.wantMerge(tiers) {
		l.mu.Lock()
		closed := l.closed
		l.mu.Unlock()
		if closed {
			return tiers, nil
		}
		var start time.Time
		if l.met != nil {
			start = time.Now()
		}
		merged, size, err := mergeTierFiles(l.dir, tiers[1], tiers[0])
		if err != nil {
			return tiers, err
		}
		l.met.merged(merged.count, size, time.Since(start))
		tiers = append([]tierRef{merged}, tiers[2:]...)
	}
	return tiers, nil
}

// tierInfo is the structural parse of a tier file: section boundaries and
// footer fields, without interning a single dictionary value. The merge
// path works at this level — rows are opaque fixed-width byte strings to
// it — so merging never decodes records.
type tierInfo struct {
	p           int // parameter count
	firstSeq    int
	watermark   int
	count       int
	fingerprint uint64 // the space fingerprint stamped in the footer
	persisted   []int  // dictionary entry count per parameter
	nSources    int
	dict        []byte // the dictionary tables region (params then sources)
	rows        []byte // the fixed-width row region
	crc         uint32 // the file's trailing CRC-32C
}

// parseTierStructure validates a tier file's envelope — checksum, magic
// (v01 base or v02 delta), footer, section lengths — and locates its
// regions. Row contents are not inspected; the CRC vouches for them.
func parseTierStructure(path string, data []byte) (*tierInfo, error) {
	if len(data) < ckptHeaderSize+ckptFooterSize {
		return nil, ckptInvalid(path, "file is %d bytes", len(data))
	}
	if crc32.Checksum(data[:len(data)-4], ckptCRC) != binary.LittleEndian.Uint32(data[len(data)-4:]) {
		return nil, ckptInvalid(path, "checksum mismatch")
	}
	ti := &tierInfo{crc: binary.LittleEndian.Uint32(data[len(data)-4:])}
	var footerSize int
	switch string(data[:8]) {
	case ckptMagic:
		footerSize = ckptFooterSize
	case tierMagic:
		footerSize = tierFooterSize
	default:
		return nil, ckptInvalid(path, "bad magic")
	}
	if len(data) < ckptHeaderSize+footerSize {
		return nil, ckptInvalid(path, "file is %d bytes", len(data))
	}
	ti.p = int(binary.LittleEndian.Uint32(data[8:12]))
	footer := data[len(data)-footerSize:]
	if footerSize == ckptFooterSize {
		if string(footer[:8]) != ckptFooterMagic {
			return nil, ckptInvalid(path, "bad footer magic")
		}
		ti.count = int(binary.LittleEndian.Uint64(footer[8:16]))
		ti.watermark = int(binary.LittleEndian.Uint64(footer[16:24]))
		ti.fingerprint = binary.LittleEndian.Uint64(footer[24:32])
	} else {
		if string(footer[:8]) != tierFooterMagic {
			return nil, ckptInvalid(path, "bad footer magic")
		}
		ti.firstSeq = int(binary.LittleEndian.Uint64(footer[8:16]))
		ti.count = int(binary.LittleEndian.Uint64(footer[16:24]))
		ti.watermark = int(binary.LittleEndian.Uint64(footer[24:32]))
		ti.fingerprint = binary.LittleEndian.Uint64(footer[32:40])
	}
	if ti.count != ti.watermark-ti.firstSeq {
		return nil, ckptInvalid(path, "%d records for range [%d, %d) (sparse runs are not loadable)",
			ti.count, ti.firstSeq, ti.watermark)
	}
	// Walk the dictionary tables to find where the rows begin.
	body := data[:len(data)-footerSize]
	off := ckptHeaderSize
	need := func(n int) ([]byte, error) {
		if n < 0 || off+n > len(body) {
			return nil, ckptInvalid(path, "truncated at offset %d", off)
		}
		b := body[off : off+n]
		off += n
		return b, nil
	}
	ti.persisted = make([]int, ti.p)
	dictStart := off
	for i := 0; i < ti.p; i++ {
		b, err := need(4)
		if err != nil {
			return nil, err
		}
		n := int(binary.LittleEndian.Uint32(b))
		ti.persisted[i] = n
		for c := 0; c < n; c++ {
			span, err := dictEntrySpan(body, off)
			if err != nil {
				return nil, ckptInvalid(path, "%v", err)
			}
			off += span
		}
	}
	sb, err := need(4)
	if err != nil {
		return nil, err
	}
	ti.nSources = int(binary.LittleEndian.Uint32(sb))
	for id := 0; id < ti.nSources; id++ {
		lb, err := need(2)
		if err != nil {
			return nil, err
		}
		if _, err := need(int(binary.LittleEndian.Uint16(lb))); err != nil {
			return nil, err
		}
	}
	ti.dict = body[dictStart:off]
	ti.rows = body[off:]
	rowSize := 4*ti.p + 19
	if len(ti.rows) != ti.count*rowSize {
		return nil, ckptInvalid(path, "record section is %d bytes, want %d rows of %d",
			len(ti.rows), ti.count, rowSize)
	}
	return ti, nil
}

// dictEntrySpan returns the byte length of the dictionary entry (kind
// byte plus payload) starting at buf[off].
func dictEntrySpan(buf []byte, off int) (int, error) {
	if off >= len(buf) {
		return 0, fmt.Errorf("dictionary region truncated at offset %d", off)
	}
	switch buf[off] {
	case byte(pipeline.Ordinal):
		if off+9 > len(buf) {
			return 0, fmt.Errorf("dictionary region truncated at offset %d", off)
		}
		return 9, nil
	case byte(pipeline.Categorical):
		if off+5 > len(buf) {
			return 0, fmt.Errorf("dictionary region truncated at offset %d", off)
		}
		ln := binary.LittleEndian.Uint32(buf[off+1:])
		if ln > maxBlob {
			return 0, fmt.Errorf("categorical dict entry of %d bytes", ln)
		}
		if off+5+int(ln) > len(buf) {
			return 0, fmt.Errorf("dictionary region truncated at offset %d", off)
		}
		return 5 + int(ln), nil
	default:
		return 0, fmt.Errorf("dict entry with invalid kind %d", buf[off])
	}
}

// checkTablePrefix verifies that the older tier's dictionary tables are a
// semantic prefix of the newer's — same entries, in the same order, per
// parameter and for the sources. Tiers carry the cumulative tables at
// their own watermark, so this always holds for tiers cut from one WAL;
// it is re-verified before a merge because the merged tier keeps only the
// newer tables and a mismatch would silently remap the older rows' codes.
func checkTablePrefix(older, newer *tierInfo) error {
	if older.p != newer.p {
		return fmt.Errorf("tiers have %d and %d parameters", older.p, newer.p)
	}
	oOff, nOff := 0, 0
	for i := 0; i < older.p; i++ {
		if older.persisted[i] > newer.persisted[i] {
			return fmt.Errorf("older tier has %d codes for parameter %d, newer has %d",
				older.persisted[i], i, newer.persisted[i])
		}
		oOff += 4
		nOff += 4
		for c := 0; c < newer.persisted[i]; c++ {
			nSpan, err := dictEntrySpan(newer.dict, nOff)
			if err != nil {
				return err
			}
			if c < older.persisted[i] {
				oSpan, err := dictEntrySpan(older.dict, oOff)
				if err != nil {
					return err
				}
				if !bytes.Equal(older.dict[oOff:oOff+oSpan], newer.dict[nOff:nOff+nSpan]) {
					return fmt.Errorf("dictionary entry %d of parameter %d differs between tiers", c, i)
				}
				oOff += oSpan
			}
			nOff += nSpan
		}
	}
	if older.nSources > newer.nSources {
		return fmt.Errorf("older tier has %d sources, newer has %d", older.nSources, newer.nSources)
	}
	oOff += 4
	nOff += 4
	for id := 0; id < older.nSources; id++ {
		oLn := int(binary.LittleEndian.Uint16(older.dict[oOff:]))
		nLn := int(binary.LittleEndian.Uint16(newer.dict[nOff:]))
		if oLn != nLn || !bytes.Equal(older.dict[oOff+2:oOff+2+oLn], newer.dict[nOff+2:nOff+2+nLn]) {
			return fmt.Errorf("source entry %d differs between tiers", id)
		}
		oOff += 2 + oLn
		nOff += 2 + nLn
	}
	return nil
}

// mergeTierFiles merges two adjacent tiers — older covering [a, b), newer
// covering [b, c) — into one tier covering [a, c), durably written
// through the same temp-fsync-rename protocol as a checkpoint (including
// the "tmp-written" and "renamed" crash-stage hooks). The merge is
// byte-level: both row regions are already sorted by (hash, seq), so the
// output rows are a two-way merge of opaque fixed-width rows, and the
// newer tier's cumulative dictionary tables are copied verbatim after
// verifying the older's are a semantic prefix. No record is decoded and
// no dictionary value interned. Returns the merged tier's reference and
// its file size.
func mergeTierFiles(dir string, older, newer tierRef) (tierRef, int, error) {
	if older.watermark != newer.firstSeq {
		return tierRef{}, 0, fmt.Errorf("provlog: merging non-adjacent tiers [%d, %d) and [%d, %d)",
			older.firstSeq, older.watermark, newer.firstSeq, newer.watermark)
	}
	oData, oRelease, err := mapFile(filepath.Join(dir, older.name))
	if err != nil {
		return tierRef{}, 0, err
	}
	defer oRelease()
	nData, nRelease, err := mapFile(filepath.Join(dir, newer.name))
	if err != nil {
		return tierRef{}, 0, err
	}
	defer nRelease()
	o, err := parseTierStructure(older.name, oData)
	if err != nil {
		return tierRef{}, 0, err
	}
	n, err := parseTierStructure(newer.name, nData)
	if err != nil {
		return tierRef{}, 0, err
	}
	for _, pair := range []struct {
		ti  *tierInfo
		ref tierRef
	}{{o, older}, {n, newer}} {
		if pair.ti.firstSeq != pair.ref.firstSeq || pair.ti.watermark != pair.ref.watermark {
			return tierRef{}, 0, ckptInvalid(pair.ref.name, "covers [%d, %d), manifest says [%d, %d)",
				pair.ti.firstSeq, pair.ti.watermark, pair.ref.firstSeq, pair.ref.watermark)
		}
		if pair.ref.crc != 0 && pair.ti.crc != pair.ref.crc {
			return tierRef{}, 0, ckptInvalid(pair.ref.name, "checksum does not match manifest")
		}
	}
	if o.fingerprint != n.fingerprint {
		return tierRef{}, 0, fmt.Errorf("provlog: merging %s and %s: fingerprints %016x and %016x differ",
			older.name, newer.name, o.fingerprint, n.fingerprint)
	}
	if err := checkTablePrefix(o, n); err != nil {
		return tierRef{}, 0, fmt.Errorf("provlog: merging %s and %s: %w", older.name, newer.name, err)
	}

	firstSeq, watermark := o.firstSeq, n.watermark
	count := o.count + n.count
	rowSize := 4*o.p + 19
	buf := make([]byte, 0, ckptHeaderSize+len(n.dict)+len(o.rows)+len(n.rows)+tierFooterSize)
	if firstSeq == 0 {
		buf = append(buf, ckptMagic...)
	} else {
		buf = append(buf, tierMagic...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(o.p))
	buf = binary.LittleEndian.AppendUint32(buf, 0)
	buf = append(buf, n.dict...)

	// The two-way row merge: rows compare by (hash, seq), both ascending
	// within each tier. A hash tie across tiers with equal code vectors
	// would mean one instance recorded twice — impossible out of a
	// store-fed log, and refused here rather than silently dropped, since
	// dropping a row would leave a sequence gap the loader rejects.
	oi, ni := 0, 0
	oRows, nRows := o.rows, n.rows
	for oi < len(oRows) || ni < len(nRows) {
		var takeOld bool
		switch {
		case oi >= len(oRows):
			takeOld = false
		case ni >= len(nRows):
			takeOld = true
		default:
			oh := binary.LittleEndian.Uint64(oRows[oi:])
			nh := binary.LittleEndian.Uint64(nRows[ni:])
			if oh != nh {
				takeOld = oh < nh
			} else {
				if bytes.Equal(oRows[oi+8:oi+8+4*o.p], nRows[ni+8:ni+8+4*o.p]) {
					return tierRef{}, 0, fmt.Errorf("provlog: merging %s and %s: instance at row hash %016x recorded in both tiers",
						older.name, newer.name, oh)
				}
				// Disjoint sequence ranges: every older seq precedes every
				// newer one, so ties in hash order by recency.
				takeOld = true
			}
		}
		if takeOld {
			buf = append(buf, oRows[oi:oi+rowSize]...)
			oi += rowSize
		} else {
			buf = append(buf, nRows[ni:ni+rowSize]...)
			ni += rowSize
		}
	}

	if firstSeq == 0 {
		buf = append(buf, ckptFooterMagic...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(count))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(watermark))
	} else {
		buf = append(buf, tierFooterMagic...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(firstSeq))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(count))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(watermark))
	}
	buf = binary.LittleEndian.AppendUint64(buf, n.fingerprint)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, ckptCRC))

	if err := writeTierFile(dir, buf, firstSeq, watermark); err != nil {
		return tierRef{}, 0, fmt.Errorf("provlog: merge: %w", err)
	}
	return tierRef{
		name:     filepath.Base(tierPath(dir, firstSeq, watermark)),
		firstSeq: firstSeq, watermark: watermark, count: count,
		crc: binary.LittleEndian.Uint32(buf[len(buf)-4:]),
	}, len(buf), nil
}
