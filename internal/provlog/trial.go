package provlog

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/pipeline"
	"repro/internal/provenance"
)

// Trial votes (flaky-oracle sessions) persist as ordinary exec frames
// wearing a reserved repeat-source id: the frame's source string is
// "trial#<index>#<original source>", so the format is fully additive — an
// old reader sees well-formed frames, and the replayer routes any frame
// whose source carries the prefix to the store's vote ledger instead of
// the record log. Trial frames consume no global sequence number: replay
// does not count them against segment-header firstSeq positions, and they
// are idempotent (keyed by instance and trial index) so checkpoint
// re-emission may duplicate them freely. The reserved prefix is rejected
// on record sources, so a record can never be mistaken for a vote.
const trialSourcePrefix = "trial#"

// isTrialSource reports whether a source string is a reserved trial
// repeat-source name.
func isTrialSource(s string) bool { return strings.HasPrefix(s, trialSourcePrefix) }

// trialSourceName builds the repeat-source name for one vote.
func trialSourceName(trial int, source string) string {
	return trialSourcePrefix + strconv.Itoa(trial) + "#" + source
}

// parseTrialSource splits a repeat-source name back into the trial index
// and the original source.
func parseTrialSource(s string) (trial int, source string, ok bool) {
	rest, found := strings.CutPrefix(s, trialSourcePrefix)
	if !found {
		return 0, "", false
	}
	num, src, found := strings.Cut(rest, "#")
	if !found {
		return 0, "", false
	}
	n, err := strconv.Atoi(num)
	if err != nil || n < 0 {
		return 0, "", false
	}
	return n, src, true
}

// AppendTrial implements provenance.TrialSink: it durably logs one trial
// vote as an exec frame under the vote's repeat-source name, joining the
// pending commit window exactly like a staged record (one buffered write,
// one fsync per window) and returning once the window is durable.
//
//buglint:ignore crossspace the space guard lives in stageTrialLocked, shared by every staging path; nothing is staged for a foreign instance
func (l *Log) AppendTrial(in pipeline.Instance, trial int, out pipeline.Outcome, source string) error {
	l.mu.Lock()
	if err := l.stageTrialLocked(in, out, trialSourceName(trial, source)); err != nil {
		l.mu.Unlock()
		return err
	}
	if l.cur == nil {
		l.cur = &commitGroup{full: make(chan struct{})}
	}
	g := l.cur
	g.recs++
	if max := l.maxBatch(); g.recs >= max && !g.fullSet {
		g.fullSet = true
		close(g.full)
	}
	l.mu.Unlock()
	return l.waitDurable(g)
}

// stageTrialLocked assembles one vote's frames (dictionary entries first)
// into the pending commit window. Votes carry no sequence number, so
// nextSeq does not advance; a window opened by a vote anchors its
// rotation header at nextSeq — the sequence any record staged behind it
// will carry. On error the dictionaries roll back and nothing is staged.
func (l *Log) stageTrialLocked(in pipeline.Instance, out pipeline.Outcome, name string) error {
	if l.closed {
		return fmt.Errorf("provlog: log is closed")
	}
	if l.broken != nil {
		return l.broken
	}
	if in.Space() != l.space {
		return fmt.Errorf("provlog: trial vote belongs to a different space")
	}
	if len(name) > math.MaxUint16 {
		return fmt.Errorf("provlog: trial source %.32q... is %d bytes, limit %d",
			name, len(name), math.MaxUint16)
	}
	undo := append(l.undo[:0], l.persisted...)
	l.undo = undo
	l.addedSrc = l.addedSrc[:0]
	rollback := func(reason error) error {
		copy(l.persisted, undo)
		for _, s := range l.addedSrc {
			delete(l.sourceID, s)
		}
		return reason
	}
	buf := l.pending
	for i := 0; i < l.space.Len(); i++ {
		c := int(in.Code(i))
		for l.persisted[i] <= c {
			code := uint32(l.persisted[i])
			v := l.space.InternedValue(i, code)
			if v.Kind() == pipeline.Categorical && len(v.Str()) > maxBlob {
				return rollback(fmt.Errorf("provlog: categorical value of parameter %q is %d bytes, limit %d",
					l.space.At(i).Name, len(v.Str()), maxBlob))
			}
			buf = appendDictFrame(buf, uint16(i), code, v)
			l.persisted[i]++
		}
	}
	id, ok := l.sourceID[name]
	if !ok {
		if len(l.sourceID) > math.MaxUint16 {
			return rollback(fmt.Errorf("provlog: too many distinct sources"))
		}
		id = uint16(len(l.sourceID))
		buf = appendSourceFrame(buf, id, name)
		l.sourceID[name] = id
		l.addedSrc = append(l.addedSrc, name)
	}
	buf = appendExecFrame(buf, in, out, id)
	if l.pendingRecs == 0 && l.pendingTrials == 0 {
		l.pendingFirst = l.nextSeq
	}
	l.pending = buf
	l.pendingTrials++
	return nil
}

// reemitTrials stages the store's entire vote ledger into the pending
// commit window and flushes it. Checkpoint calls it after the manifest
// publishes and before superseded segments are collected: votes recorded
// before the checkpoint's rotation live only in segments about to be
// GC'd, so re-emitting every vote into the post-rotation segment is what
// lets partial quorums survive compaction. Replay absorbs the duplicates
// (votes are idempotent by trial index).
func (l *Log) reemitTrials(trials []provenance.TrialRecord) error {
	if len(trials) == 0 {
		return nil
	}
	l.mu.Lock()
	for _, tr := range trials {
		for idx, v := range tr.Votes {
			if v.Outcome == pipeline.OutcomeUnknown {
				continue // unfilled replay hole; its vote is nowhere to re-emit
			}
			if err := l.stageTrialLocked(tr.Instance, v.Outcome, trialSourceName(idx, v.Source)); err != nil {
				l.mu.Unlock()
				return err
			}
		}
	}
	if l.cur == nil {
		l.cur = &commitGroup{full: make(chan struct{})}
	}
	g := l.cur
	if !g.fullSet {
		g.fullSet = true
		close(g.full)
	}
	l.mu.Unlock()
	return l.waitDurable(g)
}
