package provlog

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/telemetry"
)

func TestMetricsFlushAndCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := testSpace(t)
	reg := telemetry.NewRegistry()
	var jbuf bytes.Buffer
	met := NewMetrics(reg, telemetry.NewJournal(&jbuf))
	// A tiny segment forces rotations so the checkpoint has segments to GC;
	// WithSync exercises the fsync-latency histogram.
	l, st, err := Open(dir, s, WithSegmentSize(256), WithSync(true), WithMetrics(met))
	if err != nil {
		t.Fatal(err)
	}
	ins, outs, srcs := testRecords(t, s, 20)
	fillStore(t, st, ins, outs, srcs)

	snap := reg.Snapshot()
	flushes := snap.Counters["provlog_flushes"]
	if flushes == 0 {
		t.Fatal("no flushes counted")
	}
	wr := snap.Histograms["provlog_commit_window_recs"]
	if wr.Count != flushes {
		t.Errorf("window histogram count %d != flushes %d", wr.Count, flushes)
	}
	if wr.Sum != int64(len(ins)) {
		t.Errorf("window record sum %d != records appended %d", wr.Sum, len(ins))
	}
	if snap.Counters["provlog_bytes_appended"] == 0 {
		t.Error("no bytes counted")
	}
	if fs := snap.Histograms["provlog_fsync_ns"]; fs.Count != flushes {
		t.Errorf("fsync histogram count %d != flushes %d", fs.Count, flushes)
	}

	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	snap = reg.Snapshot()
	if got := snap.Counters["provlog_checkpoints"]; got != 1 {
		t.Errorf("checkpoints = %d, want 1", got)
	}
	if snap.Counters["provlog_checkpoint_bytes"] == 0 {
		t.Error("no checkpoint bytes counted")
	}
	if h := snap.Histograms["provlog_checkpoint_ns"]; h.Count != 1 {
		t.Errorf("checkpoint duration count = %d, want 1", h.Count)
	}
	if snap.Counters["provlog_segments_gcd"] == 0 {
		t.Error("no GC'd segments counted despite rotations before the checkpoint")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// The journal carries one wal_flush span per flush and the checkpoint.
	counts := map[string]int{}
	sc := bufio.NewScanner(bytes.NewReader(jbuf.Bytes()))
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("journal line not JSON: %v: %q", err, sc.Text())
		}
		counts[m["ev"].(string)]++
	}
	if int64(counts["wal_flush"]) != flushes {
		t.Errorf("journal wal_flush = %d, want %d", counts["wal_flush"], flushes)
	}
	if counts["checkpoint"] != 1 {
		t.Errorf("journal checkpoint = %d, want 1", counts["checkpoint"])
	}
}

func TestNilMetricsLogUnchanged(t *testing.T) {
	dir := t.TempDir()
	s := testSpace(t)
	l, st, err := Open(dir, s, WithMetrics(nil))
	if err != nil {
		t.Fatal(err)
	}
	ins, outs, srcs := testRecords(t, s, 5)
	fillStore(t, st, ins, outs, srcs)
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Replay(dir, testSpace(t))
	if err != nil {
		t.Fatal(err)
	}
	assertStoresEqual(t, st, got)
}
