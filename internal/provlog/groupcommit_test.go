package provlog

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/pipeline"
	"repro/internal/provenance"
)

// writerInstance builds a distinct instance per (writer, i) pair using
// out-of-domain ordinals, so concurrent writers never collide.
func writerInstance(t *testing.T, s *pipeline.Space, writer, i int) pipeline.Instance {
	t.Helper()
	in, err := pipeline.NewInstance(s, []pipeline.Value{
		pipeline.Ord(float64(1000*writer + i)),
		pipeline.Cat(fmt.Sprintf("solver-%d", writer%3)),
		pipeline.Ord(float64(i % 4)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func outcomeFor(in pipeline.Instance) pipeline.Outcome {
	if in.Hash()&1 == 0 {
		return pipeline.Fail
	}
	return pipeline.Succeed
}

// TestGroupCommitConcurrentAppends hammers a durable store with N writers
// × M appends each, under a fsync-per-window policy, and asserts every
// record is durable after Close and that each writer's records replay in
// its submission order (appends are acknowledged durable in order, so a
// writer's k-th record must precede its (k+1)-th in the log).
func TestGroupCommitConcurrentAppends(t *testing.T) {
	const writers, perWriter = 8, 40
	dir := t.TempDir()
	s := testSpace(t)
	l, st, err := Open(dir, s,
		WithSync(true),
		WithSyncPolicy(SyncPolicy{Interval: 200 * time.Microsecond, MaxBatch: 16}))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				in := writerInstance(t, s, w, i)
				if err := st.Add(in, outcomeFor(in), fmt.Sprintf("writer-%d", w)); err != nil {
					errs <- fmt.Errorf("writer %d append %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st.Len() != writers*perWriter {
		t.Fatalf("store has %d records, want %d", st.Len(), writers*perWriter)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	replayed, err := Replay(dir, testSpace(t))
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Len() != writers*perWriter {
		t.Fatalf("replayed %d records, want %d", replayed.Len(), writers*perWriter)
	}
	seqByKey := make(map[string]int, replayed.Len())
	sn := replayed.Snapshot()
	for i := 0; i < sn.Len(); i++ {
		r := sn.At(i)
		seqByKey[r.Instance.Key()] = r.Seq
		if r.Outcome != outcomeFor(r.Instance) {
			t.Fatalf("record %d replayed outcome %v", i, r.Outcome)
		}
	}
	for w := 0; w < writers; w++ {
		prev := -1
		for i := 0; i < perWriter; i++ {
			key := writerInstance(t, s, w, i).Key()
			seq, ok := seqByKey[key]
			if !ok {
				t.Fatalf("writer %d record %d missing from replay", w, i)
			}
			if seq <= prev {
				t.Fatalf("writer %d record %d replayed at seq %d, not after %d", w, i, seq, prev)
			}
			prev = seq
		}
	}
}

// TestGroupCommitMixedBatchesAndAppends races AddBatch rounds against
// single Adds, with instances shared across goroutines (the loser of each
// race must skip, not fail), and asserts the live store and the replayed
// log agree exactly.
func TestGroupCommitMixedBatchesAndAppends(t *testing.T) {
	const batchers, batchSize, adders, adds = 4, 32, 4, 24
	dir := t.TempDir()
	s := testSpace(t)
	l, st, err := Open(dir, s, WithSyncPolicy(SyncPolicy{MaxBatch: 8}))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, batchers+adders)
	for b := 0; b < batchers; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			entries := make([]provenance.Entry, 0, batchSize)
			for i := 0; i < batchSize; i++ {
				// Writers b and b+1 share half their instances, so batches
				// race each other (and the single adders below) on them.
				in := writerInstance(t, s, b/2, i)
				entries = append(entries, provenance.Entry{
					Instance: in, Outcome: outcomeFor(in), Source: "batch",
				})
			}
			if _, err := st.AddBatch(entries); err != nil {
				errs <- fmt.Errorf("batcher %d: %w", b, err)
			}
		}(b)
	}
	for a := 0; a < adders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; i < adds; i++ {
				in := writerInstance(t, s, a/2, i)
				err := st.Add(in, outcomeFor(in), "single")
				if err == nil {
					continue
				}
				// Losing the race to a batch is expected; the record must
				// then be queryable with the same outcome.
				if out, ok := st.Lookup(in); !ok || out != outcomeFor(in) {
					errs <- fmt.Errorf("adder %d: %v, and lookup = %v %v", a, err, out, ok)
					return
				}
			}
		}(a)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	replayed, err := Replay(dir, testSpace(t))
	if err != nil {
		t.Fatal(err)
	}
	assertStoresEqual(t, st, replayed)
}

// buildBatchLog writes one multi-record commit window (a single AddBatch)
// into a fresh log and returns the byte offset at which each record's exec
// frame ends, computed by re-scanning the segment with the package's own
// frame reader.
func buildBatchLog(t *testing.T, dir string, n int) (recEnds []int64, ins []pipeline.Instance, outs []pipeline.Outcome, srcs []string) {
	t.Helper()
	s := testSpace(t)
	l, st, err := Open(dir, s)
	if err != nil {
		t.Fatal(err)
	}
	ins, outs, srcs = testRecords(t, s, n)
	entries := make([]provenance.Entry, n)
	for i := range ins {
		entries[i] = provenance.Entry{Instance: ins[i], Outcome: outs[i], Source: srcs[i]}
	}
	added, err := st.AddBatch(entries)
	if err != nil || added != n {
		t.Fatalf("AddBatch = %d, %v; want %d", added, err, n)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := l.SegmentCount(); got != 1 {
		t.Fatalf("batch spilled into %d segments", got)
	}

	f, err := os.Open(filepath.Join(dir, "wal-000000.seg"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Seek(headerSize, 0); err != nil {
		t.Fatal(err)
	}
	sc := &scanner{r: bufio.NewReaderSize(f, 1<<16)}
	sc.off = headerSize
	for {
		typ, _, err := sc.next(s.Len())
		if err != nil {
			break
		}
		if typ == frameExec {
			recEnds = append(recEnds, sc.off)
		}
	}
	if len(recEnds) != n {
		t.Fatalf("scanned %d exec frames, want %d", len(recEnds), n)
	}
	return recEnds, ins, outs, srcs
}

// TestBatchCommitTornTailTorture truncates a log whose records were
// written as one multi-record batch frame sequence at every byte offset —
// every position inside the group-committed write — and asserts recovery
// yields exactly the records whose frames are fully intact: a torn batch
// never replays garbage, never drops an intact prefix record, and the
// repaired log accepts appends again.
func TestBatchCommitTornTailTorture(t *testing.T) {
	srcDir := t.TempDir()
	recEnds, ins, outs, srcs := buildBatchLog(t, srcDir, 16)
	data, err := os.ReadFile(filepath.Join(srcDir, "wal-000000.seg"))
	if err != nil {
		t.Fatal(err)
	}
	full := int64(len(data))
	if recEnds[len(recEnds)-1] != full {
		t.Fatalf("segment is %d bytes, last record ends at %d", full, recEnds[len(recEnds)-1])
	}
	intact := func(off int64) int {
		k := 0
		for k < len(recEnds) && recEnds[k] <= off {
			k++
		}
		return k
	}
	cutDir := t.TempDir()
	cutSeg := filepath.Join(cutDir, "wal-000000.seg")
	for off := int64(0); off < full; off++ {
		if err := os.WriteFile(cutSeg, data[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Replay(cutDir, testSpace(t))
		if err != nil {
			t.Fatalf("offset %d: Replay: %v", off, err)
		}
		want := intact(off)
		if st.Len() != want {
			t.Fatalf("offset %d: recovered %d records, want %d", off, st.Len(), want)
		}
		sn := st.Snapshot()
		for i := 0; i < want; i++ {
			r := sn.At(i)
			if r.Instance.Key() != ins[i].Key() || r.Outcome != outs[i] || r.Source != srcs[i] {
				t.Fatalf("offset %d: record %d = {%v %v %q}, want {%v %v %q}",
					off, i, r.Instance, r.Outcome, r.Source, ins[i], outs[i], srcs[i])
			}
		}
		// Every 7th offset (and the interesting extremes), run the full
		// crash-resume cycle: Open must truncate the torn tail and accept a
		// fresh batch from the recovery point.
		if off%7 != 0 && off != full-1 && intact(off) != 0 {
			continue
		}
		repairDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(repairDir, "wal-000000.seg"), data[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		space := testSpace(t)
		l2, st2, err := Open(repairDir, space)
		if err != nil {
			t.Fatalf("offset %d: Open: %v", off, err)
		}
		more, mouts, msrcs := testRecords(t, space, len(ins)+4)
		var entries []provenance.Entry
		for i := range more {
			if _, known := st2.Lookup(more[i]); known {
				continue
			}
			entries = append(entries, provenance.Entry{Instance: more[i], Outcome: mouts[i], Source: msrcs[i]})
		}
		if _, err := st2.AddBatch(entries); err != nil {
			t.Fatalf("offset %d: append after repair: %v", off, err)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		re, err := Replay(repairDir, testSpace(t))
		if err != nil {
			t.Fatalf("offset %d: replay after repair: %v", off, err)
		}
		assertStoresEqual(t, st2, re)
	}
}
