package provlog

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// This file tests the LSM-tiered checkpoint path: delta tiers, the
// manifest, the merge policy, crash recovery at every merge stage, and
// compatibility with pre-tiering single-checkpoint directories.

// tierNames returns the log's live tier list as "firstSeq-watermark"
// strings, newest first.
func tierNames(l *Log) []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, len(l.tiers))
	for i, t := range l.tiers {
		out[i] = fmt.Sprintf("%d-%d", t.firstSeq, t.watermark)
	}
	return out
}

// TestTieredCheckpointsAccumulate takes three checkpoints with shrinking
// deltas under a no-merge-inducing policy and verifies each one writes
// only its delta: one base checkpoint plus two delta tiers, all named by
// the manifest, with the reopened log seeing the same tier list.
func TestTieredCheckpointsAccumulate(t *testing.T) {
	dir := t.TempDir()
	s := testSpace(t)
	// SizeRatio 1 merges only when an older tier is smaller than a newer
	// one; shrinking deltas never trip it.
	l, st, err := Open(dir, s, WithSegmentSize(256),
		WithMergePolicy(MergePolicy{MaxTiers: 8, SizeRatio: 1}))
	if err != nil {
		t.Fatal(err)
	}
	ins, outs, srcs := testRecords(t, s, 47)
	fillStore(t, st, ins[:30], outs[:30], srcs[:30])
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	fillStore(t, st, ins[30:42], outs[30:42], srcs[30:42])
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	fillStore(t, st, ins[42:], outs[42:], srcs[42:])
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := []string{"42-47", "30-42", "0-30"}
	if got := tierNames(l); strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("tiers = %v, want %v", got, want)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// On disk: the base tier under the legacy checkpoint name, the two
	// delta tiers, and a manifest binding all three.
	cks, err := listCheckpoints(dir)
	if err != nil || len(cks) != 1 || cks[0].watermark != 30 {
		t.Fatalf("base checkpoints = %+v, %v, want one at 30", cks, err)
	}
	for _, name := range []string{
		fmt.Sprintf("tier-%016d-%016d.tier", 30, 42),
		fmt.Sprintf("tier-%016d-%016d.tier", 42, 47),
		manifestName,
	} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
	}
	manifest, err := readManifest(dir, s.Fingerprint())
	if err != nil || len(manifest) != 3 {
		t.Fatalf("manifest = %+v, %v, want 3 tiers", manifest, err)
	}

	l2, st2, err := Open(dir, testSpace(t), WithSegmentSize(256))
	if err != nil {
		t.Fatal(err)
	}
	assertStoreMatches(t, st2, ins, outs, srcs)
	if got := tierNames(l2); strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("reopened tiers = %v, want %v", got, want)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTierMergeFullRewrite pins MaxTiers to 1: every checkpoint must
// settle back to a single base tier under the legacy checkpoint name,
// reproducing the historic rewrite-everything behavior file for file.
func TestTierMergeFullRewrite(t *testing.T) {
	dir := t.TempDir()
	s := testSpace(t)
	l, st, err := Open(dir, s, WithSegmentSize(256),
		WithMergePolicy(MergePolicy{MaxTiers: 1, SizeRatio: 1}))
	if err != nil {
		t.Fatal(err)
	}
	ins, outs, srcs := testRecords(t, s, 40)
	fillStore(t, st, ins[:25], outs[:25], srcs[:25])
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	fillStore(t, st, ins[25:], outs[25:], srcs[25:])
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := tierNames(l); len(got) != 1 || got[0] != "0-40" {
		t.Fatalf("tiers = %v, want [0-40]", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	cks, err := listCheckpoints(dir)
	if err != nil || len(cks) != 1 || cks[0].watermark != 40 {
		t.Fatalf("checkpoints = %+v, %v, want exactly one at 40", cks, err)
	}
	if names, _ := filepath.Glob(filepath.Join(dir, "tier-*.tier")); len(names) != 0 {
		t.Fatalf("delta tiers left behind: %v", names)
	}
	l2, st2, err := Open(dir, testSpace(t))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	assertStoreMatches(t, st2, ins, outs, srcs)
}

// TestTieredDifferential drives randomized histories through a tiered log
// — random policy, random checkpoint placement, with and without a live
// WAL suffix past the last checkpoint — against a twin directory that
// holds the same records as pure WAL. Both must replay to identical
// stores on every indexed query surface.
func TestTieredDifferential(t *testing.T) {
	policies := []MergePolicy{
		{},                          // defaults
		{MaxTiers: 8, SizeRatio: 1}, // accumulate tiers
		{MaxTiers: 2, SizeRatio: 2}, // merge aggressively
		{MaxTiers: 1, SizeRatio: 1}, // legacy full rewrite
	}
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			n := 20 + r.Intn(60)
			segSize := int64(128 + r.Intn(2048))
			policy := policies[r.Intn(len(policies))]
			nCkpts := 1 + r.Intn(4)
			at := map[int]bool{}
			for len(at) < nCkpts {
				at[1+r.Intn(n)] = true // after record i; n means no live suffix
			}

			s := testSpace(t)
			ins, outs, srcs := testRecords(t, s, n)
			// Instances bind to their space; the WAL twin records the same
			// history rebuilt over its own independently constructed space.
			sW := testSpace(t)
			insW, _, _ := testRecords(t, sW, n)
			tieredDir, walDir := t.TempDir(), t.TempDir()
			lt, stT, err := Open(tieredDir, s, WithSegmentSize(segSize), WithMergePolicy(policy))
			if err != nil {
				t.Fatal(err)
			}
			lw, stW, err := Open(walDir, sW, WithSegmentSize(segSize))
			if err != nil {
				t.Fatal(err)
			}
			for i := range ins {
				if err := stT.Add(ins[i], outs[i], srcs[i]); err != nil {
					t.Fatal(err)
				}
				if err := stW.Add(insW[i], outs[i], srcs[i]); err != nil {
					t.Fatal(err)
				}
				if at[i+1] {
					if err := lt.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := lt.Close(); err != nil {
				t.Fatal(err)
			}
			if err := lw.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := os.Stat(filepath.Join(tieredDir, manifestName)); err != nil {
				t.Fatalf("no manifest after %d checkpoints: %v", nCkpts, err)
			}

			viaTiers, err := Replay(tieredDir, testSpace(t))
			if err != nil {
				t.Fatal(err)
			}
			viaWAL, err := Replay(walDir, testSpace(t))
			if err != nil {
				t.Fatal(err)
			}
			assertStoreMatches(t, viaTiers, ins, outs, srcs)
			assertStoresEqual(t, viaWAL, viaTiers)
		})
	}
}

// TestTierMergeCrashTorture kills the third checkpoint of a
// merge-inducing session at every stage — the delta tier's temp write and
// rename, the merged tier's temp write and rename, the manifest publish,
// and mid-collection — and verifies Open recovers the identical store
// each time, keeps accepting appends, and that the next clean checkpoint
// settles the directory.
func TestTierMergeCrashTorture(t *testing.T) {
	// Policy chosen so checkpoint #3 triggers exactly one merge: tiers
	// [10, 12, 30] exceed MaxTiers 2, merging to [22, 30], which settles.
	cases := []struct {
		stage string
		nth   int // crash at the nth occurrence of stage
	}{
		{"tmp-written", 1}, // delta tier temp file
		{"tmp-written", 2}, // merged tier temp file
		{"renamed", 1},     // delta tier durable
		{"renamed", 2},     // merged tier durable
		{"manifest", 1},    // new tier list published
		{"gc", 1},          // first superseded file about to go
		{"gc", 2},          // mid-collection
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s-%d", tc.stage, tc.nth), func(t *testing.T) {
			dir := t.TempDir()
			s := testSpace(t)
			l, st, err := Open(dir, s, WithSegmentSize(256),
				WithMergePolicy(MergePolicy{MaxTiers: 2, SizeRatio: 1}))
			if err != nil {
				t.Fatal(err)
			}
			ins, outs, srcs := testRecords(t, s, 52)
			fillStore(t, st, ins[:30], outs[:30], srcs[:30])
			if err := l.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			fillStore(t, st, ins[30:42], outs[30:42], srcs[30:42])
			if err := l.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			fillStore(t, st, ins[42:], outs[42:], srcs[42:])

			seen := 0
			ckptTestHook = func(got string) error {
				if got == tc.stage {
					seen++
					if seen == tc.nth {
						return fmt.Errorf("injected crash at %s #%d", got, seen)
					}
				}
				return nil
			}
			err = l.Checkpoint()
			ckptTestHook = nil
			if err == nil || !strings.Contains(err.Error(), "injected crash") {
				t.Fatalf("Checkpoint = %v, want the injected crash", err)
			}
			if seen < tc.nth {
				t.Fatalf("stage %s occurred %d times, test wanted occurrence %d", tc.stage, seen, tc.nth)
			}
			// Simulate the kill: abandon the handle, releasing only the flock.
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}

			// Open must recover the full history regardless of which file
			// operations landed before the crash.
			l2, st2, err := Open(dir, testSpace(t), WithSegmentSize(256),
				WithMergePolicy(MergePolicy{MaxTiers: 2, SizeRatio: 1}))
			if err != nil {
				t.Fatalf("Open after crash at %s #%d: %v", tc.stage, tc.nth, err)
			}
			assertStoreMatches(t, st2, ins, outs, srcs)

			// The session keeps going: more records, then a clean checkpoint
			// that finishes whatever the crashed one left half-done.
			more, mouts, msrcs := testRecords(t, st2.Space(), len(ins)+8)
			for i := len(ins); i < len(more); i++ {
				if err := st2.Add(more[i], mouts[i], msrcs[i]); err != nil {
					t.Fatal(err)
				}
			}
			if err := l2.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}
			got, err := Replay(dir, testSpace(t))
			if err != nil {
				t.Fatal(err)
			}
			assertStoreMatches(t, got, more, mouts, msrcs)

			// After the clean checkpoint, the directory holds no debris: every
			// tier file on disk is named by the manifest.
			manifest, err := readManifest(dir, s.Fingerprint())
			if err != nil || len(manifest) == 0 {
				t.Fatalf("manifest after recovery = %+v, %v", manifest, err)
			}
			live := map[string]bool{}
			for _, tier := range manifest {
				live[tier.name] = true
			}
			refs, err := listTierFiles(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, ref := range refs {
				if !live[ref.name] {
					t.Fatalf("debris tier %s survived the recovery checkpoint", ref.name)
				}
			}
		})
	}
}

// TestSingleTierBackwardCompat opens a pre-tiering state directory — one
// v01 checkpoint written without any manifest, exactly what an older
// process leaves — and requires the identical store, then verifies the
// first tiered checkpoint upgrades the directory in place.
func TestSingleTierBackwardCompat(t *testing.T) {
	dir := t.TempDir()
	s := testSpace(t)
	l, st, err := Open(dir, s)
	if err != nil {
		t.Fatal(err)
	}
	ins, outs, srcs := testRecords(t, s, 20)
	fillStore(t, st, ins, outs, srcs)
	buf, err := encodeCheckpoint(s, s.Fingerprint(), st.Snapshot(), len(ins))
	if err != nil {
		t.Fatal(err)
	}
	if err := writeCheckpointFile(dir, buf, len(ins)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); !os.IsNotExist(err) {
		t.Fatalf("pre-tiering fixture has a manifest (err = %v)", err)
	}

	l2, st2, err := Open(dir, testSpace(t), WithMergePolicy(MergePolicy{MaxTiers: 8, SizeRatio: 1}))
	if err != nil {
		t.Fatal(err)
	}
	assertStoreMatches(t, st2, ins, outs, srcs)
	if got := tierNames(l2); len(got) != 1 || got[0] != "0-20" {
		t.Fatalf("tiers from legacy dir = %v, want [0-20]", got)
	}
	more, mouts, msrcs := testRecords(t, st2.Space(), len(ins)+7)
	for i := len(ins); i < len(more); i++ {
		if err := st2.Add(more[i], mouts[i], msrcs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := l2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := tierNames(l2); strings.Join(got, " ") != "20-27 0-20" {
		t.Fatalf("tiers after upgrade checkpoint = %v, want [20-27 0-20]", got)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
		t.Fatalf("upgrade checkpoint wrote no manifest: %v", err)
	}
	got, err := Replay(dir, testSpace(t))
	if err != nil {
		t.Fatal(err)
	}
	assertStoreMatches(t, got, more, mouts, msrcs)
}

// TestManifestLossFallback deletes (and separately corrupts) the MANIFEST
// of a multi-tier directory whose covered segments are already collected:
// Open must reconstruct the tier chain from the file names alone.
func TestManifestLossFallback(t *testing.T) {
	build := func(t *testing.T) (string, []int) {
		dir := t.TempDir()
		s := testSpace(t)
		l, st, err := Open(dir, s, WithSegmentSize(256),
			WithMergePolicy(MergePolicy{MaxTiers: 8, SizeRatio: 1}))
		if err != nil {
			t.Fatal(err)
		}
		ins, outs, srcs := testRecords(t, s, 47)
		for _, w := range [][2]int{{0, 30}, {30, 42}, {42, 47}} {
			fillStore(t, st, ins[w[0]:w[1]], outs[w[0]:w[1]], srcs[w[0]:w[1]])
			if err := l.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		return dir, []int{47}
	}
	check := func(t *testing.T, dir string) {
		s := testSpace(t)
		ins, outs, srcs := testRecords(t, s, 47)
		l, st, err := Open(dir, s)
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		assertStoreMatches(t, st, ins, outs, srcs)
	}

	t.Run("deleted", func(t *testing.T) {
		dir, _ := build(t)
		if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
			t.Fatal(err)
		}
		check(t, dir)
	})
	t.Run("corrupt", func(t *testing.T) {
		dir, _ := build(t)
		path := filepath.Join(dir, manifestName)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		check(t, dir)
	})
}

// TestMergePolicyWantMerge pins the policy arithmetic.
func TestMergePolicyWantMerge(t *testing.T) {
	mk := func(counts ...int) []tierRef {
		tiers := make([]tierRef, len(counts))
		w := 0
		for i := len(counts) - 1; i >= 0; i-- {
			tiers[i] = tierRef{firstSeq: w, watermark: w + counts[i], count: counts[i]}
			w += counts[i]
		}
		return tiers
	}
	cases := []struct {
		p     MergePolicy
		tiers []tierRef
		want  bool
	}{
		{MergePolicy{}, nil, false},
		{MergePolicy{}, mk(10), false},
		{MergePolicy{MaxTiers: 2, SizeRatio: 1}, mk(5, 12, 30), true},  // too many tiers
		{MergePolicy{MaxTiers: 8, SizeRatio: 1}, mk(5, 12, 30), false}, // shrinking deltas
		{MergePolicy{MaxTiers: 8, SizeRatio: 4}, mk(5, 12, 30), true},  // 12 < 4*5
		{MergePolicy{MaxTiers: 8, SizeRatio: 4}, mk(5, 20, 80), false}, // exactly geometric
		{MergePolicy{MaxTiers: 1, SizeRatio: 1}, mk(30, 10), true},     // always down to one
		{MergePolicy{MaxTiers: 8, SizeRatio: 1}, mk(30, 10), true},     // inverted sizes
	}
	for i, tc := range cases {
		if got := tc.p.normalized().wantMerge(tc.tiers); got != tc.want {
			t.Errorf("case %d: wantMerge(%v, %d tiers) = %v, want %v",
				i, tc.p, len(tc.tiers), got, tc.want)
		}
	}
	if n := (MergePolicy{}).normalized(); n != DefaultMergePolicy {
		t.Errorf("normalized zero policy = %+v, want %+v", n, DefaultMergePolicy)
	}
}
