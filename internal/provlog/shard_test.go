package provlog

import (
	"testing"
)

// TestOpenShardedMatchesUnsharded covers the sharded resume path end to
// end: a directory holding a checkpoint plus a WAL suffix reopens into
// sharded stores at several shard counts — the hash-sorted run splits at
// the shard boundaries and each shard adopts its sub-run — and every one
// must be indistinguishable from the unsharded rebuild. The shard count is
// a property of the in-memory store only, so sessions written at one count
// reopen at any other.
func TestOpenShardedMatchesUnsharded(t *testing.T) {
	dir := t.TempDir()
	s := testSpace(t)
	l, st, err := Open(dir, s)
	if err != nil {
		t.Fatal(err)
	}
	ins, outs, srcs := testRecords(t, s, 120)
	fillStore(t, st, ins[:80], outs[:80], srcs[:80])
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// A live suffix past the watermark: sharded opens must replay it on
	// top of the split run.
	fillStore(t, st, ins[80:], outs[80:], srcs[80:])
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	flat, err := Replay(dir, testSpace(t))
	if err != nil {
		t.Fatal(err)
	}
	assertStoreMatches(t, flat, ins, outs, srcs)

	for _, k := range []int{2, 8, 32} {
		l2, st2, err := Open(dir, testSpace(t), WithStoreShards(k))
		if err != nil {
			t.Fatalf("sharded open (%d): %v", k, err)
		}
		if got := st2.Shards(); got != k {
			t.Fatalf("store has %d shards, want %d", got, k)
		}
		assertStoresEqual(t, flat, st2)
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Extend the session sharded — appends, another compaction — and
	// confirm an unsharded reopen still sees the identical history: the
	// disk format is shard-agnostic in both directions.
	l3, st3, err := Open(dir, testSpace(t), WithStoreShards(4))
	if err != nil {
		t.Fatal(err)
	}
	ins2, outs2, srcs2 := testRecords(t, st3.Space(), 150)
	fillStore(t, st3, ins2[120:], outs2[120:], srcs2[120:])
	if err := l3.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := l3.Close(); err != nil {
		t.Fatal(err)
	}
	flat2, err := Replay(dir, testSpace(t))
	if err != nil {
		t.Fatal(err)
	}
	l4, st4, err := Open(dir, testSpace(t), WithStoreShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer l4.Close()
	assertStoresEqual(t, flat2, st4)
	if st4.Len() != 150 {
		t.Fatalf("sharded resume holds %d records, want 150", st4.Len())
	}
}
