package exec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/provenance"
	"repro/internal/telemetry"
)

// scriptedOracle replays a fixed per-instance verdict sequence, repeating
// the last entry once exhausted. Safe for concurrent use.
type scriptedOracle struct {
	mu      sync.Mutex
	scripts *pipeline.InstanceMap[[]pipeline.Outcome]
	next    *pipeline.InstanceMap[int32]
	calls   atomic.Int32
}

func newScriptedOracle() *scriptedOracle {
	return &scriptedOracle{
		scripts: pipeline.NewInstanceMap[[]pipeline.Outcome](8),
		next:    pipeline.NewInstanceMap[int32](8),
	}
}

func (o *scriptedOracle) script(in pipeline.Instance, outs ...pipeline.Outcome) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.scripts.Put(in, outs)
}

func (o *scriptedOracle) Run(_ context.Context, in pipeline.Instance) (pipeline.Outcome, error) {
	o.calls.Add(1)
	o.mu.Lock()
	defer o.mu.Unlock()
	seq, ok := o.scripts.Get(in)
	if !ok || len(seq) == 0 {
		return pipeline.OutcomeUnknown, fmt.Errorf("no script for %v", in)
	}
	n, _ := o.next.Get(in)
	o.next.Put(in, n+1)
	if int(n) >= len(seq) {
		n = int32(len(seq) - 1)
	}
	return seq[n], nil
}

func TestEvaluateFlakyQuorumResolves(t *testing.T) {
	s := testSpace(t)
	oracle := newScriptedOracle()
	a := pipeline.MustInstance(s, pipeline.Ord(1), pipeline.Ord(1))
	b := pipeline.MustInstance(s, pipeline.Ord(2), pipeline.Ord(2))
	// a: one dissenting vote forces a fourth trial before the fail quorum.
	oracle.script(a, pipeline.Fail, pipeline.Succeed, pipeline.Fail, pipeline.Fail)
	oracle.script(b, pipeline.Succeed, pipeline.Succeed, pipeline.Succeed)
	ex := New(oracle, provenance.NewStore(s),
		WithFlakyPolicy(FlakyPolicy{MinTrials: 3, MaxTrials: 5, Quorum: 3}))
	ctx := context.Background()

	out, err := ex.Evaluate(ctx, a)
	if err != nil || out != pipeline.Fail {
		t.Fatalf("Evaluate(a) = %v, %v", out, err)
	}
	if got := oracle.calls.Load(); got != 4 {
		t.Fatalf("a resolved after %d trials, want 4", got)
	}
	if got := ex.Store().TrialCount(a); got != 4 {
		t.Fatalf("TrialCount(a) = %d, want 4", got)
	}
	if got := ex.Store().TrialMargin(a); got != 2 {
		t.Fatalf("TrialMargin(a) = %d, want 2 (3 fail - 1 succeed)", got)
	}
	if out, err := ex.Evaluate(ctx, b); err != nil || out != pipeline.Succeed {
		t.Fatalf("Evaluate(b) = %v, %v", out, err)
	}
	if got := ex.Spent(); got != 7 {
		t.Fatalf("Spent = %d, want 7 (every trial costs one unit)", got)
	}
	// Resolved instances are memoized: no further trials.
	before := oracle.calls.Load()
	if out, err := ex.Evaluate(ctx, a); err != nil || out != pipeline.Fail {
		t.Fatalf("re-Evaluate(a) = %v, %v", out, err)
	}
	if oracle.calls.Load() != before {
		t.Fatal("memoized flaky instance re-ran the oracle")
	}
}

func TestEvaluateFlakyTieIsInconclusive(t *testing.T) {
	s := testSpace(t)
	oracle := newScriptedOracle()
	in := pipeline.MustInstance(s, pipeline.Ord(3), pipeline.Ord(3))
	oracle.script(in, pipeline.Succeed, pipeline.Fail, pipeline.Succeed, pipeline.Fail)
	reg := telemetry.NewRegistry()
	tel := NewTelemetry(reg, nil, 1)
	ex := New(oracle, provenance.NewStore(s),
		WithFlakyPolicy(FlakyPolicy{MinTrials: 2, MaxTrials: 4, Quorum: 3}),
		WithTelemetry(tel))
	ctx := context.Background()

	out, err := ex.Evaluate(ctx, in)
	if err != nil || out != pipeline.OutcomeInconclusive {
		t.Fatalf("Evaluate = %v, %v; want inconclusive tie", out, err)
	}
	if got := oracle.calls.Load(); got != 4 {
		t.Fatalf("tie declared after %d trials, want the MaxTrials cap 4", got)
	}
	// The tie is memoized like any outcome: no re-trials, served from
	// provenance, and counted by the quorum telemetry exactly once.
	if out, err := ex.Evaluate(ctx, in); err != nil || out != pipeline.OutcomeInconclusive {
		t.Fatalf("re-Evaluate = %v, %v", out, err)
	}
	if got := oracle.calls.Load(); got != 4 {
		t.Fatalf("memoized tie re-ran the oracle (%d calls)", got)
	}
	if got := tel.quorumTies.Load(); got != 1 {
		t.Fatalf("exec_quorum_ties = %d, want 1", got)
	}
	if got := tel.trialsPerInst.Count(); got != 1 {
		t.Fatalf("exec_trials_per_instance observations = %d, want 1", got)
	}
}

func TestFlakyBudgetSpansTrials(t *testing.T) {
	s := testSpace(t)
	oracle := newScriptedOracle()
	a := pipeline.MustInstance(s, pipeline.Ord(1), pipeline.Ord(2))
	b := pipeline.MustInstance(s, pipeline.Ord(2), pipeline.Ord(1))
	oracle.script(a, pipeline.Fail)
	oracle.script(b, pipeline.Fail)
	ex := New(oracle, provenance.NewStore(s),
		WithFlakyPolicy(FlakyPolicy{MinTrials: 3, MaxTrials: 5, Quorum: 3}),
		WithBudget(3))
	ctx := context.Background()

	if out, err := ex.Evaluate(ctx, a); err != nil || out != pipeline.Fail {
		t.Fatalf("Evaluate(a) = %v, %v", out, err)
	}
	if got := ex.Spent(); got != 3 {
		t.Fatalf("Spent = %d, want 3 (one unit per trial)", got)
	}
	if _, err := ex.Evaluate(ctx, b); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	// The resolved instance stays free.
	if out, err := ex.Evaluate(ctx, a); err != nil || out != pipeline.Fail {
		t.Fatalf("memoized after exhaustion: %v, %v", out, err)
	}
}

func TestFlakyOracleErrorRefundsTrial(t *testing.T) {
	s := testSpace(t)
	in := pipeline.MustInstance(s, pipeline.Ord(4), pipeline.Ord(4))
	var calls atomic.Int32
	oracle := OracleFunc(func(context.Context, pipeline.Instance) (pipeline.Outcome, error) {
		if calls.Add(1) == 2 {
			return pipeline.OutcomeUnknown, errors.New("transient crash")
		}
		return pipeline.Fail, nil
	})
	ex := New(oracle, provenance.NewStore(s),
		WithFlakyPolicy(FlakyPolicy{MinTrials: 3, MaxTrials: 5, Quorum: 3}))
	ctx := context.Background()

	if _, err := ex.Evaluate(ctx, in); err == nil {
		t.Fatal("mid-quorum oracle error must propagate")
	}
	// The first vote was recorded and stays paid; the errored trial's unit
	// was refunded.
	if got := ex.Spent(); got != 1 {
		t.Fatalf("Spent after error = %d, want 1", got)
	}
	if got := ex.Store().TrialCount(in); got != 1 {
		t.Fatalf("TrialCount after error = %d, want 1", got)
	}
	// A retry resumes the partial quorum rather than starting over.
	out, err := ex.Evaluate(ctx, in)
	if err != nil || out != pipeline.Fail {
		t.Fatalf("retry = %v, %v", out, err)
	}
	if got := ex.Store().TrialCount(in); got != 3 {
		t.Fatalf("TrialCount after retry = %d, want 3", got)
	}
	if got := ex.Spent(); got != 3 {
		t.Fatalf("Spent after retry = %d, want 3", got)
	}
}

func TestEvaluateBatchFlaky(t *testing.T) {
	s := testSpace(t)
	var calls atomic.Int32
	oracle := OracleFunc(func(ctx context.Context, in pipeline.Instance) (pipeline.Outcome, error) {
		calls.Add(1)
		return failIfA1(ctx, in)
	})
	ex := New(oracle, provenance.NewStore(s),
		WithFlakyPolicy(FlakyPolicy{MinTrials: 3, MaxTrials: 5, Quorum: 3}),
		WithWorkers(4))
	ins := []pipeline.Instance{
		pipeline.MustInstance(s, pipeline.Ord(1), pipeline.Ord(1)),
		pipeline.MustInstance(s, pipeline.Ord(2), pipeline.Ord(2)),
		pipeline.MustInstance(s, pipeline.Ord(1), pipeline.Ord(1)), // duplicate
		pipeline.MustInstance(s, pipeline.Ord(3), pipeline.Ord(3)),
	}
	results := ex.EvaluateBatch(context.Background(), ins)
	want := []pipeline.Outcome{pipeline.Fail, pipeline.Succeed, pipeline.Fail, pipeline.Succeed}
	for i, r := range results {
		if r.Err != nil || r.Outcome != want[i] {
			t.Fatalf("result %d = %v, %v; want %v", i, r.Outcome, r.Err, want[i])
		}
	}
	// Three distinct instances x three agreeing trials each; the duplicate
	// adopted its twin's resolution without dispatching.
	if got := calls.Load(); got != 9 {
		t.Fatalf("oracle ran %d trials, want 9", got)
	}
	if got := ex.Spent(); got != 9 {
		t.Fatalf("Spent = %d, want 9", got)
	}
	for _, in := range ins {
		if got := ex.Store().TrialCount(in); got != 3 {
			t.Fatalf("TrialCount(%v) = %d, want 3", in, got)
		}
	}
}

func TestFlakyDisabledPolicyIsDeterministicPath(t *testing.T) {
	s := testSpace(t)
	var calls atomic.Int32
	oracle := OracleFunc(func(ctx context.Context, in pipeline.Instance) (pipeline.Outcome, error) {
		calls.Add(1)
		return failIfA1(ctx, in)
	})
	// The zero policy is explicitly the single-trial path.
	ex := New(oracle, provenance.NewStore(s), WithFlakyPolicy(FlakyPolicy{}))
	in := pipeline.MustInstance(s, pipeline.Ord(1), pipeline.Ord(3))
	out, err := ex.Evaluate(context.Background(), in)
	if err != nil || out != pipeline.Fail {
		t.Fatalf("Evaluate = %v, %v", out, err)
	}
	if calls.Load() != 1 || ex.Spent() != 1 {
		t.Fatalf("calls = %d, spent = %d; want 1, 1", calls.Load(), ex.Spent())
	}
	if got := ex.Store().TrialCount(in); got != 0 {
		t.Fatalf("deterministic path recorded %d trial votes, want 0", got)
	}
}

func TestFlakyPolicyValidationOnConstruction(t *testing.T) {
	s := testSpace(t)
	bad := FlakyPolicy{MinTrials: 4, MaxTrials: 2, Quorum: 1}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New accepted an invalid flaky policy")
			}
		}()
		New(OracleFunc(failIfA1), provenance.NewStore(s), WithFlakyPolicy(bad))
	}()
	if _, err := NewDurable(OracleFunc(failIfA1), s, t.TempDir(), WithFlakyPolicy(bad)); err == nil {
		t.Error("NewDurable accepted an invalid flaky policy")
	}
}

// TestFlakyQuorumRaceStress races 8 workers re-dispatching the same
// instances under a genuinely 50/50 oracle (deterministic per instance and
// per trial ordinal, so -race runs reproduce). It checks the resolution
// invariants the design note promises: per-instance vote counts only ever
// grow, no instance exceeds MaxTrials, every worker observes the one
// committed outcome, and re-resolving the recorded final tallies under the
// policy reproduces exactly that outcome.
func TestFlakyQuorumRaceStress(t *testing.T) {
	s := testSpace(t)
	policy := FlakyPolicy{MinTrials: 3, MaxTrials: 7, Quorum: 4}
	var counterMu sync.Mutex
	ordinals := pipeline.NewInstanceMap[int32](16)
	oracle := OracleFunc(func(_ context.Context, in pipeline.Instance) (pipeline.Outcome, error) {
		counterMu.Lock()
		k, _ := ordinals.Get(in)
		ordinals.Put(in, k+1)
		counterMu.Unlock()
		h := in.Hash() ^ uint64(k)*0x9e3779b97f4a7c15
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
		if h&1 == 0 {
			return pipeline.Succeed, nil
		}
		return pipeline.Fail, nil
	})
	ex := New(oracle, provenance.NewStoreSharded(s, 4), WithFlakyPolicy(policy))

	var ins []pipeline.Instance
	for a := 1; a <= 4; a++ {
		for b := 1; b <= 4; b++ {
			ins = append(ins, pipeline.MustInstance(s, pipeline.Ord(float64(a)), pipeline.Ord(float64(b))))
		}
	}

	// Monitor: vote counters must be monotone while the workers race.
	done := make(chan struct{})
	var monitorErr atomic.Value
	go func() {
		last := make([]int, len(ins))
		for {
			for i, in := range ins {
				n := ex.Store().TrialCount(in)
				if n < last[i] {
					monitorErr.Store(fmt.Errorf("instance %d vote count shrank: %d -> %d", i, last[i], n))
					return
				}
				last[i] = n
			}
			select {
			case <-done:
				return
			default:
			}
		}
	}()

	const workers = 8
	var wg sync.WaitGroup
	outcomes := make([][]pipeline.Outcome, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			outcomes[w] = make([]pipeline.Outcome, len(ins))
			for i := range ins {
				// Stagger the order per worker so claims genuinely contend.
				i := (i*7 + w*3) % len(ins)
				out, err := ex.Evaluate(context.Background(), ins[i])
				if err != nil {
					t.Errorf("worker %d instance %d: %v", w, i, err)
					return
				}
				outcomes[w][i] = out
			}
		}(w)
	}
	wg.Wait()
	close(done)
	if err := monitorErr.Load(); err != nil {
		t.Fatal(err)
	}

	totalVotes := 0
	for i, in := range ins {
		committed, ok := ex.Store().Lookup(in)
		if !ok {
			t.Fatalf("instance %d never resolved", i)
		}
		for w := 0; w < workers; w++ {
			if outcomes[w][i] != pipeline.OutcomeUnknown && outcomes[w][i] != committed {
				t.Fatalf("worker %d saw %v for instance %d, committed %v", w, outcomes[w][i], i, committed)
			}
		}
		votes := ex.Store().TrialVotes(in)
		if len(votes) < policy.MinTrials || len(votes) > policy.MaxTrials {
			t.Fatalf("instance %d recorded %d votes, want within [%d, %d]",
				i, len(votes), policy.MinTrials, policy.MaxTrials)
		}
		succ, fail := 0, 0
		for _, v := range votes {
			switch v.Outcome {
			case pipeline.Succeed:
				succ++
			case pipeline.Fail:
				fail++
			default:
				t.Fatalf("instance %d holds a non-verdict vote %v", i, v.Outcome)
			}
		}
		out, doneRes := policy.Resolve(succ, fail)
		if !doneRes || out != committed {
			t.Fatalf("instance %d: re-resolving recorded tallies (%d, %d) = %v, %v; committed %v",
				i, succ, fail, out, doneRes, committed)
		}
		totalVotes += len(votes)
	}
	// Every recorded vote cost one budget unit; discarded votes (a racing
	// quorum resolved first) also stay paid, so spent >= the ledger total
	// and equals the oracle's call count exactly (no calls errored).
	var calls int
	counterMu.Lock()
	// Sum the per-instance ordinals: each oracle call bumped exactly one.
	for _, in := range ins {
		k, _ := ordinals.Get(in)
		calls += int(k)
	}
	counterMu.Unlock()
	if spent := ex.Spent(); spent != calls || spent < totalVotes {
		t.Fatalf("Spent = %d, oracle calls = %d, recorded votes = %d", spent, calls, totalVotes)
	}
}
