package exec

import (
	"context"
	"sync"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/provenance"
)

func durableSpace() *pipeline.Space {
	return pipeline.MustSpace(
		pipeline.Parameter{Name: "x", Kind: pipeline.Ordinal,
			Domain: []pipeline.Value{pipeline.Ord(1), pipeline.Ord(2), pipeline.Ord(3)}},
		pipeline.Parameter{Name: "mode", Kind: pipeline.Categorical,
			Domain: []pipeline.Value{pipeline.Cat("fast"), pipeline.Cat("safe")}},
	)
}

// callCounter counts oracle invocations per instance across executor
// lifetimes (keys are canonical, so they survive space reconstruction).
type callCounter struct {
	mu    sync.Mutex
	calls map[string]int
}

func (c *callCounter) oracle() Oracle {
	return OracleFunc(func(_ context.Context, in pipeline.Instance) (pipeline.Outcome, error) {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.calls[in.Key()]++
		if x, _ := in.ByName("x"); x.Num() == 3 {
			return pipeline.Fail, nil
		}
		return pipeline.Succeed, nil
	})
}

func (c *callCounter) max() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := 0
	for _, n := range c.calls {
		if n > m {
			m = n
		}
	}
	return m
}

// TestNewDurableResume evaluates a set of instances, drops the executor,
// and builds a second durable executor over the same state dir: every
// evaluation must be served from the replayed log, with zero repeated
// oracle calls and zero budget spent.
func TestNewDurableResume(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	counter := &callCounter{calls: make(map[string]int)}

	s1 := durableSpace()
	e1, err := NewDurable(counter.oracle(), s1, dir)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for _, x := range s1.Domain("x") {
		for _, m := range s1.Domain("mode") {
			in := pipeline.MustInstance(s1, x, m)
			if _, err := e1.Evaluate(ctx, in); err != nil {
				t.Fatal(err)
			}
			keys = append(keys, in.Key())
		}
	}
	if e1.Spent() != len(keys) {
		t.Fatalf("first run spent %d, want %d", e1.Spent(), len(keys))
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := durableSpace()
	e2, err := NewDurable(counter.oracle(), s2, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if e2.Store().Len() != len(keys) {
		t.Fatalf("replayed store has %d records, want %d", e2.Store().Len(), len(keys))
	}
	for _, x := range s2.Domain("x") {
		for _, m := range s2.Domain("mode") {
			out, err := e2.Evaluate(ctx, pipeline.MustInstance(s2, x, m))
			if err != nil {
				t.Fatal(err)
			}
			want := pipeline.Succeed
			if x.Num() == 3 {
				want = pipeline.Fail
			}
			if out != want {
				t.Fatalf("resumed Evaluate(%v, %v) = %v, want %v", x, m, out, want)
			}
		}
	}
	if e2.Spent() != 0 {
		t.Fatalf("resumed run spent %d executions, want 0", e2.Spent())
	}
	if got := counter.max(); got != 1 {
		t.Fatalf("an instance reached the oracle %d times, want at most once", got)
	}
}

// TestNewDurableCheckpointResume compacts the log mid-session and resumes
// twice more: every previously evaluated instance must be served from the
// checkpointed provenance with zero repeated oracle calls, and instances
// evaluated after the checkpoint must survive via the WAL suffix.
func TestNewDurableCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	counter := &callCounter{calls: make(map[string]int)}

	s1 := durableSpace()
	e1, err := NewDurable(counter.oracle(), s1, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.Checkpoint(); err != nil {
		t.Fatal(err) // empty-log checkpoint must be a clean no-op
	}
	var all []pipeline.Instance
	for _, x := range s1.Domain("x") {
		for _, m := range s1.Domain("mode") {
			all = append(all, pipeline.MustInstance(s1, x, m))
		}
	}
	half := len(all) / 2
	for _, in := range all[:half] {
		if _, err := e1.Evaluate(ctx, in); err != nil {
			t.Fatal(err)
		}
	}
	if err := e1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The suffix: evaluations landing after the checkpoint.
	for _, in := range all[half:] {
		if _, err := e1.Evaluate(ctx, in); err != nil {
			t.Fatal(err)
		}
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 2; round++ {
		s2 := durableSpace()
		e2, err := NewDurable(counter.oracle(), s2, dir)
		if err != nil {
			t.Fatal(err)
		}
		if e2.Store().Len() != len(all) {
			t.Fatalf("round %d: store has %d records, want %d", round, e2.Store().Len(), len(all))
		}
		for _, x := range s2.Domain("x") {
			for _, m := range s2.Domain("mode") {
				if _, err := e2.Evaluate(ctx, pipeline.MustInstance(s2, x, m)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if e2.Spent() != 0 {
			t.Fatalf("round %d: resumed run spent %d executions, want 0", round, e2.Spent())
		}
		if round == 0 {
			// Compact again on resume so the second round loads a
			// checkpoint that itself came from checkpoint + suffix.
			if err := e2.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		if err := e2.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if got := counter.max(); got != 1 {
		t.Fatalf("an instance reached the oracle %d times, want at most once", got)
	}
	if got := e1.Store(); got != nil && got.Len() != len(all) {
		t.Fatalf("store drifted to %d records", got.Len())
	}
}

// TestCheckpointNonDurable verifies executors without a log refuse to
// checkpoint instead of silently doing nothing.
func TestCheckpointNonDurable(t *testing.T) {
	s := durableSpace()
	counter := &callCounter{calls: make(map[string]int)}
	e := New(counter.oracle(), provenance.NewStore(s))
	if err := e.Checkpoint(); err == nil {
		t.Fatal("Checkpoint on a non-durable executor succeeded")
	}
}
