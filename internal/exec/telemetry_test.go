package exec

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/provenance"
	"repro/internal/telemetry"
)

func TestTelemetryCounters(t *testing.T) {
	s := testSpace(t)
	reg := telemetry.NewRegistry()
	var buf bytes.Buffer
	tel := NewTelemetry(reg, telemetry.NewJournal(&buf), 2)
	ex := New(OracleFunc(failIfA1), provenance.NewStore(s),
		WithWorkers(2), WithBudget(10), WithTelemetry(tel))
	ctx := context.Background()

	in1 := pipeline.MustInstance(s, pipeline.Ord(1), pipeline.Ord(1))
	in2 := pipeline.MustInstance(s, pipeline.Ord(2), pipeline.Ord(2))

	if _, err := ex.Evaluate(ctx, in1); err != nil { // miss + trial
		t.Fatal(err)
	}
	if _, err := ex.Evaluate(ctx, in1); err != nil { // hit
		t.Fatal(err)
	}
	// Batch: in1 memoized, in2 new, in2 again is an intra-set dup.
	res := ex.EvaluateBatch(ctx, []pipeline.Instance{in1, in2, in2})
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("batch result %d: %v", i, r.Err)
		}
	}

	snap := reg.Snapshot()
	if got := snap.Counters["exec_memo_hits"]; got != 2 {
		t.Errorf("memo hits = %d, want 2", got)
	}
	if got := snap.Counters["exec_memo_misses"]; got != 2 {
		t.Errorf("memo misses = %d, want 2", got)
	}
	if got := snap.Counters["exec_dedup_drops"]; got != 1 {
		t.Errorf("dedup drops = %d, want 1", got)
	}
	if got := snap.Counters["exec_oracle_trials"]; got != 2 {
		t.Errorf("oracle trials = %d, want 2", got)
	}
	if got := snap.Gauges["exec_budget_spent"]; got != 2 {
		t.Errorf("budget spent = %d, want 2", got)
	}
	if got := snap.Gauges["exec_budget_remaining"]; got != 8 {
		t.Errorf("budget remaining = %d, want 8", got)
	}
	h := snap.Histograms["exec_oracle_latency_ns"]
	if h.Count != snap.Counters["exec_oracle_trials"] {
		t.Errorf("latency histogram count %d != trial counter %d", h.Count, snap.Counters["exec_oracle_trials"])
	}

	// Journal: one trial_start/trial_end pair per oracle run, one
	// batch_dispatch per set.
	counts := map[string]int{}
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("journal line not JSON: %v: %q", err, sc.Text())
		}
		counts[m["ev"].(string)]++
	}
	if counts["trial_start"] != 2 || counts["trial_end"] != 2 {
		t.Errorf("journal trials = %v, want 2 starts + 2 ends", counts)
	}
	if counts["batch_dispatch"] != 1 {
		t.Errorf("journal batch_dispatch = %d, want 1", counts["batch_dispatch"])
	}
}

func TestTelemetryUnboundedBudgetGauge(t *testing.T) {
	s := testSpace(t)
	reg := telemetry.NewRegistry()
	ex := New(OracleFunc(failIfA1), provenance.NewStore(s),
		WithTelemetry(NewTelemetry(reg, nil, 1)))
	in := pipeline.MustInstance(s, pipeline.Ord(3), pipeline.Ord(3))
	if _, err := ex.Evaluate(context.Background(), in); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Gauges["exec_budget_remaining"]; got != -1 {
		t.Errorf("unbounded budget gauge = %d, want -1 sentinel", got)
	}
	if got := snap.Gauges["exec_budget_spent"]; got != 1 {
		t.Errorf("budget spent = %d, want 1", got)
	}
}

func TestNewTelemetryNilNil(t *testing.T) {
	if NewTelemetry(nil, nil, 4) != nil {
		t.Fatal("NewTelemetry(nil, nil) should return nil (uninstrumented)")
	}
	var tel *Telemetry
	tel.Decision()
	tel.TreeRegrow()
	tel.budget(1, 2, true)
	tel.batchDispatch(1, 1, 0, false)
}

// TestMemoizedNilTelemetryAllocFree pins the acceptance criterion that the
// uninstrumented memoized-lookup path stays allocation-free.
func TestMemoizedNilTelemetryAllocFree(t *testing.T) {
	s := testSpace(t)
	ex := New(OracleFunc(failIfA1), provenance.NewStore(s))
	ctx := context.Background()
	in := pipeline.MustInstance(s, pipeline.Ord(2), pipeline.Ord(1))
	if _, err := ex.Evaluate(ctx, in); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := ex.Evaluate(ctx, in); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("memoized Evaluate (no telemetry) allocated %v/op", n)
	}
}

// TestMemoizedWithTelemetryAllocFree pins the instrumented memoized path:
// the counter increment is one atomic add, no allocation.
func TestMemoizedWithTelemetryAllocFree(t *testing.T) {
	s := testSpace(t)
	reg := telemetry.NewRegistry()
	ex := New(OracleFunc(failIfA1), provenance.NewStore(s),
		WithTelemetry(NewTelemetry(reg, nil, 1)))
	ctx := context.Background()
	in := pipeline.MustInstance(s, pipeline.Ord(2), pipeline.Ord(1))
	if _, err := ex.Evaluate(ctx, in); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := ex.Evaluate(ctx, in); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("memoized Evaluate (telemetry on) allocated %v/op", n)
	}
}
