// Package exec is BugDoc's execution engine: it runs pipeline instances
// through a black-box Oracle, memoizes results in a provenance store,
// enforces an execution budget (the paper's cost measure is the number of
// *new* instances executed), and dispatches independent instances across a
// pool of workers (Section 4.3, "each pipeline instance is independent;
// hence different instances can be run in parallel").
//
// Executors come in two flavors: New builds a volatile one over an
// existing store, and NewDurable write-ahead logs every oracle result
// under a state directory (internal/provlog) so a killed run resumes with
// zero repeated oracle calls. Durable executors also support Checkpoint,
// which compacts the log so resume cost stays bounded by the live history
// (see docs/ARCHITECTURE.md for how the layers fit together).
//
// EvaluateAll and EvaluateBatch dispatch whole hypothesis sets: both
// dedupe against memoized history and claim budget deterministically in
// input order; EvaluateBatch additionally commits every result through
// one provenance batch append, so a durable round costs one commit window
// (one fsync) instead of one per record.
package exec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/pipeline"
	"repro/internal/provenance"
	"repro/internal/provlog"
	"repro/internal/telemetry"
)

// Oracle runs one pipeline instance and evaluates its result (the
// composition of executing CP_i and applying the evaluation procedure E of
// Definition 2). Implementations must be safe for concurrent use.
type Oracle interface {
	Run(ctx context.Context, in pipeline.Instance) (pipeline.Outcome, error)
}

// OracleFunc adapts a function to the Oracle interface.
type OracleFunc func(ctx context.Context, in pipeline.Instance) (pipeline.Outcome, error)

// Run implements Oracle.
func (f OracleFunc) Run(ctx context.Context, in pipeline.Instance) (pipeline.Outcome, error) {
	return f(ctx, in)
}

// ErrBudgetExhausted is returned when evaluating an instance would exceed
// the executor's budget of new executions.
var ErrBudgetExhausted = errors.New("exec: instance budget exhausted")

// ErrUnknownInstance is returned by replay-only oracles (historical logs)
// for instances that were never recorded; algorithms treat it as "this
// hypothesis cannot be tested" and move on, matching the paper's DBSherlock
// methodology ("an early stop when the pipeline instance to be tested was
// not present").
var ErrUnknownInstance = errors.New("exec: instance not present in historical data")

// Option configures an Executor.
type Option func(*Executor)

// WithBudget caps the number of new instance executions; n < 0 means
// unlimited. Instances already in the provenance store are free.
func WithBudget(n int) Option {
	return func(e *Executor) { e.budget = n }
}

// WithWorkers sets the size of the parallel dispatch pool (minimum 1).
func WithWorkers(n int) Option {
	return func(e *Executor) {
		if n < 1 {
			n = 1
		}
		e.workers = n
	}
}

// WithLogOptions forwards options to the durability log that NewDurable
// opens (segment size, fsync, group-commit sync policy). Executors built
// by New have no log and ignore them.
func WithLogOptions(opts ...provlog.Option) Option {
	return func(e *Executor) { e.logOpts = append(e.logOpts, opts...) }
}

// WithStoreShards shards the provenance store NewDurable rebuilds across n
// hash-range shards (see provenance.NewStoreSharded), so high worker
// counts contend per hash range instead of on one store lock. It only
// shapes the store NewDurable creates; executors built by New adopt the
// caller's store as-is and ignore it.
func WithStoreShards(n int) Option {
	return func(e *Executor) { e.storeShards = n }
}

// WithOpenParallelism sets how many goroutines NewDurable's log open uses
// to decode a checkpoint (see provlog.WithOpenParallelism). The default is
// GOMAXPROCS; 1 forces the sequential load. Executors built by New have no
// log and ignore it.
func WithOpenParallelism(n int) Option {
	return func(e *Executor) { e.openParallel = n }
}

// WithMergePolicy sets the checkpoint tier-compaction policy of the
// durability log NewDurable opens (see provlog.MergePolicy): how many
// LSM-style checkpoint tiers may accumulate and how steeply their sizes
// must grow before adjacent tiers merge. Zero fields take the provlog
// defaults. Executors built by New have no log and ignore it.
func WithMergePolicy(p provlog.MergePolicy) Option {
	return func(e *Executor) { e.logOpts = append(e.logOpts, provlog.WithMergePolicy(p)) }
}

// FlakyPolicy configures quorum outcome resolution for non-deterministic
// oracles (see pipeline.FlakyPolicy): how many trials to dispatch per
// instance and how many agreeing votes resolve it. The zero value keeps
// the deterministic single-trial path.
type FlakyPolicy = pipeline.FlakyPolicy

// WithFlakyPolicy makes the executor treat the oracle as non-deterministic:
// every un-memoized instance is re-dispatched until the policy's quorum
// resolves (majority vote; an exact tie at the trial cap records
// pipeline.OutcomeInconclusive). Each trial consumes one budget unit and is
// write-ahead logged individually on durable executors, so a killed run
// resumes mid-quorum with its accumulated votes. A disabled policy
// (MaxTrials <= 1, including the zero value) is the deterministic fast
// path: the executor behaves byte-for-byte as without the option.
func WithFlakyPolicy(p FlakyPolicy) Option {
	return func(e *Executor) { e.flaky = p }
}

// Executor mediates every instance execution for the debugging algorithms.
// It is safe for concurrent use.
type Executor struct {
	oracle       Oracle
	store        *provenance.Store
	workers      int
	log          *provlog.Log     // non-nil for durable executors (NewDurable)
	logOpts      []provlog.Option // collected by WithLogOptions for NewDurable
	storeShards  int              // hash-range shards of the store NewDurable rebuilds
	openParallel int              // checkpoint-decode goroutines for NewDurable's open
	tel          *Telemetry       // nil when uninstrumented (the fast path)
	flaky        FlakyPolicy      // quorum policy; zero value = deterministic path

	mu     sync.Mutex
	budget int // remaining new executions; negative = unlimited
	spent  int
}

// New builds an executor over the oracle and provenance store. The store
// may be pre-populated with the previously-run instances G = CP_1..CP_k;
// those evaluations are served from provenance without consuming budget.
func New(oracle Oracle, store *provenance.Store, opts ...Option) *Executor {
	e := &Executor{oracle: oracle, store: store, workers: 1, budget: -1}
	for _, o := range opts {
		o(e)
	}
	if e.flaky.Enabled() {
		if err := e.flaky.Validate(); err != nil {
			panic(fmt.Sprintf("exec: %v", err))
		}
		// The vote ledger lives in the store so its bitset algebra and
		// memoization see only resolved outcomes; the policy must be
		// attached before the first ClaimTrial. For durable executors the
		// log has already replayed any partial quorums into the ledger.
		store.SetTrialPolicy(e.flaky)
	}
	if e.tel != nil {
		// Extend the instrumentation down into the store: per-shard record
		// gauges, epoch refresh/staleness, index-build timing. The executor
		// owns the evaluation session, so attaching here keeps one
		// WithTelemetry option the single switch for the whole stack.
		store.SetMetrics(provenance.NewMetrics(e.tel.reg, e.tel.journal, store.Shards()))
	}
	return e
}

// NewDurable builds an executor whose provenance is write-ahead logged
// under dir: every oracle result is on disk before it is queryable, and
// reopening the same dir replays the log into the store, so instances
// evaluated by an earlier (even killed) process are served from provenance
// without consuming budget or touching the oracle. The space must be
// constructed from the same declaration every run; the log's fingerprint
// check enforces this. Callers must Close the executor to seal the log.
func NewDurable(oracle Oracle, space *pipeline.Space, dir string, opts ...Option) (*Executor, error) {
	// Collect the log options before the log exists.
	cfg := &Executor{}
	for _, o := range opts {
		o(cfg)
	}
	if cfg.flaky.Enabled() {
		if err := cfg.flaky.Validate(); err != nil {
			return nil, fmt.Errorf("exec: %w", err)
		}
	}
	if cfg.storeShards > 1 {
		cfg.logOpts = append(cfg.logOpts, provlog.WithStoreShards(cfg.storeShards))
	}
	if cfg.openParallel != 0 {
		cfg.logOpts = append(cfg.logOpts, provlog.WithOpenParallelism(cfg.openParallel))
	}
	if cfg.tel != nil {
		cfg.logOpts = append(cfg.logOpts, provlog.WithMetrics(provlog.NewMetrics(cfg.tel.reg, cfg.tel.journal)))
	}
	l, st, err := provlog.Open(dir, space, cfg.logOpts...)
	if err != nil {
		return nil, fmt.Errorf("exec: durability: %w", err)
	}
	e := New(oracle, st, opts...)
	e.log = l
	return e, nil
}

// Close seals the durability log, if any. Further executions fail rather
// than run unlogged; executors built by New have nothing to close.
func (e *Executor) Close() error {
	if e.log == nil {
		return nil
	}
	return e.log.Close()
}

// Checkpoint folds the durability log's sealed history into a checkpoint
// and garbage-collects the segments it supersedes, so reopening the state
// directory loads the checkpoint instead of replaying the whole WAL (see
// provlog.Log.Checkpoint). The executor stays live: evaluations continue
// while the compaction runs. It fails for executors built by New, which
// have no log. For periodic compaction, thread
// provlog.WithCompactPolicy through WithLogOptions instead.
func (e *Executor) Checkpoint() error {
	if e.log == nil {
		return fmt.Errorf("exec: executor has no durability log to checkpoint")
	}
	return e.log.Checkpoint()
}

// Store returns the provenance store backing the executor.
func (e *Executor) Store() *provenance.Store { return e.store }

// Spent returns the number of new instance executions so far.
func (e *Executor) Spent() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.spent
}

// Remaining returns the remaining budget and whether it is bounded.
func (e *Executor) Remaining() (int, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.budget < 0 {
		return 0, false
	}
	return e.budget, true
}

// reserve atomically claims budget for one new execution.
func (e *Executor) reserve() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.budget == 0 {
		return ErrBudgetExhausted
	}
	if e.budget > 0 {
		e.budget--
	}
	e.spent++
	e.tel.budget(e.spent, e.budget, e.budget >= 0)
	return nil
}

// release returns one reserved unit (the oracle failed, nothing recorded).
func (e *Executor) release() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.budget >= 0 {
		e.budget++
	}
	e.spent--
	e.tel.budget(e.spent, e.budget, e.budget >= 0)
}

// Evaluate returns the outcome of one instance: from provenance when
// already known, otherwise by running the oracle (consuming budget) and
// recording the result. Evaluation is deterministic per Definition 2, so
// memoization is sound.
//
//bugdoc:hotpath
func (e *Executor) Evaluate(ctx context.Context, in pipeline.Instance) (pipeline.Outcome, error) {
	if out, ok := e.store.Lookup(in); ok {
		if t := e.tel; t != nil {
			t.memoHits.Inc()
		}
		return out, nil
	}
	if t := e.tel; t != nil {
		t.memoMisses.Inc()
	}
	if err := ctx.Err(); err != nil {
		return pipeline.OutcomeUnknown, err
	}
	if err := e.reserve(); err != nil {
		return pipeline.OutcomeUnknown, err
	}
	if e.flaky.Enabled() {
		return e.evaluateFlaky(ctx, in, 0)
	}
	out, err := e.runReserved(ctx, in, 0)
	if err != nil {
		return pipeline.OutcomeUnknown, err
	}
	return e.commitOne(in, out)
}

// evaluateFlaky resolves one instance under the flaky policy: it claims
// trial slots from the store's vote ledger, runs the oracle once per
// granted slot, and records each verdict as a durable vote until the
// quorum resolves; the resolved outcome is then committed as the
// instance's single provenance record. Entered holding one budget
// reservation (for the first trial); each further trial reserves its own
// unit, and every recorded vote consumes its reservation permanently —
// including votes the ledger discards because a concurrent quorum
// resolved first (wasted parallel work, like commitOne's duplicate case).
// When every slot is claimed by other goroutines the caller parks on the
// ledger's wait channel rather than over-dispatching past MaxTrials.
func (e *Executor) evaluateFlaky(ctx context.Context, in pipeline.Instance, lane int) (pipeline.Outcome, error) {
	held := true // one reservation claimed by the caller
	for {
		if out, ok := e.store.Lookup(in); ok {
			if held {
				e.release()
			}
			if t := e.tel; t != nil {
				t.memoHits.Inc()
			}
			return out, nil
		}
		claim := e.store.ClaimTrial(in)
		if claim.Resolved {
			if held {
				e.release()
			}
			return e.finishQuorum(in, claim.Outcome)
		}
		if !claim.Granted {
			// MaxTrials dispatches are already in flight; their votes will
			// resolve the instance or free a slot.
			select {
			case <-ctx.Done():
				if held {
					e.release()
				}
				return pipeline.OutcomeUnknown, ctx.Err()
			case <-claim.Wait:
			}
			continue
		}
		if !held {
			if err := e.reserve(); err != nil {
				e.store.ReleaseTrial(in)
				return pipeline.OutcomeUnknown, err
			}
			held = true
		}
		if err := ctx.Err(); err != nil {
			e.store.ReleaseTrial(in)
			e.release()
			return pipeline.OutcomeUnknown, err
		}
		out, err := e.runOracle(ctx, in, lane)
		if err != nil {
			e.store.ReleaseTrial(in)
			e.release()
			return pipeline.OutcomeUnknown, err
		}
		res, err := e.store.AddTrial(in, out, "executor")
		if err != nil {
			e.store.ReleaseTrial(in)
			e.release()
			return pipeline.OutcomeUnknown, err
		}
		held = false // vote recorded (or discarded post-resolution): unit spent
		if res.Resolved {
			return e.finishQuorum(in, res.Outcome)
		}
	}
}

// finishQuorum publishes a resolved flaky outcome as the instance's
// provenance record. Concurrent resolvers race to Add; exactly one wins
// and the rest adopt its record — identical by the vote-refusal
// invariant (the ledger stops accepting votes once resolution holds, so
// every resolver computes the same outcome). The winner observes the
// instance's trial count in the telemetry histogram, counting each
// quorum once.
func (e *Executor) finishQuorum(in pipeline.Instance, out pipeline.Outcome) (pipeline.Outcome, error) {
	if err := e.store.Add(in, out, "executor"); err != nil {
		if prev, ok := e.store.Lookup(in); ok {
			return prev, nil
		}
		return pipeline.OutcomeUnknown, err
	}
	if t := e.tel; t != nil {
		t.quorum(in, out, e.store.TrialCount(in))
	}
	return out, nil
}

// runReserved runs the oracle for an instance whose budget is already
// reserved, refunding the reservation on failure — or when the instance
// turned out to be memoized between the claim and the run (a concurrent
// evaluation won; nothing was executed). lane is a telemetry stripe hint
// (the worker index) for the oracle-latency histogram.
func (e *Executor) runReserved(ctx context.Context, in pipeline.Instance, lane int) (pipeline.Outcome, error) {
	if out, ok := e.store.Lookup(in); ok {
		e.release()
		if t := e.tel; t != nil {
			t.memoHits.Inc()
		}
		return out, nil
	}
	out, err := e.runOracle(ctx, in, lane)
	if err != nil {
		e.release()
		return pipeline.OutcomeUnknown, err
	}
	return out, nil
}

// runOracle invokes the oracle once and validates its verdict, wrapping
// the call in trial telemetry. It does not touch budget or memoization —
// callers own the reservation lifecycle.
func (e *Executor) runOracle(ctx context.Context, in pipeline.Instance, lane int) (pipeline.Outcome, error) {
	t := e.tel
	var start time.Time
	if t != nil {
		start = t.trialStart(in)
	}
	out, err := e.oracle.Run(ctx, in)
	if err == nil && out != pipeline.Succeed && out != pipeline.Fail {
		err = fmt.Errorf("exec: oracle returned %v for %v", out, in)
	} else if err != nil {
		err = fmt.Errorf("exec: run %v: %w", in, err)
	}
	if t != nil {
		t.trialEnd(lane, in, out, err, start)
	}
	return out, err
}

// commitOne records one oracle result in provenance.
func (e *Executor) commitOne(in pipeline.Instance, out pipeline.Outcome) (pipeline.Outcome, error) {
	if err := e.store.Add(in, out, "executor"); err != nil {
		// A concurrent evaluation of the same instance won the race; its
		// result is authoritative and our duplicate execution was wasted
		// budget (the paper accepts this: parallelism "may lead to the
		// execution of pipelines that are ultimately unnecessary").
		if prev, ok := e.store.Lookup(in); ok {
			return prev, nil
		}
		e.release()
		return pipeline.OutcomeUnknown, err
	}
	return out, nil
}

// Result pairs an instance with its evaluation or error from EvaluateAll
// and EvaluateBatch.
type Result struct {
	Instance pipeline.Instance
	Outcome  pipeline.Outcome
	Err      error
}

// EvaluateAll evaluates the instances concurrently on the worker pool and
// returns results in input order, committing each result to provenance as
// it lands (use EvaluateBatch to amortize commits instead). Individual
// failures (budget exhaustion, unknown historical instances, oracle
// errors) are reported per-result so callers can use partial information.
//
// Partial results under budget exhaustion are deterministic: memoized
// instances are free, and the remaining budget is claimed in input order
// before any dispatch, so with budget for k new executions exactly the
// first k distinct un-memoized instances run and every later one reports
// ErrBudgetExhausted — regardless of worker scheduling. Budget refunded by
// a failing run funds later calls, not later instances of this set. A
// duplicate of an earlier instance in the set reports that instance's
// result instead of being dispatched twice.
func (e *Executor) EvaluateAll(ctx context.Context, ins []pipeline.Instance) []Result {
	return e.evaluateSet(ctx, ins, false)
}

// EvaluateBatch evaluates a hypothesis set as one batch: it dedupes the
// set against memoized history (and against itself) up front, claims
// budget in input order per the EvaluateAll contract, dispatches the
// misses across the worker pool, and commits all results through a single
// provenance.Store.AddBatch — one store write-lock acquisition and one
// multi-record sink append, so a durable executor pays one commit window
// (one fsync) per round instead of one per record.
//
// The tradeoff against EvaluateAll is commit granularity: results become
// queryable (and durable) together at the end of the batch, so a crash
// mid-batch re-executes the whole round, while EvaluateAll persists each
// instance as it completes.
func (e *Executor) EvaluateBatch(ctx context.Context, ins []pipeline.Instance) []Result {
	return e.evaluateSet(ctx, ins, true)
}

// evaluateSet implements EvaluateAll (batch=false: per-instance commits)
// and EvaluateBatch (batch=true: one AddBatch at the end).
func (e *Executor) evaluateSet(ctx context.Context, ins []pipeline.Instance, batch bool) []Result {
	results := make([]Result, len(ins))
	run, dupOf := e.planSet(ctx, ins, results)
	e.tel.batchDispatch(len(ins), len(run), len(dupOf), batch)

	if len(run) > 0 {
		jobs := make(chan int)
		var wg sync.WaitGroup
		workers := e.workers
		if workers > len(run) {
			workers = len(run)
		}
		var queue *telemetry.Gauge
		if e.tel != nil {
			queue = e.tel.queueDepth
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(lane int) {
				defer wg.Done()
				for i := range jobs {
					queue.Add(-1)
					var out pipeline.Outcome
					var err error
					if e.flaky.Enabled() {
						// Quorum resolution commits per instance: votes from
						// concurrent workers already share group-commit fsync
						// windows, so batching the final records would only
						// delay resolution visibility.
						out, err = e.evaluateFlaky(ctx, ins[i], lane)
					} else {
						out, err = e.runReserved(ctx, ins[i], lane)
						if err == nil && !batch {
							out, err = e.commitOne(ins[i], out)
						}
					}
					results[i].Outcome, results[i].Err = out, err
				}
			}(w)
		}
		for _, i := range run {
			queue.Add(1)
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}

	if batch && !e.flaky.Enabled() {
		e.commitBatch(ins, run, results)
	}
	for i, j := range dupOf {
		results[i].Outcome, results[i].Err = results[j].Outcome, results[j].Err
	}
	return results
}

// planSet resolves memoized hits and intra-set duplicates and claims
// budget for the misses in input order. It fills results for everything it
// resolves and returns the indices to dispatch plus the duplicate mapping.
func (e *Executor) planSet(ctx context.Context, ins []pipeline.Instance, results []Result) (run []int, dupOf map[int]int) {
	t := e.tel
	firstAt := pipeline.NewInstanceMap[int32](len(ins))
	for i, in := range ins {
		results[i].Instance = in
		if out, ok := e.store.Lookup(in); ok {
			if t != nil {
				t.memoHits.Inc()
			}
			results[i].Outcome = out
			continue
		}
		if j, seen := firstAt.Get(in); seen {
			if t != nil {
				t.dedupDrops.Inc()
			}
			if dupOf == nil {
				dupOf = make(map[int]int)
			}
			dupOf[i] = int(j)
			continue
		}
		if t != nil {
			t.memoMisses.Inc()
		}
		if err := ctx.Err(); err != nil {
			results[i].Outcome, results[i].Err = pipeline.OutcomeUnknown, err
			continue
		}
		if err := e.reserve(); err != nil {
			results[i].Outcome, results[i].Err = pipeline.OutcomeUnknown, err
			continue
		}
		firstAt.Put(in, int32(i))
		run = append(run, i)
	}
	return run, dupOf
}

// commitBatch records every successful oracle run of the round through one
// AddBatch. Entries the store skipped as duplicates (a concurrent
// evaluation won the race) keep their results — the recorded outcome is
// identical by determinism. If the batch commit fails, results whose
// record did not reach the store report the error and their budget is
// refunded: an unrecorded execution must not be treated as provenance.
func (e *Executor) commitBatch(ins []pipeline.Instance, run []int, results []Result) {
	entries := make([]provenance.Entry, 0, len(run))
	idxs := make([]int, 0, len(run))
	for _, i := range run {
		if results[i].Err == nil {
			entries = append(entries, provenance.Entry{
				Instance: ins[i], Outcome: results[i].Outcome, Source: "executor",
			})
			idxs = append(idxs, i)
		}
	}
	if len(entries) == 0 {
		return
	}
	if _, err := e.store.AddBatch(entries); err != nil {
		for _, i := range idxs {
			if _, ok := e.store.Lookup(ins[i]); !ok {
				results[i].Outcome = pipeline.OutcomeUnknown
				results[i].Err = err
				e.release()
			}
		}
	}
}

// LatencyOracle wraps an oracle with a fixed per-run latency, simulating
// expensive pipeline executions (the paper's real pipelines take 20 minutes
// to 10 hours per instance); it drives the parallel scalability experiment.
func LatencyOracle(o Oracle, d time.Duration) Oracle {
	return OracleFunc(func(ctx context.Context, in pipeline.Instance) (pipeline.Outcome, error) {
		select {
		case <-ctx.Done():
			return pipeline.OutcomeUnknown, ctx.Err()
		case <-time.After(d):
		}
		return o.Run(ctx, in)
	})
}

// HistoricalOracle replays a fixed instance→outcome mapping and returns
// ErrUnknownInstance for anything else. It models datasets where new
// pipeline instances cannot be executed (DBSherlock logs, Section 5.3).
// Replay lookups probe the instances' precomputed hashes and compare
// interned code vectors, so they allocate nothing.
type HistoricalOracle struct {
	outcomes *pipeline.InstanceMap[pipeline.Outcome]
}

// NewHistoricalOracle builds a replay oracle from instances and outcomes.
// A repeated instance overwrites its earlier outcome (last wins).
func NewHistoricalOracle(ins []pipeline.Instance, outs []pipeline.Outcome) (*HistoricalOracle, error) {
	if len(ins) != len(outs) {
		return nil, fmt.Errorf("exec: %d instances but %d outcomes", len(ins), len(outs))
	}
	m := pipeline.NewInstanceMap[pipeline.Outcome](len(ins))
	for i, in := range ins {
		m.Put(in, outs[i])
	}
	return &HistoricalOracle{outcomes: m}, nil
}

// Run implements Oracle.
func (h *HistoricalOracle) Run(_ context.Context, in pipeline.Instance) (pipeline.Outcome, error) {
	out, ok := h.outcomes.Get(in)
	if !ok {
		return pipeline.OutcomeUnknown, ErrUnknownInstance
	}
	return out, nil
}

// Len returns the number of replayable instances.
func (h *HistoricalOracle) Len() int { return h.outcomes.Len() }
