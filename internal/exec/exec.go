// Package exec is BugDoc's execution engine: it runs pipeline instances
// through a black-box Oracle, memoizes results in a provenance store,
// enforces an execution budget (the paper's cost measure is the number of
// *new* instances executed), and dispatches independent instances across a
// pool of workers (Section 4.3, "each pipeline instance is independent;
// hence different instances can be run in parallel").
package exec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/pipeline"
	"repro/internal/provenance"
	"repro/internal/provlog"
)

// Oracle runs one pipeline instance and evaluates its result (the
// composition of executing CP_i and applying the evaluation procedure E of
// Definition 2). Implementations must be safe for concurrent use.
type Oracle interface {
	Run(ctx context.Context, in pipeline.Instance) (pipeline.Outcome, error)
}

// OracleFunc adapts a function to the Oracle interface.
type OracleFunc func(ctx context.Context, in pipeline.Instance) (pipeline.Outcome, error)

// Run implements Oracle.
func (f OracleFunc) Run(ctx context.Context, in pipeline.Instance) (pipeline.Outcome, error) {
	return f(ctx, in)
}

// ErrBudgetExhausted is returned when evaluating an instance would exceed
// the executor's budget of new executions.
var ErrBudgetExhausted = errors.New("exec: instance budget exhausted")

// ErrUnknownInstance is returned by replay-only oracles (historical logs)
// for instances that were never recorded; algorithms treat it as "this
// hypothesis cannot be tested" and move on, matching the paper's DBSherlock
// methodology ("an early stop when the pipeline instance to be tested was
// not present").
var ErrUnknownInstance = errors.New("exec: instance not present in historical data")

// Option configures an Executor.
type Option func(*Executor)

// WithBudget caps the number of new instance executions; n < 0 means
// unlimited. Instances already in the provenance store are free.
func WithBudget(n int) Option {
	return func(e *Executor) { e.budget = n }
}

// WithWorkers sets the size of the parallel dispatch pool (minimum 1).
func WithWorkers(n int) Option {
	return func(e *Executor) {
		if n < 1 {
			n = 1
		}
		e.workers = n
	}
}

// Executor mediates every instance execution for the debugging algorithms.
// It is safe for concurrent use.
type Executor struct {
	oracle  Oracle
	store   *provenance.Store
	workers int
	log     *provlog.Log // non-nil for durable executors (NewDurable)

	mu     sync.Mutex
	budget int // remaining new executions; negative = unlimited
	spent  int
}

// New builds an executor over the oracle and provenance store. The store
// may be pre-populated with the previously-run instances G = CP_1..CP_k;
// those evaluations are served from provenance without consuming budget.
func New(oracle Oracle, store *provenance.Store, opts ...Option) *Executor {
	e := &Executor{oracle: oracle, store: store, workers: 1, budget: -1}
	for _, o := range opts {
		o(e)
	}
	return e
}

// NewDurable builds an executor whose provenance is write-ahead logged
// under dir: every oracle result is on disk before it is queryable, and
// reopening the same dir replays the log into the store, so instances
// evaluated by an earlier (even killed) process are served from provenance
// without consuming budget or touching the oracle. The space must be
// constructed from the same declaration every run; the log's fingerprint
// check enforces this. Callers must Close the executor to seal the log.
func NewDurable(oracle Oracle, space *pipeline.Space, dir string, opts ...Option) (*Executor, error) {
	l, st, err := provlog.Open(dir, space)
	if err != nil {
		return nil, fmt.Errorf("exec: durability: %w", err)
	}
	e := New(oracle, st, opts...)
	e.log = l
	return e, nil
}

// Close seals the durability log, if any. Further executions fail rather
// than run unlogged; executors built by New have nothing to close.
func (e *Executor) Close() error {
	if e.log == nil {
		return nil
	}
	return e.log.Close()
}

// Store returns the provenance store backing the executor.
func (e *Executor) Store() *provenance.Store { return e.store }

// Spent returns the number of new instance executions so far.
func (e *Executor) Spent() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.spent
}

// Remaining returns the remaining budget and whether it is bounded.
func (e *Executor) Remaining() (int, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.budget < 0 {
		return 0, false
	}
	return e.budget, true
}

// reserve atomically claims budget for one new execution.
func (e *Executor) reserve() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.budget == 0 {
		return ErrBudgetExhausted
	}
	if e.budget > 0 {
		e.budget--
	}
	e.spent++
	return nil
}

// release returns one reserved unit (the oracle failed, nothing recorded).
func (e *Executor) release() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.budget >= 0 {
		e.budget++
	}
	e.spent--
}

// Evaluate returns the outcome of one instance: from provenance when
// already known, otherwise by running the oracle (consuming budget) and
// recording the result. Evaluation is deterministic per Definition 2, so
// memoization is sound.
func (e *Executor) Evaluate(ctx context.Context, in pipeline.Instance) (pipeline.Outcome, error) {
	if out, ok := e.store.Lookup(in); ok {
		return out, nil
	}
	if err := ctx.Err(); err != nil {
		return pipeline.OutcomeUnknown, err
	}
	if err := e.reserve(); err != nil {
		return pipeline.OutcomeUnknown, err
	}
	out, err := e.oracle.Run(ctx, in)
	if err != nil {
		e.release()
		return pipeline.OutcomeUnknown, fmt.Errorf("exec: run %v: %w", in, err)
	}
	if out != pipeline.Succeed && out != pipeline.Fail {
		e.release()
		return pipeline.OutcomeUnknown, fmt.Errorf("exec: oracle returned %v for %v", out, in)
	}
	if err := e.store.Add(in, out, "executor"); err != nil {
		// A concurrent evaluation of the same instance won the race; its
		// result is authoritative and our duplicate execution was wasted
		// budget (the paper accepts this: parallelism "may lead to the
		// execution of pipelines that are ultimately unnecessary").
		if prev, ok := e.store.Lookup(in); ok {
			return prev, nil
		}
		e.release()
		return pipeline.OutcomeUnknown, err
	}
	return out, nil
}

// Result pairs an instance with its evaluation or error from EvaluateAll.
type Result struct {
	Instance pipeline.Instance
	Outcome  pipeline.Outcome
	Err      error
}

// EvaluateAll evaluates the instances concurrently on the worker pool and
// returns results in input order. Individual failures (budget exhaustion,
// unknown historical instances, oracle errors) are reported per-result so
// callers can use partial information, mirroring how the dispatcher keeps
// other workers busy when one instance fails.
func (e *Executor) EvaluateAll(ctx context.Context, ins []pipeline.Instance) []Result {
	results := make([]Result, len(ins))
	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := e.workers
	if workers > len(ins) {
		workers = len(ins)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out, err := e.Evaluate(ctx, ins[i])
				results[i] = Result{Instance: ins[i], Outcome: out, Err: err}
			}
		}()
	}
	for i := range ins {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// LatencyOracle wraps an oracle with a fixed per-run latency, simulating
// expensive pipeline executions (the paper's real pipelines take 20 minutes
// to 10 hours per instance); it drives the parallel scalability experiment.
func LatencyOracle(o Oracle, d time.Duration) Oracle {
	return OracleFunc(func(ctx context.Context, in pipeline.Instance) (pipeline.Outcome, error) {
		select {
		case <-ctx.Done():
			return pipeline.OutcomeUnknown, ctx.Err()
		case <-time.After(d):
		}
		return o.Run(ctx, in)
	})
}

// HistoricalOracle replays a fixed instance→outcome mapping and returns
// ErrUnknownInstance for anything else. It models datasets where new
// pipeline instances cannot be executed (DBSherlock logs, Section 5.3).
// Replay lookups probe the instances' precomputed hashes and compare
// interned code vectors, so they allocate nothing.
type HistoricalOracle struct {
	outcomes *pipeline.InstanceMap[pipeline.Outcome]
}

// NewHistoricalOracle builds a replay oracle from instances and outcomes.
// A repeated instance overwrites its earlier outcome (last wins).
func NewHistoricalOracle(ins []pipeline.Instance, outs []pipeline.Outcome) (*HistoricalOracle, error) {
	if len(ins) != len(outs) {
		return nil, fmt.Errorf("exec: %d instances but %d outcomes", len(ins), len(outs))
	}
	m := pipeline.NewInstanceMap[pipeline.Outcome](len(ins))
	for i, in := range ins {
		m.Put(in, outs[i])
	}
	return &HistoricalOracle{outcomes: m}, nil
}

// Run implements Oracle.
func (h *HistoricalOracle) Run(_ context.Context, in pipeline.Instance) (pipeline.Outcome, error) {
	out, ok := h.outcomes.Get(in)
	if !ok {
		return pipeline.OutcomeUnknown, ErrUnknownInstance
	}
	return out, nil
}

// Len returns the number of replayable instances.
func (h *HistoricalOracle) Len() int { return h.outcomes.Len() }
