package exec

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pipeline"
	"repro/internal/provenance"
)

func testSpace(t *testing.T) *pipeline.Space {
	t.Helper()
	return pipeline.MustSpace(
		pipeline.Parameter{Name: "a", Kind: pipeline.Ordinal, Domain: []pipeline.Value{
			pipeline.Ord(1), pipeline.Ord(2), pipeline.Ord(3), pipeline.Ord(4),
		}},
		pipeline.Parameter{Name: "b", Kind: pipeline.Ordinal, Domain: []pipeline.Value{
			pipeline.Ord(1), pipeline.Ord(2), pipeline.Ord(3), pipeline.Ord(4),
		}},
	)
}

// failIfA1 fails exactly when a == 1.
func failIfA1(_ context.Context, in pipeline.Instance) (pipeline.Outcome, error) {
	if v, _ := in.ByName("a"); v == pipeline.Ord(1) {
		return pipeline.Fail, nil
	}
	return pipeline.Succeed, nil
}

func TestEvaluateMemoizes(t *testing.T) {
	s := testSpace(t)
	var calls int32
	oracle := OracleFunc(func(ctx context.Context, in pipeline.Instance) (pipeline.Outcome, error) {
		atomic.AddInt32(&calls, 1)
		return failIfA1(ctx, in)
	})
	ex := New(oracle, provenance.NewStore(s))
	in := pipeline.MustInstance(s, pipeline.Ord(1), pipeline.Ord(2))
	for i := 0; i < 3; i++ {
		out, err := ex.Evaluate(context.Background(), in)
		if err != nil || out != pipeline.Fail {
			t.Fatalf("Evaluate = %v, %v", out, err)
		}
	}
	if calls != 1 {
		t.Fatalf("oracle called %d times, want 1", calls)
	}
	if ex.Spent() != 1 {
		t.Fatalf("Spent = %d, want 1", ex.Spent())
	}
}

func TestEvaluateUsesSeededProvenance(t *testing.T) {
	s := testSpace(t)
	st := provenance.NewStore(s)
	in := pipeline.MustInstance(s, pipeline.Ord(2), pipeline.Ord(2))
	if err := st.Add(in, pipeline.Succeed, "history"); err != nil {
		t.Fatal(err)
	}
	boom := OracleFunc(func(context.Context, pipeline.Instance) (pipeline.Outcome, error) {
		t.Fatal("oracle must not run for seeded instances")
		return pipeline.OutcomeUnknown, nil
	})
	ex := New(boom, st, WithBudget(0))
	out, err := ex.Evaluate(context.Background(), in)
	if err != nil || out != pipeline.Succeed {
		t.Fatalf("Evaluate = %v, %v", out, err)
	}
	if ex.Spent() != 0 {
		t.Fatalf("seeded lookup must not consume budget, spent = %d", ex.Spent())
	}
}

func TestBudgetExhaustion(t *testing.T) {
	s := testSpace(t)
	ex := New(OracleFunc(failIfA1), provenance.NewStore(s), WithBudget(2))
	ctx := context.Background()
	ins := []pipeline.Instance{
		pipeline.MustInstance(s, pipeline.Ord(1), pipeline.Ord(1)),
		pipeline.MustInstance(s, pipeline.Ord(2), pipeline.Ord(2)),
		pipeline.MustInstance(s, pipeline.Ord(3), pipeline.Ord(3)),
	}
	for i, in := range ins[:2] {
		if _, err := ex.Evaluate(ctx, in); err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
	}
	if _, err := ex.Evaluate(ctx, ins[2]); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	// Memoized instances stay free after exhaustion.
	if _, err := ex.Evaluate(ctx, ins[0]); err != nil {
		t.Fatalf("memoized after exhaustion: %v", err)
	}
	if rem, bounded := ex.Remaining(); !bounded || rem != 0 {
		t.Fatalf("Remaining = %d, %v", rem, bounded)
	}
}

func TestOracleErrorReleasesBudget(t *testing.T) {
	s := testSpace(t)
	bad := OracleFunc(func(context.Context, pipeline.Instance) (pipeline.Outcome, error) {
		return pipeline.OutcomeUnknown, errors.New("kaboom")
	})
	ex := New(bad, provenance.NewStore(s), WithBudget(1))
	in := pipeline.MustInstance(s, pipeline.Ord(1), pipeline.Ord(1))
	if _, err := ex.Evaluate(context.Background(), in); err == nil {
		t.Fatal("oracle error must propagate")
	}
	if rem, _ := ex.Remaining(); rem != 1 {
		t.Fatalf("budget must be released on oracle error, remaining = %d", rem)
	}
	if ex.Spent() != 0 {
		t.Fatalf("Spent = %d, want 0", ex.Spent())
	}
}

func TestInvalidOracleOutcome(t *testing.T) {
	s := testSpace(t)
	bad := OracleFunc(func(context.Context, pipeline.Instance) (pipeline.Outcome, error) {
		return pipeline.OutcomeUnknown, nil
	})
	ex := New(bad, provenance.NewStore(s))
	in := pipeline.MustInstance(s, pipeline.Ord(1), pipeline.Ord(1))
	if _, err := ex.Evaluate(context.Background(), in); err == nil {
		t.Fatal("unknown outcome from oracle must error")
	}
}

func TestEvaluateContextCancelled(t *testing.T) {
	s := testSpace(t)
	ex := New(OracleFunc(failIfA1), provenance.NewStore(s))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in := pipeline.MustInstance(s, pipeline.Ord(1), pipeline.Ord(1))
	if _, err := ex.Evaluate(ctx, in); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ex.Spent() != 0 {
		t.Fatal("cancelled evaluation must not consume budget")
	}
}

func TestEvaluateAllParallelAndOrdered(t *testing.T) {
	s := testSpace(t)
	var inFlight, peak int32
	oracle := OracleFunc(func(ctx context.Context, in pipeline.Instance) (pipeline.Outcome, error) {
		cur := atomic.AddInt32(&inFlight, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if cur <= p || atomic.CompareAndSwapInt32(&peak, p, cur) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		atomic.AddInt32(&inFlight, -1)
		return failIfA1(ctx, in)
	})
	ex := New(oracle, provenance.NewStore(s), WithWorkers(4))
	var ins []pipeline.Instance
	for a := 1.0; a <= 4; a++ {
		for b := 1.0; b <= 4; b++ {
			ins = append(ins, pipeline.MustInstance(s, pipeline.Ord(a), pipeline.Ord(b)))
		}
	}
	results := ex.EvaluateAll(context.Background(), ins)
	if len(results) != len(ins) {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("result %d: %v", i, r.Err)
		}
		if !r.Instance.Equal(ins[i]) {
			t.Fatalf("result %d out of order", i)
		}
		want := pipeline.Succeed
		if ins[i].Value(0) == pipeline.Ord(1) {
			want = pipeline.Fail
		}
		if r.Outcome != want {
			t.Fatalf("result %d = %v, want %v", i, r.Outcome, want)
		}
	}
	if peak < 2 {
		t.Fatalf("peak concurrency = %d, want >= 2", peak)
	}
}

func TestEvaluateAllPartialBudget(t *testing.T) {
	s := testSpace(t)
	ex := New(OracleFunc(failIfA1), provenance.NewStore(s), WithBudget(2), WithWorkers(2))
	var ins []pipeline.Instance
	for a := 1.0; a <= 4; a++ {
		ins = append(ins, pipeline.MustInstance(s, pipeline.Ord(a), pipeline.Ord(a)))
	}
	results := ex.EvaluateAll(context.Background(), ins)
	okCount, budgetErrs := 0, 0
	for _, r := range results {
		switch {
		case r.Err == nil:
			okCount++
		case errors.Is(r.Err, ErrBudgetExhausted):
			budgetErrs++
		default:
			t.Fatalf("unexpected error: %v", r.Err)
		}
	}
	if okCount != 2 || budgetErrs != 2 {
		t.Fatalf("ok = %d, budget errors = %d; want 2 and 2", okCount, budgetErrs)
	}
}

func TestHistoricalOracle(t *testing.T) {
	s := testSpace(t)
	known := pipeline.MustInstance(s, pipeline.Ord(1), pipeline.Ord(1))
	h, err := NewHistoricalOracle(
		[]pipeline.Instance{known},
		[]pipeline.Outcome{pipeline.Fail},
	)
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 1 {
		t.Fatalf("Len = %d", h.Len())
	}
	out, err := h.Run(context.Background(), known)
	if err != nil || out != pipeline.Fail {
		t.Fatalf("Run = %v, %v", out, err)
	}
	unknown := pipeline.MustInstance(s, pipeline.Ord(2), pipeline.Ord(2))
	if _, err := h.Run(context.Background(), unknown); !errors.Is(err, ErrUnknownInstance) {
		t.Fatalf("err = %v, want ErrUnknownInstance", err)
	}
	if _, err := NewHistoricalOracle([]pipeline.Instance{known}, nil); err == nil {
		t.Fatal("length mismatch must fail")
	}
	// Through the executor, the error wraps but stays identifiable.
	ex := New(h, provenance.NewStore(s))
	if _, err := ex.Evaluate(context.Background(), unknown); !errors.Is(err, ErrUnknownInstance) {
		t.Fatalf("executor err = %v, want ErrUnknownInstance", err)
	}
}

func TestLatencyOracle(t *testing.T) {
	s := testSpace(t)
	o := LatencyOracle(OracleFunc(failIfA1), 20*time.Millisecond)
	start := time.Now()
	in := pipeline.MustInstance(s, pipeline.Ord(2), pipeline.Ord(2))
	out, err := o.Run(context.Background(), in)
	if err != nil || out != pipeline.Succeed {
		t.Fatalf("Run = %v, %v", out, err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("latency not applied: %v", elapsed)
	}
	// Cancellation interrupts the sleep.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	slow := LatencyOracle(OracleFunc(failIfA1), time.Hour)
	if _, err := slow.Run(ctx, in); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestLatencySpeedupWithWorkers(t *testing.T) {
	// With 8 workers and 10ms latency, 16 instances should take far less
	// than the serial 160ms; this is the mechanism behind Figure 6.
	s := testSpace(t)
	makeIns := func() []pipeline.Instance {
		var ins []pipeline.Instance
		for a := 1.0; a <= 4; a++ {
			for b := 1.0; b <= 4; b++ {
				ins = append(ins, pipeline.MustInstance(s, pipeline.Ord(a), pipeline.Ord(b)))
			}
		}
		return ins
	}
	run := func(workers int) time.Duration {
		ex := New(LatencyOracle(OracleFunc(failIfA1), 10*time.Millisecond),
			provenance.NewStore(s), WithWorkers(workers))
		start := time.Now()
		ex.EvaluateAll(context.Background(), makeIns())
		return time.Since(start)
	}
	serial := run(1)
	parallel := run(8)
	if parallel >= serial {
		t.Fatalf("8 workers (%v) not faster than 1 worker (%v)", parallel, serial)
	}
}
