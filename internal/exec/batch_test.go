package exec

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/provenance"
	"repro/internal/provlog"
)

// TestEvaluateBatchDedupes submits a set mixing memoized hits, fresh
// instances, and intra-batch duplicates: every result must land in input
// order, the oracle must run once per distinct miss, and the whole round
// must commit.
func TestEvaluateBatchDedupes(t *testing.T) {
	s := testSpace(t)
	var calls int32
	oracle := OracleFunc(func(ctx context.Context, in pipeline.Instance) (pipeline.Outcome, error) {
		atomic.AddInt32(&calls, 1)
		return failIfA1(ctx, in)
	})
	ex := New(oracle, provenance.NewStore(s), WithWorkers(4))
	memo := pipeline.MustInstance(s, pipeline.Ord(1), pipeline.Ord(1))
	if _, err := ex.Evaluate(context.Background(), memo); err != nil {
		t.Fatal(err)
	}
	fresh1 := pipeline.MustInstance(s, pipeline.Ord(2), pipeline.Ord(2))
	fresh2 := pipeline.MustInstance(s, pipeline.Ord(1), pipeline.Ord(3))
	ins := []pipeline.Instance{memo, fresh1, fresh2, fresh1, memo}
	results := ex.EvaluateBatch(context.Background(), ins)
	if len(results) != len(ins) {
		t.Fatalf("results = %d", len(results))
	}
	wants := []pipeline.Outcome{pipeline.Fail, pipeline.Succeed, pipeline.Fail, pipeline.Succeed, pipeline.Fail}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("result %d: %v", i, r.Err)
		}
		if !r.Instance.Equal(ins[i]) {
			t.Fatalf("result %d out of order", i)
		}
		if r.Outcome != wants[i] {
			t.Fatalf("result %d = %v, want %v", i, r.Outcome, wants[i])
		}
	}
	if calls != 3 { // memo seeding + two distinct misses
		t.Fatalf("oracle called %d times, want 3", calls)
	}
	if ex.Store().Len() != 3 {
		t.Fatalf("store has %d records, want 3", ex.Store().Len())
	}
	if ex.Spent() != 3 {
		t.Fatalf("Spent = %d, want 3", ex.Spent())
	}
}

// budgetPositions runs a 4-instance set against a budget of 2 and returns
// which positions got funded.
func budgetPositions(t *testing.T, batch bool) [4]bool {
	t.Helper()
	s := testSpace(t)
	ex := New(OracleFunc(failIfA1), provenance.NewStore(s), WithBudget(2), WithWorkers(4))
	var ins []pipeline.Instance
	for a := 1.0; a <= 4; a++ {
		ins = append(ins, pipeline.MustInstance(s, pipeline.Ord(a), pipeline.Ord(a)))
	}
	var results []Result
	if batch {
		results = ex.EvaluateBatch(context.Background(), ins)
	} else {
		results = ex.EvaluateAll(context.Background(), ins)
	}
	var funded [4]bool
	for i, r := range results {
		switch {
		case r.Err == nil:
			funded[i] = true
		case errors.Is(r.Err, ErrBudgetExhausted):
		default:
			t.Fatalf("result %d: %v", i, r.Err)
		}
	}
	return funded
}

// TestEvaluateSetBudgetDeterministic asserts the documented contract:
// budget is claimed in input order, so under exhaustion exactly the first
// k un-memoized instances run — on every repetition, for both the
// per-instance and the batched dispatch path.
func TestEvaluateSetBudgetDeterministic(t *testing.T) {
	for _, batch := range []bool{false, true} {
		for rep := 0; rep < 20; rep++ {
			funded := budgetPositions(t, batch)
			if funded != [4]bool{true, true, false, false} {
				t.Fatalf("batch=%v rep %d: funded = %v, want first two only", batch, rep, funded)
			}
		}
	}
}

// TestEvaluateBatchOracleError isolates a failing run: its budget refunds,
// the other instances of the round still commit.
func TestEvaluateBatchOracleError(t *testing.T) {
	s := testSpace(t)
	bad := pipeline.MustInstance(s, pipeline.Ord(4), pipeline.Ord(4))
	oracle := OracleFunc(func(ctx context.Context, in pipeline.Instance) (pipeline.Outcome, error) {
		if in.Equal(bad) {
			return pipeline.OutcomeUnknown, fmt.Errorf("boom")
		}
		return failIfA1(ctx, in)
	})
	ex := New(oracle, provenance.NewStore(s), WithWorkers(2))
	ins := []pipeline.Instance{
		pipeline.MustInstance(s, pipeline.Ord(1), pipeline.Ord(1)),
		bad,
		pipeline.MustInstance(s, pipeline.Ord(2), pipeline.Ord(2)),
	}
	results := ex.EvaluateBatch(context.Background(), ins)
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("good instances failed: %v, %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Fatal("bad instance did not report its oracle error")
	}
	if ex.Store().Len() != 2 {
		t.Fatalf("store has %d records, want 2", ex.Store().Len())
	}
	if ex.Spent() != 2 {
		t.Fatalf("Spent = %d, want 2 (failed run refunds)", ex.Spent())
	}
}

// TestEvaluateBatchDurableResume batches a round into a durable executor,
// reopens the state dir, and asserts the replayed provenance serves every
// instance with zero repeated oracle calls.
func TestEvaluateBatchDurableResume(t *testing.T) {
	dir := t.TempDir()
	c := &callCounter{calls: map[string]int{}}
	ex, err := NewDurable(c.oracle(), durableSpace(), dir,
		WithWorkers(4), WithLogOptions(provlog.WithSyncPolicy(provlog.SyncPolicy{MaxBatch: 8})))
	if err != nil {
		t.Fatal(err)
	}
	s := ex.Store().Space()
	var ins []pipeline.Instance
	for _, x := range []float64{1, 2, 3} {
		for _, m := range []string{"fast", "safe"} {
			ins = append(ins, pipeline.MustInstance(s, pipeline.Ord(x), pipeline.Cat(m)))
		}
	}
	for i, r := range ex.EvaluateBatch(context.Background(), ins) {
		if r.Err != nil {
			t.Fatalf("result %d: %v", i, r.Err)
		}
	}
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}

	ex2, err := NewDurable(c.oracle(), durableSpace(), dir, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer ex2.Close()
	s2 := ex2.Store().Space()
	var ins2 []pipeline.Instance
	for _, in := range ins {
		vals := make([]pipeline.Value, in.Len())
		for i := range vals {
			vals[i] = in.Value(i)
		}
		ins2 = append(ins2, pipeline.MustInstance(s2, vals...))
	}
	for i, r := range ex2.EvaluateBatch(context.Background(), ins2) {
		if r.Err != nil {
			t.Fatalf("replayed result %d: %v", i, r.Err)
		}
	}
	if ex2.Spent() != 0 {
		t.Fatalf("resumed executor spent %d, want 0", ex2.Spent())
	}
	if c.max() != 1 {
		t.Fatalf("an instance reached the oracle %d times, want 1", c.max())
	}
}
