package exec

import (
	"time"

	"repro/internal/pipeline"
	"repro/internal/telemetry"
)

// Telemetry is the executor's instrumentation bundle: hot-path counters
// and the oracle latency histogram registered in a telemetry.Registry,
// plus an optional session event journal. Build one with NewTelemetry and
// attach it with WithTelemetry; a nil *Telemetry (the default) is the
// uninstrumented fast path — the executor pays one nil check per
// operation and allocates nothing.
//
// The same bundle carries the algorithm-driver counters (decisions made,
// tree regrows): drivers hold the executor, so they report through its
// telemetry rather than plumbing a second handle.
type Telemetry struct {
	reg     *telemetry.Registry
	journal *telemetry.Journal

	memoHits   *telemetry.Counter
	memoMisses *telemetry.Counter
	dedupDrops *telemetry.Counter
	trials     *telemetry.Counter
	oracleErrs *telemetry.Counter

	budgetSpent     *telemetry.Gauge
	budgetRemaining *telemetry.Gauge
	queueDepth      *telemetry.Gauge

	oracleLat *telemetry.Histogram

	trialsPerInst *telemetry.Histogram
	quorumTies    *telemetry.Counter

	decisions   *telemetry.Counter
	treeRegrows *telemetry.Counter
}

// NewTelemetry registers the executor's metrics in reg (under exec_* and
// driver_* names) and emits span events to journal. Either argument may be
// nil: a nil registry records no metrics, a nil journal logs no events,
// and NewTelemetry(nil, nil) returns nil — the uninstrumented executor.
// workers sizes the oracle-latency histogram's stripe count so concurrent
// workers do not false-share one cell.
func NewTelemetry(reg *telemetry.Registry, journal *telemetry.Journal, workers int) *Telemetry {
	if reg == nil && journal == nil {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	return &Telemetry{
		reg:             reg,
		journal:         journal,
		memoHits:        reg.Counter("exec_memo_hits"),
		memoMisses:      reg.Counter("exec_memo_misses"),
		dedupDrops:      reg.Counter("exec_dedup_drops"),
		trials:          reg.Counter("exec_oracle_trials"),
		oracleErrs:      reg.Counter("exec_oracle_errors"),
		budgetSpent:     reg.Gauge("exec_budget_spent"),
		budgetRemaining: reg.Gauge("exec_budget_remaining"),
		queueDepth:      reg.Gauge("exec_queue_depth"),
		oracleLat:       reg.HistogramStripes("exec_oracle_latency_ns", workers),
		trialsPerInst:   reg.Histogram("exec_trials_per_instance"),
		quorumTies:      reg.Counter("exec_quorum_ties"),
		decisions:       reg.Counter("driver_decisions"),
		treeRegrows:     reg.Counter("driver_tree_regrows"),
	}
}

// WithTelemetry attaches an instrumentation bundle to the executor. A nil
// bundle (or omitting the option) leaves the executor uninstrumented.
func WithTelemetry(t *Telemetry) Option {
	return func(e *Executor) { e.tel = t }
}

// Telemetry returns the executor's instrumentation bundle (nil when
// uninstrumented), so drivers holding the executor can count decisions.
func (e *Executor) Telemetry() *Telemetry { return e.tel }

// Decision counts one driver decision (a suspect verified, a divide step
// resolved). Nil-safe.
func (t *Telemetry) Decision() {
	if t == nil {
		return
	}
	t.decisions.Inc()
}

// TreeRegrow counts one decision-tree rebuild in the debugging-decision-
// trees driver. Nil-safe.
func (t *Telemetry) TreeRegrow() {
	if t == nil {
		return
	}
	t.treeRegrows.Inc()
}

// trialStart journals the start of one oracle trial and returns its start
// time for trialEnd.
func (t *Telemetry) trialStart(in pipeline.Instance) time.Time {
	if t.journal != nil {
		t.journal.Emit("trial_start", telemetry.Hex("inst", in.Hash()))
	}
	return time.Now()
}

// trialEnd records one completed oracle trial: latency histogram (striped
// by worker lane), trial counter, and the journal span end with instance
// hash, outcome, and duration.
func (t *Telemetry) trialEnd(lane int, in pipeline.Instance, out pipeline.Outcome, err error, start time.Time) {
	d := time.Since(start)
	t.trials.Inc()
	t.oracleLat.ObserveAt(lane, int64(d))
	if err != nil {
		t.oracleErrs.Inc()
	}
	if t.journal != nil {
		outcome := out.String()
		if err != nil {
			outcome = "error"
		}
		t.journal.Emit("trial_end",
			telemetry.Hex("inst", in.Hash()),
			telemetry.Str("outcome", outcome),
			telemetry.Dur("dur_ns", d),
		)
	}
}

// quorum records one resolved flaky quorum: the trials-per-instance
// histogram, the tie counter when the vote deadlocked at the trial cap,
// and a journal event with the resolved outcome and vote count. Called
// once per instance, by the resolver whose record commit won.
func (t *Telemetry) quorum(in pipeline.Instance, out pipeline.Outcome, trials int) {
	t.trialsPerInst.Observe(int64(trials))
	if out == pipeline.OutcomeInconclusive {
		t.quorumTies.Inc()
	}
	if t.journal != nil {
		t.journal.Emit("quorum_resolved",
			telemetry.Hex("inst", in.Hash()),
			telemetry.Str("outcome", out.String()),
			telemetry.Int("trials", int64(trials)),
		)
	}
}

// budget mirrors the executor's budget state into the gauges. Called with
// e.mu held; the gauge writes are atomic stores.
func (t *Telemetry) budget(spent, remaining int, bounded bool) {
	if t == nil {
		return
	}
	t.budgetSpent.Set(int64(spent))
	if bounded {
		t.budgetRemaining.Set(int64(remaining))
	} else {
		t.budgetRemaining.Set(-1)
	}
}

// batchDispatch journals one worker-pool round: how many instances were
// requested, memoized, deduped, and dispatched.
func (t *Telemetry) batchDispatch(total, dispatched, dups int, batch bool) {
	if t == nil || t.journal == nil {
		return
	}
	mode := "per-record"
	if batch {
		mode = "batch"
	}
	t.journal.Emit("batch_dispatch",
		telemetry.Int("total", int64(total)),
		telemetry.Int("dispatched", int64(dispatched)),
		telemetry.Int("dups", int64(dups)),
		telemetry.Str("commit", mode),
	)
}
