package exec

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/provenance"
)

// TestConcurrentEvaluateSameInstance hammers one instance from many
// goroutines: everyone must observe the same outcome and the oracle must
// not be recorded twice.
func TestConcurrentEvaluateSameInstance(t *testing.T) {
	s := testSpace(t)
	ex := New(OracleFunc(failIfA1), provenance.NewStore(s))
	in := pipeline.MustInstance(s, pipeline.Ord(1), pipeline.Ord(2))
	const n = 32
	outcomes := make([]pipeline.Outcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := ex.Evaluate(context.Background(), in)
			if err != nil {
				t.Error(err)
				return
			}
			outcomes[i] = out
		}(i)
	}
	wg.Wait()
	for i, out := range outcomes {
		if out != pipeline.Fail {
			t.Fatalf("goroutine %d observed %v", i, out)
		}
	}
	if got := ex.Store().Len(); got != 1 {
		t.Fatalf("store holds %d records, want 1", got)
	}
}

// TestConcurrentBudgetNeverOverspends races many distinct instances against
// a small budget: successful evaluations must never exceed it.
func TestConcurrentBudgetNeverOverspends(t *testing.T) {
	s := testSpace(t)
	const budget = 5
	ex := New(OracleFunc(failIfA1), provenance.NewStore(s), WithBudget(budget))
	var wg sync.WaitGroup
	var mu sync.Mutex
	okCount := 0
	for a := 1; a <= 4; a++ {
		for b := 1; b <= 4; b++ {
			in := pipeline.MustInstance(s, pipeline.Ord(float64(a)), pipeline.Ord(float64(b)))
			wg.Add(1)
			go func(in pipeline.Instance) {
				defer wg.Done()
				_, err := ex.Evaluate(context.Background(), in)
				switch {
				case err == nil:
					mu.Lock()
					okCount++
					mu.Unlock()
				case errors.Is(err, ErrBudgetExhausted):
				default:
					t.Errorf("unexpected error: %v", err)
				}
			}(in)
		}
	}
	wg.Wait()
	if okCount != budget {
		t.Fatalf("%d evaluations succeeded with budget %d", okCount, budget)
	}
	if ex.Spent() != budget {
		t.Fatalf("Spent = %d", ex.Spent())
	}
}

// TestConcurrentStoreReadsDuringWrites interleaves store queries with
// executor writes; the race detector guards correctness.
func TestConcurrentStoreReadsDuringWrites(t *testing.T) {
	s := testSpace(t)
	ex := New(OracleFunc(failIfA1), provenance.NewStore(s), WithWorkers(4))
	var ins []pipeline.Instance
	for a := 1; a <= 4; a++ {
		for b := 1; b <= 4; b++ {
			ins = append(ins, pipeline.MustInstance(s, pipeline.Ord(float64(a)), pipeline.Ord(float64(b))))
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_ = ex.Store().Failing()
			_, _ = ex.Store().FirstFailing()
			_, _ = ex.Store().Outcomes()
		}
	}()
	results := ex.EvaluateAll(context.Background(), ins)
	<-done
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
}
