// Package qmc implements the Quine-McCluskey two-level minimization
// algorithm for Boolean functions, which BugDoc uses to simplify the
// disjunction-of-conjunctions explanations produced by the Debugging
// Decision Trees algorithm (Section 4 of the paper).
//
// The package offers the classic binary algorithm: prime-implicant
// generation by iterative pairwise combination, essential-prime selection,
// and a greedy cover for the remainder (an exact Petrick step is
// unnecessary for explanation-sized inputs, and greedy covers are still
// valid covers).
package qmc

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Implicant is a product term over n Boolean variables. Mask has a 1 bit
// for every variable the term constrains; Bits gives the required values on
// those variables (and is zero elsewhere). The all-don't-care implicant
// (Mask == 0) is the constant true.
type Implicant struct {
	Bits uint64
	Mask uint64
}

// Covers reports whether the implicant is satisfied by minterm m.
func (im Implicant) Covers(m uint64) bool {
	return m&im.Mask == im.Bits
}

// Vars returns the number of constrained variables.
func (im Implicant) Vars() int { return bits.OnesCount64(im.Mask) }

// String renders the implicant over n variables, most-significant first,
// with '-' for don't-care positions (e.g. "1-0").
func (im Implicant) String(n int) string {
	var b strings.Builder
	for i := n - 1; i >= 0; i-- {
		bit := uint64(1) << uint(i)
		switch {
		case im.Mask&bit == 0:
			b.WriteByte('-')
		case im.Bits&bit != 0:
			b.WriteByte('1')
		default:
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Minimize returns a small sum-of-products cover of the Boolean function
// over n variables whose ON-set is minterms and whose DC-set is dontcares.
// The result covers every minterm, covers nothing outside minterms ∪
// dontcares, and consists of prime implicants only. Duplicate minterms are
// tolerated. n must be in [1, 64].
func Minimize(n int, minterms, dontcares []uint64) ([]Implicant, error) {
	if n < 1 || n > 64 {
		return nil, fmt.Errorf("qmc: n = %d out of range [1, 64]", n)
	}
	full := fullMask(n)
	on := dedupWithin(minterms, full)
	dc := dedupWithin(dontcares, full)
	if len(on) == 0 {
		return nil, nil // constant false: empty cover
	}
	onSet := make(map[uint64]bool, len(on))
	for _, m := range on {
		onSet[m] = true
	}
	for _, m := range dc {
		if onSet[m] {
			return nil, fmt.Errorf("qmc: minterm %d is also a don't-care", m)
		}
	}

	primes := primeImplicants(append(append([]uint64{}, on...), dc...), full)
	return cover(primes, on), nil
}

func fullMask(n int) uint64 {
	if n == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(n)) - 1
}

func dedupWithin(ms []uint64, full uint64) []uint64 {
	seen := make(map[uint64]bool, len(ms))
	var out []uint64
	for _, m := range ms {
		m &= full
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// primeImplicants combines terms pairwise until no combination applies; the
// never-combined terms are the prime implicants.
func primeImplicants(terms []uint64, full uint64) []Implicant {
	current := make(map[Implicant]bool, len(terms))
	for _, m := range terms {
		current[Implicant{Bits: m, Mask: full}] = true
	}
	var primes []Implicant
	for len(current) > 0 {
		next := make(map[Implicant]bool)
		combined := make(map[Implicant]bool, len(current))
		list := sortedImplicants(current)
		// Group by mask then by popcount so only plausible pairs are tried.
		for i := 0; i < len(list); i++ {
			for j := i + 1; j < len(list); j++ {
				a, b := list[i], list[j]
				if a.Mask != b.Mask {
					continue
				}
				diff := a.Bits ^ b.Bits
				if bits.OnesCount64(diff) != 1 {
					continue
				}
				merged := Implicant{Bits: a.Bits &^ diff, Mask: a.Mask &^ diff}
				next[merged] = true
				combined[a] = true
				combined[b] = true
			}
		}
		for _, im := range list {
			if !combined[im] {
				primes = append(primes, im)
			}
		}
		current = next
	}
	return dedupImplicants(primes)
}

func sortedImplicants(set map[Implicant]bool) []Implicant {
	out := make([]Implicant, 0, len(set))
	for im := range set {
		out = append(out, im)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Mask != out[j].Mask {
			return out[i].Mask < out[j].Mask
		}
		return out[i].Bits < out[j].Bits
	})
	return out
}

func dedupImplicants(ims []Implicant) []Implicant {
	seen := make(map[Implicant]bool, len(ims))
	var out []Implicant
	for _, im := range ims {
		if !seen[im] {
			seen[im] = true
			out = append(out, im)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Mask != out[j].Mask {
			return out[i].Mask < out[j].Mask
		}
		return out[i].Bits < out[j].Bits
	})
	return out
}

// cover selects essential primes first, then greedily picks the prime
// covering the most uncovered minterms (ties broken by fewer constrained
// variables, then deterministic order).
func cover(primes []Implicant, on []uint64) []Implicant {
	uncovered := make(map[uint64]bool, len(on))
	for _, m := range on {
		uncovered[m] = true
	}
	var chosen []Implicant
	take := func(im Implicant) {
		chosen = append(chosen, im)
		for m := range uncovered {
			if im.Covers(m) {
				delete(uncovered, m)
			}
		}
	}
	// Essential primes: minterms covered by exactly one prime.
	for _, m := range on {
		var only *Implicant
		count := 0
		for i := range primes {
			if primes[i].Covers(m) {
				count++
				only = &primes[i]
			}
		}
		if count == 1 && uncovered[m] {
			take(*only)
		}
	}
	for len(uncovered) > 0 {
		bestIdx, bestCount := -1, -1
		for i, im := range primes {
			c := 0
			for m := range uncovered {
				if im.Covers(m) {
					c++
				}
			}
			if c > bestCount || (c == bestCount && bestIdx >= 0 && betterTie(im, primes[bestIdx])) {
				bestIdx, bestCount = i, c
			}
		}
		if bestIdx < 0 || bestCount == 0 {
			// Cannot happen: every minterm is covered by some prime
			// (each survives as or inside a prime). Guard anyway.
			break
		}
		take(primes[bestIdx])
	}
	return dedupImplicants(chosen)
}

func betterTie(a, b Implicant) bool {
	av, bv := a.Vars(), b.Vars()
	if av != bv {
		return av < bv
	}
	if a.Mask != b.Mask {
		return a.Mask < b.Mask
	}
	return a.Bits < b.Bits
}
