package qmc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// evalCover evaluates a sum-of-products cover on minterm m.
func evalCover(cover []Implicant, m uint64) bool {
	for _, im := range cover {
		if im.Covers(m) {
			return true
		}
	}
	return false
}

func TestMinimizeTextbook(t *testing.T) {
	// f(a,b,c,d) = Σ m(4,8,10,11,12,15) + d(9,14) — the classic example;
	// a known minimal cover has three implicants.
	cover, err := Minimize(4, []uint64{4, 8, 10, 11, 12, 15}, []uint64{9, 14})
	if err != nil {
		t.Fatal(err)
	}
	if len(cover) != 3 {
		t.Fatalf("cover size = %d (%v), want 3", len(cover), cover)
	}
	for _, m := range []uint64{4, 8, 10, 11, 12, 15} {
		if !evalCover(cover, m) {
			t.Errorf("minterm %d not covered", m)
		}
	}
	for m := uint64(0); m < 16; m++ {
		if evalCover(cover, m) {
			switch m {
			case 4, 8, 10, 11, 12, 15, 9, 14:
			default:
				t.Errorf("cover wrongly includes %d", m)
			}
		}
	}
}

func TestMinimizeSingleVariable(t *testing.T) {
	cover, err := Minimize(1, []uint64{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cover) != 1 || cover[0].Mask != 0 {
		t.Fatalf("constant-true cover = %v", cover)
	}
	cover, err = Minimize(1, []uint64{1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cover) != 1 || cover[0] != (Implicant{Bits: 1, Mask: 1}) {
		t.Fatalf("x cover = %v", cover)
	}
}

func TestMinimizeEmpty(t *testing.T) {
	cover, err := Minimize(3, nil, []uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(cover) != 0 {
		t.Fatalf("constant-false cover = %v", cover)
	}
}

func TestMinimizeErrors(t *testing.T) {
	if _, err := Minimize(0, []uint64{0}, nil); err == nil {
		t.Fatal("n=0 must fail")
	}
	if _, err := Minimize(65, []uint64{0}, nil); err == nil {
		t.Fatal("n=65 must fail")
	}
	if _, err := Minimize(2, []uint64{1}, []uint64{1}); err == nil {
		t.Fatal("overlapping ON and DC sets must fail")
	}
}

func TestMinimizeXor(t *testing.T) {
	// XOR has no mergeable adjacent minterms: cover must keep both terms.
	cover, err := Minimize(2, []uint64{1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cover) != 2 {
		t.Fatalf("xor cover = %v, want 2 implicants", cover)
	}
}

func TestImplicantString(t *testing.T) {
	im := Implicant{Bits: 0b100, Mask: 0b101}
	if got := im.String(3); got != "1-0" {
		t.Fatalf("String = %q, want 1-0", got)
	}
	if (Implicant{}).String(2) != "--" {
		t.Fatal("true implicant must render as all dashes")
	}
}

func TestMinimizeDuplicatesTolerated(t *testing.T) {
	cover, err := Minimize(2, []uint64{1, 1, 3, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 01 and 11 merge to -1.
	if len(cover) != 1 || cover[0] != (Implicant{Bits: 1, Mask: 1}) {
		t.Fatalf("cover = %v", cover)
	}
}

// Property: on random functions, the cover is exactly equivalent on the
// ON-set, never covers the OFF-set, and consists only of implicants of
// ON ∪ DC.
func TestMinimizeEquivalenceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	f := func() bool {
		n := 3 + r.Intn(4) // 3..6 variables
		size := uint64(1) << uint(n)
		var on, dc []uint64
		kind := make([]int, size)
		for m := uint64(0); m < size; m++ {
			switch r.Intn(4) {
			case 0:
				on = append(on, m)
				kind[m] = 1
			case 1:
				dc = append(dc, m)
				kind[m] = 2
			}
		}
		cover, err := Minimize(n, on, dc)
		if err != nil {
			return false
		}
		for m := uint64(0); m < size; m++ {
			got := evalCover(cover, m)
			switch kind[m] {
			case 1: // ON must be covered
				if !got {
					return false
				}
			case 0: // OFF must not be covered
				if got {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: all returned implicants are prime — expanding any constrained
// variable to don't-care would cover an OFF minterm.
func TestPrimeProperty(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	f := func() bool {
		n := 3 + r.Intn(3)
		size := uint64(1) << uint(n)
		var on []uint64
		isOn := make([]bool, size)
		for m := uint64(0); m < size; m++ {
			if r.Intn(3) == 0 {
				on = append(on, m)
				isOn[m] = true
			}
		}
		cover, err := Minimize(n, on, nil)
		if err != nil {
			return false
		}
		for _, im := range cover {
			for i := 0; i < n; i++ {
				bit := uint64(1) << uint(i)
				if im.Mask&bit == 0 {
					continue
				}
				wider := Implicant{Bits: im.Bits &^ bit, Mask: im.Mask &^ bit}
				// wider must cover some OFF minterm, else im was not prime.
				coversOff := false
				for m := uint64(0); m < size; m++ {
					if wider.Covers(m) && !isOn[m] {
						coversOff = true
						break
					}
				}
				if !coversOff {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
