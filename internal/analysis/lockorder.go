package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockOrder enforces the provenance locking protocol from PR 5: the store's
// writer mutex (a field named wmu) is acquired after the shard locks, never
// before — so no shard lock may be taken while wmu is held — and every
// Lock/RLock on a sync.Mutex or sync.RWMutex field must have a matching
// Unlock/RUnlock somewhere in the same function (deferred, on an error
// path, or inside a closure the function builds, as lockAll does).
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "wmu is acquired after shard locks, and every Lock has a matching Unlock",
	Run:  runLockOrder,
}

// lockEvent is one mutex operation found in source order.
type lockEvent struct {
	key      string // (receiver type, field) identity
	method   string // Lock, RLock, Unlock, RUnlock
	field    string // selector field or identifier name
	recv     string // name of the defined type holding the mutex field, "" for locals
	deferred bool   // the call sits in a defer statement
	call     *ast.CallExpr
}

func runLockOrder(pass *Pass) error {
	info := pass.Pkg.Info
	eachFuncDecl(pass.Pkg, func(fn *ast.FuncDecl) {
		var events []lockEvent
		deferredCalls := make(map[*ast.CallExpr]bool)
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if d, ok := n.(*ast.DeferStmt); ok {
				deferredCalls[d.Call] = true
				return true
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if ev, ok := lockEventOf(info, call); ok {
				ev.deferred = deferredCalls[call]
				events = append(events, ev)
			}
			return true
		})
		checkWmuOrder(pass, events)
		checkPairing(pass, fn, events)
	})
	return nil
}

// lockEventOf recognizes m.Lock / m.RLock / m.Unlock / m.RUnlock calls on
// sync.Mutex / sync.RWMutex values. TryLock variants are ignored: a failed
// TryLock legitimately has no matching unlock.
func lockEventOf(info *types.Info, call *ast.CallExpr) (lockEvent, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	method := sel.Sel.Name
	switch method {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return lockEvent{}, false
	}
	recvT := deref(info.TypeOf(sel.X))
	if !isPkgType(recvT, "sync", "Mutex") && !isPkgType(recvT, "sync", "RWMutex") {
		return lockEvent{}, false
	}
	ev := lockEvent{method: method, call: call}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		ev.field = x.Sel.Name
		// Key by (defined type of the base, field name) so sh.mu.Unlock
		// pairs with st.shards[i].mu.Lock: both are (shard, mu).
		if n := namedOf(info.TypeOf(x.X)); n != nil {
			ev.recv = n.Obj().Name()
		}
	case *ast.Ident:
		ev.field = x.Name
	default:
		return lockEvent{}, false
	}
	ev.key = ev.recv + "." + ev.field
	return ev, true
}

// checkWmuOrder walks the events in source order and reports any shard
// lock (a mutex field named mu on a type whose name ends in "shard")
// acquired while wmu is held.
func checkWmuOrder(pass *Pass, events []lockEvent) {
	wmuHeld := false
	for _, ev := range events {
		switch {
		case ev.field == "wmu" && ev.method == "Lock":
			wmuHeld = true
		case ev.field == "wmu" && ev.method == "Unlock":
			// A deferred unlock runs at return, not here in source order;
			// wmu stays held for everything after it.
			if !ev.deferred {
				wmuHeld = false
			}
		case wmuHeld && isShardLock(ev) && (ev.method == "Lock" || ev.method == "RLock"):
			pass.Reportf(ev.call.Pos(),
				"shard lock %s.%s acquired while holding wmu; the protocol is shard locks first, wmu last",
				ev.recv, ev.field)
		}
	}
}

func isShardLock(ev lockEvent) bool {
	return ev.field == "mu" && strings.HasSuffix(strings.ToLower(ev.recv), "shard")
}

// checkPairing requires at least one matching unlock per locked key. This
// is deliberately flow-insensitive: it catches the real bug class (a lock
// with no unlock anywhere, including all return paths) without false
// positives on hand-over-hand or closure-deferred unlocking.
func checkPairing(pass *Pass, fn *ast.FuncDecl, events []lockEvent) {
	type state struct {
		first    *lockEvent
		unlocked bool
	}
	unlockOf := map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}
	for lock, unlock := range unlockOf {
		held := make(map[string]*state)
		for i := range events {
			ev := &events[i]
			switch ev.method {
			case lock:
				if held[ev.key] == nil {
					held[ev.key] = &state{first: ev}
				}
			case unlock:
				if s := held[ev.key]; s != nil {
					s.unlocked = true
				} else {
					held[ev.key] = &state{unlocked: true}
				}
			}
		}
		for key, s := range held {
			if s.first != nil && !s.unlocked {
				pass.Reportf(s.first.call.Pos(),
					"%s on %s has no matching %s in %s", lock, key, unlock, fn.Name.Name)
			}
		}
	}
}
