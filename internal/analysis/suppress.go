package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// ignorePrefix introduces a suppression directive. The grammar is
//
//	//buglint:ignore <check> <reason>
//
// where <check> is an analyzer name and <reason> is required free text
// explaining why the violation is intentional. A directive suppresses
// findings of that check on its own line, on the line directly below it,
// or — when it appears in a function's doc comment — anywhere in that
// function. A directive with an empty reason or an unknown check name is
// itself reported as a finding, so suppressions cannot silently rot.
const ignorePrefix = "//buglint:ignore"

// suppression is one parsed directive.
type suppression struct {
	check  string
	reason string
	pos    token.Pos
	file   string
	line   int
	// fnStart/fnEnd bound the enclosing function when the directive sits
	// in a FuncDecl doc comment; both are NoPos otherwise.
	fnStart, fnEnd token.Pos
}

// parseSuppressions collects every directive in the package, attaching
// doc-comment directives to their function's source range.
func parseSuppressions(pkg *Package) []suppression {
	// Map doc-comment positions to the function they document.
	type span struct{ start, end token.Pos }
	docOwner := make(map[token.Pos]span)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				continue
			}
			for _, c := range fn.Doc.List {
				docOwner[c.Pos()] = span{fn.Pos(), fn.End()}
			}
		}
	}
	var sups []suppression
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, ignorePrefix)
				if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
					continue // some other directive, e.g. //buglint:ignorexyz
				}
				fields := strings.Fields(rest)
				s := suppression{pos: c.Pos()}
				if len(fields) > 0 {
					s.check = fields[0]
				}
				if len(fields) > 1 {
					s.reason = strings.Join(fields[1:], " ")
				}
				p := pkg.Fset.Position(c.Pos())
				s.file, s.line = p.Filename, p.Line
				if sp, ok := docOwner[c.Pos()]; ok {
					s.fnStart, s.fnEnd = sp.start, sp.end
				}
				sups = append(sups, s)
			}
		}
	}
	return sups
}

// applySuppressions filters findings through the package's directives and
// appends meta-findings for malformed directives. known holds the enabled
// check names; a directive naming a check outside it is reported so typos
// cannot mute anything.
func applySuppressions(pkg *Package, findings []Finding, known map[string]bool) []Finding {
	sups := parseSuppressions(pkg)
	var out []Finding
	for _, f := range findings {
		if !suppressed(pkg, sups, f) {
			out = append(out, f)
		}
	}
	for _, s := range sups {
		switch {
		case s.check == "" || s.reason == "":
			out = append(out, Finding{
				Check:    "ignore",
				Pos:      s.pos,
				Position: pkg.Fset.Position(s.pos),
				Message:  "buglint:ignore directive needs a check name and a non-empty reason",
			})
		case !known[s.check]:
			out = append(out, Finding{
				Check:    "ignore",
				Pos:      s.pos,
				Position: pkg.Fset.Position(s.pos),
				Message:  "buglint:ignore names unknown check " + strconv.Quote(s.check),
			})
		}
	}
	return out
}

// suppressed reports whether any directive covers the finding.
func suppressed(pkg *Package, sups []suppression, f Finding) bool {
	for _, s := range sups {
		if s.check != f.Check || s.reason == "" {
			continue
		}
		if s.fnStart.IsValid() && s.fnStart <= f.Pos && f.Pos <= s.fnEnd {
			return true
		}
		if s.file == f.Position.Filename && (s.line == f.Position.Line || s.line == f.Position.Line-1) {
			return true
		}
	}
	return false
}
