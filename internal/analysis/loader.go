package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and (optionally) typechecked package. Analyzers
// receive it through Pass and must treat it as read-only.
type Package struct {
	// Dir is the directory the package was loaded from.
	Dir string
	// ImportPath is the path the package is imported as ("repro/internal/provenance",
	// or the fixture-relative path in golden tests).
	ImportPath string
	// Name is the package name from the package clause.
	Name string
	// Fset is the loader's shared FileSet; all positions resolve through it.
	Fset *token.FileSet
	// Files holds the package's non-test files, sorted by file name, parsed
	// with comments.
	Files []*ast.File
	// Types and Info are nil when the package was loaded syntax-only.
	Types *types.Package
	Info  *types.Info
}

// Loader parses and typechecks packages with one shared FileSet, so every
// tool built on it (buglint, doclint, the golden-test harness) resolves
// positions and module-local imports the same way. Standard-library imports
// go through the compiler's export data when available and fall back to
// typechecking from source, so the loader needs nothing beyond the Go
// toolchain already present for builds.
type Loader struct {
	// Fset is the FileSet every package is parsed into.
	Fset *token.FileSet

	moduleRoot  string // directory containing go.mod ("" in fixture mode)
	modulePath  string // module path declared in go.mod
	fixtureRoot string // when set, import paths resolve as <fixtureRoot>/<path>

	pkgs    map[string]*Package
	loading map[string]bool
	gc      types.Importer
	src     types.Importer
}

// NewLoader returns a loader rooted at the module containing dir: it walks
// up from dir to the nearest go.mod and resolves imports under the declared
// module path to directories beneath it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	mod := modulePath(string(data))
	if mod == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", root)
	}
	ld := newLoader()
	ld.moduleRoot = root
	ld.modulePath = mod
	return ld, nil
}

// NewFixtureLoader returns a loader that resolves every non-stdlib import
// path p to <root>/p. The golden-test harness uses it with
// testdata/src as the root, mirroring the layout used by analysistest in
// x/tools without depending on it.
func NewFixtureLoader(root string) *Loader {
	ld := newLoader()
	ld.fixtureRoot = root
	return ld
}

func newLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
		gc:      importer.Default(),
		src:     importer.ForCompiler(fset, "source", nil),
	}
}

// modulePath extracts the module path from go.mod content.
func modulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// ModuleRoot returns the directory containing go.mod, or "" for fixture
// loaders.
func (ld *Loader) ModuleRoot() string { return ld.moduleRoot }

// resolve maps an import path to a local directory, reporting whether the
// path is local to the module (or fixture root) at all.
func (ld *Loader) resolve(path string) (string, bool) {
	if ld.fixtureRoot != "" {
		dir := filepath.Join(ld.fixtureRoot, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, true
		}
		return "", false
	}
	if path == ld.modulePath {
		return ld.moduleRoot, true
	}
	if rest, ok := strings.CutPrefix(path, ld.modulePath+"/"); ok {
		return filepath.Join(ld.moduleRoot, filepath.FromSlash(rest)), true
	}
	return "", false
}

// importPathOf maps a directory back to its import path.
func (ld *Loader) importPathOf(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	if ld.fixtureRoot != "" {
		rel, err := filepath.Rel(ld.fixtureRoot, abs)
		if err != nil {
			return "", err
		}
		return filepath.ToSlash(rel), nil
	}
	rel, err := filepath.Rel(ld.moduleRoot, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return ld.modulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, ld.modulePath)
	}
	return ld.modulePath + "/" + filepath.ToSlash(rel), nil
}

// ParseDir parses the non-test Go files of one directory with comments and
// no typechecking. doclint runs in this mode: its checks are purely
// syntactic and must not require the tree to typecheck.
func (ld *Loader) ParseDir(dir string) ([]*ast.File, error) {
	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// LoadDir loads and typechecks the package in dir, memoizing by import
// path. Imports below the module path load recursively through the same
// loader; everything else resolves through the stdlib importer chain.
func (ld *Loader) LoadDir(dir string) (*Package, error) {
	path, err := ld.importPathOf(dir)
	if err != nil {
		return nil, err
	}
	return ld.Load(path)
}

// Load loads and typechecks the package with the given import path, which
// must resolve inside the module (or fixture root).
func (ld *Loader) Load(path string) (*Package, error) {
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg, nil
	}
	dir, ok := ld.resolve(path)
	if !ok {
		return nil, fmt.Errorf("analysis: import path %q does not resolve locally", path)
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)

	files, err := ld.ParseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			return ld.importPkg(importPath)
		}),
		Error: func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, ld.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", path, err)
	}
	pkg := &Package{
		Dir:        dir,
		ImportPath: path,
		Name:       files[0].Name.Name,
		Fset:       ld.Fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	ld.pkgs[path] = pkg
	return pkg, nil
}

// importPkg resolves one import for the typechecker: module-local paths
// recurse through Load; others try compiler export data first (fast) and
// fall back to typechecking the dependency from source.
func (ld *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := ld.resolve(path); ok {
		pkg, err := ld.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if tp, err := ld.gc.Import(path); err == nil {
		return tp, nil
	}
	return ld.src.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// ExpandPatterns turns buglint-style package patterns into package
// directories. "dir/..." (most commonly "./...") walks for every directory
// holding non-test Go files, skipping testdata, hidden directories, and
// vendor; anything else names a single directory. Results are absolute,
// sorted, and deduplicated.
func ExpandPatterns(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) error {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return err
		}
		if !seen[abs] {
			seen[abs] = true
			dirs = append(dirs, abs)
		}
		return nil
	}
	for _, pat := range patterns {
		root, rec := strings.CutSuffix(pat, "/...")
		if !rec {
			names, err := goFilesIn(pat)
			if err != nil {
				return nil, err
			}
			if len(names) == 0 {
				return nil, fmt.Errorf("analysis: no Go files in %s", pat)
			}
			if err := add(pat); err != nil {
				return nil, err
			}
			continue
		}
		if root == "" || root == "." {
			root = "."
		}
		err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			base := filepath.Base(p)
			if p != root && (strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") ||
				base == "testdata" || base == "vendor") {
				return filepath.SkipDir
			}
			names, err := goFilesIn(p)
			if err != nil {
				return err
			}
			if len(names) > 0 {
				return add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// goFilesIn lists the buildable non-test Go file names in dir, sorted.
// Build constraints (file suffixes and //go:build lines) are honored for
// the current GOOS/GOARCH, so only one of lock_unix.go / lock_other.go is
// loaded, exactly as the compiler would.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}
