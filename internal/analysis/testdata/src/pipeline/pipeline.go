// Package pipeline is a golden-test stand-in for the real pipeline
// package: just enough surface (Space, Instance) for analyzers that match
// by package and type name.
package pipeline

// Space identifies a parameter space.
type Space struct {
	Name string
}

// Instance is a concrete assignment of values within one Space.
type Instance struct {
	space *Space
}

// Space returns the owning space.
func (in Instance) Space() *Space { return in.space }

// Hash returns a stand-in identity hash.
func (in Instance) Hash() uint64 { return 0 }

// Equal guards with the in-package field form, like the real package.
func (in Instance) Equal(other Instance) bool {
	return in.space == other.space
}

func (in Instance) Mixed(other Instance) bool { // want "never compares other.Space"
	return in.space != nil && other.space != nil
}
