package hotpath

import "fmt"

type table struct {
	m map[uint64]int
}

// goodLookup reads a prebuilt map; indexing allocates nothing.
//
//bugdoc:hotpath
func goodLookup(t *table, k uint64) (int, bool) {
	v, ok := t.m[k]
	return v, ok
}

// coldFmt is unannotated, so anything goes.
func coldFmt(k uint64) string {
	return fmt.Sprintf("%d", k)
}

//bugdoc:hotpath
func badFmt(k uint64) {
	fmt.Println(k) // want "calls fmt.Println"
}

//bugdoc:hotpath
func badMake() map[int]int {
	return make(map[int]int) // want "allocates a map with make"
}

//bugdoc:hotpath
func badMapLit() map[int]int {
	return map[int]int{} // want "allocates a map literal"
}

//bugdoc:hotpath
func badClosure(n int) func() int {
	return func() int { return n } // want "allocates a closure"
}

//bugdoc:hotpath
func badConcat(a, b string) string {
	return a + b // want "concatenates strings"
}

//bugdoc:hotpath
func badConcatAssign(a, b string) string {
	a += b // want "concatenates strings"
	return a
}

//bugdoc:hotpath
func badReturnBox(v int) any {
	return v // want "returns a concrete value as an interface"
}

// I and T exercise explicit interface conversion.
type I interface{ M() }

type T struct{}

func (T) M() {}

//bugdoc:hotpath
func badConv(t T) I {
	return I(t) // want "converts a concrete value to an interface"
}

func sink(v any) { _ = v }

//bugdoc:hotpath
func badArgBox(n int) {
	sink(n) // want "passes a concrete value to an interface parameter"
}

// goodIface passes along a value that is already an interface: no boxing.
//
//bugdoc:hotpath
func goodIface(v any) {
	sink(v)
}
