package lockorder

import "sync"

type shard struct {
	mu sync.RWMutex
}

type store struct {
	shards []shard
	wmu    sync.Mutex
}

// good follows the protocol: shard locks first, wmu last.
func (st *store) good() {
	st.shards[0].mu.Lock()
	st.wmu.Lock()
	st.wmu.Unlock()
	st.shards[0].mu.Unlock()
}

// deferGood pairs via defer.
func (st *store) deferGood() {
	st.wmu.Lock()
	defer st.wmu.Unlock()
}

// aliasGood locks through the slice and unlocks through a pointer alias;
// pairing is keyed by (type, field), not by spelling.
func (st *store) aliasGood() {
	for i := range st.shards {
		st.shards[i].mu.Lock()
	}
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Unlock()
	}
}

// closureGood unlocks inside the closure it returns, lockAll-style.
func (st *store) closureGood() func() {
	st.shards[0].mu.Lock()
	return func() { st.shards[0].mu.Unlock() }
}

// tryGood ignores TryLock: a failed TryLock has no unlock.
func (st *store) tryGood() {
	if st.wmu.TryLock() {
		st.wmu.Unlock()
	}
}

func (st *store) badOrder() {
	st.wmu.Lock()
	st.shards[0].mu.Lock() // want "acquired while holding wmu"
	st.shards[0].mu.Unlock()
	st.wmu.Unlock()
}

func (st *store) badOrderRead() {
	st.wmu.Lock()
	defer st.wmu.Unlock()
	st.shards[0].mu.RLock() // want "acquired while holding wmu"
	st.shards[0].mu.RUnlock()
}

func (st *store) badPairing() {
	st.wmu.Lock() // want "no matching Unlock"
}

func (sh *shard) badReadPairing() {
	sh.mu.RLock() // want "no matching RUnlock"
}
