package crossspace

import "pipeline"

// Store owns per-space indexes, like the provenance store.
type Store struct {
	space *pipeline.Space
	n     int
}

// Good guards before indexing.
func (st *Store) Good(ref pipeline.Instance) int {
	if ref.Space() != st.space {
		return 0
	}
	return st.n
}

// GoodEq may phrase the guard with ==.
func (st *Store) GoodEq(ref pipeline.Instance) int {
	if ref.Space() == st.space {
		return st.n
	}
	return 0
}

func (st *Store) Bad(ref pipeline.Instance) int { // want "never compares ref.Space"
	return st.n
}

// quiet is unexported and out of scope.
func (st *Store) quiet(ref pipeline.Instance) int {
	_ = ref
	return st.n
}

// Epoch reaches the space through its Store field, like the real epoch
// snapshots.
type Epoch struct {
	st *Store
}

// GoodIndirect guards through the inner field.
func (e *Epoch) GoodIndirect(ref pipeline.Instance) int {
	if ref.Space() != e.st.space {
		return 0
	}
	return e.st.n
}

func (e *Epoch) BadIndirect(ref pipeline.Instance) int { // want "never compares ref.Space"
	return e.st.n
}

// Consumer holds no space field; its methods are out of scope even with
// Instance parameters.
type Consumer struct {
	last int
}

// Use records an instance hash without touching any index.
func (c *Consumer) Use(ref pipeline.Instance) {
	c.last = int(ref.Hash())
}
