package stickyerr

type wal struct {
	stageErr error
	data     []int
}

// commitLocked is the committing function; the checks live in its callers.
func (l *wal) commitLocked(v int) {
	l.data = append(l.data, v)
}

// goodCommit checks the sticky field first.
func (l *wal) goodCommit(v int) error {
	if l.stageErr != nil {
		return l.stageErr
	}
	l.commitLocked(v)
	return nil
}

func (l *wal) badCommit(v int) {
	l.commitLocked(v) // want "without first checking a sticky error"
}

// validate reads the sticky field, so calling it counts as a check.
func (l *wal) validate() error {
	return l.stageErr
}

// goodIndirect checks through validate, LoadRecords-style.
func (l *wal) goodIndirect(v int) error {
	if err := l.validate(); err != nil {
		return err
	}
	l.commitLocked(v)
	return nil
}

func (l *wal) badLate(v int) error {
	l.commitLocked(v) // want "without first checking a sticky error"
	return l.stageErr
}
