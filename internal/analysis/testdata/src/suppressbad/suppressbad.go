package suppressbad

import "os"

// move tries to suppress without giving a reason: the violation stays AND
// the directive itself becomes a finding.
func move(dir string) error {
	//buglint:ignore renamesync
	return os.Rename(dir+"/a", dir+"/b")
}

// moveTypo names a check that does not exist.
func moveTypo(dir string) error {
	//buglint:ignore renamesink typo in the check name
	return os.Rename(dir+"/a", dir+"/b")
}
