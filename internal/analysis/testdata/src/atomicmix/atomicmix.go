package atomicmix

import "sync/atomic"

type counters struct {
	hits int64
	flag atomic.Bool
}

// goodAtomic only touches hits through sync/atomic.
func (c *counters) goodAtomic() int64 {
	atomic.AddInt64(&c.hits, 1)
	return atomic.LoadInt64(&c.hits)
}

func (c *counters) badPlainRead() int64 {
	return c.hits // want "accessed via sync/atomic elsewhere"
}

func (c *counters) badPlainWrite() {
	c.hits = 0 // want "accessed via sync/atomic elsewhere"
}

// goodTyped uses the typed atomic through its methods.
func (c *counters) goodTyped() bool {
	c.flag.Store(true)
	return c.flag.Load()
}

func (c *counters) badTypedCopy() atomic.Bool {
	return c.flag // want "typed atomic"
}

// goodAddress hands the atomic to a helper by pointer; the pointee is
// still only reachable through methods.
func (c *counters) goodAddress() {
	raise(&c.flag)
}

func raise(b *atomic.Bool) { b.Store(true) }

func badLocal() int64 {
	var n int64
	atomic.AddInt64(&n, 1)
	n++ // want "accessed via sync/atomic elsewhere"
	return atomic.LoadInt64(&n)
}

// plainOnly is never touched atomically, so plain access is fine.
type plainOnly struct {
	n int64
}

func (p *plainOnly) bump() int64 {
	p.n++
	return p.n
}
