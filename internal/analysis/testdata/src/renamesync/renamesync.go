package renamesync

import (
	"os"
	"path/filepath"
)

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func badStray(dir string) error {
	return os.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")) // want "outside a //bugdoc:publish helper"
}

// publish does the full tmp-fsync-rename-dirsync dance.
//
//bugdoc:publish
func publish(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, name+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		return err
	}
	return syncDir(dir)
}

// badPublish is annotated but skips both fsyncs.
//
//bugdoc:publish
func badPublish(dir, name string) error {
	tmp, err := os.CreateTemp(dir, name+".tmp*")
	if err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, name)) // want "without fsyncing the temp file" "without fsyncing the directory"
}
