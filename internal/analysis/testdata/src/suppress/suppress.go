package suppress

import "os"

// move is an intentional renamesync violation with a documented reason;
// the golden test expects zero findings here.
func move(dir string) error {
	//buglint:ignore renamesync fixture exercises a documented line suppression
	return os.Rename(dir+"/a", dir+"/b")
}

// moveTrailing suppresses on the same line.
func moveTrailing(dir string) error {
	return os.Rename(dir+"/a", dir+"/b") //buglint:ignore renamesync fixture exercises a trailing suppression
}

// moveDoc carries the suppression in its doc comment, covering the whole
// function body.
//
//buglint:ignore renamesync fixture exercises a function-scope suppression
func moveDoc(dir string) error {
	if err := os.Rename(dir+"/a", dir+"/b"); err != nil {
		return err
	}
	return os.Rename(dir+"/b", dir+"/c")
}
