package analysis

import (
	"go/ast"
	"go/token"
)

// StickyErr enforces the poisoning protocol from PR 3/5: once a staged
// write fails, the store/log is broken and nothing may mutate committed
// state again. Mechanically: in any package that declares a sticky-error
// field (stageErr, broken), every call to a committing function
// (commitLocked, writeWindow) must be preceded — in the caller, or inside
// a same-package function the caller invoked first — by a read of a
// sticky field (stageErr, broken, or the poisoned mirror). Committing
// without the check resurrects a poisoned structure and commits on top of
// a half-applied failure.
var StickyErr = &Analyzer{
	Name: "stickyerr",
	Doc:  "commit paths must check stageErr/broken/poisoned before mutating committed state",
	Run:  runStickyErr,
}

// stickyFields are the sticky-error field names the repo uses; poisoned is
// the lock-free mirror of stageErr.
var stickyFields = map[string]bool{"stageErr": true, "broken": true, "poisoned": true}

// committingFuncs mutate committed state and therefore require a prior
// sticky check.
var committingFuncs = map[string]bool{"commitLocked": true, "writeWindow": true}

func runStickyErr(pass *Pass) error {
	if !declaresStickyField(pass.Pkg) {
		return nil
	}
	// First pass: which functions read a sticky field anywhere? A call to
	// one of these counts as a check (LoadRecords checks through
	// loadValidateLocked).
	checking := make(map[string]bool)
	eachFuncDecl(pass.Pkg, func(fn *ast.FuncDecl) {
		if mentionsSticky(fn.Body) {
			checking[fn.Name.Name] = true
		}
	})
	eachFuncDecl(pass.Pkg, func(fn *ast.FuncDecl) {
		if committingFuncs[fn.Name.Name] {
			return // the committing function itself is the protected region
		}
		var checkedAt token.Pos = token.NoPos
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if stickyFields[n.Name] && !checkedAt.IsValid() {
					checkedAt = n.Pos()
				}
			case *ast.CallExpr:
				name := callName(n)
				if checking[name] && !committingFuncs[name] && !checkedAt.IsValid() {
					checkedAt = n.Pos()
				}
				if committingFuncs[name] && (!checkedAt.IsValid() || n.Pos() < checkedAt) {
					pass.Reportf(n.Pos(),
						"%s calls %s without first checking a sticky error field (stageErr/broken/poisoned)",
						fn.Name.Name, name)
				}
			}
			return true
		})
	})
	return nil
}

// declaresStickyField reports whether any struct in the package declares a
// field with a sticky-error name; packages without one are out of scope.
func declaresStickyField(pkg *Package) bool {
	found := false
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return !found
			}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					if stickyFields[name.Name] {
						found = true
					}
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// mentionsSticky reports whether the body references any sticky field name.
func mentionsSticky(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && stickyFields[id.Name] {
			found = true
		}
		return !found
	})
	return found
}
