// Package analysis is a dependency-free static-analysis framework for this
// repository: a package loader over go/parser + go/types + go/importer, a
// finding/suppression model, a golden-test harness, and the project-specific
// analyzers run by cmd/buglint. The analyzers mechanically enforce
// invariants that earlier PRs established in prose — lock ordering,
// cross-space guards, atomic-field discipline, hot-path allocation rules,
// atomic file publication, and sticky-error checks — so regressions surface
// in CI rather than in review. docs/ANALYZERS.md describes each check.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check. Run inspects a Pass's package and reports
// findings through it; returned errors abort the run (reserved for internal
// failures, not findings).
type Analyzer struct {
	// Name is the check name used in output, -checks, and
	// //buglint:ignore directives.
	Name string
	// Doc is a one-line description shown by buglint -list.
	Doc string
	// Run performs the check.
	Run func(*Pass) error
}

// A Pass couples one analyzer invocation to one loaded package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Pkg is the package under analysis (typechecked).
	Pkg      *Package
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Check:    p.Analyzer.Name,
		Pos:      pos,
		Position: p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Finding is one diagnostic produced by an analyzer (or by the
// suppression scanner itself, for malformed directives).
type Finding struct {
	// Check is the analyzer name, or "ignore" for directive problems.
	Check string
	// Pos is the token position the finding anchors to.
	Pos token.Pos
	// Position is Pos resolved through the package FileSet.
	Position token.Position
	// Message describes the violation.
	Message string
}

// String formats the finding as file:line:col: [check] message, the format
// buglint prints and golden tests match against.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Position.Filename, f.Position.Line, f.Position.Column, f.Check, f.Message)
}

// Run applies the analyzers to pkg in order, filters the results through
// //buglint:ignore directives found in the package, and returns the
// surviving findings sorted by position. Malformed directives (missing
// reason, unknown check name) are themselves returned as findings.
func Run(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	var raw []Finding
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg, findings: &raw}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	// A directive is well-formed when it names any registered check, not
	// just one enabled for this run: `buglint -checks renamesync` must not
	// flag the tree's crossspace suppressions as typos.
	known := make(map[string]bool, len(analyzers))
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	findings := applySuppressions(pkg, raw, known)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return findings[i].Check < findings[j].Check
	})
	return findings, nil
}

// ---- shared AST/type helpers used by several analyzers ----

// directiveIn reports whether the comment group contains the exact
// directive comment (e.g. "//bugdoc:hotpath"). Directive comments are
// excluded from CommentGroup.Text, so the raw list is scanned.
func directiveIn(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

// deref removes one level of pointer indirection.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// namedOf returns the defined type underlying t (through pointers and
// aliases), or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	n, _ := types.Unalias(deref(t)).(*types.Named)
	return n
}

// isPkgType reports whether t (through pointers) is the defined type
// pkgName.typeName, matching by package name rather than import path so
// golden fixtures can supply a stand-in package.
func isPkgType(t types.Type, pkgName, typeName string) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Name() == pkgName && obj.Name() == typeName
}

// calleeObj resolves the object a call expression invokes, or nil.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		return info.Uses[fun.Sel]
	}
	return nil
}

// isPkgFunc reports whether the call invokes a function from the package
// with the given import path (e.g. "sync/atomic", "fmt").
func isPkgFunc(info *types.Info, call *ast.CallExpr) (types.Object, string) {
	obj := calleeObj(info, call)
	if obj == nil || obj.Pkg() == nil {
		return nil, ""
	}
	return obj, obj.Pkg().Path()
}

// funcDocHas reports whether fn carries the directive in its doc comment.
func funcDocHas(fn *ast.FuncDecl, directive string) bool {
	return directiveIn(fn.Doc, directive)
}

// eachFuncDecl visits every function declaration with a body in the
// package, in file order.
func eachFuncDecl(pkg *Package, visit func(*ast.FuncDecl)) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				visit(fn)
			}
		}
	}
}

// recvNamed returns the defined type of a method's receiver, or nil for
// plain functions.
func recvNamed(info *types.Info, fn *ast.FuncDecl) *types.Named {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return nil
	}
	return namedOf(info.TypeOf(fn.Recv.List[0].Type))
}
