package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicMix enforces the discipline behind every lock-free structure in the
// repo (shard epochs, poisoning flags, sequence counters, telemetry): a
// variable or field that is ever accessed through sync/atomic must never be
// read or written plainly elsewhere, and a typed atomic.* value may only be
// used through its methods — never copied, compared, or assigned around.
// A single plain access reintroduces exactly the torn-read/lost-update race
// the atomic was bought to prevent.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "variables accessed via sync/atomic must never be accessed plainly",
	Run:  runAtomicMix,
}

// atomicMethods are the accessor methods of the typed sync/atomic wrappers.
var atomicMethods = map[string]bool{
	"Load": true, "Store": true, "Add": true, "Swap": true,
	"CompareAndSwap": true, "CompareAndSwapPointer": true, "Or": true, "And": true,
}

func runAtomicMix(pass *Pass) error {
	info := pass.Pkg.Info

	// Pass 1: collect every object passed by address to a sync/atomic
	// function, and remember the identifiers inside those calls so they
	// are not reported as plain uses in pass 2.
	atomicObjs := make(map[types.Object]bool)
	sanctioned := make(map[*ast.Ident]bool)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, path := isPkgFunc(info, call); path != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				if un, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && un.Op.String() == "&" {
					if obj := addressedObj(info, un.X); obj != nil {
						atomicObjs[obj] = true
					}
				}
				ast.Inspect(arg, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						sanctioned[id] = true
					}
					return true
				})
			}
			return true
		})
	}

	// Pass 2: report plain uses of pass-1 objects, and non-method uses of
	// typed atomic.* values.
	for _, f := range pass.Pkg.Files {
		parents := parentMap(f)
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj, ok := info.Uses[id].(*types.Var)
			if !ok {
				return true // only value uses matter, not type or func names
			}
			if atomicObjs[obj] && !sanctioned[id] {
				pass.Reportf(id.Pos(),
					"%s is accessed via sync/atomic elsewhere; plain access races with the atomic ones", obj.Name())
				return true
			}
			if isTypedAtomic(obj.Type()) && !usedViaAtomicMethod(info, parents, id) {
				pass.Reportf(id.Pos(),
					"%s is a typed atomic; use its Load/Store/Add/Swap methods, never the value directly", obj.Name())
			}
			return true
		})
	}
	return nil
}

// addressedObj resolves &X's operand to a variable or field object.
func addressedObj(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[x]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			return sel.Obj()
		}
	}
	return nil
}

// isTypedAtomic reports whether t is one of sync/atomic's typed wrappers
// (atomic.Int64, atomic.Bool, atomic.Pointer[T], ...).
func isTypedAtomic(t types.Type) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" &&
		!strings.HasSuffix(obj.Name(), "error") // everything but internal helpers
}

// usedViaAtomicMethod reports whether the identifier's use is as the base
// of an atomic method call — x in x.Load(), st.poisoned in
// st.poisoned.Store(true) — or has its address taken to hand the atomic to
// a helper (the pointee is still only reachable through methods).
func usedViaAtomicMethod(info *types.Info, parents map[ast.Node]ast.Node, id *ast.Ident) bool {
	// The value expression for the atomic: the ident itself, or the
	// selector that selects it as a field (possibly at the end of a
	// longer chain, like l.met.bytes).
	var value ast.Node = id
	if sel, ok := parents[id].(*ast.SelectorExpr); ok && sel.Sel == id {
		value = sel
	}
	switch p := parents[value].(type) {
	case *ast.SelectorExpr:
		if p.X == value && atomicMethods[p.Sel.Name] {
			call, ok := parents[p].(*ast.CallExpr)
			return ok && ast.Unparen(call.Fun) == ast.Expr(p)
		}
	case *ast.UnaryExpr:
		return p.Op.String() == "&"
	}
	return false
}

// parentMap builds a child-to-parent map for one file.
func parentMap(f *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
