package analysis

import (
	"go/ast"
	"go/types"
)

// hotpathDirective marks a function as allocation-free hot path. The
// annotated paths are the ones the PR 1/4 benchmarks hold to zero allocs:
// memoized lookups, the shard commit core, and the epoch query surface.
const hotpathDirective = "//bugdoc:hotpath"

// HotPath enforces the zero-alloc contract on functions annotated
// //bugdoc:hotpath: no fmt.* calls, no map allocation (make or literal),
// no closure literals, no conversion of a concrete value to an interface
// (explicitly, at a call argument, or in a return), and no string
// concatenation. Benchmarks catch these regressions only statistically;
// the annotation makes the contract a compile-gate.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "//bugdoc:hotpath functions may not call fmt, allocate maps/closures, box to interface, or concatenate strings",
	Run:  runHotPath,
}

func runHotPath(pass *Pass) error {
	info := pass.Pkg.Info
	eachFuncDecl(pass.Pkg, func(fn *ast.FuncDecl) {
		if !funcDocHas(fn, hotpathDirective) {
			return
		}
		var results *types.Tuple
		if sig, ok := info.TypeOf(fn.Name).(*types.Signature); ok {
			results = sig.Results()
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkHotCall(pass, info, n)
			case *ast.FuncLit:
				pass.Reportf(n.Pos(), "hot path allocates a closure")
				return false // don't descend: the closure body is cold
			case *ast.CompositeLit:
				if _, ok := types.Unalias(info.TypeOf(n)).Underlying().(*types.Map); ok {
					pass.Reportf(n.Pos(), "hot path allocates a map literal")
				}
			case *ast.BinaryExpr:
				if n.Op.String() == "+" && isStringType(info.TypeOf(n.X)) {
					pass.Reportf(n.Pos(), "hot path concatenates strings")
				}
			case *ast.AssignStmt:
				if n.Tok.String() == "+=" && len(n.Lhs) == 1 && isStringType(info.TypeOf(n.Lhs[0])) {
					pass.Reportf(n.Pos(), "hot path concatenates strings")
				}
			case *ast.ReturnStmt:
				checkHotReturn(pass, info, results, n)
			}
			return true
		})
	})
	return nil
}

// checkHotCall flags fmt.* calls, make(map...), explicit conversions to
// interface types, and concrete arguments passed to interface parameters.
func checkHotCall(pass *Pass, info *types.Info, call *ast.CallExpr) {
	if obj, path := isPkgFunc(info, call); obj != nil && path == "fmt" {
		pass.Reportf(call.Pos(), "hot path calls fmt.%s", obj.Name())
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "make" && len(call.Args) > 0 {
			if _, isMap := types.Unalias(info.TypeOf(call.Args[0])).Underlying().(*types.Map); isMap {
				pass.Reportf(call.Pos(), "hot path allocates a map with make")
			}
			return
		}
	}
	// Explicit conversion T(x) where T is an interface and x is concrete.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if boxes(info.TypeOf(call.Args[0]), tv.Type) {
			pass.Reportf(call.Pos(), "hot path converts a concrete value to an interface")
		}
		return
	}
	// Implicit conversion at an argument: concrete value, interface param.
	sig, ok := types.Unalias(info.TypeOf(call.Fun)).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if s, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < sig.Params().Len():
			pt = sig.Params().At(i).Type()
		}
		if pt != nil && boxes(info.TypeOf(arg), pt) {
			pass.Reportf(arg.Pos(), "hot path passes a concrete value to an interface parameter (boxing allocation)")
		}
	}
}

// checkHotReturn flags returning a concrete value from an interface-typed
// result (the classic `return myErr` boxing).
func checkHotReturn(pass *Pass, info *types.Info, results *types.Tuple, ret *ast.ReturnStmt) {
	if results == nil || len(ret.Results) != results.Len() {
		return
	}
	for i, res := range ret.Results {
		if boxes(info.TypeOf(res), results.At(i).Type()) {
			pass.Reportf(res.Pos(), "hot path returns a concrete value as an interface (boxing allocation)")
		}
	}
}

// boxes reports whether assigning a value of type from to a location of
// type to converts a concrete value to an interface. Untyped nil and
// values that are already interfaces never box.
func boxes(from, to types.Type) bool {
	if from == nil || to == nil {
		return false
	}
	if _, ok := types.Unalias(to).Underlying().(*types.Interface); !ok {
		return false
	}
	if b, ok := types.Unalias(from).(*types.Basic); ok && b.Info()&types.IsUntyped != 0 {
		return false // untyped constant or nil
	}
	if _, ok := types.Unalias(from).Underlying().(*types.Interface); ok {
		return false
	}
	return true
}

// isStringType reports whether t's underlying type is string.
func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
