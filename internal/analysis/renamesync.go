package analysis

import (
	"go/ast"
)

// publishDirective marks a function as an atomic-publication helper: the
// one place allowed to call os.Rename, and obligated to do the full
// tmp → fsync → rename → dirsync dance from PR 4/8.
const publishDirective = "//bugdoc:publish"

// RenameSync enforces atomic file publication: os.Rename may appear only
// inside functions annotated //bugdoc:publish, and such a function must
// fsync the temp file (a .Sync() call) before the rename and fsync the
// directory (a syncDir call) after it. A rename without those fsyncs can
// surface an empty or missing file after a crash even though the rename
// "succeeded" — the exact failure mode the provlog recovery tests inject.
var RenameSync = &Analyzer{
	Name: "renamesync",
	Doc:  "os.Rename only in //bugdoc:publish helpers, which must fsync file before and dir after",
	Run:  runRenameSync,
}

func runRenameSync(pass *Pass) error {
	info := pass.Pkg.Info
	eachFuncDecl(pass.Pkg, func(fn *ast.FuncDecl) {
		isPublish := funcDocHas(fn, publishDirective)
		var renames []*ast.CallExpr
		syncBefore, dirSyncAfter := false, false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if obj, path := isPkgFunc(info, call); obj != nil && path == "os" && obj.Name() == "Rename" {
				renames = append(renames, call)
				return true
			}
			switch callName(call) {
			case "Sync":
				if len(renames) == 0 {
					syncBefore = true
				}
			case "syncDir", "SyncDir":
				if len(renames) > 0 {
					dirSyncAfter = true
				}
			}
			return true
		})
		if !isPublish {
			for _, call := range renames {
				pass.Reportf(call.Pos(),
					"os.Rename outside a //bugdoc:publish helper; route publication through the annotated helper")
			}
			return
		}
		if len(renames) == 0 {
			return
		}
		if !syncBefore {
			pass.Reportf(renames[0].Pos(),
				"publish helper renames without fsyncing the temp file first")
		}
		if !dirSyncAfter {
			pass.Reportf(renames[len(renames)-1].Pos(),
				"publish helper renames without fsyncing the directory afterwards")
		}
	})
	return nil
}

// callName returns the bare name of the called function or method.
func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
