package analysis

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantRe matches one expectation inside a // want comment; expectations
// are quoted Go strings holding a regexp the finding message must match.
var wantRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// RunGolden loads the fixture package testdata/src/<fixture> with a
// fixture loader, runs the analyzer (suppressions applied, as in buglint),
// and matches the findings 1:1 against `// want "regexp"` comments: a
// finding must occur on every want line with a message matching the
// regexp, and no finding may occur on a line without one. Gutting a check
// therefore fails its golden test in both directions.
func RunGolden(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	ld := NewFixtureLoader("testdata/src")
	pkg, err := ld.Load(fixture)
	if err != nil {
		t.Fatalf("load fixture %s: %v", fixture, err)
	}
	findings, err := Run(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, fixture, err)
	}

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[string][]*want) // "file:line" -> expectations
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(c.Text), "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := pos.Filename + ":" + strconv.Itoa(pos.Line)
				for _, q := range wantRe.FindAllString(rest, -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", key, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}

	for _, f := range findings {
		key := f.Position.Filename + ":" + strconv.Itoa(f.Position.Line)
		claimed := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(f.Message) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected finding matching %q, got none", key, w.re)
			}
		}
	}
}
