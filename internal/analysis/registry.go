package analysis

// Analyzers returns all project analyzers in the order buglint runs them.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		LockOrder,
		CrossSpace,
		AtomicMix,
		HotPath,
		RenameSync,
		StickyErr,
	}
}
