package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestLockOrderGolden(t *testing.T)  { RunGolden(t, LockOrder, "lockorder") }
func TestCrossSpaceGolden(t *testing.T) { RunGolden(t, CrossSpace, "crossspace") }

// TestCrossSpaceFieldForm covers the in-package `in.space != other.space`
// guard spelling used by pipeline's own Instance methods.
func TestCrossSpaceFieldForm(t *testing.T) { RunGolden(t, CrossSpace, "pipeline") }
func TestAtomicMixGolden(t *testing.T)     { RunGolden(t, AtomicMix, "atomicmix") }
func TestHotPathGolden(t *testing.T)       { RunGolden(t, HotPath, "hotpath") }
func TestRenameSyncGolden(t *testing.T)    { RunGolden(t, RenameSync, "renamesync") }
func TestStickyErrGolden(t *testing.T)     { RunGolden(t, StickyErr, "stickyerr") }

// TestSuppressionRespected expects zero findings from a fixture whose
// violations all carry documented suppressions (line-above, trailing, and
// function-scope forms).
func TestSuppressionRespected(t *testing.T) { RunGolden(t, RenameSync, "suppress") }

// TestSuppressionReasonRequired checks that a reason-less directive keeps
// the violation alive and is itself reported, and that a directive naming
// an unknown check is reported.
func TestSuppressionReasonRequired(t *testing.T) {
	ld := NewFixtureLoader("testdata/src")
	pkg, err := ld.Load("suppressbad")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	findings, err := Run(pkg, []*Analyzer{RenameSync})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var gotViolations, gotNoReason, gotUnknown int
	for _, f := range findings {
		switch {
		case f.Check == "renamesync":
			gotViolations++
		case f.Check == "ignore" && strings.Contains(f.Message, "non-empty reason"):
			gotNoReason++
		case f.Check == "ignore" && strings.Contains(f.Message, "unknown check"):
			gotUnknown++
		default:
			t.Errorf("unexpected finding: %s", f)
		}
	}
	if gotViolations != 2 {
		t.Errorf("got %d surviving renamesync findings, want 2 (reason-less and mistyped directives must not suppress)", gotViolations)
	}
	if gotNoReason != 1 {
		t.Errorf("got %d missing-reason findings, want 1", gotNoReason)
	}
	if gotUnknown != 1 {
		t.Errorf("got %d unknown-check findings, want 1", gotUnknown)
	}
}

// TestRepoClean runs every analyzer over the whole module, mirroring the
// CI buglint gate: the tree must stay free of unsuppressed findings.
func TestRepoClean(t *testing.T) {
	root := filepath.Join("..", "..")
	dirs, err := ExpandPatterns([]string{root + "/..."})
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	ld, err := NewLoader(root)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	for _, dir := range dirs {
		pkg, err := ld.LoadDir(dir)
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		findings, err := Run(pkg, Analyzers())
		if err != nil {
			t.Fatalf("run %s: %v", dir, err)
		}
		for _, f := range findings {
			t.Errorf("%s", f)
		}
	}
}

// TestExpandPatterns spot-checks pattern expansion against this package.
func TestExpandPatterns(t *testing.T) {
	dirs, err := ExpandPatterns([]string{"."})
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	if len(dirs) != 1 {
		t.Fatalf("got %d dirs, want 1", len(dirs))
	}
	rec, err := ExpandPatterns([]string{filepath.Join("..", "..") + "/..."})
	if err != nil {
		t.Fatalf("expand recursive: %v", err)
	}
	foundSelf, foundFixture := false, false
	for _, d := range rec {
		if strings.HasSuffix(d, filepath.Join("internal", "analysis")) {
			foundSelf = true
		}
		if strings.Contains(d, "testdata") {
			foundFixture = true
		}
	}
	if !foundSelf {
		t.Errorf("recursive expansion missed internal/analysis: %v", rec)
	}
	if foundFixture {
		t.Errorf("recursive expansion descended into testdata: %v", rec)
	}
}
