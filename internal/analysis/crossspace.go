package analysis

import (
	"go/ast"
	"go/types"
)

// CrossSpace enforces the guard PR 5 added after a real panic: any exported
// method that takes a pipeline.Instance and can reach per-space indexes —
// i.e. its receiver holds a `space *pipeline.Space` field, directly or
// through one same-package struct field (Epoch reaches Store's) — must
// compare the instance's Space() against that field before indexing.
// Instances carry interned codes that are only meaningful within one space,
// so an unguarded cross-space ref reads (or corrupts) another space's
// buckets.
var CrossSpace = &Analyzer{
	Name: "crossspace",
	Doc:  "exported methods taking a pipeline.Instance must guard ref.Space() != st.space",
	Run:  runCrossSpace,
}

func runCrossSpace(pass *Pass) error {
	info := pass.Pkg.Info
	eachFuncDecl(pass.Pkg, func(fn *ast.FuncDecl) {
		if !fn.Name.IsExported() {
			return
		}
		recv := recvNamed(info, fn)
		if recv == nil || !holdsSpaceField(recv, true) {
			return
		}
		for _, param := range instanceParams(info, fn) {
			if !spaceGuarded(info, fn, param) {
				pass.Reportf(fn.Name.Pos(),
					"exported method %s takes pipeline.Instance %s but never compares %s.Space() against the receiver's space field",
					fn.Name.Name, param.Name(), param.Name())
			}
		}
	})
	return nil
}

// holdsSpaceField reports whether the defined struct type has a field
// space *pipeline.Space, or (when indirect is true) a field whose
// same-package struct type does — one level deep, which is how Epoch
// reaches the Store's space. The one-level, same-package limit keeps
// consumers in other packages (e.g. the executor, which owns no index)
// out of scope.
func holdsSpaceField(n *types.Named, indirect bool) bool {
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "space" && isPkgType(f.Type(), "pipeline", "Space") {
			return true
		}
		if !indirect {
			continue
		}
		if inner := namedOf(f.Type()); inner != nil &&
			inner.Obj().Pkg() == n.Obj().Pkg() && holdsSpaceField(inner, false) {
			return true
		}
	}
	return false
}

// instanceParams returns the parameters of fn typed pipeline.Instance or
// *pipeline.Instance. Slice parameters are out of scope: their guards live
// inside per-element validation, which this analyzer cannot attribute to a
// parameter object.
func instanceParams(info *types.Info, fn *ast.FuncDecl) []*types.Var {
	var params []*types.Var
	for _, field := range fn.Type.Params.List {
		if !isPkgType(info.TypeOf(field.Type), "pipeline", "Instance") {
			continue
		}
		for _, name := range field.Names {
			if obj, ok := info.Defs[name].(*types.Var); ok {
				params = append(params, obj)
			}
		}
	}
	return params
}

// spaceGuarded reports whether fn's body contains a comparison with the
// parameter's space on one side — `p.Space()`, or the in-package field
// form `p.space` that pipeline's own methods use — and a selector ending
// in a field named "space" on the other: the `ref.Space() != st.space`
// (or == form) guard.
func spaceGuarded(info *types.Info, fn *ast.FuncDecl, param *types.Var) bool {
	guarded := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if guarded {
			return false
		}
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || (bin.Op.String() != "!=" && bin.Op.String() != "==") {
			return true
		}
		if (isSpaceRefOn(info, bin.X, param) && endsInSpaceField(bin.Y)) ||
			(isSpaceRefOn(info, bin.Y, param) && endsInSpaceField(bin.X)) {
			guarded = true
			return false
		}
		return true
	})
	return guarded
}

// isSpaceRefOn matches `p.Space()` or `p.space` where p resolves to param.
func isSpaceRefOn(info *types.Info, e ast.Expr, param *types.Var) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		if call, isCall := ast.Unparen(e).(*ast.CallExpr); isCall {
			sel, ok = ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Space" {
				return false
			}
		} else {
			return false
		}
	} else if sel.Sel.Name != "space" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && info.Uses[id] == param
}

// endsInSpaceField matches any selector chain whose final field is named
// space (st.space, e.st.space, ...).
func endsInSpaceField(e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "space"
}
