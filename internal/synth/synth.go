// Package synth generates the synthetic pipeline benchmark of Section 5.1:
// parameter spaces with 3-15 parameters of 5-30 values each (ordinal or
// categorical with probability 1/2), and planted definitive root causes
// built as conjunctions of parameter-comparator-value triples with
// comparators drawn from C = {=, <=, >, !=}, optionally extended with a
// second conjunct to form a disjunction.
//
// Each generated pipeline carries its ground truth: the failure DNF and the
// set of minimal definitive root causes R(CP) computed exactly with the
// region algebra. Degenerate draws — unsatisfiable causes, causes covering
// so much of the space that no disjoint succeeding instance can exist, or
// conjuncts subsumed by one another — are rejected and re-sampled.
package synth

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/exec"
	"repro/internal/pipeline"
	"repro/internal/predicate"
)

// Scenario selects the root-cause shape of Section 5.1.
type Scenario uint8

const (
	// SingleTriple plants one parameter-comparator-value triple.
	SingleTriple Scenario = iota + 1
	// SingleConjunction plants one conjunction of 2-4 triples.
	SingleConjunction
	// Disjunction plants a disjunction of two conjunctions.
	Disjunction
)

// String names the scenario as in the Figure 2 captions.
func (sc Scenario) String() string {
	switch sc {
	case SingleTriple:
		return "single parameter-comparator-value"
	case SingleConjunction:
		return "single conjunction"
	case Disjunction:
		return "disjunction of conjunctions"
	default:
		return fmt.Sprintf("Scenario(%d)", uint8(sc))
	}
}

// Config bounds the generated spaces; zero values take the paper's ranges.
type Config struct {
	MinParams int // default 3
	MaxParams int // default 15
	MinValues int // default 5
	MaxValues int // default 30
	// MaxFailFraction rejects causes covering more than this fraction of
	// the space (default 0.5), guaranteeing succeeding instances exist.
	MaxFailFraction float64
}

func (c Config) withDefaults() Config {
	if c.MinParams <= 0 {
		c.MinParams = 3
	}
	if c.MaxParams <= 0 {
		c.MaxParams = 15
	}
	if c.MinValues <= 0 {
		c.MinValues = 5
	}
	if c.MaxValues <= 0 {
		c.MaxValues = 30
	}
	if c.MaxFailFraction <= 0 {
		c.MaxFailFraction = 0.5
	}
	return c
}

// Pipeline is one synthetic benchmark pipeline: a parameter space, the
// planted failure condition, and the exact ground-truth minimal definitive
// root causes.
type Pipeline struct {
	Space *pipeline.Space
	Truth predicate.DNF
	// Minimal is R(CP): the minimal definitive root causes, one per
	// planted conjunct (each conjunct is minimized and verified minimal).
	Minimal []predicate.Conjunction
}

// Oracle returns the black-box evaluation: an instance fails exactly when
// it satisfies the planted failure condition.
func (p *Pipeline) Oracle() exec.Oracle {
	return exec.OracleFunc(func(_ context.Context, in pipeline.Instance) (pipeline.Outcome, error) {
		if p.Truth.Satisfied(in) {
			return pipeline.Fail, nil
		}
		return pipeline.Succeed, nil
	})
}

// SampleFailing draws a uniformly random instance from a random conjunct's
// failure region. The benchmark protocol seeds each debugging problem with
// at least one failing run — the paper's setting hands BugDoc previously
// run instances "some of which crash" — and rejection sampling alone cannot
// find failures when the planted region is a sliver of a large space.
func (p *Pipeline) SampleFailing(r *rand.Rand) (pipeline.Instance, bool) {
	if len(p.Truth) == 0 {
		return pipeline.Instance{}, false
	}
	reg, err := predicate.RegionOf(p.Space, p.Truth[r.Intn(len(p.Truth))])
	if err != nil || reg.Empty() {
		return pipeline.Instance{}, false
	}
	vals := make([]pipeline.Value, p.Space.Len())
	for i := 0; i < p.Space.Len(); i++ {
		allowed := reg.AllowedValues(p.Space.At(i).Name)
		vals[i] = allowed[r.Intn(len(allowed))]
	}
	in, err := pipeline.NewInstance(p.Space, vals)
	if err != nil {
		return pipeline.Instance{}, false
	}
	return in, true
}

// Generate draws one pipeline for the scenario. It retries internally until
// a non-degenerate pipeline is produced; the randomness source r makes it
// deterministic per seed.
func Generate(r *rand.Rand, cfg Config, sc Scenario) (*Pipeline, error) {
	cfg = cfg.withDefaults()
	for attempt := 0; attempt < 1000; attempt++ {
		p, ok := generateOnce(r, cfg, sc)
		if ok {
			return p, nil
		}
	}
	return nil, fmt.Errorf("synth: could not generate a non-degenerate %v pipeline", sc)
}

// GenerateSpace draws a parameter space alone (used by scalability sweeps
// that need an exact parameter count).
func GenerateSpace(r *rand.Rand, nParams, minValues, maxValues int) *pipeline.Space {
	params := make([]pipeline.Parameter, nParams)
	for i := range params {
		nVals := minValues + r.Intn(maxValues-minValues+1)
		name := fmt.Sprintf("p%02d", i)
		// Ordinal or categorical with probability 1/2 each.
		if r.Intn(2) == 0 {
			dom := make([]pipeline.Value, nVals)
			for j := range dom {
				dom[j] = pipeline.Ord(float64(j + 1))
			}
			params[i] = pipeline.Parameter{Name: name, Kind: pipeline.Ordinal, Domain: dom}
		} else {
			dom := make([]pipeline.Value, nVals)
			for j := range dom {
				dom[j] = pipeline.Cat(fmt.Sprintf("%s_v%02d", name, j+1))
			}
			params[i] = pipeline.Parameter{Name: name, Kind: pipeline.Categorical, Domain: dom}
		}
	}
	return pipeline.MustSpace(params...)
}

func generateOnce(r *rand.Rand, cfg Config, sc Scenario) (*Pipeline, bool) {
	nParams := cfg.MinParams + r.Intn(cfg.MaxParams-cfg.MinParams+1)
	s := GenerateSpace(r, nParams, cfg.MinValues, cfg.MaxValues)

	var truth predicate.DNF
	switch sc {
	case SingleTriple:
		truth = predicate.DNF{sampleConjunction(r, s, 1, 1)}
	case SingleConjunction:
		truth = predicate.DNF{sampleConjunction(r, s, 2, min(4, nParams))}
	case Disjunction:
		truth = predicate.DNF{
			sampleConjunction(r, s, 1, min(3, nParams)),
			sampleConjunction(r, s, 1, min(3, nParams)),
		}
	default:
		return nil, false
	}
	return validate(s, truth, cfg)
}

// SampleCause draws one conjunction per the paper's recipe (steps 1-3 of
// Section 5.1); exported for tests and ablation benches.
func SampleCause(r *rand.Rand, s *pipeline.Space, minLen, maxLen int) predicate.Conjunction {
	return sampleConjunction(r, s, minLen, maxLen)
}

func sampleConjunction(r *rand.Rand, s *pipeline.Space, minLen, maxLen int) predicate.Conjunction {
	if maxLen > s.Len() {
		maxLen = s.Len()
	}
	if minLen > maxLen {
		minLen = maxLen
	}
	// Step 1: uniformly sample a non-empty subset of parameters.
	k := minLen
	if maxLen > minLen {
		k += r.Intn(maxLen - minLen + 1)
	}
	perm := r.Perm(s.Len())[:k]
	var c predicate.Conjunction
	for _, pi := range perm {
		p := s.At(pi)
		// Step 2: uniformly sample a value from the parameter's domain.
		v := p.Domain[r.Intn(len(p.Domain))]
		// Step 3: uniformly sample a comparator from C = {=, <=, >, !=};
		// categorical parameters only admit {=, !=}.
		var cmp predicate.Comparator
		if p.Kind == pipeline.Ordinal {
			cmp = []predicate.Comparator{predicate.Eq, predicate.Le, predicate.Gt, predicate.Neq}[r.Intn(4)]
		} else {
			cmp = []predicate.Comparator{predicate.Eq, predicate.Neq}[r.Intn(2)]
		}
		c = append(c, predicate.T(p.Name, cmp, v))
	}
	return c.Canonical()
}

// validate rejects degenerate pipelines and computes the ground truth.
func validate(s *pipeline.Space, truth predicate.DNF, cfg Config) (*Pipeline, bool) {
	total, exact := s.NumInstances()
	var failCount float64
	var minimal []predicate.Conjunction
	var regions []predicate.Region
	for _, c := range truth {
		reg, err := predicate.RegionOf(s, c)
		if err != nil || reg.Empty() {
			return nil, false
		}
		// Minimize the planted conjunct against the full truth; reject when
		// minimization collapses it (conjunct subsumed by the other).
		m, err := predicate.Minimize(s, c, truth)
		if err != nil || len(m) == 0 {
			return nil, false
		}
		mr, err := predicate.RegionOf(s, m)
		if err != nil {
			return nil, false
		}
		for _, prev := range regions {
			if prev.Equal(mr) {
				return nil, false // duplicate causes
			}
		}
		minimal = append(minimal, m)
		regions = append(regions, mr)
		n, _ := reg.Count()
		failCount += float64(n)
	}
	// Overlap makes this an upper bound, which is fine for rejection.
	if exact && failCount > cfg.MaxFailFraction*float64(total) {
		return nil, false
	}
	// Cross-subsumption check: no minimal cause may imply another conjunct
	// of the truth (that would make the "two causes" really one).
	if len(truth) > 1 {
		for i := range regions {
			for j := range regions {
				if i != j && regions[i].SubsetOf(regions[j]) {
					return nil, false
				}
			}
		}
	}
	return &Pipeline{Space: s, Truth: truth.Canonical(), Minimal: minimal}, true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
