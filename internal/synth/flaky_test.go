package synth

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/predicate"
)

func flakyTestPipeline(t *testing.T, seed int64) *Pipeline {
	t.Helper()
	p, err := Generate(rand.New(rand.NewSource(seed)),
		Config{MinParams: 3, MaxParams: 4, MinValues: 4, MaxValues: 6}, SingleTriple)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestFlakyOracleDeterministicPerSeed pins the reproducibility contract:
// two oracles with equal seeds over the same pipeline lie identically —
// the same (instance, trial ordinal) pairs flip — and a different seed
// corrupts a different trial set.
func TestFlakyOracleDeterministicPerSeed(t *testing.T) {
	p := flakyTestPipeline(t, 4)
	ctx := context.Background()
	run := func(seed uint64) []pipeline.Outcome {
		o := p.FlakyOracle(SymmetricNoise(0.3, seed))
		var outs []pipeline.Outcome
		r := rand.New(rand.NewSource(9))
		for i := 0; i < 40; i++ {
			in := p.Space.RandomInstance(r)
			for trial := 0; trial < 3; trial++ {
				out, err := o.Run(ctx, in)
				if err != nil {
					t.Fatal(err)
				}
				outs = append(outs, out)
			}
		}
		return outs
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d differs across equal-seed runs: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds corrupted identically across 120 trials")
	}
}

// TestFlakyOracleBiasDirections checks that each rate corrupts only its
// own verdict direction: FalseFailRate flips truly succeeding instances
// only, FalsePassRate truly failing ones only.
func TestFlakyOracleBiasDirections(t *testing.T) {
	p := flakyTestPipeline(t, 5)
	ctx := context.Background()
	cases := []struct {
		name       string
		cfg        FlakyConfig
		mayCorrupt pipeline.Outcome // the true verdict the noise may touch
	}{
		{"false-fail", FlakyConfig{FalseFailRate: 0.5, Seed: 7}, pipeline.Succeed},
		{"false-pass", FlakyConfig{FalsePassRate: 0.5, Seed: 7}, pipeline.Fail},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			o := p.FlakyOracle(c.cfg)
			r := rand.New(rand.NewSource(11))
			flipped := false
			for i := 0; i < 200; i++ {
				in := p.Space.RandomInstance(r)
				truth := pipeline.Succeed
				if p.Truth.Satisfied(in) {
					truth = pipeline.Fail
				}
				out, err := o.Run(ctx, in)
				if err != nil {
					t.Fatal(err)
				}
				if out != truth {
					flipped = true
					if truth != c.mayCorrupt {
						t.Fatalf("%s noise flipped a truly %v instance", c.name, truth)
					}
				}
			}
			if !flipped && o.Flips() == 0 {
				t.Fatalf("%s noise at rate 0.5 never corrupted in 200 trials", c.name)
			}
		})
	}
}

// TestFlakyOracleRegionGate confirms the per-parameter noise region:
// instances outside the conjunction are never corrupted.
func TestFlakyOracleRegionGate(t *testing.T) {
	p := flakyTestPipeline(t, 6)
	ctx := context.Background()
	// Gate the noise to one concrete value of the first parameter.
	par := p.Space.At(0)
	region := predicate.Conjunction{predicate.T(par.Name, predicate.Eq, par.Domain[0])}
	if err := region.Validate(p.Space); err != nil {
		t.Fatal(err)
	}
	cfg := SymmetricNoise(0.8, 21)
	cfg.Region = region
	o := p.FlakyOracle(cfg)
	r := rand.New(rand.NewSource(13))
	corruptInside := false
	for i := 0; i < 300; i++ {
		in := p.Space.RandomInstance(r)
		truth := pipeline.Succeed
		if p.Truth.Satisfied(in) {
			truth = pipeline.Fail
		}
		out, err := o.Run(ctx, in)
		if err != nil {
			t.Fatal(err)
		}
		if out != truth {
			if !region.Satisfied(in) {
				t.Fatalf("instance outside the noise region was corrupted: %v", in)
			}
			corruptInside = true
		}
	}
	if !corruptInside {
		t.Fatal("no corruption inside the noise region in 300 trials at rate 0.8")
	}
	if o.Calls() != 300 {
		t.Fatalf("Calls = %d, want 300", o.Calls())
	}
}

// TestFlakyOracleTrialCounting checks the per-instance trial ordinal that
// keys the corruption draws: it advances per call and is queryable.
func TestFlakyOracleTrialCounting(t *testing.T) {
	p := flakyTestPipeline(t, 8)
	o := p.FlakyOracle(SymmetricNoise(0.1, 3))
	in := p.Space.RandomInstance(rand.New(rand.NewSource(1)))
	for i := 0; i < 5; i++ {
		if _, err := o.Run(context.Background(), in); err != nil {
			t.Fatal(err)
		}
	}
	if got := o.TrialsFor(in); got != 5 {
		t.Fatalf("TrialsFor = %d, want 5", got)
	}
	if got := o.Calls(); got != 5 {
		t.Fatalf("Calls = %d, want 5", got)
	}
}
