package synth

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/pipeline"
	"repro/internal/predicate"
)

// FlakyConfig shapes a non-deterministic oracle over a synthetic pipeline:
// each trial's true verdict (from the planted failure DNF) is corrupted
// with a configurable probability, direction bias, and scope. The zero
// value corrupts nothing — a FlakyOracle with the zero config behaves
// exactly like Pipeline.Oracle.
type FlakyConfig struct {
	// FalsePassRate is the per-trial probability that a truly failing
	// instance reports Succeed (the bug hides). FalseFailRate is the
	// per-trial probability that a truly succeeding instance reports Fail
	// (an unrelated crash). Setting only one of them biases the noise
	// fully toward false passes or false fails; SymmetricNoise sets both.
	FalsePassRate float64
	FalseFailRate float64
	// Region restricts the noise to instances satisfying the conjunction
	// (a per-parameter noise region: e.g. "flaky only when p03 <= 4");
	// nil means every instance is subject to noise.
	Region predicate.Conjunction
	// Seed keys the corruption draws. Two oracles with the same seed over
	// the same pipeline lie identically on the same (instance, trial)
	// pairs, so flaky sessions are reproducible.
	Seed uint64
}

// SymmetricNoise is the unbiased config: every trial is corrupted with
// probability rate regardless of its true verdict.
func SymmetricNoise(rate float64, seed uint64) FlakyConfig {
	return FlakyConfig{FalsePassRate: rate, FalseFailRate: rate, Seed: seed}
}

// FlakyOracle wraps an oracle's true verdicts with deterministic per-trial
// noise. The n-th trial of an instance draws its corruption from a hash of
// (seed, instance hash, n), so a verdict sequence depends only on how many
// times the instance has been asked — not on wall clock, goroutine
// interleaving across instances, or other instances' trials — which makes
// quorum-resolution tests reproducible even under a racing worker pool.
// Safe for concurrent use (given a concurrency-safe inner oracle).
type FlakyOracle struct {
	inner exec.Oracle
	cfg   FlakyConfig

	calls atomic.Int64
	flips atomic.Int64

	mu     sync.Mutex
	trials *pipeline.InstanceMap[int32] // per-instance trial counter
}

// NoisyOracle wraps any oracle with the config's deterministic noise.
func NoisyOracle(inner exec.Oracle, cfg FlakyConfig) *FlakyOracle {
	return &FlakyOracle{inner: inner, cfg: cfg, trials: pipeline.NewInstanceMap[int32](64)}
}

// FlakyOracle builds the noisy oracle for the pipeline; the pipeline's
// Truth and Minimal remain the ground truth the debugging session is
// expected to recover despite the noise.
func (p *Pipeline) FlakyOracle(cfg FlakyConfig) *FlakyOracle {
	return NoisyOracle(p.Oracle(), cfg)
}

// Run implements exec.Oracle.
func (o *FlakyOracle) Run(ctx context.Context, in pipeline.Instance) (pipeline.Outcome, error) {
	truth, err := o.inner.Run(ctx, in)
	if err != nil {
		return truth, err
	}
	o.mu.Lock()
	n, _ := o.trials.Get(in)
	o.trials.Put(in, n+1)
	o.mu.Unlock()
	o.calls.Add(1)

	if o.cfg.Region != nil && !o.cfg.Region.Satisfied(in) {
		return truth, nil
	}
	rate := o.cfg.FalseFailRate
	if truth == pipeline.Fail {
		rate = o.cfg.FalsePassRate
	}
	if rate > 0 && unitDraw(o.cfg.Seed, in.Hash(), uint64(n)) < rate {
		o.flips.Add(1)
		if truth == pipeline.Fail {
			return pipeline.Succeed, nil
		}
		return pipeline.Fail, nil
	}
	return truth, nil
}

// Calls returns the total number of oracle trials run, across all
// instances — the quantity the torture harness bounds by
// MaxTrials × distinct instances.
func (o *FlakyOracle) Calls() int64 { return o.calls.Load() }

// Flips returns how many trials reported a corrupted verdict.
func (o *FlakyOracle) Flips() int64 { return o.flips.Load() }

// TrialsFor returns how many trials have been run for one instance.
func (o *FlakyOracle) TrialsFor(in pipeline.Instance) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	n, _ := o.trials.Get(in)
	return int(n)
}

// GenerateFlaky draws one non-degenerate pipeline for the scenario (as
// Generate) and pairs it with a flaky oracle over it. The pipeline's
// exact ground truth rides along, so harnesses can assert that quorum
// resolution still recovers the planted causes under noise.
func GenerateFlaky(r *rand.Rand, cfg Config, sc Scenario, noise FlakyConfig) (*Pipeline, *FlakyOracle, error) {
	p, err := Generate(r, cfg, sc)
	if err != nil {
		return nil, nil, err
	}
	return p, p.FlakyOracle(noise), nil
}

// unitDraw maps (seed, instance, trial) to a uniform draw in [0, 1) via a
// splitmix64 finalizer chain; it is the oracle's only randomness, so two
// runs with equal seeds corrupt identically.
func unitDraw(seed, inst, trial uint64) float64 {
	x := splitmix64(seed ^ splitmix64(inst^splitmix64(trial)))
	return float64(x>>11) / (1 << 53)
}

// splitmix64 is the SplitMix64 finalizer (Steele et al.), a strong
// integer mixer with no state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

var _ exec.Oracle = (*FlakyOracle)(nil)
