package synth

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/predicate"
)

func TestGenerateSpaceShape(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		n := 3 + r.Intn(13)
		s := GenerateSpace(r, n, 5, 30)
		if s.Len() != n {
			t.Fatalf("Len = %d, want %d", s.Len(), n)
		}
		for i := 0; i < s.Len(); i++ {
			p := s.At(i)
			if len(p.Domain) < 5 || len(p.Domain) > 30 {
				t.Fatalf("parameter %q has %d values, want 5..30", p.Name, len(p.Domain))
			}
			if p.Kind != pipeline.Ordinal && p.Kind != pipeline.Categorical {
				t.Fatalf("parameter %q has kind %v", p.Name, p.Kind)
			}
		}
	}
}

func TestGenerateSpaceMixesKinds(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	ordinals, categoricals := 0, 0
	for trial := 0; trial < 20; trial++ {
		s := GenerateSpace(r, 10, 5, 10)
		for i := 0; i < s.Len(); i++ {
			if s.At(i).Kind == pipeline.Ordinal {
				ordinals++
			} else {
				categoricals++
			}
		}
	}
	// 200 parameters at p=1/2 each: both counts must be far from zero.
	if ordinals < 50 || categoricals < 50 {
		t.Fatalf("kind mix = %d ordinal, %d categorical; expected roughly even", ordinals, categoricals)
	}
}

func TestGenerateScenarios(t *testing.T) {
	for _, sc := range []Scenario{SingleTriple, SingleConjunction, Disjunction} {
		t.Run(sc.String(), func(t *testing.T) {
			r := rand.New(rand.NewSource(3))
			for trial := 0; trial < 20; trial++ {
				p, err := Generate(r, Config{MaxParams: 8, MaxValues: 10}, sc)
				if err != nil {
					t.Fatal(err)
				}
				switch sc {
				case SingleTriple:
					if len(p.Truth) != 1 || len(p.Truth[0]) != 1 {
						t.Fatalf("truth = %v, want one triple", p.Truth)
					}
				case SingleConjunction:
					if len(p.Truth) != 1 || len(p.Truth[0]) < 2 {
						t.Fatalf("truth = %v, want one conjunction of >= 2 triples", p.Truth)
					}
				case Disjunction:
					if len(p.Truth) != 2 {
						t.Fatalf("truth = %v, want two conjuncts", p.Truth)
					}
				}
				if len(p.Minimal) != len(p.Truth) {
					t.Fatalf("ground truth has %d minimal causes for %d conjuncts", len(p.Minimal), len(p.Truth))
				}
				// Every ground-truth cause must actually be minimal definitive.
				for _, m := range p.Minimal {
					minimal, err := predicate.Minimal(p.Space, m, p.Truth)
					if err != nil {
						t.Fatal(err)
					}
					if !minimal {
						t.Fatalf("planted cause %v is not minimal for %v", m, p.Truth)
					}
				}
			}
		})
	}
}

func TestGeneratedPipelineHasBothOutcomes(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		p, err := Generate(r, Config{MaxParams: 6, MaxValues: 8}, Disjunction)
		if err != nil {
			t.Fatal(err)
		}
		oracle := p.Oracle()
		sawFail, sawSucceed := false, false
		sample := rand.New(rand.NewSource(int64(trial)))
		for i := 0; i < 400 && !(sawFail && sawSucceed); i++ {
			in := p.Space.RandomInstance(sample)
			out, err := oracle.Run(context.Background(), in)
			if err != nil {
				t.Fatal(err)
			}
			switch out {
			case pipeline.Fail:
				sawFail = true
			case pipeline.Succeed:
				sawSucceed = true
			}
		}
		if !sawSucceed {
			t.Fatalf("trial %d: no succeeding instance sampled (cause too broad): %v", trial, p.Truth)
		}
		if !sawFail {
			// Rare for narrow causes; verify one exists by construction.
			reg, err := predicate.RegionOf(p.Space, p.Truth[0])
			if err != nil || reg.Empty() {
				t.Fatalf("trial %d: truth %v has empty region (err %v)", trial, p.Truth, err)
			}
		}
	}
}

func TestOracleMatchesTruth(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	p, err := Generate(r, Config{MaxParams: 5, MaxValues: 6}, SingleConjunction)
	if err != nil {
		t.Fatal(err)
	}
	oracle := p.Oracle()
	sample := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		in := p.Space.RandomInstance(sample)
		out, err := oracle.Run(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		want := pipeline.Succeed
		if p.Truth.Satisfied(in) {
			want = pipeline.Fail
		}
		if out != want {
			t.Fatalf("oracle(%v) = %v, want %v", in, out, want)
		}
	}
}

func TestSampleCauseRespectsKinds(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	s := GenerateSpace(r, 10, 5, 10)
	for trial := 0; trial < 100; trial++ {
		c := SampleCause(r, s, 1, 4)
		if len(c) == 0 {
			t.Fatal("empty cause sampled")
		}
		if err := c.Validate(s); err != nil {
			t.Fatalf("sampled cause %v invalid: %v", c, err)
		}
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	gen := func() string {
		r := rand.New(rand.NewSource(42))
		p, err := Generate(r, Config{}, Disjunction)
		if err != nil {
			t.Fatal(err)
		}
		return p.Space.String() + " | " + p.Truth.String()
	}
	if gen() != gen() {
		t.Fatal("generation must be deterministic per seed")
	}
}
