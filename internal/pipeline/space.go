package pipeline

import (
	"fmt"
	"math"
	"sort"
)

// Parameter describes one manipulable parameter of a pipeline: its name,
// the kind of values it takes, and its known finite domain (the paper's
// "parameter-value universe" U_p, possibly expanded with declared values).
type Parameter struct {
	Name   string
	Kind   Kind
	Domain []Value
}

// Space is an ordered set of parameters with unique names. It corresponds
// to the universe U = {(p, U_p)} of Definition 1. The order of parameters
// is fixed at construction and gives instances a canonical layout.
//
// A Space is immutable after construction except through AddToDomain, which
// implements the paper's "the initial parameter-value universe can be
// expanded". Spaces are safe for concurrent reads; domain expansion must
// not race with readers.
type Space struct {
	params []Parameter
	index  map[string]int
	intern *internTable
}

// NewSpace validates and assembles a parameter space. It requires at least
// one parameter, unique non-empty names, at least one domain value per
// parameter, and domain values matching the declared kind. Domains are
// deduplicated and sorted (numerically for ordinals, lexicographically for
// categoricals) so that equal spaces have identical layouts.
func NewSpace(params ...Parameter) (*Space, error) {
	if len(params) == 0 {
		return nil, fmt.Errorf("pipeline: space needs at least one parameter")
	}
	s := &Space{
		params: make([]Parameter, len(params)),
		index:  make(map[string]int, len(params)),
	}
	for i, p := range params {
		if p.Name == "" {
			return nil, fmt.Errorf("pipeline: parameter %d has empty name", i)
		}
		if _, dup := s.index[p.Name]; dup {
			return nil, fmt.Errorf("pipeline: duplicate parameter name %q", p.Name)
		}
		if p.Kind != Ordinal && p.Kind != Categorical {
			return nil, fmt.Errorf("pipeline: parameter %q has invalid kind %v", p.Name, p.Kind)
		}
		if len(p.Domain) == 0 {
			return nil, fmt.Errorf("pipeline: parameter %q has empty domain", p.Name)
		}
		dom := make([]Value, 0, len(p.Domain))
		seen := make(map[Value]bool, len(p.Domain))
		for _, v := range p.Domain {
			if v.Kind() != p.Kind {
				return nil, fmt.Errorf("pipeline: parameter %q (%v) has %v domain value %v",
					p.Name, p.Kind, v.Kind(), v)
			}
			if v.Kind() == Ordinal && (math.IsNaN(v.Num()) || math.IsInf(v.Num(), 0)) {
				return nil, fmt.Errorf("pipeline: parameter %q has non-finite domain value", p.Name)
			}
			if !seen[v] {
				seen[v] = true
				dom = append(dom, v)
			}
		}
		sort.Slice(dom, func(a, b int) bool { return dom[a].Less(dom[b]) })
		s.params[i] = Parameter{Name: p.Name, Kind: p.Kind, Domain: dom}
		s.index[p.Name] = i
	}
	// Pre-intern the domains so domain values get the low codes in sorted
	// domain order, deterministically across runs.
	s.intern = newInternTable(len(s.params))
	for i, p := range s.params {
		for _, v := range p.Domain {
			s.intern.code(i, v)
		}
	}
	return s, nil
}

// MustSpace is NewSpace that panics on error; intended for tests, examples,
// and statically-known spaces.
func MustSpace(params ...Parameter) *Space {
	s, err := NewSpace(params...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of parameters |P|.
func (s *Space) Len() int { return len(s.params) }

// At returns the i-th parameter. The returned Parameter shares its Domain
// slice with the space; callers must not mutate it.
func (s *Space) At(i int) Parameter { return s.params[i] }

// Names returns the parameter names in space order.
func (s *Space) Names() []string {
	names := make([]string, len(s.params))
	for i, p := range s.params {
		names[i] = p.Name
	}
	return names
}

// Index returns the position of the named parameter and whether it exists.
func (s *Space) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// Domain returns the domain of the named parameter, or nil if unknown.
// The returned slice is shared; callers must not mutate it.
func (s *Space) Domain(name string) []Value {
	i, ok := s.index[name]
	if !ok {
		return nil
	}
	return s.params[i].Domain
}

// DomainIndex returns the position of v inside parameter i's domain,
// or -1 if v is not a domain value.
func (s *Space) DomainIndex(i int, v Value) int {
	for j, d := range s.params[i].Domain {
		if d == v {
			return j
		}
	}
	return -1
}

// AddToDomain expands the universe of the named parameter with v,
// implementing Definition 1's expandable universe. Adding an existing value
// is a no-op. It fails if the parameter is unknown or v has the wrong kind.
func (s *Space) AddToDomain(name string, v Value) error {
	i, ok := s.index[name]
	if !ok {
		return fmt.Errorf("pipeline: unknown parameter %q", name)
	}
	p := &s.params[i]
	if v.Kind() != p.Kind {
		return fmt.Errorf("pipeline: parameter %q (%v) cannot hold %v value %v",
			name, p.Kind, v.Kind(), v)
	}
	if s.DomainIndex(i, v) >= 0 {
		return nil
	}
	p.Domain = append(p.Domain, v)
	sort.Slice(p.Domain, func(a, b int) bool { return p.Domain[a].Less(p.Domain[b]) })
	s.intern.code(i, v)
	return nil
}

// NumInstances returns the size of the full Cartesian space of instances
// and whether that size fit in a uint64 (exact=false means overflow).
func (s *Space) NumInstances() (n uint64, exact bool) {
	n = 1
	for _, p := range s.params {
		d := uint64(len(p.Domain))
		if d != 0 && n > math.MaxUint64/d {
			return math.MaxUint64, false
		}
		n *= d
	}
	return n, true
}

// String summarizes the space as "name(kind:|domain|), ...".
func (s *Space) String() string {
	out := ""
	for i, p := range s.params {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s(%v:%d)", p.Name, p.Kind, len(p.Domain))
	}
	return out
}
