package pipeline

import "math/rand"

// RandomInstance draws an instance uniformly from the Cartesian product of
// the parameter domains.
func (s *Space) RandomInstance(r *rand.Rand) Instance {
	vals := make([]Value, s.Len())
	for i := range vals {
		dom := s.params[i].Domain
		vals[i] = dom[r.Intn(len(dom))]
	}
	return newInstance(s, vals)
}

// RandomDisjoint draws an instance uniformly among those disjoint from ref
// (different value on every parameter, Definition 6). It returns ok=false
// when some parameter has a single-value domain, in which case no disjoint
// instance exists.
func (s *Space) RandomDisjoint(r *rand.Rand, ref Instance) (Instance, bool) {
	vals := make([]Value, s.Len())
	for i := range vals {
		dom := s.params[i].Domain
		refIdx := s.DomainIndex(i, ref.Value(i))
		n := len(dom)
		if refIdx >= 0 {
			n--
		}
		if n == 0 {
			return Instance{}, false
		}
		j := r.Intn(n)
		if refIdx >= 0 && j >= refIdx {
			j++
		}
		vals[i] = dom[j]
	}
	return newInstance(s, vals), true
}

// Enumerate calls yield for every instance in the Cartesian product, in
// lexicographic domain order, stopping early if yield returns false.
// It is intended for small spaces; callers should consult NumInstances.
func (s *Space) Enumerate(yield func(Instance) bool) {
	idx := make([]int, s.Len())
	vals := make([]Value, s.Len())
	for {
		for i, j := range idx {
			vals[i] = s.params[i].Domain[j]
		}
		cp := make([]Value, len(vals))
		copy(cp, vals)
		if !yield(newInstance(s, cp)) {
			return
		}
		// Advance the mixed-radix counter.
		i := s.Len() - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(s.params[i].Domain) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return
		}
	}
}
