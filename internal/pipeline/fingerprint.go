package pipeline

import "fmt"

// Fingerprint returns a stable 64-bit identity of the space's structure:
// parameter names, kinds, and declared domains, hashed in space order with
// FNV-1a over a canonical byte rendering. Unlike interned codes — runtime
// artifacts assigned in observation order — the fingerprint depends only on
// how the space was declared, so it is identical across processes that
// construct the space from the same spec. The durable provenance log stores
// it in every segment header and refuses to replay a log into a space with
// a different fingerprint.
//
// The fingerprint is computed from the current domains: AddToDomain changes
// it. Durable consumers capture it once, when the log is created, before
// any expansion.
func (s *Space) Fingerprint() uint64 {
	h := uint64(fnvOffset64)
	byte1 := func(b byte) { h = (h ^ uint64(b)) * fnvPrime64 }
	str := func(x string) {
		for i := 0; i < len(x); i++ {
			byte1(x[i])
		}
		byte1(0)
	}
	for _, p := range s.params {
		str(p.Name)
		byte1(byte(p.Kind))
		for _, v := range p.Domain {
			str(v.key())
		}
		byte1(0xff)
	}
	return h
}

// Intern assigns (or retrieves) the dense code of v for parameter i. It is
// how the durable provenance log replays its value dictionary: dictionary
// entries are applied in their original assignment order, so a freshly
// constructed identical space reproduces the recorded codes exactly, and a
// mismatch between the returned and recorded code signals that the space
// and the log diverged.
func (s *Space) Intern(i int, v Value) uint32 { return s.codeOf(i, v) }

// InstanceFromCodes builds an instance directly from an interned code
// vector, bypassing value re-interning — the log-replay fast path. Every
// code must already be assigned (see NumCodes).
func (s *Space) InstanceFromCodes(codes []uint32) (Instance, error) {
	out := make([]Instance, 1)
	if err := s.InstancesFromCodes(codes, out); err != nil {
		return Instance{}, err
	}
	return out[0], nil
}

// InstancesFromCodes builds len(out) instances from flat, a row-major
// matrix of len(out) × Len interned codes, resolving every value under one
// lock and sharing two backing arrays across the whole batch — the bulk
// form of InstanceFromCodes that log replay uses to amortize lock and
// allocator traffic over thousands of records. Every code must already be
// assigned (see NumCodes).
func (s *Space) InstancesFromCodes(flat []uint32, out []Instance) error {
	p := s.Len()
	if len(flat) != len(out)*p {
		return fmt.Errorf("pipeline: %d codes for %d instances over %d parameters",
			len(flat), len(out), p)
	}
	codes := make([]uint32, len(flat))
	copy(codes, flat)
	vals := make([]Value, len(flat))
	for !s.intern.valuesBatch(codes, vals, p) {
		for r := 0; r < len(out); r++ {
			for i := 0; i < p; i++ {
				if c := flat[r*p+i]; int(c) >= s.intern.size(i) {
					return fmt.Errorf("pipeline: parameter %q has no interned code %d",
						s.At(i).Name, c)
				}
			}
		}
		// Every code checked out individually, so a concurrent intern
		// landed between the failed batch and the re-validation; the next
		// batch attempt sees it.
	}
	for r := range out {
		rc := codes[r*p : (r+1)*p : (r+1)*p]
		rv := vals[r*p : (r+1)*p : (r+1)*p]
		out[r] = Instance{space: s, vals: rv, codes: rc, hash: hashCodes(rc)}
	}
	return nil
}

// InstancesAdoptingCodes builds len(out) code-only instances over flat, a
// row-major matrix of len(out) × Len interned codes, adopting flat itself
// as the shared backing of every code vector — the caller hands over
// ownership and must not modify it afterwards. hashes[r] must be the
// precomputed identity hash of row r (HashCodes); bulk loaders compute it
// while decoding, and this constructor trusts it rather than hashing
// again.
//
// Unlike InstancesFromCodes, no Value slice is materialized: the instances
// resolve values through the intern table on demand (see Instance), so
// adopting a checkpoint of any size costs O(1) per instance beyond the
// code validation. Every code must already be assigned (see NumCodes).
func (s *Space) InstancesAdoptingCodes(flat []uint32, hashes []uint64, out []Instance) error {
	if len(hashes) != len(out) {
		return fmt.Errorf("pipeline: %d hashes for %d instances", len(hashes), len(out))
	}
	return s.AdoptInstances(flat, hashes, func(r int, in Instance) { out[r] = in })
}

// AdoptInstances is the streaming form of InstancesAdoptingCodes: emit is
// called once per row, in row order, with the code-only instance over
// flat's r-th row — bulk loaders that place instances somewhere other
// than a plain slice (a provenance record table, say) skip the
// intermediate instance array entirely. Ownership and hash semantics are
// those of InstancesAdoptingCodes.
func (s *Space) AdoptInstances(flat []uint32, hashes []uint64, emit func(r int, in Instance)) error {
	p := s.Len()
	if p == 0 || len(flat)%p != 0 {
		return fmt.Errorf("pipeline: %d codes over %d parameters", len(flat), p)
	}
	return s.AdoptInstancesRange(flat, hashes, 0, len(flat)/p, emit)
}

// AdoptInstancesRange is the range form of AdoptInstances: it adopts only
// rows [lo, hi) of the code matrix, calling emit once per row in row order.
// The range touches nothing outside its rows, so parallel loaders split a
// matrix into disjoint ranges and adopt them concurrently — each goroutine
// owns one range, and the shared flat/hashes slices are only read.
// Ownership and hash semantics are those of InstancesAdoptingCodes.
func (s *Space) AdoptInstancesRange(flat []uint32, hashes []uint64, lo, hi int, emit func(r int, in Instance)) error {
	p := s.Len()
	if p == 0 || len(flat)%p != 0 {
		return fmt.Errorf("pipeline: %d codes over %d parameters", len(flat), p)
	}
	n := len(flat) / p
	if len(hashes) != n {
		return fmt.Errorf("pipeline: %d hashes for %d instances", len(hashes), n)
	}
	if lo < 0 || hi < lo || hi > n {
		return fmt.Errorf("pipeline: row range [%d, %d) of %d instances", lo, hi, n)
	}
	limits := make([]uint32, p)
	for i := 0; i < p; i++ {
		limits[i] = uint32(s.intern.size(i))
	}
	for r := lo; r < hi; r++ {
		row := flat[r*p : (r+1)*p : (r+1)*p]
		for i, c := range row {
			if c >= limits[i] {
				return fmt.Errorf("pipeline: parameter %q has no interned code %d",
					s.At(i).Name, c)
			}
		}
		emit(r, Instance{space: s, codes: row, hash: hashes[r]})
	}
	return nil
}
