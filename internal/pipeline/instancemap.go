package pipeline

// InstanceMap is a hash map keyed by Instance identity: entries are
// bucketed by the precomputed Hash and confirmed with Equal, so probes
// perform no allocations and no string work. It centralizes the
// "hash bucket + Equal collision confirm" invariant for every component
// that memoizes per-instance state (the provenance store, the replay
// oracle, test-sampling dedup). The zero value is not usable; call
// NewInstanceMap. Not safe for concurrent use; callers lock.
//
// The first entry of each hash bucket lives inline in the primary map;
// only genuine 64-bit hash collisions spill into overflow buckets, so the
// common-case Put allocates nothing beyond map growth.
type InstanceMap[V any] struct {
	prim map[uint64]instanceEntry[V]
	over map[uint64][]instanceEntry[V] // lazily allocated; collisions are rare
	n    int
}

type instanceEntry[V any] struct {
	in  Instance
	val V
}

// NewInstanceMap returns an empty map with space for n entries.
func NewInstanceMap[V any](n int) *InstanceMap[V] {
	return &InstanceMap[V]{prim: make(map[uint64]instanceEntry[V], n)}
}

// Get returns the value stored for in, if any.
//
//bugdoc:hotpath
func (m *InstanceMap[V]) Get(in Instance) (V, bool) {
	if e, ok := m.prim[in.Hash()]; ok {
		if e.in.Equal(in) {
			return e.val, true
		}
		for _, e := range m.over[in.Hash()] {
			if e.in.Equal(in) {
				return e.val, true
			}
		}
	}
	var zero V
	return zero, false
}

// Put stores v for in, replacing any existing value, and reports whether
// the entry is new.
func (m *InstanceMap[V]) Put(in Instance, v V) bool {
	h := in.Hash()
	e, ok := m.prim[h]
	if !ok {
		m.prim[h] = instanceEntry[V]{in: in, val: v}
		m.n++
		return true
	}
	if e.in.Equal(in) {
		e.val = v
		m.prim[h] = e
		return false
	}
	bucket := m.over[h]
	for i := range bucket {
		if bucket[i].in.Equal(in) {
			bucket[i].val = v
			return false
		}
	}
	if m.over == nil {
		m.over = make(map[uint64][]instanceEntry[V])
	}
	m.over[h] = append(bucket, instanceEntry[V]{in: in, val: v})
	m.n++
	return true
}

// Len returns the number of entries.
func (m *InstanceMap[V]) Len() int { return m.n }
