package pipeline

import (
	"math/rand"
	"sync"
	"testing"
)

// randomInternSpace builds a space mixing ordinal and categorical
// parameters with small domains, so random instances collide often.
func randomInternSpace(t *testing.T, r *rand.Rand) *Space {
	t.Helper()
	n := 2 + r.Intn(3)
	params := make([]Parameter, n)
	for i := range params {
		name := string(rune('a' + i))
		if r.Intn(2) == 0 {
			dom := make([]Value, 2+r.Intn(3))
			for j := range dom {
				dom[j] = Ord(float64(j + 1))
			}
			params[i] = Parameter{Name: name, Kind: Ordinal, Domain: dom}
		} else {
			labels := []string{"x", "y", "z", "w"}
			dom := make([]Value, 2+r.Intn(3))
			for j := range dom {
				dom[j] = Cat(labels[j])
			}
			params[i] = Parameter{Name: name, Kind: Categorical, Domain: dom}
		}
	}
	return MustSpace(params...)
}

// valueEqual is the pre-interning definition of instance equality: same
// space, identical values under ==.
func valueEqual(a, b Instance) bool {
	if a.Space() != b.Space() || a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if a.Value(i) != b.Value(i) {
			return false
		}
	}
	return true
}

// TestInternIdentityProperties checks, over randomized instance pairs, that
// the interned representation is a faithful identity: Equal(a,b) holds
// exactly when the values coincide, exactly when the code vectors coincide,
// and Equal implies hash equality.
func TestInternIdentityProperties(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		s := randomInternSpace(t, r)
		ins := make([]Instance, 40)
		for i := range ins {
			ins[i] = s.RandomInstance(r)
			// Occasionally leave the declared domain (the universe is
			// expandable) so interning covers out-of-domain values too.
			if r.Intn(4) == 0 {
				j := r.Intn(s.Len())
				if s.At(j).Kind == Ordinal {
					ins[i] = ins[i].With(j, Ord(float64(100+r.Intn(3))))
				} else {
					ins[i] = ins[i].With(j, Cat("extra"))
				}
			}
		}
		for i := range ins {
			for j := range ins {
				a, b := ins[i], ins[j]
				wantEq := valueEqual(a, b)
				if got := a.Equal(b); got != wantEq {
					t.Fatalf("Equal(%v, %v) = %v, value-wise %v", a, b, got, wantEq)
				}
				codesEq := true
				for k := 0; k < a.Len(); k++ {
					if a.Code(k) != b.Code(k) {
						codesEq = false
						break
					}
				}
				if codesEq != wantEq {
					t.Fatalf("code vectors of %v and %v agree=%v, want %v", a, b, codesEq, wantEq)
				}
				if wantEq && a.Hash() != b.Hash() {
					t.Fatalf("equal instances %v hash %x vs %x", a, a.Hash(), b.Hash())
				}
				if wantEq != (a.Key() == b.Key()) {
					t.Fatalf("Key agreement for %v and %v diverges from Equal", a, b)
				}
				// Disjointness and diff counts must match the value-wise
				// definitions.
				wantDis, wantDiff := true, 0
				for k := 0; k < a.Len(); k++ {
					if a.Value(k) == b.Value(k) {
						wantDis = false
					} else {
						wantDiff++
					}
				}
				if got := a.DisjointFrom(b); got != wantDis {
					t.Fatalf("DisjointFrom(%v, %v) = %v, want %v", a, b, got, wantDis)
				}
				if got := a.DiffCount(b); got != wantDiff {
					t.Fatalf("DiffCount(%v, %v) = %d, want %d", a, b, got, wantDiff)
				}
			}
		}
	}
}

// TestInternCodesAreDense checks codes are dense per parameter and that
// InternedValue inverts Code.
func TestInternCodesAreDense(t *testing.T) {
	s := MustSpace(
		Parameter{Name: "a", Kind: Ordinal, Domain: []Value{Ord(1), Ord(2)}},
		Parameter{Name: "b", Kind: Categorical, Domain: []Value{Cat("x"), Cat("y")}},
	)
	in := MustInstance(s, Ord(2), Cat("y"))
	for i := 0; i < s.Len(); i++ {
		if int(in.Code(i)) >= s.NumCodes(i) {
			t.Fatalf("code %d of parameter %d out of range %d", in.Code(i), i, s.NumCodes(i))
		}
		if got := s.InternedValue(i, in.Code(i)); got != in.Value(i) {
			t.Fatalf("InternedValue(%d, %d) = %v, want %v", i, in.Code(i), got, in.Value(i))
		}
	}
	// Out-of-domain values extend the code range.
	before := s.NumCodes(0)
	ext := in.With(0, Ord(99))
	if s.NumCodes(0) != before+1 || int(ext.Code(0)) != before {
		t.Fatalf("out-of-domain value: NumCodes %d->%d, code %d", before, s.NumCodes(0), ext.Code(0))
	}
	// Re-interning the same value is stable.
	again := in.With(0, Ord(99))
	if again.Code(0) != ext.Code(0) {
		t.Fatalf("re-interned code %d != %d", again.Code(0), ext.Code(0))
	}
}

// TestInternConcurrent exercises concurrent instance construction over one
// space (parallel oracle dispatch builds instances from worker goroutines).
// Run under -race this checks the intern table's synchronization.
func TestInternConcurrent(t *testing.T) {
	s := MustSpace(
		Parameter{Name: "a", Kind: Ordinal, Domain: []Value{Ord(1), Ord(2), Ord(3)}},
		Parameter{Name: "b", Kind: Categorical, Domain: []Value{Cat("x"), Cat("y")}},
	)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				in := s.RandomInstance(r)
				ood := in.With(0, Ord(float64(10+r.Intn(5))))
				if in.Equal(ood) {
					t.Error("distinct instances compare equal")
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
}
