package pipeline

import "testing"

func TestFlakyPolicyResolve(t *testing.T) {
	p := FlakyPolicy{MinTrials: 3, MaxTrials: 7, Quorum: 3}
	cases := []struct {
		succ, fail int
		want       Outcome
		done       bool
	}{
		// Below MinTrials nothing resolves, however lopsided.
		{0, 0, OutcomeUnknown, false},
		{2, 0, OutcomeUnknown, false},
		{0, 2, OutcomeUnknown, false},
		// At MinTrials a quorum with strict majority resolves.
		{3, 0, Succeed, true},
		{0, 3, Fail, true},
		{2, 1, OutcomeUnknown, false}, // majority but no quorum
		{3, 2, Succeed, true},
		{3, 3, OutcomeUnknown, false}, // quorum but no majority
		{4, 3, Succeed, true},
		{3, 4, Fail, true},
		// At MaxTrials a simple majority suffices; an exact tie is
		// inconclusive.
		{4, 2, Succeed, true},
		{2, 4, Fail, true},
		{2, 5, Fail, true},
		// 7 trials, tie impossible with odd cap — use 1:1 quorum-less
		// shapes below for the tie.
	}
	for _, c := range cases {
		out, done := p.Resolve(c.succ, c.fail)
		if done != c.done || (done && out != c.want) {
			t.Errorf("Resolve(%d, %d) = %v, %v; want %v, %v", c.succ, c.fail, out, done, c.want, c.done)
		}
	}

	// Even MaxTrials can deadlock in an exact tie.
	tie := FlakyPolicy{MinTrials: 2, MaxTrials: 4, Quorum: 2}
	if out, done := tie.Resolve(2, 2); !done || out != OutcomeInconclusive {
		t.Fatalf("Resolve(2, 2) under %v = %v, %v; want inconclusive, true", tie, out, done)
	}
	// Quorum short of the cap resolves early...
	if out, done := tie.Resolve(2, 0); !done || out != Succeed {
		t.Fatalf("Resolve(2, 0) = %v, %v; want succeed, true", out, done)
	}
	// ...but a split below the cap keeps trialling.
	if _, done := tie.Resolve(1, 1); done {
		t.Fatal("Resolve(1, 1) resolved below MaxTrials without a quorum")
	}
}

func TestFlakyPolicyEnabledAndValidate(t *testing.T) {
	var zero FlakyPolicy
	if zero.Enabled() {
		t.Fatal("zero policy reports enabled")
	}
	if err := zero.Validate(); err != nil {
		t.Fatalf("zero policy invalid: %v", err)
	}
	ok := FlakyPolicy{MinTrials: 3, MaxTrials: 7, Quorum: 3}
	if !ok.Enabled() {
		t.Fatalf("%v reports disabled", ok)
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("%v invalid: %v", ok, err)
	}
	bad := []FlakyPolicy{
		{MinTrials: 0, MaxTrials: 5, Quorum: 2},
		{MinTrials: 6, MaxTrials: 5, Quorum: 2},
		{MinTrials: 1, MaxTrials: 5, Quorum: 0},
		{MinTrials: 1, MaxTrials: 5, Quorum: 6},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an invalid policy", p)
		}
	}
}

func TestFlakyPolicyString(t *testing.T) {
	p := FlakyPolicy{MinTrials: 3, MaxTrials: 7, Quorum: 4}
	if got := p.String(); got != "3:7:4" {
		t.Fatalf("String() = %q, want 3:7:4", got)
	}
}
