package pipeline

import "fmt"

// FlakyPolicy controls repeated-trial evaluation of non-deterministic
// oracles. A disabled policy (MaxTrials <= 1, including the zero value)
// means classic deterministic evaluation: one trial decides the outcome
// and none of the quorum machinery is touched.
//
// With an enabled policy an instance is re-dispatched until its votes
// resolve (see Resolve) or MaxTrials trials have been spent. Each trial
// costs one budget unit, mirroring the paper's cost model where every
// pipeline execution is the unit of work.
type FlakyPolicy struct {
	// MinTrials is the minimum number of trials before an outcome may
	// resolve by quorum. At least 1 when enabled.
	MinTrials int
	// MaxTrials caps the trials spent on one instance. The policy is
	// enabled iff MaxTrials > 1.
	MaxTrials int
	// Quorum is the vote count an outcome needs to win before MaxTrials
	// is reached. At MaxTrials the resolution falls back to simple
	// majority (exact ties resolve to OutcomeInconclusive).
	Quorum int
}

// Enabled reports whether the policy asks for repeated trials at all.
func (p FlakyPolicy) Enabled() bool { return p.MaxTrials > 1 }

// Validate checks the policy's internal consistency. The zero value (and
// any disabled policy) is always valid.
func (p FlakyPolicy) Validate() error {
	if !p.Enabled() {
		return nil
	}
	if p.MinTrials < 1 {
		return fmt.Errorf("pipeline: flaky policy MinTrials %d < 1", p.MinTrials)
	}
	if p.MinTrials > p.MaxTrials {
		return fmt.Errorf("pipeline: flaky policy MinTrials %d > MaxTrials %d", p.MinTrials, p.MaxTrials)
	}
	if p.Quorum < 1 {
		return fmt.Errorf("pipeline: flaky policy Quorum %d < 1", p.Quorum)
	}
	if p.Quorum > p.MaxTrials {
		return fmt.Errorf("pipeline: flaky policy Quorum %d > MaxTrials %d", p.Quorum, p.MaxTrials)
	}
	return nil
}

// Resolve decides whether succ succeed-votes and fail fail-votes settle
// the instance's outcome under the policy. The resolution invariants:
//
//   - never resolves before MinTrials votes are in;
//   - before MaxTrials, an outcome resolves only by strict-majority
//     quorum (>= Quorum votes AND more votes than the opposition);
//   - at MaxTrials the simple majority wins, and an exact tie resolves
//     to OutcomeInconclusive.
//
// Votes are refused once a resolution holds (see provenance.Store
// AddTrial), so a resolved outcome can never be flipped by a late trial.
func (p FlakyPolicy) Resolve(succ, fail int) (Outcome, bool) {
	n := succ + fail
	if n >= p.MinTrials {
		if succ >= p.Quorum && succ > fail {
			return Succeed, true
		}
		if fail >= p.Quorum && fail > succ {
			return Fail, true
		}
	}
	if n >= p.MaxTrials {
		switch {
		case succ > fail:
			return Succeed, true
		case fail > succ:
			return Fail, true
		default:
			return OutcomeInconclusive, true
		}
	}
	return OutcomeUnknown, false
}

// String renders the policy in the MIN:MAX:QUORUM form the bugdoc CLI
// -trials flag accepts.
func (p FlakyPolicy) String() string {
	return fmt.Sprintf("%d:%d:%d", p.MinTrials, p.MaxTrials, p.Quorum)
}
