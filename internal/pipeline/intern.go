package pipeline

import (
	"math"
	"sync"
)

// Value interning. Every Space carries a table assigning each observed
// Value a dense uint32 code per parameter. Instances cache their code
// vector and a 64-bit FNV-1a hash of it at construction, which makes
// identity operations (Equal, DisjointFrom, DiffCount, map lookups in the
// provenance store and the executor) integer comparisons with zero
// allocations; the string Key() survives only for codecs and display.
//
// Codes are runtime artifacts of one Space: they are assigned in first-
// intern order (domain values first, in sorted domain order) and are only
// comparable between values of the same parameter of the same Space. The
// durable provenance log may persist code vectors, but only alongside a
// dictionary of (parameter, code, value) assignments replayed in order
// through Space.Intern, which reproduces the exact assignment sequence (see
// internal/provlog).

// internKey is the canonical map key for interning a Value. Ordinals are
// keyed by their bit pattern with -0 collapsed into +0 (so interning agrees
// with ==) and all NaNs collapsed into one code (so an instance carrying
// NaN still equals itself, matching the canonical Key() rendering).
type internKey struct {
	kind Kind
	bits uint64
	str  string
}

// canonicalNaN is the quiet NaN all NaN payloads intern as.
var canonicalNaN = math.Float64bits(math.NaN())

func makeInternKey(v Value) internKey {
	if v.kind == Ordinal {
		n := v.num
		var bits uint64
		switch {
		case n != n:
			bits = canonicalNaN
		case n == 0:
			bits = 0
		default:
			bits = math.Float64bits(n)
		}
		return internKey{kind: Ordinal, bits: bits}
	}
	return internKey{kind: v.kind, str: v.str}
}

// internTable is the per-space value table. Interning happens on every
// instance construction, which may run concurrently (parallel oracle
// dispatch), so the table is internally synchronized; lookups of
// already-interned values take only a read lock.
type internTable struct {
	mu    sync.RWMutex
	codes []map[internKey]uint32 // per parameter: value -> dense code
	vals  [][]Value              // per parameter: code -> value
}

func newInternTable(nParams int) *internTable {
	return &internTable{
		codes: make([]map[internKey]uint32, nParams),
		vals:  make([][]Value, nParams),
	}
}

// code returns the dense code for value v of parameter i, interning it on
// first sight.
func (t *internTable) code(i int, v Value) uint32 {
	k := makeInternKey(v)
	t.mu.RLock()
	c, ok := t.codes[i][k]
	t.mu.RUnlock()
	if ok {
		return c
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.codes[i][k]; ok {
		return c
	}
	if t.codes[i] == nil {
		t.codes[i] = make(map[internKey]uint32)
	}
	c = uint32(len(t.vals[i]))
	t.codes[i][k] = c
	t.vals[i] = append(t.vals[i], v)
	return c
}

// size returns the number of codes assigned so far for parameter i.
func (t *internTable) size(i int) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.vals[i])
}

// value returns the Value interned as code c of parameter i.
func (t *internTable) value(i int, c uint32) Value {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.vals[i][c]
}

// valuesBatch resolves rows of p codes (one per parameter) into dst under a
// single read lock — the log-replay fast path, which would otherwise pay
// two lock round-trips per parameter per record. It reports false when any
// code is unassigned, leaving dst partially written.
func (t *internTable) valuesBatch(codes []uint32, dst []Value, p int) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for r := 0; r+p <= len(codes); r += p {
		for i := 0; i < p; i++ {
			c := codes[r+i]
			if int(c) >= len(t.vals[i]) {
				return false
			}
			dst[r+i] = t.vals[i][c]
		}
	}
	return true
}

// NumCodes returns how many distinct values of parameter i have been
// interned so far (domain values plus any observed out-of-domain values).
// Codes for parameter i are exactly 0..NumCodes(i)-1, so columnar consumers
// (the provenance index, the decision-tree split counter) can size dense
// arrays by it. The count only grows.
func (s *Space) NumCodes(i int) int { return s.intern.size(i) }

// InternedValue returns the Value that was assigned code c for parameter i.
// It panics if c was never assigned.
func (s *Space) InternedValue(i int, c uint32) Value { return s.intern.value(i, c) }

// codeOf interns v for parameter i and returns its dense code.
func (s *Space) codeOf(i int, v Value) uint32 { return s.intern.code(i, v) }

// FNV-1a over the little-endian bytes of the code vector.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// HashCodes returns the hash an Instance over this code vector carries
// (Instance.Hash): FNV-1a over the little-endian bytes of the codes. Bulk
// loaders (the provenance checkpoint reader) use it to compute instance
// hashes straight from decoded code rows, before any Instance exists.
func HashCodes(codes []uint32) uint64 { return hashCodes(codes) }

func hashCodes(codes []uint32) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range codes {
		h = (h ^ uint64(c&0xff)) * fnvPrime64
		h = (h ^ uint64((c>>8)&0xff)) * fnvPrime64
		h = (h ^ uint64((c>>16)&0xff)) * fnvPrime64
		h = (h ^ uint64(c>>24)) * fnvPrime64
	}
	return h
}
