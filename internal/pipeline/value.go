// Package pipeline defines the data model for computational pipelines:
// typed parameter values, parameter spaces, and pipeline instances
// (assignments of one value per parameter), following the formalism of
// Section 3 of the BugDoc paper (Lourenço, Freire, Shasha; SIGMOD 2020).
//
// A pipeline is treated as a black box: the only observable structure is
// its parameter space and, for each executed instance, a binary outcome
// (Succeed or Fail) produced by an evaluation procedure.
//
// Values are interned per Space: each observed value gets a dense uint32
// code per parameter, and instances cache their code vector plus a
// precomputed hash (see intern.go), so instance identity operations are
// allocation-free integer comparisons and columnar consumers (the
// provenance index, decision-tree split counting) can use dense arrays
// keyed by code.
package pipeline

import (
	"fmt"
	"strconv"
)

// Kind discriminates the two value types the paper's model supports:
// ordinal values (numbers, with a total order) and categorical values
// (opaque labels, equality only).
type Kind uint8

const (
	// KindInvalid is the zero Kind; it is never valid in a parameter.
	KindInvalid Kind = iota
	// Ordinal values are numeric and totally ordered.
	Ordinal
	// Categorical values are opaque labels supporting only (in)equality.
	Categorical
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case Ordinal:
		return "ordinal"
	case Categorical:
		return "categorical"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single parameter value: either an ordinal (float64) or a
// categorical (string). Values are comparable with ==; two values are equal
// exactly when they have the same kind and the same payload. The zero Value
// is invalid and reports Kind() == KindInvalid.
type Value struct {
	kind Kind
	num  float64
	str  string
}

// Ord returns an ordinal value holding x.
func Ord(x float64) Value { return Value{kind: Ordinal, num: x} }

// Cat returns a categorical value holding label s.
func Cat(s string) Value { return Value{kind: Categorical, str: s} }

// Kind reports the kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsValid reports whether v was built by Ord or Cat.
func (v Value) IsValid() bool { return v.kind == Ordinal || v.kind == Categorical }

// Num returns the numeric payload. It panics unless v is ordinal, since
// silently returning 0 would corrupt comparisons.
func (v Value) Num() float64 {
	if v.kind != Ordinal {
		panic("pipeline: Num called on non-ordinal value " + v.String())
	}
	return v.num
}

// Str returns the label payload. It panics unless v is categorical.
func (v Value) Str() string {
	if v.kind != Categorical {
		panic("pipeline: Str called on non-categorical value " + v.String())
	}
	return v.str
}

// Less reports whether v orders strictly before w. Ordinal values compare
// numerically. Categorical values compare lexicographically; this gives
// deterministic orderings (for canonical forms) but carries no semantic
// meaning, and predicates never use it for categoricals.
// Values of different kinds order Ordinal < Categorical.
func (v Value) Less(w Value) bool {
	if v.kind != w.kind {
		return v.kind < w.kind
	}
	if v.kind == Ordinal {
		return v.num < w.num
	}
	return v.str < w.str
}

// String renders the value for humans: ordinals in shortest float form,
// categoricals quoted.
func (v Value) String() string {
	switch v.kind {
	case Ordinal:
		return strconv.FormatFloat(v.num, 'g', -1, 64)
	case Categorical:
		return strconv.Quote(v.str)
	default:
		return "<invalid>"
	}
}

// key renders the value canonically for instance keys. The forms for the
// two kinds cannot collide because categorical keys always start with '"'.
func (v Value) key() string {
	if v.kind == Ordinal {
		return strconv.FormatFloat(v.num, 'g', -1, 64)
	}
	return strconv.Quote(v.str)
}
