package pipeline

import (
	"math"
	"strings"
	"testing"
)

func ordDomain(vals ...float64) []Value {
	out := make([]Value, len(vals))
	for i, v := range vals {
		out[i] = Ord(v)
	}
	return out
}

func catDomain(vals ...string) []Value {
	out := make([]Value, len(vals))
	for i, v := range vals {
		out[i] = Cat(v)
	}
	return out
}

func testSpace(t *testing.T) *Space {
	t.Helper()
	s, err := NewSpace(
		Parameter{Name: "p1", Kind: Ordinal, Domain: ordDomain(1, 2, 3, 4)},
		Parameter{Name: "p2", Kind: Categorical, Domain: catDomain("a", "b", "c")},
		Parameter{Name: "p3", Kind: Ordinal, Domain: ordDomain(10, 20)},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSpaceValidation(t *testing.T) {
	cases := []struct {
		name   string
		params []Parameter
		want   string
	}{
		{"empty", nil, "at least one parameter"},
		{"noName", []Parameter{{Kind: Ordinal, Domain: ordDomain(1)}}, "empty name"},
		{"dupName", []Parameter{
			{Name: "x", Kind: Ordinal, Domain: ordDomain(1)},
			{Name: "x", Kind: Ordinal, Domain: ordDomain(2)},
		}, "duplicate"},
		{"badKind", []Parameter{{Name: "x", Domain: ordDomain(1)}}, "invalid kind"},
		{"emptyDomain", []Parameter{{Name: "x", Kind: Ordinal}}, "empty domain"},
		{"kindMismatch", []Parameter{{Name: "x", Kind: Ordinal, Domain: catDomain("a")}}, "domain value"},
		{"nan", []Parameter{{Name: "x", Kind: Ordinal, Domain: []Value{Ord(math.NaN())}}}, "non-finite"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewSpace(c.params...)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("NewSpace error = %v, want containing %q", err, c.want)
			}
		})
	}
}

func TestSpaceDomainSortedDeduped(t *testing.T) {
	s, err := NewSpace(Parameter{Name: "x", Kind: Ordinal, Domain: ordDomain(3, 1, 3, 2, 1)})
	if err != nil {
		t.Fatal(err)
	}
	dom := s.Domain("x")
	want := ordDomain(1, 2, 3)
	if len(dom) != len(want) {
		t.Fatalf("domain = %v, want %v", dom, want)
	}
	for i := range dom {
		if dom[i] != want[i] {
			t.Fatalf("domain = %v, want %v", dom, want)
		}
	}
}

func TestSpaceLookups(t *testing.T) {
	s := testSpace(t)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	i, ok := s.Index("p2")
	if !ok || i != 1 {
		t.Fatalf("Index(p2) = %d, %v", i, ok)
	}
	if _, ok := s.Index("nope"); ok {
		t.Fatal("Index must report missing parameters")
	}
	if got := s.At(1).Name; got != "p2" {
		t.Fatalf("At(1).Name = %q", got)
	}
	if d := s.Domain("nope"); d != nil {
		t.Fatalf("Domain(nope) = %v, want nil", d)
	}
	if j := s.DomainIndex(0, Ord(3)); j != 2 {
		t.Fatalf("DomainIndex(p1, 3) = %d", j)
	}
	if j := s.DomainIndex(0, Ord(99)); j != -1 {
		t.Fatalf("DomainIndex(p1, 99) = %d", j)
	}
	names := s.Names()
	if len(names) != 3 || names[0] != "p1" || names[2] != "p3" {
		t.Fatalf("Names = %v", names)
	}
}

func TestAddToDomain(t *testing.T) {
	s := testSpace(t)
	if err := s.AddToDomain("p1", Ord(2.5)); err != nil {
		t.Fatal(err)
	}
	if j := s.DomainIndex(0, Ord(2.5)); j != 2 {
		t.Fatalf("expanded domain not sorted: index of 2.5 is %d, domain %v", j, s.Domain("p1"))
	}
	// Idempotent.
	if err := s.AddToDomain("p1", Ord(2.5)); err != nil {
		t.Fatal(err)
	}
	if n := len(s.Domain("p1")); n != 5 {
		t.Fatalf("domain length after duplicate add = %d", n)
	}
	if err := s.AddToDomain("p1", Cat("x")); err == nil {
		t.Fatal("kind mismatch must fail")
	}
	if err := s.AddToDomain("nope", Ord(1)); err == nil {
		t.Fatal("unknown parameter must fail")
	}
}

func TestNumInstances(t *testing.T) {
	s := testSpace(t)
	n, exact := s.NumInstances()
	if !exact || n != 4*3*2 {
		t.Fatalf("NumInstances = %d, %v", n, exact)
	}
	// Overflow: 64 parameters with 4 values each is 2^128.
	params := make([]Parameter, 64)
	for i := range params {
		params[i] = Parameter{Name: string(rune('A'+i%26)) + string(rune('a'+i/26)), Kind: Ordinal, Domain: ordDomain(1, 2, 3, 4)}
	}
	big, err := NewSpace(params...)
	if err != nil {
		t.Fatal(err)
	}
	if _, exact := big.NumInstances(); exact {
		t.Fatal("expected overflow to be reported")
	}
}

func TestSpaceString(t *testing.T) {
	s := testSpace(t)
	want := "p1(ordinal:4), p2(categorical:3), p3(ordinal:2)"
	if got := s.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}
