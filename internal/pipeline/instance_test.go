package pipeline

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewInstanceValidation(t *testing.T) {
	s := testSpace(t)
	if _, err := NewInstance(nil, nil); err == nil {
		t.Fatal("nil space must fail")
	}
	if _, err := NewInstance(s, []Value{Ord(1)}); err == nil {
		t.Fatal("arity mismatch must fail")
	}
	if _, err := NewInstance(s, []Value{Ord(1), Ord(2), Ord(10)}); err == nil {
		t.Fatal("kind mismatch must fail")
	}
	in, err := NewInstance(s, []Value{Ord(1), Cat("a"), Ord(10)})
	if err != nil {
		t.Fatal(err)
	}
	if !in.IsValid() || in.Len() != 3 {
		t.Fatalf("instance invalid: %v", in)
	}
	var zero Instance
	if zero.IsValid() {
		t.Fatal("zero instance must be invalid")
	}
}

func TestInstanceIsolatedFromInput(t *testing.T) {
	s := testSpace(t)
	vals := []Value{Ord(1), Cat("a"), Ord(10)}
	in := MustInstance(s, vals...)
	vals[0] = Ord(4)
	if in.Value(0) != Ord(1) {
		t.Fatal("instance must copy its input values")
	}
}

func TestFromAssignments(t *testing.T) {
	s := testSpace(t)
	in, err := FromAssignments(s, []Assignment{
		{Param: "p3", Value: Ord(20)},
		{Param: "p1", Value: Ord(2)},
		{Param: "p2", Value: Cat("b")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if in.Value(0) != Ord(2) || in.Value(1) != Cat("b") || in.Value(2) != Ord(20) {
		t.Fatalf("FromAssignments = %v", in)
	}
	if _, err := FromAssignments(s, []Assignment{{Param: "p1", Value: Ord(1)}}); err == nil {
		t.Fatal("missing parameters must fail")
	}
	if _, err := FromAssignments(s, []Assignment{
		{Param: "p1", Value: Ord(1)}, {Param: "p1", Value: Ord(2)},
		{Param: "p2", Value: Cat("a")}, {Param: "p3", Value: Ord(10)},
	}); err == nil {
		t.Fatal("duplicate assignment must fail")
	}
	if _, err := FromAssignments(s, []Assignment{{Param: "zz", Value: Ord(1)}}); err == nil {
		t.Fatal("unknown parameter must fail")
	}
}

func TestInstanceWith(t *testing.T) {
	s := testSpace(t)
	a := MustInstance(s, Ord(1), Cat("a"), Ord(10))
	b := a.With(0, Ord(3))
	if a.Value(0) != Ord(1) {
		t.Fatal("With must not mutate the receiver")
	}
	if b.Value(0) != Ord(3) || b.Value(1) != Cat("a") {
		t.Fatalf("With result = %v", b)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("With kind mismatch must panic")
		}
	}()
	_ = a.With(0, Cat("boom"))
}

func TestInstanceEqualDisjointDiff(t *testing.T) {
	s := testSpace(t)
	a := MustInstance(s, Ord(1), Cat("a"), Ord(10))
	b := MustInstance(s, Ord(1), Cat("a"), Ord(10))
	c := MustInstance(s, Ord(2), Cat("b"), Ord(20))
	d := MustInstance(s, Ord(2), Cat("a"), Ord(20))
	if !a.Equal(b) || a.Equal(c) {
		t.Fatal("Equal broken")
	}
	if !a.DisjointFrom(c) {
		t.Fatal("a and c differ everywhere; must be disjoint")
	}
	if a.DisjointFrom(d) {
		t.Fatal("a and d share p2; must not be disjoint")
	}
	if got := a.DiffCount(d); got != 2 {
		t.Fatalf("DiffCount = %d, want 2", got)
	}
	other := testSpace(t)
	x := MustInstance(other, Ord(2), Cat("b"), Ord(20))
	if a.Equal(x) || a.DisjointFrom(x) {
		t.Fatal("instances over different spaces are neither equal nor disjoint")
	}
}

// TestDiffCountCrossSpaceLengths pins the cross-space fallback of
// DiffCount to the shared parameter prefix: a space with fewer parameters
// used to drive the value comparison past the shorter code vector and
// panic, in both argument orders.
func TestDiffCountCrossSpaceLengths(t *testing.T) {
	s := testSpace(t)
	a := MustInstance(s, Ord(1), Cat("a"), Ord(10))
	small := MustSpace(
		Parameter{Name: "p1", Kind: Ordinal, Domain: []Value{Ord(1), Ord(2)}},
	)
	b := MustInstance(small, Ord(2))
	if got := a.DiffCount(b); got != 1 {
		t.Fatalf("DiffCount(long, short) = %d, want 1", got)
	}
	if got := b.DiffCount(a); got != 1 {
		t.Fatalf("DiffCount(short, long) = %d, want 1", got)
	}
	same := MustInstance(small, Ord(1))
	if got := a.DiffCount(same); got != 0 {
		t.Fatalf("DiffCount over equal shared prefix = %d, want 0", got)
	}
}

func TestInstanceKeyUnique(t *testing.T) {
	s := testSpace(t)
	seen := make(map[string]Instance)
	s.Enumerate(func(in Instance) bool {
		k := in.Key()
		if prev, dup := seen[k]; dup {
			t.Fatalf("key collision between %v and %v", prev, in)
		}
		seen[k] = in
		return true
	})
	if len(seen) != 24 {
		t.Fatalf("enumerated %d instances, want 24", len(seen))
	}
}

func TestInstanceStringAndAssignments(t *testing.T) {
	s := testSpace(t)
	in := MustInstance(s, Ord(1), Cat("a"), Ord(10))
	if got := in.String(); got != `{p1=1, p2="a", p3=10}` {
		t.Fatalf("String = %q", got)
	}
	as := in.Assignments()
	if len(as) != 3 || as[1].Param != "p2" || as[1].Value != Cat("a") {
		t.Fatalf("Assignments = %v", as)
	}
}

func TestRandomInstanceInDomain(t *testing.T) {
	s := testSpace(t)
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		in := s.RandomInstance(r)
		for j := 0; j < in.Len(); j++ {
			if s.DomainIndex(j, in.Value(j)) < 0 {
				t.Fatalf("random instance %v has out-of-domain value at %d", in, j)
			}
		}
	}
}

func TestRandomDisjoint(t *testing.T) {
	s := testSpace(t)
	r := rand.New(rand.NewSource(7))
	ref := MustInstance(s, Ord(1), Cat("a"), Ord(10))
	for i := 0; i < 100; i++ {
		in, ok := s.RandomDisjoint(r, ref)
		if !ok {
			t.Fatal("disjoint instance must exist")
		}
		if !in.DisjointFrom(ref) {
			t.Fatalf("RandomDisjoint produced non-disjoint %v vs %v", in, ref)
		}
	}
	// Single-value domain: no disjoint instance exists.
	tight, err := NewSpace(
		Parameter{Name: "x", Kind: Ordinal, Domain: ordDomain(1)},
		Parameter{Name: "y", Kind: Ordinal, Domain: ordDomain(1, 2)},
	)
	if err != nil {
		t.Fatal(err)
	}
	tref := MustInstance(tight, Ord(1), Ord(1))
	if _, ok := tight.RandomDisjoint(r, tref); ok {
		t.Fatal("no disjoint instance exists for single-value domains")
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	s := testSpace(t)
	n := 0
	s.Enumerate(func(Instance) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop visited %d instances", n)
	}
}

// Property: disjointness is symmetric and implies DiffCount == Len.
func TestDisjointnessProperty(t *testing.T) {
	s := testSpace(t)
	r := rand.New(rand.NewSource(42))
	f := func() bool {
		a, b := s.RandomInstance(r), s.RandomInstance(r)
		if a.DisjointFrom(b) != b.DisjointFrom(a) {
			return false
		}
		if a.DisjointFrom(b) && a.DiffCount(b) != a.Len() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyRoundTripDistinctKinds(t *testing.T) {
	// An ordinal 1 and a categorical "1" must never produce colliding keys.
	s, err := NewSpace(Parameter{Name: "x", Kind: Ordinal, Domain: ordDomain(1)})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSpace(Parameter{Name: "x", Kind: Categorical, Domain: catDomain("1")})
	if err != nil {
		t.Fatal(err)
	}
	k1 := MustInstance(s, Ord(1)).Key()
	k2 := MustInstance(s2, Cat("1")).Key()
	if k1 == k2 {
		t.Fatalf("key collision across kinds: %q", k1)
	}
	if strings.Contains(k1, "\x1f") {
		t.Fatal("single-parameter key must not contain separators")
	}
}
