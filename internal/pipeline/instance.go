package pipeline

import (
	"fmt"
	"strings"
)

// Instance is a pipeline instance CP_i: an assignment of one value to every
// parameter of a Space (Definition 1). Instances are immutable value types;
// With returns modified copies. The zero Instance is invalid.
//
// Alongside its values, every instance caches the interned code vector and
// a precomputed 64-bit hash of it (see intern.go), so identity operations
// and memoization lookups are allocation-free integer work.
//
// Instances built by the bulk loaders (InstancesAdoptingCodes) carry no
// materialized value slice at all: vals is nil and Value resolves each
// code through the space's intern table on demand. The observable values
// are identical — codes determine values exactly — so the two forms are
// interchangeable; only the storage strategy differs.
type Instance struct {
	space *Space
	vals  []Value // nil for code-only instances; resolve via the intern table
	codes []uint32
	hash  uint64
}

// newInstance builds an instance from an owned (not aliased) value slice,
// interning the values. All construction paths funnel through it.
func newInstance(s *Space, vals []Value) Instance {
	codes := make([]uint32, len(vals))
	for i, v := range vals {
		codes[i] = s.codeOf(i, v)
	}
	return Instance{space: s, vals: vals, codes: codes, hash: hashCodes(codes)}
}

// Assignment is one (parameter, value) pair of an instance.
type Assignment struct {
	Param string
	Value Value
}

// NewInstance builds an instance over s from one value per parameter, in
// space order. Values must match each parameter's kind; they need not be in
// the declared domain (the universe is expandable), but note that domain-
// exact reasoning (region algebra) only sees domain values.
func NewInstance(s *Space, vals []Value) (Instance, error) {
	if s == nil {
		return Instance{}, fmt.Errorf("pipeline: nil space")
	}
	if len(vals) != s.Len() {
		return Instance{}, fmt.Errorf("pipeline: instance has %d values for %d parameters",
			len(vals), s.Len())
	}
	for i, v := range vals {
		p := s.At(i)
		if v.Kind() != p.Kind {
			return Instance{}, fmt.Errorf("pipeline: parameter %q (%v) cannot hold %v value %v",
				p.Name, p.Kind, v.Kind(), v)
		}
	}
	cp := make([]Value, len(vals))
	copy(cp, vals)
	return newInstance(s, cp), nil
}

// MustInstance is NewInstance that panics on error.
func MustInstance(s *Space, vals ...Value) Instance {
	in, err := NewInstance(s, vals)
	if err != nil {
		panic(err)
	}
	return in
}

// FromAssignments builds an instance from named assignments; every parameter
// of s must be assigned exactly once.
func FromAssignments(s *Space, as []Assignment) (Instance, error) {
	if s == nil {
		return Instance{}, fmt.Errorf("pipeline: nil space")
	}
	vals := make([]Value, s.Len())
	set := make([]bool, s.Len())
	for _, a := range as {
		i, ok := s.Index(a.Param)
		if !ok {
			return Instance{}, fmt.Errorf("pipeline: unknown parameter %q", a.Param)
		}
		if set[i] {
			return Instance{}, fmt.Errorf("pipeline: parameter %q assigned twice", a.Param)
		}
		set[i] = true
		vals[i] = a.Value
	}
	for i, ok := range set {
		if !ok {
			return Instance{}, fmt.Errorf("pipeline: parameter %q not assigned", s.At(i).Name)
		}
	}
	return NewInstance(s, vals)
}

// IsValid reports whether the instance was properly constructed.
func (in Instance) IsValid() bool { return in.space != nil }

// Space returns the parameter space the instance belongs to.
func (in Instance) Space() *Space { return in.space }

// Len returns the number of parameters.
func (in Instance) Len() int { return len(in.codes) }

// Value returns the value of the i-th parameter (CP_i[p] for p at index i).
func (in Instance) Value(i int) Value {
	if in.vals == nil {
		return in.space.intern.value(i, in.codes[i])
	}
	return in.vals[i]
}

// ByName returns the value of the named parameter.
func (in Instance) ByName(name string) (Value, bool) {
	i, ok := in.space.Index(name)
	if !ok {
		return Value{}, false
	}
	return in.Value(i), true
}

// With returns a copy of the instance with parameter i set to v.
// It panics if v's kind does not match the parameter; callers substitute
// values drawn from other instances of the same space, where kinds agree
// by construction.
func (in Instance) With(i int, v Value) Instance {
	if v.Kind() != in.space.At(i).Kind {
		panic(fmt.Sprintf("pipeline: parameter %q (%v) cannot hold %v value",
			in.space.At(i).Name, in.space.At(i).Kind, v.Kind()))
	}
	vals := make([]Value, len(in.codes))
	if in.vals == nil {
		for j := range vals {
			vals[j] = in.Value(j)
		}
	} else {
		copy(vals, in.vals)
	}
	vals[i] = v
	codes := make([]uint32, len(in.codes))
	copy(codes, in.codes)
	codes[i] = in.space.codeOf(i, v)
	return Instance{space: in.space, vals: vals, codes: codes, hash: hashCodes(codes)}
}

// Hash returns the precomputed 64-bit hash of the instance's interned code
// vector. Equal instances always hash equal; the converse holds only up to
// hash collisions, so maps keyed by Hash must confirm with Equal.
//
//bugdoc:hotpath
func (in Instance) Hash() uint64 { return in.hash }

// Code returns the interned code of the i-th parameter's value. Codes are
// dense per parameter (see Space.NumCodes) and equal exactly when the
// values are equal.
//
//bugdoc:hotpath
func (in Instance) Code(i int) uint32 { return in.codes[i] }

// Equal reports whether the two instances assign identical values over the
// same space. It compares precomputed hashes and interned codes, never
// values, so it allocates nothing.
//
//bugdoc:hotpath
func (in Instance) Equal(other Instance) bool {
	if in.space != other.space || in.hash != other.hash {
		return false
	}
	for i := range in.codes {
		if in.codes[i] != other.codes[i] {
			return false
		}
	}
	return true
}

// DisjointFrom reports whether the instances differ on every parameter
// (Definition 6). Instances over different spaces are never disjoint.
//
//bugdoc:hotpath
func (in Instance) DisjointFrom(other Instance) bool {
	if in.space != other.space {
		return false
	}
	for i := range in.codes {
		if in.codes[i] == other.codes[i] {
			return false
		}
	}
	return true
}

// DiffCount returns the number of parameters on which the instances differ;
// it is used by the heuristic fallback of the Shortcut algorithm ("take an
// instance that differs in as many parameter-values as possible").
//
//bugdoc:hotpath
func (in Instance) DiffCount(other Instance) int {
	if in.space != other.space {
		// Codes are only comparable within one space; fall back to values,
		// over the shared parameter prefix only — the spaces may declare
		// different parameter counts, and indexing past the shorter one
		// would panic.
		m := len(in.codes)
		if len(other.codes) < m {
			m = len(other.codes)
		}
		n := 0
		for i := 0; i < m; i++ {
			if in.Value(i) != other.Value(i) {
				n++
			}
		}
		return n
	}
	n := 0
	for i := range in.codes {
		if in.codes[i] != other.codes[i] {
			n++
		}
	}
	return n
}

// Assignments returns the instance as (parameter, value) pairs in space
// order (the paper's Pv_i list).
func (in Instance) Assignments() []Assignment {
	as := make([]Assignment, len(in.codes))
	for i := range as {
		as[i] = Assignment{Param: in.space.At(i).Name, Value: in.Value(i)}
	}
	return as
}

// Key returns a canonical string identity for the instance within its
// space; two instances have equal keys iff Equal reports true. Keys are
// kept for codecs, display, and debugging; memoization and provenance
// lookups use the interned code vector and Hash instead.
func (in Instance) Key() string {
	var b strings.Builder
	for i := range in.codes {
		if i > 0 {
			b.WriteByte(0x1f) // ASCII unit separator: cannot appear in value keys
		}
		b.WriteString(in.Value(i).key())
	}
	return b.String()
}

// String renders the instance as "{p1=v1, p2=v2, ...}".
func (in Instance) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i := range in.codes {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(in.space.At(i).Name)
		b.WriteByte('=')
		b.WriteString(in.Value(i).String())
	}
	b.WriteByte('}')
	return b.String()
}
