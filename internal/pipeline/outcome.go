package pipeline

import "fmt"

// Outcome is the result of the evaluation procedure E applied to a pipeline
// instance (Definition 2): Succeed when the result is acceptable, Fail
// otherwise. The zero value OutcomeUnknown marks instances that have not
// been evaluated (e.g. historical records outside the replay window).
type Outcome uint8

const (
	// OutcomeUnknown means the instance has no recorded evaluation.
	OutcomeUnknown Outcome = iota
	// Succeed means E(CP_i) = succeed.
	Succeed
	// Fail means E(CP_i) = fail; a bug, in the paper's terms, is a set of
	// instances that evaluate to Fail.
	Fail
	// OutcomeInconclusive records an instance whose repeated trials under a
	// FlakyPolicy ended in an exact tie: the quorum machinery exhausted
	// MaxTrials with as many succeed as fail votes. Inconclusive records
	// are kept for memoization (the instance is not re-executed) but carry
	// no evidence either way, so they join neither outcome bitset.
	OutcomeInconclusive
)

// String returns the paper's lower-case outcome labels.
func (o Outcome) String() string {
	switch o {
	case OutcomeUnknown:
		return "unknown"
	case Succeed:
		return "succeed"
	case Fail:
		return "fail"
	case OutcomeInconclusive:
		return "inconclusive"
	default:
		return fmt.Sprintf("Outcome(%d)", uint8(o))
	}
}

// ParseOutcome converts the textual outcome labels back to Outcome values;
// it accepts the String forms of the outcome constants.
func ParseOutcome(s string) (Outcome, error) {
	switch s {
	case "unknown":
		return OutcomeUnknown, nil
	case "succeed":
		return Succeed, nil
	case "fail":
		return Fail, nil
	case "inconclusive":
		return OutcomeInconclusive, nil
	default:
		return OutcomeUnknown, fmt.Errorf("pipeline: unknown outcome %q", s)
	}
}
