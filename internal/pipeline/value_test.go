package pipeline

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	o := Ord(3.5)
	if o.Kind() != Ordinal || !o.IsValid() {
		t.Fatalf("Ord(3.5).Kind() = %v", o.Kind())
	}
	if o.Num() != 3.5 {
		t.Fatalf("Ord(3.5).Num() = %v", o.Num())
	}
	c := Cat("red")
	if c.Kind() != Categorical || !c.IsValid() {
		t.Fatalf("Cat(red).Kind() = %v", c.Kind())
	}
	if c.Str() != "red" {
		t.Fatalf("Cat(red).Str() = %q", c.Str())
	}
	var zero Value
	if zero.IsValid() {
		t.Fatal("zero Value must be invalid")
	}
}

func TestValueEquality(t *testing.T) {
	if Ord(1) != Ord(1) {
		t.Fatal("equal ordinals must be ==")
	}
	if Ord(1) == Ord(2) {
		t.Fatal("different ordinals must not be ==")
	}
	if Cat("a") != Cat("a") {
		t.Fatal("equal categoricals must be ==")
	}
	if Cat("a") == Cat("b") {
		t.Fatal("different categoricals must not be ==")
	}
	if Ord(0) == Cat("") {
		t.Fatal("ordinal and categorical must never be ==")
	}
}

func TestValueNumPanicsOnCategorical(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Num on categorical must panic")
		}
	}()
	_ = Cat("x").Num()
}

func TestValueStrPanicsOnOrdinal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Str on ordinal must panic")
		}
	}()
	_ = Ord(1).Str()
}

func TestValueLess(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Ord(1), Ord(2), true},
		{Ord(2), Ord(1), false},
		{Ord(1), Ord(1), false},
		{Cat("a"), Cat("b"), true},
		{Cat("b"), Cat("a"), false},
		{Ord(99), Cat("a"), true}, // ordinal sorts before categorical
		{Cat("a"), Ord(99), false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestValueString(t *testing.T) {
	if s := Ord(2.5).String(); s != "2.5" {
		t.Errorf("Ord(2.5).String() = %q", s)
	}
	if s := Ord(4).String(); s != "4" {
		t.Errorf("Ord(4).String() = %q", s)
	}
	if s := Cat("iris").String(); s != `"iris"` {
		t.Errorf("Cat(iris).String() = %q", s)
	}
	var zero Value
	if s := zero.String(); s != "<invalid>" {
		t.Errorf("zero.String() = %q", s)
	}
}

// Less must be a strict weak ordering: irreflexive and asymmetric.
func TestValueLessProperties(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	gen := func() Value {
		if r.Intn(2) == 0 {
			return Ord(float64(r.Intn(10)))
		}
		return Cat(string(rune('a' + r.Intn(10))))
	}
	f := func() bool {
		a, b := gen(), gen()
		if a.Less(a) {
			return false
		}
		if a.Less(b) && b.Less(a) {
			return false
		}
		// Totality over distinct values.
		if a != b && !a.Less(b) && !b.Less(a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
