package metrics

import (
	"math"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/predicate"
)

func ordDomain(vals ...float64) []pipeline.Value {
	out := make([]pipeline.Value, len(vals))
	for i, v := range vals {
		out[i] = pipeline.Ord(v)
	}
	return out
}

func testSpace(t *testing.T) *pipeline.Space {
	t.Helper()
	return pipeline.MustSpace(
		pipeline.Parameter{Name: "a", Kind: pipeline.Ordinal, Domain: ordDomain(1, 2, 3, 4)},
		pipeline.Parameter{Name: "b", Kind: pipeline.Ordinal, Domain: ordDomain(1, 2, 3, 4)},
	)
}

func TestJudgeExactMatch(t *testing.T) {
	s := testSpace(t)
	cause := predicate.And(predicate.T("a", predicate.Eq, pipeline.Ord(1)))
	truth := predicate.Or(cause)
	ev, err := Judge(s, predicate.DNF{cause}, truth, []predicate.Conjunction{cause})
	if err != nil {
		t.Fatal(err)
	}
	if !ev.FoundOne() || ev.TrueAsserted != 1 || ev.FalseAsserted != 0 || ev.MatchedActual != 1 {
		t.Fatalf("Judge = %+v", ev)
	}
}

func TestJudgeEquivalentFormsMatch(t *testing.T) {
	s := testSpace(t)
	// a <= 1 equals a = 1 on domain {1,2,3,4}.
	truth := predicate.Or(predicate.And(predicate.T("a", predicate.Eq, pipeline.Ord(1))))
	asserted := predicate.DNF{predicate.And(predicate.T("a", predicate.Le, pipeline.Ord(1)))}
	actual := []predicate.Conjunction{predicate.And(predicate.T("a", predicate.Eq, pipeline.Ord(1)))}
	ev, err := Judge(s, asserted, truth, actual)
	if err != nil {
		t.Fatal(err)
	}
	if ev.TrueAsserted != 1 || ev.MatchedActual != 1 {
		t.Fatalf("equivalent form not credited: %+v", ev)
	}
}

func TestJudgeNonMinimalIsFalsePositive(t *testing.T) {
	s := testSpace(t)
	truth := predicate.Or(predicate.And(predicate.T("a", predicate.Eq, pipeline.Ord(1))))
	tooLong := predicate.And(
		predicate.T("a", predicate.Eq, pipeline.Ord(1)),
		predicate.T("b", predicate.Eq, pipeline.Ord(2)),
	)
	ev, err := Judge(s, predicate.DNF{tooLong}, truth,
		[]predicate.Conjunction{predicate.And(predicate.T("a", predicate.Eq, pipeline.Ord(1)))})
	if err != nil {
		t.Fatal(err)
	}
	if ev.TrueAsserted != 0 || ev.FalseAsserted != 1 || ev.MatchedActual != 0 {
		t.Fatalf("non-minimal assertion must be a false positive: %+v", ev)
	}
}

func TestJudgeTruncatedIsFalsePositive(t *testing.T) {
	s := testSpace(t)
	truth := predicate.Or(predicate.And(
		predicate.T("a", predicate.Eq, pipeline.Ord(1)),
		predicate.T("b", predicate.Eq, pipeline.Ord(1)),
	))
	truncated := predicate.And(predicate.T("a", predicate.Eq, pipeline.Ord(1)))
	ev, err := Judge(s, predicate.DNF{truncated}, truth,
		[]predicate.Conjunction{truth[0]})
	if err != nil {
		t.Fatal(err)
	}
	if ev.TrueAsserted != 0 || ev.FalseAsserted != 1 {
		t.Fatalf("truncated assertion must be a false positive: %+v", ev)
	}
}

func TestJudgeDeduplicatesEquivalentAssertions(t *testing.T) {
	s := testSpace(t)
	truth := predicate.Or(predicate.And(predicate.T("a", predicate.Eq, pipeline.Ord(1))))
	asserted := predicate.DNF{
		predicate.And(predicate.T("a", predicate.Eq, pipeline.Ord(1))),
		predicate.And(predicate.T("a", predicate.Le, pipeline.Ord(1))), // same region
	}
	ev, err := Judge(s, asserted, truth, []predicate.Conjunction{truth[0]})
	if err != nil {
		t.Fatal(err)
	}
	if ev.TotalAsserted != 1 {
		t.Fatalf("equivalent assertions must deduplicate: %+v", ev)
	}
}

func TestAggregateFindOne(t *testing.T) {
	var ag Aggregate
	// Pipeline 1: hit with no false positives.
	ag.Add(PipelineEval{TotalAsserted: 1, TrueAsserted: 1, TotalActual: 1, MatchedActual: 1})
	// Pipeline 2: miss with one false positive.
	ag.Add(PipelineEval{TotalAsserted: 1, FalseAsserted: 1, TotalActual: 1})
	if got := ag.FindOnePrecision(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("FindOnePrecision = %v, want 0.5", got)
	}
	if got := ag.FindOneRecall(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("FindOneRecall = %v, want 0.5", got)
	}
	if got := ag.FindOneF(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("FindOneF = %v, want 0.5", got)
	}
}

func TestAggregateFindAll(t *testing.T) {
	var ag Aggregate
	// 3 asserted, 2 true; 2 actual causes, 1 matched.
	ag.Add(PipelineEval{TotalAsserted: 3, TrueAsserted: 2, FalseAsserted: 1,
		TotalActual: 2, MatchedActual: 1})
	if got := ag.FindAllPrecision(); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("FindAllPrecision = %v", got)
	}
	if got := ag.FindAllRecall(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("FindAllRecall = %v", got)
	}
	p, r := 2.0/3.0, 0.5
	if got := ag.FindAllF(); math.Abs(got-2*p*r/(p+r)) > 1e-12 {
		t.Fatalf("FindAllF = %v", got)
	}
}

func TestAggregateConciseness(t *testing.T) {
	var ag Aggregate
	ag.Add(PipelineEval{TotalAsserted: 2, ParamsAsserted: 6, TotalActual: 1, TrueAsserted: 1})
	ag.Add(PipelineEval{TotalAsserted: 1, ParamsAsserted: 1, TotalActual: 1, TrueAsserted: 1})
	if got := ag.ParamsPerCause(); math.Abs(got-7.0/3.0) > 1e-12 {
		t.Fatalf("ParamsPerCause = %v", got)
	}
	want := (math.Log10(2) + math.Log10(1)) / 2
	if got := ag.LogAssertedPerActual(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("LogAssertedPerActual = %v, want %v", got, want)
	}
}

func TestAggregateEmptySafety(t *testing.T) {
	var ag Aggregate
	if ag.FindOnePrecision() != 0 || ag.FindOneRecall() != 0 || ag.FindOneF() != 0 {
		t.Fatal("empty aggregate must report zeros")
	}
	if ag.FindAllPrecision() != 0 || ag.FindAllRecall() != 0 || ag.FindAllF() != 0 {
		t.Fatal("empty aggregate must report zeros")
	}
	if ag.ParamsPerCause() != 0 || ag.LogAssertedPerActual() != 0 {
		t.Fatal("empty aggregate must report zeros")
	}
}

func TestJudgeEmptyAssertion(t *testing.T) {
	s := testSpace(t)
	truth := predicate.Or(predicate.And(predicate.T("a", predicate.Eq, pipeline.Ord(1))))
	ev, err := Judge(s, predicate.DNF{}, truth, []predicate.Conjunction{truth[0]})
	if err != nil {
		t.Fatal(err)
	}
	if ev.FoundOne() || ev.TotalAsserted != 0 || ev.MatchedActual != 0 {
		t.Fatalf("empty assertion judgement = %+v", ev)
	}
}
