// Package metrics implements the evaluation criteria of Section 5:
// precision, recall and F-measure for the FindOne and FindAll goals, plus
// the conciseness measures of Figure 4. Correctness of an asserted root
// cause is decided exactly with the region algebra: an assertion is a true
// minimal definitive root cause iff it is definitive for the ground-truth
// failure condition (Definition 4) and minimal (Definition 5).
//
// Not to be confused with internal/telemetry, which is *runtime*
// observability of the engine (hot-path counters, latency histograms, the
// session event journal); this package scores *algorithm output* against
// planted ground truth. See docs/ARCHITECTURE.md.
package metrics

import (
	"math"

	"repro/internal/pipeline"
	"repro/internal/predicate"
)

// PipelineEval is the judgement of one algorithm's output on one pipeline.
type PipelineEval struct {
	// TotalAsserted counts asserted root causes (deduplicated by region).
	TotalAsserted int
	// TrueAsserted counts asserted causes that are minimal definitive.
	TrueAsserted int
	// FalseAsserted = TotalAsserted - TrueAsserted (the |A(CP) - R(CP)|
	// term of the FindOne precision).
	FalseAsserted int
	// TotalActual counts the planted minimal definitive root causes R(CP).
	TotalActual int
	// MatchedActual counts planted causes matched by a region-equivalent
	// asserted cause (the |A(CP) ∩ R(CP)| term for FindAll recall).
	MatchedActual int
	// ParamsAsserted sums the number of distinct parameters over asserted
	// causes (Figure 4a numerator).
	ParamsAsserted int
}

// Judge evaluates asserted causes against the pipeline's ground truth.
func Judge(s *pipeline.Space, asserted predicate.DNF, truth predicate.DNF, actual []predicate.Conjunction) (PipelineEval, error) {
	var ev PipelineEval
	ev.TotalActual = len(actual)

	// Deduplicate assertions by region so repeated equivalents do not
	// inflate counts in either direction.
	var regions []predicate.Region
	var distinct predicate.DNF
	for _, c := range asserted {
		r, err := predicate.RegionOf(s, c)
		if err != nil {
			return ev, err
		}
		dup := false
		for _, prev := range regions {
			if prev.Equal(r) {
				dup = true
				break
			}
		}
		if !dup {
			regions = append(regions, r)
			distinct = append(distinct, c)
		}
	}

	ev.TotalAsserted = len(distinct)
	for _, c := range distinct {
		ev.ParamsAsserted += len(c.Params())
		minimal, err := predicate.Minimal(s, c, truth)
		if err != nil {
			return ev, err
		}
		if minimal {
			ev.TrueAsserted++
		} else {
			ev.FalseAsserted++
		}
	}
	for _, a := range actual {
		for _, c := range distinct {
			eq, err := predicate.Equivalent(s, a, c)
			if err != nil {
				return ev, err
			}
			if eq {
				ev.MatchedActual++
				break
			}
		}
	}
	return ev, nil
}

// FoundOne reports whether at least one true minimal definitive root cause
// was asserted — the per-pipeline hit of the FindOne goal.
func (ev PipelineEval) FoundOne() bool { return ev.TrueAsserted > 0 }

// Aggregate accumulates judgements over a set of pipelines UCP and derives
// the paper's metrics.
type Aggregate struct {
	Pipelines int
	// Hits counts pipelines where FoundOne held.
	Hits int
	// FalsePositives sums FalseAsserted over pipelines (FindOne precision
	// denominator term).
	FalsePositives int
	// Asserted/TrueCauses/MatchedActual/ActualCauses sum the FindAll terms.
	Asserted      int
	TrueCauses    int
	MatchedActual int
	ActualCauses  int
	// ParamsAsserted sums parameters over all asserted causes.
	ParamsAsserted int
	// logRatios collects log10(asserted/actual) per pipeline with at least
	// one assertion (Figure 4b).
	logRatios []float64
}

// Add incorporates one pipeline's judgement.
func (ag *Aggregate) Add(ev PipelineEval) {
	ag.Pipelines++
	if ev.FoundOne() {
		ag.Hits++
	}
	ag.FalsePositives += ev.FalseAsserted
	ag.Asserted += ev.TotalAsserted
	ag.TrueCauses += ev.TrueAsserted
	ag.MatchedActual += ev.MatchedActual
	ag.ActualCauses += ev.TotalActual
	ag.ParamsAsserted += ev.ParamsAsserted
	if ev.TotalAsserted > 0 && ev.TotalActual > 0 {
		ag.logRatios = append(ag.logRatios,
			math.Log10(float64(ev.TotalAsserted)/float64(ev.TotalActual)))
	}
}

// FindOnePrecision is Σ hit / (Σ hit + Σ |A - R|), per Section 5.
func (ag Aggregate) FindOnePrecision() float64 {
	den := float64(ag.Hits + ag.FalsePositives)
	if den == 0 {
		return 0
	}
	return float64(ag.Hits) / den
}

// FindOneRecall is Σ hit / |UCP|.
func (ag Aggregate) FindOneRecall() float64 {
	if ag.Pipelines == 0 {
		return 0
	}
	return float64(ag.Hits) / float64(ag.Pipelines)
}

// FindOneF is the harmonic mean of FindOne precision and recall.
func (ag Aggregate) FindOneF() float64 {
	return fmeasure(ag.FindOnePrecision(), ag.FindOneRecall())
}

// FindAllPrecision is Σ |A ∩ R| / Σ |A|, counting an asserted cause as
// correct when it is a true minimal definitive root cause.
func (ag Aggregate) FindAllPrecision() float64 {
	if ag.Asserted == 0 {
		return 0
	}
	return float64(ag.TrueCauses) / float64(ag.Asserted)
}

// FindAllRecall is Σ |A ∩ R| / Σ |R| over the planted causes.
func (ag Aggregate) FindAllRecall() float64 {
	if ag.ActualCauses == 0 {
		return 0
	}
	return float64(ag.MatchedActual) / float64(ag.ActualCauses)
}

// FindAllF is the harmonic mean of FindAll precision and recall.
func (ag Aggregate) FindAllF() float64 {
	return fmeasure(ag.FindAllPrecision(), ag.FindAllRecall())
}

// ParamsPerCause is the average number of parameters per asserted root
// cause (Figure 4a); 0 when nothing was asserted.
func (ag Aggregate) ParamsPerCause() float64 {
	if ag.Asserted == 0 {
		return 0
	}
	return float64(ag.ParamsAsserted) / float64(ag.Asserted)
}

// LogAssertedPerActual is the mean of log10(|A|/|R|) over pipelines with at
// least one assertion (Figure 4b): 0 means one assertion per actual cause,
// positive means over-asserting.
func (ag Aggregate) LogAssertedPerActual() float64 {
	if len(ag.logRatios) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range ag.logRatios {
		sum += x
	}
	return sum / float64(len(ag.logRatios))
}

func fmeasure(p, r float64) float64 {
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}
