package forest

import (
	"math/rand"
	"testing"

	"repro/internal/pipeline"
)

func ordDomain(vals ...float64) []pipeline.Value {
	out := make([]pipeline.Value, len(vals))
	for i, v := range vals {
		out[i] = pipeline.Ord(v)
	}
	return out
}

func catDomain(vals ...string) []pipeline.Value {
	out := make([]pipeline.Value, len(vals))
	for i, v := range vals {
		out[i] = pipeline.Cat(v)
	}
	return out
}

func testSpace(t *testing.T) *pipeline.Space {
	t.Helper()
	return pipeline.MustSpace(
		pipeline.Parameter{Name: "x", Kind: pipeline.Ordinal, Domain: ordDomain(1, 2, 3, 4, 5, 6)},
		pipeline.Parameter{Name: "c", Kind: pipeline.Categorical, Domain: catDomain("a", "b", "c")},
	)
}

func dataset(s *pipeline.Space, f func(pipeline.Instance) float64) (xs []pipeline.Instance, ys []float64) {
	s.Enumerate(func(in pipeline.Instance) bool {
		xs = append(xs, in)
		ys = append(ys, f(in))
		return true
	})
	return
}

func TestTrainEmpty(t *testing.T) {
	s := testSpace(t)
	f := Train(s, nil, nil, Config{})
	if f.Len() != 0 {
		t.Fatalf("empty forest has %d trees", f.Len())
	}
	mu, v := f.Predict(pipeline.MustInstance(s, pipeline.Ord(1), pipeline.Cat("a")))
	if mu != 0 || v != 0 {
		t.Fatalf("empty forest Predict = %v, %v", mu, v)
	}
}

func TestForestLearnsThreshold(t *testing.T) {
	s := testSpace(t)
	xs, ys := dataset(s, func(in pipeline.Instance) float64 {
		if v, _ := in.ByName("x"); v.Num() <= 3 {
			return 1
		}
		return 0
	})
	f := Train(s, xs, ys, Config{Trees: 24, Rand: rand.New(rand.NewSource(1))})
	if f.Len() != 24 {
		t.Fatalf("Len = %d", f.Len())
	}
	low, _ := f.Predict(pipeline.MustInstance(s, pipeline.Ord(2), pipeline.Cat("b")))
	high, _ := f.Predict(pipeline.MustInstance(s, pipeline.Ord(5), pipeline.Cat("b")))
	if low < 0.7 || high > 0.3 {
		t.Fatalf("Predict(x=2) = %v, Predict(x=5) = %v; want near 1 and 0", low, high)
	}
}

func TestForestLearnsCategorical(t *testing.T) {
	s := testSpace(t)
	xs, ys := dataset(s, func(in pipeline.Instance) float64 {
		if v, _ := in.ByName("c"); v.Str() == "b" {
			return 1
		}
		return 0
	})
	f := Train(s, xs, ys, Config{Trees: 24, Rand: rand.New(rand.NewSource(2))})
	hit, _ := f.Predict(pipeline.MustInstance(s, pipeline.Ord(3), pipeline.Cat("b")))
	miss, _ := f.Predict(pipeline.MustInstance(s, pipeline.Ord(3), pipeline.Cat("a")))
	if hit < 0.7 || miss > 0.3 {
		t.Fatalf("Predict(c=b) = %v, Predict(c=a) = %v", hit, miss)
	}
}

func TestForestVarianceSmallOnConstantTarget(t *testing.T) {
	s := testSpace(t)
	xs, ys := dataset(s, func(pipeline.Instance) float64 { return 0.5 })
	f := Train(s, xs, ys, Config{Trees: 8, Rand: rand.New(rand.NewSource(3))})
	mu, v := f.Predict(pipeline.MustInstance(s, pipeline.Ord(1), pipeline.Cat("a")))
	if mu != 0.5 || v != 0 {
		t.Fatalf("constant target: Predict = %v, %v", mu, v)
	}
}

func TestForestDeterministicPerSeed(t *testing.T) {
	s := testSpace(t)
	xs, ys := dataset(s, func(in pipeline.Instance) float64 {
		v, _ := in.ByName("x")
		return v.Num() / 6
	})
	in := pipeline.MustInstance(s, pipeline.Ord(4), pipeline.Cat("c"))
	f1 := Train(s, xs, ys, Config{Trees: 8, Rand: rand.New(rand.NewSource(7))})
	f2 := Train(s, xs, ys, Config{Trees: 8, Rand: rand.New(rand.NewSource(7))})
	m1, v1 := f1.Predict(in)
	m2, v2 := f2.Predict(in)
	if m1 != m2 || v1 != v2 {
		t.Fatalf("forest not deterministic: (%v,%v) vs (%v,%v)", m1, v1, m2, v2)
	}
}
