// Package forest implements random-forest regression over mixed
// ordinal/categorical pipeline parameters: bagged CART trees with random
// feature subsets and variance estimates across trees. It is the surrogate
// model substrate for the SMAC baseline (sequential model-based algorithm
// configuration uses random-forest surrogates; Hutter et al., LION 2011).
package forest

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/pipeline"
)

// Config controls forest training; zero values take defaults.
type Config struct {
	// Trees is the ensemble size (default 16).
	Trees int
	// MinLeaf is the minimum examples per leaf (default 2).
	MinLeaf int
	// MaxDepth bounds tree depth (default 16).
	MaxDepth int
	// Rand drives bootstrap and feature sampling; deterministic default.
	Rand *rand.Rand
}

func (c Config) withDefaults() Config {
	if c.Trees <= 0 {
		c.Trees = 16
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 2
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 16
	}
	if c.Rand == nil {
		c.Rand = rand.New(rand.NewSource(1))
	}
	return c
}

// Forest is a trained ensemble.
type Forest struct {
	space *pipeline.Space
	trees []*node
}

type node struct {
	// Split: param index and test. For ordinal parameters the test is
	// value <= threshold; for categorical, value == category.
	param     int
	threshold float64
	category  string
	ordinal   bool

	yes, no *node
	mean    float64
}

// Train fits a forest to instances xs with targets ys.
func Train(s *pipeline.Space, xs []pipeline.Instance, ys []float64, cfg Config) *Forest {
	cfg = cfg.withDefaults()
	f := &Forest{space: s}
	if len(xs) == 0 {
		return f
	}
	mtry := int(math.Ceil(math.Sqrt(float64(s.Len()))))
	sc := &scratch{}
	for t := 0; t < cfg.Trees; t++ {
		idx := make([]int, len(xs))
		for i := range idx {
			idx[i] = cfg.Rand.Intn(len(xs))
		}
		f.trees = append(f.trees, grow(s, xs, ys, idx, cfg, mtry, 0, sc))
	}
	return f
}

// scratch is per-Train reusable working memory: candidate tests run over
// interned value codes (rank tables instead of float/string comparisons),
// and the per-candidate partitions reuse one pair of index buffers.
type scratch struct {
	rank     []int32 // value code -> position in the sorted distinct values
	yes, no  []int
	distinct []uint32
}

func grow(s *pipeline.Space, xs []pipeline.Instance, ys []float64, idx []int, cfg Config, mtry, depth int, sc *scratch) *node {
	n := &node{mean: mean(ys, idx)}
	if len(idx) < 2*cfg.MinLeaf || depth >= cfg.MaxDepth || pure(ys, idx) {
		return n
	}
	// Random feature subset.
	feats := cfg.Rand.Perm(s.Len())
	if len(feats) > mtry {
		feats = feats[:mtry]
	}
	bestVar := math.Inf(1)
	found := false
	for _, pi := range feats {
		p := s.At(pi)
		codes := distinctCodes(s, xs, idx, pi, sc)
		if len(codes) < 2 {
			continue
		}
		// rank[c] is c's position among the sorted distinct values, so
		// "value <= vals[k]" becomes the integer test rank <= k and
		// "value == vals[k]" becomes code equality — the same membership
		// the value comparisons produced, at integer-compare cost. NaN
		// values (possible only through out-of-domain instances) rank at
		// MaxInt32 so they fail every threshold test, matching
		// Num() <= thr, and are never thresholds themselves.
		if nc := s.NumCodes(pi); len(sc.rank) < nc {
			sc.rank = make([]int32, nc)
		}
		if p.Kind == pipeline.Ordinal {
			finite := codes[:0:0]
			for _, c := range codes {
				if v := s.InternedValue(pi, c); math.IsNaN(v.Num()) {
					sc.rank[c] = math.MaxInt32
				} else {
					sc.rank[c] = int32(len(finite))
					finite = append(finite, c)
				}
			}
			for k := 0; k < len(finite); k++ {
				rk := int32(k)
				v := splitVariance(xs, ys, idx, func(in pipeline.Instance) bool {
					return sc.rank[in.Code(pi)] <= rk
				}, cfg.MinLeaf, sc)
				if v < bestVar {
					bestVar, found = v, true
					n.param, n.threshold, n.ordinal = pi, s.InternedValue(pi, finite[k]).Num(), true
				}
			}
		} else {
			for _, c := range codes {
				cc := c
				v := splitVariance(xs, ys, idx, func(in pipeline.Instance) bool {
					return in.Code(pi) == cc
				}, cfg.MinLeaf, sc)
				if v < bestVar {
					bestVar, found = v, true
					n.param, n.category, n.ordinal = pi, s.InternedValue(pi, c).Str(), false
				}
			}
		}
	}
	if !found {
		return n
	}
	var yesIdx, noIdx []int
	for _, i := range idx {
		if n.test(xs[i]) {
			yesIdx = append(yesIdx, i)
		} else {
			noIdx = append(noIdx, i)
		}
	}
	if len(yesIdx) == 0 || len(noIdx) == 0 {
		return n
	}
	n.yes = grow(s, xs, ys, yesIdx, cfg, mtry, depth+1, sc)
	n.no = grow(s, xs, ys, noIdx, cfg, mtry, depth+1, sc)
	return n
}

func (n *node) test(in pipeline.Instance) bool {
	v := in.Value(n.param)
	if n.ordinal {
		return v.Num() <= n.threshold
	}
	return v.Kind() == pipeline.Categorical && v.Str() == n.category
}

func (n *node) predict(in pipeline.Instance) float64 {
	for n.yes != nil && n.no != nil {
		if n.test(in) {
			n = n.yes
		} else {
			n = n.no
		}
	}
	return n.mean
}

// Predict returns the ensemble mean and variance for one instance. An
// empty forest predicts (0, 0), as does an instance from a different
// space: tree tests index parameters by this space's positions, so a
// foreign instance could panic or silently misread.
func (f *Forest) Predict(in pipeline.Instance) (mu, variance float64) {
	if len(f.trees) == 0 || in.Space() != f.space {
		return 0, 0
	}
	preds := make([]float64, len(f.trees))
	for i, t := range f.trees {
		preds[i] = t.predict(in)
		mu += preds[i]
	}
	mu /= float64(len(f.trees))
	for _, p := range preds {
		variance += (p - mu) * (p - mu)
	}
	variance /= float64(len(f.trees))
	return mu, variance
}

// Len returns the number of trees.
func (f *Forest) Len() int { return len(f.trees) }

func mean(ys []float64, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	s := 0.0
	for _, i := range idx {
		s += ys[i]
	}
	return s / float64(len(idx))
}

func pure(ys []float64, idx []int) bool {
	for k := 1; k < len(idx); k++ {
		if ys[idx[k]] != ys[idx[0]] {
			return false
		}
	}
	return true
}

// distinctCodes returns the distinct value codes of parameter pi among
// xs[idx], sorted by value order. The dedup runs over dense codes instead
// of hashing Value structs.
func distinctCodes(s *pipeline.Space, xs []pipeline.Instance, idx []int, pi int, sc *scratch) []uint32 {
	nc := s.NumCodes(pi)
	seen := make([]bool, nc)
	sc.distinct = sc.distinct[:0]
	for _, i := range idx {
		c := xs[i].Code(pi)
		if !seen[c] {
			seen[c] = true
			sc.distinct = append(sc.distinct, c)
		}
	}
	sort.Slice(sc.distinct, func(a, b int) bool {
		return s.InternedValue(pi, sc.distinct[a]).Less(s.InternedValue(pi, sc.distinct[b]))
	})
	return sc.distinct
}

// splitVariance is the weighted child variance of a candidate split, or
// +Inf when a side falls under minLeaf. The yes/no partitions reuse the
// scratch buffers; membership and summation order match the original
// per-candidate partition exactly.
func splitVariance(xs []pipeline.Instance, ys []float64, idx []int, test func(pipeline.Instance) bool, minLeaf int, sc *scratch) float64 {
	yes, no := sc.yes[:0], sc.no[:0]
	for _, i := range idx {
		if test(xs[i]) {
			yes = append(yes, i)
		} else {
			no = append(no, i)
		}
	}
	sc.yes, sc.no = yes[:0], no[:0]
	if len(yes) < minLeaf || len(no) < minLeaf {
		return math.Inf(1)
	}
	return sse(ys, yes) + sse(ys, no)
}

func sse(ys []float64, idx []int) float64 {
	m := mean(ys, idx)
	s := 0.0
	for _, i := range idx {
		d := ys[i] - m
		s += d * d
	}
	return s
}
