// Package forest implements random-forest regression over mixed
// ordinal/categorical pipeline parameters: bagged CART trees with random
// feature subsets and variance estimates across trees. It is the surrogate
// model substrate for the SMAC baseline (sequential model-based algorithm
// configuration uses random-forest surrogates; Hutter et al., LION 2011).
package forest

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/pipeline"
)

// Config controls forest training; zero values take defaults.
type Config struct {
	// Trees is the ensemble size (default 16).
	Trees int
	// MinLeaf is the minimum examples per leaf (default 2).
	MinLeaf int
	// MaxDepth bounds tree depth (default 16).
	MaxDepth int
	// Rand drives bootstrap and feature sampling; deterministic default.
	Rand *rand.Rand
}

func (c Config) withDefaults() Config {
	if c.Trees <= 0 {
		c.Trees = 16
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 2
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 16
	}
	if c.Rand == nil {
		c.Rand = rand.New(rand.NewSource(1))
	}
	return c
}

// Forest is a trained ensemble.
type Forest struct {
	space *pipeline.Space
	trees []*node
}

type node struct {
	// Split: param index and test. For ordinal parameters the test is
	// value <= threshold; for categorical, value == category.
	param     int
	threshold float64
	category  string
	ordinal   bool

	yes, no *node
	mean    float64
}

// Train fits a forest to instances xs with targets ys.
func Train(s *pipeline.Space, xs []pipeline.Instance, ys []float64, cfg Config) *Forest {
	cfg = cfg.withDefaults()
	f := &Forest{space: s}
	if len(xs) == 0 {
		return f
	}
	mtry := int(math.Ceil(math.Sqrt(float64(s.Len()))))
	for t := 0; t < cfg.Trees; t++ {
		idx := make([]int, len(xs))
		for i := range idx {
			idx[i] = cfg.Rand.Intn(len(xs))
		}
		f.trees = append(f.trees, grow(s, xs, ys, idx, cfg, mtry, 0))
	}
	return f
}

func grow(s *pipeline.Space, xs []pipeline.Instance, ys []float64, idx []int, cfg Config, mtry, depth int) *node {
	n := &node{mean: mean(ys, idx)}
	if len(idx) < 2*cfg.MinLeaf || depth >= cfg.MaxDepth || pure(ys, idx) {
		return n
	}
	// Random feature subset.
	feats := cfg.Rand.Perm(s.Len())
	if len(feats) > mtry {
		feats = feats[:mtry]
	}
	bestVar := math.Inf(1)
	found := false
	for _, pi := range feats {
		p := s.At(pi)
		vals := distinctValues(xs, idx, pi)
		if len(vals) < 2 {
			continue
		}
		if p.Kind == pipeline.Ordinal {
			for k := 0; k < len(vals)-1; k++ {
				thr := vals[k].Num()
				v := splitVariance(xs, ys, idx, func(in pipeline.Instance) bool {
					return in.Value(pi).Num() <= thr
				}, cfg.MinLeaf)
				if v < bestVar {
					bestVar, found = v, true
					n.param, n.threshold, n.ordinal = pi, thr, true
				}
			}
		} else {
			for _, val := range vals {
				cat := val.Str()
				v := splitVariance(xs, ys, idx, func(in pipeline.Instance) bool {
					return in.Value(pi).Str() == cat
				}, cfg.MinLeaf)
				if v < bestVar {
					bestVar, found = v, true
					n.param, n.category, n.ordinal = pi, cat, false
				}
			}
		}
	}
	if !found {
		return n
	}
	var yesIdx, noIdx []int
	for _, i := range idx {
		if n.test(xs[i]) {
			yesIdx = append(yesIdx, i)
		} else {
			noIdx = append(noIdx, i)
		}
	}
	if len(yesIdx) == 0 || len(noIdx) == 0 {
		return n
	}
	n.yes = grow(s, xs, ys, yesIdx, cfg, mtry, depth+1)
	n.no = grow(s, xs, ys, noIdx, cfg, mtry, depth+1)
	return n
}

func (n *node) test(in pipeline.Instance) bool {
	v := in.Value(n.param)
	if n.ordinal {
		return v.Num() <= n.threshold
	}
	return v.Kind() == pipeline.Categorical && v.Str() == n.category
}

func (n *node) predict(in pipeline.Instance) float64 {
	for n.yes != nil && n.no != nil {
		if n.test(in) {
			n = n.yes
		} else {
			n = n.no
		}
	}
	return n.mean
}

// Predict returns the ensemble mean and variance for one instance. An
// empty forest predicts (0, 0).
func (f *Forest) Predict(in pipeline.Instance) (mu, variance float64) {
	if len(f.trees) == 0 {
		return 0, 0
	}
	preds := make([]float64, len(f.trees))
	for i, t := range f.trees {
		preds[i] = t.predict(in)
		mu += preds[i]
	}
	mu /= float64(len(f.trees))
	for _, p := range preds {
		variance += (p - mu) * (p - mu)
	}
	variance /= float64(len(f.trees))
	return mu, variance
}

// Len returns the number of trees.
func (f *Forest) Len() int { return len(f.trees) }

func mean(ys []float64, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	s := 0.0
	for _, i := range idx {
		s += ys[i]
	}
	return s / float64(len(idx))
}

func pure(ys []float64, idx []int) bool {
	for k := 1; k < len(idx); k++ {
		if ys[idx[k]] != ys[idx[0]] {
			return false
		}
	}
	return true
}

func distinctValues(xs []pipeline.Instance, idx []int, pi int) []pipeline.Value {
	seen := make(map[pipeline.Value]bool)
	var out []pipeline.Value
	for _, i := range idx {
		v := xs[i].Value(pi)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Less(out[b]) })
	return out
}

// splitVariance is the weighted child variance of a candidate split, or
// +Inf when a side falls under minLeaf.
func splitVariance(xs []pipeline.Instance, ys []float64, idx []int, test func(pipeline.Instance) bool, minLeaf int) float64 {
	var yes, no []int
	for _, i := range idx {
		if test(xs[i]) {
			yes = append(yes, i)
		} else {
			no = append(no, i)
		}
	}
	if len(yes) < minLeaf || len(no) < minLeaf {
		return math.Inf(1)
	}
	return sse(ys, yes) + sse(ys, no)
}

func sse(ys []float64, idx []int) float64 {
	m := mean(ys, idx)
	s := 0.0
	for _, i := range idx {
		d := ys[i] - m
		s += d * d
	}
	return s
}
