// Package textplot renders small tables and horizontal bar charts as text,
// used by the benchmark harness to print the paper's figures in a terminal.
package textplot

import (
	"fmt"
	"strings"
)

// Table renders rows with a header, padding columns to equal width.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// Bars renders labelled values as horizontal bars scaled to width, with the
// numeric value appended. Negative values render as empty bars.
func Bars(labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 40
	}
	maxLabel, maxVal := 0, 0.0
	for i, l := range labels {
		if len(l) > maxLabel {
			maxLabel = len(l)
		}
		if i < len(values) && values[i] > maxVal {
			maxVal = values[i]
		}
	}
	if maxVal == 0 {
		maxVal = 1
	}
	var b strings.Builder
	for i, l := range labels {
		v := 0.0
		if i < len(values) {
			v = values[i]
		}
		n := int(v / maxVal * float64(width))
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&b, "%-*s |%s%s %.3f\n", maxLabel, l,
			strings.Repeat("#", n), strings.Repeat(" ", width-n), v)
	}
	return b.String()
}
