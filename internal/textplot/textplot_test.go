package textplot

import (
	"strings"
	"testing"
)

func TestTable(t *testing.T) {
	out := Table([]string{"a", "long-header"}, [][]string{
		{"1", "x"},
		{"22", "yy"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "a ") || !strings.Contains(lines[0], "long-header") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("separator = %q", lines[1])
	}
	// Columns align: every row has the same prefix width before column 2.
	col2 := strings.Index(lines[0], "long-header")
	if !strings.HasPrefix(lines[2][col2:], "x") || !strings.HasPrefix(lines[3][col2:], "yy") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestBars(t *testing.T) {
	out := Bars([]string{"one", "two"}, []float64{1, 2}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if strings.Count(lines[1], "#") != 10 {
		t.Fatalf("max bar must fill the width: %q", lines[1])
	}
	if strings.Count(lines[0], "#") != 5 {
		t.Fatalf("half bar = %q", lines[0])
	}
	if !strings.Contains(lines[1], "2.000") {
		t.Fatalf("value missing: %q", lines[1])
	}
}

func TestBarsZeroAndNegative(t *testing.T) {
	out := Bars([]string{"z", "n"}, []float64{0, -1}, 0)
	if !strings.Contains(out, "0.000") || !strings.Contains(out, "-1.000") {
		t.Fatalf("out = %q", out)
	}
	if strings.Contains(out, "#") {
		t.Fatalf("no bars expected: %q", out)
	}
}
