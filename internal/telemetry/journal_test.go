package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestJournalNilNoOp(t *testing.T) {
	var j *Journal
	j.Emit("trial_end", Int("n", 1))
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestJournalEmitShape(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	j.Emit("trial_end",
		Hex("inst", 0xdeadbeef),
		Str("outcome", "fail"),
		Int("seq", -3),
		Uint("bytes", 18446744073709551615),
		Dur("dur_ns", 1500*time.Microsecond),
		Str("quote", `a"b\c`+"\n\ttail"),
	)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	var m map[string]any
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatalf("invalid JSON line %q: %v", line, err)
	}
	if m["ev"] != "trial_end" {
		t.Fatalf("ev = %v", m["ev"])
	}
	if _, ok := m["ts"].(float64); !ok {
		t.Fatalf("ts missing or not a number: %v", m["ts"])
	}
	if m["inst"] != "deadbeef" {
		t.Fatalf("inst = %v", m["inst"])
	}
	if m["outcome"] != "fail" {
		t.Fatalf("outcome = %v", m["outcome"])
	}
	if m["seq"] != float64(-3) {
		t.Fatalf("seq = %v", m["seq"])
	}
	// The uint64 max overflows float64 exactly to 2^64; json.Number keeps it.
	dec := json.NewDecoder(bytes.NewReader([]byte(line)))
	dec.UseNumber()
	var mn map[string]any
	if err := dec.Decode(&mn); err != nil {
		t.Fatal(err)
	}
	if mn["bytes"].(json.Number).String() != "18446744073709551615" {
		t.Fatalf("bytes = %v", mn["bytes"])
	}
	if m["dur_ns"] != float64(1500000) {
		t.Fatalf("dur_ns = %v", m["dur_ns"])
	}
	if m["quote"] != `a"b\c`+"\n\ttail" {
		t.Fatalf("quote = %v", m["quote"])
	}
}

func TestJournalConcurrentLinesAreAtomic(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	const goroutines = 8
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				j.Emit("ev", Int("g", int64(g)), Int("i", int64(i)))
			}
		}(g)
	}
	wg.Wait()
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	lines := 0
	for sc.Scan() {
		lines++
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d invalid JSON: %v: %q", lines, err, sc.Text())
		}
	}
	if lines != goroutines*perG {
		t.Fatalf("got %d lines, want %d", lines, goroutines*perG)
	}
}

func TestOpenJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Emit("checkpoint", Int("bytes", 1024))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(data), &m); err != nil {
		t.Fatalf("invalid JSON in file: %v: %q", err, data)
	}
	if m["ev"] != "checkpoint" || m["bytes"] != float64(1024) {
		t.Fatalf("round trip mismatch: %v", m)
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, os.ErrClosed }

func TestJournalStickyError(t *testing.T) {
	j := NewJournal(failWriter{})
	j.Emit("a")
	j.Emit("b")
	if j.Err() == nil {
		t.Fatal("expected sticky write error")
	}
	if err := j.Close(); err == nil {
		t.Fatal("Close should surface the write error")
	}
}
