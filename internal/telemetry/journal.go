package telemetry

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"time"
	"unicode/utf8"
)

// Journal is a structured session event log: one JSON object per line,
// each carrying a nanosecond timestamp ("ts"), an event type ("ev"), and
// the event's fields. Lines are written atomically under a mutex, so a
// journal shared by the executor's workers, the WAL flush leader, and the
// driver interleaves whole events, never partial ones. A nil *Journal is a
// valid no-op target, which is the disabled path; emitting to an enabled
// journal allocates (it formats JSON), so journals belong on span-level
// events — oracle trials, batch dispatches, flushes, checkpoints, epoch
// refreshes — not per-record hot paths.
type Journal struct {
	mu  sync.Mutex
	w   io.Writer
	c   io.Closer
	buf []byte
	err error
}

// NewJournal writes events to w. The caller keeps ownership of w; Close
// does not close it.
func NewJournal(w io.Writer) *Journal {
	return &Journal{w: w}
}

// OpenJournal creates (or truncates) the JSON-lines journal file at path.
// Close closes the file.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: open journal: %w", err)
	}
	return &Journal{w: f, c: f}, nil
}

// Field is one key/value pair of a journal event. Build fields with the
// typed constructors (Str, Int, Uint, Hex, Dur).
type Field struct {
	key string
	str string
	num int64
	// kind selects the JSON rendering: 0 string, 1 int, 2 uint/hex
	// (pre-rendered into str), 3 duration (num nanoseconds).
	kind uint8
}

// Str builds a string field.
func Str(key, v string) Field { return Field{key: key, str: v, kind: 0} }

// Int builds an integer field.
func Int(key string, v int64) Field { return Field{key: key, num: v, kind: 1} }

// Uint builds an unsigned integer field.
func Uint(key string, v uint64) Field {
	return Field{key: key, str: strconv.FormatUint(v, 10), kind: 2}
}

// Hex builds a hexadecimal string field (for instance hashes).
func Hex(key string, v uint64) Field {
	return Field{key: key, str: strconv.FormatUint(v, 16), kind: 0}
}

// Dur builds a duration field, rendered as integer nanoseconds with key
// suffixed "_ns" by convention at the call site.
func Dur(key string, d time.Duration) Field { return Field{key: key, num: int64(d), kind: 3} }

// Emit appends one event line: {"ts":<unixnano>,"ev":"<typ>",...fields}.
// Safe for concurrent use; a nil journal ignores the call. Write errors
// are sticky and reported by Err/Close rather than per event.
func (j *Journal) Emit(typ string, fields ...Field) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	b := j.buf[:0]
	b = append(b, `{"ts":`...)
	b = strconv.AppendInt(b, time.Now().UnixNano(), 10)
	b = append(b, `,"ev":`...)
	b = appendJSONString(b, typ)
	for _, f := range fields {
		b = append(b, ',')
		b = appendJSONString(b, f.key)
		b = append(b, ':')
		switch f.kind {
		case 0:
			b = appendJSONString(b, f.str)
		case 2:
			b = append(b, f.str...)
		default:
			b = strconv.AppendInt(b, f.num, 10)
		}
	}
	b = append(b, '}', '\n')
	j.buf = b
	if _, err := j.w.Write(b); err != nil {
		j.err = err
	}
}

// Err returns the first write error, if any (nil on a nil journal).
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close closes the underlying file when the journal owns one (OpenJournal)
// and returns the first write error encountered. Nil journals close
// cleanly.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.c != nil {
		if err := j.c.Close(); err != nil && j.err == nil {
			j.err = err
		}
		j.c = nil
	}
	return j.err
}

// appendJSONString appends s as a JSON string literal, escaping quotes,
// backslashes, and control characters.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for _, r := range s {
		switch {
		case r == '"':
			b = append(b, '\\', '"')
		case r == '\\':
			b = append(b, '\\', '\\')
		case r == '\n':
			b = append(b, '\\', 'n')
		case r == '\t':
			b = append(b, '\\', 't')
		case r == '\r':
			b = append(b, '\\', 'r')
		case r < 0x20:
			b = append(b, fmt.Sprintf(`\u%04x`, r)...)
		default:
			b = utf8.AppendRune(b, r)
		}
	}
	return append(b, '"')
}
