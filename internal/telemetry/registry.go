package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Registry is a named collection of metrics with get-or-create lookup and
// a consistent-enough snapshot: Snapshot reads every metric atomically, so
// counters are monotone across successive snapshots and a histogram's
// bucket counts always sum to the count it reports, even while writers are
// mid-flight. A nil *Registry is a valid no-op: its constructors return
// nil metric handles (themselves no-ops) and its Snapshot is empty, which
// is the zero-cost path for uninstrumented use.
//
// Registries also serve HTTP: a Registry is an http.Handler that responds
// with the Snapshot JSON, mounted by cmd/bugdoc at /debug/vars.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() int64
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		gaugeFns: make(map[string]func() int64),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Nil
// registries return a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil registries
// return a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a callback gauge: fn is evaluated at snapshot time,
// so live state (a shard's committed count, a queue length) can be exposed
// with zero write-path cost. Re-registering a name replaces the callback.
// fn must be safe to call concurrently with anything. No-op on a nil
// registry.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFns[name] = fn
}

// Histogram returns the named single-stripe histogram, creating it on
// first use. Nil registries return a nil (no-op) histogram.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramStripes(name, 1)
}

// HistogramStripes returns the named histogram, creating it with n writer
// stripes on first use (an existing histogram keeps its stripe count).
// Nil registries return a nil (no-op) histogram.
func (r *Registry) HistogramStripes(name string, n int) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogramStripes(n)
		r.hists[name] = h
	}
	return h
}

// BucketCount is one non-empty histogram bucket of a snapshot: N
// observations with values below Le (and at or above the previous
// bucket's Le).
type BucketCount struct {
	// Le is the bucket's exclusive upper bound, a power of two
	// (math.MaxInt64 for the overflow bucket).
	Le int64 `json:"le"`
	// N is the number of observations in the bucket.
	N int64 `json:"n"`
}

// HistogramSnapshot is one histogram's state at snapshot time. Count
// always equals the sum of the bucket counts (it is derived from them, not
// read separately), so a snapshot taken mid-write is internally
// consistent; Sum may trail Count by in-flight observations.
type HistogramSnapshot struct {
	// Count is the total number of observations.
	Count int64 `json:"count"`
	// Sum is the sum of all observed values.
	Sum int64 `json:"sum"`
	// Buckets lists the non-empty buckets in ascending bound order.
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) of the
// recorded distribution: the bound of the first bucket at which the
// cumulative count reaches q·Count. Power-of-two buckets make it exact to
// within a factor of two.
func (h HistogramSnapshot) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	want := int64(math.Ceil(q * float64(h.Count)))
	if want < 1 {
		want = 1
	}
	var cum int64
	for _, b := range h.Buckets {
		cum += b.N
		if cum >= want {
			return b.Le
		}
	}
	return math.MaxInt64
}

// Mean returns the mean observed value (0 when empty).
func (h HistogramSnapshot) Mean() int64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / h.Count
}

// Snapshot is a point-in-time view of every metric in a registry, in the
// stable JSON shape served at /debug/vars: three maps keyed by metric
// name (encoding/json emits map keys sorted, so the rendering is
// deterministic). Callback gauges appear merged into Gauges.
type Snapshot struct {
	// Counters holds every counter's value by name.
	Counters map[string]int64 `json:"counters"`
	// Gauges holds every gauge's (and callback gauge's) value by name.
	Gauges map[string]int64 `json:"gauges"`
	// Histograms holds every histogram's folded state by name.
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every registered metric. Each value is read
// atomically; the snapshot as a whole is not a single instant, but
// counters are monotone between successive snapshots and each histogram is
// internally consistent. A nil registry snapshots empty (non-nil, empty
// maps, so the JSON shape is stable either way).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	// Collect the handles under the lock, read the values outside it:
	// gauge callbacks may themselves take locks (a store shard's counter)
	// and must not run under the registry mutex.
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	gaugeFns := make(map[string]func() int64, len(r.gaugeFns))
	for k, v := range r.gaugeFns {
		gaugeFns[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	for name, c := range counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range gauges {
		s.Gauges[name] = g.Load()
	}
	for name, fn := range gaugeFns {
		s.Gauges[name] = fn()
	}
	for name, h := range hists {
		buckets, sum := h.snapshot()
		hs := HistogramSnapshot{Sum: sum}
		for b, n := range buckets {
			if n == 0 {
				continue
			}
			le := int64(math.MaxInt64)
			if b < histBuckets-1 {
				le = int64(1) << uint(b)
			}
			hs.Count += n
			hs.Buckets = append(hs.Buckets, BucketCount{Le: le, N: n})
		}
		s.Histograms[name] = hs
	}
	return s
}

// ServeHTTP implements http.Handler: it responds with the Snapshot JSON
// (indented, sorted keys), the payload cmd/bugdoc mounts at /debug/vars.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(r.Snapshot())
}

// Table renders the snapshot as the human-readable summary cmd/bugdoc
// prints under -stats: counters and gauges aligned name/value, histograms
// with count, p50, p99, and mean. Metric names ending in "_ns" format
// their histogram statistics as durations.
func (s Snapshot) Table() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) > 0 {
		fmt.Fprintf(&b, "counters:\n")
		for _, n := range names {
			fmt.Fprintf(&b, "  %-36s %12d\n", n, s.Counters[n])
		}
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) > 0 {
		fmt.Fprintf(&b, "gauges:\n")
		for _, n := range names {
			fmt.Fprintf(&b, "  %-36s %12d\n", n, s.Gauges[n])
		}
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) > 0 {
		fmt.Fprintf(&b, "histograms:%28s%10s%10s%10s\n", "count", "p50", "p99", "mean")
		for _, n := range names {
			h := s.Histograms[n]
			format := func(v int64) string { return fmt.Sprintf("%d", v) }
			if strings.HasSuffix(n, "_ns") {
				format = func(v int64) string { return time.Duration(v).Round(time.Microsecond).String() }
			}
			fmt.Fprintf(&b, "  %-36s%10d%10s%10s%10s\n", n, h.Count,
				format(h.Quantile(0.50)), format(h.Quantile(0.99)), format(h.Mean()))
		}
	}
	if b.Len() == 0 {
		return "no telemetry recorded\n"
	}
	return b.String()
}
